/**
 * @file
 * Paper Figure 9: effects of storage-cache write policies on disk
 * energy, as percentage savings relative to write-through (WT),
 * under Practical DPM with an LRU cache:
 *
 *  (a1)(b1)(c1)  WB / WBEU / WTDU vs write ratio 0..1 at 250 ms mean
 *                inter-arrival, Exponential and Pareto arrivals;
 *  (a2)(b2)(c2)  the same vs mean inter-arrival 10..10000 ms at
 *                write ratio 0.5.
 *
 * Paper shapes: WB saves up to ~20% at 100% writes; WBEU up to
 * ~60-65%; WTDU up to ~55% while retaining WT persistency; benefits
 * shrink at low write ratios; WB peaks at mid inter-arrival times.
 */

#include <iostream>

#include "core/experiment.hh"
#include "trace/synthetic.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

double
energyFor(const Trace &trace, WritePolicy wp)
{
    ExperimentConfig cfg;
    cfg.policy = PolicyKind::LRU;
    cfg.dpm = DpmChoice::Practical;
    cfg.cacheBlocks = 4096;
    cfg.storage.writePolicy = wp;
    return runExperiment(trace, cfg).totalEnergy;
}

Trace
makeTrace(double write_ratio, double interarrival_ms, bool pareto,
          uint64_t seed)
{
    SyntheticParams p;
    p.numRequests = 20000;
    p.writeRatio = write_ratio;
    p.arrival = pareto ? ArrivalModel::pareto(interarrival_ms, 1.5)
                       : ArrivalModel::exponential(interarrival_ms);
    p.seed = seed;
    return generateSynthetic(p);
}

struct Savings
{
    double wb, wbeu, wtdu;
};

Savings
savingsFor(const Trace &trace)
{
    const double wt = energyFor(trace, WritePolicy::WriteThrough);
    return Savings{
        1.0 - energyFor(trace, WritePolicy::WriteBack) / wt,
        1.0 - energyFor(trace, WritePolicy::WriteBackEagerUpdate) / wt,
        1.0 -
            energyFor(trace, WritePolicy::WriteThroughDeferredUpdate) /
                wt};
}

void
writeRatioPanel()
{
    std::cout << "--- Figure 9 (a1)(b1)(c1): savings vs write ratio "
                 "(inter-arrival 250 ms) ---\n\n";
    TextTable t;
    t.header({"write ratio", "WB exp", "WB par", "WBEU exp",
              "WBEU par", "WTDU exp", "WTDU par"});
    for (double w : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
        const Savings e = savingsFor(makeTrace(w, 250.0, false, 21));
        const Savings p = savingsFor(makeTrace(w, 250.0, true, 22));
        t.row({fmt(w, 1), fmtPct(e.wb, 1), fmtPct(p.wb, 1),
               fmtPct(e.wbeu, 1), fmtPct(p.wbeu, 1), fmtPct(e.wtdu, 1),
               fmtPct(p.wtdu, 1)});
    }
    t.print(std::cout);
    std::cout << '\n';
}

void
interArrivalPanel()
{
    std::cout << "--- Figure 9 (a2)(b2)(c2): savings vs mean "
                 "inter-arrival time (write ratio 0.5) ---\n\n";
    TextTable t;
    t.header({"inter-arrival (ms)", "WB exp", "WB par", "WBEU exp",
              "WBEU par", "WTDU exp", "WTDU par"});
    for (double ms : {10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
                      5000.0, 10000.0}) {
        const Savings e = savingsFor(makeTrace(0.5, ms, false, 23));
        const Savings p = savingsFor(makeTrace(0.5, ms, true, 24));
        t.row({fmt(ms, 0), fmtPct(e.wb, 1), fmtPct(p.wb, 1),
               fmtPct(e.wbeu, 1), fmtPct(p.wbeu, 1), fmtPct(e.wtdu, 1),
               fmtPct(p.wtdu, 1)});
    }
    t.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main()
{
    std::cout << "=== Figure 9: write policies vs disk energy "
                 "(savings relative to WT, Practical DPM) ===\n\n";
    writeRatioPanel();
    interArrivalPanel();
    return 0;
}
