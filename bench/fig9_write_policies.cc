/**
 * @file
 * Paper Figure 9: effects of storage-cache write policies on disk
 * energy, as percentage savings relative to write-through (WT),
 * under Practical DPM with an LRU cache:
 *
 *  (a1)(b1)(c1)  WB / WBEU / WTDU vs write ratio 0..1 at 250 ms mean
 *                inter-arrival, Exponential and Pareto arrivals;
 *  (a2)(b2)(c2)  the same vs mean inter-arrival 10..10000 ms at
 *                write ratio 0.5.
 *
 * Paper shapes: WB saves up to ~20% at 100% writes; WBEU up to
 * ~60-65%; WTDU up to ~55% while retaining WT persistency; benefits
 * shrink at low write ratios; WB peaks at mid inter-arrival times.
 *
 * The full grid — 30 synthetic traces x 4 write policies = 120
 * independent runs — executes in parallel on the work-stealing pool
 * (PACACHE_JOBS overrides the worker count); the tables consume the
 * outcomes in grid order, so they are identical to the old serial
 * driver's.
 */

#include <iostream>
#include <vector>

#include "bench_report.hh"
#include "core/experiment.hh"
#include "obs/energy_ledger.hh"
#include "runner/sweep.hh"
#include "util/logging.hh"
#include "trace/synthetic.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

const std::vector<WritePolicy> kWritePolicies{
    WritePolicy::WriteThrough, WritePolicy::WriteBack,
    WritePolicy::WriteBackEagerUpdate,
    WritePolicy::WriteThroughDeferredUpdate};

const std::vector<double> kWriteRatios{0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
const std::vector<double> kInterArrivals{
    10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 5000.0, 10000.0};

Trace
makeTrace(double write_ratio, double interarrival_ms, bool pareto,
          uint64_t seed)
{
    SyntheticParams p;
    p.numRequests = 20000;
    p.writeRatio = write_ratio;
    p.arrival = pareto ? ArrivalModel::pareto(interarrival_ms, 1.5)
                       : ArrivalModel::exponential(interarrival_ms);
    p.seed = seed;
    return generateSynthetic(p);
}

struct Savings
{
    double wb, wbeu, wtdu;
};

/**
 * The trace grid: the write-ratio panel's traces first (ratio-major,
 * exponential before Pareto), then the inter-arrival panel's, so the
 * flat run order is (trace, write policy) in table order.
 */
class Grid
{
  public:
    Grid()
    {
        traces.reserve(2 * (kWriteRatios.size() +
                            kInterArrivals.size()));
        for (double w : kWriteRatios) {
            traces.push_back(makeTrace(w, 250.0, false, 21));
            traces.push_back(makeTrace(w, 250.0, true, 22));
        }
        for (double ms : kInterArrivals) {
            traces.push_back(makeTrace(0.5, ms, false, 23));
            traces.push_back(makeTrace(0.5, ms, true, 24));
        }
        for (std::size_t ti = 0; ti < traces.size(); ++ti) {
            for (WritePolicy wp : kWritePolicies) {
                runner::RunPoint p;
                p.label = "trace" + std::to_string(ti) + "/" +
                          runner::writePolicyCliName(wp);
                p.trace = &traces[ti];
                p.config.policy = PolicyKind::LRU;
                p.config.dpm = DpmChoice::Practical;
                p.config.cacheBlocks = 4096;
                p.config.storage.writePolicy = wp;
                runPoints.push_back(std::move(p));
            }
        }
    }

    const std::vector<runner::RunPoint> &points() const
    {
        return runPoints;
    }

    /** Savings vs WT for the grid's @p trace_idx-th trace. */
    Savings
    savings(const std::vector<runner::RunOutcome> &outcomes,
            std::size_t trace_idx) const
    {
        const auto energy = [&](std::size_t wp) {
            return outcomes[trace_idx * kWritePolicies.size() + wp]
                .result.totalEnergy;
        };
        const double wt = energy(0);
        return Savings{1.0 - energy(1) / wt, 1.0 - energy(2) / wt,
                       1.0 - energy(3) / wt};
    }

  private:
    std::vector<Trace> traces;
    std::vector<runner::RunPoint> runPoints;
};

void
writeRatioPanel(const Grid &grid,
                const std::vector<runner::RunOutcome> &outcomes)
{
    std::cout << "--- Figure 9 (a1)(b1)(c1): savings vs write ratio "
                 "(inter-arrival 250 ms) ---\n\n";
    TextTable t;
    t.header({"write ratio", "WB exp", "WB par", "WBEU exp",
              "WBEU par", "WTDU exp", "WTDU par"});
    for (std::size_t i = 0; i < kWriteRatios.size(); ++i) {
        const Savings e = grid.savings(outcomes, 2 * i);
        const Savings p = grid.savings(outcomes, 2 * i + 1);
        t.row({fmt(kWriteRatios[i], 1), fmtPct(e.wb, 1),
               fmtPct(p.wb, 1), fmtPct(e.wbeu, 1), fmtPct(p.wbeu, 1),
               fmtPct(e.wtdu, 1), fmtPct(p.wtdu, 1)});
    }
    t.print(std::cout);
    std::cout << '\n';
}

void
interArrivalPanel(const Grid &grid,
                  const std::vector<runner::RunOutcome> &outcomes)
{
    std::cout << "--- Figure 9 (a2)(b2)(c2): savings vs mean "
                 "inter-arrival time (write ratio 0.5) ---\n\n";
    TextTable t;
    t.header({"inter-arrival (ms)", "WB exp", "WB par", "WBEU exp",
              "WBEU par", "WTDU exp", "WTDU par"});
    const std::size_t base = 2 * kWriteRatios.size();
    for (std::size_t i = 0; i < kInterArrivals.size(); ++i) {
        const Savings e = grid.savings(outcomes, base + 2 * i);
        const Savings p = grid.savings(outcomes, base + 2 * i + 1);
        t.row({fmt(kInterArrivals[i], 0), fmtPct(e.wb, 1),
               fmtPct(p.wb, 1), fmtPct(e.wbeu, 1), fmtPct(p.wbeu, 1),
               fmtPct(e.wtdu, 1), fmtPct(p.wtdu, 1)});
    }
    t.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main()
{
    std::cout << "=== Figure 9: write policies vs disk energy "
                 "(savings relative to WT, Practical DPM) ===\n\n";
    const Grid grid;
    const auto outcomes =
        runner::runAll(grid.points(), benchsupport::jobsFromEnv());

    // Figure points must satisfy the energy-attribution ledger's
    // conservation invariant (rows sum back to the energy totals).
    for (const auto &o : outcomes) {
        const double err = obs::ledgerMaxRelError(o.result.perDisk);
        PACACHE_ASSERT(err <= obs::kLedgerConservationTol,
                       "ledger conservation violated at '", o.label,
                       "' (rel error ", err, ")");
    }
    writeRatioPanel(grid, outcomes);
    interArrivalPanel(grid, outcomes);

    benchsupport::BenchReport report("fig9_write_policies",
                                     benchsupport::jobsFromEnv());
    for (std::size_t i = 0; i < outcomes.size(); ++i)
        report.addRun(outcomes[i].label, outcomes[i].wallMs,
                      grid.points()[i].trace->size());
    report.write();
    return 0;
}
