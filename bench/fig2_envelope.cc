/**
 * @file
 * Paper Figure 2: energy consumption E_i(t) for each power mode of
 * the multi-speed disk as a function of idle-interval length, plus
 * the lower envelope E*(t) that Oracle DPM achieves. Prints one row
 * per interval length; the "best" column shows which mode the
 * envelope selects (the t1..t4 crossovers of the paper).
 */

#include <iostream>

#include "disk/power_model.hh"
#include "util/table.hh"

using namespace pacache;

int
main()
{
    const PowerModel pm;

    std::cout << "=== Figure 2: E_i(t) per mode and lower envelope "
                 "E*(t) ===\n\n";

    TextTable t;
    std::vector<std::string> head{"t (s)"};
    for (std::size_t i = 0; i < pm.numModes(); ++i)
        head.push_back("E_" + pm.mode(i).name + " (J)");
    head.push_back("E* (J)");
    head.push_back("best");
    t.header(head);

    for (double x = 0.0; x <= 160.0; x += 5.0) {
        std::vector<std::string> row{fmt(x, 0)};
        for (std::size_t i = 0; i < pm.numModes(); ++i)
            row.push_back(fmt(pm.energyLine(i, x), 1));
        row.push_back(fmt(pm.envelope(x), 1));
        row.push_back(pm.mode(pm.bestMode(x)).name);
        t.row(row);
    }
    t.print(std::cout);

    std::cout << "\nEnvelope crossover points (paper t1..t4):\n";
    const auto &env = pm.envelopeModes();
    const auto &thr = pm.thresholds();
    for (std::size_t k = 0; k < thr.size(); ++k) {
        std::cout << "  t" << (k + 1) << " = " << fmt(thr[k], 2)
                  << " s  (" << pm.mode(env[k]).name << " -> "
                  << pm.mode(env[k + 1]).name << ")\n";
    }
    return 0;
}
