/**
 * @file
 * Paper Figure 7: why PA-LRU saves energy on OLTP.
 *  (a) percentage time breakdown per power mode (incl. transitions)
 *      for two representative disks, LRU vs PA-LRU;
 *  (b) mean request inter-arrival time at those disks (post-cache).
 *
 * Representative disks mirror the paper's: a busy disk ("disk 4")
 * whose inter-arrival time shrinks under PA-LRU, and a quiet disk
 * ("disk 14") whose blocks PA-LRU protects so its inter-arrival time
 * stretches ~3x and it parks in standby most of the time.
 *
 * Both runs execute in parallel on the work-stealing pool
 * (PACACHE_JOBS overrides the worker count).
 */

#include <iostream>

#include "bench_report.hh"
#include "core/experiment.hh"
#include "obs/energy_ledger.hh"
#include "runner/sweep.hh"
#include "util/logging.hh"
#include "trace/workloads.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

runner::RunPoint
point(const Trace &trace, PolicyKind policy)
{
    runner::RunPoint p;
    p.label = policyKindName(policy);
    p.trace = &trace;
    p.config.policy = policy;
    p.config.dpm = DpmChoice::Practical;
    p.config.cacheBlocks = 1024;
    p.config.pa.epochLength = 900;
    return p;
}

void
breakdownRow(TextTable &t, const char *label,
             const ExperimentResult &r, DiskId d)
{
    const EnergyStats &e = r.perDisk[d];
    const Time total = e.totalTime();
    std::vector<std::string> cells{label};
    // Active = busy servicing; then one column per idle mode; then
    // transitions.
    cells.push_back(fmtPct(e.busyTime / total, 1));
    for (Time tm : e.timePerMode)
        cells.push_back(fmtPct(tm / total, 1));
    cells.push_back(fmtPct(e.transitionTime() / total, 1));
    t.row(cells);
}

} // namespace

int
main()
{
    const OltpParams params;
    const Trace trace = makeOltpTrace(params);

    const std::vector<runner::RunPoint> points{
        point(trace, PolicyKind::LRU), point(trace, PolicyKind::PALRU)};
    const auto outcomes =
        runner::runAll(points, benchsupport::jobsFromEnv());

    // Figure points must satisfy the energy-attribution ledger's
    // conservation invariant (rows sum back to the energy totals).
    for (const auto &o : outcomes) {
        const double err = obs::ledgerMaxRelError(o.result.perDisk);
        PACACHE_ASSERT(err <= obs::kLedgerConservationTol,
                       "ledger conservation violated at '", o.label,
                       "' (rel error ", err, ")");
    }
    const ExperimentResult &lru = outcomes[0].result;
    const ExperimentResult &pa = outcomes[1].result;

    // Representative disks: the busiest disk and the quiet disk whose
    // standby time grows the most under PA-LRU.
    const DiskId busy_disk = 4;
    DiskId quiet_disk = params.busyDisks;
    Time best_gain = -1;
    for (DiskId d = params.busyDisks; d < lru.perDisk.size(); ++d) {
        const Time gain = pa.perDisk[d].timePerMode.back() -
                          lru.perDisk[d].timePerMode.back();
        if (gain > best_gain) {
            best_gain = gain;
            quiet_disk = d;
        }
    }

    std::cout << "=== Figure 7 (a): % time breakdown (OLTP, Practical "
                 "DPM) ===\n\n";
    TextTable t;
    std::vector<std::string> head{"Disk/Policy", "active"};
    const PowerModel pm;
    for (std::size_t i = 0; i < pm.numModes(); ++i)
        head.push_back(pm.mode(i).name);
    head.push_back("spin up/down");
    t.header(head);

    breakdownRow(t, ("disk " + std::to_string(busy_disk) + " LRU").c_str(),
                 lru, busy_disk);
    breakdownRow(t,
                 ("disk " + std::to_string(busy_disk) + " PA-LRU").c_str(),
                 pa, busy_disk);
    breakdownRow(t,
                 ("disk " + std::to_string(quiet_disk) + " LRU").c_str(),
                 lru, quiet_disk);
    breakdownRow(
        t, ("disk " + std::to_string(quiet_disk) + " PA-LRU").c_str(),
        pa, quiet_disk);
    t.print(std::cout);

    std::cout << "\n=== Figure 7 (b): mean request inter-arrival time "
                 "at the disk (s) ===\n\n";
    TextTable t2;
    t2.header({"Disk", "LRU", "PA-LRU", "ratio"});
    for (DiskId d : {busy_disk, quiet_disk}) {
        const double l = lru.diskMeanInterArrival[d];
        const double q = pa.diskMeanInterArrival[d];
        t2.row({"disk " + std::to_string(d), fmt(l, 2), fmt(q, 2),
                fmt(l > 0 ? q / l : 0.0, 2) + "x"});
    }
    t2.print(std::cout);

    std::cout << "\nPaper shape: the protected disk's inter-arrival "
                 "time stretches ~3x and its standby share jumps\n"
                 "(16% -> 59% in the paper); the busy disk's "
                 "inter-arrival time shrinks but it was active anyway.\n";

    benchsupport::BenchReport report("fig7_breakdown",
                                     benchsupport::jobsFromEnv());
    for (const auto &o : outcomes)
        report.addRun(o.label, o.wallMs, trace.size());
    report.write();
    return 0;
}
