/**
 * @file
 * Micro-benchmarks: replacement-policy operation throughput under a
 * Zipf workload (google-benchmark).
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "cache/arc.hh"
#include "cache/belady.hh"
#include "cache/cache.hh"
#include "cache/clock.hh"
#include "cache/fifo.hh"
#include "cache/lru.hh"
#include "cache/mq.hh"
#include "core/opg.hh"
#include "core/pa_lru.hh"
#include "util/random.hh"

using namespace pacache;

namespace
{

constexpr std::size_t kCapacity = 4096;

std::vector<BlockAccess>
workload(std::size_t n)
{
    std::vector<BlockAccess> accs;
    accs.reserve(n);
    Rng rng(1);
    ZipfSampler zipf(kCapacity * 8, 0.9);
    for (std::size_t i = 0; i < n; ++i) {
        accs.push_back({static_cast<Time>(i) * 0.01,
                        BlockId{static_cast<DiskId>(rng.below(8)),
                                zipf.sample(rng)},
                        false, i});
    }
    return accs;
}

// Off-line policies cannot replay a stream (their future knowledge is
// positional), so every benchmark runs a fixed iteration count within
// one precomputed workload.
constexpr std::size_t kWorkload = 1u << 20;
constexpr std::size_t kIterations = kWorkload - 1;

void
drive(benchmark::State &state, ReplacementPolicy &policy)
{
    const auto accs = workload(kWorkload);
    policy.prepare(accs);
    Cache cache(kCapacity, policy);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(accs[i].block, accs[i].time, i));
        ++i;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
BM_Lru(benchmark::State &state)
{
    LruPolicy p;
    drive(state, p);
}

void
BM_Fifo(benchmark::State &state)
{
    FifoPolicy p;
    drive(state, p);
}

void
BM_Clock(benchmark::State &state)
{
    ClockPolicy p;
    drive(state, p);
}

void
BM_Arc(benchmark::State &state)
{
    ArcPolicy p(kCapacity);
    drive(state, p);
}

void
BM_Mq(benchmark::State &state)
{
    MqPolicy p;
    drive(state, p);
}

void
BM_Belady(benchmark::State &state)
{
    BeladyPolicy p;
    drive(state, p);
}

void
BM_Opg(benchmark::State &state)
{
    const PowerModel pm;
    OpgPolicy p(pm, DpmKind::Practical, 0);
    drive(state, p);
}

void
BM_PaLru(benchmark::State &state)
{
    PaClassifier cls(8, PaParams{});
    PaLruPolicy p(cls);
    drive(state, p);
}

BENCHMARK(BM_Lru)->Iterations(kIterations);
BENCHMARK(BM_Fifo)->Iterations(kIterations);
BENCHMARK(BM_Clock)->Iterations(kIterations);
BENCHMARK(BM_Arc)->Iterations(kIterations);
BENCHMARK(BM_Mq)->Iterations(kIterations);
BENCHMARK(BM_Belady)->Iterations(kIterations);
BENCHMARK(BM_Opg)->Iterations(kIterations);
BENCHMARK(BM_PaLru)->Iterations(kIterations);

} // namespace

BENCHMARK_MAIN();
