/**
 * @file
 * Micro-benchmarks: replacement-policy operation throughput under a
 * Zipf workload (google-benchmark), plus a direct LRU hit-path
 * comparison against the std::list + std::unordered_map
 * implementation the arena-backed containers replaced. The custom
 * main times both stacks on a pure-hit touch loop and writes the
 * speedup to BENCH_micro_cache.json.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <list>
#include <memory>
#include <unordered_map>

#include "bench_report.hh"
#include "cache/arc.hh"
#include "cache/belady.hh"
#include "cache/cache.hh"
#include "cache/clock.hh"
#include "cache/fifo.hh"
#include "cache/lru.hh"
#include "cache/mq.hh"
#include "core/opg.hh"
#include "core/pa_lru.hh"
#include "util/random.hh"

using namespace pacache;

namespace
{

constexpr std::size_t kCapacity = 4096;

std::vector<BlockAccess>
workload(std::size_t n)
{
    std::vector<BlockAccess> accs;
    accs.reserve(n);
    Rng rng(1);
    ZipfSampler zipf(kCapacity * 8, 0.9);
    for (std::size_t i = 0; i < n; ++i) {
        accs.push_back({static_cast<Time>(i) * 0.01,
                        BlockId{static_cast<DiskId>(rng.below(8)),
                                zipf.sample(rng)},
                        false, i});
    }
    return accs;
}

// Off-line policies cannot replay a stream (their future knowledge is
// positional), so every benchmark runs a fixed iteration count within
// one precomputed workload.
constexpr std::size_t kWorkload = 1u << 20;
constexpr std::size_t kIterations = kWorkload - 1;

void
drive(benchmark::State &state, ReplacementPolicy &policy)
{
    const auto accs = workload(kWorkload);
    policy.prepare(accs);
    Cache cache(kCapacity, policy);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(accs[i].block, accs[i].time, i));
        ++i;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
BM_Lru(benchmark::State &state)
{
    LruPolicy p;
    drive(state, p);
}

void
BM_Fifo(benchmark::State &state)
{
    FifoPolicy p;
    drive(state, p);
}

void
BM_Clock(benchmark::State &state)
{
    ClockPolicy p;
    drive(state, p);
}

void
BM_Arc(benchmark::State &state)
{
    ArcPolicy p(kCapacity);
    drive(state, p);
}

void
BM_Mq(benchmark::State &state)
{
    MqPolicy p;
    drive(state, p);
}

void
BM_Belady(benchmark::State &state)
{
    BeladyPolicy p;
    drive(state, p);
}

void
BM_Opg(benchmark::State &state)
{
    const PowerModel pm;
    OpgPolicy p(pm, DpmKind::Practical, 0);
    drive(state, p);
}

void
BM_PaLru(benchmark::State &state)
{
    PaClassifier cls(8, PaParams{});
    PaLruPolicy p(cls);
    drive(state, p);
}

/**
 * The pre-arena LRU stack: node-allocating std::list plus a chained
 * std::unordered_map index. Kept here as the benchmark baseline.
 */
class ListLruStack
{
  public:
    void
    touch(const BlockId &block)
    {
        const auto it = index.find(block);
        if (it != index.end()) {
            order.splice(order.begin(), order, it->second);
            return;
        }
        order.push_front(block);
        index.emplace(block, order.begin());
    }

    BlockId
    popLru()
    {
        const BlockId victim = order.back();
        order.pop_back();
        index.erase(victim);
        return victim;
    }

    std::size_t size() const { return order.size(); }

  private:
    std::list<BlockId> order;
    std::unordered_map<BlockId, std::list<BlockId>::iterator> index;
};

void
BM_LruListBaseline(benchmark::State &state)
{
    const auto accs = workload(kWorkload);
    ListLruStack stack;
    std::size_t i = 0;
    for (auto _ : state) {
        stack.touch(accs[i].block);
        if (stack.size() > kCapacity)
            benchmark::DoNotOptimize(stack.popLru());
        ++i;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
BM_LruArenaStack(benchmark::State &state)
{
    const auto accs = workload(kWorkload);
    LruStack stack;
    std::size_t i = 0;
    for (auto _ : state) {
        stack.touch(accs[i].block);
        if (stack.size() > kCapacity)
            benchmark::DoNotOptimize(stack.popLru());
        ++i;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

BENCHMARK(BM_Lru)->Iterations(kIterations);
BENCHMARK(BM_Fifo)->Iterations(kIterations);
BENCHMARK(BM_Clock)->Iterations(kIterations);
BENCHMARK(BM_Arc)->Iterations(kIterations);
BENCHMARK(BM_Mq)->Iterations(kIterations);
BENCHMARK(BM_Belady)->Iterations(kIterations);
BENCHMARK(BM_Opg)->Iterations(kIterations);
BENCHMARK(BM_PaLru)->Iterations(kIterations);
BENCHMARK(BM_LruListBaseline)->Iterations(kIterations);
BENCHMARK(BM_LruArenaStack)->Iterations(kIterations);

/**
 * Direct hit-path timing: a resident working set touched over and
 * over — every access is a hit, so this isolates the find +
 * move-to-front cost the arena containers were built to cut.
 */
template <typename Stack>
double
hitPathNsPerOp(std::size_t touches)
{
    Stack stack;
    std::vector<BlockId> blocks;
    blocks.reserve(kCapacity);
    Rng rng(3);
    for (std::size_t i = 0; i < kCapacity; ++i) {
        const BlockId b{static_cast<DiskId>(rng.below(8)),
                        static_cast<BlockNum>(i)};
        blocks.push_back(b);
        stack.touch(b);
    }
    ZipfSampler zipf(kCapacity, 0.9);
    std::vector<std::size_t> picks;
    picks.reserve(touches);
    for (std::size_t i = 0; i < touches; ++i)
        picks.push_back(static_cast<std::size_t>(zipf.sample(rng)) %
                        kCapacity);

    const auto start = std::chrono::steady_clock::now();
    for (const std::size_t p : picks)
        stack.touch(blocks[p]);
    const std::chrono::duration<double, std::nano> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() / static_cast<double>(touches);
}

void
reportHitPathSpeedup()
{
    constexpr std::size_t kTouches = 4u << 20;
    // Interleave and keep the best of three to shed timer noise.
    double arena = 1e300, list = 1e300;
    for (int round = 0; round < 3; ++round) {
        arena = std::min(arena, hitPathNsPerOp<LruStack>(kTouches));
        list = std::min(list, hitPathNsPerOp<ListLruStack>(kTouches));
    }
    const double speedup = arena > 0 ? list / arena : 0.0;
    std::cout << "\nLRU hit path: arena " << arena << " ns/op, "
              << "std::list baseline " << list << " ns/op, speedup "
              << speedup << "x\n";

    benchsupport::BenchReport report("micro_cache");
    report.addRun("hit_path_arena",
                  arena * static_cast<double>(kTouches) / 1e6,
                  kTouches);
    report.addRun("hit_path_list_baseline",
                  list * static_cast<double>(kTouches) / 1e6,
                  kTouches);
    report.metric("hit_path_arena_ns_per_op", arena);
    report.metric("hit_path_list_ns_per_op", list);
    report.metric("hit_path_speedup", speedup);
    report.write();
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    reportHitPathSpeedup();
    return 0;
}
