/**
 * @file
 * Paper Figure 4: energy SAVINGS S_i(t) = E_0(t) - E_i(t) over
 * staying at full-speed idle, per mode, and the upper envelope
 * S*(t). The super-linear growth of S*(t) is the paper's argument
 * that stretching idle intervals (what PA-LRU does) pays off more
 * than linearly.
 */

#include <iostream>

#include "disk/power_model.hh"
#include "util/table.hh"

using namespace pacache;

int
main()
{
    const PowerModel pm;

    std::cout << "=== Figure 4: energy savings S_i(t) over mode 0 and "
                 "upper envelope S*(t) ===\n\n";

    TextTable t;
    std::vector<std::string> head{"t (s)"};
    for (std::size_t i = 1; i < pm.numModes(); ++i)
        head.push_back("S_" + pm.mode(i).name + " (J)");
    head.push_back("S* (J)");
    t.header(head);

    for (double x = 0.0; x <= 300.0; x += 10.0) {
        std::vector<std::string> row{fmt(x, 0)};
        for (std::size_t i = 1; i < pm.numModes(); ++i)
            row.push_back(fmt(pm.savingsLine(i, x), 1));
        row.push_back(fmt(pm.maxSavings(x), 1));
        t.row(row);
    }
    t.print(std::cout);

    // Demonstrate super-linearity: S*(2t) > 2*S*(t) in the threshold
    // region.
    std::cout << "\nSuper-linearity check (paper's motivation):\n";
    for (double x : {15.0, 30.0, 60.0}) {
        std::cout << "  S*(" << fmt(2 * x, 0) << ") = "
                  << fmt(pm.maxSavings(2 * x), 1) << " J  vs  2*S*("
                  << fmt(x, 0) << ") = " << fmt(2 * pm.maxSavings(x), 1)
                  << " J\n";
    }
    return 0;
}
