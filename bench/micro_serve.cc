/**
 * @file
 * Serving front-end throughput micro-benchmark: drives the sharded
 * concurrent server (src/serve/) with the synthetic open-loop load
 * generator — 2M Zipf-distributed requests over 16 disks, LRU +
 * practical DPM + write-back, one stripe, one worker — and reports
 * best-of-N end-to-end throughput. Every repetition must produce
 * bit-identical simulation results (same seed, single producer), so
 * the timing loop doubles as a determinism check, and each run must
 * pass the energy-ledger conservation check.
 *
 * BENCH_serve.json carries one gated metric:
 *   serve_mrps    end-to-end serve throughput in million requests
 *                 per wall second (submit -> process -> finish);
 *                 tools/check.sh gates it with a hard floor of 1.0
 *                 (the acceptance criterion) on top of the baseline
 *                 comparison.
 * plus informational (un-gated, "info_"-prefixed) latency numbers
 * from the host-clock sampling path. PACACHE_BENCH_REPS overrides
 * the repetition count (default 5).
 */

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "bench_report.hh"
#include "serve/load_gen.hh"
#include "serve/server.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

unsigned
repsFromEnv()
{
    if (const char *env = std::getenv("PACACHE_BENCH_REPS")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return 5;
}

serve::ServeConfig
serveConfig()
{
    serve::ServeConfig cfg;
    cfg.exp.policy = PolicyKind::LRU;
    cfg.exp.dpm = DpmChoice::Practical;
    cfg.exp.storage.writePolicy = WritePolicy::WriteBack;
    cfg.exp.cacheBlocks = 1024;
    cfg.numDisks = 16;
    cfg.shards = 1;
    cfg.threads = 1;
    return cfg;
}

serve::LoadGenConfig
loadConfig()
{
    serve::LoadGenConfig gen;
    gen.producers = 1;
    gen.requests = 2000000;
    gen.arrivalRate = 100000.0;
    gen.writeRatio = 0.3;
    gen.zipfTheta = 0.9;
    gen.seed = 1;
    gen.latencySampleEvery = 64;
    return gen;
}

/** The simulation outputs that must not vary across repetitions. */
struct Fingerprint
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    Energy totalEnergy = 0;

    Fingerprint() = default;

    explicit Fingerprint(const ExperimentResult &r)
        : hits(r.cache.hits), misses(r.cache.misses),
          evictions(r.cache.evictions), totalEnergy(r.totalEnergy)
    {
    }

    bool
    operator==(const Fingerprint &o) const
    {
        return hits == o.hits && misses == o.misses &&
               evictions == o.evictions &&
               totalEnergy == o.totalEnergy; // exact, not near
    }
};

} // namespace

int
main()
{
    std::cout << "=== micro_serve: serving front-end throughput ===\n\n";
    const unsigned reps = repsFromEnv();
    const serve::ServeConfig cfg = serveConfig();
    const serve::LoadGenConfig gen = loadConfig();

    std::cout << gen.requests << " open-loop requests, "
              << cfg.numDisks << " disks, " << cfg.shards
              << " shard(s), " << cfg.threads << " worker(s), "
              << reps << " reps\n\n";

    double bestSec = 0;
    Fingerprint fp;
    double p50us = 0, p99us = 0, p999us = 0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        serve::ServeServer server(cfg);
        const auto t0 = std::chrono::steady_clock::now();
        server.start();
        runLoadGen(server, gen);
        const Time end = static_cast<double>(gen.requests - 1) /
                         gen.arrivalRate;
        const serve::ServeResult res = server.finish(end);
        const double sec = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();

        if (!res.ledgerConserves) {
            std::cerr << "FATAL: energy ledger conservation failed "
                         "(max rel error "
                      << res.ledgerMaxRelError << ")\n";
            return 1;
        }
        const Fingerprint now(res.result);
        if (rep == 0) {
            fp = now;
        } else if (!(now == fp)) {
            std::cerr << "FATAL: serve run not deterministic across "
                         "repetitions\n";
            return 1;
        }
        if (rep == 0 || sec < bestSec) {
            bestSec = sec;
            if (!res.latency.empty()) {
                p50us = res.latency.quantile(0.5) * 1e6;
                p99us = res.latency.quantile(0.99) * 1e6;
                p999us = res.latency.quantile(0.999) * 1e6;
            }
        }
        std::cout << "  rep " << rep << ": "
                  << fmt(static_cast<double>(gen.requests) / sec / 1e6,
                         3)
                  << " M req/s\n";
    }

    const double mrps =
        static_cast<double>(gen.requests) / bestSec / 1e6;
    std::cout << "\nbest: " << fmt(mrps, 3) << " M req/s, p99 "
              << fmt(p99us, 1) << " us\n";

    benchsupport::BenchReport report("serve", 1);
    report.addRun("serve/open_loop", bestSec * 1e3, gen.requests);
    report.metric("serve_mrps", mrps);
    report.metric("info_p50_us", p50us);
    report.metric("info_p99_us", p99us);
    report.metric("info_p999_us", p999us);
    std::cout << "\nwrote " << report.write() << '\n';
    return 0;
}
