/**
 * @file
 * Micro-benchmarks: power-model evaluation throughput
 * (google-benchmark). These functions sit on OPG's per-eviction hot
 * path, so their cost matters.
 */

#include <benchmark/benchmark.h>

#include "disk/power_model.hh"
#include "util/random.hh"

using namespace pacache;

namespace
{

void
BM_Envelope(benchmark::State &state)
{
    const PowerModel pm;
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(pm.envelope(rng.uniform(0.0, 500.0)));
}

void
BM_PracticalEnergy(benchmark::State &state)
{
    const PowerModel pm;
    Rng rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pm.practicalEnergy(rng.uniform(0.0, 500.0)));
    }
}

void
BM_BestMode(benchmark::State &state)
{
    const PowerModel pm;
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(pm.bestMode(rng.uniform(0.0, 500.0)));
}

void
BM_ModelConstruction(benchmark::State &state)
{
    for (auto _ : state) {
        PowerModel pm;
        benchmark::DoNotOptimize(pm.thresholds());
    }
}

BENCHMARK(BM_Envelope);
BENCHMARK(BM_PracticalEnergy);
BENCHMARK(BM_BestMode);
BENCHMARK(BM_ModelConstruction);

} // namespace

BENCHMARK_MAIN();
