/**
 * @file
 * Parallel-runner scaling: a fig6-style sweep (OLTP, five policies,
 * two DPM regimes) executed at increasing worker counts. The sweep is
 * embarrassingly parallel — one immutable trace shared by all runs,
 * results written to pre-assigned slots — so wall clock should shrink
 * near-linearly until the host runs out of cores. BENCH_sweep_scaling
 * .json records the wall clock and speedup at each job count; on a
 * single-core host the curve is flat, which the report makes visible
 * rather than hiding.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_report.hh"
#include "obs/metrics.hh"
#include "runner/sweep.hh"
#include "runner/thread_pool.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

runner::SweepSpec
scalingSpec()
{
    runner::SweepSpec spec;
    spec.name = "fig6-style-scaling";
    spec.workloads = {"oltp"};
    spec.policies = {PolicyKind::InfiniteCache, PolicyKind::Belady,
                     PolicyKind::OPG, PolicyKind::LRU,
                     PolicyKind::PALRU};
    spec.cacheBlocks = {1024};
    spec.dpms = {DpmChoice::Oracle, DpmChoice::Practical};
    spec.writePolicies = {WritePolicy::WriteBack};
    spec.duration = 1800; // quarter of the paper's 2-hour OLTP run
    return spec;
}

} // namespace

int
main()
{
    const runner::SweepSpec spec = scalingSpec();
    const runner::SweepPlan plan(spec);

    const unsigned hw = runner::ThreadPool::defaultWorkers();
    std::vector<unsigned> jobLevels{1, 2, 4};
    if (std::find(jobLevels.begin(), jobLevels.end(), hw) ==
        jobLevels.end())
        jobLevels.push_back(hw);

    std::cout << "=== sweep scaling: " << plan.points().size()
              << " runs, host has " << hw << " hardware thread"
              << (hw == 1 ? "" : "s") << " ===\n\n";

    uint64_t requestsPerSweep = 0;
    for (const auto &p : plan.points())
        requestsPerSweep += p.trace->size();

    benchsupport::BenchReport report("sweep_scaling", hw);
    TextTable t;
    t.header({"jobs", "wall (ms)", "speedup vs 1", "req/s"});

    double serialWall = 0;
    for (const unsigned jobs : jobLevels) {
        obs::MetricRegistry metrics;
        runner::runAll(plan.points(), jobs, &metrics);
        const double wall =
            metrics.gauge("runner.sweep.wall_ms").value();
        if (jobs == 1)
            serialWall = wall;
        const double speedup = wall > 0 ? serialWall / wall : 0.0;
        t.row({std::to_string(jobs), fmt(wall, 1), fmt(speedup, 2),
               fmt(wall > 0 ? static_cast<double>(requestsPerSweep) *
                                  1000.0 / wall
                            : 0.0,
                   0)});
        report.addRun("jobs" + std::to_string(jobs), wall,
                      requestsPerSweep);
        report.metric("speedup_jobs" + std::to_string(jobs), speedup);
    }
    t.print(std::cout);
    std::cout << '\n';

    report.metric("hardware_threads", hw);
    report.write();
    return 0;
}
