/**
 * @file
 * Ablation: how the disk-level power-management scheme interacts
 * with cache-level power awareness. Crosses the DPM regimes
 * (always-on, adaptive timeout, 2-competitive threshold walk,
 * off-line Oracle) with LRU and PA-LRU on the OLTP workload.
 *
 * Expected shape: without any DPM the cache policy barely matters
 * for energy; the better the DPM, the bigger PA-LRU's edge — cache
 * power-awareness and disk power management are complements, which
 * is the paper's core premise.
 */

#include <iostream>

#include "core/experiment.hh"
#include "trace/workloads.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

ExperimentResult
run(const Trace &trace, PolicyKind policy, DpmChoice dpm)
{
    ExperimentConfig cfg;
    cfg.policy = policy;
    cfg.dpm = dpm;
    cfg.cacheBlocks = 1024;
    cfg.pa.epochLength = 900;
    return runExperiment(trace, cfg);
}

const char *
dpmName(DpmChoice d)
{
    switch (d) {
      case DpmChoice::AlwaysOn: return "always-on";
      case DpmChoice::Adaptive: return "adaptive";
      case DpmChoice::Practical: return "practical";
      case DpmChoice::Oracle: return "oracle";
    }
    return "?";
}

} // namespace

int
main()
{
    OltpParams params;
    params.duration = 3600;
    const Trace trace = makeOltpTrace(params);

    std::cout << "=== Ablation: DPM regime x cache policy (OLTP) "
                 "===\n\n";
    TextTable t;
    t.header({"DPM", "LRU (J)", "PA-LRU (J)", "PA-LRU saving",
              "LRU resp (ms)", "PA-LRU resp (ms)"});
    for (DpmChoice dpm :
         {DpmChoice::AlwaysOn, DpmChoice::Adaptive, DpmChoice::Practical,
          DpmChoice::Oracle}) {
        const auto lru = run(trace, PolicyKind::LRU, dpm);
        const auto pa = run(trace, PolicyKind::PALRU, dpm);
        t.row({dpmName(dpm), fmt(lru.totalEnergy, 0),
               fmt(pa.totalEnergy, 0),
               fmtPct(1.0 - pa.totalEnergy / lru.totalEnergy, 1),
               fmt(lru.responses.mean() * 1000.0, 2),
               fmt(pa.responses.mean() * 1000.0, 2)});
    }
    t.print(std::cout);

    std::cout << "\nOracle response times equal the always-on ones "
                 "(just-in-time spin-up);\nadaptive vs practical "
                 "trades a simpler controller for slightly worse "
                 "energy.\n";
    return 0;
}
