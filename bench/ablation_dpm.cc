/**
 * @file
 * Ablation: how the disk-level power-management scheme interacts
 * with cache-level power awareness. Crosses the DPM regimes
 * (always-on, adaptive timeout, 2-competitive threshold walk,
 * off-line Oracle) with LRU and PA-LRU on the OLTP workload.
 *
 * Expected shape: without any DPM the cache policy barely matters
 * for energy; the better the DPM, the bigger PA-LRU's edge — cache
 * power-awareness and disk power management are complements, which
 * is the paper's core premise.
 *
 * All 8 runs execute in parallel on the work-stealing pool
 * (PACACHE_JOBS overrides the worker count).
 */

#include <iostream>
#include <vector>

#include "bench_report.hh"
#include "core/experiment.hh"
#include "runner/sweep.hh"
#include "trace/workloads.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

const std::vector<DpmChoice> kDpms{
    DpmChoice::AlwaysOn, DpmChoice::Adaptive, DpmChoice::Practical,
    DpmChoice::Oracle};

runner::RunPoint
point(const Trace &trace, PolicyKind policy, DpmChoice dpm)
{
    runner::RunPoint p;
    p.label = std::string(runner::dpmChoiceName(dpm)) + "/" +
              policyKindName(policy);
    p.trace = &trace;
    p.config.policy = policy;
    p.config.dpm = dpm;
    p.config.cacheBlocks = 1024;
    p.config.pa.epochLength = 900;
    return p;
}

} // namespace

int
main()
{
    OltpParams params;
    params.duration = 3600;
    const Trace trace = makeOltpTrace(params);

    // Point order: DPM-major, LRU then PA-LRU within each regime.
    std::vector<runner::RunPoint> points;
    for (DpmChoice dpm : kDpms) {
        points.push_back(point(trace, PolicyKind::LRU, dpm));
        points.push_back(point(trace, PolicyKind::PALRU, dpm));
    }
    const auto outcomes =
        runner::runAll(points, benchsupport::jobsFromEnv());

    std::cout << "=== Ablation: DPM regime x cache policy (OLTP) "
                 "===\n\n";
    TextTable t;
    t.header({"DPM", "LRU (J)", "PA-LRU (J)", "PA-LRU saving",
              "LRU resp (ms)", "PA-LRU resp (ms)"});
    for (std::size_t i = 0; i < kDpms.size(); ++i) {
        const ExperimentResult &lru = outcomes[2 * i].result;
        const ExperimentResult &pa = outcomes[2 * i + 1].result;
        t.row({runner::dpmChoiceName(kDpms[i]),
               fmt(lru.totalEnergy, 0), fmt(pa.totalEnergy, 0),
               fmtPct(1.0 - pa.totalEnergy / lru.totalEnergy, 1),
               fmt(lru.responses.mean() * 1000.0, 2),
               fmt(pa.responses.mean() * 1000.0, 2)});
    }
    t.print(std::cout);

    std::cout << "\nOracle response times equal the always-on ones "
                 "(just-in-time spin-up);\nadaptive vs practical "
                 "trades a simpler controller for slightly worse "
                 "energy.\n";

    benchsupport::BenchReport report("ablation_dpm",
                                     benchsupport::jobsFromEnv());
    for (const auto &o : outcomes)
        report.addRun(o.label, o.wallMs, trace.size());
    report.write();
    return 0;
}
