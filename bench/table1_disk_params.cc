/**
 * @file
 * Paper Table 1: simulation parameters for the IBM Ultrastar 36Z15,
 * plus the derived multi-speed (NAP) mode parameters, break-even
 * times, and the 2-competitive Practical-DPM thresholds.
 */

#include <iostream>

#include "disk/power_model.hh"
#include "util/table.hh"

using namespace pacache;

int
main()
{
    const PowerModel pm;
    const DiskSpec &spec = pm.spec();

    std::cout << "=== Table 1: Simulation Parameters ("
              << spec.model << ") ===\n\n";

    TextTable t1;
    t1.row({"Individual Disk Capacity", fmt(spec.capacityGB, 1) + " GB"});
    t1.row({"Maximum Disk Rotation Speed", fmt(spec.maxRpm, 0) + " RPM"});
    t1.row({"Minimum Disk Rotation Speed", fmt(spec.minRpm, 0) + " RPM"});
    t1.row({"RPM Step-Size", fmt(spec.rpmStep, 0) + " RPM"});
    t1.row({"Active Power (Read/Write)", fmt(spec.activePower, 1) + " W"});
    t1.row({"Seek Power", fmt(spec.seekPower, 1) + " W"});
    t1.row({"Idle Power @15000RPM", fmt(spec.idlePower, 1) + " W"});
    t1.row({"Standby Power", fmt(spec.standbyPower, 1) + " W"});
    t1.row({"Spinup Time (Standby to Active)",
            fmt(spec.spinUpTime, 1) + " s"});
    t1.row({"Spinup Energy (Standby to Active)",
            fmt(spec.spinUpEnergy, 0) + " J"});
    t1.row({"Spindown Time (Active to Standby)",
            fmt(spec.spinDownTime, 1) + " s"});
    t1.row({"Spindown Energy (Active to Standby)",
            fmt(spec.spinDownEnergy, 0) + " J"});
    t1.print(std::cout);

    std::cout << "\n=== Derived multi-speed modes (DRPM extension) ===\n\n";
    TextTable t2;
    t2.header({"Mode", "RPM", "Idle W", "Up s", "Up J", "Down s",
               "Down J", "Break-even s"});
    for (std::size_t i = 0; i < pm.numModes(); ++i) {
        const PowerMode &m = pm.mode(i);
        t2.row({m.name, fmt(m.rpm, 0), fmt(m.idlePower, 2),
                fmt(m.spinUpTime, 2), fmt(m.spinUpEnergy, 1),
                fmt(m.spinDownTime, 2), fmt(m.spinDownEnergy, 1),
                fmt(pm.breakEvenTime(i), 2)});
    }
    t2.print(std::cout);

    std::cout << "\n=== 2-competitive Practical DPM thresholds ===\n\n";
    TextTable t3;
    t3.header({"Transition", "Idle-time threshold (s)"});
    const auto &env = pm.envelopeModes();
    const auto &thr = pm.thresholds();
    for (std::size_t k = 0; k < thr.size(); ++k) {
        t3.row({pm.mode(env[k]).name + " -> " + pm.mode(env[k + 1]).name,
                fmt(thr[k], 2)});
    }
    t3.print(std::cout);
    return 0;
}
