/**
 * @file
 * Paper Figure 6: effects of power-aware cache replacement.
 *  (a) disk energy, OLTP trace, Oracle and Practical DPM,
 *  (b) disk energy, Cello96 trace, Oracle and Practical DPM,
 *  (c) average response time under Practical DPM,
 * for InfiniteCache / Belady / OPG / LRU / PA-LRU, normalized to LRU
 * exactly as the paper plots them.
 *
 * Paper shapes to look for: OPG saves 2-9% over Belady; PA-LRU saves
 * ~16% energy and ~50% response time over LRU on OLTP but only a few
 * percent on Cello96 (cold-miss dominated); the infinite cache lower-
 * bounds everything under Oracle DPM.
 */

#include <iostream>

#include "core/experiment.hh"
#include "trace/stats.hh"
#include "trace/workloads.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

struct TraceSetup
{
    const char *name;
    Trace trace;
    std::size_t cacheBlocks;
    Time epoch;
};

const std::vector<PolicyKind> kPolicies{
    PolicyKind::InfiniteCache, PolicyKind::Belady, PolicyKind::OPG,
    PolicyKind::LRU, PolicyKind::PALRU};

ExperimentResult
run(const TraceSetup &setup, PolicyKind policy, DpmChoice dpm)
{
    ExperimentConfig cfg;
    cfg.policy = policy;
    cfg.dpm = dpm;
    cfg.cacheBlocks = setup.cacheBlocks;
    cfg.pa.epochLength = setup.epoch;
    return runExperiment(setup.trace, cfg);
}

void
energyPanel(const TraceSetup &setup)
{
    std::cout << "--- Figure 6 energy: " << setup.name
              << " (normalized to LRU) ---\n\n";
    TextTable t;
    t.header({"Policy", "Oracle DPM", "Practical DPM",
              "Oracle (J)", "Practical (J)"});

    std::vector<double> oracle, practical;
    for (PolicyKind k : kPolicies) {
        oracle.push_back(run(setup, k, DpmChoice::Oracle).totalEnergy);
        practical.push_back(
            run(setup, k, DpmChoice::Practical).totalEnergy);
    }
    const double lru_o = oracle[3], lru_p = practical[3];
    for (std::size_t i = 0; i < kPolicies.size(); ++i) {
        t.row({policyKindName(kPolicies[i]),
               fmt(oracle[i] / lru_o, 3), fmt(practical[i] / lru_p, 3),
               fmt(oracle[i], 0), fmt(practical[i], 0)});
    }
    t.print(std::cout);
    std::cout << '\n';
}

void
responsePanel(const std::vector<TraceSetup> &setups)
{
    std::cout << "--- Figure 6 (c): average response time, Practical "
                 "DPM (normalized to LRU) ---\n\n";
    TextTable t;
    std::vector<std::string> head{"Policy"};
    for (const auto &s : setups) {
        head.push_back(std::string(s.name) + " (norm)");
        head.push_back(std::string(s.name) + " (ms)");
    }
    t.header(head);

    std::vector<std::vector<double>> means(setups.size());
    for (std::size_t s = 0; s < setups.size(); ++s) {
        for (PolicyKind k : kPolicies) {
            if (k == PolicyKind::InfiniteCache) {
                continue; // the paper's 6(c) omits it
            }
            means[s].push_back(
                run(setups[s], k, DpmChoice::Practical)
                    .responses.mean());
        }
    }
    std::size_t row = 0;
    for (PolicyKind k : kPolicies) {
        if (k == PolicyKind::InfiniteCache)
            continue;
        std::vector<std::string> cells{policyKindName(k)};
        for (std::size_t s = 0; s < setups.size(); ++s) {
            cells.push_back(fmt(means[s][row] / means[s][2], 3));
            cells.push_back(fmt(means[s][row] * 1000.0, 2));
        }
        t.row(cells);
        ++row;
    }
    t.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main()
{
    std::cout << "=== Figure 6: power-aware cache replacement ===\n\n";

    std::vector<TraceSetup> setups;
    setups.push_back({"OLTP", makeOltpTrace(), 1024, 900});

    CelloParams cp;
    cp.duration = 300;
    setups.push_back({"Cello96", makeCelloTrace(cp), 256, 60});

    for (const auto &s : setups) {
        const TraceStats st = characterize(s.trace);
        std::cout << s.name << ": " << st.requests << " requests, "
                  << st.disks << " disks, cache " << s.cacheBlocks
                  << " blocks\n";
    }
    std::cout << '\n';

    for (const auto &s : setups)
        energyPanel(s);
    responsePanel(setups);
    return 0;
}
