/**
 * @file
 * Paper Figure 6: effects of power-aware cache replacement.
 *  (a) disk energy, OLTP trace, Oracle and Practical DPM,
 *  (b) disk energy, Cello96 trace, Oracle and Practical DPM,
 *  (c) average response time under Practical DPM,
 * for InfiniteCache / Belady / OPG / LRU / PA-LRU, normalized to LRU
 * exactly as the paper plots them.
 *
 * Paper shapes to look for: OPG saves 2-9% over Belady; PA-LRU saves
 * ~16% energy and ~50% response time over LRU on OLTP but only a few
 * percent on Cello96 (cold-miss dominated); the infinite cache lower-
 * bounds everything under Oracle DPM.
 *
 * All points run in parallel on the work-stealing pool (PACACHE_JOBS
 * overrides the worker count); the tables are identical to the old
 * serial driver because results are consumed in spec order.
 */

#include <iostream>

#include "bench_report.hh"
#include "core/experiment.hh"
#include "obs/energy_ledger.hh"
#include "runner/sweep.hh"
#include "trace/stats.hh"
#include "trace/workloads.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

struct TraceSetup
{
    const char *name;
    Trace trace;
    std::size_t cacheBlocks;
    Time epoch;
};

const std::vector<PolicyKind> kPolicies{
    PolicyKind::InfiniteCache, PolicyKind::Belady, PolicyKind::OPG,
    PolicyKind::LRU, PolicyKind::PALRU};
const std::vector<DpmChoice> kDpms{DpmChoice::Oracle,
                                   DpmChoice::Practical};

/** Flat index for (setup, policy, dpm) into the run-point list. */
std::size_t
pointIndex(std::size_t setup, std::size_t policy, std::size_t dpm)
{
    return (setup * kPolicies.size() + policy) * kDpms.size() + dpm;
}

void
energyPanel(const TraceSetup &setup, std::size_t setup_idx,
            const std::vector<runner::RunOutcome> &outcomes)
{
    std::cout << "--- Figure 6 energy: " << setup.name
              << " (normalized to LRU) ---\n\n";
    TextTable t;
    t.header({"Policy", "Oracle DPM", "Practical DPM",
              "Oracle (J)", "Practical (J)"});

    const auto energy = [&](std::size_t policy, std::size_t dpm) {
        return outcomes[pointIndex(setup_idx, policy, dpm)]
            .result.totalEnergy;
    };
    const double lru_o = energy(3, 0), lru_p = energy(3, 1);
    for (std::size_t i = 0; i < kPolicies.size(); ++i) {
        t.row({policyKindName(kPolicies[i]),
               fmt(energy(i, 0) / lru_o, 3),
               fmt(energy(i, 1) / lru_p, 3), fmt(energy(i, 0), 0),
               fmt(energy(i, 1), 0)});
    }
    t.print(std::cout);
    std::cout << '\n';
}

void
responsePanel(const std::vector<TraceSetup> &setups,
              const std::vector<runner::RunOutcome> &outcomes)
{
    std::cout << "--- Figure 6 (c): average response time, Practical "
                 "DPM (normalized to LRU) ---\n\n";
    TextTable t;
    std::vector<std::string> head{"Policy"};
    for (const auto &s : setups) {
        head.push_back(std::string(s.name) + " (norm)");
        head.push_back(std::string(s.name) + " (ms)");
    }
    t.header(head);

    const auto mean = [&](std::size_t setup, std::size_t policy) {
        return outcomes[pointIndex(setup, policy, 1)]
            .result.responses.mean();
    };
    for (std::size_t i = 0; i < kPolicies.size(); ++i) {
        if (kPolicies[i] == PolicyKind::InfiniteCache)
            continue; // the paper's 6(c) omits it
        std::vector<std::string> cells{policyKindName(kPolicies[i])};
        for (std::size_t s = 0; s < setups.size(); ++s) {
            cells.push_back(fmt(mean(s, i) / mean(s, 3), 3));
            cells.push_back(fmt(mean(s, i) * 1000.0, 2));
        }
        t.row(cells);
    }
    t.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main()
{
    std::cout << "=== Figure 6: power-aware cache replacement ===\n\n";

    std::vector<TraceSetup> setups;
    setups.push_back({"OLTP", makeOltpTrace(), 1024, 900});

    CelloParams cp;
    cp.duration = 300;
    setups.push_back({"Cello96", makeCelloTrace(cp), 256, 60});

    for (const auto &s : setups) {
        const TraceStats st = characterize(s.trace);
        std::cout << s.name << ": " << st.requests << " requests, "
                  << st.disks << " disks, cache " << s.cacheBlocks
                  << " blocks\n";
    }
    std::cout << '\n';

    std::vector<runner::RunPoint> points;
    for (const auto &s : setups) {
        for (PolicyKind policy : kPolicies) {
            for (DpmChoice dpm : kDpms) {
                runner::RunPoint p;
                p.label = std::string(s.name) + "/" +
                          policyKindName(policy) + "/" +
                          runner::dpmChoiceName(dpm);
                p.trace = &s.trace;
                p.config.policy = policy;
                p.config.dpm = dpm;
                p.config.cacheBlocks = s.cacheBlocks;
                p.config.pa.epochLength = s.epoch;
                points.push_back(std::move(p));
            }
        }
    }
    const auto outcomes =
        runner::runAll(points, benchsupport::jobsFromEnv());

    // Every figure point must satisfy the energy-attribution ledger's
    // conservation invariant; a violation means the published numbers
    // would not decompose.
    for (const auto &o : outcomes) {
        const double err = obs::ledgerMaxRelError(o.result.perDisk);
        PACACHE_ASSERT(err <= obs::kLedgerConservationTol,
                       "ledger conservation violated at '", o.label,
                       "' (rel error ", err, ")");
    }

    for (std::size_t s = 0; s < setups.size(); ++s)
        energyPanel(setups[s], s, outcomes);
    responsePanel(setups, outcomes);

    benchsupport::BenchReport report("fig6_replacement",
                                     benchsupport::jobsFromEnv());
    for (std::size_t i = 0; i < points.size(); ++i)
        report.addRun(outcomes[i].label, outcomes[i].wallMs,
                      points[i].trace->size());
    report.write();
    return 0;
}
