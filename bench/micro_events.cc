/**
 * @file
 * Micro-benchmark: heap-based EventQueue vs the std::map ordered
 * queue it replaced. Three shapes matter to the simulator: bulk
 * schedule-then-drain (trace replay queues events ahead of the
 * clock), timer churn, where most scheduled events are cancelled
 * before they fire (every DPM spin-down timer is rearmed on each
 * arrival), and steady state, where a bounded handful of outstanding
 * events each schedule a successor (disk request completions). The
 * heap wins bulk and churn — contiguous storage vs a node allocation
 * per event, and cancellation as an O(1) lazy kill instead of a tree
 * erase; on tiny steady-state queues a ~50-node red-black tree is
 * competitive, which the report records rather than hides. The
 * custom main times the three shapes head-to-head and writes the
 * ratios to BENCH_micro_events.json.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <map>
#include <utility>

#include "bench_report.hh"
#include "sim/event_queue.hh"
#include "util/random.hh"

using namespace pacache;

namespace
{

/** The pre-heap implementation: an ordered map keyed (time, seq). */
class MapEventQueue
{
  public:
    using Callback = EventQueue::Callback;
    using Key = std::pair<Time, uint64_t>;

    Key
    schedule(Time when, Callback cb)
    {
        const Key key{when, nextSeq++};
        events.emplace(key, std::move(cb));
        return key;
    }

    bool cancel(const Key &key) { return events.erase(key) > 0; }

    bool
    runOne()
    {
        if (events.empty())
            return false;
        auto it = events.begin();
        clock = it->first.first;
        Callback cb = std::move(it->second);
        events.erase(it);
        cb(clock);
        return true;
    }

    void
    runAll()
    {
        while (runOne()) {
        }
    }

    Time now() const { return clock; }

  private:
    std::map<Key, Callback> events;
    uint64_t nextSeq = 0;
    Time clock = 0;
};

/** Event times in scheduling order: arrivals with jitter. */
std::vector<Time>
eventTimes(std::size_t n)
{
    std::vector<Time> times;
    times.reserve(n);
    Rng rng(42);
    Time t = 0;
    for (std::size_t i = 0; i < n; ++i) {
        t += 0.001;
        times.push_back(t + 0.01 * rng.uniform());
    }
    return times;
}

// The queue outlives the timing loop, as in the simulator: one
// EventQueue serves a whole experiment, so its slab and heap keep
// their capacity across drain cycles. Times step forward from the
// queue's current clock since draining advances it.

void
BM_HeapScheduleRun(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const auto times = eventTimes(n);
    uint64_t fired = 0;
    EventQueue eq;
    for (auto _ : state) {
        const Time base = eq.now();
        for (std::size_t i = 0; i < n; ++i)
            eq.schedule(base + times[i], [&fired](Time) { ++fired; });
        eq.runAll();
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * n));
}

void
BM_MapScheduleRun(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const auto times = eventTimes(n);
    uint64_t fired = 0;
    MapEventQueue eq;
    for (auto _ : state) {
        const Time base = eq.now();
        for (std::size_t i = 0; i < n; ++i)
            eq.schedule(base + times[i], [&fired](Time) { ++fired; });
        eq.runAll();
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * n));
}

// Steady state: a fixed number of outstanding events, each firing
// event scheduling a successor. This is the shape the simulator
// actually produces — disk.cc keeps one completion event per busy
// disk plus a handful of timers, so the queue holds dozens of
// events, not tens of thousands, and slots recycle constantly.

template <typename Queue>
uint64_t
steadyState(Queue &eq, std::size_t total, std::size_t outstanding)
{
    struct Driver
    {
        Queue &eq;
        std::size_t togo;
        uint64_t fired = 0;

        void
        fire(Time now)
        {
            ++fired;
            if (togo > 0) {
                --togo;
                // Small jitter so successors interleave instead of
                // arriving in lockstep.
                eq.schedule(now + 1.0 +
                                1e-4 * static_cast<double>(fired & 15),
                            [this](Time t) { fire(t); });
            }
        }
    } driver{eq, total > outstanding ? total - outstanding : 0};

    const Time base = eq.now();
    for (std::size_t i = 0; i < outstanding && i < total; ++i)
        eq.schedule(base + 1e-3 * static_cast<double>(i + 1),
                    [&driver](Time t) { driver.fire(t); });
    eq.runAll();
    return driver.fired;
}

constexpr std::size_t kOutstanding = 48;

void
BM_HeapSteadyState(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    uint64_t fired = 0;
    EventQueue eq;
    for (auto _ : state)
        fired += steadyState(eq, n, kOutstanding);
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * n));
}

void
BM_MapSteadyState(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    uint64_t fired = 0;
    MapEventQueue eq;
    for (auto _ : state)
        fired += steadyState(eq, n, kOutstanding);
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * n));
}

// Timer churn: arm a timeout, cancel it on the "next arrival", rearm.
// This is the DPM idle-timer pattern — nearly every event dies young.

void
BM_HeapTimerChurn(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    uint64_t fired = 0;
    EventQueue eq;
    for (auto _ : state) {
        const Time base = eq.now();
        EventQueue::Handle pending{};
        for (std::size_t i = 0; i < n; ++i) {
            eq.cancel(pending);
            pending = eq.schedule(base + static_cast<Time>(i) + 10.0,
                                  [&fired](Time) { ++fired; });
        }
        eq.runAll();
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * n));
}

void
BM_MapTimerChurn(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    uint64_t fired = 0;
    MapEventQueue eq;
    for (auto _ : state) {
        const Time base = eq.now();
        MapEventQueue::Key pending{-1.0, 0};
        for (std::size_t i = 0; i < n; ++i) {
            eq.cancel(pending);
            pending = eq.schedule(base + static_cast<Time>(i) + 10.0,
                                  [&fired](Time) { ++fired; });
        }
        eq.runAll();
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * n));
}

BENCHMARK(BM_HeapScheduleRun)->Range(1 << 10, 1 << 16);
BENCHMARK(BM_MapScheduleRun)->Range(1 << 10, 1 << 16);
BENCHMARK(BM_HeapSteadyState)->Range(1 << 10, 1 << 16);
BENCHMARK(BM_MapSteadyState)->Range(1 << 10, 1 << 16);
BENCHMARK(BM_HeapTimerChurn)->Range(1 << 10, 1 << 16);
BENCHMARK(BM_MapTimerChurn)->Range(1 << 10, 1 << 16);

// Head-to-head report: each shape timed directly, heap and map
// interleaved round by round with the best round kept, so slow-drift
// noise (frequency scaling, a busy neighbour on a shared host)
// cannot favour whichever side happened to run later.

template <typename Queue>
double
scheduleRunRate(std::size_t n, const std::vector<Time> &times)
{
    Queue eq;
    uint64_t fired = 0;
    const auto pass = [&] {
        const Time base = eq.now();
        for (std::size_t i = 0; i < n; ++i)
            eq.schedule(base + times[i], [&fired](Time) { ++fired; });
        eq.runAll();
    };
    pass(); // warm the allocator and the queue's capacity
    const auto start = std::chrono::steady_clock::now();
    pass();
    const std::chrono::duration<double> s =
        std::chrono::steady_clock::now() - start;
    return static_cast<double>(n) / s.count();
}

template <typename Queue>
double
steadyStateRate(std::size_t n)
{
    Queue eq;
    steadyState(eq, n, kOutstanding);
    const auto start = std::chrono::steady_clock::now();
    steadyState(eq, n, kOutstanding);
    const std::chrono::duration<double> s =
        std::chrono::steady_clock::now() - start;
    return static_cast<double>(n) / s.count();
}

template <typename Queue, typename Key>
double
timerChurnRate(std::size_t n, Key idle)
{
    Queue eq;
    uint64_t fired = 0;
    const auto pass = [&] {
        const Time base = eq.now();
        Key pending = idle;
        for (std::size_t i = 0; i < n; ++i) {
            eq.cancel(pending);
            pending = eq.schedule(base + static_cast<Time>(i) + 10.0,
                                  [&fired](Time) { ++fired; });
        }
        eq.runAll();
    };
    pass();
    const auto start = std::chrono::steady_clock::now();
    pass();
    const std::chrono::duration<double> s =
        std::chrono::steady_clock::now() - start;
    return static_cast<double>(n) / s.count();
}

void
reportHeadToHead()
{
    constexpr std::size_t kEvents = 1u << 16;
    const auto times = eventTimes(kEvents);

    double heapBulk = 0, mapBulk = 0;
    double heapSteady = 0, mapSteady = 0;
    double heapChurn = 0, mapChurn = 0;
    for (int round = 0; round < 5; ++round) {
        heapBulk = std::max(
            heapBulk, scheduleRunRate<EventQueue>(kEvents, times));
        mapBulk = std::max(
            mapBulk, scheduleRunRate<MapEventQueue>(kEvents, times));
        heapSteady = std::max(heapSteady,
                              steadyStateRate<EventQueue>(kEvents));
        mapSteady = std::max(mapSteady,
                             steadyStateRate<MapEventQueue>(kEvents));
        heapChurn = std::max(
            heapChurn, timerChurnRate<EventQueue, EventQueue::Handle>(
                           kEvents, EventQueue::Handle{}));
        mapChurn = std::max(
            mapChurn, timerChurnRate<MapEventQueue, MapEventQueue::Key>(
                          kEvents, MapEventQueue::Key{-1.0, 0}));
    }

    const auto line = [](const char *shape, double heap, double map) {
        std::cout << shape << ": heap " << heap / 1e6
                  << " M events/s, map " << map / 1e6
                  << " M events/s, ratio " << heap / map << "x\n";
    };
    std::cout << '\n';
    line("schedule+drain", heapBulk, mapBulk);
    line("steady state  ", heapSteady, mapSteady);
    line("timer churn   ", heapChurn, mapChurn);

    benchsupport::BenchReport report("micro_events");
    report.metric("schedule_run_heap_events_per_sec", heapBulk);
    report.metric("schedule_run_map_events_per_sec", mapBulk);
    report.metric("schedule_run_speedup", heapBulk / mapBulk);
    report.metric("steady_state_heap_events_per_sec", heapSteady);
    report.metric("steady_state_map_events_per_sec", mapSteady);
    report.metric("steady_state_speedup", heapSteady / mapSteady);
    report.metric("timer_churn_heap_events_per_sec", heapChurn);
    report.metric("timer_churn_map_events_per_sec", mapChurn);
    report.metric("timer_churn_speedup", heapChurn / mapChurn);
    report.write();
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    reportHeadToHead();
    return 0;
}
