/**
 * @file
 * Paper Figure 8: percentage energy savings of PA-LRU over LRU as a
 * function of the spin-up cost (energy for the standby -> active
 * transition), swept over {33.75, 67.5, 101.25, 135, 202.5, 270,
 * 675} J as in the paper. Savings should be fairly stable across the
 * 67.5-270 J range of real SCSI disks and fall off at both extremes.
 *
 * All 14 runs execute in parallel on the work-stealing pool
 * (PACACHE_JOBS overrides the worker count).
 */

#include <iostream>
#include <vector>

#include "bench_report.hh"
#include "core/experiment.hh"
#include "obs/energy_ledger.hh"
#include "runner/sweep.hh"
#include "util/logging.hh"
#include "trace/workloads.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

const std::vector<Energy> kSpinUpCosts{33.75,  67.5,  101.25, 135.0,
                                       202.5, 270.0, 675.0};

runner::RunPoint
point(const Trace &trace, Energy spinup_cost, PolicyKind policy)
{
    runner::RunPoint p;
    p.label = std::string(policyKindName(policy)) + "/spinup" +
              fmt(spinup_cost, 2) + "J";
    p.trace = &trace;
    p.config.policy = policy;
    p.config.dpm = DpmChoice::Practical;
    p.config.cacheBlocks = 1024;
    p.config.pa.epochLength = 900;
    p.config.spec.spinUpEnergy = spinup_cost;
    return p;
}

} // namespace

int
main()
{
    std::cout << "=== Figure 8: PA-LRU energy savings vs spin-up cost "
                 "(OLTP) ===\n\n";

    OltpParams params;
    params.duration = 3600; // half the full trace: sweep is 14 runs
    const Trace trace = makeOltpTrace(params);

    // Point order: cost-major, LRU then PA-LRU within each cost.
    std::vector<runner::RunPoint> points;
    for (Energy cost : kSpinUpCosts) {
        points.push_back(point(trace, cost, PolicyKind::LRU));
        points.push_back(point(trace, cost, PolicyKind::PALRU));
    }
    const auto outcomes =
        runner::runAll(points, benchsupport::jobsFromEnv());

    // Figure points must satisfy the energy-attribution ledger's
    // conservation invariant (rows sum back to the energy totals).
    for (const auto &o : outcomes) {
        const double err = obs::ledgerMaxRelError(o.result.perDisk);
        PACACHE_ASSERT(err <= obs::kLedgerConservationTol,
                       "ledger conservation violated at '", o.label,
                       "' (rel error ", err, ")");
    }

    TextTable t;
    t.header({"Spin-up cost (J)", "Energy savings over LRU"});
    for (std::size_t i = 0; i < kSpinUpCosts.size(); ++i) {
        const double lru = outcomes[2 * i].result.totalEnergy;
        const double pa = outcomes[2 * i + 1].result.totalEnergy;
        t.row({fmt(kSpinUpCosts[i], 2), fmtPct(1.0 - pa / lru, 1)});
    }
    t.print(std::cout);

    std::cout << "\nPaper shape: stable savings across 67.5-270 J "
                 "(real SCSI disks), smaller at both extremes —\n"
                 "cheap spin-ups mean LRU also sleeps; expensive "
                 "spin-ups push thresholds past the available gaps.\n";

    benchsupport::BenchReport report("fig8_spinup",
                                     benchsupport::jobsFromEnv());
    for (const auto &o : outcomes)
        report.addRun(o.label, o.wallMs, trace.size());
    report.write();
    return 0;
}
