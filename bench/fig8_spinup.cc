/**
 * @file
 * Paper Figure 8: percentage energy savings of PA-LRU over LRU as a
 * function of the spin-up cost (energy for the standby -> active
 * transition), swept over {33.75, 67.5, 101.25, 135, 202.5, 270,
 * 675} J as in the paper. Savings should be fairly stable across the
 * 67.5-270 J range of real SCSI disks and fall off at both extremes.
 */

#include <iostream>

#include "core/experiment.hh"
#include "trace/workloads.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

double
savingsAt(const Trace &trace, Energy spinup_cost)
{
    ExperimentConfig cfg;
    cfg.dpm = DpmChoice::Practical;
    cfg.cacheBlocks = 1024;
    cfg.pa.epochLength = 900;
    cfg.spec.spinUpEnergy = spinup_cost;

    cfg.policy = PolicyKind::LRU;
    const double lru = runExperiment(trace, cfg).totalEnergy;
    cfg.policy = PolicyKind::PALRU;
    const double pa = runExperiment(trace, cfg).totalEnergy;
    return 1.0 - pa / lru;
}

} // namespace

int
main()
{
    std::cout << "=== Figure 8: PA-LRU energy savings vs spin-up cost "
                 "(OLTP) ===\n\n";

    OltpParams params;
    params.duration = 3600; // half the full trace: sweep is 14 runs
    const Trace trace = makeOltpTrace(params);

    TextTable t;
    t.header({"Spin-up cost (J)", "Energy savings over LRU"});
    for (Energy cost : {33.75, 67.5, 101.25, 135.0, 202.5, 270.0,
                        675.0}) {
        t.row({fmt(cost, 2), fmtPct(savingsAt(trace, cost), 1)});
    }
    t.print(std::cout);

    std::cout << "\nPaper shape: stable savings across 67.5-270 J "
                 "(real SCSI disks), smaller at both extremes —\n"
                 "cheap spin-ups mean LRU also sleeps; expensive "
                 "spin-ups push thresholds past the available gaps.\n";
    return 0;
}
