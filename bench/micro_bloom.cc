/**
 * @file
 * Micro-benchmarks: Bloom-filter insert/test throughput
 * (google-benchmark). The PA classifier probes the filter on every
 * storage request, so this is a per-request cost.
 */

#include <benchmark/benchmark.h>

#include "util/bloom_filter.hh"
#include "util/random.hh"

using namespace pacache;

namespace
{

void
BM_BloomInsert(benchmark::State &state)
{
    BloomFilter bf(1u << 22, static_cast<std::size_t>(state.range(0)));
    Rng rng(1);
    for (auto _ : state)
        bf.insert(rng.next64());
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
BM_BloomTest(benchmark::State &state)
{
    BloomFilter bf(1u << 22, static_cast<std::size_t>(state.range(0)));
    Rng fill(2);
    for (int i = 0; i < 100000; ++i)
        bf.insert(fill.next64());
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(bf.test(rng.next64()));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
BM_BloomTestAndInsert(benchmark::State &state)
{
    BloomFilter bf(1u << 22, 4);
    Rng rng(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(bf.testAndInsert(rng.next64()));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

BENCHMARK(BM_BloomInsert)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_BloomTest)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_BloomTestAndInsert);

} // namespace

BENCHMARK_MAIN();
