/**
 * @file
 * Ablation: sequential prefetch degree (the paper's future-work
 * extension, in the spirit of Papathanasiou & Scott's "increasing
 * disk burstiness"). A scan-heavy synthetic workload is swept over
 * prefetch degrees: each fetched run lets the disk sleep through the
 * following re-references, trading a longer transfer for fewer
 * wake-ups.
 *
 * All 5 runs execute in parallel on the work-stealing pool
 * (PACACHE_JOBS overrides the worker count).
 */

#include <iostream>
#include <vector>

#include "bench_report.hh"
#include "core/experiment.hh"
#include "runner/sweep.hh"
#include "trace/synthetic.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

Trace
scanTrace()
{
    // Mostly-sequential trace: 10 disks, sparse arrivals so power
    // management has room to act.
    SyntheticParams p;
    p.numRequests = 20000;
    p.numDisks = 10;
    p.arrival = ArrivalModel::pareto(400.0, 1.5);
    p.writeRatio = 0.1;
    p.address.seqProb = 0.7;
    p.address.localProb = 0.1;
    p.address.reuseProb = 0.2;
    p.address.footprintBlocks = 1u << 20;
    return generateSynthetic(p);
}

} // namespace

int
main()
{
    const Trace trace = scanTrace();
    const std::vector<uint32_t> degrees{0, 2, 8, 32, 128};

    std::vector<runner::RunPoint> points;
    for (uint32_t degree : degrees) {
        runner::RunPoint p;
        p.label = "degree" + std::to_string(degree);
        p.trace = &trace;
        p.config.cacheBlocks = 4096;
        p.config.storage.prefetchBlocks = degree;
        points.push_back(std::move(p));
    }
    const auto outcomes =
        runner::runAll(points, benchsupport::jobsFromEnv());

    std::cout << "=== Ablation: sequential prefetch degree "
                 "(scan-heavy workload, LRU, Practical DPM) ===\n\n";
    TextTable t;
    t.header({"degree", "Energy (J)", "vs none", "Mean resp (ms)",
              "Disk accesses", "Prefetched blocks", "Hit ratio"});
    const double base = outcomes[0].result.totalEnergy;
    for (std::size_t i = 0; i < degrees.size(); ++i) {
        const ExperimentResult &r = outcomes[i].result;
        uint64_t accesses = 0;
        for (uint64_t a : r.diskAccesses)
            accesses += a;
        t.row({std::to_string(degrees[i]), fmt(r.totalEnergy, 0),
               fmt(r.totalEnergy / base, 3),
               fmt(r.responses.mean() * 1000.0, 2),
               std::to_string(accesses),
               std::to_string(r.prefetchedBlocks),
               fmt(r.cache.hitRatio(), 3)});
    }
    t.print(std::cout);

    std::cout << "\nDiminishing returns set in once runs outlast the "
                 "sequential locality; very large degrees\nwaste "
                 "transfer energy and cache space on blocks that are "
                 "never referenced.\n";

    benchsupport::BenchReport report("ablation_prefetch",
                                     benchsupport::jobsFromEnv());
    for (const auto &o : outcomes)
        report.addRun(o.label, o.wallMs, trace.size());
    report.write();
    return 0;
}
