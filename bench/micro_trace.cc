/**
 * @file
 * Micro-benchmarks: synthetic trace generation throughput
 * (google-benchmark).
 */

#include <benchmark/benchmark.h>

#include "trace/synthetic.hh"
#include "trace/workloads.hh"

using namespace pacache;

namespace
{

void
BM_GenerateSynthetic(benchmark::State &state)
{
    SyntheticParams p;
    p.numRequests = static_cast<uint64_t>(state.range(0));
    for (auto _ : state) {
        p.seed++;
        benchmark::DoNotOptimize(generateSynthetic(p));
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * state.range(0));
}

void
BM_GenerateOltp(benchmark::State &state)
{
    OltpParams p;
    p.duration = 600;
    for (auto _ : state) {
        p.seed++;
        benchmark::DoNotOptimize(makeOltpTrace(p));
    }
}

void
BM_AddressGenerator(benchmark::State &state)
{
    AddressGenerator::Params p;
    AddressGenerator gen(p);
    Rng rng(5);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next(rng));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

BENCHMARK(BM_GenerateSynthetic)->Arg(10000)->Arg(100000);
BENCHMARK(BM_GenerateOltp);
BENCHMARK(BM_AddressGenerator);

} // namespace

BENCHMARK_MAIN();
