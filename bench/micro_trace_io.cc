/**
 * @file
 * Micro-benchmarks: trace ingestion throughput (google-benchmark) —
 * text parsing vs the buffered .pct reader vs the zero-copy mmap
 * .pct reader, in records per second over the same workload.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "trace/synthetic.hh"
#include "trace/trace_io.hh"
#include "tracefmt/pct.hh"
#include "tracefmt/text_source.hh"
#include "tracefmt/trace_source.hh"

using namespace pacache;

namespace
{

constexpr uint64_t kRecords = 200000;

/** One shared workload, written once per process in both formats. */
class TraceFiles
{
  public:
    TraceFiles()
    {
        SyntheticParams p;
        p.numRequests = kRecords;
        p.numDisks = 8;
        p.seed = 42;
        const Trace t = generateSynthetic(p);

        txt = std::string(std::tmpnam(nullptr)) + ".trace.txt";
        pct = std::string(std::tmpnam(nullptr)) + ".trace.pct";
        writeTraceFile(txt, t);
        tracefmt::MemorySource src(t);
        tracefmt::writePct(pct, src);
    }

    ~TraceFiles()
    {
        std::remove(txt.c_str());
        std::remove(pct.c_str());
    }

    std::string txt;
    std::string pct;
};

const TraceFiles &
files()
{
    static TraceFiles f;
    return f;
}

/** Drain a source to the end, defeating dead-code elimination. */
uint64_t
drain(tracefmt::TraceSource &src)
{
    TraceRecord rec;
    uint64_t sum = 0;
    while (src.next(rec))
        sum += rec.block + rec.numBlocks;
    benchmark::DoNotOptimize(sum);
    return sum;
}

void
BM_TextParse(benchmark::State &state)
{
    for (auto _ : state) {
        tracefmt::TextSource src(files().txt);
        drain(src);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * kRecords));
}

void
BM_PctBuffered(benchmark::State &state)
{
    tracefmt::PctReadOptions opts;
    opts.verifyChecksum = false;
    for (auto _ : state) {
        tracefmt::PctBufferedSource src(files().pct, opts);
        drain(src);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * kRecords));
}

void
BM_PctMmap(benchmark::State &state)
{
    tracefmt::PctReadOptions opts;
    opts.verifyChecksum = false;
    for (auto _ : state) {
        tracefmt::PctMmapSource src(files().pct, opts);
        drain(src);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * kRecords));
}

void
BM_PctMmapVerified(benchmark::State &state)
{
    for (auto _ : state) {
        tracefmt::PctMmapSource src(files().pct); // checksum pass on open
        drain(src);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * kRecords));
}

/**
 * The mmap reader without the paging hints (no MADV_SEQUENTIAL /
 * WILLNEED prefetch ahead, no MADV_DONTNEED release behind), against
 * BM_PctMmap which has both on. On a warm page cache the hinted
 * path's win is small-to-none — the hints exist to bound the
 * resident set on files larger than RAM, not to speed up re-reads —
 * so this pair mostly guards against the hint syscalls costing
 * measurable throughput.
 */
void
BM_PctMmapNoHints(benchmark::State &state)
{
    tracefmt::PctReadOptions opts;
    opts.verifyChecksum = false;
    opts.releaseBehind = false;
    opts.prefetchAhead = false;
    for (auto _ : state) {
        tracefmt::PctMmapSource src(files().pct, opts);
        drain(src);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * kRecords));
}

BENCHMARK(BM_TextParse);
BENCHMARK(BM_PctBuffered);
BENCHMARK(BM_PctMmap);
BENCHMARK(BM_PctMmapVerified);
BENCHMARK(BM_PctMmapNoHints);

} // namespace

BENCHMARK_MAIN();
