/**
 * @file
 * Off-line oracle fast-path micro-benchmark: replays the fig6-scale
 * OLTP workload (21 disks, 2 hours, 1024-block cache) through the
 * indexed-heap/ordered-set OPG and Belady implementations and through
 * the retained node-based references (ReferenceOpgPolicy with the
 * legacy per-call pricing, ReferenceBeladyPolicy), verifying the runs
 * are byte-identical — same eviction sequence, same counters, exactly
 * equal priced schedule energy — before reporting best-of-N replay
 * speedups. Fast and reference reps run as interleaved pairs so
 * bursty machine load cannot skew the ratio toward either side. A
 * pricing-only panel times the precomputed envelope /
 * practical-energy fast paths against the legacy scans on a dense gap
 * grid.
 *
 * BENCH_micro_opg.json carries every timed run plus the speedup
 * ratios; tools/bench_compare.py gates regressions against the
 * committed baseline. PACACHE_BENCH_REPS overrides the repetition
 * count (default 5; every rep re-verifies equivalence).
 */

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_report.hh"
#include "cache/belady.hh"
#include "cache/belady_ref.hh"
#include "cache/cache.hh"
#include "core/opg.hh"
#include "core/opg_ref.hh"
#include "core/optimal.hh"
#include "trace/workloads.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

constexpr std::size_t kCacheBlocks = 1024;

unsigned
repsFromEnv()
{
    if (const char *env = std::getenv("PACACHE_BENCH_REPS")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return 5;
}

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** One replay's identity: eviction order, counters, priced energy. */
struct ReplayFingerprint
{
    uint64_t evictionHash = 1469598103934665603ull; // FNV offset
    uint64_t evictions = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    Energy scheduleEnergyJ = 0;

    void
    addVictim(const BlockId &b)
    {
        ++evictions;
        for (uint64_t word :
             {static_cast<uint64_t>(b.disk), b.block}) {
            evictionHash ^= word;
            evictionHash *= 1099511628211ull;
        }
    }

    bool
    operator==(const ReplayFingerprint &o) const
    {
        return evictionHash == o.evictionHash &&
               evictions == o.evictions && hits == o.hits &&
               misses == o.misses &&
               scheduleEnergyJ == o.scheduleEnergyJ; // exact, not near
    }
};

struct ReplayTiming
{
    double bestMs = 0;
    ReplayFingerprint fp;
};

/** One timed replay of @p accesses through @p policy. */
template <typename Policy>
std::pair<double, ReplayFingerprint>
replayOnce(const std::vector<BlockAccess> &accesses,
           const SchedulePricing &pricing, Policy &&policy)
{
    ReplayFingerprint fp;
    Cache cache(kCacheBlocks, policy);
    std::vector<std::vector<Time>> missTimes;

    const double t0 = nowMs();
    policy.prepare(accesses);
    for (std::size_t i = 0; i < accesses.size(); ++i) {
        const auto r =
            cache.access(accesses[i].block, accesses[i].time, i);
        if (r.evicted)
            fp.addVictim(r.victim);
        if (!r.hit) {
            const DiskId d = accesses[i].block.disk;
            if (d >= missTimes.size())
                missTimes.resize(d + 1);
            missTimes[d].push_back(accesses[i].time);
        }
    }
    const double ms = nowMs() - t0;

    fp.hits = cache.stats().hits;
    fp.misses = cache.stats().misses;
    fp.scheduleEnergyJ = scheduleEnergy(missTimes, pricing);
    return {ms, fp};
}

void
foldRep(ReplayTiming &out, double ms, const ReplayFingerprint &fp,
        unsigned rep)
{
    if (rep == 0) {
        out.bestMs = ms;
        out.fp = fp;
        return;
    }
    out.bestMs = std::min(out.bestMs, ms);
    if (!(fp == out.fp)) {
        std::cerr << "FATAL: replay not deterministic across "
                     "repetitions\n";
        std::exit(1);
    }
}

/**
 * Time fast and reference replays as interleaved pairs: machine-load
 * bursts that span a rep then inflate both sides of the ratio instead
 * of just whichever block happened to be running, so the best-of-N
 * speedup is far more stable than timing the two sides back to back.
 */
template <typename MakeFast, typename MakeRef>
std::pair<ReplayTiming, ReplayTiming>
timeReplayPair(const std::vector<BlockAccess> &accesses,
               const SchedulePricing &pricing, unsigned reps,
               MakeFast makeFast, MakeRef makeRef)
{
    ReplayTiming fast, ref;
    for (unsigned rep = 0; rep < reps; ++rep) {
        const auto [fms, ffp] =
            replayOnce(accesses, pricing, makeFast());
        foldRep(fast, fms, ffp, rep);
        const auto [rms, rfp] =
            replayOnce(accesses, pricing, makeRef());
        foldRep(ref, rms, rfp, rep);
    }
    return {fast, ref};
}

bool
checkIdentical(const char *what, const ReplayTiming &fast,
               const ReplayTiming &ref)
{
    if (fast.fp == ref.fp)
        return true;
    std::cerr << "FATAL: " << what
              << " fast path diverges from reference:\n"
              << "  evictions " << fast.fp.evictions << " vs "
              << ref.fp.evictions << "\n  eviction hash "
              << fast.fp.evictionHash << " vs " << ref.fp.evictionHash
              << "\n  misses " << fast.fp.misses << " vs "
              << ref.fp.misses << "\n  energy "
              << fast.fp.scheduleEnergyJ << " vs "
              << ref.fp.scheduleEnergyJ << '\n';
    return false;
}

/** Time summing a pricing function over a dense grid of gap lengths. */
template <typename Fn>
std::pair<double, Energy>
timePricing(const PowerModel &pm, unsigned reps, Fn fn)
{
    constexpr int kGaps = 2000000;
    const Time horizon = pm.thresholds().empty()
        ? 100.0
        : pm.thresholds().back() * 4;
    double best = 0;
    Energy sink = 0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        Energy sum = 0;
        const double t0 = nowMs();
        for (int i = 0; i < kGaps; ++i)
            sum += fn(pm, horizon * i / kGaps);
        const double ms = nowMs() - t0;
        best = rep == 0 ? ms : std::min(best, ms);
        sink = sum;
    }
    return {best, sink};
}

} // namespace

int
main()
{
    std::cout << "=== micro_opg: off-line oracle fast path ===\n\n";
    const unsigned reps = repsFromEnv();

    const Trace trace = makeOltpTrace();
    const auto accesses = expandTrace(trace);
    const PowerModel pm;
    const SchedulePricing pricing{&pm, 0.05,
                                  accesses.back().time + 1};
    std::cout << "OLTP fig6 scale: " << accesses.size()
              << " block accesses, " << trace.numDisks()
              << " disks, cache " << kCacheBlocks << " blocks, "
              << reps << " reps\n\n";

    benchsupport::BenchReport report("micro_opg",
                                     benchsupport::jobsFromEnv());
    TextTable table;
    table.header({"Replay", "ref (ms)", "fast (ms)", "speedup"});
    bool ok = true;
    double opgSpeedupFloor = 0;

    struct OpgCase
    {
        const char *name;
        DpmKind kind;
    };
    for (const OpgCase c : {OpgCase{"OPG/oracle", DpmKind::Oracle},
                            OpgCase{"OPG/practical",
                                    DpmKind::Practical}}) {
        const auto [fast, ref] = timeReplayPair(
            accesses, pricing, reps,
            [&] { return OpgPolicy(pm, c.kind); },
            [&] {
                return ReferenceOpgPolicy(pm, c.kind, 0,
                                          /*refPricing=*/true);
            });
        ok = checkIdentical(c.name, fast, ref) && ok;
        const double speedup = ref.bestMs / fast.bestMs;
        opgSpeedupFloor = opgSpeedupFloor == 0
            ? speedup
            : std::min(opgSpeedupFloor, speedup);
        table.row({c.name, fmt(ref.bestMs, 1), fmt(fast.bestMs, 1),
                   fmt(speedup, 2)});
        report.addRun(std::string(c.name) + "/fast", fast.bestMs,
                      accesses.size());
        report.addRun(std::string(c.name) + "/ref", ref.bestMs,
                      accesses.size());
    }

    {
        const auto [fast, ref] = timeReplayPair(
            accesses, pricing, reps, [] { return BeladyPolicy(); },
            [] { return ReferenceBeladyPolicy(); });
        ok = checkIdentical("Belady", fast, ref) && ok;
        table.row({"Belady", fmt(ref.bestMs, 1), fmt(fast.bestMs, 1),
                   fmt(ref.bestMs / fast.bestMs, 2)});
        report.addRun("Belady/fast", fast.bestMs, accesses.size());
        report.addRun("Belady/ref", ref.bestMs, accesses.size());
        report.metric("belady_replay_speedup",
                      ref.bestMs / fast.bestMs);
    }
    table.print(std::cout);
    std::cout << '\n';

    // Pricing-only panel: precomputed curves vs legacy scans.
    TextTable ptable;
    ptable.header({"Pricing", "ref (ms)", "fast (ms)", "speedup"});
    const auto envFast = timePricing(
        pm, reps, [](const PowerModel &m, Time t) {
            return m.envelope(t);
        });
    const auto envRef = timePricing(
        pm, reps, [](const PowerModel &m, Time t) {
            return m.envelopeRef(t);
        });
    const auto pracFast = timePricing(
        pm, reps, [](const PowerModel &m, Time t) {
            return m.practicalEnergy(t);
        });
    const auto pracRef = timePricing(
        pm, reps, [](const PowerModel &m, Time t) {
            return m.practicalEnergyRef(t);
        });
    if (envFast.second != envRef.second ||
        pracFast.second != pracRef.second) {
        std::cerr << "FATAL: pricing fast path diverges from the "
                     "legacy scan\n";
        ok = false;
    }
    ptable.row({"envelope", fmt(envRef.first, 1),
                fmt(envFast.first, 1),
                fmt(envRef.first / envFast.first, 2)});
    ptable.row({"practical", fmt(pracRef.first, 1),
                fmt(pracFast.first, 1),
                fmt(pracRef.first / pracFast.first, 2)});
    ptable.print(std::cout);
    std::cout << '\n';
    report.addRun("pricing/envelope/fast", envFast.first, 2000000);
    report.addRun("pricing/envelope/ref", envRef.first, 2000000);
    report.addRun("pricing/practical/fast", pracFast.first, 2000000);
    report.addRun("pricing/practical/ref", pracRef.first, 2000000);
    report.metric("envelope_pricing_speedup",
                  envRef.first / envFast.first);
    report.metric("practical_pricing_speedup",
                  pracRef.first / pracFast.first);

    // The headline number: the slower of the two OPG replays.
    report.metric("opg_replay_speedup", opgSpeedupFloor);
    std::cout << "OPG end-to-end replay speedup (worst case): "
              << fmt(opgSpeedupFloor, 2) << "x\n";
    std::cout << (ok ? "equivalence: byte-identical\n"
                     : "equivalence: DIVERGED\n");

    const std::string path = report.write();
    std::cout << "report: " << path << '\n';
    return ok ? 0 : 1;
}
