/**
 * @file
 * Out-of-core scale micro-benchmark: stream-generate a scaled OLTP
 * trace to .pct (never materialized), replay it with the windowed
 * off-line oracle (OPG on WindowedFuture) under a fixed oracle memory
 * budget, replay it disk-sharded across the work-stealing pool under
 * the same budget, and only then run the unbounded in-memory variants
 * — tracking throughput plus peak RSS (VmHWM) at every stage. The
 * trace is 10x the future-knowledge window, so a bounded peak RSS is
 * direct evidence the oracle really runs out-of-core.
 *
 * Phase order matters: VmHWM is a process-wide high-water mark and
 * never goes down, so the budgeted phases run FIRST and the gated
 * footprint ceiling is sampled before any unbounded replay runs. The
 * unbounded phases then serve two purposes: their fingerprints must
 * equal the budgeted ones bit for bit (spilling moves bytes, never
 * values), and their throughput prices what the budget costs.
 *
 * BENCH_scale.json carries two gated metrics:
 *   max_peak_rss_mb          process-wide VmHWM in MiB after the
 *                            budgeted phases; "max_"-prefixed, so
 *                            tools/bench_compare.py gates it as a
 *                            CEILING (higher is worse), and
 *                            tools/check.sh adds a hard absolute
 *                            ceiling on top of the baseline.
 *   budget_throughput_ratio  budgeted / unbounded windowed-replay
 *                            throughput; check.sh holds it to the
 *                            >= 0.8 acceptance floor.
 * plus informational (un-gated, "info_"-prefixed) throughput numbers
 * and the unbounded peak RSS, which are machine-specific.
 *
 * Equivalence gates built into the timing loop:
 *   - every budgeted windowed repetition must be bit-identical;
 *   - the budgeted sharded replay must be bit-identical at --jobs 1
 *     and at the full worker count;
 *   - the unbounded windowed and sharded replays must reproduce the
 *     budgeted fingerprints exactly.
 *
 * PACACHE_SCALE_REQUESTS / PACACHE_SCALE_DISKS resize the workload
 * (defaults: 8000000 x 64); PACACHE_SCALE_BUDGET_MB sets the oracle
 * memory budget in MiB (default 64); PACACHE_BENCH_REPS overrides
 * the repetition count (default 3).
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include <stdlib.h>
#include <unistd.h>

#include "bench_report.hh"
#include "core/experiment.hh"
#include "runner/shard_replay.hh"
#include "trace/stream_gen.hh"
#include "tracefmt/pct.hh"
#include "util/mem.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

uint64_t
envUint(const char *name, uint64_t fallback)
{
    if (const char *env = std::getenv(name)) {
        const long long v = std::atoll(env);
        if (v > 0)
            return static_cast<uint64_t>(v);
    }
    return fallback;
}

double
mib(uint64_t bytes)
{
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Unlinked-on-exit temporary .pct path. */
struct TempPct
{
    std::string path;

    TempPct()
    {
        const char *dir = std::getenv("TMPDIR");
        std::string templ = std::string(dir && *dir ? dir : "/tmp") +
                            "/pacache-scale-XXXXXX.pct";
        const int fd = mkstemps(templ.data(), 4);
        if (fd < 0) {
            std::cerr << "FATAL: cannot create temp file " << templ
                      << '\n';
            std::exit(1);
        }
        close(fd);
        path = templ;
    }

    ~TempPct() { unlink(path.c_str()); }
};

/** The replay outputs that must not vary across reps or job counts. */
struct Fingerprint
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    Energy totalEnergy = 0;

    Fingerprint() = default;

    explicit Fingerprint(const ExperimentResult &r)
        : hits(r.cache.hits), misses(r.cache.misses),
          evictions(r.cache.evictions), totalEnergy(r.totalEnergy)
    {
    }

    bool
    operator==(const Fingerprint &o) const
    {
        return hits == o.hits && misses == o.misses &&
               evictions == o.evictions &&
               totalEnergy == o.totalEnergy; // exact, not near
    }
};

/**
 * Best-of-N windowed replay; every repetition must reproduce the
 * first repetition's fingerprint. Returns the best seconds.
 */
double
timeWindowed(const std::string &pctPath, const ExperimentConfig &cfg,
             uint64_t requests, unsigned reps, const char *what,
             Fingerprint &fp)
{
    tracefmt::PctReadOptions ropts;
    // Checksum verification off: it is a separate sequential pass and
    // this benchmark times the replay itself.
    ropts.verifyChecksum = false;
    double best = 0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        tracefmt::PctMmapSource src(pctPath, ropts);
        const auto t0 = std::chrono::steady_clock::now();
        const ExperimentResult r = runExperiment(src, cfg);
        const double sec = secondsSince(t0);
        const Fingerprint now(r);
        if (rep == 0) {
            fp = now;
        } else if (!(now == fp)) {
            std::cerr << "FATAL: " << what
                      << " replay not deterministic across "
                         "repetitions\n";
            std::exit(1);
        }
        if (rep == 0 || sec < best)
            best = sec;
        std::cout << "  " << what << " rep " << rep << ": "
                  << fmt(static_cast<double>(requests) / sec / 1e3, 1)
                  << " k req/s\n";
    }
    return best;
}

} // namespace

int
main()
{
    std::cout << "=== micro_scale: out-of-core replay at scale ===\n\n";
    const uint64_t requests =
        envUint("PACACHE_SCALE_REQUESTS", 8000000);
    const uint32_t disks = static_cast<uint32_t>(
        envUint("PACACHE_SCALE_DISKS", 64));
    const uint64_t budgetMb = envUint("PACACHE_SCALE_BUDGET_MB", 64);
    const unsigned reps =
        static_cast<unsigned>(envUint("PACACHE_BENCH_REPS", 3));
    const unsigned jobs = benchsupport::jobsFromEnv();

    ExperimentConfig cfg;
    cfg.policy = PolicyKind::OPG;
    cfg.cacheBlocks = 1 << 16;
    // Trace = 10x window: the oracle must page future knowledge.
    cfg.windowAccesses =
        static_cast<std::size_t>(std::max<uint64_t>(requests / 10, 1));
    // Several backward-pass chunks, so stitching is on the timed path.
    cfg.oracleChunkAccesses =
        static_cast<std::size_t>(std::max<uint64_t>(requests / 8, 1024));

    std::cout << requests << " requests, " << disks
              << " disks (scaled oltp), window " << cfg.windowAccesses
              << " accesses, budget " << budgetMb << " MiB, " << reps
              << " reps\n\n";

    benchsupport::BenchReport report("scale", jobs);
    TempPct pct;

    // --- generate: stream straight to .pct, no Trace in memory ----
    double genSec;
    {
        StreamingSyntheticSource gen(scaledOltpStreams(disks), 0.0, 42,
                                     requests);
        const auto t0 = std::chrono::steady_clock::now();
        const tracefmt::PctInfo info = tracefmt::writePct(pct.path, gen);
        genSec = secondsSince(t0);
        if (info.records != requests) {
            std::cerr << "FATAL: generator produced "
                      << info.records << " of " << requests
                      << " records\n";
            return 1;
        }
    }
    const double genRps = static_cast<double>(requests) / genSec;
    report.addRun("scale/generate", genSec * 1e3, requests);
    report.metric("info_gen_krps", genRps / 1e3);
    std::cout << "generate: " << fmt(genRps / 1e6, 3)
              << " M req/s, peak RSS " << fmt(mib(peakRssBytes()), 1)
              << " MiB\n";

    // --- budgeted windowed OPG replay (gated footprint) ------------
    ExperimentConfig bcfg = cfg;
    bcfg.oracleMemBudget =
        static_cast<std::size_t>(budgetMb) << 20;
    Fingerprint fpBudget;
    const double budgetSec = timeWindowed(
        pct.path, bcfg, requests, reps, "budgeted windowed opg",
        fpBudget);
    const double budgetRps =
        static_cast<double>(requests) / budgetSec;
    report.addRun("scale/opg_windowed_budget", budgetSec * 1e3,
                  requests);
    report.metric("info_budget_mb", static_cast<double>(budgetMb));
    report.metric("info_budget_windowed_krps", budgetRps / 1e3);
    std::cout << "budgeted windowed opg: " << fmt(budgetRps / 1e3, 1)
              << " k req/s best, peak RSS "
              << fmt(mib(peakRssBytes()), 1) << " MiB\n";

    // --- budgeted sharded replay: jobs=1 must equal jobs=N ---------
    runner::ShardReplayOptions sopts;
    sopts.shards = 8;
    sopts.jobs = 1;
    Fingerprint shardFp;
    {
        const ExperimentResult r =
            runner::runShardedExperiment(pct.path, bcfg, sopts);
        shardFp = Fingerprint(r);
    }
    sopts.jobs = jobs;
    double shardBudgetSec = 0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        const ExperimentResult r =
            runner::runShardedExperiment(pct.path, bcfg, sopts);
        const double sec = secondsSince(t0);
        if (!(Fingerprint(r) == shardFp)) {
            std::cerr << "FATAL: budgeted sharded replay at jobs="
                      << jobs << " differs from jobs=1\n";
            return 1;
        }
        if (rep == 0 || sec < shardBudgetSec)
            shardBudgetSec = sec;
        std::cout << "  budgeted sharded opg rep " << rep << ": "
                  << fmt(static_cast<double>(requests) / sec / 1e3, 1)
                  << " k req/s\n";
    }
    const double shardBudgetRps =
        static_cast<double>(requests) / shardBudgetSec;
    report.addRun("scale/opg_sharded_budget", shardBudgetSec * 1e3,
                  requests);
    report.metric("info_budget_sharded_krps", shardBudgetRps / 1e3);

    // --- the gated ceiling: sampled BEFORE any unbounded phase -----
    // VmHWM is monotone, so this is exactly the high-water mark of
    // generation plus every budgeted replay.
    const double peakMb = mib(peakRssBytes());
    report.metric("max_peak_rss_mb", peakMb);
    std::cout << "budgeted sharded opg (" << sopts.shards
              << " shards): " << fmt(shardBudgetRps / 1e3, 1)
              << " k req/s best\npeak RSS " << fmt(peakMb, 1)
              << " MiB across all budgeted phases (gated)\n";

    // --- unbounded windowed replay: prices the budget --------------
    Fingerprint fpFree;
    const double freeSec = timeWindowed(
        pct.path, cfg, requests, reps, "unbounded windowed opg",
        fpFree);
    if (!(fpFree == fpBudget)) {
        std::cerr << "FATAL: budgeted windowed replay differs from "
                     "the unbounded replay\n";
        return 1;
    }
    const double freeRps = static_cast<double>(requests) / freeSec;
    report.addRun("scale/opg_windowed", freeSec * 1e3, requests);
    report.metric("info_windowed_krps", freeRps / 1e3);
    const double ratio = budgetRps / freeRps;
    report.metric("budget_throughput_ratio", ratio);
    std::cout << "unbounded windowed opg: " << fmt(freeRps / 1e3, 1)
              << " k req/s best; budgeted/unbounded = "
              << fmt(ratio, 3) << '\n';

    // --- unbounded sharded replay ----------------------------------
    double shardSec = 0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        const ExperimentResult r =
            runner::runShardedExperiment(pct.path, cfg, sopts);
        const double sec = secondsSince(t0);
        if (!(Fingerprint(r) == shardFp)) {
            std::cerr << "FATAL: unbounded sharded replay differs "
                         "from the budgeted sharded replay\n";
            return 1;
        }
        if (rep == 0 || sec < shardSec)
            shardSec = sec;
        std::cout << "  unbounded sharded opg rep " << rep << ": "
                  << fmt(static_cast<double>(requests) / sec / 1e3, 1)
                  << " k req/s\n";
    }
    const double shardRps = static_cast<double>(requests) / shardSec;
    report.addRun("scale/opg_sharded", shardSec * 1e3, requests);
    report.metric("info_sharded_krps", shardRps / 1e3);
    report.metric("info_peak_rss_unbounded_mb", mib(peakRssBytes()));
    std::cout << "unbounded sharded opg: " << fmt(shardRps / 1e3, 1)
              << " k req/s best, unbounded peak RSS "
              << fmt(mib(peakRssBytes()), 1) << " MiB\n";

    std::cout << "\nwrote " << report.write() << '\n';
    return 0;
}
