/**
 * @file
 * Out-of-core scale micro-benchmark: stream-generate a scaled OLTP
 * trace to .pct (never materialized), replay it with the windowed
 * off-line oracle (OPG on WindowedFuture), then replay it disk-sharded
 * across the work-stealing pool — and track throughput plus peak RSS
 * (VmHWM) at every stage. The trace is 10x the future-knowledge
 * window, so a bounded peak RSS is direct evidence the oracle really
 * runs out-of-core.
 *
 * BENCH_scale.json carries one gated metric:
 *   max_peak_rss_mb   process-wide VmHWM in MiB after all phases;
 *                     "max_"-prefixed, so tools/bench_compare.py
 *                     gates it as a CEILING (higher is worse), and
 *                     tools/check.sh adds a hard absolute ceiling on
 *                     top of the baseline comparison.
 * plus informational (un-gated, "info_"-prefixed) throughput numbers,
 * which are machine-specific.
 *
 * Equivalence gates built into the timing loop:
 *   - every windowed replay repetition must be bit-identical
 *     (deterministic streaming replay);
 *   - the sharded replay must be bit-identical at --jobs 1 and at the
 *     full worker count (scheduling must not leak into statistics).
 *
 * PACACHE_SCALE_REQUESTS / PACACHE_SCALE_DISKS resize the workload
 * (defaults: 2000000 x 64); PACACHE_BENCH_REPS overrides the
 * repetition count (default 3).
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include <stdlib.h>
#include <unistd.h>

#include "bench_report.hh"
#include "core/experiment.hh"
#include "runner/shard_replay.hh"
#include "trace/stream_gen.hh"
#include "tracefmt/pct.hh"
#include "util/mem.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

uint64_t
envUint(const char *name, uint64_t fallback)
{
    if (const char *env = std::getenv(name)) {
        const long long v = std::atoll(env);
        if (v > 0)
            return static_cast<uint64_t>(v);
    }
    return fallback;
}

double
mib(uint64_t bytes)
{
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Unlinked-on-exit temporary .pct path. */
struct TempPct
{
    std::string path;

    TempPct()
    {
        const char *dir = std::getenv("TMPDIR");
        std::string templ = std::string(dir && *dir ? dir : "/tmp") +
                            "/pacache-scale-XXXXXX.pct";
        const int fd = mkstemps(templ.data(), 4);
        if (fd < 0) {
            std::cerr << "FATAL: cannot create temp file " << templ
                      << '\n';
            std::exit(1);
        }
        close(fd);
        path = templ;
    }

    ~TempPct() { unlink(path.c_str()); }
};

/** The replay outputs that must not vary across reps or job counts. */
struct Fingerprint
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    Energy totalEnergy = 0;

    Fingerprint() = default;

    explicit Fingerprint(const ExperimentResult &r)
        : hits(r.cache.hits), misses(r.cache.misses),
          evictions(r.cache.evictions), totalEnergy(r.totalEnergy)
    {
    }

    bool
    operator==(const Fingerprint &o) const
    {
        return hits == o.hits && misses == o.misses &&
               evictions == o.evictions &&
               totalEnergy == o.totalEnergy; // exact, not near
    }
};

} // namespace

int
main()
{
    std::cout << "=== micro_scale: out-of-core replay at scale ===\n\n";
    const uint64_t requests =
        envUint("PACACHE_SCALE_REQUESTS", 2000000);
    const uint32_t disks = static_cast<uint32_t>(
        envUint("PACACHE_SCALE_DISKS", 64));
    const unsigned reps =
        static_cast<unsigned>(envUint("PACACHE_BENCH_REPS", 3));
    const unsigned jobs = benchsupport::jobsFromEnv();

    ExperimentConfig cfg;
    cfg.policy = PolicyKind::OPG;
    cfg.cacheBlocks = 1 << 16;
    // Trace = 10x window: the oracle must page future knowledge.
    cfg.windowAccesses =
        static_cast<std::size_t>(std::max<uint64_t>(requests / 10, 1));
    // Several backward-pass chunks, so stitching is on the timed path.
    cfg.oracleChunkAccesses =
        static_cast<std::size_t>(std::max<uint64_t>(requests / 8, 1024));

    std::cout << requests << " requests, " << disks
              << " disks (scaled oltp), window " << cfg.windowAccesses
              << " accesses, " << reps << " reps\n\n";

    benchsupport::BenchReport report("scale", jobs);
    TempPct pct;

    // --- generate: stream straight to .pct, no Trace in memory ----
    double genSec;
    {
        StreamingSyntheticSource gen(scaledOltpStreams(disks), 0.0, 42,
                                     requests);
        const auto t0 = std::chrono::steady_clock::now();
        const tracefmt::PctInfo info = tracefmt::writePct(pct.path, gen);
        genSec = secondsSince(t0);
        if (info.records != requests) {
            std::cerr << "FATAL: generator produced "
                      << info.records << " of " << requests
                      << " records\n";
            return 1;
        }
    }
    const double genRps = static_cast<double>(requests) / genSec;
    report.addRun("scale/generate", genSec * 1e3, requests);
    report.metric("info_gen_krps", genRps / 1e3);
    std::cout << "generate: " << fmt(genRps / 1e6, 3)
              << " M req/s, peak RSS " << fmt(mib(peakRssBytes()), 1)
              << " MiB\n";

    // --- windowed OPG replay, best of N, bit-identical reps --------
    // Checksum verification off: it is a separate sequential pass and
    // this benchmark times the replay itself.
    tracefmt::PctReadOptions ropts;
    ropts.verifyChecksum = false;
    double windowedSec = 0;
    Fingerprint fp;
    for (unsigned rep = 0; rep < reps; ++rep) {
        tracefmt::PctMmapSource src(pct.path, ropts);
        const auto t0 = std::chrono::steady_clock::now();
        const ExperimentResult r = runExperiment(src, cfg);
        const double sec = secondsSince(t0);
        const Fingerprint now(r);
        if (rep == 0) {
            fp = now;
        } else if (!(now == fp)) {
            std::cerr << "FATAL: windowed replay not deterministic "
                         "across repetitions\n";
            return 1;
        }
        if (rep == 0 || sec < windowedSec)
            windowedSec = sec;
        std::cout << "  windowed opg rep " << rep << ": "
                  << fmt(static_cast<double>(requests) / sec / 1e3, 1)
                  << " k req/s\n";
    }
    const double windowedRps =
        static_cast<double>(requests) / windowedSec;
    report.addRun("scale/opg_windowed", windowedSec * 1e3, requests);
    report.metric("info_windowed_krps", windowedRps / 1e3);
    report.metric("info_peak_rss_windowed_mb", mib(peakRssBytes()));
    std::cout << "windowed opg: " << fmt(windowedRps / 1e3, 1)
              << " k req/s best, peak RSS "
              << fmt(mib(peakRssBytes()), 1) << " MiB\n";

    // --- disk-sharded replay: jobs=1 must equal jobs=N -------------
    runner::ShardReplayOptions sopts;
    sopts.shards = 8;
    sopts.jobs = 1;
    Fingerprint shardFp;
    {
        const ExperimentResult r =
            runner::runShardedExperiment(pct.path, cfg, sopts);
        shardFp = Fingerprint(r);
    }
    sopts.jobs = jobs;
    double shardSec = 0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        const ExperimentResult r =
            runner::runShardedExperiment(pct.path, cfg, sopts);
        const double sec = secondsSince(t0);
        if (!(Fingerprint(r) == shardFp)) {
            std::cerr << "FATAL: sharded replay at jobs=" << jobs
                      << " differs from jobs=1\n";
            return 1;
        }
        if (rep == 0 || sec < shardSec)
            shardSec = sec;
        std::cout << "  sharded opg rep " << rep << ": "
                  << fmt(static_cast<double>(requests) / sec / 1e3, 1)
                  << " k req/s\n";
    }
    const double shardRps = static_cast<double>(requests) / shardSec;
    report.addRun("scale/opg_sharded", shardSec * 1e3, requests);
    report.metric("info_sharded_krps", shardRps / 1e3);

    // --- the gated ceiling -----------------------------------------
    const double peakMb = mib(peakRssBytes());
    report.metric("max_peak_rss_mb", peakMb);
    std::cout << "sharded opg (" << sopts.shards << " shards): "
              << fmt(shardRps / 1e3, 1) << " k req/s best\n"
              << "\npeak RSS " << fmt(peakMb, 1)
              << " MiB across all phases\n";

    std::cout << "\nwrote " << report.write() << '\n';
    return 0;
}
