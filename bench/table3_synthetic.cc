/**
 * @file
 * Paper Table 3: default synthetic trace parameters used by the
 * write-policy study, plus a verification pass showing the generated
 * trace matches the requested knobs.
 */

#include <iostream>

#include "trace/stats.hh"
#include "trace/synthetic.hh"
#include "util/table.hh"

using namespace pacache;

int
main()
{
    SyntheticParams p;
    p.numRequests = 100000;

    std::cout << "=== Table 3: Default Synthetic Trace Parameters "
                 "===\n\n";
    TextTable t;
    t.row({"Request Number", std::to_string(p.numRequests)});
    t.row({"Disk Number", std::to_string(p.numDisks)});
    t.row({"Exponential Distribution mean",
           fmt(p.arrival.meanMs, 0) + " ms"});
    t.row({"Pareto Distribution shape",
           fmt(p.arrival.paretoShape, 1) + " (finite mean, infinite "
                                           "variance)"});
    t.row({"Write Ratio", fmt(p.writeRatio, 2)});
    t.row({"Disk Size", "18 GB"});
    t.row({"Sequential Access Probability", fmt(p.address.seqProb, 2)});
    t.row({"Local Access Probability", fmt(p.address.localProb, 2)});
    t.row({"Random Access Probability",
           fmt(1.0 - p.address.seqProb - p.address.localProb, 2)});
    t.row({"Maximum Local Distance",
           std::to_string(p.address.maxLocalDistance) + " blocks"});
    t.row({"Temporal locality (Zipf stack distances), theta",
           fmt(p.address.zipfTheta, 2)});
    t.row({"Stack reuse probability", fmt(p.address.reuseProb, 2)});
    t.print(std::cout);

    std::cout << "\n=== Generated-trace verification ===\n\n";
    const TraceStats s = characterize(generateSynthetic(p));
    TextTable v;
    v.header({"Metric", "Requested", "Generated"});
    v.row({"requests", std::to_string(p.numRequests),
           std::to_string(s.requests)});
    v.row({"disks", std::to_string(p.numDisks),
           std::to_string(s.disks)});
    v.row({"write ratio", fmt(p.writeRatio, 3), fmt(s.writeRatio, 3)});
    v.row({"mean inter-arrival (ms)", fmt(p.arrival.meanMs, 1),
           fmt(s.meanInterArrival * 1000.0, 1)});
    v.print(std::cout);
    return 0;
}
