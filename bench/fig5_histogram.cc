/**
 * @file
 * Paper Figure 5: the epoch histogram approximating the cumulative
 * distribution function of idle-interval lengths, and the inverse
 * lookup F^{-1}(p) the PA classifier uses.
 */

#include <iostream>

#include "trace/synthetic.hh"
#include "util/histogram.hh"
#include "util/table.hh"

using namespace pacache;

int
main()
{
    std::cout << "=== Figure 5: interval-length histogram as a CDF "
                 "===\n\n";

    // Bursty arrival stream, as a disk behind a cache would see.
    Rng rng(42);
    const auto arrivals = ArrivalModel::pareto(5000.0, 1.5);
    auto hist = IntervalHistogram::geometric(0.1, 1000.0, 4);
    for (int i = 0; i < 20000; ++i)
        hist.record(arrivals.sample(rng));

    TextTable t;
    t.header({"interval x (s)", "F(x)"});
    for (double x = 0.25; x <= 512.0; x *= 2.0)
        t.row({fmt(x, 2), fmt(hist.cdf(x), 4)});
    t.print(std::cout);

    std::cout << "\nInverse lookups used by the PA classifier:\n";
    for (double p : {0.5, 0.8, 0.9, 0.95}) {
        std::cout << "  F^-1(" << fmt(p, 2)
                  << ") = " << fmt(hist.quantile(p), 2) << " s\n";
    }
    std::cout << "\nmean interval = " << fmt(hist.mean(), 2) << " s, "
              << hist.sampleCount() << " samples\n";
    return 0;
}
