/**
 * @file
 * Paper Table 2: characteristics of the two evaluation traces.
 * Our OLTP-like and Cello96-like traces are synthesized stand-ins
 * (see DESIGN.md §3); this harness prints the same columns the paper
 * reports — disks, write ratio, mean inter-arrival time — plus the
 * cold-miss structure that drives the Figure-6 results.
 */

#include <iostream>

#include "trace/stats.hh"
#include "trace/workloads.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

void
report(TextTable &t, const char *name, const Trace &trace)
{
    const TraceStats s = characterize(trace);
    t.row({name, std::to_string(s.disks),
           fmtPct(s.writeRatio, 0),
           fmt(s.meanInterArrival * 1000.0, 2) + " ms",
           std::to_string(s.requests),
           fmt(s.duration, 0) + " s",
           fmtPct(static_cast<double>(s.uniqueBlocks) /
                      static_cast<double>(s.requests),
                  0)});
}

} // namespace

int
main()
{
    std::cout << "=== Table 2: Trace Characteristics ===\n"
              << "(paper: OLTP 21 disks / 22% writes / 99 ms;"
              << " Cello96 19 disks / 38% writes / 5.61 ms)\n\n";

    TextTable t;
    t.header({"Trace", "Disks", "Writes", "Mean inter-arrival",
              "Requests", "Duration", "Unique/request"});

    report(t, "OLTP (synthetic)", makeOltpTrace());

    CelloParams cp;
    cp.duration = 300; // enough to characterize; keeps runtime low
    report(t, "Cello96 (synthetic)", makeCelloTrace(cp));

    t.print(std::cout);

    std::cout << "\n'Unique/request' approximates the cold-miss "
                 "fraction: the paper reports ~64% of Cello96\n"
                 "accesses are cold misses, which caps what any "
                 "replacement policy can do (Figure 6b).\n";
    return 0;
}
