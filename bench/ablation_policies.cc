/**
 * @file
 * Ablations and extensions beyond the paper's headline figures:
 *   1. every replacement policy (on-line and off-line) on the OLTP
 *      workload — including PA-ARC, the PA technique wrapped around
 *      ARC as Section 4 suggests;
 *   2. OPG's theta knob, sweeping from pure OPG (theta = 0) toward
 *      Belady (theta -> infinity);
 *   3. PA-LRU's epoch length, the main classifier design choice.
 *
 * The whole grid executes in parallel on the work-stealing pool
 * (PACACHE_JOBS overrides the worker count). Runs shared between
 * panels — ablation 2's Belady row and ablation 3's 900 s epoch are
 * the same configurations as ablation 1's — run once and are read by
 * both tables.
 */

#include <iostream>
#include <vector>

#include "bench_report.hh"
#include "core/experiment.hh"
#include "runner/sweep.hh"
#include "trace/workloads.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

const std::vector<PolicyKind> kPolicies{
    PolicyKind::LRU,  PolicyKind::FIFO,   PolicyKind::CLOCK,
    PolicyKind::ARC,  PolicyKind::MQ,     PolicyKind::LIRS,
    PolicyKind::Belady, PolicyKind::OPG,  PolicyKind::PALRU,
    PolicyKind::PAARC, PolicyKind::PALIRS};
const std::vector<Energy> kThetas{0.0,  5.0,   15.0, 29.6,
                                  60.0, 150.0, 1e6};
// 900 s sits in kPolicies' PA-LRU run; only the others are new.
const std::vector<Time> kExtraEpochs{60.0, 300.0, 1800.0, 3600.0};

constexpr std::size_t kBeladyIdx = 6; //!< within kPolicies
constexpr std::size_t kPaLruIdx = 8;  //!< within kPolicies

runner::RunPoint
oltpPoint(const Trace &trace, const std::string &label,
          ExperimentConfig cfg)
{
    runner::RunPoint p;
    p.label = label;
    p.trace = &trace;
    cfg.dpm = DpmChoice::Practical;
    cfg.cacheBlocks = 1024;
    if (cfg.pa.epochLength == PaParams{}.epochLength)
        cfg.pa.epochLength = 900;
    p.config = cfg;
    return p;
}

} // namespace

int
main()
{
    OltpParams params;
    params.duration = 3600;
    const Trace trace = makeOltpTrace(params);
    const OpgShowcaseParams sp;
    const Trace showcase = makeOpgShowcaseTrace(sp);

    // Flat point list: ablation 1's policies, ablation 2's thetas,
    // ablation 3's extra epochs, ablation 4's showcase pair.
    std::vector<runner::RunPoint> points;
    for (PolicyKind k : kPolicies) {
        ExperimentConfig cfg;
        cfg.policy = k;
        points.push_back(
            oltpPoint(trace, std::string("a1/") + policyKindName(k),
                      cfg));
    }
    const std::size_t theta0 = points.size();
    for (Energy theta : kThetas) {
        ExperimentConfig cfg;
        cfg.policy = PolicyKind::OPG;
        cfg.opgTheta = theta;
        points.push_back(
            oltpPoint(trace, "a2/theta" + fmt(theta, 1), cfg));
    }
    const std::size_t epoch0 = points.size();
    for (Time epoch : kExtraEpochs) {
        ExperimentConfig cfg;
        cfg.policy = PolicyKind::PALRU;
        cfg.pa.epochLength = epoch;
        points.push_back(
            oltpPoint(trace, "a3/epoch" + fmt(epoch, 0), cfg));
    }
    const std::size_t showcase0 = points.size();
    for (PolicyKind k : {PolicyKind::Belady, PolicyKind::OPG}) {
        runner::RunPoint p;
        p.label = std::string("a4/") + policyKindName(k);
        p.trace = &showcase;
        p.config.policy = k;
        p.config.dpm = DpmChoice::Practical;
        p.config.cacheBlocks = sp.suggestedCacheBlocks();
        points.push_back(std::move(p));
    }

    const auto outcomes =
        runner::runAll(points, benchsupport::jobsFromEnv());

    std::cout << "=== Ablation 1: all replacement policies (OLTP, "
                 "Practical DPM) ===\n\n";
    {
        TextTable t;
        t.header({"Policy", "Energy (J)", "vs LRU", "Miss ratio",
                  "Mean resp (ms)", "Spin-ups"});
        const double lru_energy = outcomes[0].result.totalEnergy;
        for (std::size_t i = 0; i < kPolicies.size(); ++i) {
            const ExperimentResult &r = outcomes[i].result;
            t.row({r.policyName, fmt(r.totalEnergy, 0),
                   fmt(r.totalEnergy / lru_energy, 3),
                   fmt(1.0 - r.cache.hitRatio(), 3),
                   fmt(r.responses.mean() * 1000.0, 2),
                   std::to_string(r.energy.spinUps)});
        }
        t.print(std::cout);
    }

    std::cout << "\n=== Ablation 2: OPG theta (0 = pure OPG ... large "
                 "= Belady) ===\n\n";
    {
        TextTable t;
        t.header({"theta (J)", "Energy (J)", "Miss ratio"});
        for (std::size_t i = 0; i < kThetas.size(); ++i) {
            const ExperimentResult &r = outcomes[theta0 + i].result;
            t.row({fmt(kThetas[i], 1), fmt(r.totalEnergy, 0),
                   fmt(1.0 - r.cache.hitRatio(), 4)});
        }
        const ExperimentResult &belady = outcomes[kBeladyIdx].result;
        t.row({"Belady", fmt(belady.totalEnergy, 0),
               fmt(1.0 - belady.cache.hitRatio(), 4)});
        t.print(std::cout);
    }

    std::cout << "\n=== Ablation 3: PA-LRU epoch length ===\n\n";
    {
        TextTable t;
        t.header({"epoch (s)", "Energy (J)", "Mean resp (ms)"});
        const auto row = [&](Time epoch, const ExperimentResult &r) {
            t.row({fmt(epoch, 0), fmt(r.totalEnergy, 0),
                   fmt(r.responses.mean() * 1000.0, 2)});
        };
        row(60.0, outcomes[epoch0 + 0].result);
        row(300.0, outcomes[epoch0 + 1].result);
        row(900.0, outcomes[kPaLruIdx].result);
        row(1800.0, outcomes[epoch0 + 2].result);
        row(3600.0, outcomes[epoch0 + 3].result);
        t.print(std::cout);
    }

    std::cout << "\n=== Ablation 4: OPG mechanism showcase "
                 "(generalized Figure 3) ===\n\n"
              << "Two disks, deterministic cycles; the cache cannot "
                 "hold both working sets.\nBelady evicts by forward "
                 "distance (the sleepy disk's blocks); OPG trades "
                 "misses\non the always-active disk for sleep on the "
                 "other.\n\n";
    {
        TextTable t;
        t.header({"Policy", "Misses", "Energy (J)",
                  "sleepy-disk spin-ups", "sleepy-disk standby (s)"});
        for (std::size_t i = 0; i < 2; ++i) {
            const ExperimentResult &r = outcomes[showcase0 + i].result;
            t.row({r.policyName, std::to_string(r.cache.misses),
                   fmt(r.totalEnergy, 0),
                   std::to_string(r.perDisk[1].spinUps),
                   fmt(r.perDisk[1].timePerMode.back(), 0)});
        }
        t.print(std::cout);
    }

    benchsupport::BenchReport report("ablation_policies",
                                     benchsupport::jobsFromEnv());
    for (std::size_t i = 0; i < outcomes.size(); ++i)
        report.addRun(outcomes[i].label, outcomes[i].wallMs,
                      points[i].trace->size());
    report.write();
    return 0;
}
