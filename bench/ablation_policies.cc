/**
 * @file
 * Ablations and extensions beyond the paper's headline figures:
 *   1. every replacement policy (on-line and off-line) on the OLTP
 *      workload — including PA-ARC, the PA technique wrapped around
 *      ARC as Section 4 suggests;
 *   2. OPG's theta knob, sweeping from pure OPG (theta = 0) toward
 *      Belady (theta -> infinity);
 *   3. PA-LRU's epoch length, the main classifier design choice.
 */

#include <iostream>

#include "core/experiment.hh"
#include "trace/workloads.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

ExperimentResult
run(const Trace &trace, ExperimentConfig cfg)
{
    cfg.dpm = DpmChoice::Practical;
    cfg.cacheBlocks = 1024;
    if (cfg.pa.epochLength == PaParams{}.epochLength)
        cfg.pa.epochLength = 900;
    return runExperiment(trace, cfg);
}

} // namespace

int
main()
{
    OltpParams params;
    params.duration = 3600;
    const Trace trace = makeOltpTrace(params);

    std::cout << "=== Ablation 1: all replacement policies (OLTP, "
                 "Practical DPM) ===\n\n";
    {
        TextTable t;
        t.header({"Policy", "Energy (J)", "vs LRU", "Miss ratio",
                  "Mean resp (ms)", "Spin-ups"});
        ExperimentConfig cfg;
        cfg.policy = PolicyKind::LRU;
        const double lru_energy = run(trace, cfg).totalEnergy;
        for (PolicyKind k :
             {PolicyKind::LRU, PolicyKind::FIFO, PolicyKind::CLOCK,
              PolicyKind::ARC, PolicyKind::MQ, PolicyKind::LIRS,
              PolicyKind::Belady, PolicyKind::OPG, PolicyKind::PALRU,
              PolicyKind::PAARC, PolicyKind::PALIRS}) {
            cfg.policy = k;
            const auto r = run(trace, cfg);
            t.row({r.policyName, fmt(r.totalEnergy, 0),
                   fmt(r.totalEnergy / lru_energy, 3),
                   fmt(1.0 - r.cache.hitRatio(), 3),
                   fmt(r.responses.mean() * 1000.0, 2),
                   std::to_string(r.energy.spinUps)});
        }
        t.print(std::cout);
    }

    std::cout << "\n=== Ablation 2: OPG theta (0 = pure OPG ... large "
                 "= Belady) ===\n\n";
    {
        TextTable t;
        t.header({"theta (J)", "Energy (J)", "Miss ratio"});
        for (Energy theta : {0.0, 5.0, 15.0, 29.6, 60.0, 150.0, 1e6}) {
            ExperimentConfig cfg;
            cfg.policy = PolicyKind::OPG;
            cfg.opgTheta = theta;
            const auto r = run(trace, cfg);
            t.row({fmt(theta, 1), fmt(r.totalEnergy, 0),
                   fmt(1.0 - r.cache.hitRatio(), 4)});
        }
        ExperimentConfig cfg;
        cfg.policy = PolicyKind::Belady;
        const auto belady = run(trace, cfg);
        t.row({"Belady", fmt(belady.totalEnergy, 0),
               fmt(1.0 - belady.cache.hitRatio(), 4)});
        t.print(std::cout);
    }

    std::cout << "\n=== Ablation 3: PA-LRU epoch length ===\n\n";
    {
        TextTable t;
        t.header({"epoch (s)", "Energy (J)", "Mean resp (ms)"});
        for (Time epoch : {60.0, 300.0, 900.0, 1800.0, 3600.0}) {
            ExperimentConfig cfg;
            cfg.policy = PolicyKind::PALRU;
            cfg.pa.epochLength = epoch;
            const auto r = run(trace, cfg);
            t.row({fmt(epoch, 0), fmt(r.totalEnergy, 0),
                   fmt(r.responses.mean() * 1000.0, 2)});
        }
        t.print(std::cout);
    }

    std::cout << "\n=== Ablation 4: OPG mechanism showcase "
                 "(generalized Figure 3) ===\n\n"
              << "Two disks, deterministic cycles; the cache cannot "
                 "hold both working sets.\nBelady evicts by forward "
                 "distance (the sleepy disk's blocks); OPG trades "
                 "misses\non the always-active disk for sleep on the "
                 "other.\n\n";
    {
        const OpgShowcaseParams p;
        const Trace showcase = makeOpgShowcaseTrace(p);
        TextTable t;
        t.header({"Policy", "Misses", "Energy (J)",
                  "sleepy-disk spin-ups", "sleepy-disk standby (s)"});
        for (PolicyKind k : {PolicyKind::Belady, PolicyKind::OPG}) {
            ExperimentConfig cfg;
            cfg.policy = k;
            cfg.dpm = DpmChoice::Practical;
            cfg.cacheBlocks = p.suggestedCacheBlocks();
            const auto r = runExperiment(showcase, cfg);
            t.row({r.policyName, std::to_string(r.cache.misses),
                   fmt(r.totalEnergy, 0),
                   std::to_string(r.perDisk[1].spinUps),
                   fmt(r.perDisk[1].timePerMode.back(), 0)});
        }
        t.print(std::cout);
    }
    return 0;
}
