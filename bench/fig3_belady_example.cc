/**
 * @file
 * Paper Figure 3: the worked example showing Belady's MIN algorithm
 * is not energy-optimal. A 4-entry cache services A B C D E B E C D
 * at t=0..8 and A at t=16 against one 2-mode disk (instantaneous
 * transitions, 4 J spin-up, 10-unit spin-down threshold). The
 * alternative schedule takes more misses yet burns less energy.
 */

#include <iostream>

#include "cache/belady.hh"
#include "cache/cache.hh"
#include "disk/disk.hh"
#include "disk/dpm.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

EnergyStats
runPattern(const std::vector<Time> &access_times, Time horizon)
{
    const PowerModel pm = makeTwoModeModel(1.0, 0.0, 4.0, 0.0, 0.0, 0.0);
    const ServiceModel sm(pm.spec());
    EventQueue eq;
    FixedTimeoutDpm dpm(10.0, 1);
    Disk disk(0, eq, pm, sm, dpm);
    for (Time t : access_times) {
        eq.schedule(t, [&](Time now) {
            DiskRequest r;
            r.arrival = now;
            r.block = 1;
            disk.submit(std::move(r));
        });
    }
    eq.runAll();
    const Time end = std::max(horizon, eq.now());
    eq.runUntil(end);
    disk.finalize(end);
    return disk.energy();
}

std::string
timesToString(const std::vector<Time> &times)
{
    std::string s;
    for (Time t : times)
        s += (s.empty() ? "" : ",") + fmt(t, 0);
    return s;
}

} // namespace

int
main()
{
    std::cout << "=== Figure 3: Belady is not energy-optimal ===\n\n"
              << "Request sequence: A B C D E B E C D at t=0..8, "
                 "A at t=16; 4-entry cache.\n"
              << "Disk: idle 1 W, standby 0 W, instantaneous "
                 "transitions, spin-up 4 J, 10-unit timeout.\n\n";

    // Belady's schedule, computed by the actual policy.
    const BlockNum A = 1, B = 2, C = 3, D = 4, E = 5;
    const std::vector<std::pair<Time, BlockNum>> reqs{
        {0, A}, {1, B}, {2, C}, {3, D}, {4, E},
        {5, B}, {6, E}, {7, C}, {8, D}, {16, A}};
    std::vector<BlockAccess> accs;
    for (const auto &[t, n] : reqs)
        accs.push_back({t, BlockId{0, n}, false, accs.size()});

    BeladyPolicy belady;
    Cache cache(4, belady);
    belady.prepare(accs);
    std::vector<Time> belady_misses;
    for (std::size_t i = 0; i < accs.size(); ++i) {
        if (!cache.access(accs[i].block, accs[i].time, i).hit)
            belady_misses.push_back(accs[i].time);
    }

    // The paper's alternative: keep A, re-miss on B/E instead.
    const std::vector<Time> alternative{0, 1, 2, 3, 4, 5, 6};

    const EnergyStats be = runPattern(belady_misses, 30.0);
    const EnergyStats ae = runPattern(alternative, 30.0);

    TextTable t;
    t.header({"Schedule", "Misses", "Disk access times", "Spin-ups",
              "Energy (J)"});
    t.row({"Belady", std::to_string(belady_misses.size()),
           timesToString(belady_misses), std::to_string(be.spinUps),
           fmt(be.total(), 2)});
    t.row({"Alternative", std::to_string(alternative.size()),
           timesToString(alternative), std::to_string(ae.spinUps),
           fmt(ae.total(), 2)});
    t.print(std::cout);

    std::cout << "\nAlternative takes "
              << alternative.size() - belady_misses.size()
              << " more miss(es) but saves "
              << fmt(be.total() - ae.total(), 2)
              << " J (" << fmtPct(1.0 - ae.total() / be.total(), 1)
              << ") — Belady minimizes misses, not energy.\n";
    return 0;
}
