/**
 * @file
 * Ablation: the two multi-speed service disciplines the paper
 * discusses (Section 2.1). Option 1 (Carrera & Bianchini / DRPM):
 * serve requests at whatever speed the platters are at — slower
 * service, no spin-up. Option 2 (the paper's choice): always spin up
 * to full speed first — fast service, expensive transitions.
 *
 * Crossed with LRU and PA-LRU on the OLTP workload under Practical
 * DPM. Observed shape: option 1 roughly halves energy for both
 * policies and all but erases PA-LRU's edge (it can even invert) —
 * power-aware caching earns its keep by avoiding spin-ups, and
 * option 1 removes most spin-ups by construction. This supports the
 * paper's choice of option 2 as the regime where cache policy
 * matters.
 *
 * All 4 runs execute in parallel on the work-stealing pool
 * (PACACHE_JOBS overrides the worker count).
 */

#include <iostream>
#include <vector>

#include "bench_report.hh"
#include "core/experiment.hh"
#include "runner/sweep.hh"
#include "trace/workloads.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

runner::RunPoint
point(const Trace &trace, PolicyKind policy, bool serve_low)
{
    runner::RunPoint p;
    p.label = std::string(serve_low ? "serve-at-speed" : "spin-up") +
              "/" + policyKindName(policy);
    p.trace = &trace;
    p.config.policy = policy;
    p.config.dpm = DpmChoice::Practical;
    p.config.cacheBlocks = 1024;
    p.config.pa.epochLength = 900;
    p.config.disk.serveAtLowSpeed = serve_low;
    return p;
}

} // namespace

int
main()
{
    OltpParams params;
    params.duration = 3600;
    const Trace trace = makeOltpTrace(params);

    std::vector<runner::RunPoint> points;
    for (bool low : {false, true}) {
        points.push_back(point(trace, PolicyKind::LRU, low));
        points.push_back(point(trace, PolicyKind::PALRU, low));
    }
    const auto outcomes =
        runner::runAll(points, benchsupport::jobsFromEnv());

    std::cout << "=== Ablation: multi-speed service discipline "
                 "(OLTP, Practical DPM) ===\n\n";
    TextTable t;
    t.header({"Discipline", "Policy", "Energy (J)", "Mean resp (ms)",
              "p95 resp (ms)", "Spin-ups"});
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const ExperimentResult &r = outcomes[i].result;
        t.row({i < 2 ? "spin-up (opt 2)" : "serve-at-speed (opt 1)",
               r.policyName, fmt(r.totalEnergy, 0),
               fmt(r.responses.mean() * 1000.0, 2),
               fmt(r.responses.percentile(0.95) * 1000.0, 2),
               std::to_string(r.energy.spinUps)});
    }
    t.print(std::cout);

    std::cout << "\nOption 1 removes most spin-ups outright, so the "
                 "remaining policy gap isolates the\ninterval-"
                 "stretching benefit of power-aware caching from the "
                 "spin-up-avoidance benefit.\n";

    benchsupport::BenchReport report("ablation_multispeed",
                                     benchsupport::jobsFromEnv());
    for (const auto &o : outcomes)
        report.addRun(o.label, o.wallMs, trace.size());
    report.write();
    return 0;
}
