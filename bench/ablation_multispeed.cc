/**
 * @file
 * Ablation: the two multi-speed service disciplines the paper
 * discusses (Section 2.1). Option 1 (Carrera & Bianchini / DRPM):
 * serve requests at whatever speed the platters are at — slower
 * service, no spin-up. Option 2 (the paper's choice): always spin up
 * to full speed first — fast service, expensive transitions.
 *
 * Crossed with LRU and PA-LRU on the OLTP workload under Practical
 * DPM. Observed shape: option 1 roughly halves energy for both
 * policies and all but erases PA-LRU's edge (it can even invert) —
 * power-aware caching earns its keep by avoiding spin-ups, and
 * option 1 removes most spin-ups by construction. This supports the
 * paper's choice of option 2 as the regime where cache policy
 * matters.
 */

#include <iostream>

#include "core/experiment.hh"
#include "trace/workloads.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

ExperimentResult
run(const Trace &trace, PolicyKind policy, bool serve_low)
{
    ExperimentConfig cfg;
    cfg.policy = policy;
    cfg.dpm = DpmChoice::Practical;
    cfg.cacheBlocks = 1024;
    cfg.pa.epochLength = 900;
    cfg.disk.serveAtLowSpeed = serve_low;
    return runExperiment(trace, cfg);
}

} // namespace

int
main()
{
    OltpParams params;
    params.duration = 3600;
    const Trace trace = makeOltpTrace(params);

    std::cout << "=== Ablation: multi-speed service discipline "
                 "(OLTP, Practical DPM) ===\n\n";
    TextTable t;
    t.header({"Discipline", "Policy", "Energy (J)", "Mean resp (ms)",
              "p95 resp (ms)", "Spin-ups"});
    for (bool low : {false, true}) {
        for (PolicyKind k : {PolicyKind::LRU, PolicyKind::PALRU}) {
            const auto r = run(trace, k, low);
            t.row({low ? "serve-at-speed (opt 1)" : "spin-up (opt 2)",
                   r.policyName, fmt(r.totalEnergy, 0),
                   fmt(r.responses.mean() * 1000.0, 2),
                   fmt(r.responses.percentile(0.95) * 1000.0, 2),
                   std::to_string(r.energy.spinUps)});
        }
    }
    t.print(std::cout);

    std::cout << "\nOption 1 removes most spin-ups outright, so the "
                 "remaining policy gap isolates the\ninterval-"
                 "stretching benefit of power-aware caching from the "
                 "spin-up-avoidance benefit.\n";
    return 0;
}
