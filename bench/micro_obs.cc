/**
 * @file
 * Observability overhead micro-benchmark: replays the fig6-scale OLTP
 * workload (21 disks, 2 hours, 1024-block cache, PA-LRU) twice per
 * repetition — once with the null observer (the default production
 * path) and once with the full observability stack attached (metric
 * registry, trace-event writer, and the phase profiler) — and
 * verifies both runs produce bit-identical simulation results before
 * reporting best-of-N timings. Null and observed reps run as
 * interleaved pairs so machine-load bursts inflate both sides of the
 * ratio instead of whichever happened to be running.
 *
 * BENCH_micro_obs.json carries two gated metrics:
 *   null_replay_krps         null-observer replay throughput
 *                            (thousand requests per wall second) —
 *                            guards the un-instrumented hot path
 *                            against observability bleeding into it;
 *   observed_vs_null_ratio   observed throughput relative to null
 *                            (1.0 = free, lower = more overhead).
 * tools/bench_compare.py gates them against the committed baseline
 * (see tools/check.sh). PACACHE_BENCH_REPS overrides the repetition
 * count (default 5; every rep re-verifies equivalence).
 */

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_report.hh"
#include "core/experiment.hh"
#include "obs/energy_ledger.hh"
#include "obs/metrics.hh"
#include "obs/observer.hh"
#include "obs/profiler.hh"
#include "obs/trace_writer.hh"
#include "trace/workloads.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

constexpr std::size_t kCacheBlocks = 1024;

unsigned
repsFromEnv()
{
    if (const char *env = std::getenv("PACACHE_BENCH_REPS")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return 5;
}

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** The simulation outputs that must not depend on observation. */
struct RunFingerprint
{
    Energy totalEnergy = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t spinUps = 0;
    uint64_t responseCount = 0;
    double responseSum = 0;

    explicit RunFingerprint() = default;

    explicit RunFingerprint(const ExperimentResult &r)
        : totalEnergy(r.totalEnergy), hits(r.cache.hits),
          misses(r.cache.misses), evictions(r.cache.evictions),
          spinUps(r.energy.spinUps),
          responseCount(r.responses.count()),
          responseSum(r.responses.sum())
    {
    }

    bool
    operator==(const RunFingerprint &o) const
    {
        return totalEnergy == o.totalEnergy && hits == o.hits &&
               misses == o.misses && evictions == o.evictions &&
               spinUps == o.spinUps &&
               responseCount == o.responseCount &&
               responseSum == o.responseSum; // exact, not near
    }
};

ExperimentConfig
baseConfig()
{
    ExperimentConfig cfg;
    cfg.policy = PolicyKind::PALRU;
    cfg.dpm = DpmChoice::Practical;
    cfg.cacheBlocks = kCacheBlocks;
    cfg.pa.epochLength = 900.0;
    return cfg;
}

struct Timing
{
    double bestMs = 0;
    RunFingerprint fp;
};

void
foldRep(Timing &out, double ms, const RunFingerprint &fp,
        unsigned rep)
{
    if (rep == 0) {
        out.bestMs = ms;
        out.fp = fp;
        return;
    }
    out.bestMs = std::min(out.bestMs, ms);
    if (!(fp == out.fp)) {
        std::cerr << "FATAL: replay not deterministic across "
                     "repetitions\n";
        std::exit(1);
    }
}

} // namespace

int
main()
{
    std::cout << "=== micro_obs: observability overhead ===\n\n";
    const unsigned reps = repsFromEnv();

    const Trace trace = makeOltpTrace();
    std::cout << "OLTP fig6 scale: " << trace.size() << " requests, "
              << trace.numDisks() << " disks, cache " << kCacheBlocks
              << " blocks, " << reps << " reps\n\n";

    Timing off, on;
    for (unsigned rep = 0; rep < reps; ++rep) {
        {
            const ExperimentConfig cfg = baseConfig();
            const double t0 = nowMs();
            const ExperimentResult r = runExperiment(trace, cfg);
            const double ms = nowMs() - t0;
            foldRep(off, ms, RunFingerprint(r), rep);
        }
        {
            // Fresh sinks each rep: the trace-event buffer and the
            // profiler span list grow per run.
            obs::SimObserver observer;
            obs::MetricRegistry registry;
            obs::TraceEventWriter trace_events;
            obs::Profiler profiler;
            observer.attachMetrics(&registry);
            observer.attachTrace(&trace_events);
            ExperimentConfig cfg = baseConfig();
            cfg.observer = &observer;
            cfg.profiler = &profiler;
            const double t0 = nowMs();
            const ExperimentResult r = runExperiment(trace, cfg);
            const double ms = nowMs() - t0;
            foldRep(on, ms, RunFingerprint(r), rep);
            if (rep == 0 &&
                obs::ledgerMaxRelError(r.perDisk) >
                    obs::kLedgerConservationTol) {
                std::cerr << "FATAL: energy ledger does not "
                             "conserve\n";
                return 1;
            }
        }
    }

    if (!(off.fp == on.fp)) {
        std::cerr << "FATAL: observed replay diverges from the "
                     "null-observer replay:\n  energy "
                  << off.fp.totalEnergy << " vs " << on.fp.totalEnergy
                  << "\n  hits " << off.fp.hits << " vs " << on.fp.hits
                  << "\n  response sum " << off.fp.responseSum
                  << " vs " << on.fp.responseSum << '\n';
        return 1;
    }

    const double requests = static_cast<double>(trace.size());
    const double nullKrps = requests / off.bestMs; // = k req / s
    const double ratio = off.bestMs / on.bestMs;

    TextTable table;
    table.header({"Replay", "best (ms)", "kreq/s"});
    table.row({"null observer", fmt(off.bestMs, 1),
               fmt(requests / off.bestMs, 1)});
    table.row({"full observability", fmt(on.bestMs, 1),
               fmt(requests / on.bestMs, 1)});
    table.print(std::cout);
    std::cout << "\nobserved/null throughput ratio: " << fmt(ratio, 3)
              << " (overhead " << fmt((1.0 / ratio - 1.0) * 100.0, 1)
              << "%)\nequivalence: bit-identical\n";

    benchsupport::BenchReport report("micro_obs",
                                     benchsupport::jobsFromEnv());
    report.addRun("replay/obs_off", off.bestMs, trace.size());
    report.addRun("replay/obs_on", on.bestMs, trace.size());
    report.metric("null_replay_krps", nullKrps);
    report.metric("observed_vs_null_ratio", ratio);
    const std::string path = report.write();
    std::cout << "report: " << path << '\n';
    return 0;
}
