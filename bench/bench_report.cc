#include "bench_report.hh"

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "runner/thread_pool.hh"
#include "util/build_info.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace pacache::benchsupport
{

unsigned
jobsFromEnv()
{
    const char *env = std::getenv("PACACHE_JOBS");
    if (!env || !*env)
        return 0;
    return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
}

BenchReport::BenchReport(std::string name, unsigned jobs)
    : name(std::move(name)),
      jobs(jobs == 0 ? runner::ThreadPool::defaultWorkers() : jobs)
{
}

void
BenchReport::addRun(const std::string &label, double wall_ms,
                    uint64_t requests)
{
    runs.push_back(Run{label, wall_ms, requests});
}

void
BenchReport::metric(const std::string &key, double value)
{
    metrics.emplace_back(key, value);
}

double
BenchReport::totalWallMs() const
{
    double total = 0;
    for (const Run &r : runs)
        total += r.wallMs;
    return total;
}

std::string
BenchReport::write() const
{
    const char *dir = std::getenv("PACACHE_BENCH_DIR");
    std::string path = dir && *dir ? std::string(dir) + "/" : "";
    path += "BENCH_" + name + ".json";

    std::ofstream out(path);
    if (!out) {
        PACACHE_WARN("cannot write benchmark report '", path, "'");
        return path;
    }

    uint64_t totalRequests = 0;
    for (const Run &r : runs)
        totalRequests += r.requests;
    const double wallMs = totalWallMs();

    JsonWriter json(out);
    json.beginObject();
    json.kv("bench", name);
    json.kv("git", buildInfo().gitDescribe);
    json.kv("jobs", jobs);
    json.kv("wall_ms", wallMs);
    json.kv("requests", totalRequests);
    json.kv("requests_per_sec",
            wallMs > 0
                ? static_cast<double>(totalRequests) * 1000.0 / wallMs
                : 0.0);
    for (const auto &[key, value] : metrics)
        json.kv(key, value);
    json.key("runs");
    json.beginArray();
    for (const Run &r : runs) {
        json.beginObject();
        json.kv("label", r.label);
        json.kv("wall_ms", r.wallMs);
        json.kv("requests", r.requests);
        json.kv("requests_per_sec",
                r.wallMs > 0 ? static_cast<double>(r.requests) *
                                   1000.0 / r.wallMs
                             : 0.0);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    json.finish();
    std::cerr << "[bench] wrote " << path << '\n';
    return path;
}

} // namespace pacache::benchsupport
