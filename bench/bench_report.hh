/**
 * @file
 * Machine-readable benchmark reports. Each driver builds a
 * BenchReport, records its runs (wall clock + request counts) and any
 * derived scalars, and write() emits BENCH_<name>.json — wall_ms,
 * requests/sec, job count, and the git revision — next to the console
 * tables, so performance tracking across commits needs no console
 * scraping. Set PACACHE_BENCH_DIR to redirect the output directory.
 */

#ifndef PACACHE_BENCH_BENCH_REPORT_HH
#define PACACHE_BENCH_BENCH_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pacache::benchsupport
{

/** Job count for bench drivers: $PACACHE_JOBS, else 0 (= all cores). */
unsigned jobsFromEnv();

class BenchReport
{
  public:
    /** @param name file stem: BENCH_<name>.json */
    explicit BenchReport(std::string name, unsigned jobs = 0);

    /** Record one experiment run's cost. */
    void addRun(const std::string &label, double wall_ms,
                uint64_t requests);

    /** Record a derived scalar (e.g. a speedup ratio). */
    void metric(const std::string &key, double value);

    /** Total wall clock across recorded runs (ms). */
    double totalWallMs() const;

    /**
     * Write BENCH_<name>.json into $PACACHE_BENCH_DIR (default: the
     * current directory). @return the path written.
     */
    std::string write() const;

  private:
    struct Run
    {
        std::string label;
        double wallMs;
        uint64_t requests;
    };

    std::string name;
    unsigned jobs;
    std::vector<Run> runs;
    std::vector<std::pair<std::string, double>> metrics;
};

} // namespace pacache::benchsupport

#endif // PACACHE_BENCH_BENCH_REPORT_HH
