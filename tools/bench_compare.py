#!/usr/bin/env python3
"""Gate a BENCH_*.json report against a committed baseline.

Benchmark drivers (bench/bench_report.hh) emit BENCH_<name>.json with
raw timed runs plus derived scalar metrics. The raw wall-clock numbers
are machine-specific, so this gate compares only the *metrics* — the
speedup ratios, which are stable across hosts because both sides of
each ratio run interleaved on the same machine (see bench/micro_opg.cc).

A metric fails when the current value drops below

    baseline * (1 - tolerance)        (ratio regression), or
    an explicit floor given with --min key=value.

Higher is always better for these metrics (they are speedups) — except
metrics whose key starts with "max_", which are CEILINGS (e.g.
max_peak_rss_mb): they fail when the current value rises above
baseline * (1 + tolerance) or above an explicit --max key=value. A
metric present in the baseline but missing from the current report is
an error (a silently dropped measurement must not read as a pass).

With --trend PATH, an entry for the current report — git revision,
wall clock, and every metric — is appended to a JSON-array trend file
(created if absent) so regressions that stay inside the gate's
tolerance are still visible as a drift series across commits. The
append happens even when the gate fails, recording the failure point.

Usage:
    bench_compare.py CURRENT.json BASELINE.json \
        [--tolerance 0.25] [--min opg_replay_speedup=2.5] \
        [--max max_peak_rss_mb=256] [--trend BENCH_TREND.json] ...
"""

import argparse
import json
import sys

# Top-level keys that are bookkeeping, not gated metrics.
NON_METRIC_KEYS = {
    "bench",
    "git",
    "jobs",
    "wall_ms",
    "requests",
    "requests_per_sec",
    "runs",
}


def metrics_of(report):
    # Keys prefixed "info_" are informational context (e.g. latency
    # percentiles, which are machine-specific) and never gated.
    return {
        k: v
        for k, v in report.items()
        if k not in NON_METRIC_KEYS and not k.startswith("info_")
        and isinstance(v, (int, float))
    }


def parse_bound(spec):
    key, sep, value = spec.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"expected key=value, got {spec!r}")
    try:
        return key, float(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"{spec!r}: {exc}") from exc


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"bench_compare: cannot read {path}: {exc}")


def append_trend(path, report):
    """Append this run's metrics to the JSON-array trend file."""
    entries = []
    try:
        with open(path, encoding="utf-8") as fh:
            entries = json.load(fh)
        if not isinstance(entries, list):
            sys.exit(f"bench_compare: {path} is not a JSON array")
    except FileNotFoundError:
        pass
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"bench_compare: cannot read trend {path}: {exc}")
    entry = {
        "bench": report.get("bench"),
        "git": report.get("git"),
        "jobs": report.get("jobs"),
        "wall_ms": report.get("wall_ms"),
    }
    # Gated and informational metrics alike: the trend is for eyes,
    # not gates, and info_ values (e.g. peak RSS per phase) are the
    # first place drift shows up.
    for key, value in report.items():
        if key not in NON_METRIC_KEYS and isinstance(
                value, (int, float)):
            entry[key] = value
    entries.append(entry)
    try:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(entries, fh, indent=1)
            fh.write("\n")
    except OSError as exc:
        sys.exit(f"bench_compare: cannot write trend {path}: {exc}")
    print(f"bench_compare: appended run {len(entries)} to {path}")


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("current", help="freshly produced BENCH_*.json")
    ap.add_argument("baseline", help="committed baseline report")
    ap.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional drop below the baseline ratio "
             "(default 0.25; benchmark noise on a busy host is "
             "bursty, so the slack is generous — hard floors "
             "belong in --min)")
    ap.add_argument(
        "--min", dest="floors", type=parse_bound, action="append",
        default=[], metavar="KEY=VALUE",
        help="absolute floor for a metric, checked in addition to "
             "the baseline-relative tolerance")
    ap.add_argument(
        "--max", dest="ceilings", type=parse_bound, action="append",
        default=[], metavar="KEY=VALUE",
        help="absolute ceiling for a \"max_\"-prefixed metric, "
             "checked in addition to the baseline-relative tolerance")
    ap.add_argument(
        "--trend", metavar="PATH",
        help="append this run's git revision, wall clock, and "
             "metrics to a JSON-array trend file (created if absent)")
    args = ap.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)
    if args.trend:
        append_trend(args.trend, current)
    if current.get("bench") != baseline.get("bench"):
        sys.exit("bench_compare: reports are from different "
                 f"benchmarks ({current.get('bench')!r} vs "
                 f"{baseline.get('bench')!r})")

    cur = metrics_of(current)
    base = metrics_of(baseline)
    floors = dict(args.floors)
    ceilings = dict(args.ceilings)
    failures = []

    print(f"bench_compare: {current.get('bench')} "
          f"(current {current.get('git', '?')}, "
          f"baseline {baseline.get('git', '?')})")
    for key in sorted(base):
        if key not in cur:
            failures.append(f"{key}: missing from current report")
            continue
        if key.startswith("max_"):
            # Ceiling metric: lower is better (e.g. peak RSS).
            threshold = base[key] * (1.0 + args.tolerance)
            ceiling = ceilings.pop(key, None)
            bound = (threshold if ceiling is None
                     else min(threshold, ceiling))
            ok = cur[key] <= bound
            verdict = "ok" if ok else "FAIL"
            note = "" if ceiling is None else f", ceiling {ceiling:.2f}"
            print(f"  {key}: {cur[key]:.2f} "
                  f"(baseline {base[key]:.2f}, "
                  f"needs <= {bound:.2f}{note}) {verdict}")
            if not ok:
                failures.append(
                    f"{key}: {cur[key]:.2f} > {bound:.2f}")
            continue
        threshold = base[key] * (1.0 - args.tolerance)
        floor = floors.pop(key, None)
        bound = threshold if floor is None else max(threshold, floor)
        ok = cur[key] >= bound
        verdict = "ok" if ok else "FAIL"
        floor_note = "" if floor is None else f", floor {floor:.2f}"
        print(f"  {key}: {cur[key]:.2f} "
              f"(baseline {base[key]:.2f}, "
              f"needs >= {bound:.2f}{floor_note}) {verdict}")
        if not ok:
            failures.append(
                f"{key}: {cur[key]:.2f} < {bound:.2f}")
    for key, floor in floors.items():
        # Floors for metrics absent from the baseline still apply.
        if key not in cur:
            failures.append(f"{key}: missing from current report")
        elif cur[key] < floor:
            failures.append(f"{key}: {cur[key]:.2f} < floor {floor}")
        else:
            print(f"  {key}: {cur[key]:.2f} (floor {floor}) ok")
    for key, ceiling in ceilings.items():
        # Ceilings for metrics absent from the baseline still apply.
        if key not in cur:
            failures.append(f"{key}: missing from current report")
        elif cur[key] > ceiling:
            failures.append(
                f"{key}: {cur[key]:.2f} > ceiling {ceiling}")
        else:
            print(f"  {key}: {cur[key]:.2f} (ceiling {ceiling}) ok")

    if failures:
        print("bench_compare: REGRESSION", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("bench_compare: all metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
