#!/bin/sh
# Full pre-merge check: a Release build and an ASan+UBSan build, the
# test suite under both, and an observability smoke run whose output
# files are validated by tools/check_obs_json.py.
#
# Usage: tools/check.sh            (from the repository root)
#        JOBS=4 tools/check.sh     (limit build parallelism)

set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
jobs=${JOBS:-$(nproc 2>/dev/null || echo 4)}

step() {
    printf '\n== %s ==\n' "$*"
}

step "Release build"
cmake -B "$root/build-release" -S "$root" \
      -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$root/build-release" -j "$jobs"

step "Release tests"
ctest --test-dir "$root/build-release" --output-on-failure -j "$jobs"

step "ASan+UBSan build"
cmake -B "$root/build-asan" -S "$root" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DPACACHE_SANITIZE=address,undefined >/dev/null
cmake --build "$root/build-asan" -j "$jobs"

step "ASan+UBSan tests"
ctest --test-dir "$root/build-asan" --output-on-failure -j "$jobs"

step "observability smoke run (sanitized binary)"
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir"' EXIT
"$root/build-asan/tools/pacache_sim" \
    --workload oltp --policy pa-lru --write wtdu --dpm practical \
    --metrics-out "$obs_dir/m.json" \
    --trace-events "$obs_dir/t.json" \
    --timeline "$obs_dir/tl.jsonl" --timeline-interval 900 \
    > "$obs_dir/report.txt"
python3 "$root/tools/check_obs_json.py" \
    "$obs_dir/m.json" "$obs_dir/t.json" "$obs_dir/tl.jsonl"

step "all checks passed"
