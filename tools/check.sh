#!/bin/sh
# Full pre-merge check: a Release build and an ASan+UBSan build, the
# test suite under both, an observability smoke run whose output
# files are validated by tools/check_obs_json.py, and a TSan build
# exercising the parallel sweep runner.
#
# Test tiers (ctest labels): the Release build runs everything —
# unit, property, integration, and fuzz-smoke (a short deterministic
# pacache_fuzz campaign plus a replay of the committed corpus). The
# sanitizer builds exclude fuzz-smoke (-LE fuzz-smoke): the campaign
# re-runs whole experiments hundreds of times, which is wasted time
# under 10-20x sanitizer overhead; instead each sanitizer gets a
# small dedicated campaign sized for it. The crash tier (ctest -L
# crash, plus the timed crash campaign below) covers the WTDU
# power-failure fault-injection properties.
#
# Usage: tools/check.sh            (from the repository root)
#        JOBS=4 tools/check.sh     (limit build parallelism)

set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
jobs=${JOBS:-$(nproc 2>/dev/null || echo 4)}

step() {
    printf '\n== %s ==\n' "$*"
}

step "Release build"
cmake -B "$root/build-release" -S "$root" \
      -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$root/build-release" -j "$jobs"

step "Release tests (all tiers)"
ctest --test-dir "$root/build-release" --output-on-failure -j "$jobs"

step "fuzz campaign smoke (Release)"
# Deterministic short campaign across the whole property registry; a
# failure names the case index and emits a shrunk reproducer.
"$root/build-release/tools/pacache_fuzz" \
    --seconds 10 --seed 1 --jobs "$jobs" \
    --corpus-out "$root/build-release/fuzz_corpus"

step "crash-recovery campaign (Release)"
# 2500 small cases x 4 crash properties = 10000 fault scenarios
# through the WTDU fault-injection layer (DESIGN.md 5j). The case
# stream is --jobs-invariant by construction; the cmp proves it on
# every run (wall-clock line stripped).
crash_dir=$(mktemp -d)
"$root/build-release/tools/pacache_fuzz" \
    --crash --cases 2500 --seed 1 --jobs "$jobs" \
    --corpus-out "$root/build-release/crash_corpus" \
    | grep -v '^campaign:' > "$crash_dir/crash_jN.txt"
"$root/build-release/tools/pacache_fuzz" \
    --crash --cases 2500 --seed 1 --jobs 1 \
    | grep -v '^campaign:' > "$crash_dir/crash_j1.txt"
cmp "$crash_dir/crash_j1.txt" "$crash_dir/crash_jN.txt"
rm -rf "$crash_dir"

step "crash corpus replay (Release, ctest -L crash)"
ctest --test-dir "$root/build-release" --output-on-failure -L crash

step "oracle fast-path benchmark gate"
# micro_opg replays the fig6-scale OLTP workload through the fast and
# reference oracle stacks (verifying byte-identical results) and
# reports speedup ratios; bench_compare.py gates them against the
# committed baseline. Ratios, not absolute times, are compared — the
# interleaved-pair timing makes them stable across hosts. Set
# SKIP_BENCH_GATE=1 to skip on machines too loaded to bench.
if [ "${SKIP_BENCH_GATE:-0}" = "1" ]; then
    echo "skipped (SKIP_BENCH_GATE=1)"
else
    bench_dir=$(mktemp -d)
    PACACHE_BENCH_DIR="$bench_dir" \
        "$root/build-release/bench/micro_opg"
    python3 "$root/tools/bench_compare.py" \
        "$bench_dir/BENCH_micro_opg.json" \
        "$root/bench/baselines/BENCH_micro_opg.json" \
        --min opg_replay_speedup=2.5 \
        --trend "$root/bench/baselines/BENCH_TREND.json"
    rm -rf "$bench_dir"
fi

step "observability overhead benchmark gate"
# micro_obs replays the fig6-scale OLTP workload with the null
# observer and with the full observability stack (verifying
# bit-identical simulation results) and reports the null-path
# throughput plus the observed/null ratio; the tight 2% tolerance
# asserts observability never bleeds into the un-instrumented path.
# 15 best-of reps keep both metrics stable to ~1% run-to-run, which
# the default 5 do not on a loaded host.
if [ "${SKIP_BENCH_GATE:-0}" = "1" ]; then
    echo "skipped (SKIP_BENCH_GATE=1)"
else
    bench_dir=$(mktemp -d)
    PACACHE_BENCH_DIR="$bench_dir" PACACHE_BENCH_REPS=15 \
        "$root/build-release/bench/micro_obs"
    python3 "$root/tools/bench_compare.py" \
        "$bench_dir/BENCH_micro_obs.json" \
        "$root/bench/baselines/BENCH_micro_obs.json" \
        --tolerance 0.02 \
        --trend "$root/bench/baselines/BENCH_TREND.json"
    rm -rf "$bench_dir"
fi

step "serve throughput benchmark gate"
# micro_serve drives the sharded server with the open-loop load
# generator (verifying run-to-run determinism and ledger
# conservation) and reports end-to-end throughput; the 1.0 M req/s
# floor is the serving acceptance criterion. Latency percentiles in
# the report are informational (info_ prefix) and never gated.
if [ "${SKIP_BENCH_GATE:-0}" = "1" ]; then
    echo "skipped (SKIP_BENCH_GATE=1)"
else
    bench_dir=$(mktemp -d)
    PACACHE_BENCH_DIR="$bench_dir" \
        "$root/build-release/bench/micro_serve"
    python3 "$root/tools/bench_compare.py" \
        "$bench_dir/BENCH_serve.json" \
        "$root/bench/baselines/BENCH_serve.json" \
        --min serve_mrps=1.0 \
        --trend "$root/bench/baselines/BENCH_TREND.json"
    rm -rf "$bench_dir"
fi

step "out-of-core scale benchmark gate"
# micro_scale stream-generates a scaled OLTP trace and replays it
# (windowed off-line oracle, trace = 10x window, then disk-sharded
# across the pool) under a fixed oracle memory budget FIRST, then
# unbounded — verifying bit-identical reps, jobs=1 == jobs=N, and
# budgeted == unbounded fingerprints. Two gated metrics: the
# max_peak_rss_mb CEILING is sampled after the budgeted phases (the
# out-of-core acceptance criterion: replay memory stays bounded, with
# a 256 MiB hard ceiling on top of the baseline comparison), and
# budget_throughput_ratio must hold the >= 0.8 acceptance floor
# (bounding memory may not cost more than 20% of replay throughput).
if [ "${SKIP_BENCH_GATE:-0}" = "1" ]; then
    echo "skipped (SKIP_BENCH_GATE=1)"
else
    bench_dir=$(mktemp -d)
    PACACHE_BENCH_DIR="$bench_dir" \
        "$root/build-release/bench/micro_scale"
    python3 "$root/tools/bench_compare.py" \
        "$bench_dir/BENCH_scale.json" \
        "$root/bench/baselines/BENCH_scale.json" \
        --max max_peak_rss_mb=256 \
        --min budget_throughput_ratio=0.8 \
        --trend "$root/bench/baselines/BENCH_TREND.json"
    rm -rf "$bench_dir"
fi

step "sharded streaming determinism smoke (Release)"
# Reduced-scale version of the billion-request workflow: stream a
# 1e7-record x 64-disk scaled OLTP trace to .pct (never
# materialized), then replay it disk-sharded with the windowed OPG
# oracle under a tight oracle memory budget (64 MiB across 8 shards
# — every tier spills: deterministic-miss pages, pinned times, and
# the cold-miss bitmap) at --jobs 1 and --jobs 8, plus once
# unbudgeted. All three reports must be byte-identical: worker count
# only changes scheduling, and spilling only changes where oracle
# bytes live — never statistics.
scale_dir=$(mktemp -d)
"$root/build-release/tools/pacache_tracegen" \
    --scale --workload oltp --disks 64 --requests 10000000 \
    --out "$scale_dir/scale.pct"
for j in 1 8; do
    "$root/build-release/tools/pacache_sim" \
        --trace "$scale_dir/scale.pct" --stream --shards 8 \
        --jobs "$j" --policy opg --window 1000000 \
        --cache-blocks 65536 --oracle-mem-budget 64 \
        > "$scale_dir/shard_j$j.txt"
done
cmp "$scale_dir/shard_j1.txt" "$scale_dir/shard_j8.txt"
"$root/build-release/tools/pacache_sim" \
    --trace "$scale_dir/scale.pct" --stream --shards 8 \
    --jobs 8 --policy opg --window 1000000 \
    --cache-blocks 65536 > "$scale_dir/shard_unbudgeted.txt"
cmp "$scale_dir/shard_j8.txt" "$scale_dir/shard_unbudgeted.txt"
rm -rf "$scale_dir"

step "ASan+UBSan build"
cmake -B "$root/build-asan" -S "$root" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DPACACHE_SANITIZE=address,undefined >/dev/null
cmake --build "$root/build-asan" -j "$jobs"

step "ASan+UBSan tests (fuzz smoke excluded)"
ctest --test-dir "$root/build-asan" --output-on-failure -j "$jobs" \
      -LE fuzz-smoke

step "ASan+UBSan mini fuzz campaign"
# A handful of cases is enough to drag generated workloads through
# every experiment layer under ASan/UBSan.
"$root/build-asan/tools/pacache_fuzz" --cases 8 --seed 2

step "ASan+UBSan mini crash campaign"
# The crash properties throw and unwind through the whole write path
# mid-flight — exactly where lifetime bugs would hide; ~250 cases
# drag every crash site through ASan/UBSan.
"$root/build-asan/tools/pacache_fuzz" --crash --cases 250 --seed 5

step "observability smoke run (sanitized binary)"
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir"' EXIT
"$root/build-asan/tools/pacache_sim" \
    --workload oltp --policy pa-lru --write wtdu --dpm practical \
    --metrics-out "$obs_dir/m.json" \
    --trace-events "$obs_dir/t.json" \
    --timeline "$obs_dir/tl.jsonl" --timeline-interval 900 \
    --energy-ledger --profile \
    > "$obs_dir/report.txt"
python3 "$root/tools/check_obs_json.py" \
    "$obs_dir/m.json" "$obs_dir/t.json" "$obs_dir/tl.jsonl"
grep -q "energy ledger" "$obs_dir/report.txt"
grep -q "profile (wall clock)" "$obs_dir/report.txt"
# Prometheus-style flat exposition (same run, .prom suffix).
"$root/build-asan/tools/pacache_sim" \
    --workload oltp --duration 600 --policy lru \
    --metrics-out "$obs_dir/m.prom" > /dev/null
grep -q "^run_wall_ms " "$obs_dir/m.prom"

step "trace ingestion smoke run (sanitized binaries)"
# Generate a workload, convert it through the binary .pct format, and
# require the simulator report to be byte-identical whether the trace
# comes from text, from .pct, or is streamed record by record.
"$root/build-asan/tools/pacache_tracegen" \
    --workload synthetic --requests 2000 --out "$obs_dir/w.txt"
"$root/build-asan/tools/pacache_tracectl" convert \
    --in "$obs_dir/w.txt" --out "$obs_dir/w.pct"
"$root/build-asan/tools/pacache_tracectl" info --in "$obs_dir/w.pct"
"$root/build-asan/tools/pacache_sim" \
    --trace "$obs_dir/w.txt" --policy pa-lru --write wbeu \
    > "$obs_dir/sim_text.txt"
"$root/build-asan/tools/pacache_sim" \
    --trace "$obs_dir/w.pct" --policy pa-lru --write wbeu \
    > "$obs_dir/sim_pct.txt"
"$root/build-asan/tools/pacache_sim" \
    --trace "$obs_dir/w.pct" --policy pa-lru --write wbeu --stream \
    > "$obs_dir/sim_stream.txt"
cmp "$obs_dir/sim_text.txt" "$obs_dir/sim_pct.txt"
cmp "$obs_dir/sim_text.txt" "$obs_dir/sim_stream.txt"

step "TSan build"
cmake -B "$root/build-tsan" -S "$root" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DPACACHE_SANITIZE=thread >/dev/null
cmake --build "$root/build-tsan" -j "$jobs" \
      --target pacache_tests pacache_fuzz pacache_serve

step "TSan parallel sweep determinism"
# The work-stealing pool must produce byte-identical results at any
# job count, with no data races while doing so.
"$root/build-tsan/tests/pacache_tests" \
    --gtest_filter='ThreadPool.*:SweepRunner.*'

step "TSan fuzz campaign (threaded)"
# The campaign driver shares the pool across batches; run it with
# several workers so TSan sees the real submit/wait traffic.
"$root/build-tsan/tools/pacache_fuzz" --cases 12 --seed 3 --jobs 4

step "TSan serve smoke (multi-threaded)"
# Drive the sharded server with 4 workers and 2 producers so TSan
# sees the real ring/stripe-lock traffic, and require the energy
# ledger to stay conservation-exact under concurrency. TSan aborts
# the run on any data race; the grep asserts the ledger check.
"$root/build-tsan/tools/pacache_serve" \
    --requests 60000 --rate 20000 --shards 4 --threads 4 \
    --producers 2 --policy pa-lru --per-shard \
    > "$obs_dir/serve.txt"
grep -q "energy ledger conservation: ok" "$obs_dir/serve.txt"

step "TSan serve replay differential"
# The concurrent replay must match the single-threaded simulator
# bit for bit (exit 1 on any counter or 1e-9 energy mismatch).
"$root/build-tsan/tools/pacache_serve" \
    --workload synthetic --requests 4000 --policy pa-lru \
    --write wtdu --shards 1 --threads 3 --verify-replay

step "all checks passed"
