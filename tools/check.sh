#!/bin/sh
# Full pre-merge check: a Release build and an ASan+UBSan build, the
# test suite under both, an observability smoke run whose output
# files are validated by tools/check_obs_json.py, and a TSan build
# exercising the parallel sweep runner.
#
# Usage: tools/check.sh            (from the repository root)
#        JOBS=4 tools/check.sh     (limit build parallelism)

set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
jobs=${JOBS:-$(nproc 2>/dev/null || echo 4)}

step() {
    printf '\n== %s ==\n' "$*"
}

step "Release build"
cmake -B "$root/build-release" -S "$root" \
      -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$root/build-release" -j "$jobs"

step "Release tests"
ctest --test-dir "$root/build-release" --output-on-failure -j "$jobs"

step "oracle fast-path benchmark gate"
# micro_opg replays the fig6-scale OLTP workload through the fast and
# reference oracle stacks (verifying byte-identical results) and
# reports speedup ratios; bench_compare.py gates them against the
# committed baseline. Ratios, not absolute times, are compared — the
# interleaved-pair timing makes them stable across hosts. Set
# SKIP_BENCH_GATE=1 to skip on machines too loaded to bench.
if [ "${SKIP_BENCH_GATE:-0}" = "1" ]; then
    echo "skipped (SKIP_BENCH_GATE=1)"
else
    bench_dir=$(mktemp -d)
    PACACHE_BENCH_DIR="$bench_dir" \
        "$root/build-release/bench/micro_opg"
    python3 "$root/tools/bench_compare.py" \
        "$bench_dir/BENCH_micro_opg.json" \
        "$root/bench/baselines/BENCH_micro_opg.json" \
        --min opg_replay_speedup=2.5
    rm -rf "$bench_dir"
fi

step "ASan+UBSan build"
cmake -B "$root/build-asan" -S "$root" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DPACACHE_SANITIZE=address,undefined >/dev/null
cmake --build "$root/build-asan" -j "$jobs"

step "ASan+UBSan tests"
ctest --test-dir "$root/build-asan" --output-on-failure -j "$jobs"

step "observability smoke run (sanitized binary)"
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir"' EXIT
"$root/build-asan/tools/pacache_sim" \
    --workload oltp --policy pa-lru --write wtdu --dpm practical \
    --metrics-out "$obs_dir/m.json" \
    --trace-events "$obs_dir/t.json" \
    --timeline "$obs_dir/tl.jsonl" --timeline-interval 900 \
    > "$obs_dir/report.txt"
python3 "$root/tools/check_obs_json.py" \
    "$obs_dir/m.json" "$obs_dir/t.json" "$obs_dir/tl.jsonl"

step "trace ingestion smoke run (sanitized binaries)"
# Generate a workload, convert it through the binary .pct format, and
# require the simulator report to be byte-identical whether the trace
# comes from text, from .pct, or is streamed record by record.
"$root/build-asan/tools/pacache_tracegen" \
    --workload synthetic --requests 2000 --out "$obs_dir/w.txt"
"$root/build-asan/tools/pacache_tracectl" convert \
    --in "$obs_dir/w.txt" --out "$obs_dir/w.pct"
"$root/build-asan/tools/pacache_tracectl" info --in "$obs_dir/w.pct"
"$root/build-asan/tools/pacache_sim" \
    --trace "$obs_dir/w.txt" --policy pa-lru --write wbeu \
    > "$obs_dir/sim_text.txt"
"$root/build-asan/tools/pacache_sim" \
    --trace "$obs_dir/w.pct" --policy pa-lru --write wbeu \
    > "$obs_dir/sim_pct.txt"
"$root/build-asan/tools/pacache_sim" \
    --trace "$obs_dir/w.pct" --policy pa-lru --write wbeu --stream \
    > "$obs_dir/sim_stream.txt"
cmp "$obs_dir/sim_text.txt" "$obs_dir/sim_pct.txt"
cmp "$obs_dir/sim_text.txt" "$obs_dir/sim_stream.txt"

step "TSan build"
cmake -B "$root/build-tsan" -S "$root" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DPACACHE_SANITIZE=thread >/dev/null
cmake --build "$root/build-tsan" -j "$jobs" --target pacache_tests

step "TSan parallel sweep determinism"
# The work-stealing pool must produce byte-identical results at any
# job count, with no data races while doing so.
"$root/build-tsan/tests/pacache_tests" \
    --gtest_filter='ThreadPool.*:SweepRunner.*'

step "all checks passed"
