/**
 * @file
 * pacache_sim — command-line driver for the full simulated storage
 * system: pick a workload (built-in synthesizer or a trace file), a
 * replacement policy, a write policy, a DPM regime and a cache size;
 * get the energy/latency report.
 *
 * Examples:
 *   pacache_sim --workload oltp --policy pa-lru --cache-blocks 1024
 *   pacache_sim --trace mytrace.txt --policy arc --dpm oracle
 *   pacache_sim --workload cello --policy lru --write wtdu
 *   pacache_sim --workload synthetic --requests 50000 --write-ratio 0.8
 */

#include <chrono>
#include <fstream>
#include <optional>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>

#include "cli.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "obs/energy_ledger.hh"
#include "obs/observer.hh"
#include "obs/profiler.hh"
#include "runner/shard_replay.hh"
#include "runner/sweep.hh"
#include "runner/thread_pool.hh"
#include "trace/stats.hh"
#include "trace/synthetic.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"
#include "tracefmt/detect.hh"
#include "tracefmt/trace_source.hh"
#include "util/build_info.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

const char kUsage[] = R"(pacache_sim — power-aware storage cache simulator

workload selection (one of):
  --trace FILE           load a trace file; the format is sniffed
                         unless --trace-format says otherwise
  --trace-format NAME    auto | text | spc | msr | blktrace | pct
                         (default: auto)
  --stream               drive the simulation straight from the trace
                         file instead of loading it into memory, so
                         traces larger than RAM work (requires --trace;
                         off-line policies materialize unless --window
                         gives them out-of-core future knowledge)
  --window N             with --stream and belady/opg: build windowed
                         future knowledge over the .pct file (exact;
                         bit-identical to the materialized oracle) and
                         keep peak memory bounded by N look-ahead
                         accesses instead of the trace length
  --window-chunk N       backward-pass chunk size in accesses
                         (default: 4Mi; smaller = less build memory)
  --oracle-mem-budget M  with opg: cap the oracle's in-RAM replay
                         state (deterministic-miss sets, next-use
                         indexes, pinned times) at M MiB, spilling
                         overflow pages to unlinked temporary files;
                         results stay bit-identical to the unbounded
                         oracle (0 = unbounded, the default)
  --shards N             partition the trace by disk (shard = disk id
                         mod N) and replay every shard on its own
                         simulation stack in parallel (requires
                         --stream and a .pct trace; statistics follow
                         the sharded-cache model of pacache_serve and
                         are byte-identical for any --jobs)
  --workload NAME        oltp | cello | synthetic | opg-showcase
                         (default: oltp)
  --duration SECONDS     workload length where applicable
  --requests N           synthetic workload request count
  --write-ratio R        synthetic write fraction (0..1)
  --interarrival MS      synthetic mean inter-arrival time
  --pareto               synthetic: bursty Pareto arrivals
  --disks N              synthetic disk count
  --seed N               generator seed

system configuration:
  --policy NAME          lru | fifo | clock | arc | mq | lirs | belady |
                         opg | pa-lru | pa-arc | pa-lirs | infinite
                         (default: lru)
  --dpm NAME             always-on | adaptive | practical | oracle
                         (default: practical)
  --write NAME           wt | wb | wbeu | wtdu   (default: wb)
  --cache-blocks N       cache capacity in blocks (default: 1024)
  --epoch SECONDS        PA classifier epoch (default: 900)
  --opg-theta J          OPG penalty floor (default: auto)

parallel sweeps:
  --sweep FILE           run every point of the JSON sweep spec instead
                         of a single experiment; axes: workloads,
                         policies, cache_blocks, dpms, write_policies,
                         plus name and duration (see EXPERIMENTS.md)
  --sweep-out FILE       write the sweep report as JSON (default:
                         console table only)
  --jobs N               worker threads for --sweep / --shards
                         (default: all hardware threads)

output:
  --per-disk             include the per-disk breakdown
  --energy-ledger        print the energy-attribution ledger: active /
                         idle / spin-up / spin-down rows per disk plus
                         spin-ups by wake cause, with the conservation
                         check (rows sum to the energy totals)
  --help                 this text
  --version              build information

observability:
  --metrics-out FILE     metric registry + summary snapshot; JSON, or
                         flat "name value" text if FILE ends in .txt,
                         or Prometheus-style exposition if it ends in
                         .prom
  --trace-events FILE    Chrome trace-event JSON (load in Perfetto or
                         chrome://tracing): per-disk power-state
                         residency tracks, spin-up/-down markers, PA
                         epochs and class flips, WBEU/WTDU events
  --timeline FILE        per-interval activity rows; JSONL, or CSV if
                         FILE ends in .csv
  --timeline-interval S  timeline row length in simulated seconds
                         (default: 900, the PA epoch)
  --progress             live progress meter on stderr
  --profile              time the simulator's own phases (ingest,
                         oracle precompute, replay, drain, report) and
                         print a self-time summary table; with
                         --trace-events the spans land on a dedicated
                         wall-clock track in the trace file
)";

/**
 * The full --metrics-out JSON document: build identification, run
 * configuration, the report-level summary statistics (energy,
 * responses, cache), and the nested metric registry snapshot. The
 * summary numbers are the same doubles the console report formats, so
 * the file reconciles with the printed output exactly.
 */
void
writeMetricsJson(std::ostream &os, const cli::Args &args,
                 const TraceStats &st, const ExperimentConfig &cfg,
                 const ExperimentResult &r,
                 const std::vector<std::string> &mode_names,
                 const obs::EnergyLedger &ledger,
                 const obs::MetricRegistry &registry)
{
    JsonWriter json(os);
    json.beginObject();

    json.key("build");
    writeBuildInfoJson(json);

    json.key("run");
    json.beginObject();
    if (args.has("trace"))
        json.kv("trace", args.get("trace", ""));
    else
        json.kv("workload", args.get("workload", "oltp"));
    json.kv("policy", r.policyName);
    json.kv("dpm", args.get("dpm", "practical"));
    json.kv("write_policy", writePolicyName(cfg.storage.writePolicy));
    json.kv("cache_blocks", static_cast<uint64_t>(cfg.cacheBlocks));
    json.kv("requests", st.requests);
    json.kv("disks", static_cast<uint64_t>(st.disks));
    json.endObject();

    json.kv("total_energy_joules", r.totalEnergy);
    json.key("energy");
    r.energy.writeJsonValue(json, &mode_names);

    json.key("responses");
    r.responses.writeJsonValue(json);

    json.key("cache");
    json.beginObject();
    json.kv("accesses", r.cache.accesses);
    json.kv("hits", r.cache.hits);
    json.kv("misses", r.cache.misses);
    json.kv("hit_ratio", r.cache.hitRatio());
    json.kv("cold_misses", r.cache.coldMisses);
    json.kv("evictions", r.cache.evictions);
    json.endObject();

    json.key("energy_ledger");
    ledger.writeJsonValue(json);

    // The registry snapshot is a complete JSON object of its own;
    // splice it in verbatim.
    std::ostringstream reg;
    registry.writeJson(reg);
    json.key("metrics");
    json.rawValue(reg.str());

    json.endObject();
    json.finish();
}

/**
 * --sweep mode: expand the spec, run every point on the thread pool,
 * print a per-point table, and optionally dump a JSON report whose
 * ordering is independent of the job count.
 */
int
runSweepMode(const cli::Args &args)
{
    const std::string path = args.get("sweep", "");
    std::ifstream in(path);
    if (!in)
        PACACHE_FATAL("cannot open sweep spec '", path, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    const runner::SweepSpec spec =
        runner::SweepSpec::fromJsonText(buf.str());

    const unsigned jobs =
        static_cast<unsigned>(args.getUint("jobs", 0));
    const unsigned workers =
        jobs == 0 ? runner::ThreadPool::defaultWorkers() : jobs;

    // Open the report file before the sweep so a bad path fails in
    // milliseconds, not after minutes of simulation.
    std::optional<std::ofstream> sweepOut;
    if (args.has("sweep-out"))
        sweepOut.emplace(cli::openOutput(args.get("sweep-out", "")));

    std::cout << "sweep '" << spec.name << "': " << spec.points()
              << " runs on " << workers << " worker"
              << (workers == 1 ? "" : "s") << "\n\n";

    obs::MetricRegistry registry;
    const auto outcomes = runner::runSweep(spec, jobs, &registry);

    TextTable table;
    table.header({"run", "energy (J)", "hit ratio", "mean resp (ms)",
                  "wall (ms)", "req/s"});
    for (const auto &o : outcomes) {
        table.row({o.label, fmt(o.result.totalEnergy, 1),
                   fmtPct(o.result.cache.hitRatio(), 1),
                   fmt(o.result.responses.mean() * 1000.0, 3),
                   fmt(o.wallMs, 1), fmt(o.requestsPerSec, 0)});
    }
    table.print(std::cout);

    const double sweepWall =
        registry.gauge("runner.sweep.wall_ms").value();
    std::cout << "\nsweep wall clock " << fmt(sweepWall, 1)
              << " ms, aggregate "
              << fmt(registry.gauge("runner.sweep.requests_per_sec")
                         .value(),
                     0)
              << " requests/s\n";

    if (sweepOut) {
        std::ofstream &out = *sweepOut;
        JsonWriter json(out);
        json.beginObject();
        json.key("build");
        writeBuildInfoJson(json);
        json.kv("sweep", spec.name);
        json.kv("jobs", workers);
        json.kv("wall_ms", sweepWall);
        // Cross-run distributions from the sharded instruments; all
        // simulation-derived, so this object is byte-identical for
        // any --jobs (unlike the wall-clock fields above).
        json.key("dist");
        json.beginObject();
        json.kv("requests_total",
                registry.gauge("runner.sweep.dist.requests_total")
                    .value());
        for (const char *group : {"energy_j", "hit_ratio"}) {
            json.key(group);
            json.beginObject();
            for (const char *leaf :
                 {"count", "mean", "p50", "p95", "p99", "min",
                  "max"}) {
                const std::string name =
                    std::string("runner.sweep.dist.") + group + '.' +
                    leaf;
                json.kv(leaf, registry.gauge(name).value());
            }
            json.endObject();
        }
        json.endObject();
        json.key("runs");
        json.beginArray();
        for (const auto &o : outcomes) {
            json.beginObject();
            json.kv("label", o.label);
            json.kv("policy", o.result.policyName);
            json.kv("total_energy_joules", o.result.totalEnergy);
            json.kv("hit_ratio", o.result.cache.hitRatio());
            json.kv("mean_response_s", o.result.responses.mean());
            json.kv("wall_ms", o.wallMs);
            json.kv("requests_per_sec", o.requestsPerSec);
            json.endObject();
        }
        json.endArray();
        json.endObject();
        json.finish();
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
try {
    const cli::Args args(argc, argv);
    std::set<std::string> known{
        "stream", "window", "window-chunk", "oracle-mem-budget",
        "shards", "policy", "dpm",
        "write", "cache-blocks", "epoch",
        "opg-theta", "per-disk", "energy-ledger", "metrics-out",
        "trace-events", "timeline", "timeline-interval", "progress",
        "profile", "sweep", "sweep-out", "jobs"};
    known.insert(cli::workloadFlags().begin(),
                 cli::workloadFlags().end());
    if (cli::handleStandardFlags(args, "pacache_sim", kUsage, known))
        return 0;

    if (args.has("sweep"))
        return runSweepMode(args);

    // --stream skips materialization: the workload line's statistics
    // come from a constant-memory scan (same formulas as
    // characterize(), so the printed report matches the in-memory
    // path byte for byte).
    const bool streaming = args.has("stream");
    if (streaming && !args.has("trace"))
        PACACHE_FATAL("--stream requires --trace (generated workloads "
                      "are already in memory)");

    // Phase timing for the simulator's own pipeline; a null profiler
    // pointer (the default) keeps every ProfileScope a no-op.
    obs::Profiler profiler;
    const bool profiling = args.has("profile");
    obs::Profiler *const prof = profiling ? &profiler : nullptr;

    Trace trace;
    std::unique_ptr<tracefmt::TraceSource> source;
    TraceStats st;
    {
        const obs::ProfileScope ingest(prof, "ingest");
        if (streaming) {
            source = tracefmt::openTraceSource(
                args.get("trace", ""),
                tracefmt::parseTraceFormat(
                    args.get("trace-format", "auto")));
            const tracefmt::ScanSummary sum = tracefmt::scan(*source);
            st.requests = sum.records;
            st.disks = static_cast<uint32_t>(sum.numDisks);
            st.writeRatio = sum.writeRatio();
            st.meanInterArrival = sum.meanInterArrival();
            st.duration = sum.endTime;
        } else {
            trace = cli::loadWorkload(args, "oltp");
            st = characterize(trace);
        }
    }

    ExperimentConfig cfg;
    cfg.policy = runner::parsePolicyKind(args.get("policy", "lru"));
    cfg.dpm = runner::parseDpmChoice(args.get("dpm", "practical"));
    cfg.storage.writePolicy =
        runner::parseWritePolicy(args.get("write", "wb"));
    cfg.cacheBlocks = args.getUint("cache-blocks", 1024);
    cfg.pa.epochLength = args.getDouble("epoch", 900.0);
    cfg.opgTheta = args.getDouble("opg-theta", -1.0);
    cfg.windowAccesses =
        static_cast<std::size_t>(args.getUint("window", 0));
    cfg.oracleChunkAccesses =
        static_cast<std::size_t>(args.getUint("window-chunk", 0));
    cfg.oracleMemBudget =
        static_cast<std::size_t>(args.getUint("oracle-mem-budget", 0))
        << 20;
    if (cfg.oracleMemBudget > 0 && cfg.policy != PolicyKind::OPG)
        PACACHE_FATAL("--oracle-mem-budget applies to --policy opg "
                      "only (Belady keeps O(capacity) state)");
    if (cfg.windowAccesses > 0 && !streaming)
        PACACHE_FATAL("--window needs --stream (the in-memory path "
                      "already holds the whole future)");

    // Observability sinks, attached only when requested; the null
    // observer default keeps the un-instrumented hot path unchanged.
    // Output files open before the run so a bad path fails fast, not
    // after hours of simulation.
    obs::SimObserver observer;
    obs::MetricRegistry registry;
    obs::TraceEventWriter trace_events;
    std::ofstream metrics_out, trace_out, timeline_out;
    std::unique_ptr<obs::TimelineWriter> timeline;
    bool observing = false;
    if (args.has("metrics-out")) {
        metrics_out = cli::openOutput(args.get("metrics-out", ""));
        observer.attachMetrics(&registry);
        observing = true;
    }
    if (args.has("trace-events")) {
        trace_out = cli::openOutput(args.get("trace-events", ""));
        observer.attachTrace(&trace_events);
        observing = true;
    }
    if (args.has("timeline")) {
        const std::string path = args.get("timeline", "");
        timeline_out = cli::openOutput(path);
        timeline = std::make_unique<obs::TimelineWriter>(
            timeline_out, obs::TimelineWriter::formatForPath(path));
        const double interval =
            args.getDouble("timeline-interval", 900.0);
        if (interval <= 0)
            PACACHE_FATAL("--timeline-interval must be positive, got ",
                          interval);
        observer.attachTimeline(timeline.get(), interval);
        observing = true;
    }
    if (args.has("progress")) {
        observer.enableProgress(std::cerr);
        observing = true;
    }
    if (observing)
        cfg.observer = &observer;
    cfg.profiler = prof;

    const unsigned shards =
        static_cast<unsigned>(args.getUint("shards", 0));
    if (shards > 0) {
        if (!streaming)
            PACACHE_FATAL("--shards needs --stream");
        if (source->pctPath().empty())
            PACACHE_FATAL("--shards needs a .pct trace (the demux "
                          "re-opens the file for random access); "
                          "convert with pacache_tracectl first");
        if (observing)
            PACACHE_FATAL("--shards runs headless per-shard stacks; "
                          "drop the observability flags");
    }

    const auto wallStart = std::chrono::steady_clock::now();
    ExperimentResult r;
    if (shards > 0) {
        runner::ShardReplayOptions shard_opts;
        shard_opts.shards = shards;
        shard_opts.jobs =
            static_cast<unsigned>(args.getUint("jobs", 0));
        r = runner::runShardedExperiment(source->pctPath(), cfg,
                                         shard_opts);
    } else {
        r = streaming ? runExperiment(*source, cfg)
                      : runExperiment(trace, cfg);
    }
    const std::chrono::duration<double, std::milli> wall =
        std::chrono::steady_clock::now() - wallStart;
    if (args.has("metrics-out")) {
        registry.gauge("run.wall_ms").set(wall.count());
        registry.gauge("run.requests_per_sec")
            .set(wall.count() > 0 ? static_cast<double>(st.requests) *
                                        1000.0 / wall.count()
                                  : 0.0);
    }

    std::vector<std::string> mode_names;
    {
        const PowerModel pm(cfg.spec);
        for (std::size_t m = 0; m < pm.numModes(); ++m)
            mode_names.push_back(pm.mode(m).name);
    }
    obs::EnergyLedger ledger(mode_names);
    for (std::size_t d = 0; d < r.perDisk.size(); ++d)
        ledger.addDisk("disk" + std::to_string(d), r.perDisk[d]);
    if (r.logServiceEnergy != 0) {
        // The WTDU log device never parks; only its service energy
        // enters totalEnergy, so its ledger row is that single cell.
        EnergyStats log_stats(mode_names.size());
        log_stats.serviceEnergy = r.logServiceEnergy;
        ledger.addDisk("log", log_stats);
    }

    if (args.has("trace-events")) {
        // Closed profiler phases ride along on their own track; the
        // still-open report phase (below) is console-summary only.
        if (profiling)
            profiler.emitTrace(trace_events);
        trace_events.writeJson(trace_out);
    }
    if (args.has("metrics-out")) {
        const std::string path = args.get("metrics-out", "");
        std::ostream &out = metrics_out;
        if (cli::hasSuffix(path, ".txt")) {
            registry.writeText(out);
        } else if (cli::hasSuffix(path, ".prom")) {
            registry.writePrometheus(out);
        } else {
            writeMetricsJson(out, args, st, cfg, r, mode_names, ledger,
                             registry);
        }
    }
    if (timeline)
        timeline_out.flush();

    {
        const obs::ProfileScope report_scope(prof, "report");
        std::cout << "workload: " << st.requests << " requests, "
                  << st.disks << " disks, "
                  << fmtPct(st.writeRatio, 1)
                  << " writes, mean inter-arrival "
                  << fmt(st.meanInterArrival * 1000.0, 2) << " ms\n";
        std::cout << "system:   policy " << r.policyName << ", dpm "
                  << args.get("dpm", "practical") << ", write "
                  << writePolicyName(cfg.storage.writePolicy)
                  << ", cache " << cfg.cacheBlocks << " blocks\n\n";

        printSummaryReport(std::cout, r);

        if (args.has("per-disk")) {
            std::cout << "\nper-disk breakdown:\n\n";
            printPerDiskReport(std::cout, r);
        }
        if (args.has("energy-ledger")) {
            std::cout << '\n';
            ledger.writeTable(std::cout);
        }
    }
    if (profiling) {
        std::cout << '\n';
        profiler.writeSummary(std::cout);
    }
    return 0;
} catch (const std::exception &e) {
    std::cerr << e.what() << '\n';
    return 1;
}
