/**
 * @file
 * pacache_sim — command-line driver for the full simulated storage
 * system: pick a workload (built-in synthesizer or a trace file), a
 * replacement policy, a write policy, a DPM regime and a cache size;
 * get the energy/latency report.
 *
 * Examples:
 *   pacache_sim --workload oltp --policy pa-lru --cache-blocks 1024
 *   pacache_sim --trace mytrace.txt --policy arc --dpm oracle
 *   pacache_sim --workload cello --policy lru --write wtdu
 *   pacache_sim --workload synthetic --requests 50000 --write-ratio 0.8
 */

#include <iostream>
#include <set>

#include "cli.hh"
#include "core/experiment.hh"
#include "trace/stats.hh"
#include "trace/synthetic.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

const char kUsage[] = R"(pacache_sim — power-aware storage cache simulator

workload selection (one of):
  --trace FILE           load a trace file (time disk block count R|W)
  --workload NAME        oltp | cello | synthetic | opg-showcase
                         (default: oltp)
  --duration SECONDS     workload length where applicable
  --requests N           synthetic workload request count
  --write-ratio R        synthetic write fraction (0..1)
  --interarrival MS      synthetic mean inter-arrival time
  --pareto               synthetic: bursty Pareto arrivals
  --seed N               generator seed

system configuration:
  --policy NAME          lru | fifo | clock | arc | mq | lirs | belady |
                         opg | pa-lru | pa-arc | pa-lirs | infinite
                         (default: lru)
  --dpm NAME             always-on | adaptive | practical | oracle
                         (default: practical)
  --write NAME           wt | wb | wbeu | wtdu   (default: wb)
  --cache-blocks N       cache capacity in blocks (default: 1024)
  --epoch SECONDS        PA classifier epoch (default: 900)
  --opg-theta J          OPG penalty floor (default: auto)

output:
  --per-disk             include the per-disk breakdown
  --help                 this text
)";

PolicyKind
parsePolicy(const std::string &name)
{
    if (name == "lru") return PolicyKind::LRU;
    if (name == "fifo") return PolicyKind::FIFO;
    if (name == "clock") return PolicyKind::CLOCK;
    if (name == "arc") return PolicyKind::ARC;
    if (name == "mq") return PolicyKind::MQ;
    if (name == "lirs") return PolicyKind::LIRS;
    if (name == "belady") return PolicyKind::Belady;
    if (name == "opg") return PolicyKind::OPG;
    if (name == "pa-lru") return PolicyKind::PALRU;
    if (name == "pa-arc") return PolicyKind::PAARC;
    if (name == "pa-lirs") return PolicyKind::PALIRS;
    if (name == "infinite") return PolicyKind::InfiniteCache;
    PACACHE_FATAL("unknown policy '", name, "'");
}

DpmChoice
parseDpm(const std::string &name)
{
    if (name == "always-on") return DpmChoice::AlwaysOn;
    if (name == "adaptive") return DpmChoice::Adaptive;
    if (name == "practical") return DpmChoice::Practical;
    if (name == "oracle") return DpmChoice::Oracle;
    PACACHE_FATAL("unknown dpm '", name, "'");
}

WritePolicy
parseWrite(const std::string &name)
{
    if (name == "wt") return WritePolicy::WriteThrough;
    if (name == "wb") return WritePolicy::WriteBack;
    if (name == "wbeu") return WritePolicy::WriteBackEagerUpdate;
    if (name == "wtdu") return WritePolicy::WriteThroughDeferredUpdate;
    PACACHE_FATAL("unknown write policy '", name, "'");
}

Trace
loadWorkload(const cli::Args &args)
{
    if (args.has("trace"))
        return readTraceFile(args.get("trace", ""));

    const std::string name = args.get("workload", "oltp");
    if (name == "oltp") {
        OltpParams p;
        p.duration = args.getDouble("duration", p.duration);
        p.seed = args.getUint("seed", p.seed);
        return makeOltpTrace(p);
    }
    if (name == "cello") {
        CelloParams p;
        p.duration = args.getDouble("duration", 300.0);
        p.seed = args.getUint("seed", p.seed);
        return makeCelloTrace(p);
    }
    if (name == "opg-showcase") {
        OpgShowcaseParams p;
        p.duration = args.getDouble("duration", p.duration);
        return makeOpgShowcaseTrace(p);
    }
    if (name == "synthetic") {
        SyntheticParams p;
        p.numRequests = args.getUint("requests", 20000);
        p.writeRatio = args.getDouble("write-ratio", p.writeRatio);
        const double mean =
            args.getDouble("interarrival", p.arrival.meanMs);
        p.arrival = args.has("pareto") ? ArrivalModel::pareto(mean)
                                       : ArrivalModel::exponential(mean);
        p.seed = args.getUint("seed", p.seed);
        return generateSynthetic(p);
    }
    PACACHE_FATAL("unknown workload '", name, "'");
}

} // namespace

int
main(int argc, char **argv)
try {
    const cli::Args args(argc, argv);
    if (args.has("help")) {
        std::cout << kUsage;
        return 0;
    }
    const std::set<std::string> known{
        "trace", "workload", "duration", "requests", "write-ratio",
        "interarrival", "pareto", "seed", "policy", "dpm", "write",
        "cache-blocks", "epoch", "opg-theta", "per-disk", "help"};
    if (const std::string bad = args.firstUnknown(known); !bad.empty())
        PACACHE_FATAL("unknown flag --", bad, " (see --help)");

    const Trace trace = loadWorkload(args);
    const TraceStats st = characterize(trace);

    ExperimentConfig cfg;
    cfg.policy = parsePolicy(args.get("policy", "lru"));
    cfg.dpm = parseDpm(args.get("dpm", "practical"));
    cfg.storage.writePolicy = parseWrite(args.get("write", "wb"));
    cfg.cacheBlocks = args.getUint("cache-blocks", 1024);
    cfg.pa.epochLength = args.getDouble("epoch", 900.0);
    cfg.opgTheta = args.getDouble("opg-theta", -1.0);

    const ExperimentResult r = runExperiment(trace, cfg);

    std::cout << "workload: " << st.requests << " requests, "
              << st.disks << " disks, " << fmtPct(st.writeRatio, 1)
              << " writes, mean inter-arrival "
              << fmt(st.meanInterArrival * 1000.0, 2) << " ms\n";
    std::cout << "system:   policy " << r.policyName << ", dpm "
              << args.get("dpm", "practical") << ", write "
              << writePolicyName(cfg.storage.writePolicy) << ", cache "
              << cfg.cacheBlocks << " blocks\n\n";

    TextTable t;
    t.row({"total energy", fmt(r.totalEnergy, 1) + " J"});
    t.row({"hit ratio", fmtPct(r.cache.hitRatio(), 2)});
    t.row({"cold misses",
           fmtPct(static_cast<double>(r.cache.coldMisses) /
                      static_cast<double>(std::max<uint64_t>(
                          1, r.cache.accesses)),
                  2)});
    t.row({"mean response", fmt(r.responses.mean() * 1000.0, 3) + " ms"});
    t.row({"p95 response",
           fmt(r.responses.percentile(0.95) * 1000.0, 3) + " ms"});
    t.row({"max response", fmt(r.responses.max(), 3) + " s"});
    t.row({"spin-ups", std::to_string(r.energy.spinUps)});
    t.row({"spin-downs", std::to_string(r.energy.spinDowns)});
    if (r.logWrites > 0)
        t.row({"log writes", std::to_string(r.logWrites)});
    t.print(std::cout);

    if (args.has("per-disk")) {
        std::cout << "\nper-disk breakdown:\n\n";
        TextTable d;
        d.header({"disk", "accesses", "energy (J)", "spin-ups",
                  "standby (s)", "mean gap (s)"});
        for (std::size_t i = 0; i < r.perDisk.size(); ++i) {
            d.row({std::to_string(i), std::to_string(r.diskAccesses[i]),
                   fmt(r.perDisk[i].total(), 0),
                   std::to_string(r.perDisk[i].spinUps),
                   fmt(r.perDisk[i].timePerMode.back(), 0),
                   fmt(r.diskMeanInterArrival[i], 2)});
        }
        d.print(std::cout);
    }
    return 0;
} catch (const std::exception &e) {
    std::cerr << e.what() << '\n';
    return 1;
}
