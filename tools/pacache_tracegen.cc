/**
 * @file
 * pacache_tracegen — emit workload traces in the pacache text format
 * for use with pacache_sim --trace or external tooling.
 *
 * Examples:
 *   pacache_tracegen --workload oltp --out oltp.txt
 *   pacache_tracegen --workload synthetic --requests 100000 \
 *       --write-ratio 0.5 --pareto --out wr50.txt
 */

#include <iostream>
#include <set>

#include "cli.hh"
#include "trace/stats.hh"
#include "trace/synthetic.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"
#include "util/build_info.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

const char kUsage[] = R"(pacache_tracegen — workload trace generator

  --workload NAME     oltp | cello | synthetic | opg-showcase
                      (default: synthetic)
  --out FILE          output path (default: stdout)
  --duration SECONDS  workload length where applicable
  --requests N        synthetic request count (default: 20000)
  --write-ratio R     synthetic write fraction
  --interarrival MS   synthetic mean inter-arrival time
  --pareto            synthetic: bursty Pareto arrivals
  --disks N           synthetic disk count
  --seed N            generator seed
  --help              this text
  --version           build information
)";

} // namespace

int
main(int argc, char **argv)
try {
    const cli::Args args(argc, argv);
    if (args.has("help")) {
        std::cout << kUsage;
        return 0;
    }
    if (args.has("version")) {
        std::cout << buildInfoBanner("pacache_tracegen") << '\n';
        return 0;
    }
    const std::set<std::string> known{
        "workload", "out", "duration", "requests", "write-ratio",
        "interarrival", "pareto", "disks", "seed", "help", "version"};
    if (const std::string bad = args.firstUnknown(known); !bad.empty())
        PACACHE_FATAL("unknown flag --", bad, " (see --help)");

    Trace trace;
    const std::string name = args.get("workload", "synthetic");
    if (name == "oltp") {
        OltpParams p;
        p.duration = args.getDouble("duration", p.duration);
        p.seed = args.getUint("seed", p.seed);
        trace = makeOltpTrace(p);
    } else if (name == "cello") {
        CelloParams p;
        p.duration = args.getDouble("duration", 300.0);
        p.seed = args.getUint("seed", p.seed);
        trace = makeCelloTrace(p);
    } else if (name == "opg-showcase") {
        OpgShowcaseParams p;
        p.duration = args.getDouble("duration", p.duration);
        trace = makeOpgShowcaseTrace(p);
    } else if (name == "synthetic") {
        SyntheticParams p;
        p.numRequests = args.getUint("requests", 20000);
        p.numDisks =
            static_cast<uint32_t>(args.getUint("disks", p.numDisks));
        p.writeRatio = args.getDouble("write-ratio", p.writeRatio);
        const double mean =
            args.getDouble("interarrival", p.arrival.meanMs);
        p.arrival = args.has("pareto") ? ArrivalModel::pareto(mean)
                                       : ArrivalModel::exponential(mean);
        p.seed = args.getUint("seed", p.seed);
        trace = generateSynthetic(p);
    } else {
        PACACHE_FATAL("unknown workload '", name, "'");
    }

    if (args.has("out")) {
        writeTraceFile(args.get("out", ""), trace);
        const TraceStats s = characterize(trace);
        std::cerr << "wrote " << s.requests << " requests ("
                  << s.disks << " disks, " << fmtPct(s.writeRatio, 1)
                  << " writes) to " << args.get("out", "") << "\n";
    } else {
        writeTrace(std::cout, trace);
    }
    return 0;
} catch (const std::exception &e) {
    std::cerr << e.what() << '\n';
    return 1;
}
