/**
 * @file
 * pacache_tracegen — emit workload traces in the pacache text format
 * for use with pacache_sim --trace or external tooling.
 *
 * Examples:
 *   pacache_tracegen --workload oltp --out oltp.txt
 *   pacache_tracegen --workload synthetic --requests 100000 \
 *       --write-ratio 0.5 --pareto --out wr50.txt
 *   pacache_tracegen --scale --workload oltp --disks 1024 \
 *       --requests 1000000000 --out big.pct
 */

#include <iostream>
#include <memory>
#include <set>

#include "cli.hh"
#include "trace/stats.hh"
#include "trace/stream_gen.hh"
#include "trace/trace_io.hh"
#include "tracefmt/detect.hh"
#include "tracefmt/sink.hh"
#include "util/logging.hh"
#include "util/mem.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

const char kUsage[] = R"(pacache_tracegen — workload trace generator

  --workload NAME     oltp | cello | synthetic | opg-showcase
                      (default: synthetic)
  --trace FILE        re-emit an existing trace instead (format
                      sniffed unless --trace-format says otherwise)
  --out FILE          output path (default: stdout)
  --duration SECONDS  workload length where applicable
  --requests N        synthetic request count (default: 20000)
  --write-ratio R     synthetic write fraction
  --interarrival MS   synthetic mean inter-arrival time
  --pareto            synthetic: bursty Pareto arrivals
  --disks N           synthetic disk count
  --seed N            generator seed

scaled streaming generation:
  --scale             generate the scaled OLTP/Cello workload
                      (--workload oltp | cello) by streaming straight
                      into --out — the trace is never materialized,
                      so multi-GB / billion-request .pct files use
                      constant memory. --disks sets the array size
                      (default: 64); the run stops at --requests
                      (default: 10000000 when no --duration is given)
                      and/or --duration seconds.

  --help              this text
  --version           build information
)";

int
runScaleMode(const cli::Args &args)
{
    if (!args.has("out"))
        PACACHE_FATAL("--scale streams; it requires --out FILE");

    const std::string name = args.get("workload", "oltp");
    const uint32_t disks =
        static_cast<uint32_t>(args.getUint("disks", 64));
    std::vector<DiskStream> streams;
    if (name == "oltp")
        streams = scaledOltpStreams(disks);
    else if (name == "cello")
        streams = scaledCelloStreams(disks);
    else
        PACACHE_FATAL("--scale supports --workload oltp | cello, got '",
                      name, "'");

    const Time duration = args.getDouble("duration", 0.0);
    uint64_t requests = args.getUint("requests", 0);
    if (duration <= 0 && requests == 0)
        requests = 10000000;

    StreamingSyntheticSource gen(std::move(streams), duration,
                                 args.getUint("seed", 42), requests);
    const auto sink = tracefmt::openTraceSink(
        args.get("out", ""), tracefmt::TraceFormat::Auto);
    const uint64_t n = tracefmt::copyAll(gen, *sink);
    std::cerr << "streamed " << n << " requests (" << disks
              << " disks, " << name << " scaled) to "
              << args.get("out", "") << ", peak RSS "
              << fmt(static_cast<double>(peakRssBytes()) /
                         (1024.0 * 1024.0),
                     1)
              << " MiB\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
try {
    const cli::Args args(argc, argv);
    std::set<std::string> known{"out", "scale"};
    known.insert(cli::workloadFlags().begin(),
                 cli::workloadFlags().end());
    if (cli::handleStandardFlags(args, "pacache_tracegen", kUsage,
                                 known))
        return 0;

    if (args.has("scale"))
        return runScaleMode(args);

    const Trace trace = cli::loadWorkload(args, "synthetic");

    if (args.has("out")) {
        writeTraceFile(args.get("out", ""), trace);
        const TraceStats s = characterize(trace);
        std::cerr << "wrote " << s.requests << " requests ("
                  << s.disks << " disks, " << fmtPct(s.writeRatio, 1)
                  << " writes) to " << args.get("out", "") << "\n";
    } else {
        writeTrace(std::cout, trace);
    }
    return 0;
} catch (const std::exception &e) {
    std::cerr << e.what() << '\n';
    return 1;
}
