/**
 * @file
 * pacache_tracegen — emit workload traces in the pacache text format
 * for use with pacache_sim --trace or external tooling.
 *
 * Examples:
 *   pacache_tracegen --workload oltp --out oltp.txt
 *   pacache_tracegen --workload synthetic --requests 100000 \
 *       --write-ratio 0.5 --pareto --out wr50.txt
 */

#include <iostream>
#include <set>

#include "cli.hh"
#include "trace/stats.hh"
#include "trace/trace_io.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

const char kUsage[] = R"(pacache_tracegen — workload trace generator

  --workload NAME     oltp | cello | synthetic | opg-showcase
                      (default: synthetic)
  --trace FILE        re-emit an existing trace instead (format
                      sniffed unless --trace-format says otherwise)
  --out FILE          output path (default: stdout)
  --duration SECONDS  workload length where applicable
  --requests N        synthetic request count (default: 20000)
  --write-ratio R     synthetic write fraction
  --interarrival MS   synthetic mean inter-arrival time
  --pareto            synthetic: bursty Pareto arrivals
  --disks N           synthetic disk count
  --seed N            generator seed
  --help              this text
  --version           build information
)";

} // namespace

int
main(int argc, char **argv)
try {
    const cli::Args args(argc, argv);
    std::set<std::string> known{"out"};
    known.insert(cli::workloadFlags().begin(),
                 cli::workloadFlags().end());
    if (cli::handleStandardFlags(args, "pacache_tracegen", kUsage,
                                 known))
        return 0;

    const Trace trace = cli::loadWorkload(args, "synthetic");

    if (args.has("out")) {
        writeTraceFile(args.get("out", ""), trace);
        const TraceStats s = characterize(trace);
        std::cerr << "wrote " << s.requests << " requests ("
                  << s.disks << " disks, " << fmtPct(s.writeRatio, 1)
                  << " writes) to " << args.get("out", "") << "\n";
    } else {
        writeTrace(std::cout, trace);
    }
    return 0;
} catch (const std::exception &e) {
    std::cerr << e.what() << '\n';
    return 1;
}
