#!/usr/bin/env python3
"""Validate qa corpus reproducers.

Structurally checks every .corpus file (format version, required
metadata, well-formed trace records, monotone timestamps) and, when
given --fuzz-bin, replays each file through `pacache_fuzz --replay`
and requires the property to PASS — a committed reproducer documents
a bug that is fixed at HEAD, so a red replay means a regression (or a
stale corpus file).

Usage:
    tools/corpus_lint.py tests/qa/corpus
    tools/corpus_lint.py --fuzz-bin build/tools/pacache_fuzz \
        tests/qa/corpus
"""

import argparse
import pathlib
import subprocess
import sys

HEADER = "pacache-corpus v1"
REQUIRED_KEYS = {
    "property", "seed", "cache_blocks", "policy", "dpm_kind", "dpm",
    "write_policy", "wtdu_region_blocks", "theta", "crash_step",
    "pa_epoch", "spec",
}
OPTIONAL_KEYS = {"pre_fix_rev", "description"}
# Crash-plan keys are written only when a case's fault plan is armed,
# and then all four must appear together (see qa/corpus.cc).
CRASH_KEYS = {"crash_site", "crash_occurrence", "crash_reorder_seed",
              "crash_survive_prob"}
CRASH_SITES = {"log-append", "log-append-torn", "eager-update",
               "spin-up", "retire-pre", "retire-post", "data-write",
               "shutdown", "recovery"}
POLICIES = {"lru", "fifo", "clock", "arc", "mq", "lirs", "belady",
            "opg", "pa-lru", "pa-arc", "pa-lirs", "infinite"}
DPM_KINDS = {"oracle", "practical"}
DPMS = {"always-on", "adaptive", "practical", "oracle"}
WRITE_POLICIES = {"wt", "wb", "wbeu", "wtdu"}


def lint_file(path: pathlib.Path) -> list[str]:
    errors = []
    lines = path.read_text().splitlines()
    if not lines or lines[0] != HEADER:
        return [f"missing '{HEADER}' header"]

    keys = {}
    trace = []
    in_trace = False
    saw_end = False
    for lineno, raw in enumerate(lines[1:], start=2):
        line = raw if in_trace else raw.split("#", 1)[0].rstrip()
        if not line:
            continue
        if in_trace:
            if line == "end":
                in_trace = False
                saw_end = True
                continue
            fields = line.split()
            if len(fields) != 5:
                errors.append(f"line {lineno}: trace record needs 5 "
                              f"fields, has {len(fields)}")
                continue
            try:
                time = float(fields[0])
                disk = int(fields[1])
                block = int(fields[2])
                count = int(fields[3])
            except ValueError:
                errors.append(f"line {lineno}: non-numeric trace field")
                continue
            if fields[4] not in ("R", "W"):
                errors.append(f"line {lineno}: direction must be R|W")
            if time < 0 or disk < 0 or block < 0 or count < 1:
                errors.append(f"line {lineno}: out-of-range field")
            if block >= 1 << 48:
                errors.append(f"line {lineno}: block beyond the 2^48 "
                              "packed-key limit")
            if trace and time < trace[-1]:
                errors.append(f"line {lineno}: time {time} precedes "
                              f"previous record at {trace[-1]}")
            trace.append(time)
            continue
        if saw_end:
            errors.append(f"line {lineno}: content after 'end'")
            continue
        if line == "trace:":
            in_trace = True
            continue
        if ":" not in line:
            errors.append(f"line {lineno}: expected 'key: value'")
            continue
        key, _, value = line.partition(":")
        keys[key.strip()] = value.strip()

    if not saw_end:
        errors.append("missing 'trace:' ... 'end' section")
    missing = REQUIRED_KEYS - keys.keys()
    if missing:
        errors.append(f"missing keys: {', '.join(sorted(missing))}")
    unknown = keys.keys() - REQUIRED_KEYS - OPTIONAL_KEYS - CRASH_KEYS
    if unknown:
        errors.append(f"unknown keys: {', '.join(sorted(unknown))}")
    present_crash = CRASH_KEYS & keys.keys()
    if present_crash and present_crash != CRASH_KEYS:
        errors.append("partial crash plan: missing "
                      f"{', '.join(sorted(CRASH_KEYS - present_crash))}")
    if "crash_site" in keys and keys["crash_site"] not in CRASH_SITES:
        errors.append(f"bad crash_site '{keys['crash_site']}'")
    for key in ("crash_occurrence", "crash_reorder_seed"):
        if key in keys:
            try:
                if int(keys[key]) < 0:
                    errors.append(f"negative {key}")
            except ValueError:
                errors.append(f"non-integer {key} '{keys[key]}'")
    if "crash_survive_prob" in keys:
        try:
            prob = float(keys["crash_survive_prob"])
            if not 0.0 <= prob <= 1.0:
                errors.append("crash_survive_prob outside [0, 1]")
        except ValueError:
            errors.append("non-numeric crash_survive_prob "
                          f"'{keys['crash_survive_prob']}'")

    def check_enum(key, allowed):
        if key in keys and keys[key] not in allowed:
            errors.append(f"bad {key} '{keys[key]}'")

    check_enum("policy", POLICIES)
    check_enum("dpm_kind", DPM_KINDS)
    check_enum("dpm", DPMS)
    check_enum("write_policy", WRITE_POLICIES)
    if "spec" in keys and len(keys["spec"].split()) != 6:
        errors.append("spec needs 6 numeric fields")
    if keys.get("property") == "":
        errors.append("empty property name")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="+", type=pathlib.Path,
                        help="corpus files or directories of them")
    parser.add_argument("--fuzz-bin", type=pathlib.Path,
                        help="pacache_fuzz binary; when given, every "
                             "file must also replay green")
    args = parser.parse_args()

    files = []
    for path in args.paths:
        if path.is_dir():
            files.extend(sorted(path.glob("*.corpus")))
        else:
            files.append(path)
    if not files:
        print("corpus_lint: no corpus files found", file=sys.stderr)
        return 1

    failed = False
    for path in files:
        errors = lint_file(path)
        if errors:
            failed = True
            for error in errors:
                print(f"{path}: {error}", file=sys.stderr)
            continue
        if args.fuzz_bin:
            result = subprocess.run(
                [str(args.fuzz_bin), "--replay", str(path)],
                capture_output=True, text=True)
            if result.returncode != 0:
                failed = True
                print(f"{path}: replay failed:\n{result.stdout}"
                      f"{result.stderr}", file=sys.stderr)
                continue
        print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
