/**
 * @file
 * pacache_tracectl — trace-file swiss army knife for the workload
 * ingestion subsystem: convert between formats (native text, SPC,
 * MSR-Cambridge, blktrace text, binary .pct), inspect headers,
 * characterize workloads, and derive filtered or time-scaled traces.
 * Every command streams, so files larger than RAM are fine.
 *
 * Examples:
 *   pacache_tracectl convert --in fin1.spc --out fin1.pct
 *   pacache_tracectl info --in fin1.pct
 *   pacache_tracectl stats --in trace.txt
 *   pacache_tracectl head --in fin1.pct --n 20
 *   pacache_tracectl filter --in big.pct --out disk0.pct --disk 0
 *   pacache_tracectl scale --in slow.txt --out fast.txt --time-factor 0.5
 */

#include <functional>
#include <iostream>
#include <set>
#include <string>

#include "cli.hh"
#include "trace/stats.hh"
#include "tracefmt/detect.hh"
#include "tracefmt/pct.hh"
#include "tracefmt/sink.hh"
#include "tracefmt/trace_source.hh"
#include "util/build_info.hh"
#include "util/logging.hh"
#include "util/mem.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

const char kUsage[] = R"(pacache_tracectl — trace conversion and inspection

usage: pacache_tracectl COMMAND [flags]

commands:
  convert    rewrite --in as --out (any format to text or .pct)
  info       one-screen summary: format, header, scan statistics
  stats      full characterization with a per-disk table
  head       print the first records as native text
  filter     keep a disk and/or time window, write to --out
  scale      multiply arrival times by --time-factor, write to --out

input (all commands):
  --in FILE              input trace
  --in-format NAME       auto | text | spc | msr | blktrace | pct
                         (default: auto — sniffed from the file)
  --block-bytes N        cache block size byte extents map onto
                         (foreign formats; default: 4096)
  --sector-bytes N       LBA / sector unit (SPC, blktrace; default: 512)
  --disks N              fold disk ids onto N disks via modulo
  --no-rebase            keep original timestamps (default: shift the
                         first foreign-format arrival to t = 0)
  --strict-order         fail on out-of-order arrivals instead of
                         clamping them (foreign formats)

output (convert / filter / scale):
  --out FILE             output trace
  --out-format NAME      text | pct (default: auto — ".pct" extension
                         selects the binary format)

command flags:
  --n N                  head: records to print (default: 10)
  --disk D               filter: keep only this disk id
  --from T / --to T      filter: keep arrivals in [T, T) seconds
  --time-factor X        scale: multiply every arrival time by X

  --help                 this text
  --version              build information
)";

/** "peak RSS 12.3 MiB" — evidence the command really streamed. */
std::string
peakRssLine()
{
    return "peak RSS " +
           fmt(static_cast<double>(peakRssBytes()) / (1024.0 * 1024.0),
               1) +
           " MiB";
}

/** Foreign-format mapping knobs from the shared flags. */
tracefmt::IngestOptions
ingestOptions(const cli::Args &args)
{
    tracefmt::IngestOptions opt;
    opt.blockBytes = args.getUint("block-bytes", opt.blockBytes);
    opt.sectorBytes = static_cast<uint32_t>(
        args.getUint("sector-bytes", opt.sectorBytes));
    opt.diskModulo = static_cast<uint32_t>(args.getUint("disks", 0));
    if (args.has("no-rebase"))
        opt.rebaseTime = false;
    if (args.has("strict-order"))
        opt.clampUnsorted = false;
    return opt;
}

std::unique_ptr<tracefmt::TraceSource>
openInput(const cli::Args &args)
{
    if (!args.has("in"))
        PACACHE_FATAL("--in FILE is required (see --help)");
    return tracefmt::openTraceSource(
        args.get("in", ""),
        tracefmt::parseTraceFormat(args.get("in-format", "auto")),
        ingestOptions(args));
}

std::unique_ptr<tracefmt::TraceSink>
openOutput(const cli::Args &args)
{
    if (!args.has("out"))
        PACACHE_FATAL("--out FILE is required (see --help)");
    return tracefmt::openTraceSink(
        args.get("out", ""),
        tracefmt::parseTraceFormat(args.get("out-format", "auto")));
}

/**
 * Stream @p src through @p keep (record in, possibly-rewritten record
 * kept or dropped) into the --out sink; shared by convert (identity),
 * filter, and scale.
 */
uint64_t
transformInto(tracefmt::TraceSource &src, tracefmt::TraceSink &sink,
              const std::function<bool(TraceRecord &)> &keep)
{
    TraceRecord rec;
    uint64_t written = 0;
    while (src.next(rec)) {
        if (!keep(rec))
            continue;
        sink.append(rec);
        ++written;
    }
    sink.finish();
    return written;
}

int
cmdConvert(const cli::Args &args)
{
    const auto src = openInput(args);
    const auto sink = openOutput(args);
    const uint64_t n = tracefmt::copyAll(*src, *sink);
    std::cout << "converted " << n << " records (" << src->formatName()
              << " -> " << args.get("out", "") << ")\n";
    return 0;
}

int
cmdInfo(const cli::Args &args)
{
    const auto src = openInput(args);
    const tracefmt::ScanSummary sum = tracefmt::scan(*src);

    std::cout << "file:     " << args.get("in", "") << '\n'
              << "format:   " << src->formatName() << '\n';
    if (const auto *pct =
            dynamic_cast<const tracefmt::PctMmapSource *>(src.get())) {
        const tracefmt::PctInfo &h = pct->header();
        std::cout << "header:   version " << h.version << ", checksum 0x"
                  << std::hex << h.checksum << std::dec << '\n';
    }
    std::cout << "records:  " << sum.records << " (" << sum.blocks
              << " blocks, " << fmtPct(sum.writeRatio(), 1)
              << " writes)\n"
              << "disks:    " << sum.numDisks << '\n'
              << "time:     " << fmt(sum.firstTime, 3) << " .. "
              << fmt(sum.endTime, 3) << " s, mean inter-arrival "
              << fmt(sum.meanInterArrival() * 1000.0, 3) << " ms\n"
              << "memory:   " << peakRssLine() << '\n';
    return 0;
}

int
cmdStats(const cli::Args &args)
{
    // One streaming pass: memory is bounded by the per-disk
    // unique-block sets (the footprint), never the trace length.
    const auto src = openInput(args);
    const TraceStats st = characterize(*src);

    std::cout << "requests: " << st.requests << " ("
              << fmtPct(st.writeRatio, 1) << " writes)\n"
              << "footprint: " << st.uniqueBlocks << " unique blocks\n"
              << "duration: " << fmt(st.duration, 3)
              << " s, mean inter-arrival "
              << fmt(st.meanInterArrival * 1000.0, 3) << " ms\n\n";

    TextTable table;
    table.header({"disk", "requests", "interarrival_ms", "unique"});
    for (uint32_t d = 0; d < st.disks; ++d) {
        table.row({std::to_string(d),
                   std::to_string(st.perDiskRequests[d]),
                   fmt(st.perDiskInterArrival[d] * 1000.0, 3),
                   std::to_string(st.perDiskUnique[d])});
    }
    table.print(std::cout);
    std::cout << '\n' << peakRssLine() << '\n';
    return 0;
}

int
cmdHead(const cli::Args &args)
{
    const auto src = openInput(args);
    const uint64_t n = args.getUint("n", 10);
    TraceRecord rec;
    for (uint64_t i = 0; i < n && src->next(rec); ++i)
        std::cout << toString(rec) << '\n';
    return 0;
}

int
cmdFilter(const cli::Args &args)
{
    const bool by_disk = args.has("disk");
    const DiskId disk = static_cast<DiskId>(args.getUint("disk", 0));
    const Time from = args.getDouble("from", 0.0);
    const Time to = args.getDouble("to", -1.0); // < 0: no upper bound
    if (!by_disk && !args.has("from") && !args.has("to"))
        PACACHE_FATAL("filter needs --disk, --from, or --to");

    const auto src = openInput(args);
    const auto sink = openOutput(args);
    uint64_t seen = 0;
    const uint64_t kept =
        transformInto(*src, *sink, [&](TraceRecord &rec) {
            ++seen;
            if (by_disk && rec.disk != disk)
                return false;
            if (rec.time < from)
                return false;
            if (to >= 0 && rec.time >= to)
                return false;
            return true;
        });
    std::cout << "kept " << kept << " of " << seen << " records -> "
              << args.get("out", "") << '\n';
    return 0;
}

int
cmdScale(const cli::Args &args)
{
    const double factor = args.getDouble("time-factor", 0.0);
    if (factor <= 0)
        PACACHE_FATAL("scale needs --time-factor > 0, got ", factor);

    const auto src = openInput(args);
    const auto sink = openOutput(args);
    const uint64_t n = transformInto(*src, *sink, [&](TraceRecord &rec) {
        rec.time *= factor;
        return true;
    });
    std::cout << "scaled " << n << " records by " << fmt(factor, 3)
              << " -> " << args.get("out", "") << '\n';
    return 0;
}

} // namespace

int
main(int argc, char **argv)
try {
    const cli::Args args(argc, argv);
    if (args.has("help")) {
        std::cout << kUsage;
        return 0;
    }
    if (args.has("version")) {
        std::cout << buildInfoBanner("pacache_tracectl") << '\n';
        return 0;
    }
    const std::set<std::string> known{
        "in", "in-format", "out", "out-format", "block-bytes",
        "sector-bytes", "disks", "no-rebase", "strict-order", "n",
        "disk", "from", "to", "time-factor", "help", "version"};
    if (const std::string bad = args.firstUnknown(known); !bad.empty())
        PACACHE_FATAL("unknown flag --", bad, " (see --help)");

    if (args.positional().empty())
        PACACHE_FATAL("missing command (see --help)");
    const std::string &cmd = args.positional().front();
    if (cmd == "convert")
        return cmdConvert(args);
    if (cmd == "info")
        return cmdInfo(args);
    if (cmd == "stats")
        return cmdStats(args);
    if (cmd == "head")
        return cmdHead(args);
    if (cmd == "filter")
        return cmdFilter(args);
    if (cmd == "scale")
        return cmdScale(args);
    PACACHE_FATAL("unknown command '", cmd, "' (see --help)");
} catch (const std::exception &e) {
    std::cerr << e.what() << '\n';
    return 1;
}
