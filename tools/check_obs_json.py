#!/usr/bin/env python3
"""Validate the observability outputs of a pacache_sim run.

Usage: check_obs_json.py METRICS.json TRACE.json TIMELINE.jsonl

Checks, mirroring the C++ unit tests but against the real files the
CLI wrote:
  - every file is well-formed (JSON / trace-event JSON / JSONL),
  - trace-event timestamps are monotonically non-decreasing,
  - timeline row sums reconcile with the metrics summary (accesses,
    hits, response count/sum exactly; energy within 1e-6 relative),
  - the energy ledger's rows sum to its totals within 1e-9 relative,
    spin-up by-cause counts sum exactly, and the ledger total
    reconciles with the run's total energy,
  - response-time percentiles are monotone (p50 <= p95 <= p99 <= max).

Exits non-zero with a diagnostic on the first violation.
"""

import json
import sys


def fail(msg):
    print(f"check_obs_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def check_trace(path):
    doc = load_json(path)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents array")
    prev = None
    for i, ev in enumerate(events):
        for field in ("name", "ph", "pid", "tid", "ts"):
            if field not in ev:
                fail(f"{path}: event {i} lacks '{field}'")
        if prev is not None and ev["ts"] < prev:
            fail(f"{path}: ts regressed at event {i}: "
                 f"{ev['ts']} < {prev}")
        prev = ev["ts"]
    return len(events)


def check_timeline(path):
    rows = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: bad JSONL row: {e}")
    if not rows:
        fail(f"{path}: no timeline rows")
    for i, row in enumerate(rows):
        if row["epoch"] != i:
            fail(f"{path}: row {i} has epoch {row['epoch']}")
        if row["t_end"] <= row["t_start"]:
            fail(f"{path}: row {i} is empty or reversed in time")
    return rows


def check_ledger_entry(label, entry):
    for key in ("active_j", "idle_per_mode_j", "spinup_j",
                "spindown_j", "total_j", "spinups",
                "spinups_by_cause", "spinup_energy_by_cause_j",
                "conservation_rel_error"):
        if key not in entry:
            fail(f"ledger entry '{label}' lacks '{key}'")
    idle = entry["idle_per_mode_j"]
    idle_sum = sum(idle.values() if isinstance(idle, dict) else idle)
    rows = (entry["active_j"] + idle_sum + entry["spinup_j"] +
            entry["spindown_j"])
    total = entry["total_j"]
    if abs(rows - total) > 1e-9 * max(1.0, abs(total)):
        fail(f"ledger entry '{label}': rows sum to {rows}, "
             f"total_j is {total}")
    if sum(entry["spinups_by_cause"].values()) != entry["spinups"]:
        fail(f"ledger entry '{label}': by-cause spin-up counts do "
             f"not sum to {entry['spinups']}")
    cause_j = sum(entry["spinup_energy_by_cause_j"].values())
    scale = max(1.0, abs(entry["spinup_j"]))
    if abs(cause_j - entry["spinup_j"]) > 1e-9 * scale:
        fail(f"ledger entry '{label}': by-cause spin-up energy "
             f"{cause_j} != spinup_j {entry['spinup_j']}")


def check_ledger(metrics_path, metrics):
    ledger = metrics["energy_ledger"]
    for key in ("mode_names", "disks", "total",
                "max_conservation_rel_error", "conserves"):
        if key not in ledger:
            fail(f"{metrics_path}: energy_ledger lacks '{key}'")
    if not ledger["conserves"]:
        fail(f"{metrics_path}: energy_ledger reports a conservation "
             f"violation ({ledger['max_conservation_rel_error']})")
    if ledger["max_conservation_rel_error"] > 1e-9:
        fail(f"{metrics_path}: ledger conservation error "
             f"{ledger['max_conservation_rel_error']} > 1e-9")
    if not ledger["disks"]:
        fail(f"{metrics_path}: energy_ledger has no disks")
    for label, entry in ledger["disks"].items():
        check_ledger_entry(label, entry)
    check_ledger_entry("total", ledger["total"])

    # The ledger is a decomposition of the same run: its grand total
    # must be the run's total energy.
    run_total = metrics["total_energy_joules"]
    ledger_total = ledger["total"]["total_j"]
    if abs(ledger_total - run_total) > 1e-9 * max(1.0, abs(run_total)):
        fail(f"{metrics_path}: ledger total {ledger_total} != run "
             f"total {run_total}")


def check_percentiles(metrics_path, resp):
    for key in ("p50_ms", "p95_ms", "p99_ms", "max_s"):
        if key not in resp:
            fail(f"{metrics_path}: responses lacks '{key}'")
    p50, p95, p99 = resp["p50_ms"], resp["p95_ms"], resp["p99_ms"]
    max_ms = resp["max_s"] * 1e3
    if not (p50 <= p95 <= p99 <= max_ms):
        fail(f"{metrics_path}: percentiles not monotone: "
             f"p50 {p50} / p95 {p95} / p99 {p99} / max {max_ms} ms")


def main():
    if len(sys.argv) != 4:
        print(__doc__, file=sys.stderr)
        return 2
    metrics_path, trace_path, timeline_path = sys.argv[1:]

    metrics = load_json(metrics_path)
    for section in ("build", "run", "energy", "responses", "cache",
                    "energy_ledger", "metrics"):
        if section not in metrics:
            fail(f"{metrics_path}: missing '{section}' section")

    check_ledger(metrics_path, metrics)
    check_percentiles(metrics_path, metrics["responses"])

    n_events = check_trace(trace_path)
    rows = check_timeline(timeline_path)

    # Reconciliation: timeline deltas telescope to the final totals.
    sums = {
        "accesses": sum(r["accesses"] for r in rows),
        "hits": sum(r["hits"] for r in rows),
        "energy": sum(r["total_energy_j"] for r in rows),
        "resp_n": sum(r["response_count"] for r in rows),
        "resp_s": sum(r["response_sum_s"] for r in rows),
    }
    cache = metrics["cache"]
    if sums["accesses"] != cache["accesses"]:
        fail(f"timeline accesses {sums['accesses']} != "
             f"metrics {cache['accesses']}")
    if sums["hits"] != cache["hits"]:
        fail(f"timeline hits {sums['hits']} != metrics {cache['hits']}")
    resp = metrics["responses"]
    if sums["resp_n"] != resp["count"]:
        fail(f"timeline responses {sums['resp_n']} != "
             f"metrics {resp['count']}")
    if abs(sums["resp_s"] - resp["sum_s"]) > 1e-6:
        fail(f"timeline response sum {sums['resp_s']} != "
             f"metrics {resp['sum_s']}")
    total = metrics["energy"]["total_joules"]
    if abs(sums["energy"] - total) > 1e-6 * max(1.0, abs(total)):
        fail(f"timeline energy {sums['energy']} != metrics {total}")

    print(f"check_obs_json: OK ({n_events} trace events, "
          f"{len(rows)} timeline rows, energy {total:.1f} J)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
