#!/usr/bin/env python3
"""Validate the observability outputs of a pacache_sim run.

Usage: check_obs_json.py METRICS.json TRACE.json TIMELINE.jsonl

Checks, mirroring the C++ unit tests but against the real files the
CLI wrote:
  - every file is well-formed (JSON / trace-event JSON / JSONL),
  - trace-event timestamps are monotonically non-decreasing,
  - timeline row sums reconcile with the metrics summary (accesses,
    hits, response count/sum exactly; energy within 1e-6 relative).

Exits non-zero with a diagnostic on the first violation.
"""

import json
import sys


def fail(msg):
    print(f"check_obs_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def check_trace(path):
    doc = load_json(path)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents array")
    prev = None
    for i, ev in enumerate(events):
        for field in ("name", "ph", "pid", "tid", "ts"):
            if field not in ev:
                fail(f"{path}: event {i} lacks '{field}'")
        if prev is not None and ev["ts"] < prev:
            fail(f"{path}: ts regressed at event {i}: "
                 f"{ev['ts']} < {prev}")
        prev = ev["ts"]
    return len(events)


def check_timeline(path):
    rows = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: bad JSONL row: {e}")
    if not rows:
        fail(f"{path}: no timeline rows")
    for i, row in enumerate(rows):
        if row["epoch"] != i:
            fail(f"{path}: row {i} has epoch {row['epoch']}")
        if row["t_end"] <= row["t_start"]:
            fail(f"{path}: row {i} is empty or reversed in time")
    return rows


def main():
    if len(sys.argv) != 4:
        print(__doc__, file=sys.stderr)
        return 2
    metrics_path, trace_path, timeline_path = sys.argv[1:]

    metrics = load_json(metrics_path)
    for section in ("build", "run", "energy", "responses", "cache",
                    "metrics"):
        if section not in metrics:
            fail(f"{metrics_path}: missing '{section}' section")

    n_events = check_trace(trace_path)
    rows = check_timeline(timeline_path)

    # Reconciliation: timeline deltas telescope to the final totals.
    sums = {
        "accesses": sum(r["accesses"] for r in rows),
        "hits": sum(r["hits"] for r in rows),
        "energy": sum(r["total_energy_j"] for r in rows),
        "resp_n": sum(r["response_count"] for r in rows),
        "resp_s": sum(r["response_sum_s"] for r in rows),
    }
    cache = metrics["cache"]
    if sums["accesses"] != cache["accesses"]:
        fail(f"timeline accesses {sums['accesses']} != "
             f"metrics {cache['accesses']}")
    if sums["hits"] != cache["hits"]:
        fail(f"timeline hits {sums['hits']} != metrics {cache['hits']}")
    resp = metrics["responses"]
    if sums["resp_n"] != resp["count"]:
        fail(f"timeline responses {sums['resp_n']} != "
             f"metrics {resp['count']}")
    if abs(sums["resp_s"] - resp["sum_s"]) > 1e-6:
        fail(f"timeline response sum {sums['resp_s']} != "
             f"metrics {resp['sum_s']}")
    total = metrics["energy"]["total_joules"]
    if abs(sums["energy"] - total) > 1e-6 * max(1.0, abs(total)):
        fail(f"timeline energy {sums['energy']} != metrics {total}")

    print(f"check_obs_json: OK ({n_events} trace events, "
          f"{len(rows)} timeline rows, energy {total:.1f} J)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
