/**
 * @file
 * pacache_serve — the sharded concurrent serving front-end: drive
 * the cache + write-policy + DPM kernel from an in-process request
 * ring, either with the synthetic open-loop load generator (default)
 * or by replaying a trace/workload, and report throughput, request
 * latency percentiles, hit ratio, and ledger-reconciled energy per
 * stripe.
 *
 * Examples:
 *   pacache_serve --threads 4 --shards 4 --requests 2000000
 *   pacache_serve --workload oltp --policy pa-lru --verify-replay
 *   pacache_serve --trace mytrace.pct --shards 2 --threads 2
 */

#include <chrono>
#include <cmath>
#include <iostream>
#include <set>

#include "cli.hh"
#include "core/report.hh"
#include "runner/sweep.hh"
#include "serve/load_gen.hh"
#include "serve/server.hh"
#include "trace/trace.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace pacache;

namespace
{

const char kUsage[] = R"(pacache_serve — sharded concurrent cache server harness

serving topology:
  --shards N         cache/disk stripes (default: 1). The stripe
                     count is semantic: it decides the cache
                     partition. 1 reproduces pacache_sim bit for bit.
  --threads N        worker threads (default: 1); any value yields
                     identical results at a fixed --shards
  --ring N           per-stripe request ring capacity, power of two
                     (default: 4096)
  --batch N          max requests drained per stripe-lock hold
                     (default: 64)

kernel (as in pacache_sim):
  --policy NAME      lru | fifo | clock | arc | mq | lirs |
                     pa-lru | pa-arc | pa-lirs  (default: lru;
                     off-line policies cannot serve)
  --dpm NAME         always-on | adaptive | practical | oracle
                     (default: practical)
  --write NAME       wt | wb | wbeu | wtdu   (default: wb)
  --cache-blocks N   cache capacity in blocks (default: 1024)
  --epoch SECONDS    PA classifier epoch (default: 900)
  --opg-theta J      OPG penalty floor (default: auto)

workload — replay mode (when --trace or --workload is given):
  --trace FILE       replay a trace file (format sniffed)
  --workload NAME    oltp | cello | synthetic | opg-showcase, with
                     the pacache_sim generator knobs (--duration,
                     --requests, --write-ratio, --interarrival,
                     --pareto, --disks, --seed)
  --verify-replay    also run the single-threaded replay and require
                     identical hit/miss/eviction counts and total
                     energy within 1e-9 (exit 1 on mismatch)

workload — open-loop load generator (default mode):
  --requests N       total requests (default: 1000000)
  --rate R           simulated arrivals per second (default: 100000)
  --write-ratio R    write fraction (default: 0.3)
  --zipf-theta T     per-disk block-popularity skew (default: 0.9;
                     0 = uniform)
  --disks N          disk count (default: 16)
  --blocks-per-disk N  key space per disk (default: 1048576)
  --producers N      load-generator threads (default: 1)
  --latency-sample N stamp every Nth request with a host clock for
                     the latency histogram (default: 64; 0 = off)
  --seed N           workload seed (default: 1)

output:
  --per-shard        include the per-stripe table
  --help             this text
  --version          build information

Exit status: 0 on success, 1 when --verify-replay finds a mismatch
or the energy ledger fails its conservation check.
)";

double
relDiff(double a, double b)
{
    const double scale = std::max(std::abs(a), std::abs(b));
    return scale == 0 ? 0.0 : std::abs(a - b) / scale;
}

/**
 * The acceptance-criteria comparison behind --verify-replay:
 * identical hit/miss/eviction counts, total energy within 1e-9
 * relative. Prints one line per mismatch.
 */
bool
matchesReplay(const ExperimentResult &serve,
              const ExperimentResult &replay)
{
    bool ok = true;
    const auto counter = [&](const char *name, uint64_t s,
                             uint64_t r) {
        if (s != r) {
            std::cout << "MISMATCH " << name << ": serve " << s
                      << " vs replay " << r << '\n';
            ok = false;
        }
    };
    counter("accesses", serve.cache.accesses, replay.cache.accesses);
    counter("hits", serve.cache.hits, replay.cache.hits);
    counter("misses", serve.cache.misses, replay.cache.misses);
    counter("evictions", serve.cache.evictions,
            replay.cache.evictions);
    counter("cold_misses", serve.cache.coldMisses,
            replay.cache.coldMisses);
    counter("log_writes", serve.logWrites, replay.logWrites);
    const double err = relDiff(serve.totalEnergy, replay.totalEnergy);
    if (err > 1e-9) {
        std::cout << "MISMATCH total_energy: serve "
                  << serve.totalEnergy << " J vs replay "
                  << replay.totalEnergy << " J (rel " << err << ")\n";
        ok = false;
    }
    return ok;
}

void
printLatency(const LogHistogram &lat)
{
    if (lat.empty()) {
        std::cout << "latency: (no samples)\n";
        return;
    }
    std::cout << "latency (" << lat.count() << " samples): p50 "
              << fmt(lat.quantile(0.5) * 1e6, 1) << " us, p99 "
              << fmt(lat.quantile(0.99) * 1e6, 1) << " us, p999 "
              << fmt(lat.quantile(0.999) * 1e6, 1) << " us, max "
              << fmt(lat.max() * 1e6, 1) << " us\n";
}

void
printShards(const serve::ServeResult &res)
{
    TextTable table;
    table.header({"shard", "requests", "hits", "hit ratio",
                  "energy (J)", "ledger rel err"});
    for (std::size_t i = 0; i < res.shards.size(); ++i) {
        const serve::ShardSummary &s = res.shards[i];
        const double ratio =
            s.requests ? static_cast<double>(s.hits) /
                             static_cast<double>(s.requests)
                       : 0.0;
        table.row({std::to_string(i), std::to_string(s.requests),
                   std::to_string(s.hits), fmtPct(ratio, 1),
                   fmt(s.energy, 1),
                   fmt(s.ledgerRelError, 12)});
    }
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
try {
    const cli::Args args(argc, argv);
    std::set<std::string> known{
        "shards", "threads", "ring", "batch", "policy", "dpm",
        "write", "cache-blocks", "epoch", "opg-theta",
        "verify-replay", "rate", "zipf-theta", "blocks-per-disk",
        "producers", "latency-sample", "per-shard"};
    known.insert(cli::workloadFlags().begin(),
                 cli::workloadFlags().end());
    if (cli::handleStandardFlags(args, "pacache_serve", kUsage, known))
        return 0;

    serve::ServeConfig cfg;
    cfg.exp.policy = runner::parsePolicyKind(args.get("policy", "lru"));
    cfg.exp.dpm = runner::parseDpmChoice(args.get("dpm", "practical"));
    cfg.exp.storage.writePolicy =
        runner::parseWritePolicy(args.get("write", "wb"));
    cfg.exp.cacheBlocks = args.getUint("cache-blocks", 1024);
    cfg.exp.pa.epochLength = args.getDouble("epoch", 900.0);
    cfg.exp.opgTheta = args.getDouble("opg-theta", -1.0);
    cfg.shards = args.getUint("shards", 1);
    cfg.threads = args.getUint("threads", 1);
    cfg.ringCapacity = args.getUint("ring", 4096);
    cfg.batch = args.getUint("batch", 64);

    const bool replay_mode =
        args.has("trace") || args.has("workload");

    std::cout << "system:   policy "
              << policyKindName(cfg.exp.policy) << ", dpm "
              << args.get("dpm", "practical") << ", write "
              << args.get("write", "wb") << ", cache "
              << cfg.exp.cacheBlocks << " blocks\n"
              << "topology: " << cfg.shards << " shard"
              << (cfg.shards == 1 ? "" : "s") << ", " << cfg.threads
              << " thread" << (cfg.threads == 1 ? "" : "s")
              << ", ring " << cfg.ringCapacity << ", batch "
              << cfg.batch << "\n\n";

    serve::ServeResult res;
    uint64_t requests = 0;
    double wall = 0;

    if (replay_mode) {
        const Trace trace = cli::loadWorkload(args, "oltp");
        requests = trace.numBlockAccesses();
        const auto t0 = std::chrono::steady_clock::now();
        res = serve::ServeServer::replayTrace(trace, cfg);
        wall = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
        if (args.has("verify-replay")) {
            ExperimentConfig exp = cfg.exp;
            const ExperimentResult ref = runExperiment(trace, exp);
            if (!matchesReplay(res.result, ref)) {
                std::cout << "serve does NOT match replay\n";
                return 1;
            }
            std::cout << "serve matches replay (" << cfg.shards
                      << " shards, " << cfg.threads << " threads)\n";
        }
    } else {
        serve::LoadGenConfig gen;
        gen.producers = args.getUint("producers", 1);
        gen.requests = args.getUint("requests", 1000000);
        gen.arrivalRate = args.getDouble("rate", 100000.0);
        gen.writeRatio = args.getDouble("write-ratio", 0.3);
        gen.zipfTheta = args.getDouble("zipf-theta", 0.9);
        gen.blocksPerDisk =
            args.getUint("blocks-per-disk", 1u << 20);
        gen.seed = args.getUint("seed", 1);
        gen.latencySampleEvery = args.getUint("latency-sample", 64);
        cfg.numDisks = args.getUint("disks", 16);
        requests = gen.requests;

        serve::ServeServer server(cfg);
        const auto t0 = std::chrono::steady_clock::now();
        server.start();
        runLoadGen(server, gen);
        const Time end_time = gen.requests == 0
            ? 0.0
            : static_cast<double>(gen.requests - 1) /
                gen.arrivalRate;
        res = server.finish(end_time);
        wall = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    }

    printSummaryReport(std::cout, res.result);
    std::cout << '\n';

    const double rps = wall > 0 ? static_cast<double>(requests) / wall
                                : 0.0;
    std::cout << "throughput: " << fmt(rps / 1e6, 3) << " M req/s ("
              << requests << " requests in " << fmt(wall, 3)
              << " s)\n";
    printLatency(res.latency);
    std::cout << "energy ledger conservation: "
              << (res.ledgerConserves ? "ok" : "FAIL")
              << " (max rel error " << res.ledgerMaxRelError << ")\n";

    if (args.has("per-shard")) {
        std::cout << "\nper-shard:\n\n";
        printShards(res);
    }
    return res.ledgerConserves ? 0 : 1;
} catch (const std::exception &e) {
    std::cerr << e.what() << '\n';
    return 1;
}
