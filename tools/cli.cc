#include "cli.hh"

#include <cstdlib>
#include <iostream>

#include "trace/synthetic.hh"
#include "trace/trace.hh"
#include "trace/workloads.hh"
#include "tracefmt/detect.hh"
#include "tracefmt/trace_source.hh"
#include "util/build_info.hh"
#include "util/logging.hh"

namespace pacache::cli
{

Args::Args(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            pos.push_back(std::move(arg));
            continue;
        }
        arg.erase(0, 2);
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            values[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (i + 1 < argc &&
                   std::string(argv[i + 1]).rfind("--", 0) != 0) {
            values[arg] = argv[++i];
        } else {
            values[arg] = "1"; // boolean flag
        }
    }
}

bool
Args::has(const std::string &key) const
{
    return values.count(key) > 0;
}

std::string
Args::get(const std::string &key, const std::string &fallback) const
{
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
}

double
Args::getDouble(const std::string &key, double fallback) const
{
    auto it = values.find(key);
    if (it == values.end())
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        PACACHE_FATAL("flag --", key, " expects a number, got '",
                      it->second, "'");
    return v;
}

uint64_t
Args::getUint(const std::string &key, uint64_t fallback) const
{
    auto it = values.find(key);
    if (it == values.end())
        return fallback;
    char *end = nullptr;
    const auto v = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
        PACACHE_FATAL("flag --", key, " expects an integer, got '",
                      it->second, "'");
    return v;
}

std::string
Args::firstUnknown(const std::set<std::string> &known) const
{
    for (const auto &[key, value] : values) {
        if (!known.count(key))
            return key;
    }
    return {};
}

bool
handleStandardFlags(const Args &args, const std::string &tool,
                    const char *usage,
                    const std::set<std::string> &known)
{
    if (args.has("help")) {
        std::cout << usage;
        return true;
    }
    if (args.has("version")) {
        std::cout << buildInfoBanner(tool.c_str()) << '\n';
        return true;
    }
    std::set<std::string> all = known;
    all.insert("help");
    all.insert("version");
    if (const std::string bad = args.firstUnknown(all); !bad.empty())
        PACACHE_FATAL("unknown flag --", bad, " (see --help)");
    return false;
}

bool
hasSuffix(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

std::ofstream
openOutput(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        PACACHE_FATAL("cannot open '", path, "' for writing");
    return out;
}

const std::set<std::string> &
workloadFlags()
{
    static const std::set<std::string> flags{
        "trace",        "trace-format", "workload", "duration",
        "requests",     "write-ratio",  "interarrival", "pareto",
        "disks",        "seed"};
    return flags;
}

Trace
loadWorkload(const Args &args, const std::string &default_workload)
{
    if (args.has("trace")) {
        const auto src = tracefmt::openTraceSource(
            args.get("trace", ""),
            tracefmt::parseTraceFormat(
                args.get("trace-format", "auto")));
        return tracefmt::readAll(*src);
    }

    const std::string name = args.get("workload", default_workload);
    if (name == "oltp") {
        OltpParams p;
        p.duration = args.getDouble("duration", p.duration);
        p.seed = args.getUint("seed", p.seed);
        return makeOltpTrace(p);
    }
    if (name == "cello") {
        CelloParams p;
        p.duration = args.getDouble("duration", 300.0);
        p.seed = args.getUint("seed", p.seed);
        return makeCelloTrace(p);
    }
    if (name == "opg-showcase") {
        OpgShowcaseParams p;
        p.duration = args.getDouble("duration", p.duration);
        return makeOpgShowcaseTrace(p);
    }
    if (name == "synthetic") {
        SyntheticParams p;
        p.numRequests = args.getUint("requests", 20000);
        p.numDisks =
            static_cast<uint32_t>(args.getUint("disks", p.numDisks));
        p.writeRatio = args.getDouble("write-ratio", p.writeRatio);
        const double mean =
            args.getDouble("interarrival", p.arrival.meanMs);
        p.arrival = args.has("pareto")
            ? ArrivalModel::pareto(mean)
            : ArrivalModel::exponential(mean);
        p.seed = args.getUint("seed", p.seed);
        return generateSynthetic(p);
    }
    PACACHE_FATAL("unknown workload '", name, "'");
}

} // namespace pacache::cli
