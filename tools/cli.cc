#include "cli.hh"

#include <cstdlib>

#include "util/logging.hh"

namespace pacache::cli
{

Args::Args(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            pos.push_back(std::move(arg));
            continue;
        }
        arg.erase(0, 2);
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            values[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (i + 1 < argc &&
                   std::string(argv[i + 1]).rfind("--", 0) != 0) {
            values[arg] = argv[++i];
        } else {
            values[arg] = "1"; // boolean flag
        }
    }
}

bool
Args::has(const std::string &key) const
{
    return values.count(key) > 0;
}

std::string
Args::get(const std::string &key, const std::string &fallback) const
{
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
}

double
Args::getDouble(const std::string &key, double fallback) const
{
    auto it = values.find(key);
    if (it == values.end())
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        PACACHE_FATAL("flag --", key, " expects a number, got '",
                      it->second, "'");
    return v;
}

uint64_t
Args::getUint(const std::string &key, uint64_t fallback) const
{
    auto it = values.find(key);
    if (it == values.end())
        return fallback;
    char *end = nullptr;
    const auto v = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
        PACACHE_FATAL("flag --", key, " expects an integer, got '",
                      it->second, "'");
    return v;
}

std::string
Args::firstUnknown(const std::set<std::string> &known) const
{
    for (const auto &[key, value] : values) {
        if (!known.count(key))
            return key;
    }
    return {};
}

} // namespace pacache::cli
