/**
 * @file
 * Minimal command-line flag parsing shared by the pacache tools:
 * "--key value" and "--key=value" pairs plus "--flag" booleans, with
 * typed accessors and an unknown-flag check.
 */

#ifndef PACACHE_TOOLS_CLI_HH
#define PACACHE_TOOLS_CLI_HH

#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace pacache
{
class Trace;
}

namespace pacache::cli
{

/** Parsed command line. */
class Args
{
  public:
    /** Parse argv; values follow their flag or use '='. */
    Args(int argc, char **argv);

    bool has(const std::string &key) const;

    std::string get(const std::string &key,
                    const std::string &fallback) const;
    double getDouble(const std::string &key, double fallback) const;
    uint64_t getUint(const std::string &key, uint64_t fallback) const;

    /** Positional (non-flag) arguments. */
    const std::vector<std::string> &positional() const { return pos; }

    /**
     * Verify every provided flag is in @p known; returns the first
     * unknown flag or an empty string.
     */
    std::string firstUnknown(const std::set<std::string> &known) const;

  private:
    std::map<std::string, std::string> values;
    std::vector<std::string> pos;
};

/**
 * The option prelude every pacache tool shares: print @p usage on
 * --help, the build banner on --version (returning true so the
 * caller exits 0), and reject the first flag not in @p known
 * ("help" and "version" are implied members).
 */
bool handleStandardFlags(const Args &args, const std::string &tool,
                         const char *usage,
                         const std::set<std::string> &known);

/** True when @p s ends with @p suffix (output-format sniffing). */
bool hasSuffix(const std::string &s, const std::string &suffix);

/** Open @p path for writing; fatal (fail fast) when it cannot be. */
std::ofstream openOutput(const std::string &path);

/**
 * The workload-selection flags loadWorkload() consumes; union these
 * into a tool's known-flag set.
 */
const std::set<std::string> &workloadFlags();

/**
 * Build a trace from the standard workload flags: --trace FILE
 * (format sniffed unless --trace-format says otherwise) or
 * --workload NAME (oltp | cello | synthetic | opg-showcase) with the
 * generator knobs --duration, --requests, --write-ratio,
 * --interarrival, --pareto, --disks, and --seed.
 */
Trace loadWorkload(const Args &args,
                   const std::string &default_workload);

} // namespace pacache::cli

#endif // PACACHE_TOOLS_CLI_HH
