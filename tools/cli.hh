/**
 * @file
 * Minimal command-line flag parsing shared by the pacache tools:
 * "--key value" and "--key=value" pairs plus "--flag" booleans, with
 * typed accessors and an unknown-flag check.
 */

#ifndef PACACHE_TOOLS_CLI_HH
#define PACACHE_TOOLS_CLI_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace pacache::cli
{

/** Parsed command line. */
class Args
{
  public:
    /** Parse argv; values follow their flag or use '='. */
    Args(int argc, char **argv);

    bool has(const std::string &key) const;

    std::string get(const std::string &key,
                    const std::string &fallback) const;
    double getDouble(const std::string &key, double fallback) const;
    uint64_t getUint(const std::string &key, uint64_t fallback) const;

    /** Positional (non-flag) arguments. */
    const std::vector<std::string> &positional() const { return pos; }

    /**
     * Verify every provided flag is in @p known; returns the first
     * unknown flag or an empty string.
     */
    std::string firstUnknown(const std::set<std::string> &known) const;

  private:
    std::map<std::string, std::string> values;
    std::vector<std::string> pos;
};

} // namespace pacache::cli

#endif // PACACHE_TOOLS_CLI_HH
