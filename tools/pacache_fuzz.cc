/**
 * @file
 * pacache_fuzz — the generative differential-testing campaign driver.
 *
 * Generates fuzz cases (synthetic traces + fuzzed configurations and
 * power models) from a master seed, runs the qa property registry on
 * each, shrinks any failure with delta debugging, and writes
 * self-contained corpus reproducers.
 *
 * Examples:
 *   pacache_fuzz --seconds 30 --seed 7 --jobs 4
 *   pacache_fuzz --cases 200 --property opg_matches_ref
 *   pacache_fuzz --replay tests/qa/corpus/some_failure.corpus
 *
 * Exit status: 0 when every check passed, 1 on any property failure
 * (or usage error), so CI can gate on it directly.
 */

#include <iostream>
#include <set>
#include <sstream>

#include "cli.hh"
#include "qa/campaign.hh"
#include "qa/properties.hh"
#include "util/build_info.hh"
#include "util/logging.hh"

using namespace pacache;

namespace
{

const char kUsage[] = R"(pacache_fuzz — property-based differential fuzzer

  --seconds S        run new cases until S seconds elapse
  --cases N          run exactly N cases (overrides --seconds)
  --seed N           master seed (default 1); case i is derived
                     deterministically from (seed, i)
  --property NAME    run only this property (repeatable via commas)
  --jobs N           worker threads (default 1; 0 = hardware)
  --corpus-out DIR   write shrunk reproducers into DIR
  --no-shrink        keep failing cases unshrunk
  --replay FILE     re-run a corpus reproducer instead of a campaign
  --list             list registered properties
  --max-requests N   cap generated trace length (default 1200)
  --crash            crash-recovery preset: run the WTDU/serve crash
                     properties on small cases (50-400 requests, <=3
                     disks) so each case replays many fault scenarios
                     per second; combine with --property to narrow
  --help             this text
  --version          build information

A campaign prints one line per property with check/failure counts and
exits non-zero if anything failed. Failures name the case index: the
exact case is reproducible with the same --seed (and --cases at least
index+1), or from the emitted corpus file.
)";

int
replayCorpus(const std::string &path)
{
    const qa::CorpusEntry entry = qa::readCorpusFile(path);
    const qa::PropertyDef *prop = qa::findProperty(entry.meta.property);
    if (!prop)
        PACACHE_FATAL("corpus file '", path,
                      "' names unknown property '", entry.meta.property,
                      "'");
    const qa::PropertyResult result =
        qa::runProperty(*prop, entry.fuzzCase);
    if (result.passed) {
        std::cout << path << ": " << prop->name << " PASSED ("
                  << entry.fuzzCase.trace.size() << " records)\n";
        return 0;
    }
    std::cout << path << ": " << prop->name << " FAILED: "
              << result.message << '\n';
    return 1;
}

std::vector<const qa::PropertyDef *>
selectProperties(const std::string &spec)
{
    std::vector<const qa::PropertyDef *> props;
    std::istringstream is(spec);
    std::string name;
    while (std::getline(is, name, ',')) {
        if (name.empty())
            continue;
        const qa::PropertyDef *prop = qa::findProperty(name);
        if (!prop)
            PACACHE_FATAL("unknown property '", name,
                          "' (see --list)");
        props.push_back(prop);
    }
    return props;
}

} // namespace

int
main(int argc, char **argv)
try {
    const cli::Args args(argc, argv);
    const std::set<std::string> known{
        "seconds", "cases", "seed", "property", "jobs", "corpus-out",
        "no-shrink", "replay", "list", "max-requests", "crash"};
    if (cli::handleStandardFlags(args, "pacache_fuzz", kUsage, known))
        return 0;

    if (args.has("list")) {
        for (const qa::PropertyDef &prop : qa::allProperties())
            std::cout << prop.name << "\n    " << prop.description
                      << '\n';
        return 0;
    }
    if (args.has("replay"))
        return replayCorpus(args.get("replay", ""));

    qa::CampaignOptions opts;
    opts.seed = args.getUint("seed", 1);
    opts.seconds = args.getDouble("seconds", 0);
    opts.cases = args.getUint("cases", 0);
    opts.jobs = static_cast<unsigned>(args.getUint("jobs", 1));
    opts.corpusDir = args.get("corpus-out", "");
    opts.shrink = !args.has("no-shrink");
    if (args.has("crash")) {
        // Small cases: a crash scenario's interesting structure is the
        // fault site and timing, not trace length, and shorter traces
        // let one budget cover far more fault scenarios.
        opts.profile.minRequests = 50;
        opts.profile.maxRequests = 400;
        opts.profile.maxCacheBlocks = 64;
        opts.profile.maxDisks = 3;
        opts.properties = selectProperties(
            "wtdu_crash_durability,wtdu_crash_ledger,"
            "wtdu_recovery_idempotent_under_crash,"
            "serve_crash_shutdown_recovery");
    }
    opts.profile.maxRequests =
        args.getUint("max-requests", opts.profile.maxRequests);
    if (args.has("property"))
        opts.properties = selectProperties(args.get("property", ""));
    if (opts.cases == 0 && opts.seconds <= 0)
        PACACHE_FATAL("need --seconds or --cases (see --help)");

    const qa::CampaignReport report = qa::runCampaign(opts);

    std::cout << "campaign: seed " << opts.seed << ", "
              << report.casesRun << " cases, " << report.checksRun
              << " checks in " << report.wallSeconds << "s\n";
    for (const qa::PropertyTally &tally : report.tallies)
        std::cout << "  " << tally.name << ": " << tally.checks
                  << " checks, " << tally.failures << " failures\n";

    for (const qa::CampaignFailure &failure : report.failures) {
        std::cout << "FAILURE: " << failure.property << " on case "
                  << failure.caseIndex << " (seed "
                  << failure.caseSeed << "): " << failure.message
                  << "\n  shrunk " << failure.shrunkFrom << " -> "
                  << failure.shrunk.trace.size() << " records";
        if (!failure.corpusPath.empty())
            std::cout << ", reproducer: " << failure.corpusPath;
        std::cout << '\n';
    }
    if (!report.ok()) {
        std::cout << report.failures.size() << " failure(s)\n";
        return 1;
    }
    std::cout << "all checks passed\n";
    return 0;
} catch (const std::exception &e) {
    std::cerr << e.what() << '\n';
    return 1;
}
