#include "cache/arc.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pacache
{

ArcPolicy::ArcPolicy(std::size_t capacity_blocks) : c(capacity_blocks)
{
    PACACHE_ASSERT(c > 0, "ARC needs positive capacity");
}

void
ArcPolicy::beforeMiss(const BlockId &block, Time, std::size_t)
{
    if (b1.contains(block)) {
        const double delta =
            b1.size() >= b2.size()
                ? 1.0
                : static_cast<double>(b2.size()) /
                      static_cast<double>(b1.size());
        p = std::min(p + delta, static_cast<double>(c));
        b1.remove(block);
        pendingGhost = GhostHit::B1;
    } else if (b2.contains(block)) {
        const double delta =
            b2.size() >= b1.size()
                ? 1.0
                : static_cast<double>(b1.size()) /
                      static_cast<double>(b2.size());
        p = std::max(p - delta, 0.0);
        b2.remove(block);
        pendingGhost = GhostHit::B2;
    } else {
        pendingGhost = GhostHit::None;
    }
}

void
ArcPolicy::onAccess(const BlockId &block, Time, std::size_t, bool hit)
{
    if (hit) {
        // T1 or T2 hit promotes to T2 MRU.
        t1.remove(block);
        t2.touch(block);
        return;
    }
    // Miss path: ghost hits go to T2, brand-new blocks to T1.
    if (pendingGhost == GhostHit::None)
        t1.touch(block);
    else
        t2.touch(block);
    pendingGhost = GhostHit::None;
    trimGhosts();
}

void
ArcPolicy::onRemove(const BlockId &block)
{
    // External removal leaves no ghost (the block is gone for reasons
    // unrelated to replacement).
    if (!t1.remove(block)) {
        const bool present = t2.remove(block);
        PACACHE_ASSERT(present, "ARC removal of unknown block");
    }
}

BlockId
ArcPolicy::evict(Time, std::size_t)
{
    // REPLACE(x, p): prefer T1 while it exceeds the target; a B2
    // ghost hit with |T1| exactly at the target also evicts from T1.
    BlockId victim;
    const bool t1_over =
        !t1.empty() &&
        (static_cast<double>(t1.size()) > p ||
         (pendingGhost == GhostHit::B2 &&
          static_cast<double>(t1.size()) == p));
    if (t1_over || t2.empty()) {
        victim = t1.popLru();
        b1.touch(victim);
    } else {
        victim = t2.popLru();
        b2.touch(victim);
    }
    trimGhosts();
    return victim;
}

void
ArcPolicy::trimGhosts()
{
    // |T1| + |B1| <= c, and the four lists together hold at most 2c.
    while (t1.size() + b1.size() > c && !b1.empty())
        b1.popLru();
    while (t1.size() + t2.size() + b1.size() + b2.size() > 2 * c &&
           !b2.empty()) {
        b2.popLru();
    }
}

} // namespace pacache
