/**
 * @file
 * CLOCK (second-chance) replacement: a circular list with reference
 * bits — the classic low-overhead LRU approximation.
 */

#ifndef PACACHE_CACHE_CLOCK_HH
#define PACACHE_CACHE_CLOCK_HH

#include "cache/policy.hh"
#include "util/flat_map.hh"
#include "util/intrusive_list.hh"

namespace pacache
{

/** CLOCK replacement policy. */
class ClockPolicy : public ReplacementPolicy
{
  public:
    const char *name() const override { return "CLOCK"; }

    void onAccess(const BlockId &block, Time now, std::size_t idx,
                  bool hit) override;
    void onRemove(const BlockId &block) override;
    BlockId evict(Time now, std::size_t idx) override;

  private:
    struct Entry
    {
        BlockId block;
        bool referenced = false;
    };

    using Ring = ArenaList<Entry>;

    /** Hand successor with wrap-around (null only when empty). */
    Ring::Node *after(Ring::Node *n)
    {
        return n->next ? n->next : ring.front();
    }

    Ring ring;                  //!< linear storage, wrapped manually
    Ring::Node *hand = nullptr; //!< null iff the ring is empty
    FlatMap<BlockId, Ring::Node *> index;
};

} // namespace pacache

#endif // PACACHE_CACHE_CLOCK_HH
