/**
 * @file
 * CLOCK (second-chance) replacement: a circular list with reference
 * bits — the classic low-overhead LRU approximation.
 */

#ifndef PACACHE_CACHE_CLOCK_HH
#define PACACHE_CACHE_CLOCK_HH

#include <list>
#include <unordered_map>

#include "cache/policy.hh"

namespace pacache
{

/** CLOCK replacement policy. */
class ClockPolicy : public ReplacementPolicy
{
  public:
    const char *name() const override { return "CLOCK"; }

    void onAccess(const BlockId &block, Time now, std::size_t idx,
                  bool hit) override;
    void onRemove(const BlockId &block) override;
    BlockId evict(Time now, std::size_t idx) override;

  private:
    struct Entry
    {
        BlockId block;
        bool referenced = false;
    };

    using Ring = std::list<Entry>;

    void advanceHand();

    Ring ring;
    Ring::iterator hand = ring.end();
    std::unordered_map<BlockId, Ring::iterator> index;
};

} // namespace pacache

#endif // PACACHE_CACHE_CLOCK_HH
