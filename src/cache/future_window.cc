#include "cache/future_window.hh"

#include <fcntl.h>
#include <stdlib.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "tracefmt/pct.hh"
#include "util/logging.hh"

namespace pacache
{

namespace
{

/** Records decoded between page-release batches in the scans. */
constexpr uint64_t kScanDropRecords = 1 << 20;

/** An unlinked temp file: space reclaimed on close, never listed. */
int
makeUnlinkedTemp()
{
    const char *env = ::getenv("TMPDIR");
    std::string templ = (env && *env ? std::string(env)
                                     : std::string("/tmp")) +
                        "/pacache-sidecar-XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    const int fd = ::mkstemp(buf.data());
    if (fd < 0) {
        PACACHE_FATAL("cannot create sidecar temp file '",
                      buf.data(), "': ", std::strerror(errno));
    }
    ::unlink(buf.data());
    return fd;
}

void
pwriteFully(int fd, const void *data, std::size_t n, uint64_t offset)
{
    const char *p = static_cast<const char *>(data);
    while (n > 0) {
        const ssize_t w =
            ::pwrite(fd, p, n, static_cast<off_t>(offset));
        if (w < 0) {
            if (errno == EINTR)
                continue;
            PACACHE_FATAL("sidecar write failed: ",
                          std::strerror(errno));
        }
        p += w;
        n -= static_cast<std::size_t>(w);
        offset += static_cast<uint64_t>(w);
    }
}

void
preadFully(int fd, void *data, std::size_t n, uint64_t offset)
{
    char *p = static_cast<char *>(data);
    while (n > 0) {
        const ssize_t r =
            ::pread(fd, p, n, static_cast<off_t>(offset));
        if (r <= 0) {
            if (r < 0 && errno == EINTR)
                continue;
            PACACHE_FATAL("sidecar read failed: ",
                          r < 0 ? std::strerror(errno)
                              : "unexpected end of file");
        }
        p += r;
        n -= static_cast<std::size_t>(r);
        offset += static_cast<uint64_t>(r);
    }
}

} // namespace

WindowedFuture::WindowedFuture(const std::string &pct_path)
    : WindowedFuture(pct_path, Options{})
{
}

WindowedFuture::WindowedFuture(const std::string &pct_path,
                               Options opts_)
    : opts(opts_)
{
    opts.windowEntries = std::max<std::size_t>(opts.windowEntries, 1);
    opts.chunkAccesses = std::max<std::size_t>(opts.chunkAccesses, 1);
    build(pct_path);
}

WindowedFuture::~WindowedFuture()
{
    closeFd();
}

WindowedFuture::WindowedFuture(WindowedFuture &&other) noexcept
{
    *this = std::move(other);
}

WindowedFuture &
WindowedFuture::operator=(WindowedFuture &&other) noexcept
{
    if (this == &other)
        return *this;
    closeFd();
    opts = other.opts;
    sidecarFd = std::exchange(other.sidecarFd, -1);
    timesFd = std::exchange(other.timesFd, -1);
    total = other.total;
    diskCount = other.diskCount;
    lastTime = other.lastTime;
    ready = std::exchange(other.ready, false);
    pinHorizon = other.pinHorizon;
    cold = std::move(other.cold);
    pinned = std::move(other.pinned);
    window = std::move(other.window);
    winBase = other.winBase;
    winCount = other.winCount;
    cursor = other.cursor;
    timePages = std::move(other.timePages);
    timeReads = other.timeReads;
    return *this;
}

void
WindowedFuture::closeFd()
{
    if (sidecarFd >= 0) {
        ::close(sidecarFd);
        sidecarFd = -1;
    }
    if (timesFd >= 0) {
        ::close(timesFd);
        timesFd = -1;
    }
}

void
WindowedFuture::build(const std::string &pct_path)
{
    tracefmt::PctReadOptions ropts;
    ropts.verifyChecksum = opts.verifyChecksum;
    tracefmt::PctMapping map(pct_path, ropts);
    const tracefmt::PctInfo &info = map.header();
    lastTime = info.endTime;

    // Forward boundary scan: expanded access count, disk count, the
    // located 48-bit packability guard, and the record/access index
    // of every chunk boundary. Pages are released behind the scan.
    struct Bound
    {
        uint64_t firstRecord;
        uint64_t firstAccess;
    };
    std::vector<Bound> bounds;
    uint64_t access = 0;
    uint64_t last_drop = 0;
    TraceRecord rec;
    for (uint64_t r = 0; r < info.records; ++r) {
        map.record(r, rec);
        tracefmt::ensurePackable(rec, pct_path, r);
        diskCount = std::max<std::size_t>(diskCount, rec.disk + 1);
        if (bounds.empty() ||
            access - bounds.back().firstAccess >= opts.chunkAccesses)
            bounds.push_back(Bound{r, access});
        access += rec.numBlocks;
        if (r - last_drop >= kScanDropRecords) {
            map.dropRange(last_drop, r - last_drop);
            last_drop = r;
        }
    }
    map.dropRange(last_drop, info.records - last_drop);
    total = static_cast<std::size_t>(access);

    sidecarFd = makeUnlinkedTemp();
    if (total > 0 &&
        ::ftruncate(sidecarFd,
                    static_cast<off_t>(access * sizeof(SideEntry))) !=
            0)
        PACACHE_FATAL("cannot size sidecar file: ",
                      std::strerror(errno));
    if (budgeted()) {
        // Pin-map slots are 24 bytes at <= 7/8 load in a power-of-two
        // table; 48 bytes/entry leaves headroom for both factors.
        pinHorizon = std::max<std::size_t>(
            opts.pinnedBudgetBytes / 48, kTimePageDoubles);
        timesFd = makeUnlinkedTemp();
        if (total > 0 &&
            ::ftruncate(timesFd, static_cast<off_t>(
                                     access * sizeof(double))) != 0)
            PACACHE_FATAL("cannot size times sidecar: ",
                          std::strerror(errno));
    }

    // Backward pass in reverse chunk order. The carry map holds, for
    // every block seen in the processed suffix, its earliest access
    // there — crossing chunk boundaries is what makes the stitching
    // exact for any window. Entries that survive to the front are
    // the first-ever (cold) references.
    struct Prev
    {
        uint64_t idx;
        double time;
    };
    FlatMap<std::uint64_t, Prev> carry;
    carry.reserve(std::size_t(1) << 16);
    std::vector<std::pair<std::uint64_t, double>> chunk_acc;
    std::vector<SideEntry> sidecar;
    std::vector<double> times;
    for (std::size_t c = bounds.size(); c-- > 0;) {
        const uint64_t rec_begin = bounds[c].firstRecord;
        const uint64_t rec_end = c + 1 < bounds.size()
                                     ? bounds[c + 1].firstRecord
                                     : info.records;
        const uint64_t acc_begin = bounds[c].firstAccess;
        const uint64_t acc_end = c + 1 < bounds.size()
                                     ? bounds[c + 1].firstAccess
                                     : access;
        const std::size_t count =
            static_cast<std::size_t>(acc_end - acc_begin);
        chunk_acc.clear();
        chunk_acc.reserve(count);
        for (uint64_t r = rec_begin; r < rec_end; ++r) {
            map.record(r, rec);
            for (uint32_t b = 0; b < rec.numBlocks; ++b)
                chunk_acc.emplace_back(
                    BlockId{rec.disk, rec.block + b}.packed(),
                    rec.time);
        }
        sidecar.resize(count);
        for (std::size_t i = count; i-- > 0;) {
            const uint64_t idx = acc_begin + i;
            auto [slot, inserted] = carry.emplace(
                chunk_acc[i].first, Prev{idx, chunk_acc[i].second});
            if (!inserted) {
                sidecar[i] = SideEntry{slot->idx, slot->time};
                *slot = Prev{idx, chunk_acc[i].second};
            } else {
                sidecar[i] = SideEntry{kNever64, 0.0};
            }
        }
        pwriteFully(sidecarFd, sidecar.data(),
                    count * sizeof(SideEntry),
                    acc_begin * sizeof(SideEntry));
        if (budgeted()) {
            times.resize(count);
            for (std::size_t i = 0; i < count; ++i)
                times[i] = chunk_acc[i].second;
            pwriteFully(timesFd, times.data(),
                        count * sizeof(double),
                        acc_begin * sizeof(double));
        }
        map.dropRange(rec_begin, rec_end - rec_begin);
    }

    // Carry leftovers are each block's first reference. Budgeted
    // mode pins only the seeds the replay cursor will reach within
    // the horizon; farther ones are served by the times sidecar.
    cold.reserve(carry.size());
    if (opts.pinTimes)
        pinned.reserve(budgeted() ? std::size_t(1) << 12
                                  : carry.size() * 2 + 16);
    carry.forEach([&](std::uint64_t packed, const Prev &p) {
        cold.push_back(ColdSeed{BlockId::fromPacked(packed).disk,
                                static_cast<std::size_t>(p.idx)});
        if (opts.pinTimes &&
            (!budgeted() || p.idx < pinHorizon)) {
            const bool fresh = pinned.emplace(p.idx, p.time).second;
            PACACHE_ASSERT(fresh, "duplicate cold pin");
        }
    });
    std::sort(cold.begin(), cold.end(),
              [](const ColdSeed &a, const ColdSeed &b) {
                  return a.idx < b.idx;
              });

    window.resize(std::min<std::size_t>(opts.windowEntries,
                                        std::max<std::size_t>(total,
                                                              1)));
    winBase = winCount = 0;
    cursor = 0;
    ready = true;
}

void
WindowedFuture::refill(std::size_t from)
{
    winBase = from;
    winCount = std::min(window.size(), total - from);
    preadFully(sidecarFd, window.data(),
               winCount * sizeof(SideEntry),
               static_cast<uint64_t>(from) * sizeof(SideEntry));
    // Window transition: the pinned map churns one erase + one
    // insert per access, and its live count falls toward the trace
    // tail (never-again blocks unpin without a successor). Rehash
    // down when 4x oversized so the peak table never lingers.
    pinned.shrink();
}

std::size_t
WindowedFuture::nextUse(std::size_t idx)
{
    PACACHE_ASSERT(ready, "WindowedFuture used before build");
    PACACHE_ASSERT(idx == cursor,
                   "windowed future consumed out of order: index ",
                   idx, ", expected ", cursor);
    PACACHE_ASSERT(idx < total, "access index out of range");
    ++cursor;
    if (idx < winBase || idx >= winBase + winCount)
        refill(idx);
    const SideEntry e = window[idx - winBase];
    if (opts.pinTimes) {
        // The pin moves down the block's access chain: this index is
        // in the past now, its successor becomes queryable. Under a
        // budget the consumed index may never have been pinned (it
        // was beyond the horizon when its predecessor retired), and
        // a far successor is left to the times sidecar.
        const bool was = pinned.erase(idx);
        PACACHE_ASSERT(was || budgeted(),
                       "consumed index ", idx, " was not pinned");
        if (e.next != kNever64 &&
            (!budgeted() || e.next < cursor + pinHorizon)) {
            const bool fresh = pinned.emplace(e.next, e.time).second;
            PACACHE_ASSERT(fresh, "double pin of future index");
        }
    }
    return e.next == kNever64 ? kNever
                              : static_cast<std::size_t>(e.next);
}

Time
WindowedFuture::timeOf(std::size_t idx) const
{
    const double *t = pinned.find(idx);
    if (t)
        return *t;
    PACACHE_ASSERT(budgeted(), "timeOf(", idx,
                   ") queried for an unpinned index");
    return readTime(idx);
}

Time
WindowedFuture::readTime(std::size_t idx) const
{
    PACACHE_ASSERT(idx < total, "timeOf index out of range");
    const std::size_t page = idx / kTimePageDoubles;
    if (timePages.empty())
        timePages.resize(kTimePages);
    TimePage &tp = timePages[page % kTimePages];
    if (tp.base != page) {
        const std::size_t n =
            std::min(kTimePageDoubles, total - page * kTimePageDoubles);
        tp.buf.resize(kTimePageDoubles);
        preadFully(timesFd, tp.buf.data(), n * sizeof(double),
                   static_cast<uint64_t>(page) * kTimePageDoubles *
                       sizeof(double));
        tp.base = page;
        ++timeReads;
    }
    return tp.buf[idx - page * kTimePageDoubles];
}

} // namespace pacache
