/**
 * @file
 * Least-Recently-Used replacement: the paper's on-line baseline.
 */

#ifndef PACACHE_CACHE_LRU_HH
#define PACACHE_CACHE_LRU_HH

#include <list>
#include <unordered_map>

#include "cache/policy.hh"

namespace pacache
{

/**
 * An LRU stack usable both as a standalone policy and as a building
 * block (PA-LRU maintains two of them).
 */
class LruStack
{
  public:
    /** Move (or add) a block to the MRU position. */
    void touch(const BlockId &block);

    /** Remove a specific block; @return true if it was present. */
    bool remove(const BlockId &block);

    /** Pop and return the LRU (bottom) block. Must be non-empty. */
    BlockId popLru();

    bool contains(const BlockId &block) const
    {
        return index.count(block) > 0;
    }

    bool empty() const { return order.empty(); }
    std::size_t size() const { return order.size(); }

  private:
    std::list<BlockId> order; //!< front = MRU, back = LRU
    std::unordered_map<BlockId, std::list<BlockId>::iterator> index;
};

/** Plain LRU replacement policy. */
class LruPolicy : public ReplacementPolicy
{
  public:
    const char *name() const override { return "LRU"; }

    void
    onAccess(const BlockId &block, Time, std::size_t, bool) override
    {
        stack.touch(block);
    }

    void onRemove(const BlockId &block) override;

    BlockId evict(Time, std::size_t) override;

  private:
    LruStack stack;
};

} // namespace pacache

#endif // PACACHE_CACHE_LRU_HH
