/**
 * @file
 * Least-Recently-Used replacement: the paper's on-line baseline.
 */

#ifndef PACACHE_CACHE_LRU_HH
#define PACACHE_CACHE_LRU_HH

#include "cache/policy.hh"
#include "util/flat_map.hh"
#include "util/intrusive_list.hh"

namespace pacache
{

/**
 * An LRU stack usable both as a standalone policy and as a building
 * block (PA-LRU maintains two of them). Backed by an arena list plus
 * an open-addressing index, so steady-state touch/evict churn does no
 * per-node heap allocation.
 */
class LruStack
{
  public:
    /** Move (or add) a block to the MRU position. */
    void touch(const BlockId &block);

    /** Remove a specific block; @return true if it was present. */
    bool remove(const BlockId &block);

    /** Pop and return the LRU (bottom) block. Must be non-empty. */
    BlockId popLru();

    bool contains(const BlockId &block) const
    {
        return index.contains(block);
    }

    bool empty() const { return order.empty(); }
    std::size_t size() const { return order.size(); }

  private:
    using Order = ArenaList<BlockId>;

    Order order; //!< front = MRU, back = LRU
    FlatMap<BlockId, Order::Node *> index;
};

/** Plain LRU replacement policy. */
class LruPolicy : public ReplacementPolicy
{
  public:
    const char *name() const override { return "LRU"; }

    void
    onAccess(const BlockId &block, Time, std::size_t, bool) override
    {
        stack.touch(block);
    }

    void onRemove(const BlockId &block) override;

    BlockId evict(Time, std::size_t) override;

  private:
    LruStack stack;
};

} // namespace pacache

#endif // PACACHE_CACHE_LRU_HH
