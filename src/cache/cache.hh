/**
 * @file
 * The storage cache: block-granular, demand-filled, with pluggable
 * replacement (paper's "CacheSim"). Tracks per-block dirty and
 * "logged" flags (the latter for the WTDU write policy) and per-disk
 * dirty-block sets so write policies can flush efficiently.
 */

#ifndef PACACHE_CACHE_CACHE_HH
#define PACACHE_CACHE_CACHE_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "cache/policy.hh"
#include "sim/types.hh"
#include "util/flat_map.hh"
#include "util/seen_filter.hh"

namespace pacache
{

namespace obs
{
class SimObserver;
}

/** Outcome of one cache access. */
struct CacheResult
{
    bool hit = false;
    bool coldMiss = false;    //!< miss on a never-before-seen block
    bool evicted = false;     //!< an eviction was needed
    BlockId victim;           //!< valid when evicted
    bool victimDirty = false; //!< victim needed a write-back
    bool victimLogged = false; //!< victim held only-in-log data (WTDU)
};

/** Aggregate cache counters. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    //! First-ever accesses to a block (compulsory misses; exact, not
    //! Bloom). A prefetch-hidden first access still counts.
    uint64_t coldMisses = 0;
    uint64_t prefetchInserts = 0; //!< blocks brought in speculatively

    double
    hitRatio() const
    {
        return accesses ? static_cast<double>(hits) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/** Fixed-capacity block cache with pluggable replacement. */
class Cache
{
  public:
    /**
     * @param capacity_blocks  cache size in blocks (> 0)
     * @param policy           replacement policy (not owned)
     */
    Cache(std::size_t capacity_blocks, ReplacementPolicy &policy);

    /**
     * Access @p block at time @p now with stream index @p idx.
     * On a miss the block is brought in, evicting if necessary.
     * Newly inserted blocks are clean and unlogged.
     */
    CacheResult access(const BlockId &block, Time now, std::size_t idx);

    /**
     * Insert a block without a demand access (prefetch): no hit/miss
     * counters move, the policy sees a miss-style insertion, and an
     * eviction may be needed. No-op (hit=true result) if already
     * resident.
     */
    CacheResult insert(const BlockId &block, Time now, std::size_t idx);

    bool contains(const BlockId &block) const
    {
        return resident.contains(block.packed());
    }

    /** Mark a resident block dirty (write-back family). */
    void markDirty(const BlockId &block);

    /** Clear a resident block's dirty flag (after a flush). */
    void markClean(const BlockId &block);

    bool isDirty(const BlockId &block) const;

    /** Mark a resident block as logged (WTDU). */
    void markLogged(const BlockId &block);

    /** Clear a resident block's logged flag (after a log flush). */
    void clearLogged(const BlockId &block);

    bool isLogged(const BlockId &block) const;

    /** All dirty blocks of a disk (unordered). */
    std::vector<BlockId> dirtyBlocksOf(DiskId disk) const;

    /** All logged blocks of a disk (unordered). */
    std::vector<BlockId> loggedBlocksOf(DiskId disk) const;

    /** Number of dirty blocks of a disk. */
    std::size_t dirtyCount(DiskId disk) const;

    std::size_t size() const { return resident.size(); }
    std::size_t capacity() const { return capacityBlocks; }

    const CacheStats &stats() const { return counters; }

    ReplacementPolicy &policy() { return *repl; }

    /** Attach an observability fan-out (null to detach). */
    void setObserver(obs::SimObserver *observer) { obs = observer; }

  private:
    struct Flags
    {
        bool dirty = false;
        bool logged = false;
    };

    void dropFlags(const BlockId &block, const Flags &flags);

    /** Shared miss/prefetch insertion path (evict + insert). */
    void bringIn(const BlockId &block, Time now, std::size_t idx,
                 CacheResult &result);

    std::size_t capacityBlocks;
    ReplacementPolicy *repl;
    /**
     * Residency keyed on packed 64-bit block ids: 16-byte slots keep
     * the table inside L1 at fig6 cache sizes, and the per-access
     * probe hashes one word instead of a struct.
     */
    FlatMap<uint64_t, Flags> resident;
    std::vector<std::unordered_set<BlockNum>> dirtyPerDisk;
    std::vector<std::unordered_set<BlockNum>> loggedPerDisk;

    /**
     * Exact cold-miss detection, probed once per miss. Block numbers
     * below kSeenBitmapLimit (every simulated workload) are answered
     * by a per-disk grow-on-demand bitmap — one direct bit test, no
     * hashing. Sparse ids beyond the limit (raw sector addresses from
     * real traces) go to the budgeted paged-bitmap tier: resident
     * memory is capped at SparseSeenSet::kDefaultBudget with overflow
     * pages spilled to disk, instead of a hash set growing with every
     * unique block. Same exact first-ever-seen answers either way.
     */
    static constexpr BlockNum kSeenBitmapLimit = BlockNum{1} << 22;
    bool recordFirstSeen(const BlockId &block);
    std::vector<std::vector<uint64_t>> seenBits;
    SparseSeenSet everSeenSparse;
    CacheStats counters;
    obs::SimObserver *obs = nullptr; //!< null = no instrumentation
};

} // namespace pacache

#endif // PACACHE_CACHE_CACHE_HH
