/**
 * @file
 * First-In-First-Out replacement (insertion order, ignores hits).
 */

#ifndef PACACHE_CACHE_FIFO_HH
#define PACACHE_CACHE_FIFO_HH

#include <list>
#include <unordered_map>

#include "cache/policy.hh"

namespace pacache
{

/** FIFO replacement policy. */
class FifoPolicy : public ReplacementPolicy
{
  public:
    const char *name() const override { return "FIFO"; }

    void onAccess(const BlockId &block, Time now, std::size_t idx,
                  bool hit) override;
    void onRemove(const BlockId &block) override;
    BlockId evict(Time now, std::size_t idx) override;

  private:
    std::list<BlockId> order; //!< front = oldest
    std::unordered_map<BlockId, std::list<BlockId>::iterator> index;
};

} // namespace pacache

#endif // PACACHE_CACHE_FIFO_HH
