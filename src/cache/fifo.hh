/**
 * @file
 * First-In-First-Out replacement (insertion order, ignores hits).
 */

#ifndef PACACHE_CACHE_FIFO_HH
#define PACACHE_CACHE_FIFO_HH

#include "cache/policy.hh"
#include "util/flat_map.hh"
#include "util/intrusive_list.hh"

namespace pacache
{

/** FIFO replacement policy. */
class FifoPolicy : public ReplacementPolicy
{
  public:
    const char *name() const override { return "FIFO"; }

    void onAccess(const BlockId &block, Time now, std::size_t idx,
                  bool hit) override;
    void onRemove(const BlockId &block) override;
    BlockId evict(Time now, std::size_t idx) override;

  private:
    using Order = ArenaList<BlockId>;

    Order order; //!< front = oldest
    FlatMap<BlockId, Order::Node *> index;
};

} // namespace pacache

#endif // PACACHE_CACHE_FIFO_HH
