#include "cache/fifo.hh"

#include "util/logging.hh"

namespace pacache
{

void
FifoPolicy::onAccess(const BlockId &block, Time, std::size_t, bool hit)
{
    if (hit)
        return; // FIFO ignores re-references
    index.emplace(block, order.pushBack(block));
}

void
FifoPolicy::onRemove(const BlockId &block)
{
    Order::Node **node = index.find(block);
    PACACHE_ASSERT(node, "FIFO removal of unknown block");
    order.unlink(*node);
    index.erase(block);
}

BlockId
FifoPolicy::evict(Time, std::size_t)
{
    PACACHE_ASSERT(!order.empty(), "FIFO evict on empty cache");
    const BlockId victim = order.popFront();
    index.erase(victim);
    return victim;
}

} // namespace pacache
