#include "cache/fifo.hh"

#include "util/logging.hh"

namespace pacache
{

void
FifoPolicy::onAccess(const BlockId &block, Time, std::size_t, bool hit)
{
    if (hit)
        return; // FIFO ignores re-references
    order.push_back(block);
    index[block] = std::prev(order.end());
}

void
FifoPolicy::onRemove(const BlockId &block)
{
    auto it = index.find(block);
    PACACHE_ASSERT(it != index.end(), "FIFO removal of unknown block");
    order.erase(it->second);
    index.erase(it);
}

BlockId
FifoPolicy::evict(Time, std::size_t)
{
    PACACHE_ASSERT(!order.empty(), "FIFO evict on empty cache");
    BlockId victim = order.front();
    order.pop_front();
    index.erase(victim);
    return victim;
}

} // namespace pacache
