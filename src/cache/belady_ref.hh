/**
 * @file
 * ReferenceBeladyPolicy — the set-based Belady MIN implementation
 * that predated the indexed-heap fast path, retained verbatim so the
 * rewrite stays equivalence-testable forever (same role as
 * ReferenceOpgPolicy for OPG).
 *
 * Semantics are identical to BeladyPolicy; the difference is purely
 * structural: residents are ordered in a std::set of (next-use,
 * block) pairs with a std::unordered_map from block to its current
 * next-use index, so every hit pays a node erase + insert.
 */

#ifndef PACACHE_CACHE_BELADY_REF_HH
#define PACACHE_CACHE_BELADY_REF_HH

#include <set>
#include <unordered_map>
#include <utility>

#include "cache/policy.hh"

namespace pacache
{

/** The retained reference implementation of Belady's MIN. */
class ReferenceBeladyPolicy : public ReplacementPolicy
{
  public:
    const char *name() const override { return "Belady-ref"; }

    void prepare(const std::vector<BlockAccess> &accesses) override;

    void onAccess(const BlockId &block, Time now, std::size_t idx,
                  bool hit) override;
    void onRemove(const BlockId &block) override;
    BlockId evict(Time now, std::size_t idx) override;
    bool supportsPrefetch() const override { return false; }
    bool isOffline() const override { return true; }

  private:
    FutureKnowledge future;
    bool prepared = false;

    /** Resident blocks ordered by next-use index (kNever last). */
    std::set<std::pair<std::size_t, BlockId>> byNextUse;
    std::unordered_map<BlockId, std::size_t> nextOf;
};

} // namespace pacache

#endif // PACACHE_CACHE_BELADY_REF_HH
