#include "cache/belady_ref.hh"

#include "util/logging.hh"

namespace pacache
{

void
ReferenceBeladyPolicy::prepare(const std::vector<BlockAccess> &accesses)
{
    future = FutureKnowledge::buildRef(accesses);
    prepared = true;
    byNextUse.clear();
    nextOf.clear();
}

void
ReferenceBeladyPolicy::onAccess(const BlockId &block, Time,
                                std::size_t idx, bool hit)
{
    PACACHE_ASSERT(prepared, "Belady-ref requires prepare() before use");
    PACACHE_ASSERT(idx < future.size(), "access index out of range");
    const std::size_t next = future.nextUse(idx);
    if (hit) {
        auto it = nextOf.find(block);
        PACACHE_ASSERT(it != nextOf.end(),
                       "Belady-ref hit on unknown block");
        byNextUse.erase({it->second, block});
        it->second = next;
    } else {
        nextOf[block] = next;
    }
    byNextUse.insert({next, block});
}

void
ReferenceBeladyPolicy::onRemove(const BlockId &block)
{
    auto it = nextOf.find(block);
    PACACHE_ASSERT(it != nextOf.end(),
                   "Belady-ref removal of unknown block");
    byNextUse.erase({it->second, block});
    nextOf.erase(it);
}

BlockId
ReferenceBeladyPolicy::evict(Time, std::size_t)
{
    PACACHE_ASSERT(!byNextUse.empty(), "Belady-ref evict on empty cache");
    // Furthest next use: the largest key (kNever sorts last).
    auto it = std::prev(byNextUse.end());
    const BlockId victim = it->second;
    nextOf.erase(victim);
    byNextUse.erase(it);
    return victim;
}

} // namespace pacache
