/**
 * @file
 * Out-of-core future knowledge for off-line policies.
 *
 * FutureKnowledge (cache/future.hh) materializes the whole expanded
 * access stream plus three trace-length arrays — fine for RAM-sized
 * traces, impossible for billion-request ones. WindowedFuture
 * computes the same next-use chain *exactly* without ever holding
 * the trace in memory:
 *
 *  1. A backward pass walks the mmap'd .pct file chunk by chunk in
 *     reverse order. A carry map (block -> earliest access seen so
 *     far in the processed suffix) crosses every chunk boundary, so
 *     the stitching is exact for any look-ahead: each access's next
 *     use is the global one, not a per-chunk approximation. Each
 *     chunk emits fixed 16-byte sidecar entries (next index + next
 *     time) into an unlinked temporary file via pwrite, then the
 *     chunk's pages are released (MADV_DONTNEED).
 *
 *  2. Forward replay consumes sidecar entries strictly in order
 *     through a bounded window buffer refilled by pread, so peak RSS
 *     is bounded by max(chunk, window, one entry per unique block) —
 *     never by the trace length.
 *
 * Times of future indices (OPG's gap pricing needs timeOf(j) for
 * deterministic-miss neighbors and resident next-uses) are served
 * from a pinned-times map: every index is pinned exactly once before
 * replay reaches it — cold (first-reference) indices at build, every
 * other index when its predecessor's sidecar entry is consumed — and
 * unpinned when consumed itself. The pinned set therefore holds at
 * most one in-flight entry per distinct block, the same order of
 * memory OPG's deterministic-miss set already needs. Belady only
 * needs next indices and opts out of pinning entirely.
 *
 * Options::pinnedBudgetBytes bounds even that: the backward pass
 * additionally writes an arrival-times sidecar (8 bytes per access),
 * only indices within a budget-derived horizon of the cursor are
 * pinned, and timeOf() for anything farther is an exact pread
 * through a small direct-mapped page cache. Same doubles either
 * way, so replay stays bit-identical under any budget.
 */

#ifndef PACACHE_CACHE_FUTURE_WINDOW_HH
#define PACACHE_CACHE_FUTURE_WINDOW_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "util/flat_map.hh"

namespace pacache
{

/** Streaming (bounded-memory) next-use knowledge over a .pct file. */
class WindowedFuture
{
  public:
    /** Sentinel: the block is never accessed again. */
    static constexpr std::size_t kNever = static_cast<std::size_t>(-1);
    /** Consumers must stream accesses instead of materializing. */
    static constexpr bool kStreaming = true;

    struct Options
    {
        /** Sidecar read-buffer entries (the look-ahead window). */
        std::size_t windowEntries = std::size_t(1) << 20;
        /** Backward-pass chunk size in block accesses. */
        std::size_t chunkAccesses = std::size_t(1) << 22;
        /**
         * Keep a pinned time for every not-yet-reached index that a
         * consumer may query via timeOf() (OPG). Belady never calls
         * timeOf() and skips the bookkeeping.
         */
        bool pinTimes = true;
        /**
         * Re-verify the .pct checksum while building. Off by
         * default: the replay source already verified the same file
         * on open, and the backward pass decodes (and validates)
         * every record anyway.
         */
        bool verifyChecksum = false;
        /**
         * Bound the pinned-times map. 0 = pin every in-flight index
         * (exact but O(unique blocks) memory, the historical
         * behavior). > 0 = pin only indices within a budget-derived
         * horizon of the replay cursor and serve far timeOf()
         * queries from an arrival-times sidecar written during the
         * backward pass — the same doubles the records carry, so
         * replay stays bit-identical while the map stays O(horizon).
         */
        std::size_t pinnedBudgetBytes = 0;
    };

    /** A block's first-ever access: seeds OPG's deterministic set. */
    struct ColdSeed
    {
        DiskId disk;
        std::size_t idx;
    };

    WindowedFuture() = default;
    /** Run the backward pass over @p pct_path (fatal on I/O error). */
    explicit WindowedFuture(const std::string &pct_path);
    WindowedFuture(const std::string &pct_path, Options opts);
    ~WindowedFuture();

    WindowedFuture(const WindowedFuture &) = delete;
    WindowedFuture &operator=(const WindowedFuture &) = delete;
    WindowedFuture(WindowedFuture &&other) noexcept;
    WindowedFuture &operator=(WindowedFuture &&other) noexcept;

    bool built() const { return ready; }
    /** Total block-granular accesses in the trace. */
    std::size_t size() const { return total; }
    /** Max disk id + 1 (at least 1). */
    std::size_t numDisks() const { return diskCount; }
    /** Last arrival time (the .pct header's endTime). */
    Time endTime() const { return lastTime; }

    /**
     * Index of the next access to the same block (kNever if none).
     * Consuming: must be called exactly once per index, in strictly
     * increasing order — it advances the sidecar window and moves
     * the time pin from this index to its successor.
     */
    std::size_t nextUse(std::size_t idx);

    /**
     * Time of a future index. Unbounded mode: exactly the indices
     * OPG tracks — deterministic misses and resident next-uses —
     * are pinned; anything else is a bug. Budgeted mode: a pinned
     * hit when the index is near the cursor, otherwise an exact
     * pread from the arrival-times sidecar.
     */
    Time timeOf(std::size_t idx) const;

    /** Far timeOf() queries served by sidecar reads (telemetry). */
    std::uint64_t timeSidecarReads() const { return timeReads; }

    /** First-reference accesses, ascending by index. */
    const std::vector<ColdSeed> &coldSeeds() const { return cold; }

  private:
    /** Sidecar record: next access index (~0 = never) and its time. */
    struct SideEntry
    {
        std::uint64_t next;
        double time;
    };
    static constexpr std::uint64_t kNever64 = ~std::uint64_t{0};

    void build(const std::string &pct_path);
    void refill(std::size_t from);
    void closeFd();
    bool budgeted() const
    {
        return opts.pinTimes && opts.pinnedBudgetBytes > 0;
    }
    Time readTime(std::size_t idx) const;

    /** Times-sidecar page cache: 8 direct-mapped 4 KiB pages. */
    static constexpr std::size_t kTimePageDoubles = 512;
    static constexpr std::size_t kTimePages = 8;
    struct TimePage
    {
        std::size_t base = kNever;
        std::vector<double> buf;
    };

    Options opts;
    int sidecarFd = -1;
    int timesFd = -1; //!< arrival-times sidecar (budgeted mode)
    std::size_t total = 0;
    std::size_t diskCount = 1;
    Time lastTime = 0;
    bool ready = false;
    std::size_t pinHorizon = 0; //!< pinned entries ahead of cursor

    std::vector<ColdSeed> cold;
    /** idx -> arrival time for every pinned future index. */
    FlatMap<std::uint64_t, double> pinned;

    std::vector<SideEntry> window;
    std::size_t winBase = 0;
    std::size_t winCount = 0;
    std::size_t cursor = 0; //!< next index nextUse() will accept

    mutable std::vector<TimePage> timePages;
    mutable std::uint64_t timeReads = 0;
};

} // namespace pacache

#endif // PACACHE_CACHE_FUTURE_WINDOW_HH
