#include "cache/lirs.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pacache
{

LirsPolicy::LirsPolicy(std::size_t capacity_blocks, double hir_fraction,
                       double ghost_factor)
    : cap(capacity_blocks)
{
    PACACHE_ASSERT(cap > 0, "LIRS needs positive capacity");
    PACACHE_ASSERT(hir_fraction > 0 && hir_fraction < 1,
                   "hir_fraction must be in (0,1)");
    const auto hir = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               static_cast<double>(cap) * hir_fraction));
    maxLir = cap > hir ? cap - hir : 1;
    maxStack = std::max<std::size_t>(
        cap + 1,
        static_cast<std::size_t>(static_cast<double>(cap) *
                                 ghost_factor));
}

void
LirsPolicy::stackPushTop(const BlockId &block, Entry &e)
{
    stack.push_front(block);
    e.inStack = true;
    e.stackIt = stack.begin();
}

void
LirsPolicy::stackErase(Entry &e)
{
    if (e.inStack) {
        stack.erase(e.stackIt);
        e.inStack = false;
    }
}

void
LirsPolicy::queuePushBack(const BlockId &block, Entry &e)
{
    queue.push_back(block);
    e.inQueue = true;
    e.queueIt = std::prev(queue.end());
}

void
LirsPolicy::queueErase(Entry &e)
{
    if (e.inQueue) {
        queue.erase(e.queueIt);
        e.inQueue = false;
    }
}

void
LirsPolicy::pruneStack()
{
    while (!stack.empty()) {
        auto it = table.find(stack.back());
        PACACHE_ASSERT(it != table.end(), "LIRS stack entry untracked");
        if (it->second.status == Status::Lir)
            return;
        // Trailing HIR entries carry no IRR information: drop them.
        if (it->second.status == Status::HirGhost) {
            --numGhosts;
            stack.pop_back();
            table.erase(it);
        } else {
            it->second.inStack = false;
            stack.pop_back();
        }
    }
}

void
LirsPolicy::demoteBottomLir()
{
    pruneStack();
    PACACHE_ASSERT(!stack.empty(), "no LIR block to demote");
    const BlockId bottom = stack.back();
    Entry &e = table.at(bottom);
    PACACHE_ASSERT(e.status == Status::Lir, "stack bottom must be LIR");
    stackErase(e);
    e.status = Status::HirResident;
    queuePushBack(bottom, e);
    --numLir;
    pruneStack();
}

void
LirsPolicy::trimGhosts()
{
    while (stack.size() > maxStack && numGhosts > 0) {
        // Drop the oldest (lowest) ghost in the stack.
        for (auto it = std::prev(stack.end());; --it) {
            auto t = table.find(*it);
            PACACHE_ASSERT(t != table.end(), "LIRS stack entry untracked");
            if (t->second.status == Status::HirGhost) {
                stack.erase(it);
                table.erase(t);
                --numGhosts;
                break;
            }
            if (it == stack.begin())
                return; // no ghost found (shouldn't happen)
        }
    }
}

void
LirsPolicy::onAccess(const BlockId &block, Time, std::size_t, bool hit)
{
    if (hit) {
        Entry &e = table.at(block);
        if (e.status == Status::Lir) {
            stackErase(e);
            stackPushTop(block, e);
            pruneStack();
        } else {
            PACACHE_ASSERT(e.status == Status::HirResident,
                           "hit on non-resident block");
            if (e.inStack) {
                // Small IRR: promote to LIR.
                stackErase(e);
                queueErase(e);
                e.status = Status::Lir;
                ++numLir;
                stackPushTop(block, e);
                if (numLir > maxLir)
                    demoteBottomLir();
                pruneStack();
            } else {
                // Large recency: stay HIR, refresh S and Q positions.
                stackPushTop(block, e);
                queueErase(e);
                queuePushBack(block, e);
            }
        }
        trimGhosts();
        return;
    }

    // Miss path: the cache has already evicted via evict() if needed.
    // Ghost state is re-read here rather than cached in beforeMiss():
    // the evict() between beforeMiss() and this call may prune the
    // incoming block's ghost entry, and wrappers that migrate blocks
    // between sub-policies (PA-LIRS) insert via a bare miss access
    // while this policy still holds the block as a ghost.
    if (auto ghost = table.find(block);
        ghost != table.end() &&
        ghost->second.status == Status::HirGhost) {
        Entry &e = ghost->second;
        --numGhosts;
        stackErase(e);
        e.status = Status::Lir;
        ++numLir;
        stackPushTop(block, e);
        if (numLir > maxLir)
            demoteBottomLir();
        pruneStack();
    } else {
        PACACHE_ASSERT(table.count(block) == 0, "LIRS double insert");
        Entry e{};
        if (numLir < maxLir) {
            // Warm-up: the first blocks form the LIR set.
            e.status = Status::Lir;
            ++numLir;
            auto [it, ok] = table.emplace(block, e);
            PACACHE_ASSERT(ok, "emplace failed");
            stackPushTop(block, it->second);
        } else {
            e.status = Status::HirResident;
            auto [it, ok] = table.emplace(block, e);
            PACACHE_ASSERT(ok, "emplace failed");
            stackPushTop(block, it->second);
            queuePushBack(block, it->second);
        }
    }
    trimGhosts();
}

void
LirsPolicy::onRemove(const BlockId &block)
{
    auto it = table.find(block);
    PACACHE_ASSERT(it != table.end() &&
                       it->second.status != Status::HirGhost,
                   "LIRS removal of non-resident block");
    Entry &e = it->second;
    if (e.status == Status::Lir)
        --numLir;
    stackErase(e);
    queueErase(e);
    table.erase(it);
    pruneStack();
}

BlockId
LirsPolicy::evict(Time, std::size_t)
{
    if (!queue.empty()) {
        const BlockId victim = queue.front();
        Entry &e = table.at(victim);
        queueErase(e);
        if (e.inStack) {
            // Keep IRR history: the entry stays in S as a ghost.
            e.status = Status::HirGhost;
            ++numGhosts;
        } else {
            table.erase(victim);
        }
        return victim;
    }

    // No resident HIR block (can happen after external removals):
    // demote and evict the coldest LIR block.
    pruneStack();
    PACACHE_ASSERT(!stack.empty(), "LIRS evict on empty cache");
    const BlockId victim = stack.back();
    Entry &e = table.at(victim);
    PACACHE_ASSERT(e.status == Status::Lir, "stack bottom must be LIR");
    stackErase(e);
    --numLir;
    table.erase(victim);
    pruneStack();
    return victim;
}

void
LirsPolicy::validate() const
{
    std::size_t lir = 0, ghosts = 0, resident_hir = 0;
    for (const auto &[block, e] : table) {
        switch (e.status) {
          case Status::Lir:
            ++lir;
            PACACHE_ASSERT(e.inStack, "LIR block must be in the stack");
            PACACHE_ASSERT(!e.inQueue, "LIR block must not be queued");
            break;
          case Status::HirResident:
            ++resident_hir;
            PACACHE_ASSERT(e.inQueue, "resident HIR must be queued");
            break;
          case Status::HirGhost:
            ++ghosts;
            PACACHE_ASSERT(e.inStack && !e.inQueue,
                           "ghosts live only in the stack");
            break;
        }
    }
    PACACHE_ASSERT(lir == numLir, "LIR count drift");
    PACACHE_ASSERT(ghosts == numGhosts, "ghost count drift");
    PACACHE_ASSERT(resident_hir == queue.size(), "queue count drift");
    PACACHE_ASSERT(numLir <= maxLir, "LIR set exceeds target");
    if (!stack.empty()) {
        const auto &bottom = table.at(stack.back());
        PACACHE_ASSERT(bottom.status == Status::Lir || numLir == 0,
                       "stack bottom must be LIR after pruning");
    }
}

} // namespace pacache
