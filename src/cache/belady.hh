/**
 * @file
 * Belady's MIN — the off-line replacement algorithm that evicts the
 * block whose next reference is furthest in the future. It minimizes
 * the miss count (the paper's baseline off-line bound) but, as the
 * paper's Section 3 shows, is *not* energy-optimal.
 *
 * Implementation (the oracle fast path; ReferenceBeladyPolicy in
 * cache/belady_ref.hh is the retained set-based original): resident
 * blocks live in an addressable max-heap keyed by (next-use index,
 * block) — kNever sorts last, exactly matching the reference's
 * std::prev(set.end()) victim — with a flat hash map from block to
 * its stable heap handle.
 *
 * Like OPG the policy is templated over its future provider F:
 * FutureKnowledge (materialized; BeladyPolicy) or WindowedFuture
 * (exact out-of-core streaming; WindowedBeladyPolicy, fed through
 * prepareWindowed with pinTimes off — MIN never prices times).
 */

#ifndef PACACHE_CACHE_BELADY_HH
#define PACACHE_CACHE_BELADY_HH

#include <utility>

#include "cache/future_window.hh"
#include "cache/policy.hh"
#include "util/flat_map.hh"
#include "util/indexed_heap.hh"

namespace pacache
{

/** Belady's off-line MIN replacement policy over future provider F. */
template <typename F>
class BasicBeladyPolicy : public ReplacementPolicy
{
  public:
    const char *name() const override { return "Belady"; }

    void prepare(const std::vector<BlockAccess> &accesses) override;

    /** Streaming counterpart of prepare() (F = WindowedFuture). */
    void prepareWindowed(F &&fut);

    void onAccess(const BlockId &block, Time now, std::size_t idx,
                  bool hit) override;
    void onRemove(const BlockId &block) override;
    BlockId evict(Time now, std::size_t idx) override;
    bool supportsPrefetch() const override { return false; }
    bool isOffline() const override { return true; }
    bool streamReady() const override
    {
        return F::kStreaming && prepared;
    }

  private:
    using UseKey = std::pair<std::size_t, BlockId>;

    /** Max-heap order: top() is the largest (furthest) key. */
    struct FurthestFirst
    {
        bool
        operator()(const UseKey &a, const UseKey &b) const
        {
            return b < a;
        }
    };

    using UseHeap = IndexedHeap<UseKey, FurthestFirst>;
    using Handle = typename UseHeap::Handle;

    F future;
    bool prepared = false;

    UseHeap byNextUse;
    /** Packed 64-bit keys: 16-byte slots, one-word hash per probe. */
    FlatMap<std::uint64_t, Handle> handleOf;
};

// Compiled once in belady.cc; see the matching note in core/opg.hh.
extern template class BasicBeladyPolicy<FutureKnowledge>;
extern template class BasicBeladyPolicy<WindowedFuture>;

/** The classic materialized MIN. */
using BeladyPolicy = BasicBeladyPolicy<FutureKnowledge>;
/** The exact out-of-core MIN (streaming replay only). */
using WindowedBeladyPolicy = BasicBeladyPolicy<WindowedFuture>;

} // namespace pacache

#endif // PACACHE_CACHE_BELADY_HH
