/**
 * @file
 * Belady's MIN — the off-line replacement algorithm that evicts the
 * block whose next reference is furthest in the future. It minimizes
 * the miss count (the paper's baseline off-line bound) but, as the
 * paper's Section 3 shows, is *not* energy-optimal.
 */

#ifndef PACACHE_CACHE_BELADY_HH
#define PACACHE_CACHE_BELADY_HH

#include <set>
#include <unordered_map>
#include <utility>

#include "cache/policy.hh"

namespace pacache
{

/** Belady's off-line MIN replacement policy. */
class BeladyPolicy : public ReplacementPolicy
{
  public:
    const char *name() const override { return "Belady"; }

    void prepare(const std::vector<BlockAccess> &accesses) override;

    void onAccess(const BlockId &block, Time now, std::size_t idx,
                  bool hit) override;
    void onRemove(const BlockId &block) override;
    BlockId evict(Time now, std::size_t idx) override;
    bool supportsPrefetch() const override { return false; }
    bool isOffline() const override { return true; }

  private:
    FutureKnowledge future;
    bool prepared = false;

    /** Resident blocks ordered by next-use index (kNever last). */
    std::set<std::pair<std::size_t, BlockId>> byNextUse;
    std::unordered_map<BlockId, std::size_t> nextOf;
};

} // namespace pacache

#endif // PACACHE_CACHE_BELADY_HH
