#include "cache/future.hh"

#include <cstdint>
#include <unordered_map>

#include "util/flat_map.hh"
#include "util/logging.hh"

namespace pacache
{

std::vector<BlockAccess>
expandTrace(const Trace &trace)
{
    std::vector<BlockAccess> out;
    out.reserve(trace.numBlockAccesses());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const TraceRecord &rec = trace[i];
        for (uint32_t b = 0; b < rec.numBlocks; ++b) {
            out.push_back(BlockAccess{rec.time,
                                      BlockId{rec.disk, rec.block + b},
                                      rec.write, i});
        }
    }
    return out;
}

FutureKnowledge
FutureKnowledge::build(const std::vector<BlockAccess> &accesses)
{
    FutureKnowledge fk;
    fk.next.assign(accesses.size(), kNever);
    fk.first.assign(accesses.size(), false);
    fk.times.resize(accesses.size());

    // Scan backwards: lastSeen maps block -> the most recent (i.e.
    // next, in forward order) access index. Keys are the packed
    // 64-bit ids — cheaper to hash and compare than the struct. The
    // table holds one entry per *unique block*, so it is sized to
    // half the trace (covers even reuse-poor streams like OLTP at 55%
    // unique) rather than the whole of it: a trace-sized table would
    // spread the random probes over twice the memory for no fewer
    // collisions, while under-sizing forces a mid-scan rehash. The
    // 32-bit mapped index keeps slots at 16 bytes. The times copy
    // rides the same pass — the records are already in cache.
    PACACHE_ASSERT(accesses.size() < UINT32_MAX,
                   "trace too large for 32-bit future indices");
    FlatMap<std::uint64_t, std::uint32_t> last_seen;
    last_seen.reserve(accesses.size() / 2 + 16);
    for (std::size_t i = accesses.size(); i-- > 0;) {
        fk.times[i] = accesses[i].time;
        auto [slot, inserted] = last_seen.emplace(
            accesses[i].block.packed(), static_cast<std::uint32_t>(i));
        if (!inserted) {
            fk.next[i] = *slot;
            *slot = static_cast<std::uint32_t>(i);
        }
    }
    // Entries left in lastSeen hold each block's earliest access.
    last_seen.forEach([&](std::uint64_t, std::uint32_t idx) {
        fk.first[idx] = true;
    });
    return fk;
}

FutureKnowledge
FutureKnowledge::buildRef(const std::vector<BlockAccess> &accesses)
{
    FutureKnowledge fk;
    fk.next.assign(accesses.size(), kNever);
    fk.first.assign(accesses.size(), false);
    fk.times.resize(accesses.size());
    for (std::size_t i = 0; i < accesses.size(); ++i)
        fk.times[i] = accesses[i].time;

    std::unordered_map<BlockId, std::size_t> last_seen;
    last_seen.reserve(accesses.size() / 4 + 16);
    for (std::size_t i = accesses.size(); i-- > 0;) {
        auto [it, inserted] =
            last_seen.try_emplace(accesses[i].block, i);
        if (!inserted) {
            fk.next[i] = it->second;
            it->second = i;
        }
    }
    // Entries left in lastSeen hold each block's earliest access.
    for (const auto &[block, idx] : last_seen)
        fk.first[idx] = true;
    return fk;
}

} // namespace pacache
