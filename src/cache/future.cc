#include "cache/future.hh"

#include <unordered_map>

namespace pacache
{

std::vector<BlockAccess>
expandTrace(const Trace &trace)
{
    std::vector<BlockAccess> out;
    out.reserve(trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const TraceRecord &rec = trace[i];
        for (uint32_t b = 0; b < rec.numBlocks; ++b) {
            out.push_back(BlockAccess{rec.time,
                                      BlockId{rec.disk, rec.block + b},
                                      rec.write, i});
        }
    }
    return out;
}

FutureKnowledge
FutureKnowledge::build(const std::vector<BlockAccess> &accesses)
{
    FutureKnowledge fk;
    fk.next.assign(accesses.size(), kNever);
    fk.first.assign(accesses.size(), false);

    // Scan backwards: lastSeen maps block -> the most recent (i.e.
    // next, in forward order) access index.
    std::unordered_map<BlockId, std::size_t> last_seen;
    last_seen.reserve(accesses.size() / 4 + 16);
    for (std::size_t i = accesses.size(); i-- > 0;) {
        auto [it, inserted] = last_seen.try_emplace(accesses[i].block, i);
        if (!inserted) {
            fk.next[i] = it->second;
            it->second = i;
        }
    }
    // Forward pass marks first references.
    for (auto &[block, idx] : last_seen)
        fk.first[idx] = true;
    return fk;
}

} // namespace pacache
