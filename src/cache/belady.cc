#include "cache/belady.hh"

#include "util/logging.hh"

namespace pacache
{

template <typename F>
void
BasicBeladyPolicy<F>::prepare(const std::vector<BlockAccess> &accesses)
{
    if constexpr (F::kStreaming) {
        (void)accesses;
        PACACHE_FATAL("windowed Belady cannot materialize an access "
                      "stream; feed it via prepareWindowed()");
    } else {
        future = F::build(accesses);
        prepared = true;
        byNextUse.clear();
        handleOf.clear();
        byNextUse.reserve(accesses.size() / 4 + 16);
        // handleOf holds one entry per *resident* block, so it stays
        // cache-capacity-sized; let it grow instead of sizing it to
        // the trace (a trace-sized table would spread the per-access
        // probes over megabytes).
    }
}

template <typename F>
void
BasicBeladyPolicy<F>::prepareWindowed(F &&fut)
{
    if constexpr (!F::kStreaming) {
        (void)fut;
        PACACHE_FATAL("prepareWindowed on the materialized MIN; "
                      "use prepare()");
    } else {
        PACACHE_ASSERT(fut.built(),
                       "prepareWindowed requires a built future");
        future = std::move(fut);
        prepared = true;
        byNextUse.clear();
        handleOf.clear();
    }
}

template <typename F>
void
BasicBeladyPolicy<F>::onAccess(const BlockId &block, Time,
                               std::size_t idx, bool hit)
{
    PACACHE_ASSERT(prepared, "Belady requires prepare() before use");
    PACACHE_ASSERT(idx < future.size(), "access index out of range");
    const std::size_t next = future.nextUse(idx);
    if (hit) {
        Handle *hp = handleOf.find(block.packed());
        PACACHE_ASSERT(hp, "Belady hit on unknown block");
        byNextUse.update(*hp, UseKey{next, block});
    } else {
        const Handle h = byNextUse.push(UseKey{next, block});
        const bool inserted =
            handleOf.emplace(block.packed(), h).second;
        PACACHE_ASSERT(inserted, "Belady double insert");
    }
}

template <typename F>
void
BasicBeladyPolicy<F>::onRemove(const BlockId &block)
{
    Handle *hp = handleOf.find(block.packed());
    PACACHE_ASSERT(hp, "Belady removal of unknown block");
    byNextUse.erase(*hp);
    handleOf.erase(block.packed());
}

template <typename F>
BlockId
BasicBeladyPolicy<F>::evict(Time, std::size_t)
{
    PACACHE_ASSERT(!byNextUse.empty(), "Belady evict on empty cache");
    // Furthest next use: the largest key (kNever sorts last).
    const BlockId victim = byNextUse.top().second;
    byNextUse.pop();
    handleOf.erase(victim.packed());
    return victim;
}

template class BasicBeladyPolicy<FutureKnowledge>;
template class BasicBeladyPolicy<WindowedFuture>;

} // namespace pacache
