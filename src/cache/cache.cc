#include "cache/cache.hh"

#include "obs/observer.hh"
#include "util/logging.hh"

namespace pacache
{

Cache::Cache(std::size_t capacity_blocks, ReplacementPolicy &policy)
    : capacityBlocks(capacity_blocks), repl(&policy)
{
    PACACHE_ASSERT(capacity_blocks > 0, "cache needs positive capacity");
    // The resident table reaches exactly capacity entries; sizing it
    // now keeps the steady-state churn rehash-free.
    resident.reserve(capacity_blocks);
}

bool
Cache::recordFirstSeen(const BlockId &block)
{
    if (block.block >= kSeenBitmapLimit)
        return everSeenSparse.testAndSet(block.packed());
    if (block.disk >= seenBits.size())
        seenBits.resize(block.disk + 1);
    auto &bits = seenBits[block.disk];
    const std::size_t word = block.block >> 6;
    if (word >= bits.size())
        bits.resize(std::max(word + 1, bits.size() * 2), 0);
    const uint64_t mask = uint64_t{1} << (block.block & 63);
    const bool first = !(bits[word] & mask);
    bits[word] |= mask;
    return first;
}

void
Cache::dropFlags(const BlockId &block, const Flags &flags)
{
    if (flags.dirty && block.disk < dirtyPerDisk.size())
        dirtyPerDisk[block.disk].erase(block.block);
    if (flags.logged && block.disk < loggedPerDisk.size())
        loggedPerDisk[block.disk].erase(block.block);
}

CacheResult
Cache::access(const BlockId &block, Time now, std::size_t idx)
{
    CacheResult result;
    ++counters.accesses;
    if (resident.find(block.packed())) {
        ++counters.hits;
        result.hit = true;
        // coldMisses counts first-ever demand accesses. Without
        // prefetching a hit implies a prior demand access, so the hit
        // path skips the first-seen probe; once insert() has run, a
        // block's first access can hit and the probe is needed.
        if (counters.prefetchInserts && recordFirstSeen(block))
            ++counters.coldMisses;
        repl->onAccess(block, now, idx, true);
        if (obs)
            obs->cacheAccess(true);
        return result;
    }

    if (recordFirstSeen(block)) {
        ++counters.coldMisses;
        result.coldMiss = true;
    }
    ++counters.misses;
    repl->beforeMiss(block, now, idx);
    bringIn(block, now, idx, result);
    if (obs)
        obs->cacheAccess(false);
    return result;
}

CacheResult
Cache::insert(const BlockId &block, Time now, std::size_t idx)
{
    CacheResult result;
    if (resident.contains(block.packed())) {
        result.hit = true;
        return result;
    }
    ++counters.prefetchInserts;
    bringIn(block, now, idx, result);
    return result;
}

void
Cache::bringIn(const BlockId &block, Time now, std::size_t idx,
               CacheResult &result)
{
    if (resident.size() >= capacityBlocks) {
        const BlockId victim = repl->evict(now, idx);
        Flags flags;
        const bool wasResident = resident.take(victim.packed(), flags);
        PACACHE_ASSERT(wasResident,
                       "policy evicted a non-resident block");
        result.evicted = true;
        result.victim = victim;
        result.victimDirty = flags.dirty;
        result.victimLogged = flags.logged;
        dropFlags(victim, flags);
        ++counters.evictions;
        if (obs)
            obs->cacheEviction(victim, result.victimDirty);
    }

    resident.emplace(block.packed(), Flags{});
    repl->onAccess(block, now, idx, false);
}

void
Cache::markDirty(const BlockId &block)
{
    Flags *flags = resident.find(block.packed());
    PACACHE_ASSERT(flags, "markDirty on non-resident block");
    if (flags->dirty)
        return;
    flags->dirty = true;
    if (block.disk >= dirtyPerDisk.size())
        dirtyPerDisk.resize(block.disk + 1);
    dirtyPerDisk[block.disk].insert(block.block);
}

void
Cache::markClean(const BlockId &block)
{
    Flags *flags = resident.find(block.packed());
    PACACHE_ASSERT(flags, "markClean on non-resident block");
    if (!flags->dirty)
        return;
    flags->dirty = false;
    dirtyPerDisk[block.disk].erase(block.block);
}

bool
Cache::isDirty(const BlockId &block) const
{
    const Flags *flags = resident.find(block.packed());
    return flags && flags->dirty;
}

void
Cache::markLogged(const BlockId &block)
{
    Flags *flags = resident.find(block.packed());
    PACACHE_ASSERT(flags, "markLogged on non-resident block");
    if (flags->logged)
        return;
    flags->logged = true;
    if (block.disk >= loggedPerDisk.size())
        loggedPerDisk.resize(block.disk + 1);
    loggedPerDisk[block.disk].insert(block.block);
}

void
Cache::clearLogged(const BlockId &block)
{
    Flags *flags = resident.find(block.packed());
    if (!flags || !flags->logged)
        return;
    flags->logged = false;
    loggedPerDisk[block.disk].erase(block.block);
}

bool
Cache::isLogged(const BlockId &block) const
{
    const Flags *flags = resident.find(block.packed());
    return flags && flags->logged;
}

std::vector<BlockId>
Cache::dirtyBlocksOf(DiskId disk) const
{
    std::vector<BlockId> out;
    if (disk < dirtyPerDisk.size()) {
        out.reserve(dirtyPerDisk[disk].size());
        for (BlockNum b : dirtyPerDisk[disk])
            out.push_back(BlockId{disk, b});
    }
    return out;
}

std::vector<BlockId>
Cache::loggedBlocksOf(DiskId disk) const
{
    std::vector<BlockId> out;
    if (disk < loggedPerDisk.size()) {
        out.reserve(loggedPerDisk[disk].size());
        for (BlockNum b : loggedPerDisk[disk])
            out.push_back(BlockId{disk, b});
    }
    return out;
}

std::size_t
Cache::dirtyCount(DiskId disk) const
{
    return disk < dirtyPerDisk.size() ? dirtyPerDisk[disk].size() : 0;
}

} // namespace pacache
