/**
 * @file
 * MQ — the Multi-Queue replacement algorithm for second-level buffer
 * caches (Zhou, Philbin & Li, USENIX'01), cited by the paper as a
 * storage-cache policy that the PA technique can wrap.
 *
 * Blocks live in one of m LRU queues; a block with reference count f
 * sits in queue min(log2(f), m-1). Blocks unreferenced for lifeTime
 * consecutive accesses are demoted one queue at a time. Evicted
 * blocks leave their reference count in a ghost buffer (Qout) so a
 * quick re-fetch resumes its old frequency.
 */

#ifndef PACACHE_CACHE_MQ_HH
#define PACACHE_CACHE_MQ_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "cache/policy.hh"

namespace pacache
{

/** MQ replacement policy. */
class MqPolicy : public ReplacementPolicy
{
  public:
    struct Params
    {
        std::size_t numQueues = 8;     //!< m
        uint64_t lifeTime = 32768;     //!< accesses before demotion
        std::size_t ghostCapacity = 65536; //!< |Qout|
    };

    MqPolicy() : MqPolicy(Params{}) {}
    explicit MqPolicy(const Params &params);

    const char *name() const override { return "MQ"; }

    void beforeMiss(const BlockId &block, Time now,
                    std::size_t idx) override;
    void onAccess(const BlockId &block, Time now, std::size_t idx,
                  bool hit) override;
    void onRemove(const BlockId &block) override;
    BlockId evict(Time now, std::size_t idx) override;

    /** Queue index a reference count maps to (test hook). */
    std::size_t queueFor(uint64_t ref_count) const;

  private:
    struct Entry
    {
        BlockId block;
        uint64_t refCount = 0;
        uint64_t expireAt = 0; //!< access-clock expiration
    };

    using Queue = std::list<Entry>;

    struct Locator
    {
        std::size_t queue;
        Queue::iterator it;
    };

    void insert(const BlockId &block, uint64_t ref_count);
    void demoteExpired();
    void ghostRemember(const BlockId &block, uint64_t ref_count);

    Params p;
    uint64_t clock = 0; //!< advances once per access

    std::vector<Queue> queues;
    std::unordered_map<BlockId, Locator> index;

    // Ghost buffer: FIFO of (block, refCount).
    using GhostList = std::list<std::pair<BlockId, uint64_t>>;
    GhostList ghostOrder;
    std::unordered_map<BlockId, GhostList::iterator> ghosts;

    uint64_t pendingRefCount = 0; //!< from beforeMiss ghost lookup
};

} // namespace pacache

#endif // PACACHE_CACHE_MQ_HH
