/**
 * @file
 * LIRS — Low Inter-reference Recency Set replacement (Jiang & Zhang,
 * SIGMETRICS'02), cited by the paper as a storage-cache policy the
 * PA technique can wrap.
 *
 * Blocks with small inter-reference recency (IRR) are "LIR" and
 * pinned; the rest are "HIR". Resident HIR blocks live in a small
 * FIFO queue Q and are the eviction victims. The recency stack S
 * holds LIR blocks, resident HIR blocks, and non-resident HIR
 * history ("ghost") entries; a HIR block re-referenced while still
 * in S has a small IRR and is promoted to LIR, demoting the LIR
 * block at the bottom of S.
 */

#ifndef PACACHE_CACHE_LIRS_HH
#define PACACHE_CACHE_LIRS_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "cache/policy.hh"

namespace pacache
{

/** LIRS replacement policy. */
class LirsPolicy : public ReplacementPolicy
{
  public:
    /**
     * @param capacity_blocks  must match the cache capacity
     * @param hir_fraction     share of capacity reserved for
     *                         resident HIR blocks (paper suggests
     *                         ~1%; at least 1 block)
     * @param ghost_factor     bound on |S| as a multiple of capacity
     */
    explicit LirsPolicy(std::size_t capacity_blocks,
                        double hir_fraction = 0.05,
                        double ghost_factor = 3.0);

    const char *name() const override { return "LIRS"; }

    void onAccess(const BlockId &block, Time now, std::size_t idx,
                  bool hit) override;
    void onRemove(const BlockId &block) override;
    BlockId evict(Time now, std::size_t idx) override;

    std::size_t lirCount() const { return numLir; }
    std::size_t hirResidentCount() const { return queue.size(); }

    /** Internal consistency check (test hook). */
    void validate() const;

  private:
    enum class Status : uint8_t
    {
        Lir,         //!< resident, pinned
        HirResident, //!< resident, in Q (eviction candidate)
        HirGhost,    //!< non-resident history entry in S
    };

    struct Entry
    {
        Status status;
        bool inStack = false;
        std::list<BlockId>::iterator stackIt; //!< valid if inStack
        bool inQueue = false;
        std::list<BlockId>::iterator queueIt; //!< valid if inQueue
    };

    void stackPushTop(const BlockId &block, Entry &e);
    void stackErase(Entry &e);
    void queuePushBack(const BlockId &block, Entry &e);
    void queueErase(Entry &e);

    /** Remove trailing non-LIR entries so the stack bottom is LIR. */
    void pruneStack();

    /** Demote the LIR block at the stack bottom to resident HIR. */
    void demoteBottomLir();

    /** Drop ghost entries beyond the history bound. */
    void trimGhosts();

    std::size_t cap;
    std::size_t maxLir;   //!< target LIR set size
    std::size_t maxStack; //!< bound on |S| entries

    std::list<BlockId> stack; //!< front = top (MRU)
    std::list<BlockId> queue; //!< front = oldest resident HIR

    std::unordered_map<BlockId, Entry> table;
    std::size_t numLir = 0;
    std::size_t numGhosts = 0;
};

} // namespace pacache

#endif // PACACHE_CACHE_LIRS_HH
