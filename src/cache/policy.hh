/**
 * @file
 * Replacement policy interface for the storage cache.
 *
 * The cache tells the policy about every block access (with a
 * monotonically increasing access index that off-line policies use
 * to index their future knowledge) and asks it to surrender a victim
 * when the cache is full. Policies must track exactly the set of
 * blocks the cache holds: every block reported via a miss access is
 * resident until returned by evict() or passed to onRemove().
 */

#ifndef PACACHE_CACHE_POLICY_HH
#define PACACHE_CACHE_POLICY_HH

#include <cstddef>
#include <vector>

#include "cache/future.hh"
#include "sim/types.hh"

namespace pacache
{

/** Abstract cache replacement policy. */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Human-readable policy name ("LRU", "Belady", ...). */
    virtual const char *name() const = 0;

    /**
     * Off-line hook: called once before the run with the full
     * block-granular access stream. On-line policies ignore it.
     */
    virtual void prepare(const std::vector<BlockAccess> &) {}

    /**
     * Notification of an access to @p block at time @p now.
     * @param idx  global index of this access in the expanded stream
     * @param hit  true if the block was resident before the access
     */
    virtual void onAccess(const BlockId &block, Time now, std::size_t idx,
                          bool hit) = 0;

    /**
     * Called on every miss, before a potential evict() for the same
     * access. Lets policies that keep ghost history (ARC, MQ) adapt
     * to the incoming block before choosing a victim.
     */
    virtual void beforeMiss(const BlockId &, Time, std::size_t) {}

    /**
     * Remove a specific resident block from the policy's books
     * (external invalidation or migration between wrapped policies).
     */
    virtual void onRemove(const BlockId &block) = 0;

    /**
     * Choose a victim, remove it from the policy's books, and return
     * it. Only called when at least one block is resident.
     */
    virtual BlockId evict(Time now, std::size_t idx) = 0;

    /**
     * Off-line policies index their future knowledge by access
     * position, so speculative insertions (prefetch) would corrupt
     * their books; they override this to false.
     */
    virtual bool supportsPrefetch() const { return true; }

    /**
     * Off-line policies consume future knowledge built from the whole
     * access stream in prepare(), so streaming drivers must
     * materialize the trace for them; they override this to true.
     */
    virtual bool isOffline() const { return false; }

    /**
     * True when this policy can replay a stream it has never seen
     * materialized. On-line policies always can; off-line ones only
     * when armed with out-of-core future knowledge (the windowed
     * oracles override this once prepareWindowed() has run).
     */
    virtual bool streamReady() const { return !isOffline(); }
};

} // namespace pacache

#endif // PACACHE_CACHE_POLICY_HH
