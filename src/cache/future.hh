/**
 * @file
 * Block-granular access streams and off-line future knowledge.
 *
 * The storage cache operates on single blocks, so multi-block trace
 * requests are expanded into per-block accesses. Off-line policies
 * (Belady, OPG) additionally need, for every access, the index of the
 * *next* access to the same block and whether the access is the first
 * ever to its block (a cold miss); FutureKnowledge precomputes both
 * in O(n).
 */

#ifndef PACACHE_CACHE_FUTURE_HH
#define PACACHE_CACHE_FUTURE_HH

#include <cstddef>
#include <vector>

#include "sim/types.hh"
#include "trace/trace.hh"

namespace pacache
{

/** One block-granular cache access. */
struct BlockAccess
{
    Time time = 0;
    BlockId block;
    bool write = false;
    std::size_t traceIndex = 0; //!< index of the originating request
};

/**
 * Expand a trace into block-granular accesses. The output vector is
 * reserved exactly from the trace's cached block-access count (which
 * ultimately derives from the TraceSource size hints), so expansion
 * never reallocates.
 */
std::vector<BlockAccess> expandTrace(const Trace &trace);

/**
 * Next-use and cold-miss precomputation for off-line policies.
 *
 * Stored as structure-of-arrays: the next-use chain, the cold-miss
 * bits, and a copy of the access times each live in their own dense
 * array. Oracle replay touches times and next-use indices millions of
 * times through gap pricing; reading them from 8-byte-stride arrays
 * instead of the 40-byte BlockAccess records keeps the hot loop's
 * memory traffic to the fields it actually uses.
 */
class FutureKnowledge
{
  public:
    /** Sentinel: the block is never accessed again. */
    static constexpr std::size_t kNever = static_cast<std::size_t>(-1);
    /** Materialized provider: consumers may hold the whole stream. */
    static constexpr bool kStreaming = false;

    /** Build from an expanded access stream. */
    static FutureKnowledge build(const std::vector<BlockAccess> &accesses);

    /**
     * Retained original build, used by the reference policies: a
     * node-based std::unordered_map keyed by the full BlockId. Same
     * output as build() — the reference replay path keeps the whole
     * legacy stack behind the policy interface so old-vs-new
     * comparisons time the stacks as they actually were.
     */
    static FutureKnowledge
    buildRef(const std::vector<BlockAccess> &accesses);

    /** Index of the next access to the same block (kNever if none). */
    std::size_t nextUse(std::size_t idx) const { return next[idx]; }

    /** True if access idx is the first ever to its block. */
    bool isFirstReference(std::size_t idx) const { return first[idx]; }

    /** Time of access idx (the SoA copy of BlockAccess::time). */
    Time timeOf(std::size_t idx) const { return times[idx]; }

    std::size_t size() const { return next.size(); }

  private:
    std::vector<std::size_t> next;
    std::vector<Time> times;
    std::vector<bool> first;
};

} // namespace pacache

#endif // PACACHE_CACHE_FUTURE_HH
