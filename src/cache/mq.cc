#include "cache/mq.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pacache
{

MqPolicy::MqPolicy(const Params &params) : p(params), queues(p.numQueues)
{
    PACACHE_ASSERT(p.numQueues > 0, "MQ needs at least one queue");
    PACACHE_ASSERT(p.lifeTime > 0, "MQ lifeTime must be positive");
}

std::size_t
MqPolicy::queueFor(uint64_t ref_count) const
{
    std::size_t q = 0;
    while (ref_count > 1 && q + 1 < p.numQueues) {
        ref_count >>= 1;
        ++q;
    }
    return q;
}

void
MqPolicy::insert(const BlockId &block, uint64_t ref_count)
{
    const std::size_t q = queueFor(ref_count);
    queues[q].push_back(Entry{block, ref_count, clock + p.lifeTime});
    index[block] = Locator{q, std::prev(queues[q].end())};
}

void
MqPolicy::demoteExpired()
{
    // Check the LRU end of every queue above Q0 and demote entries
    // whose lifetime lapsed (MQ's "adjust" step).
    for (std::size_t q = p.numQueues; q-- > 1;) {
        while (!queues[q].empty() &&
               queues[q].front().expireAt < clock) {
            Entry e = queues[q].front();
            queues[q].pop_front();
            e.expireAt = clock + p.lifeTime;
            queues[q - 1].push_back(e);
            index[e.block] = Locator{q - 1,
                                     std::prev(queues[q - 1].end())};
        }
    }
}

void
MqPolicy::ghostRemember(const BlockId &block, uint64_t ref_count)
{
    auto git = ghosts.find(block);
    if (git != ghosts.end()) {
        ghostOrder.erase(git->second);
        ghosts.erase(git);
    }
    ghostOrder.emplace_back(block, ref_count);
    ghosts[block] = std::prev(ghostOrder.end());
    while (ghostOrder.size() > p.ghostCapacity) {
        ghosts.erase(ghostOrder.front().first);
        ghostOrder.pop_front();
    }
}

void
MqPolicy::beforeMiss(const BlockId &block, Time, std::size_t)
{
    auto git = ghosts.find(block);
    if (git != ghosts.end()) {
        pendingRefCount = git->second->second;
        ghostOrder.erase(git->second);
        ghosts.erase(git);
    } else {
        pendingRefCount = 0;
    }
}

void
MqPolicy::onAccess(const BlockId &block, Time, std::size_t, bool hit)
{
    ++clock;
    if (hit) {
        auto it = index.find(block);
        PACACHE_ASSERT(it != index.end(), "MQ hit on unknown block");
        Entry e = *it->second.it;
        queues[it->second.queue].erase(it->second.it);
        ++e.refCount;
        e.expireAt = clock + p.lifeTime;
        const std::size_t q = queueFor(e.refCount);
        queues[q].push_back(e);
        index[block] = Locator{q, std::prev(queues[q].end())};
    } else {
        insert(block, pendingRefCount + 1);
        pendingRefCount = 0;
    }
    demoteExpired();
}

void
MqPolicy::onRemove(const BlockId &block)
{
    auto it = index.find(block);
    PACACHE_ASSERT(it != index.end(), "MQ removal of unknown block");
    queues[it->second.queue].erase(it->second.it);
    index.erase(it);
}

BlockId
MqPolicy::evict(Time, std::size_t)
{
    for (auto &q : queues) {
        if (q.empty())
            continue;
        Entry e = q.front();
        q.pop_front();
        index.erase(e.block);
        ghostRemember(e.block, e.refCount);
        return e.block;
    }
    PACACHE_PANIC("MQ evict on empty cache");
}

} // namespace pacache
