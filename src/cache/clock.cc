#include "cache/clock.hh"

#include "util/logging.hh"

namespace pacache
{

void
ClockPolicy::advanceHand()
{
    ++hand;
    if (hand == ring.end())
        hand = ring.begin();
}

void
ClockPolicy::onAccess(const BlockId &block, Time, std::size_t, bool hit)
{
    if (hit) {
        auto it = index.find(block);
        PACACHE_ASSERT(it != index.end(), "CLOCK hit on unknown block");
        it->second->referenced = true;
        return;
    }
    // Insert just before the hand (i.e. at the "oldest" position the
    // hand will reach last).
    auto pos = hand == ring.end() ? ring.end() : hand;
    auto it = ring.insert(pos, Entry{block, false});
    index[block] = it;
    if (hand == ring.end())
        hand = it;
}

void
ClockPolicy::onRemove(const BlockId &block)
{
    auto it = index.find(block);
    PACACHE_ASSERT(it != index.end(), "CLOCK removal of unknown block");
    if (it->second == hand) {
        advanceHand();
        if (ring.size() == 1)
            hand = ring.end();
    }
    ring.erase(it->second);
    index.erase(it);
    if (ring.empty())
        hand = ring.end();
}

BlockId
ClockPolicy::evict(Time, std::size_t)
{
    PACACHE_ASSERT(!ring.empty(), "CLOCK evict on empty cache");
    while (hand->referenced) {
        hand->referenced = false;
        advanceHand();
    }
    BlockId victim = hand->block;
    auto dead = hand;
    advanceHand();
    if (ring.size() == 1)
        hand = ring.end();
    ring.erase(dead);
    index.erase(victim);
    return victim;
}

} // namespace pacache
