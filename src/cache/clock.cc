#include "cache/clock.hh"

#include "util/logging.hh"

namespace pacache
{

void
ClockPolicy::onAccess(const BlockId &block, Time, std::size_t, bool hit)
{
    if (hit) {
        Ring::Node **node = index.find(block);
        PACACHE_ASSERT(node, "CLOCK hit on unknown block");
        (*node)->value.referenced = true;
        return;
    }
    // Insert just before the hand (i.e. at the "oldest" position the
    // hand will reach last).
    Ring::Node *n = ring.insertBefore(hand, Entry{block, false});
    index.emplace(block, n);
    if (!hand)
        hand = n;
}

void
ClockPolicy::onRemove(const BlockId &block)
{
    Ring::Node **found = index.find(block);
    PACACHE_ASSERT(found, "CLOCK removal of unknown block");
    Ring::Node *node = *found;
    if (node == hand)
        hand = ring.size() == 1 ? nullptr : after(node);
    ring.unlink(node);
    index.erase(block);
}

BlockId
ClockPolicy::evict(Time, std::size_t)
{
    PACACHE_ASSERT(!ring.empty(), "CLOCK evict on empty cache");
    while (hand->value.referenced) {
        hand->value.referenced = false;
        hand = after(hand);
    }
    const BlockId victim = hand->value.block;
    Ring::Node *dead = hand;
    hand = ring.size() == 1 ? nullptr : after(dead);
    ring.unlink(dead);
    index.erase(victim);
    return victim;
}

} // namespace pacache
