#include "cache/lru.hh"

#include "util/logging.hh"

namespace pacache
{

void
LruStack::touch(const BlockId &block)
{
    auto it = index.find(block);
    if (it != index.end())
        order.erase(it->second);
    order.push_front(block);
    index[block] = order.begin();
}

bool
LruStack::remove(const BlockId &block)
{
    auto it = index.find(block);
    if (it == index.end())
        return false;
    order.erase(it->second);
    index.erase(it);
    return true;
}

BlockId
LruStack::popLru()
{
    PACACHE_ASSERT(!order.empty(), "popLru on empty stack");
    BlockId victim = order.back();
    order.pop_back();
    index.erase(victim);
    return victim;
}

void
LruPolicy::onRemove(const BlockId &block)
{
    const bool present = stack.remove(block);
    PACACHE_ASSERT(present, "LRU removal of unknown block");
}

BlockId
LruPolicy::evict(Time, std::size_t)
{
    return stack.popLru();
}

} // namespace pacache
