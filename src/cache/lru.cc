#include "cache/lru.hh"

#include "util/logging.hh"

namespace pacache
{

void
LruStack::touch(const BlockId &block)
{
    if (Order::Node **node = index.find(block)) {
        order.moveToFront(*node);
        return;
    }
    index.emplace(block, order.pushFront(block));
}

bool
LruStack::remove(const BlockId &block)
{
    Order::Node **node = index.find(block);
    if (!node)
        return false;
    order.unlink(*node);
    index.erase(block);
    return true;
}

BlockId
LruStack::popLru()
{
    PACACHE_ASSERT(!order.empty(), "popLru on empty stack");
    const BlockId victim = order.popBack();
    index.erase(victim);
    return victim;
}

void
LruPolicy::onRemove(const BlockId &block)
{
    const bool present = stack.remove(block);
    PACACHE_ASSERT(present, "LRU removal of unknown block");
}

BlockId
LruPolicy::evict(Time, std::size_t)
{
    return stack.popLru();
}

} // namespace pacache
