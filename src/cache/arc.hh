/**
 * @file
 * ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST'03), one of
 * the modern policies the paper names as candidates for the PA
 * treatment.
 *
 * Resident blocks live in T1 (recency) or T2 (frequency); evicted
 * blocks leave ghosts in B1/B2. A ghost hit adapts the target size p
 * of T1. The framework drives evictions externally, so REPLACE runs
 * inside evict() using the ghost-hit information captured by
 * beforeMiss().
 */

#ifndef PACACHE_CACHE_ARC_HH
#define PACACHE_CACHE_ARC_HH

#include "cache/lru.hh"
#include "cache/policy.hh"

namespace pacache
{

/** ARC replacement policy. */
class ArcPolicy : public ReplacementPolicy
{
  public:
    /** @param capacity_blocks must match the cache capacity. */
    explicit ArcPolicy(std::size_t capacity_blocks);

    const char *name() const override { return "ARC"; }

    void beforeMiss(const BlockId &block, Time now,
                    std::size_t idx) override;
    void onAccess(const BlockId &block, Time now, std::size_t idx,
                  bool hit) override;
    void onRemove(const BlockId &block) override;
    BlockId evict(Time now, std::size_t idx) override;

    /** Current adaptation target for |T1| (test hook). */
    double targetT1() const { return p; }

    std::size_t t1Size() const { return t1.size(); }
    std::size_t t2Size() const { return t2.size(); }

  private:
    void trimGhosts();

    std::size_t c;   //!< capacity
    double p = 0;    //!< target size of T1

    LruStack t1, t2; //!< resident
    LruStack b1, b2; //!< ghosts

    /** Where beforeMiss found the incoming block. */
    enum class GhostHit { None, B1, B2 };
    GhostHit pendingGhost = GhostHit::None;
};

} // namespace pacache

#endif // PACACHE_CACHE_ARC_HH
