/**
 * @file
 * Bounded lock-free multi-producer/multi-consumer ring (Vyukov's
 * bounded MPMC queue). The serving front-end uses one ring per cache
 * stripe as the in-process request channel: load-generator threads
 * (or the trace-replay producer) push ServeRequests, worker threads
 * pop them under the stripe lock.
 *
 * Each slot carries a sequence number; a producer claims a slot by
 * CAS on the enqueue cursor and publishes with a release store of
 * the sequence, a consumer symmetrically on the dequeue cursor.
 * Per-producer FIFO order is preserved, which is what serve-mode
 * determinism needs: the replay producer is single-threaded, so each
 * stripe sees its partition of the trace in trace order.
 */

#ifndef PACACHE_SERVE_REQUEST_RING_HH
#define PACACHE_SERVE_REQUEST_RING_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace pacache::serve
{

/** Bounded MPMC FIFO; capacity must be a power of two. */
template <typename T>
class RequestRing
{
  public:
    explicit RequestRing(std::size_t capacity)
        : slots(capacity), mask(capacity - 1)
    {
        PACACHE_ASSERT(capacity >= 2 && (capacity & mask) == 0,
                       "ring capacity must be a power of two >= 2");
        for (std::size_t i = 0; i < capacity; ++i)
            slots[i].seq.store(i, std::memory_order_relaxed);
    }

    RequestRing(const RequestRing &) = delete;
    RequestRing &operator=(const RequestRing &) = delete;

    /** Try to enqueue; false when the ring is full. */
    bool
    tryPush(const T &value)
    {
        std::size_t pos = enqueuePos.load(std::memory_order_relaxed);
        for (;;) {
            Slot &slot = slots[pos & mask];
            const std::size_t seq =
                slot.seq.load(std::memory_order_acquire);
            const std::intptr_t diff =
                static_cast<std::intptr_t>(seq) -
                static_cast<std::intptr_t>(pos);
            if (diff == 0) {
                if (enqueuePos.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    slot.value = value;
                    slot.seq.store(pos + 1, std::memory_order_release);
                    return true;
                }
            } else if (diff < 0) {
                return false; // full: slot not yet consumed
            } else {
                pos = enqueuePos.load(std::memory_order_relaxed);
            }
        }
    }

    /** Try to dequeue; false when the ring is empty. */
    bool
    tryPop(T &out)
    {
        std::size_t pos = dequeuePos.load(std::memory_order_relaxed);
        for (;;) {
            Slot &slot = slots[pos & mask];
            const std::size_t seq =
                slot.seq.load(std::memory_order_acquire);
            const std::intptr_t diff =
                static_cast<std::intptr_t>(seq) -
                static_cast<std::intptr_t>(pos + 1);
            if (diff == 0) {
                if (dequeuePos.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    out = slot.value;
                    slot.seq.store(pos + mask + 1,
                                   std::memory_order_release);
                    return true;
                }
            } else if (diff < 0) {
                return false; // empty: slot not yet produced
            } else {
                pos = dequeuePos.load(std::memory_order_relaxed);
            }
        }
    }

    /**
     * Approximate emptiness: exact once producers have stopped (the
     * cursors are then quiescent), which is the only point the
     * server's shutdown protocol consults it.
     */
    bool
    empty() const
    {
        return dequeuePos.load(std::memory_order_acquire) ==
               enqueuePos.load(std::memory_order_acquire);
    }

    std::size_t capacity() const { return slots.size(); }

  private:
    struct Slot
    {
        std::atomic<std::size_t> seq;
        T value;
    };

    static constexpr std::size_t kCacheLine = 64;

    std::vector<Slot> slots;
    std::size_t mask;
    alignas(kCacheLine) std::atomic<std::size_t> enqueuePos{0};
    alignas(kCacheLine) std::atomic<std::size_t> dequeuePos{0};
};

} // namespace pacache::serve

#endif // PACACHE_SERVE_REQUEST_RING_HH
