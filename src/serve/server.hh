/**
 * @file
 * Sharded concurrent serving front-end over the cache + write-policy
 * + DPM kernel (ROADMAP open item 1).
 *
 * The server partitions the disk array into `shards` stripes
 * (stripeOf(disk) = disk mod shards); each stripe owns a complete,
 * independently-locked simulation stack — event queue, cache slice
 * with its own replacement policy, PA classifier, DPM instance, disk
 * array, optional WTDU log device — wrapped in one incremental
 * StorageSystem. Because every disk's power-state machine, energy
 * accounting, and event queue live in exactly one stripe, disk
 * transitions are naturally serialized through that stripe's lock
 * (the per-disk DPM actor of DESIGN.md 5g) and the PR 6 energy
 * ledger stays conservation-exact under any thread count.
 *
 * Thread model: producers push ServeRequests into per-stripe MPMC
 * rings; `threads` workers sweep the stripes with try_lock and drain
 * batches under the stripe lock. The stripe count is the *semantic*
 * parameter (it decides the cache partition and per-stripe Bloom
 * filters); the thread count is pure execution — results are
 * identical for any `threads` at a fixed `shards`, and `shards == 1`
 * reproduces the single-threaded replay bit for bit (the
 * serve_matches_replay fuzz property and `pacache_serve
 * --verify-replay` check exactly this).
 */

#ifndef PACACHE_SERVE_SERVER_HH
#define PACACHE_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/experiment.hh"
#include "util/log_histogram.hh"

namespace pacache
{
class Trace;
}

namespace pacache::serve
{

/** One request on the wire between producers and stripe workers. */
struct ServeRequest
{
    Time time = 0;     //!< simulated arrival (open loop)
    BlockId block;
    bool write = false;
    uint64_t traceIndex = 0; //!< originating trace record
    uint64_t idx = 0;        //!< stream index (policy bookkeeping)
    uint64_t submitNs = 0;   //!< host submit stamp; 0 = unsampled
};

/** Server topology and kernel configuration. */
struct ServeConfig
{
    /**
     * Kernel configuration (policy, DPM, write policy, cache size,
     * disk spec, PA parameters). Off-line policies (Belady, OPG,
     * InfiniteCache) cannot serve — they need the whole future.
     * observer/profiler must be null: serve-path metrics go through
     * shard-local state instead (see src/obs/metrics.hh).
     */
    ExperimentConfig exp;
    std::size_t numDisks = 16;
    std::size_t shards = 1;  //!< semantic: cache/disk partition count
    std::size_t threads = 1; //!< execution only; any value, same result
    std::size_t ringCapacity = 4096; //!< per-stripe, power of two
    std::size_t batch = 64;  //!< max pops per stripe-lock acquisition
};

/** Per-stripe report. */
struct ShardSummary
{
    uint64_t requests = 0;
    uint64_t hits = 0;
    Energy energy = 0;           //!< owned disks + log service (J)
    double ledgerRelError = 0.0; //!< conservation over owned disks
};

/** Everything a serve run produces. */
struct ServeResult
{
    /** Merged kernel statistics, shaped exactly like a replay's. */
    ExperimentResult result;
    /** Host-clock request latency (s) over sampled requests. */
    LogHistogram latency;
    std::vector<ShardSummary> shards;
    double ledgerMaxRelError = 0.0;
    bool ledgerConserves = false;
};

/** The sharded server. Lifecycle: ctor -> start -> submit* -> finish. */
class ServeServer
{
  public:
    explicit ServeServer(const ServeConfig &config);
    ~ServeServer();

    ServeServer(const ServeServer &) = delete;
    ServeServer &operator=(const ServeServer &) = delete;

    /** Owning stripe of @p disk. */
    std::size_t shardOf(DiskId disk) const { return disk % numShards; }

    /** Spawn the worker threads. */
    void start();

    /**
     * Enqueue one request (any thread). Spins with yield while the
     * owning stripe's ring is full — open-loop producers absorb the
     * backpressure. Must not race with finish().
     */
    void submit(const ServeRequest &req);

    /**
     * Stop the workers once every ring has drained, close each
     * stripe's simulation at the shared horizon derived from
     * @p end_time (the last request's simulated arrival), and merge
     * the per-stripe statistics. Call after all producers stopped.
     */
    ServeResult finish(Time end_time);

    /**
     * Drive @p trace through a server built from @p config (numDisks
     * taken from the trace) and return the merged result; with
     * config.shards == 1 the result is bit-identical to
     * runExperiment() on the same trace at any thread count.
     */
    static ServeResult replayTrace(const Trace &trace,
                                   const ServeConfig &config);

    const ServeConfig &config() const { return cfg; }

    /**
     * Stripe @p shard's WTDU log image (null unless the write policy
     * is WTDU). For crash-recovery tests: after a finish() that threw
     * CrashException the image is frozen exactly as the simulated
     * power failure left it.
     */
    const WtduLog *shardWtduLog(std::size_t shard) const;

  private:
    struct Shard;

    void workerLoop();
    bool pumpShard(Shard &shard);
    void processOne(Shard &shard, const ServeRequest &req);
    bool allRingsEmpty() const;

    ServeConfig cfg;
    std::size_t numShards;
    PowerModel pm;
    ServiceModel sm;
    std::vector<std::unique_ptr<Shard>> stripes;
    std::vector<std::thread> workers;
    std::atomic<bool> done{false};
    bool started = false;
    bool finished = false;
};

} // namespace pacache::serve

#endif // PACACHE_SERVE_SERVER_HH
