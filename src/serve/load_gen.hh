/**
 * @file
 * Open-loop load generator for the sharded server: N producer
 * threads submit a fixed total number of requests whose *simulated*
 * arrival times follow a configured rate (open loop — arrivals never
 * wait for completions, matching the trace-driven methodology), with
 * Zipf-distributed keys and a configured read/write mix. Every
 * decision derives from the producer's own SplitMix64 stream and the
 * request's global slot index, so a workload is reproducible for a
 * given (seed, producers) pair regardless of host timing.
 */

#ifndef PACACHE_SERVE_LOAD_GEN_HH
#define PACACHE_SERVE_LOAD_GEN_HH

#include <cstddef>
#include <cstdint>

namespace pacache::serve
{

class ServeServer;

/** Synthetic open-loop workload parameters. */
struct LoadGenConfig
{
    std::size_t producers = 1;
    uint64_t requests = 1000000;   //!< total across all producers
    double arrivalRate = 100000.0; //!< simulated requests/second
    double writeRatio = 0.3;
    double zipfTheta = 0.9;        //!< per-disk block skew; 0 = uniform
    uint64_t blocksPerDisk = 1u << 20;
    uint64_t seed = 1;
    /** Stamp every Nth request with a host clock for the latency
     *  histogram; 0 disables sampling entirely. */
    std::size_t latencySampleEvery = 64;
};

/** What the generator measured on the host. */
struct LoadGenReport
{
    uint64_t submitted = 0;
    double wallSeconds = 0.0; //!< producers started -> all submitted
};

/**
 * Run the workload against @p server (which must be started and is
 * NOT finished here — the caller still owns finish()). Blocks until
 * every producer has submitted its share.
 */
LoadGenReport runLoadGen(ServeServer &server, const LoadGenConfig &cfg);

} // namespace pacache::serve

#endif // PACACHE_SERVE_LOAD_GEN_HH
