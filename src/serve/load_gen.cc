#include "serve/load_gen.hh"

#include <chrono>
#include <thread>
#include <vector>

#include "serve/server.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace pacache::serve
{

namespace
{

uint64_t
hostNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
producerMain(ServeServer &server, const LoadGenConfig &cfg,
             const ZipfSampler &zipf, std::size_t producer)
{
    const std::size_t num_disks = server.config().numDisks;
    Rng rng(cfg.seed * 0x9e3779b97f4a7c15ULL + producer);
    ServeRequest req;
    // Producer p owns global slots p, p+P, p+2P, ...; the slot index
    // fixes both the simulated arrival time and the policy stream
    // index, so the workload is host-timing independent.
    for (uint64_t n = producer; n < cfg.requests;
         n += cfg.producers) {
        req.time = static_cast<double>(n) / cfg.arrivalRate;
        const DiskId disk =
            static_cast<DiskId>(rng.below(num_disks));
        req.block = BlockId{disk, zipf.sample(rng)};
        req.write = rng.chance(cfg.writeRatio);
        req.traceIndex = n;
        req.idx = n;
        req.submitNs = cfg.latencySampleEvery != 0 &&
                               n % cfg.latencySampleEvery == 0
                           ? hostNowNs()
                           : 0;
        server.submit(req);
    }
}

} // namespace

LoadGenReport
runLoadGen(ServeServer &server, const LoadGenConfig &cfg)
{
    PACACHE_ASSERT(cfg.producers >= 1, "need at least one producer");
    PACACHE_ASSERT(cfg.arrivalRate > 0, "arrival rate must be positive");
    PACACHE_ASSERT(cfg.blocksPerDisk >= 1, "need at least one block");

    // One shared inverted-CDF table; sampling from it is const.
    const ZipfSampler zipf(
        static_cast<std::size_t>(cfg.blocksPerDisk), cfg.zipfTheta);

    const uint64_t t0 = hostNowNs();
    std::vector<std::thread> producers;
    producers.reserve(cfg.producers);
    for (std::size_t p = 0; p < cfg.producers; ++p) {
        producers.emplace_back([&server, &cfg, &zipf, p] {
            producerMain(server, cfg, zipf, p);
        });
    }
    for (auto &t : producers)
        t.join();

    LoadGenReport report;
    report.submitted = cfg.requests;
    report.wallSeconds =
        static_cast<double>(hostNowNs() - t0) * 1e-9;
    return report;
}

} // namespace pacache::serve
