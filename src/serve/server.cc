#include "serve/server.hh"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "cache/future.hh"
#include "disk/disk_array.hh"
#include "disk/dpm.hh"
#include "disk/oracle_dpm.hh"
#include "obs/energy_ledger.hh"
#include "serve/request_ring.hh"
#include "sim/event_queue.hh"
#include "trace/trace.hh"
#include "util/logging.hh"

namespace pacache::serve
{

namespace
{

uint64_t
hostNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

/**
 * One stripe: a complete, independently-locked simulation stack.
 * The disk array is sized to the full disk count so ids need no
 * remapping; only the stripe's owned disks ever receive traffic, and
 * finish() reads statistics for owned disks exclusively.
 */
struct ServeServer::Shard
{
    Shard(const ServeConfig &cfg, const PowerModel &pm,
          const ServiceModel &sm, std::size_t capacity,
          std::size_t num_disks)
        : ring(cfg.ringCapacity), practical(pm), adaptive(pm)
    {
        if (policyNeedsClassifier(cfg.exp.policy)) {
            classifier = std::make_unique<PaClassifier>(
                num_disks, resolvePaParams(cfg.exp, pm));
        }
        policy = makeReplacementPolicy(cfg.exp, pm, classifier.get(),
                                       capacity);
        cache = std::make_unique<Cache>(capacity, *policy);

        Dpm *dpm = &static_cast<Dpm &>(alwaysOn);
        if (cfg.exp.dpm == DpmChoice::Practical)
            dpm = &practical;
        else if (cfg.exp.dpm == DpmChoice::Adaptive)
            dpm = &adaptive;
        disks = std::make_unique<DiskArray>(num_disks, eq, pm, sm,
                                            *dpm, cfg.exp.disk);

        if (cfg.exp.storage.writePolicy ==
            WritePolicy::WriteThroughDeferredUpdate) {
            logDisk = std::make_unique<Disk>(
                static_cast<DiskId>(num_disks), eq, pm, sm, alwaysOn,
                DiskOptions{});
        }
        system = std::make_unique<StorageSystem>(
            eq, *cache, *disks, cfg.exp.storage, classifier.get(),
            logDisk.get());
    }

    std::mutex mu; //!< guards everything below the ring
    RequestRing<ServeRequest> ring;
    EventQueue eq;
    AlwaysOnDpm alwaysOn;
    PracticalDpm practical;
    AdaptiveDpm adaptive;
    std::unique_ptr<PaClassifier> classifier;
    std::unique_ptr<ReplacementPolicy> policy;
    std::unique_ptr<Cache> cache;
    std::unique_ptr<DiskArray> disks;
    std::unique_ptr<Disk> logDisk;
    std::unique_ptr<StorageSystem> system;
    Time lastTime = 0;      //!< monotone clamp of request times
    uint64_t processed = 0;
    LogHistogram latency;   //!< host seconds, sampled requests only
};

ServeServer::ServeServer(const ServeConfig &config)
    : cfg(config), numShards(config.shards), pm(config.exp.spec),
      sm(config.exp.spec, config.exp.service)
{
    PACACHE_ASSERT(numShards >= 1, "need at least one stripe");
    PACACHE_ASSERT(cfg.threads >= 1, "need at least one worker");
    PACACHE_ASSERT(cfg.numDisks >= 1, "need at least one disk");
    PACACHE_ASSERT(!policyNeedsFuture(cfg.exp.policy),
                   policyKindName(cfg.exp.policy),
                   " needs the whole future and cannot serve");
    PACACHE_ASSERT(!cfg.exp.observer && !cfg.exp.profiler,
                   "serve mode takes no observer/profiler; metrics "
                   "are shard-local (see src/obs/metrics.hh)");

    const std::size_t base = cfg.exp.cacheBlocks / numShards;
    const std::size_t extra = cfg.exp.cacheBlocks % numShards;
    stripes.reserve(numShards);
    for (std::size_t i = 0; i < numShards; ++i) {
        const std::size_t capacity = base + (i < extra ? 1 : 0);
        PACACHE_ASSERT(capacity >= 1, "cache of ", cfg.exp.cacheBlocks,
                       " blocks cannot split into ", numShards,
                       " stripes");
        stripes.push_back(std::make_unique<Shard>(cfg, pm, sm,
                                                  capacity,
                                                  cfg.numDisks));
    }
}

ServeServer::~ServeServer()
{
    if (started && !finished) {
        done.store(true, std::memory_order_release);
        for (auto &w : workers)
            w.join();
    }
}

void
ServeServer::start()
{
    PACACHE_ASSERT(!started, "ServeServer::start called twice");
    started = true;
    workers.reserve(cfg.threads);
    for (std::size_t t = 0; t < cfg.threads; ++t)
        workers.emplace_back([this] { workerLoop(); });
}

void
ServeServer::submit(const ServeRequest &req)
{
    PACACHE_ASSERT(started && !finished,
                   "submit outside start()..finish()");
    PACACHE_ASSERT(req.block.disk < cfg.numDisks,
                   "disk id out of range");
    Shard &shard = *stripes[shardOf(req.block.disk)];
    while (!shard.ring.tryPush(req))
        std::this_thread::yield();
}

void
ServeServer::workerLoop()
{
    for (;;) {
        bool any = false;
        for (auto &stripe : stripes)
            any = pumpShard(*stripe) || any;
        if (!any) {
            // Exactness of empty() needs quiescent producers, which
            // the shutdown contract guarantees: done is set only
            // after every producer stopped.
            if (done.load(std::memory_order_acquire) &&
                allRingsEmpty()) {
                return;
            }
            std::this_thread::yield();
        }
    }
}

bool
ServeServer::pumpShard(Shard &shard)
{
    std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
    if (!lock.owns_lock())
        return false;
    bool any = false;
    ServeRequest req;
    for (std::size_t n = 0;
         n < cfg.batch && shard.ring.tryPop(req); ++n) {
        processOne(shard, req);
        any = true;
    }
    return any;
}

void
ServeServer::processOne(Shard &shard, const ServeRequest &req)
{
    // Per-stripe simulated time must be monotone (the event queue
    // cannot run backwards). In replay mode the stripe's subsequence
    // of a monotone trace is monotone and the clamp is a no-op; the
    // open-loop generator's cross-producer interleave may need it.
    const Time t = req.time < shard.lastTime ? shard.lastTime
                                             : req.time;
    shard.lastTime = t;
    shard.system->step(
        BlockAccess{t, req.block, req.write,
                    static_cast<std::size_t>(req.traceIndex)},
        static_cast<std::size_t>(req.idx));
    ++shard.processed;
    if (req.submitNs != 0)
        shard.latency.record(
            static_cast<double>(hostNowNs() - req.submitNs) * 1e-9);
}

bool
ServeServer::allRingsEmpty() const
{
    for (const auto &stripe : stripes) {
        if (!stripe->ring.empty())
            return false;
    }
    return true;
}

ServeResult
ServeServer::finish(Time end_time)
{
    PACACHE_ASSERT(started, "finish() before start()");
    PACACHE_ASSERT(!finished, "ServeServer::finish called twice");
    finished = true;
    done.store(true, std::memory_order_release);
    for (auto &w : workers)
        w.join();
    workers.clear();
    PACACHE_ASSERT(allRingsEmpty(), "workers exited with work left");

    ServeResult out;
    ExperimentResult &r = out.result;
    r.policyName = policyKindName(cfg.exp.policy);
    r.numModes = pm.numModes();

    for (auto &stripe : stripes)
        stripe->system->finish(end_time);

    // Per-disk statistics come from each disk's owning stripe; the
    // other stripes' replicas of that disk never saw traffic and
    // their idle-only energy is deliberately not charged.
    const OracleAnalyzer oracle(pm);
    r.energy = EnergyStats(pm.numModes());
    r.perDisk.reserve(cfg.numDisks);
    for (DiskId d = 0; d < cfg.numDisks; ++d) {
        Shard &owner = *stripes[shardOf(d)];
        EnergyStats stats = cfg.exp.dpm == DpmChoice::Oracle
            ? oracle.priceDisk(owner.disks->disk(d)).stats
            : owner.disks->disk(d).energy();
        r.energy += stats;
        r.perDisk.push_back(std::move(stats));
        r.diskAccesses.push_back(owner.system->diskAccesses()[d]);
        r.diskMeanInterArrival.push_back(
            owner.disks->disk(d).meanInterArrival());
    }

    for (auto &stripe : stripes) {
        const CacheStats &cs = stripe->cache->stats();
        r.cache.accesses += cs.accesses;
        r.cache.hits += cs.hits;
        r.cache.misses += cs.misses;
        r.cache.evictions += cs.evictions;
        r.cache.coldMisses += cs.coldMisses;
        r.cache.prefetchInserts += cs.prefetchInserts;
        r.responses.merge(stripe->system->responses());
        r.logWrites += stripe->system->logWrites();
        r.prefetchedBlocks += stripe->system->prefetchedBlocks();
        if (stripe->logDisk) {
            r.logServiceEnergy +=
                stripe->logDisk->energy().serviceEnergy;
        }
        out.latency.merge(stripe->latency);
    }
    r.totalEnergy = r.energy.total() + r.logServiceEnergy;

    out.shards.reserve(numShards);
    for (std::size_t i = 0; i < numShards; ++i) {
        Shard &stripe = *stripes[i];
        ShardSummary sum;
        sum.requests = stripe.processed;
        sum.hits = stripe.cache->stats().hits;
        std::vector<EnergyStats> owned;
        for (DiskId d = 0; d < cfg.numDisks; ++d) {
            if (shardOf(d) != i)
                continue;
            owned.push_back(r.perDisk[d]);
            sum.energy += r.perDisk[d].total();
        }
        if (stripe.logDisk)
            sum.energy += stripe.logDisk->energy().serviceEnergy;
        sum.ledgerRelError = obs::ledgerMaxRelError(owned);
        out.shards.push_back(std::move(sum));
    }
    out.ledgerMaxRelError = obs::ledgerMaxRelError(r.perDisk);
    out.ledgerConserves =
        out.ledgerMaxRelError <= obs::kLedgerConservationTol;
    return out;
}

const WtduLog *
ServeServer::shardWtduLog(std::size_t shard) const
{
    PACACHE_ASSERT(shard < numShards, "stripe ", shard,
                   " out of range (", numShards, " stripes)");
    return stripes[shard]->system->wtduLog();
}

ServeResult
ServeServer::replayTrace(const Trace &trace, const ServeConfig &config)
{
    PACACHE_ASSERT(!trace.empty(), "cannot serve an empty trace");
    ServeConfig cfg = config;
    cfg.numDisks = std::max<std::size_t>(trace.numDisks(), 1);
    ServeServer server(cfg);
    server.start();

    const std::vector<BlockAccess> accesses = expandTrace(trace);
    ServeRequest req;
    for (std::size_t i = 0; i < accesses.size(); ++i) {
        const BlockAccess &acc = accesses[i];
        req.time = acc.time;
        req.block = acc.block;
        req.write = acc.write;
        req.traceIndex = acc.traceIndex;
        req.idx = i;
        req.submitNs = 0;
        server.submit(req);
    }
    return server.finish(trace.endTime());
}

} // namespace pacache::serve
