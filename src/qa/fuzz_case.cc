#include "qa/fuzz_case.hh"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "runner/sweep.hh"
#include "util/logging.hh"

namespace pacache::qa
{

namespace
{

constexpr const char *kHeader = "pacache-corpus v1";

/** One record in corpus trace format (exact-precision time). */
std::string
formatRecord(const TraceRecord &rec)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s %u %" PRIu64 " %u %c",
                  formatExact(rec.time).c_str(), rec.disk, rec.block,
                  rec.numBlocks, rec.write ? 'W' : 'R');
    return buf;
}

[[noreturn]] void
corpusFail(const std::string &name, std::size_t line,
           const std::string &what)
{
    PACACHE_FATAL("corpus file ", name, ":", line, ": ", what);
}

TraceRecord
parseCorpusRecord(const std::string &line, const std::string &name,
                  std::size_t lineno)
{
    TraceRecord rec;
    char rw = 0;
    char trailing = 0;
    const int got =
        std::sscanf(line.c_str(), "%lf %u %" SCNu64 " %u %c %c",
                    &rec.time, &rec.disk, &rec.block, &rec.numBlocks,
                    &rw, &trailing);
    if (got != 5 || (rw != 'R' && rw != 'W'))
        corpusFail(name, lineno, "malformed trace record '" + line + "'");
    if (rec.numBlocks == 0)
        corpusFail(name, lineno, "zero-length trace record");
    rec.write = rw == 'W';
    return rec;
}

} // namespace

std::string
formatExact(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
writeCorpus(std::ostream &os, const CorpusEntry &entry)
{
    const CaseConfig &cfg = entry.fuzzCase.cfg;
    os << kHeader << '\n';
    os << "property: " << entry.meta.property << '\n';
    os << "seed: " << entry.fuzzCase.seed << '\n';
    os << "pre_fix_rev: "
       << (entry.meta.preFixRev.empty() ? "unknown"
                                        : entry.meta.preFixRev)
       << '\n';
    os << "description: " << entry.meta.description << '\n';
    os << "cache_blocks: " << cfg.cacheBlocks << '\n';
    os << "policy: " << runner::policyCliName(cfg.policy) << '\n';
    os << "dpm_kind: "
       << (cfg.dpmKind == DpmKind::Oracle ? "oracle" : "practical")
       << '\n';
    os << "dpm: " << runner::dpmChoiceName(cfg.dpm) << '\n';
    os << "write_policy: " << runner::writePolicyCliName(cfg.writePolicy)
       << '\n';
    os << "wtdu_region_blocks: " << cfg.wtduRegionBlocks << '\n';
    os << "theta: " << formatExact(cfg.theta) << '\n';
    os << "crash_step: " << cfg.crashStep << '\n';
    os << "pa_epoch: " << formatExact(cfg.paEpoch) << '\n';
    os << "spec: " << formatExact(cfg.spec.idlePower) << ' '
       << formatExact(cfg.spec.standbyPower) << ' '
       << formatExact(cfg.spec.spinUpEnergy) << ' '
       << formatExact(cfg.spec.spinUpTime) << ' '
       << formatExact(cfg.spec.spinDownEnergy) << ' '
       << formatExact(cfg.spec.spinDownTime) << '\n';
    if (cfg.crash.armed) {
        // An unarmed plan writes nothing, so pre-crash corpus files
        // and crash reproducers share the same v1 format.
        os << "crash_site: " << crashSiteName(cfg.crash.site) << '\n';
        os << "crash_occurrence: " << cfg.crash.occurrence << '\n';
        os << "crash_reorder_seed: " << cfg.crash.reorderSeed << '\n';
        os << "crash_survive_prob: " << formatExact(cfg.crash.surviveProb)
           << '\n';
    }
    os << "trace:\n";
    for (const TraceRecord &rec : entry.fuzzCase.trace)
        os << formatRecord(rec) << '\n';
    os << "end\n";
}

void
writeCorpusFile(const std::string &path, const CorpusEntry &entry)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        PACACHE_FATAL("cannot open corpus file '", path,
                      "' for writing");
    writeCorpus(out, entry);
    out.flush();
    if (!out)
        PACACHE_FATAL("write error on corpus file '", path, "'");
}

CorpusEntry
readCorpus(std::istream &is, const std::string &name)
{
    CorpusEntry entry;
    std::string line;
    std::size_t lineno = 0;

    if (!std::getline(is, line) || line != kHeader)
        corpusFail(name, 1, std::string("expected '") + kHeader + "'");
    lineno = 1;

    bool inTrace = false;
    bool sawEnd = false;
    while (std::getline(is, line)) {
        ++lineno;
        // Strip trailing CR and inline comments outside the trace.
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (!inTrace) {
            const std::size_t hash = line.find('#');
            if (hash != std::string::npos)
                line = line.substr(0, hash);
            while (!line.empty() && line.back() == ' ')
                line.pop_back();
        }
        if (line.empty())
            continue;

        if (inTrace) {
            if (line == "end") {
                sawEnd = true;
                inTrace = false;
                continue;
            }
            entry.fuzzCase.trace.append(
                parseCorpusRecord(line, name, lineno));
            continue;
        }
        if (sawEnd)
            corpusFail(name, lineno, "content after 'end'");
        if (line == "trace:") {
            inTrace = true;
            continue;
        }

        const std::size_t colon = line.find(": ");
        std::string key, value;
        if (colon == std::string::npos) {
            // Bare "key:" with an empty value (e.g. description).
            if (line.back() != ':')
                corpusFail(name, lineno,
                           "expected 'key: value', got '" + line + "'");
            key = line.substr(0, line.size() - 1);
        } else {
            key = line.substr(0, colon);
            value = line.substr(colon + 2);
        }

        CaseConfig &cfg = entry.fuzzCase.cfg;
        try {
            if (key == "property") {
                entry.meta.property = value;
            } else if (key == "seed") {
                entry.fuzzCase.seed = std::stoull(value);
            } else if (key == "pre_fix_rev") {
                entry.meta.preFixRev = value;
            } else if (key == "description") {
                entry.meta.description = value;
            } else if (key == "cache_blocks") {
                cfg.cacheBlocks = std::stoull(value);
            } else if (key == "policy") {
                cfg.policy = runner::parsePolicyKind(value);
            } else if (key == "dpm_kind") {
                if (value == "oracle")
                    cfg.dpmKind = DpmKind::Oracle;
                else if (value == "practical")
                    cfg.dpmKind = DpmKind::Practical;
                else
                    corpusFail(name, lineno,
                               "unknown dpm_kind '" + value + "'");
            } else if (key == "dpm") {
                cfg.dpm = runner::parseDpmChoice(value);
            } else if (key == "write_policy") {
                cfg.writePolicy = runner::parseWritePolicy(value);
            } else if (key == "wtdu_region_blocks") {
                cfg.wtduRegionBlocks = std::stoull(value);
            } else if (key == "theta") {
                cfg.theta = std::stod(value);
            } else if (key == "crash_step") {
                cfg.crashStep = std::stoull(value);
            } else if (key == "pa_epoch") {
                cfg.paEpoch = std::stod(value);
            } else if (key == "crash_site") {
                if (!parseCrashSite(value, cfg.crash.site))
                    corpusFail(name, lineno,
                               "unknown crash_site '" + value + "'");
                cfg.crash.armed = true;
            } else if (key == "crash_occurrence") {
                cfg.crash.occurrence = std::stoull(value);
            } else if (key == "crash_reorder_seed") {
                cfg.crash.reorderSeed = std::stoull(value);
            } else if (key == "crash_survive_prob") {
                cfg.crash.surviveProb = std::stod(value);
                if (cfg.crash.surviveProb < 0.0 ||
                    cfg.crash.surviveProb > 1.0)
                    corpusFail(name, lineno,
                               "crash_survive_prob outside [0, 1]");
            } else if (key == "spec") {
                DiskSpec &s = cfg.spec;
                if (std::sscanf(value.c_str(),
                                "%lf %lf %lf %lf %lf %lf",
                                &s.idlePower, &s.standbyPower,
                                &s.spinUpEnergy, &s.spinUpTime,
                                &s.spinDownEnergy,
                                &s.spinDownTime) != 6)
                    corpusFail(name, lineno,
                               "spec needs 6 numeric fields");
            } else {
                corpusFail(name, lineno,
                           "unknown corpus key '" + key + "'");
            }
        } catch (const std::invalid_argument &) {
            corpusFail(name, lineno,
                       "bad numeric value for '" + key + "'");
        } catch (const std::out_of_range &) {
            corpusFail(name, lineno,
                       "out-of-range value for '" + key + "'");
        }
    }

    if (!sawEnd)
        corpusFail(name, lineno, "missing 'trace:' ... 'end' section");
    if (entry.meta.property.empty())
        corpusFail(name, lineno, "missing 'property:' key");
    return entry;
}

CorpusEntry
readCorpusFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        PACACHE_FATAL("cannot open corpus file '", path, "'");
    return readCorpus(in, path);
}

} // namespace pacache::qa
