#include "qa/shrink.hh"

#include <vector>

#include "util/logging.hh"

namespace pacache::qa
{

namespace
{

/** Rebuild a case around a new record sequence. */
FuzzCase
withRecords(const FuzzCase &base, const std::vector<TraceRecord> &recs)
{
    FuzzCase c;
    c.seed = base.seed;
    c.cfg = base.cfg;
    for (const TraceRecord &rec : recs)
        c.trace.append(rec);
    return c;
}

struct Shrinker
{
    const FailFn &stillFails;
    std::size_t maxAttempts;
    ShrinkStats stats;

    bool
    budgetLeft() const
    {
        return stats.attempts < maxAttempts;
    }

    /** Evaluate a candidate; true (and count it) if it still fails. */
    bool
    accept(const FuzzCase &candidate)
    {
        ++stats.attempts;
        if (!stillFails(candidate))
            return false;
        ++stats.accepted;
        return true;
    }

    /** ddmin: drop windows of records, halving the window size. */
    bool
    dropRecords(FuzzCase &best)
    {
        bool shrunk = false;
        std::vector<TraceRecord> recs(best.trace.begin(),
                                      best.trace.end());
        for (std::size_t chunk = (recs.size() + 1) / 2;
             chunk >= 1 && !recs.empty(); chunk /= 2) {
            for (std::size_t at = 0;
                 at < recs.size() && budgetLeft();) {
                std::vector<TraceRecord> candidate;
                candidate.reserve(recs.size());
                for (std::size_t i = 0; i < recs.size(); ++i)
                    if (i < at || i >= at + chunk)
                        candidate.push_back(recs[i]);
                const FuzzCase next = withRecords(best, candidate);
                if (accept(next)) {
                    recs = std::move(candidate);
                    best = next;
                    shrunk = true;
                    // Same position now holds the next window.
                } else {
                    at += chunk;
                }
            }
            if (chunk == 1)
                break;
        }
        return shrunk;
    }

    /** Per-record simplification: length 1, writes to reads. */
    bool
    simplifyRecords(FuzzCase &best)
    {
        bool shrunk = false;
        std::vector<TraceRecord> recs(best.trace.begin(),
                                      best.trace.end());
        for (std::size_t i = 0; i < recs.size() && budgetLeft(); ++i) {
            TraceRecord simpler = recs[i];
            if (simpler.numBlocks > 1)
                simpler.numBlocks = 1;
            else if (simpler.write)
                simpler.write = false;
            else
                continue;
            std::vector<TraceRecord> candidate = recs;
            candidate[i] = simpler;
            const FuzzCase next = withRecords(best, candidate);
            if (accept(next)) {
                recs = std::move(candidate);
                best = next;
                shrunk = true;
                --i; // the same record may simplify further
            }
        }
        return shrunk;
    }

    /** Halve numeric config knobs toward their floors. */
    bool
    shrinkConfig(FuzzCase &best)
    {
        bool shrunk = false;
        auto tryCfg = [&](auto mutate) {
            if (!budgetLeft())
                return;
            FuzzCase candidate = best;
            mutate(candidate.cfg);
            if (accept(candidate)) {
                best = candidate;
                shrunk = true;
            }
        };

        while (best.cfg.cacheBlocks > 1 && budgetLeft()) {
            const std::size_t before = best.cfg.cacheBlocks;
            tryCfg([](CaseConfig &cfg) { cfg.cacheBlocks /= 2; });
            if (best.cfg.cacheBlocks == before)
                break;
        }
        while (best.cfg.wtduRegionBlocks > 1 && budgetLeft()) {
            const std::size_t before = best.cfg.wtduRegionBlocks;
            tryCfg([](CaseConfig &cfg) { cfg.wtduRegionBlocks /= 2; });
            if (best.cfg.wtduRegionBlocks == before)
                break;
        }
        while (best.cfg.crashStep > 0 && budgetLeft()) {
            const uint64_t before = best.cfg.crashStep;
            tryCfg([](CaseConfig &cfg) { cfg.crashStep /= 2; });
            if (best.cfg.crashStep == before)
                break;
        }
        if (best.cfg.theta != 0)
            tryCfg([](CaseConfig &cfg) { cfg.theta = 0; });
        while (best.cfg.crash.armed && best.cfg.crash.occurrence > 0 &&
               budgetLeft()) {
            const uint64_t before = best.cfg.crash.occurrence;
            tryCfg([](CaseConfig &cfg) { cfg.crash.occurrence /= 2; });
            if (best.cfg.crash.occurrence == before)
                break;
        }
        // All-lost is the simplest in-flight outcome to reason about.
        if (best.cfg.crash.armed && best.cfg.crash.surviveProb != 0.0)
            tryCfg([](CaseConfig &cfg) { cfg.crash.surviveProb = 0.0; });
        return shrunk;
    }
};

} // namespace

FuzzCase
shrinkCase(const FuzzCase &failing, const FailFn &stillFails,
           std::size_t maxAttempts, ShrinkStats *stats)
{
    PACACHE_ASSERT(stillFails(failing),
                   "shrinkCase: the input case does not fail");
    Shrinker shrinker{stillFails, maxAttempts, {}};
    FuzzCase best = failing;
    // Fixed point: each pass can unlock the others (a smaller trace
    // makes a smaller cache failing, and vice versa).
    for (int pass = 0; pass < 8; ++pass) {
        bool any = shrinker.dropRecords(best);
        any = shrinker.simplifyRecords(best) || any;
        any = shrinker.shrinkConfig(best) || any;
        if (!any || !shrinker.budgetLeft())
            break;
    }
    if (stats)
        *stats = shrinker.stats;
    return best;
}

} // namespace pacache::qa
