#include "qa/trace_gen.hh"

namespace pacache::qa
{

Gen<SyntheticParams>
genTraceParams(const CaseProfile &profile)
{
    return Gen<SyntheticParams>([profile](Rng &rng) {
        SyntheticParams p;
        p.numRequests =
            intIn(profile.minRequests, profile.maxRequests)(rng);
        p.numDisks = static_cast<uint32_t>(
            intIn(profile.minDisks, profile.maxDisks)(rng));

        // Arrival process: Poisson or bursty Pareto, spanning dense
        // (10 ms) to sparse (5 s) mean inter-arrivals — sparse tails
        // are where disks actually reach the deep power modes.
        const double mean_ms = realIn(10.0, 5000.0)(rng);
        p.arrival = boolWith(0.5)(rng)
            ? ArrivalModel::pareto(mean_ms, realIn(1.1, 1.9)(rng))
            : ArrivalModel::exponential(mean_ms);

        p.writeRatio = elementOf<double>({0.0, 0.05, 0.2, 0.5, 0.8,
                                          1.0})(rng);

        // Spatial/temporal locality: tight footprints force eviction
        // pressure; the Zipf knobs sweep weak to strong reuse.
        p.address.footprintBlocks = intIn(32, 2048)(rng);
        p.address.seqProb = realIn(0.0, 0.4)(rng);
        p.address.localProb = realIn(0.0, 0.4)(rng);
        p.address.maxLocalDistance =
            static_cast<uint32_t>(intIn(1, 200)(rng));
        p.address.reuseProb = realIn(0.0, 0.9)(rng);
        p.address.zipfTheta = realIn(0.0, 1.2)(rng);
        p.address.stackSize = 1u << intIn(4, 10)(rng);

        // Multi-disk skew: a hot disk with a long cold tail.
        if (p.numDisks > 1 && rng.chance(profile.skewProb)) {
            p.diskWeights.resize(p.numDisks);
            double w = 1.0;
            const double decay = realIn(0.2, 0.9)(rng);
            for (uint32_t d = 0; d < p.numDisks; ++d) {
                p.diskWeights[d] = w;
                w *= decay;
            }
        }
        return p;
    });
}

Gen<DiskSpec>
genDiskSpec()
{
    return Gen<DiskSpec>([](Rng &rng) {
        DiskSpec spec; // Ultrastar 36Z15 baseline, then fuzz
        spec.idlePower = realIn(5.0, 15.0)(rng);
        spec.standbyPower = realIn(0.5, 3.0)(rng);
        spec.spinUpEnergy = realIn(50.0, 300.0)(rng);
        spec.spinUpTime = realIn(2.0, 20.0)(rng);
        spec.spinDownEnergy = realIn(2.0, 30.0)(rng);
        spec.spinDownTime = realIn(0.5, 3.0)(rng);
        return spec;
    });
}

Gen<CaseConfig>
genCaseConfig(const CaseProfile &profile)
{
    return Gen<CaseConfig>([profile](Rng &rng) {
        CaseConfig cfg;
        cfg.cacheBlocks =
            intIn(profile.minCacheBlocks, profile.maxCacheBlocks)(rng);
        // Experiment-level properties need every policy family; the
        // off-line ones also exercise transparent materialization on
        // the streaming path.
        cfg.policy = elementOf<PolicyKind>(
            {PolicyKind::LRU, PolicyKind::FIFO, PolicyKind::CLOCK,
             PolicyKind::ARC, PolicyKind::MQ, PolicyKind::LIRS,
             PolicyKind::Belady, PolicyKind::OPG, PolicyKind::PALRU,
             PolicyKind::PAARC, PolicyKind::PALIRS})(rng);
        cfg.dpmKind = boolWith(0.5)(rng) ? DpmKind::Oracle
                                         : DpmKind::Practical;
        cfg.dpm = elementOf<DpmChoice>(
            {DpmChoice::AlwaysOn, DpmChoice::Practical,
             DpmChoice::Adaptive, DpmChoice::Oracle})(rng);
        cfg.writePolicy = elementOf<WritePolicy>(
            {WritePolicy::WriteThrough, WritePolicy::WriteBack,
             WritePolicy::WriteBackEagerUpdate,
             WritePolicy::WriteThroughDeferredUpdate})(rng);
        cfg.wtduRegionBlocks = intIn(4, 64)(rng);
        cfg.theta = elementOf<double>({0.0, 0.0, 5.0, 29.6, 120.0})(rng);
        cfg.crashStep = intIn(0, 256)(rng);
        cfg.paEpoch = realIn(5.0, 60.0)(rng);
        cfg.spec = genDiskSpec()(rng);
        return cfg;
    });
}

Gen<CrashPlan>
genCrashPlan()
{
    return Gen<CrashPlan>([](Rng &rng) {
        CrashPlan plan;
        plan.armed = true;
        plan.site = elementOf<CrashSite>(
            {CrashSite::LogAppend, CrashSite::LogAppendTorn,
             CrashSite::EagerUpdate, CrashSite::SpinUp,
             CrashSite::RetirePre, CrashSite::RetirePost,
             CrashSite::DataWrite, CrashSite::Shutdown,
             CrashSite::Recovery})(rng);
        // Low occurrences hit rare sites (retire, spin-up); the high
        // tail reaches deep into frequent ones (data-write) and, when
        // the site never fires that often, exercises the clean-finish
        // differential path.
        plan.occurrence = frequency<uint64_t>(
            {{3.0, intIn(0, 7)}, {2.0, intIn(8, 63)},
             {1.0, intIn(64, 255)}})(rng);
        plan.reorderSeed = rng.next64();
        plan.surviveProb = elementOf<double>(
            {0.0, 0.25, 0.5, 0.75, 1.0})(rng);
        return plan;
    });
}

Gen<FuzzCase>
genCase(const CaseProfile &profile)
{
    return Gen<FuzzCase>([profile](Rng &rng) {
        FuzzCase c;
        c.cfg = genCaseConfig(profile)(rng);
        SyntheticParams tp = genTraceParams(profile)(rng);
        tp.seed = rng.next64();
        c.trace = generateSynthetic(tp);
        // Drawn last so arming crash plans never perturbed the trace
        // streams of pre-existing seeds.
        c.cfg.crash = genCrashPlan()(rng);
        return c;
    });
}

FuzzCase
makeCase(uint64_t master_seed, uint64_t index, const CaseProfile &profile)
{
    const uint64_t seed = deriveSeed(master_seed, index);
    Rng rng(seed);
    FuzzCase c = genCase(profile)(rng);
    c.seed = seed;
    return c;
}

} // namespace pacache::qa
