/**
 * @file
 * Delta-debugging shrinker for FuzzCases.
 *
 * Given a failing case and a predicate that re-checks the failure,
 * shrinkCase() greedily minimizes the trace (ddmin-style chunk
 * removal, halving the window down to single records), simplifies the
 * surviving records (length 1, writes to reads), and shrinks the
 * config knobs (cache size, WTDU region, crash step, theta) — keeping
 * every transformation only if the case still fails. Record removal
 * preserves time monotonicity by construction (deleting from a sorted
 * sequence keeps it sorted), so every intermediate case is a valid
 * Trace.
 *
 * The predicate is typically `!runProperty(prop, c).passed`; because
 * runProperty converts exceptions into failures, the shrinker also
 * minimizes crashers.
 */

#ifndef PACACHE_QA_SHRINK_HH
#define PACACHE_QA_SHRINK_HH

#include <cstddef>
#include <functional>

#include "qa/fuzz_case.hh"

namespace pacache::qa
{

/** Re-check the failure; true = the case still fails. */
using FailFn = std::function<bool(const FuzzCase &)>;

/** What a shrink run did. */
struct ShrinkStats
{
    std::size_t attempts = 0; //!< candidate cases evaluated
    std::size_t accepted = 0; //!< candidates that still failed
};

/**
 * Minimize @p failing under @p stillFails. @p maxAttempts bounds the
 * number of predicate evaluations (the predicate replays the
 * property, so this bounds total shrink cost). The input case must
 * satisfy the predicate; the returned case always does.
 */
FuzzCase shrinkCase(const FuzzCase &failing, const FailFn &stillFails,
                    std::size_t maxAttempts = 2000,
                    ShrinkStats *stats = nullptr);

} // namespace pacache::qa

#endif // PACACHE_QA_SHRINK_HH
