/**
 * @file
 * FuzzCase — one self-contained generated test case for the qa
 * subsystem, and the on-disk corpus format its reproducers use.
 *
 * A case carries a *materialized* trace rather than generator
 * parameters: the shrinker edits records directly, and a corpus file
 * must replay bit-for-bit years later even if the generators change.
 * The generator seed is retained as provenance only.
 *
 * Corpus format (text, one file per reproducer):
 *
 *     pacache-corpus v1
 *     property: opg_matches_ref         # registry name to replay
 *     seed: 12345                       # campaign case seed
 *     pre_fix_rev: 0307659              # revision that failed this
 *     description: free text
 *     cache_blocks: 8
 *     policy: lru                       # experiment-level properties
 *     dpm_kind: oracle                  # OPG pricing
 *     dpm: practical                    # experiment DPM regime
 *     write_policy: wtdu
 *     wtdu_region_blocks: 8
 *     theta: 0
 *     crash_step: 17
 *     pa_epoch: 20
 *     spec: <idleW> <standbyW> <upJ> <upS> <downJ> <downS>
 *     crash_site: retire-post            # optional: armed CrashPlan
 *     crash_occurrence: 3                # fire on the Nth site hit
 *     crash_reorder_seed: 99             # in-flight survival draw
 *     crash_survive_prob: 0.5
 *     trace:
 *     <time> <disk> <block> <count> <R|W>     # native text format
 *     end
 *
 * Doubles are printed with 17 significant digits, so every time (and
 * theta, and spec field) round-trips to the exact same bit pattern —
 * several differential properties are sensitive to ulps.
 */

#ifndef PACACHE_QA_FUZZ_CASE_HH
#define PACACHE_QA_FUZZ_CASE_HH

#include <iosfwd>
#include <string>

#include "core/experiment.hh"
#include "core/fault.hh"
#include "core/opg.hh"
#include "trace/trace.hh"

namespace pacache::qa
{

/** System knobs of one generated case. */
struct CaseConfig
{
    std::size_t cacheBlocks = 64;
    PolicyKind policy = PolicyKind::LRU; //!< experiment-level checks
    DpmKind dpmKind = DpmKind::Oracle;   //!< OPG penalty pricing
    DpmChoice dpm = DpmChoice::Practical; //!< experiment DPM regime
    WritePolicy writePolicy = WritePolicy::WriteBack;
    std::size_t wtduRegionBlocks = 8;
    Energy theta = 0;          //!< OPG penalty floor
    uint64_t crashStep = 0;    //!< WTDU recovery crash point
    double paEpoch = 20.0;     //!< PA classifier epoch length (s)
    DiskSpec spec;             //!< fuzzed power-model constants
    CrashPlan crash;           //!< fault scenario (crash properties)
};

/** One self-contained qa case. */
struct FuzzCase
{
    uint64_t seed = 0;   //!< generator seed (provenance)
    CaseConfig cfg;
    Trace trace;

    /** The fuzzed power model (derived from cfg.spec). */
    PowerModel powerModel() const { return PowerModel(cfg.spec); }
};

/** Reproducer metadata stored alongside the case in a corpus file. */
struct CorpusMeta
{
    std::string property;    //!< registry name the case fails
    std::string preFixRev;   //!< revision the failure was found at
    std::string description; //!< one line: what went wrong
};

/** A parsed corpus file. */
struct CorpusEntry
{
    CorpusMeta meta;
    FuzzCase fuzzCase;
};

/** Serialize @p entry into corpus format. */
void writeCorpus(std::ostream &os, const CorpusEntry &entry);

/** Write a corpus file (fatal on I/O failure). */
void writeCorpusFile(const std::string &path, const CorpusEntry &entry);

/**
 * Parse corpus format. Unknown keys, a missing header/trailer, or a
 * malformed trace line are fatal with file:line context via @p name.
 */
CorpusEntry readCorpus(std::istream &is, const std::string &name);

/** Read a corpus file (fatal on I/O or format errors). */
CorpusEntry readCorpusFile(const std::string &path);

/** Print a double with round-trip (17 significant digit) precision. */
std::string formatExact(double v);

} // namespace pacache::qa

#endif // PACACHE_QA_FUZZ_CASE_HH
