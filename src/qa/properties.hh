/**
 * @file
 * The qa property registry: every differential and metamorphic
 * property the fuzzer can throw a FuzzCase at.
 *
 * A property is a pure check FuzzCase -> PropertyResult. Differential
 * properties replay a fast-path implementation against its retained
 * reference (OPG vs ReferenceOpgPolicy, Belady vs
 * ReferenceBeladyPolicy, segment tables vs legacy scans) and demand
 * bit-identical behavior; metamorphic properties relate two runs of
 * the same system (streaming vs materialized, parallel vs serial,
 * growing cache sizes, crash/recover twice) whose outputs must agree
 * by construction.
 *
 * Failures carry a human-readable message naming the first observed
 * divergence; thrown exceptions (PACACHE_FATAL / PACACHE_PANIC /
 * anything std::exception) are converted into failures by
 * runProperty, so a property that trips an internal assertion still
 * produces a shrinkable counterexample instead of killing the
 * campaign.
 */

#ifndef PACACHE_QA_PROPERTIES_HH
#define PACACHE_QA_PROPERTIES_HH

#include <functional>
#include <string>
#include <vector>

#include "cache/policy.hh"
#include "qa/fuzz_case.hh"

namespace pacache::qa
{

/** Outcome of one property check on one case. */
struct PropertyResult
{
    bool passed = true;
    std::string message; //!< first divergence, empty when passed

    static PropertyResult ok() { return {}; }

    static PropertyResult
    fail(std::string msg)
    {
        return {false, std::move(msg)};
    }
};

/** One registered property. */
struct PropertyDef
{
    const char *name;        //!< stable registry key (corpus files)
    const char *description; //!< one line for --list
    std::function<PropertyResult(const FuzzCase &)> check;
};

/** The full registry, in stable order. */
const std::vector<PropertyDef> &allProperties();

/** Look up a property by name (null if absent). */
const PropertyDef *findProperty(const std::string &name);

/**
 * Run @p prop on @p c, converting any thrown std::exception into a
 * failed result carrying the exception text.
 */
PropertyResult runProperty(const PropertyDef &prop, const FuzzCase &c);

/**
 * The differential-replay harness behind the policy-equivalence
 * properties: drive @p candidate and @p reference through identical
 * caches over the case's expanded access stream and demand the same
 * victim sequence and counters. Exposed so tests can inject a
 * deliberately faulty candidate and watch the harness (and the
 * shrinker) catch it.
 */
PropertyResult checkPolicyDifferential(const FuzzCase &c,
                                       ReplacementPolicy &candidate,
                                       ReplacementPolicy &reference);

} // namespace pacache::qa

#endif // PACACHE_QA_PROPERTIES_HH
