#include "qa/properties.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <set>
#include <sstream>
#include <unistd.h>
#include <vector>

#include "cache/belady.hh"
#include "cache/belady_ref.hh"
#include "obs/energy_ledger.hh"
#include "util/log_histogram.hh"
#include "cache/cache.hh"
#include "cache/future.hh"
#include "cache/lru.hh"
#include "core/experiment.hh"
#include "core/opg.hh"
#include "core/opg_ref.hh"
#include "core/wtdu_log.hh"
#include "disk/power_model.hh"
#include "core/pa_classifier.hh"
#include "qa/crash.hh"
#include "qa/gen.hh"
#include "runner/sweep.hh"
#include "serve/server.hh"
#include "tracefmt/pct.hh"
#include "tracefmt/trace_source.hh"

namespace pacache::qa
{

namespace
{

template <typename... Args>
PropertyResult
failMsg(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return PropertyResult::fail(os.str());
}

std::string
blockStr(const BlockId &b)
{
    std::ostringstream os;
    os << '(' << b.disk << ',' << b.block << ')';
    return os.str();
}

/** The ExperimentConfig a case's knobs describe. */
ExperimentConfig
experimentConfig(const FuzzCase &c)
{
    ExperimentConfig cfg;
    cfg.policy = c.cfg.policy;
    cfg.dpm = c.cfg.dpm;
    cfg.cacheBlocks = c.cfg.cacheBlocks > 0 ? c.cfg.cacheBlocks : 1;
    cfg.storage.writePolicy = c.cfg.writePolicy;
    cfg.storage.wtduRegionBlocks =
        c.cfg.wtduRegionBlocks > 0 ? c.cfg.wtduRegionBlocks : 1;
    cfg.spec = c.cfg.spec;
    cfg.pa.epochLength = c.cfg.paEpoch;
    cfg.opgTheta = c.cfg.theta;
    return cfg;
}

/** Victim-recording pass-through (the oracle-equivalence pattern). */
class RecordingPolicy : public ReplacementPolicy
{
  public:
    explicit RecordingPolicy(ReplacementPolicy &inner_) : inner(&inner_) {}

    const char *name() const override { return inner->name(); }

    void
    prepare(const std::vector<BlockAccess> &accesses) override
    {
        inner->prepare(accesses);
    }

    void
    onAccess(const BlockId &block, Time now, std::size_t idx,
             bool hit) override
    {
        inner->onAccess(block, now, idx, hit);
    }

    void
    beforeMiss(const BlockId &block, Time now, std::size_t idx) override
    {
        inner->beforeMiss(block, now, idx);
    }

    void onRemove(const BlockId &block) override { inner->onRemove(block); }

    BlockId
    evict(Time now, std::size_t idx) override
    {
        BlockId victim = inner->evict(now, idx);
        victims.push_back(victim);
        return victim;
    }

    bool supportsPrefetch() const override
    {
        return inner->supportsPrefetch();
    }
    bool isOffline() const override { return inner->isOffline(); }

    std::vector<BlockId> victims;

  private:
    ReplacementPolicy *inner;
};

struct Replay
{
    std::vector<BlockId> victims;
    CacheStats stats;
};

Replay
replayPolicy(const FuzzCase &c, ReplacementPolicy &policy)
{
    const std::vector<BlockAccess> accesses = expandTrace(c.trace);
    RecordingPolicy rec(policy);
    Cache cache(c.cfg.cacheBlocks > 0 ? c.cfg.cacheBlocks : 1, rec);
    rec.prepare(accesses);
    for (std::size_t i = 0; i < accesses.size(); ++i)
        cache.access(accesses[i].block, accesses[i].time, i);
    return {std::move(rec.victims), cache.stats()};
}

/** Exact-compare two experiment results; "" when identical. */
std::string
diffResults(const ExperimentResult &a, const ExperimentResult &b)
{
    std::ostringstream os;
    auto field = [&os](const char *name, auto x, auto y) {
        if (os.tellp() == 0 && !(x == y))
            os << name << ": " << x << " vs " << y;
    };

    field("cache.accesses", a.cache.accesses, b.cache.accesses);
    field("cache.hits", a.cache.hits, b.cache.hits);
    field("cache.misses", a.cache.misses, b.cache.misses);
    field("cache.evictions", a.cache.evictions, b.cache.evictions);
    field("cache.coldMisses", a.cache.coldMisses, b.cache.coldMisses);
    field("totalEnergy", a.totalEnergy, b.totalEnergy);
    field("energy.total", a.energy.total(), b.energy.total());
    field("energy.serviceEnergy", a.energy.serviceEnergy,
          b.energy.serviceEnergy);
    field("energy.spinUps", a.energy.spinUps, b.energy.spinUps);
    field("energy.spinDowns", a.energy.spinDowns, b.energy.spinDowns);
    field("responses.count", a.responses.count(), b.responses.count());
    field("responses.sum", a.responses.sum(), b.responses.sum());
    field("responses.max", a.responses.max(), b.responses.max());
    field("logWrites", a.logWrites, b.logWrites);
    field("prefetchedBlocks", a.prefetchedBlocks, b.prefetchedBlocks);
    field("numModes", a.numModes, b.numModes);
    field("perDisk.size", a.perDisk.size(), b.perDisk.size());
    if (os.tellp() != 0)
        return os.str();

    for (std::size_t d = 0; d < a.perDisk.size(); ++d) {
        const EnergyStats &x = a.perDisk[d];
        const EnergyStats &y = b.perDisk[d];
        std::ostringstream pre;
        pre << "perDisk[" << d << "].";
        const std::string p = pre.str();
        field((p + "total").c_str(), x.total(), y.total());
        field((p + "busyTime").c_str(), x.busyTime, y.busyTime);
        field((p + "requests").c_str(), x.requests, y.requests);
        field((p + "spinUps").c_str(), x.spinUps, y.spinUps);
        field((p + "spinDowns").c_str(), x.spinDowns, y.spinDowns);
        for (std::size_t m = 0;
             m < x.idleEnergyPerMode.size() &&
             m < y.idleEnergyPerMode.size();
             ++m) {
            field((p + "idleEnergy[mode]").c_str(),
                  x.idleEnergyPerMode[m], y.idleEnergyPerMode[m]);
            field((p + "timePerMode[mode]").c_str(), x.timePerMode[m],
                  y.timePerMode[m]);
        }
        if (os.tellp() != 0)
            return os.str();
    }

    if (a.diskAccesses != b.diskAccesses)
        return "diskAccesses differ";
    if (a.diskMeanInterArrival != b.diskMeanInterArrival)
        return "diskMeanInterArrival differ";
    return {};
}

/** Self-deleting temp file for the round-trip property. */
struct TempFile
{
    std::string path;

    explicit TempFile(const std::string &stem)
    {
        std::ostringstream os;
        os << "pacache_qa_" << ::getpid() << '_' << stem;
        path = (std::filesystem::temp_directory_path() / os.str())
                   .string();
    }

    ~TempFile()
    {
        std::error_code ec;
        std::filesystem::remove(path, ec);
    }
};

// ---------------------------------------------------------------
// Differential properties: fast path vs retained reference.
// ---------------------------------------------------------------

PropertyResult
propOpgMatchesRef(const FuzzCase &c)
{
    const PowerModel pm = c.powerModel();
    OpgPolicy fast(pm, c.cfg.dpmKind, c.cfg.theta);
    ReferenceOpgPolicy ref(pm, c.cfg.dpmKind, c.cfg.theta,
                           /*refPricing=*/true);
    return checkPolicyDifferential(c, fast, ref);
}

PropertyResult
propBeladyMatchesRef(const FuzzCase &c)
{
    BeladyPolicy fast;
    ReferenceBeladyPolicy ref;
    return checkPolicyDifferential(c, fast, ref);
}

PropertyResult
propEnergyTablesMatchLegacy(const FuzzCase &c)
{
    const PowerModel pm = c.powerModel();
    Rng rng(deriveSeed(c.seed, 0x7ab1e5));

    std::vector<Time> samples{0.0,
                              std::numeric_limits<Time>::infinity()};
    for (const Time t : pm.thresholds()) {
        samples.push_back(t);
        samples.push_back(std::nextafter(t, 0.0));
        samples.push_back(std::nextafter(
            t, std::numeric_limits<Time>::infinity()));
    }
    for (std::size_t m = 0; m < pm.numModes(); ++m) {
        const Time be = pm.breakEvenTime(m);
        if (std::isfinite(be)) {
            samples.push_back(be);
            samples.push_back(std::nextafter(be, 0.0));
        }
    }
    for (int i = 0; i < 200; ++i)
        samples.push_back(std::pow(10.0, rng.uniform(-3.0, 5.0)));

    for (const Time t : samples) {
        const Energy env = pm.envelope(t);
        const Energy envRef = pm.envelopeRef(t);
        if (env != envRef)
            return failMsg("envelope(", formatExact(t), ") = ",
                           formatExact(env), " but legacy scan gives ",
                           formatExact(envRef));
        const Energy prac = pm.practicalEnergy(t);
        const Energy pracRef = pm.practicalEnergyRef(t);
        if (prac != pracRef)
            return failMsg("practicalEnergy(", formatExact(t), ") = ",
                           formatExact(prac),
                           " but legacy walk gives ",
                           formatExact(pracRef));
        if (pm.bestMode(t) != pm.bestModeRef(t))
            return failMsg("bestMode(", formatExact(t), ") = ",
                           pm.bestMode(t), " but legacy scan gives ",
                           pm.bestModeRef(t));
    }
    return PropertyResult::ok();
}

// ---------------------------------------------------------------
// Metamorphic properties: two runs that must agree by construction.
// ---------------------------------------------------------------

PropertyResult
propStreamingMatchesMaterialized(const FuzzCase &c)
{
    if (c.trace.empty())
        return PropertyResult::ok();
    const ExperimentConfig cfg = experimentConfig(c);
    const ExperimentResult mat = runExperiment(c.trace, cfg);
    tracefmt::MemorySource src(c.trace);
    const ExperimentResult streamed = runExperiment(src, cfg);
    const std::string diff = diffResults(mat, streamed);
    if (!diff.empty())
        return failMsg("streaming replay diverges from materialized: ",
                       diff);
    return PropertyResult::ok();
}

PropertyResult
propWindowedOracleEquivalence(const FuzzCase &c)
{
    if (c.trace.empty())
        return PropertyResult::ok();
    // Fuzz the out-of-core geometry: window and backward-pass chunk
    // sizes from one access up to past the trace length, so chunk
    // stitching, window refills, and the single-chunk degenerate
    // case all get exercised.
    Rng rng(deriveSeed(c.seed, 0x5ca1e));
    const std::size_t accesses =
        std::max<std::size_t>(c.trace.numBlockAccesses(), 1);
    ExperimentConfig cfg = experimentConfig(c);
    cfg.policy = rng.chance(0.5) ? PolicyKind::OPG : PolicyKind::Belady;
    cfg.windowAccesses = 1 + rng.below(accesses + 8);
    cfg.oracleChunkAccesses = 1 + rng.below(accesses + 8);

    ExperimentConfig mat_cfg = cfg;
    mat_cfg.windowAccesses = 0;
    mat_cfg.oracleChunkAccesses = 0;
    const ExperimentResult mat = runExperiment(c.trace, mat_cfg);

    std::ostringstream stem;
    stem << c.seed << "_win.pct";
    const TempFile tmp(stem.str());
    {
        tracefmt::MemorySource src(c.trace);
        tracefmt::writePct(tmp.path, src);
    }
    tracefmt::PctMmapSource src(tmp.path);
    const ExperimentResult windowed = runExperiment(src, cfg);
    const std::string diff = diffResults(mat, windowed);
    if (!diff.empty())
        return failMsg("windowed oracle (window=", cfg.windowAccesses,
                       ", chunk=", cfg.oracleChunkAccesses, ", ",
                       policyKindName(cfg.policy),
                       ") diverges from the materialized oracle: ",
                       diff);
    return PropertyResult::ok();
}

PropertyResult
propSpilledOracleEquivalence(const FuzzCase &c)
{
    if (c.trace.empty())
        return PropertyResult::ok();
    // Spilling moves oracle state between RAM and the spill file but
    // never changes a value, so every budget — one byte (pages spill
    // the moment an operation releases them), a small fuzzed budget
    // (steady churn), or SIZE_MAX (machinery engaged, never evicts)
    // — must replay bit-identically to the unbounded in-memory
    // oracle.  Belady ignores the budget and must be unaffected.
    Rng rng(deriveSeed(c.seed, 0x5b111));
    ExperimentConfig cfg = experimentConfig(c);
    cfg.policy = rng.chance(0.8) ? PolicyKind::OPG : PolicyKind::Belady;
    cfg.windowAccesses = 0;
    cfg.oracleChunkAccesses = 0;
    cfg.oracleMemBudget = 0;
    const ExperimentResult want = runExperiment(c.trace, cfg);

    const std::size_t budgets[] = {
        1, 1 + rng.below(std::size_t{64} << 10),
        static_cast<std::size_t>(-1)};
    for (const std::size_t budget : budgets) {
        ExperimentConfig bcfg = cfg;
        bcfg.oracleMemBudget = budget;
        const ExperimentResult got = runExperiment(c.trace, bcfg);
        const std::string diff = diffResults(want, got);
        if (!diff.empty())
            return failMsg("budget=", budget, " materialized ",
                           policyKindName(cfg.policy),
                           " diverges from unbounded in-memory: ",
                           diff);
    }

    // The windowed oracle under a budget additionally spills
    // far-future pinned entries and rereads arrival times from the
    // sidecar; fuzz the window geometry along with the budget.
    ExperimentConfig wcfg = cfg;
    const std::size_t accesses =
        std::max<std::size_t>(c.trace.numBlockAccesses(), 1);
    wcfg.windowAccesses = 1 + rng.below(accesses + 8);
    wcfg.oracleChunkAccesses = 1 + rng.below(accesses + 8);
    wcfg.oracleMemBudget = 1 + rng.below(std::size_t{16} << 10);
    std::ostringstream stem;
    stem << c.seed << "_spill.pct";
    const TempFile tmp(stem.str());
    {
        tracefmt::MemorySource src(c.trace);
        tracefmt::writePct(tmp.path, src);
    }
    tracefmt::PctMmapSource src(tmp.path);
    const ExperimentResult windowed = runExperiment(src, wcfg);
    const std::string diff = diffResults(want, windowed);
    if (!diff.empty())
        return failMsg("budget=", wcfg.oracleMemBudget,
                       " windowed (window=", wcfg.windowAccesses,
                       ", chunk=", wcfg.oracleChunkAccesses, ", ",
                       policyKindName(cfg.policy),
                       ") diverges from unbounded in-memory: ", diff);
    return PropertyResult::ok();
}

PropertyResult
propParallelMatchesSerial(const FuzzCase &c)
{
    if (c.trace.empty())
        return PropertyResult::ok();
    // Three points off one shared trace: the case's own config plus
    // two cheap on-line variants, so the pool actually interleaves.
    std::vector<runner::RunPoint> points;
    for (const PolicyKind policy :
         {c.cfg.policy, PolicyKind::LRU, PolicyKind::FIFO}) {
        runner::RunPoint point;
        point.label = runner::policyCliName(policy);
        point.trace = &c.trace;
        point.config = experimentConfig(c);
        point.config.policy = policy;
        points.push_back(std::move(point));
    }
    const std::vector<runner::RunOutcome> serial =
        runner::runAll(points, 1);
    const std::vector<runner::RunOutcome> parallel =
        runner::runAll(points, 3);
    for (std::size_t i = 0; i < points.size(); ++i) {
        const std::string diff =
            diffResults(serial[i].result, parallel[i].result);
        if (!diff.empty())
            return failMsg("--jobs 3 diverges from serial at point '",
                           points[i].label, "': ", diff);
    }
    return PropertyResult::ok();
}

PropertyResult
propPaShardMergeEquivalence(const FuzzCase &c)
{
    if (c.trace.empty())
        return PropertyResult::ok();
    const std::vector<BlockAccess> accesses = expandTrace(c.trace);
    const std::size_t num_disks =
        std::max<std::size_t>(c.trace.numDisks(), 1);
    constexpr std::size_t kShards = 3;

    // Feed the interleaved stream into one global accumulator and,
    // simultaneously, into per-shard accumulators partitioned the way
    // the serve front-end stripes disks (disk mod shards). Cold-miss
    // flags come from an exact seen-set so both sides get identical
    // inputs.
    PaEpochStats global(num_disks);
    std::vector<PaEpochStats> shards(kShards, PaEpochStats(num_disks));
    std::set<uint64_t> seen;
    std::vector<Time> last(num_disks, -1.0);
    for (const BlockAccess &acc : accesses) {
        const std::size_t d = acc.block.disk;
        const bool cold = seen.insert(acc.block.packed()).second;
        PaEpochStats &local = shards[d % kShards];
        global.noteRequest(acc.block.disk, cold);
        local.noteRequest(acc.block.disk, cold);
        if (last[d] >= 0) {
            global.noteInterval(acc.block.disk, acc.time - last[d]);
            local.noteInterval(acc.block.disk, acc.time - last[d]);
        }
        last[d] = acc.time;
    }

    // Merge the shards forward and in reverse: commutativity demands
    // both orders equal the interleaved accumulator exactly.
    PaEpochStats fwd(num_disks);
    PaEpochStats rev(num_disks);
    for (std::size_t s = 0; s < kShards; ++s)
        fwd.merge(shards[s]);
    for (std::size_t s = kShards; s-- > 0;)
        rev.merge(shards[s]);

    PaParams params;
    params.epochLength = c.cfg.paEpoch;
    const std::pair<const PaEpochStats *, const char *> orders[] = {
        {&fwd, "forward"}, {&rev, "reverse"}};
    for (const auto &[mergedPtr, order] : orders) {
        const PaEpochStats &merged = *mergedPtr;
        for (std::size_t d = 0; d < num_disks; ++d) {
            const PaEpochStats::DiskEpoch &g =
                global.disk(static_cast<DiskId>(d));
            const PaEpochStats::DiskEpoch &m =
                merged.disk(static_cast<DiskId>(d));
            if (g.accesses != m.accesses || g.cold != m.cold)
                return failMsg(order, "-merged counters diverge on "
                               "disk ", d, ": ", m.accesses, "/",
                               m.cold, " vs global ", g.accesses, "/",
                               g.cold);
            if (g.intervals.counts() != m.intervals.counts())
                return failMsg(order, "-merged interval buckets "
                               "diverge on disk ", d);
            const PaClassification cg = classifyDiskEpoch(g, params);
            const PaClassification cm = classifyDiskEpoch(m, params);
            if (cg.decided != cm.decided ||
                cg.priority != cm.priority ||
                cg.haveQuantile != cm.haveQuantile ||
                cg.coldFraction != cm.coldFraction ||
                cg.quantile != cm.quantile)
                return failMsg(order, "-merged classification "
                               "diverges on disk ", d, ": priority ",
                               cm.priority, " quantile ", cm.quantile,
                               " vs ", cg.priority, " ", cg.quantile);
        }
    }
    return PropertyResult::ok();
}

PropertyResult
propServeMatchesReplay(const FuzzCase &c)
{
    if (c.trace.empty())
        return PropertyResult::ok();
    ExperimentConfig cfg = experimentConfig(c);
    if (policyNeedsFuture(cfg.policy))
        cfg.policy = PolicyKind::LRU; // serve is on-line only
    const ExperimentResult ref = runExperiment(c.trace, cfg);

    serve::ServeConfig sc;
    sc.exp = cfg;
    sc.ringCapacity = 256;
    sc.batch = 16;
    for (const std::size_t threads : {1, 3}) {
        sc.shards = 1;
        sc.threads = threads;
        const serve::ServeResult sr =
            serve::ServeServer::replayTrace(c.trace, sc);
        const std::string diff = diffResults(sr.result, ref);
        if (!diff.empty())
            return failMsg("serve (1 shard, ", threads,
                           " threads) diverges from replay: ", diff);
        if (!sr.ledgerConserves)
            return failMsg("serve (1 shard, ", threads,
                           " threads) breaks ledger conservation "
                           "(max rel error ", sr.ledgerMaxRelError,
                           ")");
    }

    // Striping partitions the cache, so 2-shard results are their own
    // semantic — but they must be invariant to the worker count.
    if (cfg.cacheBlocks < 2)
        return PropertyResult::ok(); // a shard would get 0 blocks
    sc.shards = 2;
    sc.threads = 1;
    const serve::ServeResult one =
        serve::ServeServer::replayTrace(c.trace, sc);
    sc.threads = 3;
    const serve::ServeResult three =
        serve::ServeServer::replayTrace(c.trace, sc);
    const std::string diff = diffResults(one.result, three.result);
    if (!diff.empty())
        return failMsg("2-shard serve varies with thread count: ",
                       diff);
    if (!one.ledgerConserves || !three.ledgerConserves)
        return failMsg("2-shard serve breaks ledger conservation");
    return PropertyResult::ok();
}

PropertyResult
propPctRoundTrip(const FuzzCase &c)
{
    std::ostringstream stem;
    stem << c.seed << ".pct";
    const TempFile tmp(stem.str());
    {
        tracefmt::PctWriter writer(tmp.path);
        for (const TraceRecord &rec : c.trace)
            writer.append(rec);
        writer.finish();
    }

    auto compare = [&](tracefmt::TraceSource &src,
                       const char *reader) -> PropertyResult {
        TraceRecord rec;
        std::size_t i = 0;
        while (src.next(rec)) {
            if (i >= c.trace.size())
                return failMsg(reader, " yields ", i + 1,
                               "+ records, wrote ", c.trace.size());
            if (!(rec == c.trace[i]))
                return failMsg(reader, " record ", i,
                               " differs after round-trip: got '",
                               toString(rec), "', wrote '",
                               toString(c.trace[i]), "'");
            ++i;
        }
        if (i != c.trace.size())
            return failMsg(reader, " yields ", i, " records, wrote ",
                           c.trace.size());
        return PropertyResult::ok();
    };

    tracefmt::PctBufferedSource buffered(tmp.path);
    PropertyResult r = compare(buffered, "buffered reader");
    if (!r.passed)
        return r;
    tracefmt::PctMmapSource mapped(tmp.path);
    return compare(mapped, "mmap reader");
}

uint64_t
hitsAt(const Trace &trace, std::size_t capacity, bool belady)
{
    const std::vector<BlockAccess> accesses = expandTrace(trace);
    LruPolicy lru;
    BeladyPolicy min;
    ReplacementPolicy &policy =
        belady ? static_cast<ReplacementPolicy &>(min)
               : static_cast<ReplacementPolicy &>(lru);
    Cache cache(capacity, policy);
    policy.prepare(accesses);
    for (std::size_t i = 0; i < accesses.size(); ++i)
        cache.access(accesses[i].block, accesses[i].time, i);
    return cache.stats().hits;
}

PropertyResult
propHitCountMonotone(const FuzzCase &c)
{
    // LRU and Belady are stack algorithms: a strictly larger cache
    // can never hit less often on the same stream.
    const std::size_t base = c.cfg.cacheBlocks > 0 ? c.cfg.cacheBlocks : 1;
    for (const bool belady : {false, true}) {
        uint64_t prev = 0;
        for (const std::size_t cap : {base, base * 2, base * 4}) {
            const uint64_t hits = hitsAt(c.trace, cap, belady);
            if (cap != base && hits < prev)
                return failMsg(belady ? "Belady" : "LRU",
                               " hits dropped from ", prev, " to ",
                               hits, " when the cache grew to ", cap,
                               " blocks");
            prev = hits;
        }
    }
    return PropertyResult::ok();
}

PropertyResult
propEnergyAccountingIdentity(const FuzzCase &c)
{
    if (c.trace.empty())
        return PropertyResult::ok();
    const ExperimentConfig cfg = experimentConfig(c);
    const ExperimentResult res = runExperiment(c.trace, cfg);
    const CacheStats &cs = res.cache;

    if (cs.hits + cs.misses != cs.accesses)
        return failMsg("hits (", cs.hits, ") + misses (", cs.misses,
                       ") != accesses (", cs.accesses, ")");
    if (res.responses.count() != c.trace.size())
        return failMsg("responses.count() = ", res.responses.count(),
                       " but the trace has ", c.trace.size(),
                       " requests");

    auto relClose = [](double a, double b, double rel) {
        const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
        return std::fabs(a - b) <= rel * scale;
    };

    Energy perDiskSum = 0;
    for (const EnergyStats &d : res.perDisk)
        perDiskSum += d.total();
    if (!relClose(perDiskSum, res.energy.total(), 1e-9))
        return failMsg("sum of per-disk energy ", perDiskSum,
                       " != aggregate ", res.energy.total());

    const PowerModel pm = c.powerModel();
    for (std::size_t d = 0; d < res.perDisk.size(); ++d) {
        const EnergyStats &es = res.perDisk[d];
        Energy parts = es.serviceEnergy + es.spinUpEnergy +
                       es.spinDownEnergy;
        for (const Energy e : es.idleEnergyPerMode)
            parts += e;
        if (!relClose(parts, es.total(), 1e-9))
            return failMsg("disk ", d, ": component sum ", parts,
                           " != total() ", es.total());
        if (es.spinUps > es.spinDowns)
            return failMsg("disk ", d, ": ", es.spinUps,
                           " spin-ups exceed ", es.spinDowns,
                           " demotion steps");
        if (es.idleEnergyPerMode.size() != res.numModes)
            return failMsg("disk ", d, ": breakdown has ",
                           es.idleEnergyPerMode.size(),
                           " modes, model has ", res.numModes);
        // Oracle DPM prices a closed gap as idlePower * gap without
        // splitting out the transition residency, so the per-mode
        // residency-times-power identity only holds for the on-line
        // regimes (see DESIGN.md).
        if (cfg.dpm == DpmChoice::Oracle)
            continue;
        for (std::size_t m = 0; m < es.idleEnergyPerMode.size(); ++m) {
            const Energy fromTime =
                es.timePerMode[m] * pm.mode(m).idlePower;
            if (!relClose(fromTime, es.idleEnergyPerMode[m], 1e-6))
                return failMsg("disk ", d, " mode ", m, ": residency ",
                               es.timePerMode[m], "s x ",
                               pm.mode(m).idlePower, "W = ", fromTime,
                               "J but idleEnergyPerMode records ",
                               es.idleEnergyPerMode[m], "J");
        }
    }
    return PropertyResult::ok();
}

PropertyResult
propWtduRecoveryIdempotent(const FuzzCase &c)
{
    const std::size_t numDisks = std::max<std::size_t>(
        c.trace.numDisks(), 1);
    const std::size_t region =
        c.cfg.wtduRegionBlocks > 0 ? c.cfg.wtduRegionBlocks : 1;
    WtduLog log(numDisks, region);

    // Model of exactly-the-acknowledged-writes: everything appended
    // since a region's last retire must come back from recover(), in
    // append order, with the exact payload versions.
    std::vector<std::vector<std::pair<BlockNum, uint64_t>>> pending(
        numDisks);
    uint64_t version = 1;
    uint64_t steps = 0;
    for (const TraceRecord &rec : c.trace) {
        if (!rec.write)
            continue;
        if (steps++ == c.cfg.crashStep)
            break; // crash: everything after never happened
        if (log.full(rec.disk)) {
            // Data disk spun up and flushed; region retires.
            log.retire(rec.disk);
            pending[rec.disk].clear();
        }
        if (!log.append(rec.disk, rec.block, version))
            return failMsg("append refused for disk ", rec.disk,
                           " directly after a retire");
        pending[rec.disk].emplace_back(rec.block, version);
        ++version;
    }

    for (DiskId d = 0; d < numDisks; ++d) {
        const std::vector<WtduLog::Entry> first = log.recover(d);
        const std::vector<WtduLog::Entry> second = log.recover(d);
        if (first.size() != second.size())
            return failMsg("recover() is not idempotent on disk ", d,
                           ": ", first.size(), " then ", second.size(),
                           " entries");
        for (std::size_t i = 0; i < first.size(); ++i)
            if (first[i].block != second[i].block ||
                first[i].version != second[i].version)
                return failMsg("recover() is not idempotent on disk ",
                               d, " at entry ", i);

        if (first.size() != pending[d].size())
            return failMsg("disk ", d, ": recover() replays ",
                           first.size(), " entries, ",
                           pending[d].size(),
                           " writes were acknowledged since the last "
                           "retire");
        for (std::size_t i = 0; i < first.size(); ++i) {
            if (first[i].block != pending[d][i].first ||
                first[i].version != pending[d][i].second)
                return failMsg("disk ", d, " entry ", i,
                               ": recovered block ", first[i].block,
                               " v", first[i].version, ", expected ",
                               pending[d][i].first, " v",
                               pending[d][i].second);
        }
    }
    return PropertyResult::ok();
}

PropertyResult
propOpgIncrementalConsistent(const FuzzCase &c)
{
    const PowerModel pm = c.powerModel();
    OpgPolicy policy(pm, c.cfg.dpmKind, c.cfg.theta);
    const std::vector<BlockAccess> accesses = expandTrace(c.trace);
    RecordingPolicy rec(policy);
    Cache cache(c.cfg.cacheBlocks > 0 ? c.cfg.cacheBlocks : 1, rec);
    rec.prepare(accesses);
    for (std::size_t i = 0; i < accesses.size(); ++i) {
        cache.access(accesses[i].block, accesses[i].time, i);
        if (i % 64 == 63) {
            try {
                policy.validateInternalState(/*full=*/true);
            } catch (const std::logic_error &e) {
                return failMsg("OPG internal state invalid after "
                               "access ",
                               i, ": ", e.what());
            }
        }
    }
    try {
        policy.validateInternalState(/*full=*/true);
    } catch (const std::logic_error &e) {
        return failMsg("OPG internal state invalid after replay: ",
                       e.what());
    }
    return PropertyResult::ok();
}

PropertyResult
propLedgerConservation(const FuzzCase &c)
{
    if (c.trace.empty())
        return PropertyResult::ok();
    const ExperimentConfig cfg = experimentConfig(c);
    const ExperimentResult res = runExperiment(c.trace, cfg);

    for (std::size_t d = 0; d < res.perDisk.size(); ++d) {
        const double err = obs::ledgerRelError(res.perDisk[d]);
        if (err > obs::kLedgerConservationTol)
            return failMsg("disk ", d,
                           ": ledger rows diverge from the energy "
                           "totals by rel error ",
                           err, " (spinUps=", res.perDisk[d].spinUps,
                           ")");
    }
    const double aggErr = obs::ledgerMaxRelError(res.perDisk);
    if (aggErr > obs::kLedgerConservationTol)
        return failMsg("aggregate ledger rel error ", aggErr,
                       " exceeds ", obs::kLedgerConservationTol);
    // The run-level aggregate must also decompose: it is the same
    // EnergyStats sum the reports print.
    const double runErr = obs::ledgerRelError(res.energy);
    if (runErr > obs::kLedgerConservationTol)
        return failMsg("run aggregate ledger rel error ", runErr);
    return PropertyResult::ok();
}

PropertyResult
propHdrQuantileAccuracy(const FuzzCase &c)
{
    Rng rng(deriveSeed(c.seed, 0x4d78));
    const std::size_t n = 256 + rng.below(4096);
    std::vector<double> samples;
    samples.reserve(n);
    LogHistogram hist;
    for (std::size_t i = 0; i < n; ++i) {
        double v;
        switch (rng.below(3)) {
          case 0: v = rng.exponential(0.02); break;
          case 1: v = rng.pareto(1.5, 1e-4); break;
          default: v = rng.uniform(1e-6, 1e4); break;
        }
        // Keep clear of the histogram's under/overflow buckets, where
        // the relative-error bound intentionally does not hold.
        v = std::clamp(v, 1e-6, 1e9);
        samples.push_back(v);
        hist.record(v);
    }
    std::sort(samples.begin(), samples.end());

    if (hist.count() != n)
        return failMsg("histogram count ", hist.count(), " != ", n);

    double prev = 0.0;
    for (const double p :
         {0.0, 0.01, 0.10, 0.50, 0.90, 0.95, 0.99, 0.999, 1.0}) {
        const std::size_t rank = std::min<std::size_t>(
            n, std::max<std::size_t>(
                   1, static_cast<std::size_t>(std::ceil(
                          p * static_cast<double>(n)))));
        const double exact = samples[rank - 1];
        const double got = hist.quantile(p);
        if (got < prev)
            return failMsg("quantile(", p, ") = ", got,
                           " is below quantile of the previous p (",
                           prev, ")");
        prev = got;
        const double err = std::fabs(got - exact) /
                           std::max(std::fabs(exact), 1e-300);
        if (err > LogHistogram::kMaxRelativeError)
            return failMsg("quantile(", p, ") = ", got,
                           " but exact nearest-rank is ", exact,
                           " (rel error ", err, " > ",
                           LogHistogram::kMaxRelativeError, ")");
    }
    if (hist.quantile(1.0) != samples.back())
        return failMsg("quantile(1.0) = ", hist.quantile(1.0),
                       " != exact max ", samples.back());
    return PropertyResult::ok();
}

PropertyResult
propDpmTwoCompetitive(const FuzzCase &c)
{
    const PowerModel pm = c.powerModel();

    const std::vector<Time> &th = pm.thresholds();
    for (std::size_t i = 1; i < th.size(); ++i)
        if (!(th[i - 1] < th[i]))
            return failMsg("thresholds not strictly ascending: t", i - 1,
                           " = ", th[i - 1], " >= t", i, " = ", th[i]);

    Rng rng(deriveSeed(c.seed, 0x2c0));
    for (int i = 0; i < 200; ++i) {
        const Time t = std::pow(10.0, rng.uniform(-3.0, 5.0));
        const Energy lower = pm.envelope(t);
        const Energy prac = pm.practicalEnergy(t);
        const double slack = 1e-9 * std::max(std::fabs(lower), 1.0);
        if (prac < lower - slack)
            return failMsg("practicalEnergy(", formatExact(t), ") = ",
                           prac, " beats the lower envelope ", lower);
        if (prac > 2 * lower + slack)
            return failMsg("practicalEnergy(", formatExact(t), ") = ",
                           prac, " exceeds twice the envelope ",
                           2 * lower, " (not 2-competitive)");
    }
    return PropertyResult::ok();
}

} // namespace

PropertyResult
checkPolicyDifferential(const FuzzCase &c, ReplacementPolicy &candidate,
                        ReplacementPolicy &reference)
{
    const Replay cand = replayPolicy(c, candidate);
    const Replay ref = replayPolicy(c, reference);

    const std::size_t n = std::min(cand.victims.size(),
                                   ref.victims.size());
    for (std::size_t i = 0; i < n; ++i)
        if (!(cand.victims[i] == ref.victims[i]))
            return failMsg(candidate.name(), " evicts ",
                           blockStr(cand.victims[i]), " at eviction ",
                           i, ", ", reference.name(), " evicts ",
                           blockStr(ref.victims[i]));
    if (cand.victims.size() != ref.victims.size())
        return failMsg(candidate.name(), " performs ",
                       cand.victims.size(), " evictions, ",
                       reference.name(), " performs ",
                       ref.victims.size());

    auto counter = [&](const char *what, uint64_t a,
                       uint64_t b) -> PropertyResult {
        if (a != b)
            return failMsg(candidate.name(), " ", what, " = ", a,
                           " but ", reference.name(), " ", what, " = ",
                           b);
        return PropertyResult::ok();
    };
    PropertyResult r = counter("hits", cand.stats.hits, ref.stats.hits);
    if (!r.passed)
        return r;
    r = counter("misses", cand.stats.misses, ref.stats.misses);
    if (!r.passed)
        return r;
    r = counter("evictions", cand.stats.evictions, ref.stats.evictions);
    if (!r.passed)
        return r;
    return counter("coldMisses", cand.stats.coldMisses,
                   ref.stats.coldMisses);
}

const std::vector<PropertyDef> &
allProperties()
{
    static const std::vector<PropertyDef> registry = {
        {"opg_matches_ref",
         "OPG fast path evicts and counts bit-identically to the "
         "retained node-based reference with legacy pricing",
         propOpgMatchesRef},
        {"belady_matches_ref",
         "Belady indexed-heap fast path is bit-identical to the "
         "retained set-based reference",
         propBeladyMatchesRef},
        {"energy_tables_match_legacy",
         "PiecewiseEnergy/envelope tables match the legacy per-call "
         "scans bitwise on fuzzed specs (incl. thresholds and +inf)",
         propEnergyTablesMatchLegacy},
        {"streaming_matches_materialized",
         "Streaming a trace through a TraceSource reproduces the "
         "materialized run's statistics exactly",
         propStreamingMatchesMaterialized},
        {"windowed_oracle_equivalence",
         "Off-line replay on windowed out-of-core future knowledge "
         "(fuzzed window and chunk sizes) is bit-identical to the "
         "materialized oracle",
         propWindowedOracleEquivalence},
        {"spilled_oracle_equivalence",
         "Replay with the spillable oracle store (materialized and "
         "windowed, budgets from one byte to SIZE_MAX) is "
         "bit-identical to the unbounded in-memory oracle",
         propSpilledOracleEquivalence},
        {"parallel_matches_serial",
         "runAll with --jobs N returns results identical to the "
         "serial run",
         propParallelMatchesSerial},
        {"pa_shard_merge_equivalence",
         "PA epoch stats merged from per-shard accumulators (either "
         "merge order) equal one accumulator fed the interleaved "
         "stream, classification included",
         propPaShardMergeEquivalence},
        {"serve_matches_replay",
         "The sharded concurrent server replays a trace with "
         "statistics identical to runExperiment at 1 shard for any "
         "thread count, and thread-invariant at 2 shards",
         propServeMatchesReplay},
        {"pct_roundtrip_identity",
         "Writing a trace to .pct and reading it back (buffered and "
         "mmap) is the identity",
         propPctRoundTrip},
        {"hit_count_monotone",
         "LRU and Belady hit counts never decrease when the cache "
         "grows (stack-algorithm inclusion)",
         propHitCountMonotone},
        {"energy_accounting_identity",
         "Energy breakdowns sum to totals, residency prices per-mode "
         "energy, and every request gets a response",
         propEnergyAccountingIdentity},
        {"wtdu_recovery_idempotent",
         "WTDU log recovery at a fuzzed crash point replays exactly "
         "the acknowledged writes, twice over",
         propWtduRecoveryIdempotent},
        {"opg_incremental_consistent",
         "OPG incremental bookkeeping matches a from-scratch penalty "
         "recomputation throughout replay",
         propOpgIncrementalConsistent},
        {"dpm_two_competitive",
         "Practical DPM stays within twice the Oracle envelope and "
         "its thresholds ascend",
         propDpmTwoCompetitive},
        {"energy_ledger_conservation",
         "Per-disk and aggregate energy ledgers reconcile with the "
         "energy totals within 1e-9 relative, spin-up counts exactly",
         propLedgerConservation},
        {"hdr_quantile_accuracy",
         "LogHistogram quantiles stay within the documented relative "
         "error of exact nearest-rank on fuzzed mixed samples",
         propHdrQuantileAccuracy},
        {"wtdu_crash_durability",
         "A power failure injected at the case's generated crash site "
         "loses no acknowledged write and resurrects no unissued one "
         "after WTDU recovery over the surviving log image",
         propWtduCrashDurability},
        {"wtdu_crash_ledger",
         "Per-disk energy ledgers still reconcile after a crash is "
         "injected, the queue drained, and accounting finalized",
         propWtduCrashLedger},
        {"wtdu_recovery_idempotent_under_crash",
         "WTDU recovery crashed mid-replay and re-run applies exactly "
         "the block versions a single uninterrupted pass applies",
         propWtduRecoveryIdempotentUnderCrash},
        {"serve_crash_shutdown_recovery",
         "A crash at serve-mode shutdown leaves every stripe's WTDU "
         "log bit-identical to replay mode at 1 shard, recovery "
         "included",
         propServeCrashShutdownRecovery},
    };
    return registry;
}

const PropertyDef *
findProperty(const std::string &name)
{
    for (const PropertyDef &prop : allProperties())
        if (name == prop.name)
            return &prop;
    return nullptr;
}

PropertyResult
runProperty(const PropertyDef &prop, const FuzzCase &c)
{
    try {
        return prop.check(c);
    } catch (const std::exception &e) {
        return PropertyResult::fail(std::string("exception: ") +
                                    e.what());
    }
}

} // namespace pacache::qa
