/**
 * @file
 * Domain generators for the qa subsystem: Gen<T> pipelines producing
 * whole FuzzCases — synthetic traces (Zipf/Pareto mixes, bursty
 * arrivals, varied read/write ratios, multi-disk skew) through
 * trace/synthetic, plus fuzzed cache sizes, power-model parameter
 * sets, and write-policy/DPM combinations.
 *
 * Everything is seed-deterministic: genCase(profile)(Rng(seed))
 * produces the same case on every host, and a campaign derives case
 * i's rng from deriveSeed(masterSeed, i), so cases are independent
 * and individually reproducible.
 */

#ifndef PACACHE_QA_TRACE_GEN_HH
#define PACACHE_QA_TRACE_GEN_HH

#include "qa/fuzz_case.hh"
#include "qa/gen.hh"
#include "trace/synthetic.hh"

namespace pacache::qa
{

/** Bounds for generated cases; the default profile keeps one case in
 *  the low-millisecond range so campaigns sustain hundreds of cases
 *  per second of budget. */
struct CaseProfile
{
    uint64_t minRequests = 200;
    uint64_t maxRequests = 1200;
    uint32_t minDisks = 1;
    uint32_t maxDisks = 5;
    std::size_t minCacheBlocks = 4;
    std::size_t maxCacheBlocks = 256;
    /** Probability a case gets skewed (non-uniform) disk weights. */
    double skewProb = 0.5;
};

/** Synthetic workload parameters (trace shape only, no seed). */
Gen<SyntheticParams> genTraceParams(const CaseProfile &profile);

/** Fuzzed disk data-sheet constants (always a valid power model). */
Gen<DiskSpec> genDiskSpec();

/** System knobs: cache size, policies, DPM regimes, write policy. */
Gen<CaseConfig> genCaseConfig(const CaseProfile &profile);

/**
 * A fault scenario for the crash properties: a site, which hit of it
 * fires, and the seeded in-flight write survival draw. Always armed;
 * properties that ignore faults simply never wire an injector.
 */
Gen<CrashPlan> genCrashPlan();

/**
 * A whole case: config + materialized trace. The trace's generator
 * seed is drawn from the same rng, so one rng drives everything.
 */
Gen<FuzzCase> genCase(const CaseProfile &profile = {});

/** Convenience: the case produced by master seed @p seed, index @p i. */
FuzzCase makeCase(uint64_t master_seed, uint64_t index,
                  const CaseProfile &profile = {});

} // namespace pacache::qa

#endif // PACACHE_QA_TRACE_GEN_HH
