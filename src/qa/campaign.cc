#include "qa/campaign.hh"

#include <chrono>
#include <filesystem>
#include <sstream>

#include "qa/shrink.hh"
#include "runner/thread_pool.hh"
#include "util/logging.hh"

namespace pacache::qa
{

namespace
{

/** One case's verdicts across the selected properties. */
struct CaseOutcome
{
    /** Index into the selected-property list, one failure message
     *  each; empty = clean case. */
    std::vector<std::pair<std::size_t, std::string>> failures;
};

CaseOutcome
runCase(const FuzzCase &c,
        const std::vector<const PropertyDef *> &props)
{
    CaseOutcome out;
    for (std::size_t p = 0; p < props.size(); ++p) {
        const PropertyResult r = runProperty(*props[p], c);
        if (!r.passed)
            out.failures.emplace_back(p, r.message);
    }
    return out;
}

std::string
corpusFileName(const CampaignFailure &failure)
{
    std::ostringstream os;
    os << failure.property << '_' << failure.caseSeed << ".corpus";
    return os.str();
}

} // namespace

CampaignReport
runCampaign(const CampaignOptions &opts)
{
    using Clock = std::chrono::steady_clock;

    std::vector<const PropertyDef *> props = opts.properties;
    if (props.empty())
        for (const PropertyDef &prop : allProperties())
            props.push_back(&prop);
    PACACHE_ASSERT(opts.cases > 0 || opts.seconds > 0,
                   "campaign needs a case count or a time budget");

    CampaignReport report;
    report.tallies.reserve(props.size());
    for (const PropertyDef *prop : props)
        report.tallies.push_back({prop->name, 0, 0});

    const unsigned jobs = opts.jobs == 0
                              ? runner::ThreadPool::defaultWorkers()
                              : opts.jobs;
    const uint64_t batchSize =
        opts.cases > 0 ? opts.cases
                       : std::max<uint64_t>(uint64_t{jobs} * 8, 32);

    const auto start = Clock::now();
    auto elapsed = [&start] {
        return std::chrono::duration<double>(Clock::now() - start)
            .count();
    };

    std::vector<CampaignFailure> rawFailures;
    uint64_t nextIndex = 0;
    runner::ThreadPool pool(jobs);
    for (;;) {
        if (opts.cases > 0 && nextIndex >= opts.cases)
            break;
        if (opts.cases == 0 && elapsed() >= opts.seconds)
            break;

        uint64_t batch = batchSize;
        if (opts.cases > 0)
            batch = std::min<uint64_t>(batch, opts.cases - nextIndex);

        // Pre-assigned slots: aggregation below reads them in case
        // order, so job count never changes the report.
        std::vector<CaseOutcome> outcomes(batch);
        for (uint64_t i = 0; i < batch; ++i) {
            const uint64_t index = nextIndex + i;
            pool.submit([&opts, &props, &outcomes, i, index] {
                const FuzzCase c =
                    makeCase(opts.seed, index, opts.profile);
                outcomes[i] = runCase(c, props);
            });
        }
        pool.wait();

        for (uint64_t i = 0; i < batch; ++i) {
            const uint64_t index = nextIndex + i;
            ++report.casesRun;
            report.checksRun += props.size();
            for (std::size_t p = 0; p < props.size(); ++p)
                ++report.tallies[p].checks;
            for (const auto &[p, message] : outcomes[i].failures) {
                ++report.tallies[p].failures;
                CampaignFailure failure;
                failure.property = props[p]->name;
                failure.caseIndex = index;
                failure.caseSeed = deriveSeed(opts.seed, index);
                failure.message = message;
                rawFailures.push_back(std::move(failure));
            }
        }
        nextIndex += batch;
    }
    // Shrinking is serial and outside the timed loop: it re-runs the
    // failing property many times and would otherwise eat the budget
    // that determines how many cases a --seconds campaign covers.
    for (CampaignFailure &failure : rawFailures) {
        const FuzzCase original =
            makeCase(opts.seed, failure.caseIndex, opts.profile);
        failure.shrunkFrom = original.trace.size();
        failure.shrunk = original;
        const PropertyDef *prop = findProperty(failure.property);
        if (opts.shrink && prop) {
            const FailFn stillFails = [prop](const FuzzCase &c) {
                return !runProperty(*prop, c).passed;
            };
            failure.shrunk = shrinkCase(original, stillFails,
                                        opts.shrinkAttempts);
        }
        if (!opts.corpusDir.empty()) {
            std::filesystem::create_directories(opts.corpusDir);
            CorpusEntry entry;
            entry.meta.property = failure.property;
            entry.meta.preFixRev = opts.revision;
            entry.meta.description = failure.message;
            entry.fuzzCase = failure.shrunk;
            const std::string path =
                (std::filesystem::path(opts.corpusDir) /
                 corpusFileName(failure))
                    .string();
            writeCorpusFile(path, entry);
            failure.corpusPath = path;
        }
        report.failures.push_back(std::move(failure));
    }

    report.wallSeconds = elapsed();
    return report;
}

} // namespace pacache::qa
