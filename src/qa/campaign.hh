/**
 * @file
 * The pacache_fuzz campaign driver: generate cases from a master
 * seed, run every selected property on each, shrink the failures, and
 * emit self-contained corpus reproducers.
 *
 * Determinism: case i is always makeCase(seed, i), regardless of job
 * count or wall clock — a time-budgeted campaign decides only *how
 * many* cases run, never *which* case an index produces, so any
 * failure is exactly reproducible with --seed and the reported case
 * index (or by replaying the emitted corpus file).
 */

#ifndef PACACHE_QA_CAMPAIGN_HH
#define PACACHE_QA_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "qa/properties.hh"
#include "qa/trace_gen.hh"

namespace pacache::qa
{

/** Campaign parameters. */
struct CampaignOptions
{
    uint64_t seed = 1;
    /** Stop after this much wall clock (seconds); 0 = use cases. */
    double seconds = 0;
    /** Run exactly this many cases; 0 = run until seconds expire. */
    uint64_t cases = 0;
    /** Properties to run; empty = the whole registry. */
    std::vector<const PropertyDef *> properties;
    unsigned jobs = 1;
    /** Directory for shrunk reproducers; empty = don't write. */
    std::string corpusDir;
    bool shrink = true;
    /** Cap on predicate evaluations per shrink. */
    std::size_t shrinkAttempts = 2000;
    CaseProfile profile;
    /** Revision stamp recorded in emitted corpus files. */
    std::string revision;
};

/** One property failure, post-shrink. */
struct CampaignFailure
{
    std::string property;
    uint64_t caseIndex = 0;
    uint64_t caseSeed = 0;
    std::string message;        //!< from the original failing case
    FuzzCase shrunk;
    std::size_t shrunkFrom = 0; //!< record count before shrinking
    std::string corpusPath;     //!< empty when not written
};

/** Per-property tally. */
struct PropertyTally
{
    std::string name;
    uint64_t checks = 0;
    uint64_t failures = 0;
};

/** Campaign outcome. */
struct CampaignReport
{
    uint64_t casesRun = 0;
    uint64_t checksRun = 0;
    double wallSeconds = 0;
    std::vector<PropertyTally> tallies; //!< registry order
    std::vector<CampaignFailure> failures;

    bool ok() const { return failures.empty(); }
};

/**
 * Run a campaign. Cases execute on a ThreadPool with pre-assigned
 * result slots (batch results are aggregated in case order);
 * shrinking runs serially afterwards so shrink cost never distorts
 * the case budget accounting mid-flight.
 */
CampaignReport runCampaign(const CampaignOptions &opts);

} // namespace pacache::qa

#endif // PACACHE_QA_CAMPAIGN_HH
