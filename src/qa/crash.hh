/**
 * @file
 * Crash-and-power-fail torture harness for WTDU (DESIGN.md 5j).
 *
 * CrashInjector is the qa-side FaultInjector: it counts crash-site
 * hits, fires the case's CrashPlan by throwing CrashException at the
 * planned occurrence, and maintains a durability model of the run —
 * which versions were *issued* per block, which were *acknowledged*
 * to the client, and what the platters durably hold (data-disk
 * writes in flight at the crash survive as a seeded Bernoulli subset,
 * the reordered-flush model).
 *
 * The crash properties run a workload against an injector-wired
 * StorageSystem, catch the simulated power failure, execute WTDU
 * recovery over the surviving log image, and differentially check
 * exactly-the-acknowledged-writes durability: every acknowledged
 * write is recovered at its version (or a newer issued one), and
 * nothing that was never issued materializes. A plan that never
 * fires degrades to a clean-shutdown differential check of the same
 * contract.
 */

#ifndef PACACHE_QA_CRASH_HH
#define PACACHE_QA_CRASH_HH

#include <array>
#include <map>
#include <set>
#include <vector>

#include "core/fault.hh"
#include "qa/properties.hh"

namespace pacache::qa
{

/** The qa FaultInjector: site counting, one-shot crash, durability
 *  model. Single-threaded by contract (see FaultInjector). */
class CrashInjector : public FaultInjector
{
  public:
    explicit CrashInjector(const CrashPlan &plan_) : plan(plan_) {}

    void crashPoint(CrashSite site, DiskId disk) override;
    void noteClientWrite(DiskId disk, BlockNum block,
                         uint64_t version) override;
    void noteLogAppend(DiskId disk, BlockNum block,
                       uint64_t version) override;
    uint64_t noteDataWriteSubmitted(DiskId disk, BlockNum first,
                                    uint32_t count, bool acks) override;
    void noteDataWriteDurable(uint64_t id) override;

    /** True once the planned crash fired. */
    bool crashed() const { return didCrash; }

    /** Times @p site was reached so far. */
    uint64_t siteHits(CrashSite site) const
    {
        return hits[static_cast<std::size_t>(site)];
    }

    /** block(packed) -> newest version acknowledged to the client. */
    const std::map<uint64_t, uint64_t> &ackedWrites() const
    {
        return acked;
    }

    /** Copy of the modeled durable platter state (block -> version;
     *  absent = never durably written). */
    std::map<uint64_t, uint64_t> durableState() const { return durable; }

    /** Was @p version ever issued for @p key (packed block id)? */
    bool
    wasIssued(uint64_t key, uint64_t version) const
    {
        const auto it = issued.find(key);
        return it != issued.end() && it->second.count(version) > 0;
    }

    /** Data-disk writes still in flight (not yet durable). */
    std::size_t inflightWrites() const { return inflight.size(); }

  private:
    struct InFlight
    {
        bool acks = false;
        /** (packed block, version) content snapshot at submission. */
        std::vector<std::pair<uint64_t, uint64_t>> snapshot;
    };

    void applyDurable(const InFlight &w);
    void settleCrash();

    CrashPlan plan;
    bool didCrash = false;
    std::array<uint64_t, kNumCrashSites> hits{};
    std::map<uint64_t, uint64_t> latest; //!< newest issued per block
    std::map<uint64_t, uint64_t> acked;  //!< newest acked per block
    std::map<uint64_t, std::set<uint64_t>> issued;
    std::map<uint64_t, uint64_t> durable;
    std::map<uint64_t, InFlight> inflight; //!< key order = submit order
    uint64_t nextId = 1;
};

/** The four crash properties (registered in allProperties()). */
PropertyResult propWtduCrashDurability(const FuzzCase &c);
PropertyResult propWtduCrashLedger(const FuzzCase &c);
PropertyResult propWtduRecoveryIdempotentUnderCrash(const FuzzCase &c);
PropertyResult propServeCrashShutdownRecovery(const FuzzCase &c);

} // namespace pacache::qa

#endif // PACACHE_QA_CRASH_HH
