#include "qa/crash.hh"

#include <algorithm>
#include <sstream>
#include <utility>

#include "core/experiment.hh"
#include "core/storage_system.hh"
#include "core/wtdu_log.hh"
#include "disk/disk_array.hh"
#include "disk/dpm.hh"
#include "obs/energy_ledger.hh"
#include "qa/gen.hh"
#include "serve/server.hh"
#include "sim/event_queue.hh"
#include "util/random.hh"

namespace pacache::qa
{

void
CrashInjector::crashPoint(CrashSite site, DiskId disk)
{
    const uint64_t hit = hits[static_cast<std::size_t>(site)]++;
    if (didCrash || !plan.armed || site != plan.site ||
        hit != plan.occurrence) {
        return;
    }
    // Power fails now: decide which in-flight data-disk writes made
    // it to the platters, then freeze the model (post-crash event
    // draining — the ledger property's — must not change it).
    settleCrash();
    didCrash = true;
    throw CrashException(site, disk);
}

void
CrashInjector::noteClientWrite(DiskId disk, BlockNum block,
                               uint64_t version)
{
    const uint64_t key = BlockId{disk, block}.packed();
    latest[key] = version;
    issued[key].insert(version);
}

void
CrashInjector::noteLogAppend(DiskId disk, BlockNum block,
                             uint64_t version)
{
    const uint64_t key = BlockId{disk, block}.packed();
    auto &a = acked[key];
    a = std::max(a, version);
}

uint64_t
CrashInjector::noteDataWriteSubmitted(DiskId disk, BlockNum first,
                                      uint32_t count, bool acks)
{
    if (didCrash)
        return 0; // post-crash drain traffic: not part of the model
    InFlight w;
    w.acks = acks;
    for (uint32_t i = 0; i < count; ++i) {
        const uint64_t key = BlockId{disk, first + i}.packed();
        const auto it = latest.find(key);
        if (it != latest.end())
            w.snapshot.emplace_back(key, it->second);
    }
    const uint64_t id = nextId++;
    inflight.emplace(id, std::move(w));
    return id;
}

void
CrashInjector::noteDataWriteDurable(uint64_t id)
{
    const auto it = inflight.find(id);
    if (it == inflight.end())
        return; // settled by a crash, or post-crash traffic
    applyDurable(it->second);
    if (it->second.acks) {
        for (const auto &[key, version] : it->second.snapshot) {
            auto &a = acked[key];
            a = std::max(a, version);
        }
    }
    inflight.erase(it);
}

void
CrashInjector::applyDurable(const InFlight &w)
{
    for (const auto &[key, version] : w.snapshot) {
        auto &d = durable[key];
        d = std::max(d, version);
    }
}

void
CrashInjector::settleCrash()
{
    // Reordered-flush model: each write in flight at the power
    // failure independently survives with the plan's probability,
    // drawn in submission order from the plan's own seed so the
    // outcome is case-deterministic.
    Rng rng(plan.reorderSeed);
    for (const auto &[id, w] : inflight) {
        if (rng.chance(plan.surviveProb))
            applyDurable(w);
    }
    inflight.clear();
}

namespace
{

template <typename... Args>
PropertyResult
failMsg(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return PropertyResult::fail(os.str());
}

/** The ExperimentConfig a case's knobs describe (crash flavor). */
ExperimentConfig
crashExperimentConfig(const FuzzCase &c)
{
    ExperimentConfig cfg;
    cfg.policy = c.cfg.policy;
    cfg.dpm = c.cfg.dpm;
    cfg.cacheBlocks = c.cfg.cacheBlocks > 0 ? c.cfg.cacheBlocks : 1;
    cfg.storage.writePolicy = c.cfg.writePolicy;
    cfg.storage.wtduRegionBlocks =
        c.cfg.wtduRegionBlocks > 0 ? c.cfg.wtduRegionBlocks : 1;
    cfg.spec = c.cfg.spec;
    cfg.pa.epochLength = c.cfg.paEpoch;
    cfg.opgTheta = c.cfg.theta;
    return cfg;
}

/** The durability properties exercise the WTDU write path only. */
FuzzCase
wtduCase(const FuzzCase &c)
{
    FuzzCase cc = c;
    cc.cfg.writePolicy = WritePolicy::WriteThroughDeferredUpdate;
    return cc;
}

/**
 * A whole injector-wired simulation stack, owned piecewise so the
 * run can be unwound by CrashException and the post-crash state (the
 * WtduLog, the disks' energy accounting) stays inspectable.
 * Mirrors runExperimentImpl()'s construction order.
 */
class CrashRig
{
  public:
    CrashRig(const FuzzCase &c, FaultInjector *inj)
        : cfg(crashExperimentConfig(c)), pm(cfg.spec),
          sm(cfg.spec, cfg.service), practical(pm), adaptive(pm),
          numDisks(std::max<std::size_t>(c.trace.numDisks(), 1)),
          trace(&c.trace)
    {
        if (policyNeedsClassifier(cfg.policy)) {
            classifier = std::make_unique<PaClassifier>(
                numDisks, resolvePaParams(cfg, pm));
        }
        policy = makeReplacementPolicy(cfg, pm, classifier.get(),
                                       cfg.cacheBlocks);
        cache = std::make_unique<Cache>(cfg.cacheBlocks, *policy);

        Dpm *dpm = &static_cast<Dpm &>(alwaysOn);
        if (cfg.dpm == DpmChoice::Practical)
            dpm = &practical;
        else if (cfg.dpm == DpmChoice::Adaptive)
            dpm = &adaptive;
        disks = std::make_unique<DiskArray>(numDisks, eq, pm, sm, *dpm,
                                            cfg.disk);

        StorageConfig scfg = cfg.storage;
        scfg.fault = inj;
        if (scfg.writePolicy ==
            WritePolicy::WriteThroughDeferredUpdate) {
            logDisk = std::make_unique<Disk>(
                static_cast<DiskId>(numDisks), eq, pm, sm, alwaysOn,
                DiskOptions{});
        }
        system = std::make_unique<StorageSystem>(
            *trace, eq, *cache, *disks, scfg, classifier.get(),
            logDisk.get());
    }

    /** Run the workload. @return true if the plan fired. */
    bool
    run()
    {
        try {
            system->run();
            return false;
        } catch (const CrashException &) {
            return true;
        }
    }

    /**
     * Post-crash completion of the simulation's accounting: drain
     * the event queue and finalize every disk at the same
     * policy-independent horizon StorageSystem::finishRun() uses.
     * Only needed after a crash (a clean run() finalizes itself).
     */
    void
    drainAndFinalize()
    {
        eq.runAll();
        const Time tail =
            (pm.thresholds().empty() ? 0.0 : pm.thresholds().back()) +
            pm.mode(pm.deepestMode()).transitionTime() + 10.0;
        const Time horizon =
            std::max(trace->endTime() + tail, eq.now());
        disks->finalize(horizon);
        if (logDisk)
            logDisk->finalize(horizon);
    }

    WtduLog *log() { return system->wtduLog(); }
    DiskArray &diskArray() { return *disks; }
    std::size_t diskCount() const { return numDisks; }

  private:
    ExperimentConfig cfg;
    PowerModel pm;
    ServiceModel sm;
    EventQueue eq;
    AlwaysOnDpm alwaysOn;
    PracticalDpm practical;
    AdaptiveDpm adaptive;
    std::size_t numDisks;
    const Trace *trace;
    std::unique_ptr<PaClassifier> classifier;
    std::unique_ptr<ReplacementPolicy> policy;
    std::unique_ptr<Cache> cache;
    std::unique_ptr<DiskArray> disks;
    std::unique_ptr<Disk> logDisk;
    std::unique_ptr<StorageSystem> system;
};

std::string
describeBlock(uint64_t key)
{
    const BlockId b = BlockId::fromPacked(key);
    std::ostringstream os;
    os << '(' << b.disk << ',' << b.block << ')';
    return os.str();
}

/**
 * The differential durability check: apply WTDU recovery over the
 * surviving log image on top of the injector's durable platter model
 * and demand exactly-the-acknowledged-writes. Empty string = pass.
 */
std::string
checkDurability(CrashInjector &inj, WtduLog &log)
{
    std::map<uint64_t, uint64_t> recovered = inj.durableState();
    std::string replayError;
    log.recoverAll([&](DiskId d, const WtduLog::Entry &e) {
        const uint64_t key = BlockId{d, e.block}.packed();
        if (replayError.empty() && !inj.wasIssued(key, e.version)) {
            std::ostringstream os;
            os << "recovery replays block " << describeBlock(key)
               << " at version " << e.version
               << ", which was never issued for it";
            replayError = os.str();
        }
        // Replay order is append order; later entries overwrite, so
        // an ordering regression shows up as a version mismatch.
        recovered[key] = e.version;
    });
    if (!replayError.empty())
        return replayError;

    for (const auto &[key, ackVer] : inj.ackedWrites()) {
        const auto it = recovered.find(key);
        std::ostringstream os;
        if (it == recovered.end()) {
            os << "acknowledged write lost: block "
               << describeBlock(key) << " acked at version " << ackVer
               << " but nothing recovered";
            return os.str();
        }
        if (it->second == ackVer)
            continue;
        if (it->second < ackVer) {
            os << "acknowledged write lost: block "
               << describeBlock(key) << " acked at version " << ackVer
               << " but recovered at stale version " << it->second;
            return os.str();
        }
        if (!inj.wasIssued(key, it->second)) {
            os << "resurrected write: block " << describeBlock(key)
               << " recovered at version " << it->second
               << ", which was never issued";
            return os.str();
        }
    }
    for (const auto &[key, ver] : recovered) {
        if (!inj.wasIssued(key, ver)) {
            std::ostringstream os;
            os << "resurrected write: block " << describeBlock(key)
               << " durable at version " << ver
               << ", which was never issued";
            return os.str();
        }
    }
    return {};
}

} // namespace

PropertyResult
propWtduCrashDurability(const FuzzCase &c)
{
    if (c.trace.empty())
        return PropertyResult::ok();
    const FuzzCase cc = wtduCase(c);
    CrashInjector inj(cc.cfg.crash);
    CrashRig rig(cc, &inj);
    rig.run(); // a plan that never fires checks the clean shutdown

    const std::string err = checkDurability(inj, *rig.log());
    if (!err.empty())
        return failMsg(crashSiteName(cc.cfg.crash.site),
                       "@", cc.cfg.crash.occurrence,
                       (inj.crashed() ? "" : " (never fired)"), ": ",
                       err);

    // Recovery retired every region: a second pass must be a no-op.
    WtduLog &log = *rig.log();
    for (DiskId d = 0; d < rig.diskCount(); ++d) {
        if (!log.recover(d).empty())
            return failMsg("disk ", d, " still has live log entries "
                           "after recovery retired its region");
    }
    return PropertyResult::ok();
}

PropertyResult
propWtduCrashLedger(const FuzzCase &c)
{
    if (c.trace.empty())
        return PropertyResult::ok();
    FuzzCase cc = wtduCase(c);
    // Oracle DPM energy is priced post-hoc by OracleAnalyzer, not by
    // the disks' own ledger rows; pin the crashed run to a live DPM.
    if (cc.cfg.dpm == DpmChoice::Oracle)
        cc.cfg.dpm = DpmChoice::Practical;
    CrashInjector inj(cc.cfg.crash);
    CrashRig rig(cc, &inj);
    const bool crashed = rig.run();
    if (crashed)
        rig.drainAndFinalize();

    std::vector<EnergyStats> perDisk;
    perDisk.reserve(rig.diskCount());
    for (DiskId d = 0; d < rig.diskCount(); ++d) {
        const EnergyStats &es = rig.diskArray().disk(d).energy();
        const double err = obs::ledgerRelError(es);
        if (err > obs::kLedgerConservationTol)
            return failMsg("disk ", d, ": ledger rel error ", err,
                           " after ",
                           crashed ? "crash recovery" : "clean run",
                           " (site ", crashSiteName(cc.cfg.crash.site),
                           "@", cc.cfg.crash.occurrence, ")");
        perDisk.push_back(es);
    }
    const double aggErr = obs::ledgerMaxRelError(perDisk);
    if (aggErr > obs::kLedgerConservationTol)
        return failMsg("aggregate ledger rel error ", aggErr,
                       " after ", crashed ? "crash" : "clean run");
    return PropertyResult::ok();
}

PropertyResult
propWtduRecoveryIdempotentUnderCrash(const FuzzCase &c)
{
    if (c.trace.empty())
        return PropertyResult::ok();
    const FuzzCase cc = wtduCase(c);
    CrashInjector inj(cc.cfg.crash);
    CrashRig rig(cc, &inj);
    rig.run();

    // Two copies of the surviving log image: one recovered in a
    // single pass, one crashed mid-recovery and recovered again.
    WtduLog once = *rig.log();
    once.setFaultInjector(nullptr);
    WtduLog twice = once;

    std::size_t liveEntries = 0;
    for (DiskId d = 0; d < rig.diskCount(); ++d)
        liveEntries += once.recover(d).size();

    std::map<uint64_t, uint64_t> ref;
    once.recoverAll([&](DiskId d, const WtduLog::Entry &e) {
        ref[BlockId{d, e.block}.packed()] = e.version;
    });

    // One crashPoint(Recovery) precedes every replayed entry and
    // every retire, so this occurrence always lands mid-recovery.
    CrashPlan rp;
    rp.armed = true;
    rp.site = CrashSite::Recovery;
    rp.occurrence = deriveSeed(c.seed, 0xc4a5) %
                    (liveEntries + rig.diskCount());
    CrashInjector rinj(rp);

    std::map<uint64_t, uint64_t> interrupted;
    const auto apply = [&](DiskId d, const WtduLog::Entry &e) {
        interrupted[BlockId{d, e.block}.packed()] = e.version;
    };
    bool recoveryCrashed = false;
    try {
        twice.recoverAll(apply, &rinj);
    } catch (const CrashException &) {
        recoveryCrashed = true;
    }
    if (!recoveryCrashed)
        return failMsg("recovery crash plan at occurrence ",
                       rp.occurrence, " never fired over ",
                       liveEntries, " live entries");
    twice.recoverAll(apply);

    if (interrupted != ref)
        return failMsg("crash-and-rerun recovery applied ",
                       interrupted.size(),
                       " final block versions, single-pass applied ",
                       ref.size(), " (or versions differ)");
    for (DiskId d = 0; d < rig.diskCount(); ++d) {
        if (!twice.recover(d).empty() || !once.recover(d).empty())
            return failMsg("disk ", d,
                           " still has live entries after recovery");
    }
    return PropertyResult::ok();
}

PropertyResult
propServeCrashShutdownRecovery(const FuzzCase &c)
{
    if (c.trace.empty())
        return PropertyResult::ok();
    FuzzCase cc = wtduCase(c);
    if (policyNeedsFuture(cc.cfg.policy))
        cc.cfg.policy = PolicyKind::LRU; // serve is on-line only
    // The only crash site reached from the serve shutdown path (the
    // workers are joined first, so mid-workload sites would throw on
    // a worker thread).
    cc.cfg.crash.armed = true;
    cc.cfg.crash.site = CrashSite::Shutdown;
    cc.cfg.crash.occurrence = 0;

    CrashInjector replayInj(cc.cfg.crash);
    CrashRig rig(cc, &replayInj);
    if (!rig.run())
        return failMsg("shutdown crash never fired in replay mode");

    serve::ServeConfig sc;
    sc.exp = crashExperimentConfig(cc);
    sc.shards = 1;
    sc.threads = 1;
    sc.ringCapacity = 256;
    sc.batch = 16;
    sc.numDisks = std::max<std::size_t>(c.trace.numDisks(), 1);
    CrashInjector serveInj(cc.cfg.crash);
    sc.exp.storage.fault = &serveInj;

    serve::ServeServer server(sc);
    server.start();
    const std::vector<BlockAccess> accesses = expandTrace(c.trace);
    serve::ServeRequest req;
    for (std::size_t i = 0; i < accesses.size(); ++i) {
        const BlockAccess &acc = accesses[i];
        req.time = acc.time;
        req.block = acc.block;
        req.write = acc.write;
        req.traceIndex = acc.traceIndex;
        req.idx = i;
        req.submitNs = 0;
        server.submit(req);
    }
    bool serveCrashed = false;
    try {
        server.finish(c.trace.endTime());
    } catch (const CrashException &) {
        serveCrashed = true;
    }
    if (!serveCrashed)
        return failMsg("shutdown crash never fired in serve mode");

    // The stripe's surviving log image must be bit-identical to the
    // replay-mode one: same stamps, same free pointers, same
    // physical slots (checksums included).
    WtduLog &replayLog = *rig.log();
    const WtduLog *serveLog = server.shardWtduLog(0);
    if (!serveLog)
        return failMsg("serve stripe has no WTDU log");
    if (serveLog->numDisks() != replayLog.numDisks())
        return failMsg("serve log covers ", serveLog->numDisks(),
                       " disks, replay log ", replayLog.numDisks());
    for (DiskId d = 0; d < replayLog.numDisks(); ++d) {
        if (serveLog->timestamp(d) != replayLog.timestamp(d))
            return failMsg("disk ", d, ": serve region stamp ",
                           serveLog->timestamp(d), " != replay stamp ",
                           replayLog.timestamp(d));
        if (serveLog->used(d) != replayLog.used(d))
            return failMsg("disk ", d, ": serve region uses ",
                           serveLog->used(d), " slots, replay ",
                           replayLog.used(d));
        const auto &sslots = serveLog->entries(d);
        const auto &rslots = replayLog.entries(d);
        if (sslots.size() != rslots.size())
            return failMsg("disk ", d, ": serve region holds ",
                           sslots.size(), " physical slots, replay ",
                           rslots.size());
        for (std::size_t i = 0; i < sslots.size(); ++i) {
            if (sslots[i] != rslots[i])
                return failMsg("disk ", d, " slot ", i,
                               ": serve entry (block ",
                               sslots[i].block, " v",
                               sslots[i].version, " stamp ",
                               sslots[i].stamp,
                               ") != replay entry (block ",
                               rslots[i].block, " v",
                               rslots[i].version, " stamp ",
                               rslots[i].stamp, ")");
        }
    }

    // And recovery over the two images must replay the exact same
    // write sequence.
    using Write = std::tuple<DiskId, BlockNum, uint64_t>;
    std::vector<Write> replayWrites, serveWrites;
    replayLog.recoverAll([&](DiskId d, const WtduLog::Entry &e) {
        replayWrites.emplace_back(d, e.block, e.version);
    });
    WtduLog serveCopy = *serveLog;
    serveCopy.setFaultInjector(nullptr);
    serveCopy.recoverAll([&](DiskId d, const WtduLog::Entry &e) {
        serveWrites.emplace_back(d, e.block, e.version);
    });
    if (replayWrites != serveWrites)
        return failMsg("recovery replays ", serveWrites.size(),
                       " writes from the serve log but ",
                       replayWrites.size(),
                       " from the replay log (or they differ)");
    return PropertyResult::ok();
}

} // namespace pacache::qa
