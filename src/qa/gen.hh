/**
 * @file
 * Gen<T> — tiny composable generator combinators for the qa
 * subsystem.
 *
 * A Gen<T> is a deterministic function Rng -> T. Every combinator
 * draws from the Rng it is handed, so a case is fully reproducible
 * from one 64-bit seed: same seed, same draws, same value, on every
 * platform (the Rng is SplitMix64, not std:: distributions).
 *
 * Independent sub-streams are derived with deriveSeed(master, index),
 * so a campaign can hand case i its own Rng without the cases'
 * consumption patterns interfering — adding a draw to one generator
 * never perturbs any other case.
 */

#ifndef PACACHE_QA_GEN_HH
#define PACACHE_QA_GEN_HH

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/logging.hh"
#include "util/random.hh"

namespace pacache::qa
{

/**
 * Derive the seed of an independent sub-stream: one SplitMix64 step
 * over (master ^ golden-ratio * (index + 1)). Distinct indices give
 * decorrelated streams even for adjacent master seeds.
 */
inline uint64_t
deriveSeed(uint64_t master, uint64_t index)
{
    uint64_t z = master ^ ((index + 1) * 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** A composable random value generator. */
template <typename T>
class Gen
{
  public:
    using value_type = T;
    using Fn = std::function<T(Rng &)>;

    Gen() = default;
    explicit Gen(Fn fn_) : fn(std::move(fn_)) {}

    T operator()(Rng &rng) const { return fn(rng); }

    /** Apply @p f to every generated value. */
    template <typename F>
    auto
    map(F f) const
    {
        using U = decltype(f(std::declval<T>()));
        Gen<T> self = *this;
        return Gen<U>([self, f](Rng &rng) { return f(self(rng)); });
    }

    /** Monadic bind: let the generated value pick the next Gen. */
    template <typename F>
    auto
    then(F f) const
    {
        using G = decltype(f(std::declval<T>()));
        using U = typename G::value_type;
        Gen<T> self = *this;
        return Gen<U>([self, f](Rng &rng) { return f(self(rng))(rng); });
    }

  private:
    Fn fn;
};

/** Always @p v. */
template <typename T>
Gen<T>
constant(T v)
{
    return Gen<T>([v](Rng &) { return v; });
}

/** Integer uniform in [lo, hi] (inclusive). */
inline Gen<uint64_t>
intIn(uint64_t lo, uint64_t hi)
{
    PACACHE_ASSERT(lo <= hi, "intIn: empty range");
    return Gen<uint64_t>(
        [lo, hi](Rng &rng) { return lo + rng.below(hi - lo + 1); });
}

/** Double uniform in [lo, hi). */
inline Gen<double>
realIn(double lo, double hi)
{
    PACACHE_ASSERT(lo <= hi, "realIn: empty range");
    return Gen<double>([lo, hi](Rng &rng) { return rng.uniform(lo, hi); });
}

/** True with probability @p p. */
inline Gen<bool>
boolWith(double p)
{
    return Gen<bool>([p](Rng &rng) { return rng.chance(p); });
}

/** Uniform pick from a fixed value list. */
template <typename T>
Gen<T>
elementOf(std::vector<T> choices)
{
    PACACHE_ASSERT(!choices.empty(), "elementOf: no choices");
    return Gen<T>([choices = std::move(choices)](Rng &rng) {
        return choices[rng.below(choices.size())];
    });
}

/** Uniform pick among sub-generators. */
template <typename T>
Gen<T>
oneOf(std::vector<Gen<T>> gens)
{
    PACACHE_ASSERT(!gens.empty(), "oneOf: no generators");
    return Gen<T>([gens = std::move(gens)](Rng &rng) {
        return gens[rng.below(gens.size())](rng);
    });
}

/** Weighted pick among sub-generators (weights need not sum to 1). */
template <typename T>
Gen<T>
frequency(std::vector<std::pair<double, Gen<T>>> weighted)
{
    PACACHE_ASSERT(!weighted.empty(), "frequency: no generators");
    double total = 0;
    for (const auto &[w, g] : weighted) {
        PACACHE_ASSERT(w >= 0, "frequency: negative weight");
        total += w;
    }
    PACACHE_ASSERT(total > 0, "frequency: all weights zero");
    return Gen<T>([weighted = std::move(weighted), total](Rng &rng) {
        double pick = rng.uniform() * total;
        for (const auto &[w, g] : weighted) {
            pick -= w;
            if (pick < 0)
                return g(rng);
        }
        return weighted.back().second(rng); // FP slack lands here
    });
}

/** A vector whose length is drawn from @p size. */
template <typename T>
Gen<std::vector<T>>
vectorOf(Gen<T> item, Gen<uint64_t> size)
{
    return Gen<std::vector<T>>([item = std::move(item),
                                size = std::move(size)](Rng &rng) {
        const uint64_t n = size(rng);
        std::vector<T> out;
        out.reserve(static_cast<std::size_t>(n));
        for (uint64_t i = 0; i < n; ++i)
            out.push_back(item(rng));
        return out;
    });
}

} // namespace pacache::qa

#endif // PACACHE_QA_GEN_HH
