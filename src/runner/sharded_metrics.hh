/**
 * @file
 * Thread-safe sharded instruments for the parallel sweep runner and
 * the future concurrent serving mode.
 *
 * Each instrument spreads updates over a fixed number of shards
 * (fixed = independent of the worker count) so concurrent writers
 * rarely contend, then merges deterministically after the barrier:
 * counters sum with commutative integer addition, histograms merge
 * exact bucket counts, so the merged result is byte-identical for
 * any job count and any thread/shard assignment of the same value
 * multiset. Deterministic reporting must therefore use the
 * bucket-derived statistics (bucketSum/bucketMean/quantile), never
 * the order-dependent floating-point sum of raw values.
 */

#ifndef PACACHE_RUNNER_SHARDED_METRICS_HH
#define PACACHE_RUNNER_SHARDED_METRICS_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include <string>

#include "util/log_histogram.hh"

namespace pacache
{
namespace obs
{
class MetricRegistry;
}
}

namespace pacache::runner
{

/** Default shard count; plenty for the pool's max worker count. */
constexpr std::size_t kDefaultShards = 16;

/** Monotonic counter sharded over cache-line-padded atomics. */
class ShardedCounter
{
  public:
    explicit ShardedCounter(std::size_t shards = kDefaultShards)
        : slots(shards == 0 ? 1 : shards)
    {
    }

    /** Add @p by on the shard for @p key (e.g. the task index). */
    void inc(std::size_t key, uint64_t by = 1)
    {
        slots[key % slots.size()].value.fetch_add(
            by, std::memory_order_relaxed);
    }

    /** Sum over shards; exact and shard-layout independent. */
    uint64_t total() const
    {
        uint64_t sum = 0;
        for (const Slot &s : slots)
            sum += s.value.load(std::memory_order_relaxed);
        return sum;
    }

    std::size_t shards() const { return slots.size(); }

  private:
    struct alignas(64) Slot
    {
        std::atomic<uint64_t> value{0};
    };

    std::vector<Slot> slots;
};

/**
 * LogHistogram sharded behind per-shard locks. record() contends
 * only within a shard; merged() runs post-barrier.
 */
class ShardedHistogram
{
  public:
    explicit ShardedHistogram(std::size_t shards = kDefaultShards)
        : slots(shards == 0 ? 1 : shards)
    {
    }

    /** Record @p v on the shard for @p key (e.g. the task index). */
    void record(std::size_t key, double v)
    {
        Slot &slot = slots[key % slots.size()];
        const std::lock_guard<std::mutex> lock(slot.mutex);
        slot.hist.record(v);
    }

    /**
     * Merge every shard (fixed order). Bucket counts, min/max, and
     * count are exact; use the result's bucket-derived statistics
     * for output that must be byte-identical across job counts.
     */
    LogHistogram merged() const
    {
        LogHistogram out;
        for (const Slot &s : slots) {
            const std::lock_guard<std::mutex> lock(s.mutex);
            out.merge(s.hist);
        }
        return out;
    }

    std::size_t shards() const { return slots.size(); }

  private:
    struct alignas(64) Slot
    {
        mutable std::mutex mutex;
        LogHistogram hist;
    };

    std::vector<Slot> slots;
};

/**
 * Emit a merged histogram as "<prefix>.count/.mean/.p50/.p95/.p99/
 * .min/.max" gauges, using only bucket-derived (shard-layout
 * independent) statistics.
 */
void recordDistGauges(obs::MetricRegistry &registry,
                      const std::string &prefix,
                      const LogHistogram &hist);

} // namespace pacache::runner

#endif // PACACHE_RUNNER_SHARDED_METRICS_HH
