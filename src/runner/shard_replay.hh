/**
 * @file
 * Disk-sharded out-of-core replay: partition a .pct trace by disk
 * (shard = disk id mod shard count) in one streaming demux pass,
 * replay every shard's sub-trace on its own complete simulation
 * stack in parallel on the work-stealing pool, and merge the
 * statistics deterministically.
 *
 * The partition model is the sharded serving front-end's (serve/):
 * each shard owns a full-size disk-array replica so ids need no
 * remapping, the cache capacity is split across shards, and per-disk
 * statistics are read from each disk's owning shard exclusively —
 * the idle-only energy of the other shards' replicas is deliberately
 * not charged. Results therefore match a serve run over the same
 * partition, not the single-cache unsharded run.
 *
 * Determinism: the shard count fixes the partition, per-shard replay
 * is single-threaded and deterministic, results land in pre-assigned
 * slots, and the merge walks shards in index order — so the output
 * is byte-identical for any worker count (--jobs), which only
 * changes scheduling.
 */

#ifndef PACACHE_RUNNER_SHARD_REPLAY_HH
#define PACACHE_RUNNER_SHARD_REPLAY_HH

#include <string>

#include "core/experiment.hh"

namespace pacache::runner
{

/** Knobs for one sharded replay. */
struct ShardReplayOptions
{
    /**
     * Number of disk partitions (clamped to [1, numDisks]). This —
     * not the worker count — determines the statistics; keep it
     * fixed when comparing runs.
     */
    unsigned shards = 8;
    /** Pool workers; 0 = ThreadPool::defaultWorkers(). */
    unsigned jobs = 0;
    /** Directory for the per-shard sub-traces; "" = $TMPDIR or /tmp. */
    std::string tempDir;
};

/**
 * Demux @p pct_path by disk, replay all shards in parallel, and
 * merge. Off-line policies (Belady/OPG) run out-of-core on windowed
 * future knowledge per shard — config.windowAccesses == 0 gets a
 * default window rather than materializing, so an empty shard (one
 * whose disks received no requests) still replays and idles its
 * replicas to the shared horizon. config.storage.endTimeFloor is
 * raised to the trace's end time for every shard for the same
 * reason. The observer/profiler hooks of @p config apply only to
 * the orchestration (demux/replay/merge phases), not to the
 * per-shard stacks.
 */
ExperimentResult
runShardedExperiment(const std::string &pct_path,
                     const ExperimentConfig &config,
                     const ShardReplayOptions &opts = {});

} // namespace pacache::runner

#endif // PACACHE_RUNNER_SHARD_REPLAY_HH
