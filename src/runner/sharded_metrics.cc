#include "runner/sharded_metrics.hh"

#include "obs/metrics.hh"

namespace pacache::runner
{

void
recordDistGauges(obs::MetricRegistry &registry,
                 const std::string &prefix, const LogHistogram &hist)
{
    // Every value here is derived from bucket counts (plus the exact
    // min/max), so the gauges are byte-identical however the samples
    // were sharded across workers.
    registry.gauge(prefix + ".count")
        .set(static_cast<double>(hist.count()));
    registry.gauge(prefix + ".mean").set(hist.bucketMean());
    registry.gauge(prefix + ".p50").set(hist.quantile(0.50));
    registry.gauge(prefix + ".p95").set(hist.quantile(0.95));
    registry.gauge(prefix + ".p99").set(hist.quantile(0.99));
    registry.gauge(prefix + ".min").set(hist.min());
    registry.gauge(prefix + ".max").set(hist.max());
}

} // namespace pacache::runner
