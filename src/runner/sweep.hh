/**
 * @file
 * Parallel experiment sweeps. A SweepSpec names a cartesian grid of
 * experiment knobs (workloads x policies x cache sizes x DPM regimes
 * x write policies); expanding it yields a flat, deterministically
 * ordered list of RunPoints. runAll() executes the points on a
 * work-stealing ThreadPool, sharing one immutable in-memory Trace per
 * workload across all workers, and returns results in spec order —
 * the output is byte-identical no matter how many jobs ran it,
 * because each point writes into its pre-assigned slot and the
 * simulation itself has no cross-run shared mutable state.
 */

#ifndef PACACHE_RUNNER_SWEEP_HH
#define PACACHE_RUNNER_SWEEP_HH

#include <cstddef>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "trace/trace.hh"

namespace pacache
{

class JsonValue;

namespace obs
{
class MetricRegistry;
}

namespace runner
{

/** Strict name -> enum parsers (fatal on unknown spellings). */
PolicyKind parsePolicyKind(const std::string &name);
DpmChoice parseDpmChoice(const std::string &name);
WritePolicy parseWritePolicy(const std::string &name);

/** Display names matching the parsers' spellings. */
const char *policyCliName(PolicyKind kind);
const char *dpmChoiceName(DpmChoice dpm);
const char *writePolicyCliName(WritePolicy policy);

/** One fully-configured experiment over a shared trace. */
struct RunPoint
{
    std::string label;          //!< e.g. "oltp/pa-lru/c4096/practical/wb"
    const Trace *trace = nullptr; //!< shared, immutable, not owned
    ExperimentConfig config;
};

/** A RunPoint's result plus its cost accounting. */
struct RunOutcome
{
    std::string label;
    ExperimentResult result;
    double wallMs = 0;          //!< host wall-clock for this run
    double requestsPerSec = 0;  //!< trace records / host second
};

/**
 * A cartesian sweep over experiment knobs. Every axis must be
 * non-empty; the expansion order is fixed (trace-major, then policy,
 * cache size, DPM, write policy) so run indices are stable across
 * job counts and hosts.
 */
struct SweepSpec
{
    std::string name = "sweep";
    std::vector<std::string> workloads; //!< "oltp" | "cello" | "opg-showcase"
    std::vector<PolicyKind> policies;
    std::vector<std::size_t> cacheBlocks;
    std::vector<DpmChoice> dpms;
    std::vector<WritePolicy> writePolicies;
    /** Workload duration override in seconds; <= 0 keeps defaults. */
    double duration = 0;
    /**
     * Oracle replay-state budget in MiB, applied to every OPG point
     * (spillable oracle tier; bit-identical results). 0 = unbounded.
     */
    std::size_t oracleMemBudgetMb = 0;

    std::size_t points() const
    {
        return workloads.size() * policies.size() * cacheBlocks.size() *
               dpms.size() * writePolicies.size();
    }

    /**
     * Parse a spec document, e.g.
     * @code{.json}
     * {"name": "fig6", "workloads": ["oltp"],
     *  "policies": ["lru", "pa-lru", "opg"],
     *  "cache_blocks": [1024, 4096],
     *  "dpms": ["practical"], "write_policies": ["wb"],
     *  "duration": 600}
     * @endcode
     * Missing axes default to a single sensible value; unknown keys
     * are fatal so typos cannot silently shrink a sweep.
     */
    static SweepSpec fromJson(const JsonValue &doc);
    static SweepSpec fromJsonText(std::string_view text);
};

/**
 * Materialized workloads + expanded points for a spec. Traces are
 * built once and shared read-only by every run that uses them.
 */
class SweepPlan
{
  public:
    explicit SweepPlan(const SweepSpec &spec);

    const std::vector<RunPoint> &points() const { return runPoints; }

  private:
    /** One slot per distinct workload name, address-stable. */
    std::vector<Trace> traces;
    std::vector<RunPoint> runPoints;
};

/**
 * Run every point on @p jobs workers (0 = hardware concurrency) and
 * return outcomes in point order. When @p metrics is non-null, each
 * run's wall clock and throughput are recorded as gauges
 * "runner.<label>.wall_ms" / "runner.<label>.requests_per_sec", plus
 * sweep totals under "runner.sweep.*".
 */
std::vector<RunOutcome> runAll(const std::vector<RunPoint> &points,
                               unsigned jobs,
                               obs::MetricRegistry *metrics = nullptr);

/** Expand + run a spec in one call. */
std::vector<RunOutcome> runSweep(const SweepSpec &spec, unsigned jobs,
                                 obs::MetricRegistry *metrics = nullptr);

} // namespace runner
} // namespace pacache

#endif // PACACHE_RUNNER_SWEEP_HH
