#include "runner/thread_pool.hh"

#include "util/logging.hh"

namespace pacache::runner
{

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned n = threads == 0 ? 1 : threads;
    queues.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        queues.push_back(std::make_unique<WorkerQueue>());
    workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard lock(sleepMutex);
        shuttingDown = true;
    }
    workAvailable.notify_all();
    for (std::thread &w : workers)
        w.join();
}

unsigned
ThreadPool::defaultWorkers()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
ThreadPool::submit(Task task)
{
    PACACHE_ASSERT(task, "submitted an empty task");
    const std::size_t target =
        nextQueue.fetch_add(1, std::memory_order_relaxed) % queues.size();
    {
        // Push before bumping submitSeq, both under sleepMutex: a
        // worker that snapshots the bumped sequence is guaranteed the
        // task is already visible to its scan, and one that snapshots
        // the old sequence will find its wait predicate true (the
        // bump happened) if its scan raced ahead of the push. Either
        // way the wakeup cannot be lost. inFlight is bumped before
        // the push so a worker can never finish the task (and
        // decrement) ahead of the increment.
        std::lock_guard lock(sleepMutex);
        PACACHE_ASSERT(!shuttingDown, "submit after shutdown began");
        ++inFlight;
        {
            std::lock_guard queueLock(queues[target]->mutex);
            queues[target]->tasks.push_back(std::move(task));
        }
        ++submitSeq;
    }
    workAvailable.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock lock(sleepMutex);
    allDone.wait(lock, [this] { return inFlight == 0; });
    if (firstError) {
        std::exception_ptr error = std::move(firstError);
        firstError = nullptr;
        lock.unlock();
        std::rethrow_exception(error);
    }
}

bool
ThreadPool::popLocal(std::size_t self, Task &out)
{
    WorkerQueue &q = *queues[self];
    std::lock_guard lock(q.mutex);
    if (q.tasks.empty())
        return false;
    out = std::move(q.tasks.front());
    q.tasks.pop_front();
    return true;
}

bool
ThreadPool::stealRemote(std::size_t self, Task &out)
{
    const std::size_t n = queues.size();
    for (std::size_t step = 1; step < n; ++step) {
        WorkerQueue &victim = *queues[(self + step) % n];
        std::lock_guard lock(victim.mutex);
        if (victim.tasks.empty())
            continue;
        // Steal the coldest (oldest) task: the owner works the
        // front, so contention on a single element is unlikely.
        out = std::move(victim.tasks.back());
        victim.tasks.pop_back();
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    while (true) {
        // Snapshot the submit generation BEFORE scanning: a submit
        // that races with the scan bumps the sequence and defeats
        // the wait predicate below, so no wakeup is ever lost.
        std::size_t seenSeq;
        {
            std::lock_guard lock(sleepMutex);
            seenSeq = submitSeq;
        }

        Task task;
        if (popLocal(self, task) || stealRemote(self, task)) {
            // A throwing task must not escape the thread function
            // (std::terminate) or skip the inFlight decrement (wait()
            // would deadlock): capture the first failure and let
            // wait() rethrow it on the caller's thread.
            std::exception_ptr error;
            try {
                task();
            } catch (...) {
                error = std::current_exception();
            }
            std::lock_guard lock(sleepMutex);
            if (error && !firstError)
                firstError = std::move(error);
            if (--inFlight == 0)
                allDone.notify_all();
            continue;
        }

        std::unique_lock lock(sleepMutex);
        if (shuttingDown)
            return;
        workAvailable.wait(lock, [this, seenSeq] {
            return shuttingDown || submitSeq != seenSeq;
        });
    }
}

} // namespace pacache::runner
