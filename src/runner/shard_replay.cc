#include "runner/shard_replay.hh"

#include <stdlib.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>
#include <vector>

#include "obs/profiler.hh"
#include "runner/thread_pool.hh"
#include "tracefmt/pct.hh"
#include "util/logging.hh"

namespace pacache::runner
{

namespace
{

/**
 * A shard's sub-trace reports the global disk count so its stack
 * builds a full-size disk-array replica (ids stay global; only owned
 * disks ever see traffic).
 */
class FullArraySource : public tracefmt::PctMmapSource
{
  public:
    FullArraySource(const std::string &path, uint64_t disks)
        : PctMmapSource(path, shardReadOptions()), allDisks(disks)
    {
    }

    uint64_t numDisksHint() const override { return allDisks; }

  private:
    /**
     * Shard sub-traces were demuxed moments ago, are hot in the page
     * cache, and are per-shard fractions of the input that get
     * unlinked on scope exit. DONTNEED-behind would pay one madvise
     * syscall per hint batch per concurrent shard to return pages the
     * kernel is about to drop with the files anyway, so it is
     * disabled here; the WILLNEED prefetch (cheap, keeps the replay
     * loop ahead of any cold pages) stays on.
     */
    static tracefmt::PctReadOptions
    shardReadOptions()
    {
        tracefmt::PctReadOptions opts;
        opts.releaseBehind = false;
        return opts;
    }

    uint64_t allDisks;
};

/** Per-shard sub-trace file, unlinked on scope exit. */
struct ShardFile
{
    std::string path;

    ~ShardFile()
    {
        if (!path.empty())
            ::unlink(path.c_str());
    }
};

std::string
makeShardPath(const std::string &dir, unsigned shard)
{
    std::string templ = dir + "/pacache-shard-" +
                        std::to_string(shard) + "-XXXXXX.pct";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    const int fd = ::mkstemps(buf.data(), 4);
    if (fd < 0) {
        PACACHE_FATAL("cannot create shard file '", buf.data(),
                      "': ", std::strerror(errno));
    }
    ::close(fd);
    return std::string(buf.data());
}

} // namespace

ExperimentResult
runShardedExperiment(const std::string &pct_path,
                     const ExperimentConfig &config,
                     const ShardReplayOptions &opts)
{
    const tracefmt::PctInfo info = tracefmt::readPctInfo(pct_path);
    const std::size_t num_disks =
        std::max<std::size_t>(info.numDisks, 1);
    const unsigned shards = static_cast<unsigned>(std::clamp<uint64_t>(
        opts.shards, 1, static_cast<uint64_t>(num_disks)));
    PACACHE_ASSERT(config.cacheBlocks >= shards,
                   "cache of ", config.cacheBlocks,
                   " blocks cannot be split across ", shards,
                   " shards");

    // Per-shard configuration: headless, a common finishRun horizon,
    // and out-of-core oracles even for shards whose sub-trace is
    // empty (materialization would reject an empty trace).
    ExperimentConfig shard_cfg = config;
    shard_cfg.observer = nullptr;
    shard_cfg.profiler = nullptr;
    shard_cfg.storage.observer = nullptr;
    shard_cfg.storage.profiler = nullptr;
    shard_cfg.storage.endTimeFloor =
        std::max(config.storage.endTimeFloor, info.endTime);
    const bool offline = config.policy == PolicyKind::Belady ||
                         config.policy == PolicyKind::OPG;
    if (offline && shard_cfg.windowAccesses == 0)
        shard_cfg.windowAccesses = std::size_t(1) << 20;
    // The budget caps the whole run's oracle state, so concurrent
    // shards split it evenly (max() keeps a tiny budget nonzero —
    // zero would silently mean unbounded).
    if (shard_cfg.oracleMemBudget > 0)
        shard_cfg.oracleMemBudget = std::max<std::size_t>(
            shard_cfg.oracleMemBudget / shards, 1);

    std::string dir = opts.tempDir;
    if (dir.empty()) {
        const char *env = ::getenv("TMPDIR");
        dir = env && *env ? env : "/tmp";
    }

    // One streaming pass demultiplexes the trace into per-shard
    // sub-traces; global order is preserved within each shard, so
    // per-shard times stay monotone.
    std::vector<ShardFile> files(shards);
    {
        obs::ProfileScope scope(config.profiler, "shard_demux");
        std::vector<std::unique_ptr<tracefmt::PctWriter>> writers;
        writers.reserve(shards);
        for (unsigned s = 0; s < shards; ++s) {
            files[s].path = makeShardPath(dir, s);
            writers.push_back(std::make_unique<tracefmt::PctWriter>(
                files[s].path));
        }
        tracefmt::PctMmapSource src(pct_path);
        TraceRecord rec;
        uint64_t r = 0;
        while (src.next(rec)) {
            tracefmt::ensurePackable(rec, pct_path, r);
            writers[rec.disk % shards]->append(rec);
            ++r;
        }
        for (auto &w : writers)
            w->finish();
    }

    // Replay every shard into its pre-assigned slot; the pool only
    // decides scheduling, never the statistics.
    const std::size_t cap_base = config.cacheBlocks / shards;
    const std::size_t cap_extra = config.cacheBlocks % shards;
    std::vector<ExperimentResult> results(shards);
    {
        obs::ProfileScope scope(config.profiler, "replay");
        ThreadPool pool(opts.jobs > 0 ? opts.jobs
                                      : ThreadPool::defaultWorkers());
        for (unsigned s = 0; s < shards; ++s) {
            pool.submit([&, s] {
                ExperimentConfig cfg = shard_cfg;
                cfg.cacheBlocks = cap_base + (s < cap_extra ? 1 : 0);
                FullArraySource src(files[s].path, num_disks);
                results[s] = runExperiment(src, cfg);
            });
        }
        pool.wait();
    }

    // Deterministic merge, in shard index order. Per-disk statistics
    // come from each disk's owning shard; cache/response/log
    // statistics sum across shards.
    obs::ProfileScope scope(config.profiler, "merge");
    ExperimentResult out;
    out.policyName = results[0].policyName;
    out.numModes = results[0].numModes;
    out.energy = EnergyStats(out.numModes);
    out.perDisk.reserve(num_disks);
    for (std::size_t d = 0; d < num_disks; ++d) {
        const ExperimentResult &owner = results[d % shards];
        PACACHE_ASSERT(d < owner.perDisk.size(),
                       "shard result missing disk ", d);
        out.energy += owner.perDisk[d];
        out.perDisk.push_back(owner.perDisk[d]);
        out.diskAccesses.push_back(owner.diskAccesses[d]);
        out.diskMeanInterArrival.push_back(
            owner.diskMeanInterArrival[d]);
    }
    for (const ExperimentResult &r : results) {
        out.cache.accesses += r.cache.accesses;
        out.cache.hits += r.cache.hits;
        out.cache.misses += r.cache.misses;
        out.cache.evictions += r.cache.evictions;
        out.cache.coldMisses += r.cache.coldMisses;
        out.cache.prefetchInserts += r.cache.prefetchInserts;
        out.responses.merge(r.responses);
        out.logWrites += r.logWrites;
        out.prefetchedBlocks += r.prefetchedBlocks;
        out.logServiceEnergy += r.logServiceEnergy;
    }
    out.totalEnergy = out.energy.total() + out.logServiceEnergy;
    return out;
}

} // namespace pacache::runner
