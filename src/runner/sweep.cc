#include "runner/sweep.hh"

#include <chrono>
#include <string>

#include "obs/metrics.hh"
#include "runner/sharded_metrics.hh"
#include "runner/thread_pool.hh"
#include "trace/workloads.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace pacache::runner
{

PolicyKind
parsePolicyKind(const std::string &name)
{
    if (name == "lru") return PolicyKind::LRU;
    if (name == "fifo") return PolicyKind::FIFO;
    if (name == "clock") return PolicyKind::CLOCK;
    if (name == "arc") return PolicyKind::ARC;
    if (name == "mq") return PolicyKind::MQ;
    if (name == "lirs") return PolicyKind::LIRS;
    if (name == "belady") return PolicyKind::Belady;
    if (name == "opg") return PolicyKind::OPG;
    if (name == "pa-lru") return PolicyKind::PALRU;
    if (name == "pa-arc") return PolicyKind::PAARC;
    if (name == "pa-lirs") return PolicyKind::PALIRS;
    if (name == "infinite") return PolicyKind::InfiniteCache;
    PACACHE_FATAL("unknown policy '", name, "'");
}

DpmChoice
parseDpmChoice(const std::string &name)
{
    if (name == "always-on") return DpmChoice::AlwaysOn;
    if (name == "adaptive") return DpmChoice::Adaptive;
    if (name == "practical") return DpmChoice::Practical;
    if (name == "oracle") return DpmChoice::Oracle;
    PACACHE_FATAL("unknown dpm '", name, "'");
}

WritePolicy
parseWritePolicy(const std::string &name)
{
    if (name == "wt") return WritePolicy::WriteThrough;
    if (name == "wb") return WritePolicy::WriteBack;
    if (name == "wbeu") return WritePolicy::WriteBackEagerUpdate;
    if (name == "wtdu") return WritePolicy::WriteThroughDeferredUpdate;
    PACACHE_FATAL("unknown write policy '", name, "'");
}

const char *
dpmChoiceName(DpmChoice dpm)
{
    switch (dpm) {
      case DpmChoice::AlwaysOn: return "always-on";
      case DpmChoice::Practical: return "practical";
      case DpmChoice::Adaptive: return "adaptive";
      case DpmChoice::Oracle: return "oracle";
    }
    PACACHE_PANIC("unknown dpm choice");
}

const char *
writePolicyCliName(WritePolicy policy)
{
    switch (policy) {
      case WritePolicy::WriteThrough: return "wt";
      case WritePolicy::WriteBack: return "wb";
      case WritePolicy::WriteBackEagerUpdate: return "wbeu";
      case WritePolicy::WriteThroughDeferredUpdate: return "wtdu";
    }
    PACACHE_PANIC("unknown write policy");
}

/** CLI-style policy spelling (parsePolicyKind's inverse). */
const char *
policyCliName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::LRU: return "lru";
      case PolicyKind::FIFO: return "fifo";
      case PolicyKind::CLOCK: return "clock";
      case PolicyKind::ARC: return "arc";
      case PolicyKind::MQ: return "mq";
      case PolicyKind::LIRS: return "lirs";
      case PolicyKind::Belady: return "belady";
      case PolicyKind::OPG: return "opg";
      case PolicyKind::PALRU: return "pa-lru";
      case PolicyKind::PAARC: return "pa-arc";
      case PolicyKind::PALIRS: return "pa-lirs";
      case PolicyKind::InfiniteCache: return "infinite";
    }
    PACACHE_PANIC("unknown policy kind");
}

namespace
{

std::vector<std::string>
stringAxis(const JsonValue &v, const char *key)
{
    std::vector<std::string> out;
    for (const JsonValue &item : v.asArray())
        out.push_back(item.asString());
    PACACHE_ASSERT(!out.empty(), "sweep axis '", key, "' is empty");
    return out;
}

Trace
buildWorkload(const std::string &name, double duration)
{
    if (name == "oltp") {
        OltpParams p;
        if (duration > 0)
            p.duration = duration;
        return makeOltpTrace(p);
    }
    if (name == "cello") {
        CelloParams p;
        if (duration > 0)
            p.duration = duration;
        return makeCelloTrace(p);
    }
    if (name == "opg-showcase") {
        OpgShowcaseParams p;
        if (duration > 0)
            p.duration = duration;
        return makeOpgShowcaseTrace(p);
    }
    PACACHE_FATAL("unknown sweep workload '", name,
                  "' (expected oltp | cello | opg-showcase)");
}

} // namespace

SweepSpec
SweepSpec::fromJson(const JsonValue &doc)
{
    PACACHE_ASSERT(doc.isObject(), "sweep spec must be a JSON object");
    SweepSpec spec;
    spec.workloads = {"oltp"};
    spec.policies = {PolicyKind::LRU};
    spec.cacheBlocks = {1024};
    spec.dpms = {DpmChoice::Practical};
    spec.writePolicies = {WritePolicy::WriteBack};

    for (const auto &[key, value] : doc.asObject()) {
        if (key == "name") {
            spec.name = value.asString();
        } else if (key == "workloads") {
            spec.workloads = stringAxis(value, "workloads");
        } else if (key == "policies") {
            spec.policies.clear();
            for (const std::string &s : stringAxis(value, "policies"))
                spec.policies.push_back(parsePolicyKind(s));
        } else if (key == "cache_blocks") {
            spec.cacheBlocks.clear();
            for (const JsonValue &item : value.asArray())
                spec.cacheBlocks.push_back(
                    static_cast<std::size_t>(item.asNumber()));
            PACACHE_ASSERT(!spec.cacheBlocks.empty(),
                           "sweep axis 'cache_blocks' is empty");
        } else if (key == "dpms") {
            spec.dpms.clear();
            for (const std::string &s : stringAxis(value, "dpms"))
                spec.dpms.push_back(parseDpmChoice(s));
        } else if (key == "write_policies") {
            spec.writePolicies.clear();
            for (const std::string &s :
                 stringAxis(value, "write_policies"))
                spec.writePolicies.push_back(parseWritePolicy(s));
        } else if (key == "duration") {
            spec.duration = value.asNumber();
        } else if (key == "oracle_mem_budget_mb") {
            spec.oracleMemBudgetMb =
                static_cast<std::size_t>(value.asNumber());
        } else {
            PACACHE_FATAL("unknown sweep spec key '", key, "'");
        }
    }
    return spec;
}

SweepSpec
SweepSpec::fromJsonText(std::string_view text)
{
    return fromJson(JsonValue::parse(text));
}

SweepPlan::SweepPlan(const SweepSpec &spec)
{
    PACACHE_ASSERT(spec.points() > 0, "sweep '", spec.name,
                   "' expands to zero runs");
    // Reserve first: RunPoints hold raw pointers into this vector.
    traces.reserve(spec.workloads.size());
    runPoints.reserve(spec.points());
    for (const std::string &workload : spec.workloads) {
        traces.push_back(buildWorkload(workload, spec.duration));
        const Trace *trace = &traces.back();
        for (const PolicyKind policy : spec.policies) {
            for (const std::size_t blocks : spec.cacheBlocks) {
                for (const DpmChoice dpm : spec.dpms) {
                    for (const WritePolicy wp : spec.writePolicies) {
                        RunPoint point;
                        point.label = workload;
                        point.label += '/';
                        point.label += policyCliName(policy);
                        point.label += "/c";
                        point.label += std::to_string(blocks);
                        point.label += '/';
                        point.label += dpmChoiceName(dpm);
                        point.label += '/';
                        point.label += writePolicyCliName(wp);
                        // The budget only changes OPG's machinery
                        // (never its results); suffix the label so
                        // budgeted reports are self-describing.
                        if (spec.oracleMemBudgetMb > 0 &&
                            policy == PolicyKind::OPG) {
                            point.label += "/b";
                            point.label += std::to_string(
                                spec.oracleMemBudgetMb);
                            point.label += 'm';
                        }
                        point.trace = trace;
                        point.config.policy = policy;
                        point.config.cacheBlocks = blocks;
                        point.config.dpm = dpm;
                        point.config.storage.writePolicy = wp;
                        point.config.oracleMemBudget =
                            policy == PolicyKind::OPG
                                ? spec.oracleMemBudgetMb << 20
                                : 0;
                        runPoints.push_back(std::move(point));
                    }
                }
            }
        }
    }
}

std::vector<RunOutcome>
runAll(const std::vector<RunPoint> &points, unsigned jobs,
       obs::MetricRegistry *metrics)
{
    using Clock = std::chrono::steady_clock;

    std::vector<RunOutcome> outcomes(points.size());
    const unsigned workers =
        jobs == 0 ? ThreadPool::defaultWorkers() : jobs;

    // Sharded instruments, written concurrently by the workers and
    // merged after the barrier. Only simulation-derived values go in
    // (energy, hit ratio, request counts) — never wall clock — so
    // the merged "runner.sweep.dist.*" gauges are byte-identical at
    // any job count. The shard count is fixed, not tied to workers.
    ShardedCounter runRequests;
    ShardedHistogram runEnergy;
    ShardedHistogram runHitRatio;

    const auto sweepStart = Clock::now();
    {
        ThreadPool pool(workers);
        for (std::size_t i = 0; i < points.size(); ++i) {
            // Each task owns exactly one pre-assigned outcome slot,
            // so completion order cannot perturb the result layout
            // and no synchronization beyond the pool's is needed.
            pool.submit([&points, &outcomes, &runRequests, &runEnergy,
                         &runHitRatio, i] {
                const RunPoint &point = points[i];
                PACACHE_ASSERT(point.trace != nullptr,
                               "run point '", point.label,
                               "' has no trace");
                PACACHE_ASSERT(point.config.observer == nullptr,
                               "per-point observers are not supported "
                               "in parallel sweeps");
                PACACHE_ASSERT(point.config.profiler == nullptr,
                               "per-point profilers are not supported "
                               "in parallel sweeps");
                RunOutcome &out = outcomes[i];
                out.label = point.label;
                const auto start = Clock::now();
                out.result = runExperiment(*point.trace, point.config);
                const std::chrono::duration<double, std::milli>
                    elapsed = Clock::now() - start;
                out.wallMs = elapsed.count();
                out.requestsPerSec =
                    out.wallMs > 0
                        ? static_cast<double>(point.trace->size()) *
                              1000.0 / out.wallMs
                        : 0.0;
                runRequests.inc(i, out.result.cache.accesses);
                runEnergy.record(i, out.result.totalEnergy);
                runHitRatio.record(i, out.result.cache.hitRatio());
            });
        }
        pool.wait();
    }
    const std::chrono::duration<double, std::milli> sweepElapsed =
        Clock::now() - sweepStart;

    if (metrics) {
        // Recorded serially after the barrier: MetricRegistry is not
        // thread-safe, and spec order keeps the report deterministic.
        double totalMs = 0;
        uint64_t totalRequests = 0;
        for (std::size_t i = 0; i < points.size(); ++i) {
            const std::string prefix = "runner." + outcomes[i].label;
            metrics->gauge(prefix + ".wall_ms").set(outcomes[i].wallMs);
            metrics->gauge(prefix + ".requests_per_sec")
                .set(outcomes[i].requestsPerSec);
            totalMs += outcomes[i].wallMs;
            totalRequests += points[i].trace->size();
        }
        metrics->gauge("runner.sweep.jobs").set(workers);
        metrics->gauge("runner.sweep.runs")
            .set(static_cast<double>(points.size()));
        metrics->gauge("runner.sweep.wall_ms").set(sweepElapsed.count());
        metrics->gauge("runner.sweep.cpu_ms").set(totalMs);
        metrics->gauge("runner.sweep.requests_per_sec")
            .set(sweepElapsed.count() > 0
                     ? static_cast<double>(totalRequests) * 1000.0 /
                           sweepElapsed.count()
                     : 0.0);
        // Deterministic cross-run distributions from the sharded
        // instruments (byte-identical at any --jobs).
        metrics->gauge("runner.sweep.dist.requests_total")
            .set(static_cast<double>(runRequests.total()));
        recordDistGauges(*metrics, "runner.sweep.dist.energy_j",
                         runEnergy.merged());
        recordDistGauges(*metrics, "runner.sweep.dist.hit_ratio",
                         runHitRatio.merged());
    }
    return outcomes;
}

std::vector<RunOutcome>
runSweep(const SweepSpec &spec, unsigned jobs,
         obs::MetricRegistry *metrics)
{
    const SweepPlan plan(spec);
    return runAll(plan.points(), jobs, metrics);
}

} // namespace pacache::runner
