/**
 * @file
 * Work-stealing thread pool for running independent experiments in
 * parallel. Each worker owns a deque: submissions are distributed
 * round-robin, a worker pops its own work from the front, and an idle
 * worker steals from the back of a victim's deque — long experiment
 * runs migrate to whoever is free, so a sweep's wall clock tracks the
 * slowest single run rather than the unluckiest worker.
 *
 * The pool makes no determinism promises itself: callers that need
 * reproducible output (SweepRunner) must write results into
 * pre-assigned slots instead of depending on completion order.
 */

#ifndef PACACHE_RUNNER_THREAD_POOL_HH
#define PACACHE_RUNNER_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pacache::runner
{

class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** Start @p threads workers (clamped to at least 1). */
    explicit ThreadPool(unsigned threads);

    /** Drains remaining work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task; runnable immediately by any worker. */
    void submit(Task task);

    /**
     * Block until every submitted task has finished running. If any
     * task threw, rethrows the first captured exception here, on the
     * caller's thread (remaining tasks still ran to completion).
     */
    void wait();

    unsigned workerCount() const
    {
        return static_cast<unsigned>(workers.size());
    }

    /** hardware_concurrency, or 1 when the runtime reports 0. */
    static unsigned defaultWorkers();

  private:
    /**
     * One worker's deque. Guarded by its own mutex so stealing
     * contends with only one victim, not the whole pool.
     */
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<Task> tasks;
    };

    void workerLoop(std::size_t self);
    bool popLocal(std::size_t self, Task &out);
    bool stealRemote(std::size_t self, Task &out);

    std::vector<std::unique_ptr<WorkerQueue>> queues;
    std::vector<std::thread> workers;

    /** Wakes idle workers on submit and on shutdown. */
    std::mutex sleepMutex;
    std::condition_variable workAvailable;

    /** Signals wait() when inFlight drains to zero. */
    std::condition_variable allDone;

    /** Tasks submitted but not yet finished executing. */
    std::size_t inFlight = 0;

    /** Bumped per submit; workers use it to avoid lost wakeups. */
    std::size_t submitSeq = 0;

    /** First exception thrown by a task; rethrown by wait(). */
    std::exception_ptr firstError;

    std::atomic<std::size_t> nextQueue{0};
    bool shuttingDown = false;
};

} // namespace pacache::runner

#endif // PACACHE_RUNNER_THREAD_POOL_HH
