#include "tracefmt/pct.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>

#include "util/logging.hh"

namespace pacache::tracefmt
{

namespace
{

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

/** Writer buffer size: 64 Ki records per flush. */
constexpr std::size_t kWriteBufRecords = 1 << 16;
/** Buffered reader chunk: records per read(). */
constexpr std::size_t kReadBufRecords = 1 << 14;

uint64_t
fnv1a(uint64_t h, const unsigned char *p, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

// Shift-based little-endian accessors: endian-agnostic, and on LE
// hosts compilers collapse them to single loads/stores.
void
putLe32(unsigned char *p, uint32_t v)
{
    p[0] = static_cast<unsigned char>(v);
    p[1] = static_cast<unsigned char>(v >> 8);
    p[2] = static_cast<unsigned char>(v >> 16);
    p[3] = static_cast<unsigned char>(v >> 24);
}

void
putLe64(unsigned char *p, uint64_t v)
{
    putLe32(p, static_cast<uint32_t>(v));
    putLe32(p + 4, static_cast<uint32_t>(v >> 32));
}

uint32_t
getLe32(const unsigned char *p)
{
    return static_cast<uint32_t>(p[0]) |
           (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t
getLe64(const unsigned char *p)
{
    return static_cast<uint64_t>(getLe32(p)) |
           (static_cast<uint64_t>(getLe32(p + 4)) << 32);
}

void
encodeRecord(unsigned char *p, const TraceRecord &rec)
{
    putLe64(p, std::bit_cast<uint64_t>(rec.time));
    putLe64(p + 8, rec.block);
    putLe32(p + 16, rec.disk);
    putLe32(p + 20, (rec.numBlocks & 0x7fffffffu) |
                        (rec.write ? 0x80000000u : 0u));
}

void
decodeRecord(const unsigned char *p, TraceRecord &rec,
             const std::string &path, uint64_t index, Time last_time)
{
    rec.time = std::bit_cast<Time>(getLe64(p));
    rec.block = getLe64(p + 8);
    rec.disk = getLe32(p + 16);
    const uint32_t len_flags = getLe32(p + 20);
    rec.write = (len_flags & 0x80000000u) != 0;
    rec.numBlocks = len_flags & 0x7fffffffu;
    if (rec.numBlocks == 0 || !(rec.time >= last_time)) {
        PACACHE_FATAL("corrupt .pct record ", index, " in '", path,
                      "' (zero length or out-of-order time)");
    }
}

void
encodeHeader(unsigned char *p, const PctInfo &info)
{
    std::memcpy(p, kPctMagic, sizeof(kPctMagic));
    putLe32(p + 8, info.version);
    putLe32(p + 12, info.numDisks);
    putLe64(p + 16, info.records);
    putLe64(p + 24, info.checksum);
    putLe64(p + 32, std::bit_cast<uint64_t>(info.endTime));
}

PctInfo
decodeHeader(const unsigned char *p, const std::string &path,
             uint64_t file_size)
{
    if (std::memcmp(p, kPctMagic, sizeof(kPctMagic)) != 0)
        PACACHE_FATAL("'", path, "' is not a .pct trace (bad magic)");
    PctInfo info;
    info.version = getLe32(p + 8);
    if (info.version != kPctVersion) {
        PACACHE_FATAL("'", path, "' has unsupported .pct version ",
                      info.version, " (expected ", kPctVersion, ")");
    }
    info.numDisks = getLe32(p + 12);
    info.records = getLe64(p + 16);
    info.checksum = getLe64(p + 24);
    info.endTime = std::bit_cast<Time>(getLe64(p + 32));
    const uint64_t want =
        kPctHeaderBytes + info.records * kPctRecordBytes;
    if (file_size != want) {
        PACACHE_FATAL("'", path, "' is truncated or oversized: header "
                      "promises ", info.records, " records (",
                      want, " bytes), file has ", file_size, " bytes");
    }
    return info;
}

uint64_t
fileSize(std::ifstream &in, const std::string &path)
{
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    if (size < 0)
        PACACHE_FATAL("cannot determine size of '", path, "'");
    in.seekg(0);
    return static_cast<uint64_t>(size);
}

/** Page size for madvise range rounding. */
std::size_t
pageSize()
{
    static const std::size_t page = [] {
        const long v = ::sysconf(_SC_PAGESIZE);
        return v > 0 ? static_cast<std::size_t>(v)
                     : std::size_t(4096);
    }();
    return page;
}

/**
 * madvise the pages *fully inside* [p, p+n) for DONTNEED (partial
 * edge pages must stay: their other halves may still be live), or
 * the pages *covering* it for WILLNEED.
 */
void
adviseRange(const unsigned char *map_base, const unsigned char *p,
            std::size_t n, int advice)
{
    const std::size_t page = pageSize();
    const auto base_addr = reinterpret_cast<std::uintptr_t>(map_base);
    std::uintptr_t lo = reinterpret_cast<std::uintptr_t>(p);
    std::uintptr_t hi = lo + n;
    if (advice == MADV_DONTNEED) {
        lo = (lo + page - 1) & ~(page - 1);
        hi &= ~(page - 1);
    } else {
        lo &= ~(page - 1);
        hi = (hi + page - 1) & ~(page - 1);
    }
    lo = std::max(lo, base_addr);
    if (hi <= lo)
        return;
    // Best effort: a failed hint costs performance, not correctness.
    ::madvise(reinterpret_cast<void *>(lo), hi - lo, advice);
}

/** Checksum chunk: records hashed (and released) per madvise batch. */
constexpr uint64_t kChecksumChunkRecords = 1 << 19; // 12 MiB

/**
 * Verify the record checksum of a mapping chunk-by-chunk, releasing
 * each verified chunk so the pass touches the whole file without
 * ever holding more than one chunk resident.
 */
void
verifyMappedChecksum(const unsigned char *map_base,
                     const unsigned char *records, const PctInfo &info,
                     const std::string &path)
{
    uint64_t h = kFnvOffset;
    for (uint64_t first = 0; first < info.records;
         first += kChecksumChunkRecords) {
        const uint64_t n =
            std::min<uint64_t>(kChecksumChunkRecords,
                               info.records - first);
        const unsigned char *p = records + first * kPctRecordBytes;
        h = fnv1a(h, p, static_cast<std::size_t>(n * kPctRecordBytes));
        adviseRange(map_base, p,
                    static_cast<std::size_t>(n * kPctRecordBytes),
                    MADV_DONTNEED);
    }
    if (h != info.checksum)
        PACACHE_FATAL("checksum mismatch in '", path,
                      "': file is corrupt");
}

/** Forward-replay hint cadence: records between madvise batches. */
constexpr uint64_t kReplayHintRecords = 1 << 16; // 1.5 MiB

} // namespace

PctWriter::PctWriter(const std::string &path_)
    : path(path_), out(path_, std::ios::binary | std::ios::trunc),
      fnv(kFnvOffset)
{
    if (!out)
        PACACHE_FATAL("cannot open '", path, "' for writing");
    buf.reserve(kWriteBufRecords * kPctRecordBytes);
    // Header placeholder; finish() seeks back and fills it in.
    const unsigned char zeros[kPctHeaderBytes] = {};
    out.write(reinterpret_cast<const char *>(zeros), kPctHeaderBytes);
}

PctWriter::~PctWriter()
{
    if (finished)
        return;
    try {
        finish();
    } catch (const std::exception &e) {
        PACACHE_WARN("PctWriter('", path, "'): ", e.what());
    }
}

void
PctWriter::append(const TraceRecord &rec)
{
    PACACHE_ASSERT(!finished, "append after finish");
    PACACHE_ASSERT(rec.numBlocks > 0 && rec.numBlocks <= 0x7fffffffu,
                   "record length out of range");
    PACACHE_ASSERT(count == 0 || rec.time >= lastTime,
                   "records must be appended in time order");
    const std::size_t off = buf.size();
    buf.resize(off + kPctRecordBytes);
    encodeRecord(buf.data() + off, rec);
    fnv = fnv1a(fnv, buf.data() + off, kPctRecordBytes);
    ++count;
    lastTime = rec.time;
    numDisks = std::max<uint32_t>(numDisks, rec.disk + 1);
    if (buf.size() >= kWriteBufRecords * kPctRecordBytes)
        flushBuffer();
}

void
PctWriter::flushBuffer()
{
    if (buf.empty())
        return;
    out.write(reinterpret_cast<const char *>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
    buf.clear();
}

PctInfo
PctWriter::finish()
{
    PACACHE_ASSERT(!finished, "finish called twice");
    finished = true;
    flushBuffer();

    PctInfo info;
    info.numDisks = numDisks;
    info.records = count;
    info.checksum = fnv;
    info.endTime = lastTime;

    unsigned char header[kPctHeaderBytes];
    encodeHeader(header, info);
    out.seekp(0);
    out.write(reinterpret_cast<const char *>(header), kPctHeaderBytes);
    out.flush();
    if (!out)
        PACACHE_FATAL("write error on '", path, "'");
    out.close();
    return info;
}

PctInfo
writePct(const std::string &path, TraceSource &src)
{
    PctWriter writer(path);
    TraceRecord rec;
    while (src.next(rec))
        writer.append(rec);
    return writer.finish();
}

PctInfo
readPctInfo(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        PACACHE_FATAL("cannot open trace file '", path, "'");
    const uint64_t size = fileSize(in, path);
    if (size < kPctHeaderBytes)
        PACACHE_FATAL("'", path, "' is too small to be a .pct trace");
    unsigned char header[kPctHeaderBytes];
    in.read(reinterpret_cast<char *>(header), kPctHeaderBytes);
    if (!in)
        PACACHE_FATAL("read error on '", path, "'");
    return decodeHeader(header, path, size);
}

PctBufferedSource::PctBufferedSource(const std::string &path_,
                                     PctReadOptions opts)
    : path(path_), in(path_, std::ios::binary)
{
    if (!in)
        PACACHE_FATAL("cannot open trace file '", path, "'");
    const uint64_t size = fileSize(in, path);
    if (size < kPctHeaderBytes)
        PACACHE_FATAL("'", path, "' is too small to be a .pct trace");
    unsigned char header[kPctHeaderBytes];
    in.read(reinterpret_cast<char *>(header), kPctHeaderBytes);
    if (!in)
        PACACHE_FATAL("read error on '", path, "'");
    info = decodeHeader(header, path, size);
    buf.resize(kReadBufRecords * kPctRecordBytes);

    if (opts.verifyChecksum) {
        uint64_t h = kFnvOffset;
        uint64_t left = info.records * kPctRecordBytes;
        while (left > 0) {
            const std::size_t chunk = static_cast<std::size_t>(
                std::min<uint64_t>(left, buf.size()));
            in.read(reinterpret_cast<char *>(buf.data()),
                    static_cast<std::streamsize>(chunk));
            if (!in)
                PACACHE_FATAL("read error on '", path, "'");
            h = fnv1a(h, buf.data(), chunk);
            left -= chunk;
        }
        if (h != info.checksum) {
            PACACHE_FATAL("checksum mismatch in '", path,
                          "': file is corrupt");
        }
        in.clear();
        in.seekg(kPctHeaderBytes);
    }
}

void
PctBufferedSource::refill()
{
    const uint64_t left = info.records - consumed;
    bufCount = static_cast<std::size_t>(
        std::min<uint64_t>(left, kReadBufRecords));
    bufPos = 0;
    if (bufCount == 0)
        return;
    in.read(reinterpret_cast<char *>(buf.data()),
            static_cast<std::streamsize>(bufCount * kPctRecordBytes));
    if (!in)
        PACACHE_FATAL("read error on '", path, "'");
}

bool
PctBufferedSource::next(TraceRecord &out)
{
    if (bufPos >= bufCount) {
        if (consumed >= info.records)
            return false;
        refill();
        if (bufCount == 0)
            return false;
    }
    decodeRecord(buf.data() + bufPos * kPctRecordBytes, out, path,
                 consumed, lastTime);
    lastTime = out.time;
    ++bufPos;
    ++consumed;
    return true;
}

void
PctBufferedSource::rewind()
{
    in.clear();
    in.seekg(kPctHeaderBytes);
    bufPos = bufCount = 0;
    consumed = 0;
    lastTime = 0;
}

namespace
{

/** Shared open+map+header for the mmap readers. */
const unsigned char *
mapPctFile(const std::string &path, std::size_t &map_len,
           PctInfo &info)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        PACACHE_FATAL("cannot open trace file '", path, "'");
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        PACACHE_FATAL("cannot stat '", path, "'");
    }
    map_len = static_cast<std::size_t>(st.st_size);
    if (map_len < kPctHeaderBytes) {
        ::close(fd);
        PACACHE_FATAL("'", path, "' is too small to be a .pct trace");
    }
    void *map = ::mmap(nullptr, map_len, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping keeps its own reference
    if (map == MAP_FAILED)
        PACACHE_FATAL("cannot mmap '", path, "'");
    const unsigned char *base = static_cast<const unsigned char *>(map);
    info = decodeHeader(base, path, map_len);
    return base;
}

} // namespace

PctMmapSource::PctMmapSource(const std::string &path_,
                             PctReadOptions opts_)
    : path(path_), opts(opts_)
{
    base = mapPctFile(path, mapLen, info);
    ::madvise(const_cast<unsigned char *>(base), mapLen,
              MADV_SEQUENTIAL);
    records = base + kPctHeaderBytes;
    if (opts.verifyChecksum)
        verifyMappedChecksum(base, records, info, path);
}

PctMmapSource::~PctMmapSource()
{
    if (base)
        ::munmap(const_cast<unsigned char *>(base), mapLen);
}

bool
PctMmapSource::next(TraceRecord &out)
{
    if (pos >= info.records)
        return false;
    decodeRecord(records + pos * kPctRecordBytes, out, path, pos,
                 lastTime);
    lastTime = out.time;
    ++pos;
    const uint64_t cadence =
        opts.hintRecords ? opts.hintRecords : kReplayHintRecords;
    if (pos - releaseMark >= cadence) {
        // Forward replay never revisits consumed records: drop the
        // pages behind the cursor and pre-fault the next batch.
        if (opts.releaseBehind)
            adviseRange(base, records + releaseMark * kPctRecordBytes,
                        static_cast<std::size_t>((pos - releaseMark) *
                                                 kPctRecordBytes),
                        MADV_DONTNEED);
        if (opts.prefetchAhead && pos < info.records) {
            const uint64_t ahead =
                std::min<uint64_t>(cadence, info.records - pos);
            adviseRange(base, records + pos * kPctRecordBytes,
                        static_cast<std::size_t>(ahead *
                                                 kPctRecordBytes),
                        MADV_WILLNEED);
        }
        releaseMark = pos;
    }
    return true;
}

void
PctMmapSource::rewind()
{
    pos = 0;
    releaseMark = 0;
    lastTime = 0;
}

PctMapping::PctMapping(const std::string &path_, PctReadOptions opts)
    : path(path_)
{
    base = mapPctFile(path, mapLen, info);
    records = base + kPctHeaderBytes;
    if (opts.verifyChecksum)
        verifyMappedChecksum(base, records, info, path);
}

PctMapping::~PctMapping()
{
    if (base)
        ::munmap(const_cast<unsigned char *>(base), mapLen);
}

void
PctMapping::record(uint64_t index, TraceRecord &out) const
{
    PACACHE_ASSERT(index < info.records,
                   ".pct record index out of range");
    // Random access has no running clock; monotonicity is enforced
    // by the sequential readers (times are never negative, so a
    // floor of 0 keeps the corruption check for length/NaN alive).
    decodeRecord(records + index * kPctRecordBytes, out, path, index,
                 0);
}

void
PctMapping::dropRange(uint64_t first, uint64_t count) const
{
    if (count == 0)
        return;
    adviseRange(base, records + first * kPctRecordBytes,
                static_cast<std::size_t>(count * kPctRecordBytes),
                MADV_DONTNEED);
}

void
PctMapping::willNeed(uint64_t first, uint64_t count) const
{
    if (count == 0)
        return;
    adviseRange(base, records + first * kPctRecordBytes,
                static_cast<std::size_t>(count * kPctRecordBytes),
                MADV_WILLNEED);
}

void
ensurePackable(const TraceRecord &rec, const std::string &path,
               uint64_t index)
{
    const uint64_t last_block =
        rec.block + (rec.numBlocks ? rec.numBlocks - 1 : 0);
    if (rec.disk >= (1u << 16) || last_block < rec.block ||
        last_block >= (uint64_t(1) << 48)) {
        PACACHE_FATAL("record ", index, " in '", path, "': (disk ",
                      rec.disk, ", block ", rec.block, ", len ",
                      rec.numBlocks, ") overflows the 16-bit-disk/"
                      "48-bit-block packed key space");
    }
}

} // namespace pacache::tracefmt
