/**
 * @file
 * .pct — the pacache compact binary trace format.
 *
 * Layout (everything little-endian):
 *
 *     offset  size  field
 *     0       8     magic "PCTRACE1"
 *     8       4     version (currently 1)
 *     12      4     numDisks (max disk id + 1)
 *     16      8     recordCount
 *     24      8     FNV-1a64 checksum of the record bytes
 *     32      8     endTime (IEEE-754 double, seconds)
 *     40      24*n  records
 *
 * Record (24 bytes): f64 time, u64 block, u32 disk, u32 lenFlags
 * where lenFlags bit 31 is the write flag and bits 0..30 the block
 * count. Fixed-width records make the file mmap-able: the zero-copy
 * reader decodes fields straight out of the mapping with no parsing,
 * no allocation and no read() traffic.
 */

#ifndef PACACHE_TRACEFMT_PCT_HH
#define PACACHE_TRACEFMT_PCT_HH

#include <cstddef>
#include <fstream>
#include <string>
#include <vector>

#include "tracefmt/trace_source.hh"

namespace pacache::tracefmt
{

inline constexpr char kPctMagic[8] = {'P', 'C', 'T', 'R',
                                      'A', 'C', 'E', '1'};
inline constexpr uint32_t kPctVersion = 1;
inline constexpr std::size_t kPctHeaderBytes = 40;
inline constexpr std::size_t kPctRecordBytes = 24;

/** Decoded .pct header. */
struct PctInfo
{
    uint32_t version = kPctVersion;
    uint32_t numDisks = 0;
    uint64_t records = 0;
    uint64_t checksum = 0;
    Time endTime = 0;
};

/** Buffered .pct writer; finish() seeks back and patches the header. */
class PctWriter
{
  public:
    /** Create/truncate @p path (fatal on failure). */
    explicit PctWriter(const std::string &path);
    ~PctWriter();

    PctWriter(const PctWriter &) = delete;
    PctWriter &operator=(const PctWriter &) = delete;

    /** Append one record (must not precede the previous one). */
    void append(const TraceRecord &rec);

    /** Flush, rewrite the header, close; returns the final header. */
    PctInfo finish();

  private:
    void flushBuffer();

    std::string path;
    std::ofstream out;
    std::vector<unsigned char> buf;
    uint64_t count = 0;
    uint64_t fnv;
    uint32_t numDisks = 0;
    Time lastTime = 0;
    bool finished = false;
};

/** Drain @p src into a .pct file at @p path. */
PctInfo writePct(const std::string &path, TraceSource &src);

/** Read and validate just the header of a .pct file. */
PctInfo readPctInfo(const std::string &path);

/** Reader options shared by both .pct sources. */
struct PctReadOptions
{
    /** Verify the record checksum on open (one extra pass). */
    bool verifyChecksum = true;
    /**
     * During forward replay, periodically MADV_DONTNEED the pages
     * behind the read position so a sequential pass over a
     * file-larger-than-RAM keeps a bounded resident set. Dropped
     * pages refault from the file (the mapping is read-only), so
     * rewind() stays correct.
     */
    bool releaseBehind = true;
    /** Pair the release with an MADV_WILLNEED for the next chunk. */
    bool prefetchAhead = true;
    /**
     * Replay-hint cadence and look-ahead in records: every
     * hintRecords consumed records, the mmap source drops the pages
     * behind the cursor (releaseBehind) and pre-faults the next
     * hintRecords ahead (prefetchAhead). 0 = the built-in default
     * (64Ki records). Larger windows batch the madvise syscalls;
     * smaller ones tighten the resident set.
     */
    std::uint64_t hintRecords = 0;
};

/** Streaming .pct reader over buffered file I/O. */
class PctBufferedSource : public TraceSource
{
  public:
    explicit PctBufferedSource(const std::string &path,
                               PctReadOptions opts = {});

    bool next(TraceRecord &out) override;
    void rewind() override;
    const char *formatName() const override { return "pct"; }
    uint64_t sizeHint() const override { return info.records; }
    uint64_t numDisksHint() const override { return info.numDisks; }
    Time endTimeHint() const override { return info.endTime; }
    std::string pctPath() const override { return path; }

    const PctInfo &header() const { return info; }

  private:
    void refill();

    std::string path;
    std::ifstream in;
    PctInfo info;
    std::vector<unsigned char> buf;
    std::size_t bufPos = 0;   //!< next record within buf
    std::size_t bufCount = 0; //!< records currently in buf
    uint64_t consumed = 0;    //!< records handed out so far
    Time lastTime = 0;
};

/** Zero-copy .pct reader over an mmap'd file. */
class PctMmapSource : public TraceSource
{
  public:
    explicit PctMmapSource(const std::string &path,
                           PctReadOptions opts = {});
    ~PctMmapSource();

    PctMmapSource(const PctMmapSource &) = delete;
    PctMmapSource &operator=(const PctMmapSource &) = delete;

    bool next(TraceRecord &out) override;
    void rewind() override;
    const char *formatName() const override { return "pct"; }
    uint64_t sizeHint() const override { return info.records; }
    uint64_t numDisksHint() const override { return info.numDisks; }
    Time endTimeHint() const override { return info.endTime; }
    std::string pctPath() const override { return path; }

    const PctInfo &header() const { return info; }

  private:
    std::string path;
    const unsigned char *base = nullptr; //!< whole mapping
    std::size_t mapLen = 0;
    const unsigned char *records = nullptr;
    PctInfo info;
    PctReadOptions opts;
    uint64_t pos = 0;
    uint64_t releaseMark = 0; //!< first record not yet MADV_DONTNEEDed
    Time lastTime = 0;
};

/**
 * Random-access mmap view of a .pct file for out-of-core passes
 * (the windowed-oracle backward scan, disk-sharded demux). Unlike
 * the TraceSource readers this exposes record(i) at any index plus
 * explicit residency control, so a pass can walk chunks in any
 * order while keeping only the active chunk resident.
 */
class PctMapping
{
  public:
    /** Map @p path; checksum verification streams chunk-by-chunk
     *  and releases each verified chunk, so it never inflates the
     *  peak resident set by the file size. */
    explicit PctMapping(const std::string &path,
                        PctReadOptions opts = {});
    ~PctMapping();

    PctMapping(const PctMapping &) = delete;
    PctMapping &operator=(const PctMapping &) = delete;

    const PctInfo &header() const { return info; }
    const std::string &pctPath() const { return path; }

    /** Decode record @p index (fatal, located, on corruption). */
    void record(uint64_t index, TraceRecord &out) const;

    /** MADV_DONTNEED the pages fully inside records [first, first+count). */
    void dropRange(uint64_t first, uint64_t count) const;
    /** MADV_WILLNEED the pages covering records [first, first+count). */
    void willNeed(uint64_t first, uint64_t count) const;

  private:
    std::string path;
    const unsigned char *base = nullptr;
    std::size_t mapLen = 0;
    const unsigned char *records = nullptr;
    PctInfo info;
};

/**
 * Fatal unless @p rec's disk and every block of its extent fit the
 * 16-bit-disk / 48-bit-block packed key space, naming the trace
 * file and record index (the streaming demux / backward-scan
 * counterpart of the located tracefmt mapExtent check).
 */
void ensurePackable(const TraceRecord &rec, const std::string &path,
                    uint64_t index);

} // namespace pacache::tracefmt

#endif // PACACHE_TRACEFMT_PCT_HH
