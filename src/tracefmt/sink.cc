#include "tracefmt/sink.hh"

#include "trace/record.hh"
#include "util/logging.hh"

namespace pacache::tracefmt
{

TextSink::TextSink(const std::string &path_)
    : owned(path_), out(&owned), path(path_)
{
    if (!owned)
        PACACHE_FATAL("cannot open '", path, "' for writing");
    *out << "# pacache trace: time disk block count R|W\n";
}

TextSink::TextSink(std::ostream &os) : out(&os), path("<stream>")
{
    *out << "# pacache trace: time disk block count R|W\n";
}

void
TextSink::append(const TraceRecord &rec)
{
    *out << toString(rec) << '\n';
}

void
TextSink::finish()
{
    out->flush();
    if (!*out)
        PACACHE_FATAL("write error on '", path, "'");
}

std::unique_ptr<TraceSink>
openTraceSink(const std::string &path, TraceFormat fmt)
{
    if (fmt == TraceFormat::Auto) {
        const bool pct = path.size() >= 4 &&
                         path.compare(path.size() - 4, 4, ".pct") == 0;
        fmt = pct ? TraceFormat::Pct : TraceFormat::Text;
    }
    switch (fmt) {
      case TraceFormat::Text:
        return std::make_unique<TextSink>(path);
      case TraceFormat::Pct:
        return std::make_unique<PctSink>(path);
      default:
        PACACHE_FATAL("cannot write traces in the '",
                      traceFormatName(fmt),
                      "' format (use text or pct)");
    }
}

uint64_t
copyAll(TraceSource &src, TraceSink &sink)
{
    uint64_t n = 0;
    TraceRecord rec;
    while (src.next(rec)) {
        sink.append(rec);
        ++n;
    }
    sink.finish();
    return n;
}

} // namespace pacache::tracefmt
