/**
 * @file
 * Streaming parser for the native pacache text trace format:
 *     <time-seconds> <disk> <block> <num-blocks> <R|W>
 * one record per line, '#' comments. Strict: malformed fields and
 * out-of-order arrivals are reported with file:line context.
 */

#ifndef PACACHE_TRACEFMT_TEXT_SOURCE_HH
#define PACACHE_TRACEFMT_TEXT_SOURCE_HH

#include "tracefmt/line_source.hh"

namespace pacache::tracefmt
{

/** Parse one native-format record; parseFail(at) on malformation. */
TraceRecord parseTextRecord(std::string_view line, const ParseCursor &at);

/** Native text format source (file- or stream-backed). */
class TextSource : public LineSource
{
  public:
    explicit TextSource(const std::string &path)
        : LineSource(path, /*rebase=*/false, /*clamp=*/false)
    {}

    TextSource(std::istream &is, std::string name)
        : LineSource(is, std::move(name), /*rebase=*/false,
                     /*clamp=*/false)
    {}

    const char *formatName() const override { return "text"; }

  protected:
    bool
    parseLine(std::string_view line, const ParseCursor &at,
              TraceRecord &out) override
    {
        out = parseTextRecord(line, at);
        return true;
    }
};

} // namespace pacache::tracefmt

#endif // PACACHE_TRACEFMT_TEXT_SOURCE_HH
