/**
 * @file
 * Parsers for real public block-trace formats, mapped onto
 * TraceRecord with configurable block-size and disk remapping:
 *
 *  - SPC-1 / UMass style CSV: "ASU,LBA,size,opcode,timestamp" with
 *    LBA in sectors, size in bytes, opcode r/R/w/W, timestamp in
 *    seconds (the Financial1/2 and WebSearch traces).
 *  - MSR-Cambridge CSV:
 *    "Timestamp,Hostname,DiskNumber,Type,Offset,Size[,Response]"
 *    with Windows FILETIME timestamps (100 ns ticks), Type
 *    Read/Write, byte offsets and sizes.
 *  - blktrace text (blkparse default output):
 *    "maj,min cpu seq time pid action rwbs sector + sectors [proc]";
 *    queue ('Q') actions become records, everything else is noise.
 *
 * All three rebase arrivals to t = 0 and clamp the small timestamp
 * regressions real traces contain (IngestOptions can disable both).
 */

#ifndef PACACHE_TRACEFMT_FORMATS_HH
#define PACACHE_TRACEFMT_FORMATS_HH

#include <string>
#include <unordered_map>

#include "tracefmt/line_source.hh"

namespace pacache::tracefmt
{

/** Mapping knobs shared by the foreign-format parsers. */
struct IngestOptions
{
    /** Cache/disk block size the byte extents are mapped onto. */
    uint64_t blockBytes = kDefaultBlockSize;
    /** Sector unit of LBA fields (SPC) and sector counts (blktrace). */
    uint32_t sectorBytes = 512;
    /** Fold disk ids onto this many disks via modulo (0: keep ids). */
    uint32_t diskModulo = 0;
    /** Shift arrivals so the first record lands at t = 0. */
    bool rebaseTime = true;
    /** Clamp out-of-order arrivals instead of failing the parse. */
    bool clampUnsorted = true;
    /** blktrace: which action stage becomes a record. */
    char blktraceAction = 'Q';
};

/** SPC-1 / UMass CSV ("ASU,LBA,size,opcode,timestamp"). */
class SpcSource : public LineSource
{
  public:
    explicit SpcSource(const std::string &path, IngestOptions opts = {});
    const char *formatName() const override { return "spc"; }

  protected:
    bool parseLine(std::string_view line, const ParseCursor &at,
                   TraceRecord &out) override;

  private:
    IngestOptions opt;
};

/** MSR-Cambridge CSV (Timestamp,Hostname,DiskNumber,Type,Offset,Size). */
class MsrSource : public LineSource
{
  public:
    explicit MsrSource(const std::string &path, IngestOptions opts = {});
    const char *formatName() const override { return "msr"; }

  protected:
    bool parseLine(std::string_view line, const ParseCursor &at,
                   TraceRecord &out) override;

  private:
    IngestOptions opt;
    /**
     * FILETIME ticks exceed double precision (~1.3e17 > 2^53), so the
     * rebase is anchored in the integer tick domain before converting
     * to seconds; LineSource-level rebasing then sees times that
     * already start near zero.
     */
    bool haveFirstTicks = false;
    uint64_t firstTicks = 0;
};

/** blktrace / blkparse text output. */
class BlktraceSource : public LineSource
{
  public:
    explicit BlktraceSource(const std::string &path,
                            IngestOptions opts = {});
    const char *formatName() const override { return "blktrace"; }

  protected:
    bool parseLine(std::string_view line, const ParseCursor &at,
                   TraceRecord &out) override;

  private:
    IngestOptions opt;
    /** maj,min device -> dense disk id, stable across rewinds. */
    std::unordered_map<std::string, DiskId> devices;
};

} // namespace pacache::tracefmt

#endif // PACACHE_TRACEFMT_FORMATS_HH
