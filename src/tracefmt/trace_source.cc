#include "tracefmt/trace_source.hh"

#include <algorithm>

namespace pacache::tracefmt
{

Trace
readAll(TraceSource &src)
{
    std::vector<TraceRecord> recs;
    if (const uint64_t hint = src.sizeHint(); hint != TraceSource::kUnknown)
        recs.reserve(hint);
    TraceRecord rec;
    while (src.next(rec))
        recs.push_back(rec);
    return Trace(std::move(recs));
}

ScanSummary
scan(TraceSource &src)
{
    ScanSummary s;
    TraceRecord rec;
    while (src.next(rec)) {
        if (s.records == 0)
            s.firstTime = rec.time;
        ++s.records;
        if (rec.write)
            ++s.writes;
        s.blocks += rec.numBlocks;
        s.numDisks = std::max<std::size_t>(s.numDisks, rec.disk + 1);
        s.endTime = rec.time;
    }
    src.rewind();
    return s;
}

} // namespace pacache::tracefmt
