/**
 * @file
 * TraceSink — the write side of the ingestion subsystem: stream
 * records into the native text format or the .pct binary without
 * materializing the trace, so conversions run in constant memory.
 */

#ifndef PACACHE_TRACEFMT_SINK_HH
#define PACACHE_TRACEFMT_SINK_HH

#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "tracefmt/detect.hh"
#include "tracefmt/pct.hh"

namespace pacache::tracefmt
{

/** Streaming consumer of trace records. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Append one record (records must arrive in time order). */
    virtual void append(const TraceRecord &rec) = 0;

    /** Flush and close; no appends afterwards. */
    virtual void finish() {}
};

/** Native text format sink. */
class TextSink : public TraceSink
{
  public:
    /** Open @p path (fatal on failure). */
    explicit TextSink(const std::string &path);

    /** Write to a borrowed stream. */
    explicit TextSink(std::ostream &os);

    void append(const TraceRecord &rec) override;
    void finish() override;

  private:
    std::ofstream owned;
    std::ostream *out;
    std::string path;
};

/** .pct binary sink. */
class PctSink : public TraceSink
{
  public:
    explicit PctSink(const std::string &path) : writer(path) {}

    void append(const TraceRecord &rec) override { writer.append(rec); }
    void finish() override { info = writer.finish(); }

    /** Final header (valid after finish()). */
    const PctInfo &header() const { return info; }

  private:
    PctWriter writer;
    PctInfo info;
};

/**
 * Open a sink for @p path. Auto format picks .pct for a ".pct"
 * extension and native text otherwise.
 */
std::unique_ptr<TraceSink>
openTraceSink(const std::string &path,
              TraceFormat fmt = TraceFormat::Auto);

/** Drain @p src into @p sink (finishing it); returns records copied. */
uint64_t copyAll(TraceSource &src, TraceSink &sink);

} // namespace pacache::tracefmt

#endif // PACACHE_TRACEFMT_SINK_HH
