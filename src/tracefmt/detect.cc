#include "tracefmt/detect.hh"

#include <cctype>
#include <cstring>
#include <fstream>

#include "tracefmt/pct.hh"
#include "tracefmt/text_source.hh"
#include "util/logging.hh"

namespace pacache::tracefmt
{

namespace
{

bool
isSingleRwChar(std::string_view tok)
{
    return tok.size() == 1 && (tok[0] == 'R' || tok[0] == 'r' ||
                               tok[0] == 'W' || tok[0] == 'w');
}

bool
isReadWriteWord(std::string_view tok)
{
    return tok.size() >= 4 &&
           (std::tolower(static_cast<unsigned char>(tok[0])) == 'r' ||
            std::tolower(static_cast<unsigned char>(tok[0])) == 'w');
}

bool
looksLikeDevice(std::string_view tok)
{
    const std::size_t comma = tok.find(',');
    if (comma == std::string_view::npos || comma == 0 ||
        comma + 1 >= tok.size())
        return false;
    for (std::size_t i = 0; i < tok.size(); ++i) {
        if (i != comma && !std::isdigit(static_cast<unsigned char>(tok[i])))
            return false;
    }
    return true;
}

/** Classify one meaningful text line, or Auto when undecidable. */
TraceFormat
classifyLine(std::string_view line)
{
    const std::vector<std::string_view> tok = splitTokens(line);
    if (!tok.empty() && looksLikeDevice(tok[0]) && tok.size() >= 7)
        return TraceFormat::Blktrace;
    if (line.find(',') != std::string_view::npos) {
        const std::vector<std::string_view> f = splitFields(line, ',');
        if (f.size() >= 6 && isReadWriteWord(f[3]))
            return TraceFormat::Msr;
        if (f.size() >= 5 && isSingleRwChar(f[3]))
            return TraceFormat::Spc;
        return TraceFormat::Auto;
    }
    if (tok.size() == 5 && isSingleRwChar(tok[4]))
        return TraceFormat::Text;
    return TraceFormat::Auto;
}

} // namespace

const char *
traceFormatName(TraceFormat fmt)
{
    switch (fmt) {
      case TraceFormat::Auto: return "auto";
      case TraceFormat::Text: return "text";
      case TraceFormat::Spc: return "spc";
      case TraceFormat::Msr: return "msr";
      case TraceFormat::Blktrace: return "blktrace";
      case TraceFormat::Pct: return "pct";
    }
    PACACHE_PANIC("unknown trace format");
}

TraceFormat
parseTraceFormat(const std::string &name)
{
    if (name == "auto") return TraceFormat::Auto;
    if (name == "text") return TraceFormat::Text;
    if (name == "spc") return TraceFormat::Spc;
    if (name == "msr") return TraceFormat::Msr;
    if (name == "blktrace") return TraceFormat::Blktrace;
    if (name == "pct") return TraceFormat::Pct;
    PACACHE_FATAL("unknown trace format '", name,
                  "' (auto|text|spc|msr|blktrace|pct)");
}

TraceFormat
detectTraceFormat(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        PACACHE_FATAL("cannot open trace file '", path, "'");

    char magic[sizeof(kPctMagic)] = {};
    in.read(magic, sizeof(magic));
    if (in.gcount() == sizeof(magic) &&
        std::memcmp(magic, kPctMagic, sizeof(magic)) == 0)
        return TraceFormat::Pct;

    in.clear();
    in.seekg(0);
    // Classify the first meaningful line; a handful of follow-up
    // lines break ties for files that open with unusual records.
    std::string line;
    for (int scanned = 0; scanned < 16 && std::getline(in, line);
         ++scanned) {
        std::string_view sv(line);
        if (!sv.empty() && sv.back() == '\r')
            sv.remove_suffix(1);
        if (sv.empty() || sv.front() == '#')
            continue;
        const TraceFormat fmt = classifyLine(sv);
        if (fmt != TraceFormat::Auto)
            return fmt;
    }
    PACACHE_FATAL("cannot auto-detect the trace format of '", path,
                  "'; pass an explicit format (text|spc|msr|blktrace|"
                  "pct)");
}

std::unique_ptr<TraceSource>
openTraceSource(const std::string &path, TraceFormat fmt,
                const IngestOptions &opts)
{
    if (fmt == TraceFormat::Auto)
        fmt = detectTraceFormat(path);
    switch (fmt) {
      case TraceFormat::Text:
        return std::make_unique<TextSource>(path);
      case TraceFormat::Spc:
        return std::make_unique<SpcSource>(path, opts);
      case TraceFormat::Msr:
        return std::make_unique<MsrSource>(path, opts);
      case TraceFormat::Blktrace:
        return std::make_unique<BlktraceSource>(path, opts);
      case TraceFormat::Pct:
        return std::make_unique<PctMmapSource>(path);
      case TraceFormat::Auto:
        break;
    }
    PACACHE_PANIC("unreachable trace format");
}

} // namespace pacache::tracefmt
