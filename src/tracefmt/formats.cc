#include "tracefmt/formats.hh"

#include <cctype>
#include <limits>

#include "util/logging.hh"

namespace pacache::tracefmt
{

namespace
{

DiskId
mapDisk(const IngestOptions &opt, uint64_t id, const ParseCursor &at,
        std::string_view tok)
{
    if (opt.diskModulo > 0)
        id %= opt.diskModulo;
    if (id > std::numeric_limits<DiskId>::max())
        parseFail(at, "disk id out of range", tok);
    return static_cast<DiskId>(id);
}

/** Map a byte extent onto [block, block + numBlocks). */
void
mapExtent(const IngestOptions &opt, uint64_t offset_bytes,
          uint64_t length_bytes, TraceRecord &rec, const ParseCursor &at)
{
    rec.block = offset_bytes / opt.blockBytes;
    const uint64_t end = offset_bytes + length_bytes;
    const uint64_t last = end > offset_bytes ? (end - 1) / opt.blockBytes
                                             : rec.block;
    const uint64_t count = last - rec.block + 1;
    if (count > 0x7fffffffULL)
        parseFail(at, "request spans too many blocks");
    // Residency/handle maps key on 48 block bits (BlockId::packed);
    // reject over-range sector addresses here with a located parse
    // error instead of panicking deep inside the cache.
    if (last >= (uint64_t{1} << 48))
        parseFail(at, "block number beyond 2^48 (packed-key limit)");
    rec.numBlocks = static_cast<uint32_t>(count);
}

bool
equalsIgnoreCase(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    }
    return true;
}

/** True for "R", "W", "Read", "Write" (any case); fatal otherwise. */
bool
parseOpcode(std::string_view tok, const ParseCursor &at)
{
    if (equalsIgnoreCase(tok, "r") || equalsIgnoreCase(tok, "read"))
        return false;
    if (equalsIgnoreCase(tok, "w") || equalsIgnoreCase(tok, "write"))
        return true;
    parseFail(at, "bad opcode (expected read/write)", tok);
}

/** True if @p tok looks like a blktrace "maj,min" device field. */
bool
isDeviceToken(std::string_view tok)
{
    const std::size_t comma = tok.find(',');
    if (comma == std::string_view::npos || comma == 0 ||
        comma + 1 >= tok.size())
        return false;
    for (std::size_t i = 0; i < tok.size(); ++i) {
        if (i == comma)
            continue;
        if (!std::isdigit(static_cast<unsigned char>(tok[i])))
            return false;
    }
    return true;
}

} // namespace

SpcSource::SpcSource(const std::string &path, IngestOptions opts)
    : LineSource(path, opts.rebaseTime, opts.clampUnsorted), opt(opts)
{}

bool
SpcSource::parseLine(std::string_view line, const ParseCursor &at,
                     TraceRecord &out)
{
    const std::vector<std::string_view> f = splitFields(line, ',');
    if (f.size() < 5) {
        parseFail(at, detail::concat("expected 5 CSV fields "
                                     "(ASU,LBA,size,opcode,timestamp), "
                                     "got ",
                                     f.size()),
                  line);
    }
    out.disk = mapDisk(opt, parseU64Field(f[0], at, "ASU"), at, f[0]);
    const uint64_t lba = parseU64Field(f[1], at, "LBA");
    const uint64_t bytes = parseU64Field(f[2], at, "size");
    out.write = parseOpcode(f[3], at);
    out.time = parseDoubleField(f[4], at, "timestamp");
    if (out.time < 0)
        parseFail(at, "negative timestamp", f[4]);
    mapExtent(opt, lba * opt.sectorBytes, bytes, out, at);
    return true;
}

MsrSource::MsrSource(const std::string &path, IngestOptions opts)
    : LineSource(path, opts.rebaseTime, opts.clampUnsorted), opt(opts)
{}

bool
MsrSource::parseLine(std::string_view line, const ParseCursor &at,
                     TraceRecord &out)
{
    const std::vector<std::string_view> f = splitFields(line, ',');
    // Some published cuts carry a CSV header; skip it on line 1 only.
    if (at.line == 1 && !f.empty() && !f[0].empty() &&
        !std::isdigit(static_cast<unsigned char>(f[0][0])))
        return false;
    if (f.size() < 6) {
        parseFail(at, detail::concat(
                          "expected 6+ CSV fields (Timestamp,Hostname,"
                          "DiskNumber,Type,Offset,Size), got ",
                          f.size()),
                  line);
    }
    const uint64_t ticks = parseU64Field(f[0], at, "timestamp");
    if (!haveFirstTicks) {
        haveFirstTicks = true;
        firstTicks = ticks;
    }
    // 100 ns FILETIME ticks; anchored subtraction keeps precision.
    out.time = ticks >= firstTicks
                   ? static_cast<double>(ticks - firstTicks) * 1e-7
                   : -(static_cast<double>(firstTicks - ticks) * 1e-7);
    out.disk =
        mapDisk(opt, parseU64Field(f[2], at, "disk number"), at, f[2]);
    out.write = parseOpcode(f[3], at);
    const uint64_t offset = parseU64Field(f[4], at, "offset");
    const uint64_t bytes = parseU64Field(f[5], at, "size");
    mapExtent(opt, offset, bytes, out, at);
    return true;
}

BlktraceSource::BlktraceSource(const std::string &path, IngestOptions opts)
    : LineSource(path, opts.rebaseTime, opts.clampUnsorted), opt(opts)
{}

bool
BlktraceSource::parseLine(std::string_view line, const ParseCursor &at,
                          TraceRecord &out)
{
    const std::vector<std::string_view> tok = splitTokens(line);
    // blkparse output ends with per-CPU summaries and may carry other
    // noise; only lines opening with a maj,min device are records.
    if (tok.empty() || !isDeviceToken(tok[0]))
        return false;
    if (tok.size() < 7)
        parseFail(at, "truncated blktrace record", line);

    // maj,min cpu seq time pid action rwbs [sector + sectors [proc]]
    const std::string_view action = tok[5];
    if (action.size() != 1 || action[0] != opt.blktraceAction)
        return false;
    const std::string_view rwbs = tok[6];
    const bool has_read = rwbs.find('R') != std::string_view::npos;
    const bool has_write = rwbs.find('W') != std::string_view::npos;
    if (!has_read && !has_write)
        return false; // discard/flush/barrier-only actions
    if (tok.size() < 10 || tok[8] != "+")
        parseFail(at, "blktrace record without '+ sectors' extent",
                  line);

    out.time = parseDoubleField(tok[3], at, "timestamp");
    if (out.time < 0)
        parseFail(at, "negative timestamp", tok[3]);
    out.write = has_write;

    const std::string dev(tok[0]);
    const auto [it, inserted] = devices.try_emplace(
        dev, static_cast<DiskId>(devices.size()));
    uint64_t disk = it->second;
    if (opt.diskModulo > 0)
        disk %= opt.diskModulo;
    out.disk = static_cast<DiskId>(disk);

    const uint64_t sector = parseU64Field(tok[7], at, "sector");
    const uint64_t sectors = parseU64Field(tok[9], at, "sector count");
    if (sectors == 0)
        parseFail(at, "zero-length blktrace request", tok[9]);
    mapExtent(opt, sector * opt.sectorBytes, sectors * opt.sectorBytes,
              out, at);
    return true;
}

} // namespace pacache::tracefmt
