/**
 * @file
 * Shared error reporting and field parsing for trace parsers.
 *
 * Every malformed record is reported as "<source>:<line>: <message>
 * near '<token>'" so a bad line in a multi-gigabyte trace can be
 * located and inspected, instead of a context-free fatal.
 */

#ifndef PACACHE_TRACEFMT_PARSE_HH
#define PACACHE_TRACEFMT_PARSE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pacache::tracefmt
{

/** Where a parser currently is: input name plus 1-based line. */
struct ParseCursor
{
    std::string source = "<input>";
    uint64_t line = 0; //!< 0 when the input is not line-addressable
};

/**
 * Report a malformed record and exit via fatal(): the message carries
 * @p at rendered as "source:line" (just "source" when line is 0) and,
 * when given, the offending @p token.
 */
[[noreturn]] void parseFail(const ParseCursor &at, const std::string &msg,
                            std::string_view token = {});

/** Split on @p sep, trimming spaces/tabs/CR around each field. */
std::vector<std::string_view> splitFields(std::string_view line, char sep);

/** Split on runs of spaces/tabs. */
std::vector<std::string_view> splitTokens(std::string_view line);

/** Parse an unsigned integer field; parseFail() on any malformation. */
uint64_t parseU64Field(std::string_view tok, const ParseCursor &at,
                       const char *what);

/** Parse a finite floating-point field; parseFail() on malformation. */
double parseDoubleField(std::string_view tok, const ParseCursor &at,
                        const char *what);

} // namespace pacache::tracefmt

#endif // PACACHE_TRACEFMT_PARSE_HH
