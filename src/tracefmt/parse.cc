#include "tracefmt/parse.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>

#include "util/logging.hh"

namespace pacache::tracefmt
{

namespace
{

std::string_view
trim(std::string_view s)
{
    while (!s.empty() &&
           (s.front() == ' ' || s.front() == '\t' || s.front() == '\r'))
        s.remove_prefix(1);
    while (!s.empty() &&
           (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
        s.remove_suffix(1);
    return s;
}

} // namespace

void
parseFail(const ParseCursor &at, const std::string &msg,
          std::string_view token)
{
    std::string where = at.source;
    if (at.line > 0)
        where += ":" + std::to_string(at.line);
    if (token.empty())
        PACACHE_FATAL(where, ": ", msg);
    PACACHE_FATAL(where, ": ", msg, " near '", std::string(token), "'");
}

std::vector<std::string_view>
splitFields(std::string_view line, char sep)
{
    std::vector<std::string_view> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = line.find(sep, start);
        if (pos == std::string_view::npos) {
            out.push_back(trim(line.substr(start)));
            return out;
        }
        out.push_back(trim(line.substr(start, pos - start)));
        start = pos + 1;
    }
}

std::vector<std::string_view>
splitTokens(std::string_view line)
{
    std::vector<std::string_view> out;
    std::size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() &&
               (line[i] == ' ' || line[i] == '\t' || line[i] == '\r'))
            ++i;
        std::size_t j = i;
        while (j < line.size() && line[j] != ' ' && line[j] != '\t' &&
               line[j] != '\r')
            ++j;
        if (j > i)
            out.push_back(line.substr(i, j - i));
        i = j;
    }
    return out;
}

uint64_t
parseU64Field(std::string_view tok, const ParseCursor &at, const char *what)
{
    uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), value);
    if (tok.empty() || ec != std::errc{} || ptr != tok.data() + tok.size())
        parseFail(at, std::string("malformed ") + what, tok);
    return value;
}

double
parseDoubleField(std::string_view tok, const ParseCursor &at,
                 const char *what)
{
    // strtod needs NUL termination; trace fields are short, so a
    // bounded stack copy avoids allocation on the parse hot path.
    char buf[64];
    if (tok.empty() || tok.size() >= sizeof(buf))
        parseFail(at, std::string("malformed ") + what, tok);
    tok.copy(buf, tok.size());
    buf[tok.size()] = '\0';
    char *end = nullptr;
    const double value = std::strtod(buf, &end);
    if (end != buf + tok.size() || !std::isfinite(value))
        parseFail(at, std::string("malformed ") + what, tok);
    return value;
}

} // namespace pacache::tracefmt
