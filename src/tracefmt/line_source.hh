/**
 * @file
 * LineSource — shared machinery for line-oriented trace formats:
 * file/stream line iteration with 1-based line accounting (for
 * error context), '#'-comment and blank-line skipping, arrival-order
 * enforcement, and optional rebasing of the first arrival to t = 0.
 */

#ifndef PACACHE_TRACEFMT_LINE_SOURCE_HH
#define PACACHE_TRACEFMT_LINE_SOURCE_HH

#include <fstream>
#include <istream>
#include <string>
#include <string_view>

#include "tracefmt/parse.hh"
#include "tracefmt/trace_source.hh"

namespace pacache::tracefmt
{

/** Base for all text trace parsers. */
class LineSource : public TraceSource
{
  public:
    bool next(TraceRecord &out) override;
    void rewind() override;

  protected:
    /**
     * Open @p path (fatal with the path on failure).
     * @param rebase  shift arrivals so the first record is at t = 0
     * @param clamp   clamp out-of-order arrivals to the previous time
     *                (real traces have small timestamp regressions);
     *                when false they are a parse error
     */
    LineSource(const std::string &path, bool rebase, bool clamp);

    /** Borrow an already-open stream; @p name labels parse errors. */
    LineSource(std::istream &is, std::string name, bool rebase,
               bool clamp);

    /**
     * Parse one non-comment line into @p out. Return false to skip
     * the line (format-specific noise such as headers or non-queue
     * blktrace actions); report malformed input via parseFail(at).
     */
    virtual bool parseLine(std::string_view line, const ParseCursor &at,
                           TraceRecord &out) = 0;

    /** Called on rewind so parsers can reset per-pass state. */
    virtual void onRewind() {}

    const ParseCursor &cursor() const { return at; }

  private:
    std::ifstream owned;
    std::istream *in;
    std::streampos start;
    ParseCursor at;
    std::string line;
    bool rebase;
    bool clamp;
    bool haveFirst = false;
    Time firstTime = 0;
    Time lastTime = 0;
};

} // namespace pacache::tracefmt

#endif // PACACHE_TRACEFMT_LINE_SOURCE_HH
