#include "tracefmt/line_source.hh"

#include "util/logging.hh"

namespace pacache::tracefmt
{

LineSource::LineSource(const std::string &path, bool rebase_, bool clamp_)
    : owned(path), in(&owned), rebase(rebase_), clamp(clamp_)
{
    if (!owned)
        PACACHE_FATAL("cannot open trace file '", path, "'");
    at.source = path;
    start = owned.tellg();
}

LineSource::LineSource(std::istream &is, std::string name, bool rebase_,
                       bool clamp_)
    : in(&is), at{std::move(name), 0}, rebase(rebase_), clamp(clamp_)
{
    start = in->tellg();
}

bool
LineSource::next(TraceRecord &out)
{
    while (std::getline(*in, line)) {
        ++at.line;
        std::string_view sv(line);
        if (!sv.empty() && sv.back() == '\r')
            sv.remove_suffix(1); // CRLF traces (MSR is from Windows)
        while (!sv.empty() && (sv.front() == ' ' || sv.front() == '\t'))
            sv.remove_prefix(1);
        if (sv.empty() || sv.front() == '#')
            continue;
        if (!parseLine(sv, at, out))
            continue;

        // The first accepted record anchors the (optional) rebase so
        // that every pass over the source yields identical times.
        if (!haveFirst) {
            haveFirst = true;
            firstTime = out.time;
        }
        if (rebase)
            out.time -= firstTime;

        if (out.time < lastTime) {
            if (!clamp) {
                parseFail(at, detail::concat(
                                  "out-of-order arrival time ", out.time,
                                  " (previous record is at ", lastTime,
                                  ")"));
            }
            out.time = lastTime;
        }
        lastTime = out.time;
        return true;
    }
    return false;
}

void
LineSource::rewind()
{
    in->clear();
    in->seekg(start);
    at.line = 0;
    lastTime = 0;
    // haveFirst/firstTime survive so rebasing stays deterministic.
    onRewind();
}

} // namespace pacache::tracefmt
