/**
 * @file
 * TraceSource — the pull-based streaming interface behind every
 * workload ingestion path.
 *
 * A source yields TraceRecords one at a time in arrival order and can
 * be rewound to its first record, so simulations can be driven by
 * traces far larger than RAM while off-line consumers (Belady, OPG,
 * trace characterization) can still materialize when they must.
 */

#ifndef PACACHE_TRACEFMT_TRACE_SOURCE_HH
#define PACACHE_TRACEFMT_TRACE_SOURCE_HH

#include <cstdint>
#include <string>

#include "trace/trace.hh"

namespace pacache::tracefmt
{

/** Streaming producer of time-ordered trace records. */
class TraceSource
{
  public:
    /** Hint value meaning "not known without a full scan". */
    static constexpr uint64_t kUnknown = ~uint64_t{0};

    virtual ~TraceSource() = default;

    /** Produce the next record; false at end of stream. */
    virtual bool next(TraceRecord &out) = 0;

    /** Reposition at the first record (sources are re-runnable). */
    virtual void rewind() = 0;

    /** Short format name ("text", "pct", "spc", ...). */
    virtual const char *formatName() const = 0;

    /** Total record count, when cheaply known (else kUnknown). */
    virtual uint64_t sizeHint() const { return kUnknown; }

    /** Number of disks (max id + 1), when cheaply known. */
    virtual uint64_t numDisksHint() const { return kUnknown; }

    /** Last arrival time, when cheaply known (negative if not). */
    virtual Time endTimeHint() const { return -1; }

    /**
     * Path of the backing .pct file, when this source *is* a .pct
     * file (empty otherwise). Out-of-core consumers (the windowed
     * oracle's backward pass, disk-sharded demux) re-open the file
     * for random access instead of materializing the stream.
     */
    virtual std::string pctPath() const { return {}; }
};

/** Adapter: stream an in-memory Trace. */
class MemorySource : public TraceSource
{
  public:
    explicit MemorySource(const Trace &trace_) : trace(&trace_) {}

    bool
    next(TraceRecord &out) override
    {
        if (pos >= trace->size())
            return false;
        out = (*trace)[pos++];
        return true;
    }

    void rewind() override { pos = 0; }
    const char *formatName() const override { return "memory"; }
    uint64_t sizeHint() const override { return trace->size(); }
    uint64_t numDisksHint() const override { return trace->numDisks(); }

    Time
    endTimeHint() const override
    {
        return trace->empty() ? -1 : trace->endTime();
    }

  private:
    const Trace *trace;
    std::size_t pos = 0;
};

/** Materialize the remainder of @p src into an in-memory Trace. */
Trace readAll(TraceSource &src);

/** Constant-memory whole-stream summary. */
struct ScanSummary
{
    uint64_t records = 0;
    uint64_t writes = 0;
    uint64_t blocks = 0; //!< sum of record lengths
    std::size_t numDisks = 0;
    Time firstTime = 0;
    Time endTime = 0;

    double
    writeRatio() const
    {
        return records ? static_cast<double>(writes) /
                             static_cast<double>(records)
                       : 0.0;
    }

    double
    meanInterArrival() const
    {
        return records > 1 ? (endTime - firstTime) /
                                 static_cast<double>(records - 1)
                           : 0.0;
    }
};

/** Scan @p src from its current position, then rewind it. */
ScanSummary scan(TraceSource &src);

} // namespace pacache::tracefmt

#endif // PACACHE_TRACEFMT_TRACE_SOURCE_HH
