/**
 * @file
 * Trace format identification and the one-call entry point of the
 * ingestion subsystem: openTraceSource() turns a path (plus an
 * optional explicit format) into a streaming TraceSource, sniffing
 * the .pct magic and the first meaningful text line when asked to
 * auto-detect.
 */

#ifndef PACACHE_TRACEFMT_DETECT_HH
#define PACACHE_TRACEFMT_DETECT_HH

#include <memory>
#include <string>

#include "tracefmt/formats.hh"
#include "tracefmt/trace_source.hh"

namespace pacache::tracefmt
{

/** Supported on-disk trace formats. */
enum class TraceFormat
{
    Auto,     //!< sniff magic / first line
    Text,     //!< native "time disk block count R|W"
    Spc,      //!< SPC-1 / UMass CSV
    Msr,      //!< MSR-Cambridge CSV
    Blktrace, //!< blkparse text output
    Pct,      //!< pacache binary
};

/** Display name ("auto", "text", "spc", ...). */
const char *traceFormatName(TraceFormat fmt);

/** Parse a format name (fatal on an unknown one). */
TraceFormat parseTraceFormat(const std::string &name);

/** Identify the format of @p path (never Auto; fatal if unknowable). */
TraceFormat detectTraceFormat(const std::string &path);

/**
 * Open a streaming source for @p path. Auto format sniffs the file;
 * .pct files get the zero-copy mmap reader. @p opts applies to the
 * foreign text formats (SPC / MSR / blktrace).
 */
std::unique_ptr<TraceSource>
openTraceSource(const std::string &path,
                TraceFormat fmt = TraceFormat::Auto,
                const IngestOptions &opts = {});

} // namespace pacache::tracefmt

#endif // PACACHE_TRACEFMT_DETECT_HH
