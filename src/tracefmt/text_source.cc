#include "tracefmt/text_source.hh"

#include <limits>

#include "util/logging.hh"

namespace pacache::tracefmt
{

TraceRecord
parseTextRecord(std::string_view line, const ParseCursor &at)
{
    const std::vector<std::string_view> tok = splitTokens(line);
    if (tok.size() != 5) {
        parseFail(at, detail::concat("expected 5 fields "
                                     "(time disk block count R|W), got ",
                                     tok.size()),
                  line);
    }

    TraceRecord rec;
    rec.time = parseDoubleField(tok[0], at, "time");
    if (rec.time < 0)
        parseFail(at, "negative arrival time", tok[0]);

    const uint64_t disk = parseU64Field(tok[1], at, "disk id");
    if (disk > std::numeric_limits<DiskId>::max())
        parseFail(at, "disk id out of range", tok[1]);
    rec.disk = static_cast<DiskId>(disk);

    rec.block = parseU64Field(tok[2], at, "block number");

    const uint64_t count = parseU64Field(tok[3], at, "block count");
    if (count == 0 || count > std::numeric_limits<uint32_t>::max())
        parseFail(at, "block count out of range", tok[3]);
    rec.numBlocks = static_cast<uint32_t>(count);

    if (tok[4].size() != 1 ||
        (tok[4][0] != 'R' && tok[4][0] != 'r' && tok[4][0] != 'W' &&
         tok[4][0] != 'w')) {
        parseFail(at, "bad R/W flag", tok[4]);
    }
    rec.write = (tok[4][0] == 'W' || tok[4][0] == 'w');
    return rec;
}

} // namespace pacache::tracefmt
