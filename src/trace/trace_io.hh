/**
 * @file
 * Text trace file I/O. The format is one record per line:
 *     <time-seconds> <disk> <block> <num-blocks> <R|W>
 * Lines beginning with '#' are comments.
 */

#ifndef PACACHE_TRACE_TRACE_IO_HH
#define PACACHE_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "trace/trace.hh"

namespace pacache
{

/**
 * Read a trace from a stream. Malformed and out-of-order lines are
 * fatal with "<name>:<line>" context and the offending token.
 */
Trace readTrace(std::istream &is, const std::string &name = "<stream>");

/** Read a trace from a file (fatal on open failure / bad lines). */
Trace readTraceFile(const std::string &path);

/** Write a trace to a stream. */
void writeTrace(std::ostream &os, const Trace &trace);

/** Write a trace to a file (fatal on open failure). */
void writeTraceFile(const std::string &path, const Trace &trace);

} // namespace pacache

#endif // PACACHE_TRACE_TRACE_IO_HH
