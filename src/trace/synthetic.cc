#include "trace/synthetic.hh"

#include <algorithm>
#include <queue>

#include "util/logging.hh"

namespace pacache
{

Time
ArrivalModel::sample(Rng &rng) const
{
    const double mean_s = meanMs * 1e-3;
    switch (kind) {
      case Kind::Exponential:
        return rng.exponential(mean_s);
      case Kind::Pareto: {
        // Mean of Pareto(shape, scale) is scale*shape/(shape-1); pick
        // the scale so the requested mean is hit.
        PACACHE_ASSERT(paretoShape > 1.0,
                       "pareto arrivals need shape > 1 for a finite mean");
        const double scale = mean_s * (paretoShape - 1.0) / paretoShape;
        return rng.pareto(paretoShape, scale);
      }
    }
    PACACHE_PANIC("unreachable arrival kind");
}

AddressGenerator::AddressGenerator(const Params &params)
    : p(params),
      zipf(std::max<std::size_t>(1, params.stackSize), params.zipfTheta)
{
    PACACHE_ASSERT(p.footprintBlocks > 0, "footprint must be positive");
    PACACHE_ASSERT(p.seqProb + p.localProb <= 1.0 + 1e-9,
                   "spatial probabilities exceed 1");
    stack.resize(std::max<std::size_t>(1, p.stackSize));
}

void
AddressGenerator::push(BlockNum b)
{
    stack[head] = b;
    head = (head + 1) % stack.size();
    filled = std::min(filled + 1, stack.size());
    last = b;
}

BlockNum
AddressGenerator::next(Rng &rng)
{
    const double r = rng.uniform();
    BlockNum b;
    if (r < p.seqProb) {
        b = (last + 1) % p.footprintBlocks;
    } else if (r < p.seqProb + p.localProb) {
        const auto dist = static_cast<int64_t>(
            rng.below(2 * p.maxLocalDistance + 1)) -
            static_cast<int64_t>(p.maxLocalDistance);
        const auto moved = static_cast<int64_t>(last) + dist;
        const auto span = static_cast<int64_t>(p.footprintBlocks);
        b = static_cast<BlockNum>(((moved % span) + span) % span);
    } else if (filled > 0 && rng.chance(p.reuseProb)) {
        // Temporal locality: Zipf-distributed stack distance.
        const std::size_t d = zipf.sample(rng) % filled;
        const std::size_t idx = (head + stack.size() - 1 - d) %
                                stack.size();
        b = stack[idx];
    } else {
        b = rng.below(p.footprintBlocks);
    }
    push(b);
    return b;
}

namespace
{

/** Cumulative weights for skewed disk choice (empty: uniform). */
std::vector<double>
diskCdf(const SyntheticParams &params)
{
    if (params.diskWeights.empty())
        return {};
    PACACHE_ASSERT(params.diskWeights.size() == params.numDisks,
                   "diskWeights must have one entry per disk");
    std::vector<double> cdf(params.diskWeights.size());
    double sum = 0;
    for (std::size_t d = 0; d < cdf.size(); ++d) {
        PACACHE_ASSERT(params.diskWeights[d] >= 0,
                       "diskWeights must be non-negative");
        sum += params.diskWeights[d];
        cdf[d] = sum;
    }
    PACACHE_ASSERT(sum > 0, "diskWeights must have a positive sum");
    return cdf;
}

} // namespace

Trace
generateSynthetic(const SyntheticParams &params)
{
    PACACHE_ASSERT(params.numDisks > 0, "need at least one disk");
    Rng rng(params.seed);

    std::vector<AddressGenerator> gens;
    gens.reserve(params.numDisks);
    for (uint32_t d = 0; d < params.numDisks; ++d)
        gens.emplace_back(params.address);

    const std::vector<double> cdf = diskCdf(params);

    Trace trace;
    Time now = 0;
    for (uint64_t i = 0; i < params.numRequests; ++i) {
        now += params.arrival.sample(rng);
        TraceRecord rec;
        rec.time = now;
        if (cdf.empty()) {
            rec.disk = static_cast<DiskId>(rng.below(params.numDisks));
        } else {
            const double pick = rng.uniform() * cdf.back();
            const auto it =
                std::upper_bound(cdf.begin(), cdf.end(), pick);
            rec.disk = static_cast<DiskId>(
                std::min<std::size_t>(it - cdf.begin(), cdf.size() - 1));
        }
        rec.block = gens[rec.disk].next(rng);
        rec.numBlocks = 1;
        rec.write = rng.chance(params.writeRatio);
        trace.append(rec);
    }
    return trace;
}

Trace
generatePerDisk(const std::vector<DiskStream> &streams, Time duration,
                uint64_t seed)
{
    PACACHE_ASSERT(!streams.empty(), "need at least one stream");
    PACACHE_ASSERT(duration > 0, "duration must be positive");

    struct StreamState
    {
        Rng rng;
        AddressGenerator gen;
        Time next;

        StreamState(uint64_t s, const DiskStream &ds)
            : rng(s), gen(ds.address), next(0) {}
    };

    std::vector<StreamState> state;
    state.reserve(streams.size());
    for (std::size_t i = 0; i < streams.size(); ++i) {
        state.emplace_back(seed * 0x9e3779b97f4a7c15ULL + i + 1,
                           streams[i]);
        state[i].next = streams[i].arrival.sample(state[i].rng);
    }

    // Merge per-disk arrival streams in time order with a min-heap.
    using HeapEntry = std::pair<Time, std::size_t>;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<>> heap;
    for (std::size_t i = 0; i < state.size(); ++i)
        if (state[i].next <= duration)
            heap.emplace(state[i].next, i);

    Trace trace;
    while (!heap.empty()) {
        const auto [t, i] = heap.top();
        heap.pop();
        StreamState &st = state[i];

        TraceRecord rec;
        rec.time = t;
        rec.disk = static_cast<DiskId>(i);
        rec.block = st.gen.next(st.rng);
        rec.numBlocks = 1;
        rec.write = st.rng.chance(streams[i].writeRatio);
        trace.append(rec);

        st.next = t + streams[i].arrival.sample(st.rng);
        if (st.next <= duration)
            heap.emplace(st.next, i);
    }
    return trace;
}

} // namespace pacache
