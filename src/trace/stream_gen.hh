/**
 * @file
 * Streaming synthetic workload generation: the per-disk composite
 * model of generatePerDisk() (trace/synthetic.hh) exposed as a
 * TraceSource, so multi-GB traces can be written to .pct or drive a
 * simulation directly without ever materializing a Trace. State is
 * one RNG + address generator per disk plus a min-heap of pending
 * arrivals — independent of how many requests are produced.
 *
 * Determinism: the same streams/duration/seed yield exactly the
 * record sequence generatePerDisk() materializes (same per-stream
 * RNG seeding, same heap merge); rewind() reinitializes every stream
 * from the seed and replays it bit for bit.
 */

#ifndef PACACHE_TRACE_STREAM_GEN_HH
#define PACACHE_TRACE_STREAM_GEN_HH

#include <queue>
#include <vector>

#include "trace/synthetic.hh"
#include "tracefmt/trace_source.hh"

namespace pacache
{

/** Pull-based generator over independent per-disk streams. */
class StreamingSyntheticSource : public tracefmt::TraceSource
{
  public:
    /**
     * Stream i drives disk i. @p duration <= 0 means unbounded (stop
     * on @p max_requests alone); @p max_requests == 0 means no
     * request cap. At least one bound must be positive.
     */
    StreamingSyntheticSource(std::vector<DiskStream> streams,
                             Time duration, uint64_t seed = 42,
                             uint64_t max_requests = 0);

    bool next(TraceRecord &out) override;
    void rewind() override;
    const char *formatName() const override { return "synthetic"; }
    uint64_t numDisksHint() const override { return streams.size(); }

    uint64_t
    sizeHint() const override
    {
        return maxRequests > 0 ? maxRequests : kUnknown;
    }

  private:
    struct StreamState
    {
        Rng rng;
        AddressGenerator gen;
        Time next;

        StreamState(uint64_t s, const DiskStream &ds)
            : rng(s), gen(ds.address), next(0)
        {
        }
    };

    void reinit();
    void schedule(std::size_t i, Time t);

    std::vector<DiskStream> streams;
    Time duration;
    uint64_t seed;
    uint64_t maxRequests;

    std::vector<StreamState> state;
    using HeapEntry = std::pair<Time, std::size_t>;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<>>
        heap;
    uint64_t emitted = 0;
};

/**
 * OLTP-like per-disk streams scaled to @p num_disks: the workload
 * synthesizer's constants (trace/workloads.cc) with the busy:quiet
 * disk ratio held at the paper's 6:21.
 */
std::vector<DiskStream> scaledOltpStreams(uint32_t num_disks);

/**
 * Cello-like per-disk streams scaled to @p num_disks: geometric
 * per-disk rate falloff from the synthesizer's constants, with the
 * inter-arrival time capped at 60 s so a thousand-disk array still
 * has live cold spindles instead of numerically-never ones, and the
 * reuse stacks shrunk to keep generator state per disk small.
 */
std::vector<DiskStream> scaledCelloStreams(uint32_t num_disks);

} // namespace pacache

#endif // PACACHE_TRACE_STREAM_GEN_HH
