#include "trace/workloads.hh"

#include "util/logging.hh"

namespace pacache
{

Trace
makeOltpTrace(const OltpParams &p)
{
    PACACHE_ASSERT(p.busyDisks <= p.numDisks,
                   "more busy disks than disks");

    std::vector<DiskStream> streams(p.numDisks);
    for (uint32_t d = 0; d < p.numDisks; ++d) {
        DiskStream &s = streams[d];
        s.writeRatio = p.writeRatio;
        if (d < p.busyDisks) {
            // Busy disks: large footprint, little reuse — a stream of
            // mostly-cold misses that floods an LRU cache.
            s.arrival = ArrivalModel::pareto(p.busyInterarrivalMs, 1.5);
            s.address.footprintBlocks = p.busyFootprint;
            s.address.reuseProb = p.busyReuseProb;
            s.address.seqProb = 0.05;
            s.address.localProb = 0.15;
            s.address.zipfTheta = 0.6;
        } else {
            // Quiet disks: small hot set, heavy re-use, almost no
            // spatial wandering — exactly the blocks a power-aware
            // cache should pin. The tiny cold-miss rate matters: cold
            // misses are the spin-ups no replacement policy can avoid.
            s.arrival = ArrivalModel::pareto(p.quietInterarrivalMs, 1.5);
            s.address.footprintBlocks = p.quietFootprint;
            s.address.reuseProb = p.quietReuseProb;
            s.address.seqProb = 0.01;
            s.address.localProb = 0.02;
            s.address.zipfTheta = 1.1;
            s.address.stackSize = 1u << 11;
        }
    }
    return generatePerDisk(streams, p.duration, p.seed);
}

Trace
makeOpgShowcaseTrace(const OpgShowcaseParams &p)
{
    PACACHE_ASSERT(p.busyGap > 0 && p.sleepyGap > 0, "gaps positive");
    std::vector<TraceRecord> recs;
    uint64_t busy_i = 0, sleepy_i = 0;
    Time busy_t = p.busyGap, sleepy_t = p.sleepyGap;
    while (busy_t <= p.duration || sleepy_t <= p.duration) {
        if (busy_t <= sleepy_t && busy_t <= p.duration) {
            recs.push_back(TraceRecord{
                busy_t, 0, busy_i % p.busyBlocks, 1, false});
            ++busy_i;
            busy_t += p.busyGap;
        } else if (sleepy_t <= p.duration) {
            recs.push_back(TraceRecord{
                sleepy_t, 1, sleepy_i % p.sleepyBlocks, 1, false});
            ++sleepy_i;
            sleepy_t += p.sleepyGap;
        } else {
            break;
        }
    }
    return Trace(std::move(recs));
}

Trace
makeCelloTrace(const CelloParams &p)
{
    std::vector<DiskStream> streams(p.numDisks);
    double interarrival_ms = p.busiestInterarrivalMs;
    for (uint32_t d = 0; d < p.numDisks; ++d) {
        DiskStream &s = streams[d];
        s.arrival = ArrivalModel::pareto(interarrival_ms, 1.3);
        s.writeRatio = p.writeRatio;
        s.address.footprintBlocks = p.footprint;
        s.address.reuseProb = p.reuseProb;
        s.address.seqProb = 0.15; // file-server scans are sequential
        s.address.localProb = 0.15;
        s.address.zipfTheta = 0.8;
        interarrival_ms *= p.skewGrowth;
    }
    return generatePerDisk(streams, p.duration, p.seed);
}

} // namespace pacache
