/**
 * @file
 * Trace characterization (paper Table 2): per-trace and per-disk
 * request counts, write ratio, mean inter-arrival time, footprint.
 */

#ifndef PACACHE_TRACE_STATS_HH
#define PACACHE_TRACE_STATS_HH

#include <cstdint>
#include <vector>

#include "trace/trace.hh"

namespace pacache
{

namespace tracefmt
{
class TraceSource;
}

/** Summary statistics for one trace. */
struct TraceStats
{
    uint64_t requests = 0;
    uint32_t disks = 0;
    double writeRatio = 0;        //!< fraction of write requests
    double meanInterArrival = 0;  //!< seconds, across the whole trace
    Time duration = 0;            //!< last arrival time
    uint64_t uniqueBlocks = 0;    //!< distinct (disk, block) touched

    /** Per-disk request counts. */
    std::vector<uint64_t> perDiskRequests;
    /** Per-disk mean inter-arrival times (seconds). */
    std::vector<double> perDiskInterArrival;
    /** Per-disk distinct blocks touched. */
    std::vector<uint64_t> perDiskUnique;
};

/** Compute summary statistics for a trace. */
TraceStats characterize(const Trace &trace);

/**
 * Streaming characterization: the same statistics from a single pass
 * over @p src without materializing it, so memory is bounded by the
 * footprint (the per-disk unique-block sets), never the trace
 * length. Leaves @p src at end of stream.
 */
TraceStats characterize(tracefmt::TraceSource &src);

} // namespace pacache

#endif // PACACHE_TRACE_STATS_HH
