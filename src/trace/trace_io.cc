#include "trace/trace_io.hh"

#include <fstream>

#include "tracefmt/text_source.hh"
#include "tracefmt/trace_source.hh"
#include "util/logging.hh"

namespace pacache
{

// Reading goes through the tracefmt streaming parser so malformed or
// out-of-order lines are reported with <name>:<line> context and the
// offending token, and so the text format has exactly one parser.

Trace
readTrace(std::istream &is, const std::string &name)
{
    tracefmt::TextSource src(is, name);
    return tracefmt::readAll(src);
}

Trace
readTraceFile(const std::string &path)
{
    tracefmt::TextSource src(path);
    return tracefmt::readAll(src);
}

void
writeTrace(std::ostream &os, const Trace &trace)
{
    os << "# pacache trace: time disk block count R|W\n";
    for (const auto &rec : trace)
        os << toString(rec) << '\n';
}

void
writeTraceFile(const std::string &path, const Trace &trace)
{
    std::ofstream out(path);
    if (!out)
        PACACHE_FATAL("cannot open trace file '", path, "' for writing");
    writeTrace(out, trace);
}

} // namespace pacache
