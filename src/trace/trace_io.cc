#include "trace/trace_io.hh"

#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace pacache
{

Trace
readTrace(std::istream &is)
{
    std::vector<TraceRecord> recs;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        recs.push_back(parseRecord(line));
    }
    return Trace(std::move(recs));
}

Trace
readTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        PACACHE_FATAL("cannot open trace file '", path, "'");
    return readTrace(in);
}

void
writeTrace(std::ostream &os, const Trace &trace)
{
    os << "# pacache trace: time disk block count R|W\n";
    for (const auto &rec : trace)
        os << toString(rec) << '\n';
}

void
writeTraceFile(const std::string &path, const Trace &trace)
{
    std::ofstream out(path);
    if (!out)
        PACACHE_FATAL("cannot open trace file '", path, "' for writing");
    writeTrace(out, trace);
}

} // namespace pacache
