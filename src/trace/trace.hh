/**
 * @file
 * An in-memory I/O trace: a time-ordered sequence of TraceRecords.
 */

#ifndef PACACHE_TRACE_TRACE_HH
#define PACACHE_TRACE_TRACE_HH

#include <vector>

#include "trace/record.hh"

namespace pacache
{

/** Time-ordered request sequence. */
class Trace
{
  public:
    Trace() = default;
    explicit Trace(std::vector<TraceRecord> recs);

    /** Append a record; its time must not precede the last one. */
    void append(TraceRecord rec);

    std::size_t size() const { return records.size(); }
    bool empty() const { return records.empty(); }

    const TraceRecord &operator[](std::size_t i) const
    {
        return records[i];
    }

    auto begin() const { return records.begin(); }
    auto end() const { return records.end(); }

    /** Time of the last record (0 when empty). */
    Time endTime() const
    {
        return records.empty() ? 0.0 : records.back().time;
    }

    /** Largest disk id referenced, plus one (0 when empty). */
    std::size_t numDisks() const { return nDisks; }

    /**
     * Total block-granular accesses (sum of per-record block counts);
     * cached so expandTrace can reserve its output exactly.
     */
    std::size_t numBlockAccesses() const { return nBlockAccesses; }

    /** Pre-size the record storage (e.g. from a TraceSource hint). */
    void reserve(std::size_t n) { records.reserve(n); }

    const std::vector<TraceRecord> &data() const { return records; }

  private:
    std::vector<TraceRecord> records;
    std::size_t nDisks = 0; //!< cached max disk id + 1
    std::size_t nBlockAccesses = 0; //!< cached sum of numBlocks
};

} // namespace pacache

#endif // PACACHE_TRACE_TRACE_HH
