/**
 * @file
 * One I/O trace record: the unit of input to the storage cache.
 */

#ifndef PACACHE_TRACE_RECORD_HH
#define PACACHE_TRACE_RECORD_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace pacache
{

/** A single block-level I/O request from a storage application. */
struct TraceRecord
{
    Time time = 0;          //!< arrival time (seconds)
    DiskId disk = 0;        //!< target disk
    BlockNum block = 0;     //!< starting logical block number
    uint32_t numBlocks = 1; //!< request length in blocks
    bool write = false;     //!< true for writes

    friend bool operator==(const TraceRecord &,
                           const TraceRecord &) = default;
};

/** Render "time disk block count R|W" (the text trace format). */
std::string toString(const TraceRecord &rec);

/**
 * Parse a text-format record.
 * @throws std::runtime_error (via PACACHE_FATAL) on malformed input.
 */
TraceRecord parseRecord(const std::string &line);

} // namespace pacache

#endif // PACACHE_TRACE_RECORD_HH
