#include "trace/stream_gen.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace pacache
{

StreamingSyntheticSource::StreamingSyntheticSource(
    std::vector<DiskStream> streams_, Time duration_, uint64_t seed_,
    uint64_t max_requests)
    : streams(std::move(streams_)), duration(duration_), seed(seed_),
      maxRequests(max_requests)
{
    PACACHE_ASSERT(!streams.empty(), "need at least one stream");
    PACACHE_ASSERT(duration > 0 || maxRequests > 0,
                   "unbounded generator: set a duration or a "
                   "request cap");
    reinit();
}

void
StreamingSyntheticSource::reinit()
{
    state.clear();
    state.reserve(streams.size());
    heap = {};
    emitted = 0;
    // Same per-stream seeding as generatePerDisk(): stream i draws
    // from seed * golden-ratio + i + 1.
    for (std::size_t i = 0; i < streams.size(); ++i) {
        state.emplace_back(seed * 0x9e3779b97f4a7c15ULL + i + 1,
                           streams[i]);
        schedule(i, streams[i].arrival.sample(state[i].rng));
    }
}

void
StreamingSyntheticSource::schedule(std::size_t i, Time t)
{
    state[i].next = t;
    // The finite check guards pathological arrival models (an
    // infinite mean yields an infinite gap): that stream simply
    // never fires, instead of wedging an unbounded run.
    if (std::isfinite(t) && (duration <= 0 || t <= duration))
        heap.emplace(t, i);
}

bool
StreamingSyntheticSource::next(TraceRecord &out)
{
    if (heap.empty() || (maxRequests > 0 && emitted >= maxRequests))
        return false;
    const auto [t, i] = heap.top();
    heap.pop();
    StreamState &st = state[i];

    out.time = t;
    out.disk = static_cast<DiskId>(i);
    out.block = st.gen.next(st.rng);
    out.numBlocks = 1;
    out.write = st.rng.chance(streams[i].writeRatio);
    ++emitted;

    schedule(i, t + streams[i].arrival.sample(st.rng));
    return true;
}

void
StreamingSyntheticSource::rewind()
{
    reinit();
}

std::vector<DiskStream>
scaledOltpStreams(uint32_t num_disks)
{
    PACACHE_ASSERT(num_disks > 0, "need at least one disk");
    // The paper's 6-of-21 busy minority, at any scale.
    const uint32_t busy = std::max<uint32_t>(
        1, static_cast<uint32_t>(
               (static_cast<uint64_t>(num_disks) * 6) / 21));
    std::vector<DiskStream> streams(num_disks);
    for (uint32_t d = 0; d < num_disks; ++d) {
        DiskStream &s = streams[d];
        s.writeRatio = 0.22;
        if (d < busy) {
            s.arrival = ArrivalModel::pareto(800, 1.5);
            s.address.footprintBlocks = 400000;
            s.address.reuseProb = 0.15;
            s.address.seqProb = 0.05;
            s.address.localProb = 0.15;
            s.address.zipfTheta = 0.6;
        } else {
            s.arrival = ArrivalModel::pareto(3000, 1.5);
            s.address.footprintBlocks = 500;
            s.address.reuseProb = 0.995;
            s.address.seqProb = 0.01;
            s.address.localProb = 0.02;
            s.address.zipfTheta = 1.1;
            s.address.stackSize = 1u << 11;
        }
    }
    return streams;
}

std::vector<DiskStream>
scaledCelloStreams(uint32_t num_disks)
{
    PACACHE_ASSERT(num_disks > 0, "need at least one disk");
    std::vector<DiskStream> streams(num_disks);
    double interarrival_ms = 15;
    for (uint32_t d = 0; d < num_disks; ++d) {
        DiskStream &s = streams[d];
        s.arrival = ArrivalModel::pareto(interarrival_ms, 1.3);
        s.writeRatio = 0.38;
        s.address.footprintBlocks = 2000000;
        s.address.reuseProb = 0.45;
        s.address.seqProb = 0.15;
        s.address.localProb = 0.15;
        s.address.zipfTheta = 0.8;
        s.address.stackSize = 1u << 12;
        interarrival_ms = std::min(interarrival_ms * 1.42, 60000.0);
    }
    return streams;
}

} // namespace pacache
