/**
 * @file
 * Ready-made workload synthesizers standing in for the paper's two
 * real traces (see DESIGN.md §3 for the substitution rationale):
 *
 *  - OLTP: TPC-C against a Microsoft SQL Server through a VI-attached
 *    storage system; 21 disks, 22% writes, ~99 ms mean inter-arrival,
 *    2 hours. Key properties for power-aware caching: a minority of
 *    "busy" disks with large footprints and high cold-miss ratios
 *    flood the cache, while most disks have small, heavily re-used
 *    working sets whose re-references a cache can absorb.
 *
 *  - Cello96: HP's Cello file server; 19 disks, 38% writes, ~5.6 ms
 *    mean inter-arrival, ~64% cold misses. Key properties: cold-miss
 *    dominated (scans over a huge footprint), tiny gaps — little any
 *    replacement policy can do, which is the paper's negative result.
 */

#ifndef PACACHE_TRACE_WORKLOADS_HH
#define PACACHE_TRACE_WORKLOADS_HH

#include "trace/synthetic.hh"
#include "trace/trace.hh"

namespace pacache
{

/** Knobs for the OLTP-like synthesizer. */
struct OltpParams
{
    uint32_t numDisks = 21;
    uint32_t busyDisks = 6;       //!< cache-hostile disks
    Time duration = 7200;         //!< seconds (paper: 2 hours)
    double busyInterarrivalMs = 800;   //!< per busy disk
    double quietInterarrivalMs = 3000; //!< per quiet disk
    uint64_t busyFootprint = 400000;   //!< blocks; >> cache
    uint64_t quietFootprint = 500;     //!< blocks; cacheable
    double busyReuseProb = 0.15;
    double quietReuseProb = 0.995;     //!< near-zero cold-miss rate
    double writeRatio = 0.22;
    uint64_t seed = 7;
};

/**
 * Knobs for the Cello96-like synthesizer. File-server load is
 * heavily skewed across spindles (news/swap disks hammer, archive
 * disks idle), so per-disk inter-arrival times grow geometrically
 * from @c busiestInterarrivalMs: disk d gets
 * busiestInterarrivalMs * skewGrowth^d. The defaults put the overall
 * mean inter-arrival at ~5.5 ms (paper: 5.61 ms).
 */
struct CelloParams
{
    uint32_t numDisks = 19;
    Time duration = 900;          //!< seconds
    double busiestInterarrivalMs = 15; //!< disk 0
    double skewGrowth = 1.42;     //!< per-disk rate falloff
    uint64_t footprint = 2000000; //!< blocks; scans dominate
    double reuseProb = 0.45;      //!< ~64% of accesses end up cold
    double writeRatio = 0.38;
    uint64_t seed = 11;
};

/** Synthesize the OLTP-like trace. */
Trace makeOltpTrace(const OltpParams &params = OltpParams{});

/** Synthesize the Cello96-like trace. */
Trace makeCelloTrace(const CelloParams &params = CelloParams{});

/**
 * Knobs for the OPG showcase workload: a deterministic two-disk
 * pattern on which Belady's MIN is maximally energy-blind.
 *
 * Disk 0 ("busy") cycles through a working set far larger than the
 * cache, so it misses constantly and stays awake no matter what the
 * replacement policy does. Disk 1 ("sleepy") cycles slowly through a
 * small set the cache COULD hold — but its re-use distance (cycle
 * length) is longer than the busy disk's, so Belady's forward-
 * distance rule always evicts the sleepy blocks, scattering misses
 * over the one disk that could have slept. OPG's energy penalties
 * are near zero for busy-disk blocks (their misses land between
 * closely spaced deterministic misses) and large for sleepy-disk
 * blocks, so it pins the sleepy working set: more misses, much less
 * energy — the generalization of the paper's Figure 3.
 */
struct OpgShowcaseParams
{
    Time duration = 3600;
    uint64_t busyBlocks = 1000; //!< working set >> cache
    Time busyGap = 0.5;    //!< busy disk inter-access time (s)
    uint64_t sleepyBlocks = 50;
    Time sleepyGap = 30.0; //!< sleepy disk inter-access time (s)
    /** Suggested cache size for the effect (blocks). */
    std::size_t suggestedCacheBlocks() const { return 110; }
};

/** Synthesize the OPG showcase trace (all accesses are reads). */
Trace makeOpgShowcaseTrace(
    const OpgShowcaseParams &params = OpgShowcaseParams{});

} // namespace pacache

#endif // PACACHE_TRACE_WORKLOADS_HH
