#include "trace/trace.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pacache
{

Trace::Trace(std::vector<TraceRecord> recs) : records(std::move(recs))
{
    PACACHE_ASSERT(std::is_sorted(records.begin(), records.end(),
                                  [](const auto &a, const auto &b) {
                                      return a.time < b.time;
                                  }),
                   "trace records must be time-ordered");
    for (const auto &r : records) {
        nDisks = std::max<std::size_t>(nDisks, r.disk + 1);
        nBlockAccesses += r.numBlocks;
    }
}

void
Trace::append(TraceRecord rec)
{
    PACACHE_ASSERT(records.empty() || rec.time >= records.back().time,
                   "trace records must be appended in time order");
    nDisks = std::max<std::size_t>(nDisks, rec.disk + 1);
    nBlockAccesses += rec.numBlocks;
    records.push_back(rec);
}

} // namespace pacache
