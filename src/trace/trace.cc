#include "trace/trace.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pacache
{

Trace::Trace(std::vector<TraceRecord> recs) : records(std::move(recs))
{
    PACACHE_ASSERT(std::is_sorted(records.begin(), records.end(),
                                  [](const auto &a, const auto &b) {
                                      return a.time < b.time;
                                  }),
                   "trace records must be time-ordered");
}

void
Trace::append(TraceRecord rec)
{
    PACACHE_ASSERT(records.empty() || rec.time >= records.back().time,
                   "trace records must be appended in time order");
    records.push_back(rec);
}

std::size_t
Trace::numDisks() const
{
    std::size_t n = 0;
    for (const auto &r : records)
        n = std::max<std::size_t>(n, r.disk + 1);
    return n;
}

} // namespace pacache
