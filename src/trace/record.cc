#include "trace/record.hh"

#include <cinttypes>
#include <cstdio>

#include "tracefmt/text_source.hh"

namespace pacache
{

std::string
toString(const TraceRecord &rec)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%.9f %u %" PRIu64 " %u %c",
                  rec.time, rec.disk, rec.block, rec.numBlocks,
                  rec.write ? 'W' : 'R');
    return buf;
}

TraceRecord
parseRecord(const std::string &line)
{
    // Line 0 marks the input as not line-addressable; errors read
    // "trace record: <problem> near '<token>'".
    return tracefmt::parseTextRecord(line,
                                     tracefmt::ParseCursor{
                                         "trace record", 0});
}

} // namespace pacache
