#include "trace/record.hh"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace pacache
{

std::string
toString(const TraceRecord &rec)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%.9f %u %" PRIu64 " %u %c",
                  rec.time, rec.disk, rec.block, rec.numBlocks,
                  rec.write ? 'W' : 'R');
    return buf;
}

TraceRecord
parseRecord(const std::string &line)
{
    std::istringstream is(line);
    TraceRecord rec;
    char rw = 0;
    if (!(is >> rec.time >> rec.disk >> rec.block >> rec.numBlocks >> rw))
        PACACHE_FATAL("malformed trace record: '", line, "'");
    if (rw != 'R' && rw != 'W' && rw != 'r' && rw != 'w')
        PACACHE_FATAL("bad R/W flag in trace record: '", line, "'");
    rec.write = (rw == 'W' || rw == 'w');
    return rec;
}

} // namespace pacache
