#include "trace/stats.hh"

#include <unordered_set>

namespace pacache
{

TraceStats
characterize(const Trace &trace)
{
    TraceStats s;
    s.requests = trace.size();
    s.disks = static_cast<uint32_t>(trace.numDisks());
    if (trace.empty())
        return s;

    s.perDiskRequests.assign(s.disks, 0);
    s.perDiskInterArrival.assign(s.disks, 0.0);
    s.perDiskUnique.assign(s.disks, 0);

    std::vector<Time> first(s.disks, -1.0), last(s.disks, 0.0);
    std::vector<std::unordered_set<BlockNum>> seen(s.disks);
    uint64_t writes = 0;

    for (const auto &rec : trace) {
        if (rec.write)
            ++writes;
        s.perDiskRequests[rec.disk]++;
        if (first[rec.disk] < 0)
            first[rec.disk] = rec.time;
        last[rec.disk] = rec.time;
        for (uint32_t b = 0; b < rec.numBlocks; ++b)
            seen[rec.disk].insert(rec.block + b);
    }

    for (uint32_t d = 0; d < s.disks; ++d) {
        if (s.perDiskRequests[d] > 1) {
            s.perDiskInterArrival[d] =
                (last[d] - first[d]) /
                static_cast<double>(s.perDiskRequests[d] - 1);
        }
        s.perDiskUnique[d] = seen[d].size();
        s.uniqueBlocks += seen[d].size();
    }

    s.writeRatio = static_cast<double>(writes) /
                   static_cast<double>(s.requests);
    s.duration = trace.endTime();
    if (s.requests > 1) {
        s.meanInterArrival = (trace[trace.size() - 1].time -
                              trace[0].time) /
                             static_cast<double>(s.requests - 1);
    }
    return s;
}

} // namespace pacache
