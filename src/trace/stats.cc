#include "trace/stats.hh"

#include <algorithm>
#include <unordered_set>

#include "tracefmt/trace_source.hh"

namespace pacache
{

TraceStats
characterize(const Trace &trace)
{
    TraceStats s;
    s.requests = trace.size();
    s.disks = static_cast<uint32_t>(trace.numDisks());
    if (trace.empty())
        return s;

    s.perDiskRequests.assign(s.disks, 0);
    s.perDiskInterArrival.assign(s.disks, 0.0);
    s.perDiskUnique.assign(s.disks, 0);

    std::vector<Time> first(s.disks, -1.0), last(s.disks, 0.0);
    std::vector<std::unordered_set<BlockNum>> seen(s.disks);
    uint64_t writes = 0;

    for (const auto &rec : trace) {
        if (rec.write)
            ++writes;
        s.perDiskRequests[rec.disk]++;
        if (first[rec.disk] < 0)
            first[rec.disk] = rec.time;
        last[rec.disk] = rec.time;
        for (uint32_t b = 0; b < rec.numBlocks; ++b)
            seen[rec.disk].insert(rec.block + b);
    }

    for (uint32_t d = 0; d < s.disks; ++d) {
        if (s.perDiskRequests[d] > 1) {
            s.perDiskInterArrival[d] =
                (last[d] - first[d]) /
                static_cast<double>(s.perDiskRequests[d] - 1);
        }
        s.perDiskUnique[d] = seen[d].size();
        s.uniqueBlocks += seen[d].size();
    }

    s.writeRatio = static_cast<double>(writes) /
                   static_cast<double>(s.requests);
    s.duration = trace.endTime();
    if (s.requests > 1) {
        s.meanInterArrival = (trace[trace.size() - 1].time -
                              trace[0].time) /
                             static_cast<double>(s.requests - 1);
    }
    return s;
}

TraceStats
characterize(tracefmt::TraceSource &src)
{
    TraceStats s;
    std::vector<Time> first, last;
    std::vector<std::unordered_set<BlockNum>> seen;
    uint64_t writes = 0;
    Time first_time = 0;
    TraceRecord rec;

    while (src.next(rec)) {
        if (s.requests == 0)
            first_time = rec.time;
        ++s.requests;
        if (rec.write)
            ++writes;
        if (rec.disk >= s.disks) {
            s.disks = rec.disk + 1;
            s.perDiskRequests.resize(s.disks, 0);
            first.resize(s.disks, -1.0);
            last.resize(s.disks, 0.0);
            seen.resize(s.disks);
        }
        s.perDiskRequests[rec.disk]++;
        if (first[rec.disk] < 0)
            first[rec.disk] = rec.time;
        last[rec.disk] = rec.time;
        for (uint32_t b = 0; b < rec.numBlocks; ++b)
            seen[rec.disk].insert(rec.block + b);
        s.duration = rec.time;
    }
    if (s.requests == 0)
        return s;

    s.perDiskInterArrival.assign(s.disks, 0.0);
    s.perDiskUnique.assign(s.disks, 0);
    for (uint32_t d = 0; d < s.disks; ++d) {
        if (s.perDiskRequests[d] > 1) {
            s.perDiskInterArrival[d] =
                (last[d] - first[d]) /
                static_cast<double>(s.perDiskRequests[d] - 1);
        }
        s.perDiskUnique[d] = seen[d].size();
        s.uniqueBlocks += seen[d].size();
    }
    s.writeRatio = static_cast<double>(writes) /
                   static_cast<double>(s.requests);
    if (s.requests > 1) {
        s.meanInterArrival = (s.duration - first_time) /
                             static_cast<double>(s.requests - 1);
    }
    return s;
}

} // namespace pacache
