/**
 * @file
 * Synthetic trace generation (paper Section 6, Table 3).
 *
 * Spatial locality is controlled by the probabilities of sequential,
 * local, and random accesses; temporal locality by a Zipf
 * distribution over stack distances (a random access re-references
 * the d-th most recently used block with Zipf-distributed d).
 * Arrivals follow either an Exponential distribution (Poisson, no
 * burstiness) or a Pareto distribution with finite mean and infinite
 * variance (bursty), as in the paper.
 */

#ifndef PACACHE_TRACE_SYNTHETIC_HH
#define PACACHE_TRACE_SYNTHETIC_HH

#include <cstdint>
#include <vector>

#include "trace/trace.hh"
#include "util/random.hh"

namespace pacache
{

/** Inter-arrival time model. */
struct ArrivalModel
{
    enum class Kind { Exponential, Pareto };

    Kind kind = Kind::Exponential;
    double meanMs = 250.0;     //!< mean inter-arrival time
    double paretoShape = 1.5;  //!< 1 < shape < 2: finite mean,
                               //!< infinite variance

    /** Draw one inter-arrival time in seconds. */
    Time sample(Rng &rng) const;

    static ArrivalModel
    exponential(double mean_ms)
    {
        return ArrivalModel{Kind::Exponential, mean_ms, 1.5};
    }

    static ArrivalModel
    pareto(double mean_ms, double shape = 1.5)
    {
        return ArrivalModel{Kind::Pareto, mean_ms, shape};
    }
};

/**
 * Per-stream address generator implementing the Table-3 spatial and
 * temporal locality model over a per-disk block footprint.
 */
class AddressGenerator
{
  public:
    struct Params
    {
        uint64_t footprintBlocks = 1u << 20; //!< addressable blocks
        double seqProb = 0.1;   //!< P(sequential access)
        double localProb = 0.2; //!< P(local access)
        uint32_t maxLocalDistance = 100; //!< blocks
        double reuseProb = 0.3; //!< P(random access re-references the
                                //!< stack) — temporal locality knob
        double zipfTheta = 0.9; //!< stack-distance skew
        std::size_t stackSize = 1u << 14; //!< reuse-stack depth
    };

    explicit AddressGenerator(const Params &params);

    /** Draw the next block address. */
    BlockNum next(Rng &rng);

    const Params &params() const { return p; }

  private:
    Params p;
    ZipfSampler zipf;
    std::vector<BlockNum> stack; //!< ring buffer of recent addresses
    std::size_t head = 0;        //!< next slot to overwrite
    std::size_t filled = 0;
    BlockNum last = 0;

    void push(BlockNum b);
};

/** Table-3 style single-stream workload parameters. */
struct SyntheticParams
{
    uint64_t numRequests = 100000;
    uint32_t numDisks = 20;
    ArrivalModel arrival = ArrivalModel::exponential(250.0);
    double writeRatio = 0.2;
    AddressGenerator::Params address; //!< per-disk address model
    uint64_t seed = 42;
    /**
     * Relative per-disk traffic weights (multi-disk skew). Empty:
     * disks are chosen uniformly — the historical behavior, with the
     * historical RNG consumption, so existing seeds replay unchanged.
     * Otherwise must have numDisks non-negative entries with a
     * positive sum; disk d receives a weights[d]-proportional share.
     */
    std::vector<double> diskWeights;
};

/**
 * Generate a synthetic trace: one global arrival process, target
 * disks chosen uniformly, per-disk address streams.
 */
Trace generateSynthetic(const SyntheticParams &params);

/** Per-disk stream description for composite workloads. */
struct DiskStream
{
    ArrivalModel arrival = ArrivalModel::exponential(1000.0);
    double writeRatio = 0.2;
    AddressGenerator::Params address;
};

/**
 * Generate a composite trace from independent per-disk streams,
 * merged in time order; stream i drives disk i for @p duration
 * seconds.
 */
Trace generatePerDisk(const std::vector<DiskStream> &streams,
                      Time duration, uint64_t seed = 42);

} // namespace pacache

#endif // PACACHE_TRACE_SYNTHETIC_HH
