/**
 * @file
 * Disk request service model: seek + rotational latency + transfer,
 * with the corresponding service energy (seek power during the seek,
 * active power during rotation and transfer).
 *
 * This replaces DiskSim's detailed mechanical model with a standard
 * three-component analytic model; the power-management experiments
 * only depend on service *durations* and *energies*, both of which
 * this model provides with data-sheet-derived constants.
 */

#ifndef PACACHE_DISK_SERVICE_MODEL_HH
#define PACACHE_DISK_SERVICE_MODEL_HH

#include <cstdint>

#include "disk/power_model.hh"
#include "sim/types.hh"

namespace pacache
{

/** Mechanical/service constants for a disk. */
struct ServiceParams
{
    Time trackToTrackSeek = 0.6e-3;   //!< s, minimum seek
    Time fullStrokeSeek = 7.0e-3;     //!< s, maximum seek
    double transferRateMBps = 55.0;   //!< sustained media rate
    uint64_t blockSize = kDefaultBlockSize; //!< bytes per block
    uint64_t capacityBlocks = 4500000;      //!< ~18.4 GB at 4 KiB
    Time controllerOverhead = 0.1e-3; //!< s per request
};

/** Computes service time and energy for disk requests. */
class ServiceModel
{
  public:
    ServiceModel(const DiskSpec &spec, const ServiceParams &params);
    explicit ServiceModel(const DiskSpec &spec)
        : ServiceModel(spec, ServiceParams{}) {}

    /**
     * Seek time between two block addresses: track-to-track plus a
     * square-root profile over the seek distance fraction (the usual
     * analytic seek curve).
     */
    Time seekTime(BlockNum from, BlockNum to) const;

    /** Average rotational latency: half a revolution at full speed. */
    Time rotationalLatency() const;

    /** Media transfer time for @p num_blocks blocks. */
    Time transferTime(uint32_t num_blocks) const;

    /** Total service time for a request (full rotational speed). */
    Time serviceTime(BlockNum from, BlockNum to, uint32_t num_blocks) const;

    /**
     * Service time at a reduced rotational speed (DRPM "serve at any
     * speed" option): rotational latency and media transfer scale
     * inversely with the speed fraction; seek and controller overhead
     * do not.
     *
     * @param speed_fraction rpm / max rpm, in (0, 1]
     */
    Time serviceTimeAtSpeed(BlockNum from, BlockNum to,
                            uint32_t num_blocks,
                            double speed_fraction) const;

    /**
     * Energy for a request with the given seek component: seek at
     * seekPower, the rest at activePower.
     */
    Energy serviceEnergy(Time seek_time, Time rest_time) const;

    /**
     * Service energy at reduced speed: the active power scales like
     * the idle power (quadratic in the speed fraction above the
     * standby floor), mirroring the multi-speed power model.
     */
    Energy serviceEnergyAtSpeed(Time seek_time, Time rest_time,
                                double speed_fraction) const;

    const ServiceParams &params() const { return serviceParams; }

  private:
    DiskSpec diskSpec;
    ServiceParams serviceParams;
};

} // namespace pacache

#endif // PACACHE_DISK_SERVICE_MODEL_HH
