#include "disk/oracle_dpm.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pacache
{

OracleResult
OracleAnalyzer::price(const std::vector<Time> &gaps,
                      const EnergyStats &service,
                      bool last_gap_open,
                      const std::vector<WakeCause> *gap_causes) const
{
    const PowerModel &pm = *powerModel;
    if (gap_causes) {
        const std::size_t closed =
            gaps.size() - (last_gap_open && !gaps.empty() ? 1 : 0);
        PACACHE_ASSERT(gap_causes->size() >= closed,
                       "fewer gap causes than closed gaps");
    }
    OracleResult result;
    result.stats = EnergyStats(pm.numModes());
    result.stats.serviceEnergy = service.serviceEnergy;
    result.stats.busyTime = service.busyTime;
    result.stats.requests = service.requests;

    for (std::size_t g = 0; g < gaps.size(); ++g) {
        const Time gap = gaps[g];
        const bool open = last_gap_open && g + 1 == gaps.size();

        if (!open) {
            // Closed gap: pay the full round trip of the best mode
            // (the paper's E_i(t) = P_i t + TE_i pricing).
            const std::size_t m = pm.bestMode(gap);
            const PowerMode &mode = pm.mode(m);
            result.stats.idleEnergyPerMode[m] += mode.idlePower * gap;
            result.stats.timePerMode[m] +=
                std::max<Time>(0.0, gap - mode.transitionTime());
            if (m != 0) {
                result.stats.spinDownEnergy += mode.spinDownEnergy;
                result.stats.spinDownTime +=
                    std::min(mode.spinDownTime, gap);
                result.stats.spinUpEnergy += mode.spinUpEnergy;
                result.stats.spinUpTime += std::min(mode.spinUpTime, gap);
                ++result.stats.spinDowns;
                ++result.stats.spinUps;
                result.stats.attributeSpinUp(
                    gap_causes && g < gap_causes->size()
                        ? (*gap_causes)[g]
                        : WakeCause::DemandColdMiss,
                    mode.spinUpEnergy);
            }
        } else {
            // Trailing gap: no further request, so no spin-up is ever
            // paid; pick the mode minimizing park + spin-down energy.
            std::size_t best = 0;
            Energy best_e = pm.mode(0).idlePower * gap;
            for (std::size_t i = 1; i < pm.numModes(); ++i) {
                const Energy e = pm.mode(i).idlePower * gap +
                                 pm.mode(i).spinDownEnergy;
                if (e < best_e) {
                    best_e = e;
                    best = i;
                }
            }
            const PowerMode &mode = pm.mode(best);
            result.stats.idleEnergyPerMode[best] += mode.idlePower * gap;
            result.stats.timePerMode[best] +=
                std::max<Time>(0.0, gap - mode.spinDownTime);
            if (best != 0) {
                result.stats.spinDownEnergy += mode.spinDownEnergy;
                result.stats.spinDownTime +=
                    std::min(mode.spinDownTime, gap);
                ++result.stats.spinDowns;
            }
        }
    }

    result.totalEnergy = result.stats.total();
    return result;
}

OracleResult
OracleAnalyzer::priceDisk(const Disk &disk) const
{
    return price(disk.idleGaps(), disk.energy(), true,
                 &disk.gapCloseCauses());
}

} // namespace pacache
