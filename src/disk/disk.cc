#include "disk/disk.hh"

#include <algorithm>

#include "obs/observer.hh"
#include "util/logging.hh"

namespace pacache
{

Disk::Disk(DiskId id, EventQueue &eq, const PowerModel &pm_,
           const ServiceModel &sm_, Dpm &dpm_, const DiskOptions &opts)
    : diskId(id), queue(eq), pm(&pm_), sm(&sm_), dpm(&dpm_),
      options(opts), stats(pm_.numModes()), obs(opts.observer)
{
    parkStart = eq.now();
    idleStart = eq.now();
    idleOpen = true;
    observeParked(eq.now());
    armDemotionTimer(eq.now());
}

void
Disk::observeState(const char *label, Time now)
{
    if (obs)
        obs->diskPowerState(diskId, label, now);
}

void
Disk::observeParked(Time now)
{
    if (obs)
        obs->diskPowerState(diskId, pm->mode(curMode).name, now);
}

void
Disk::accrueParked(Time now)
{
    if (curState != State::Parked)
        return;
    const Time dt = now - parkStart;
    PACACHE_ASSERT(dt >= -1e-12, "negative parked stretch");
    stats.timePerMode[curMode] += dt;
    stats.idleEnergyPerMode[curMode] += pm->mode(curMode).idlePower * dt;
    parkStart = now;
}

void
Disk::submit(DiskRequest req)
{
    PACACHE_ASSERT(!finalized, "submit after finalize");
    const Time now = queue.now();

    ++numArrivals;
    if (numArrivals == 1)
        firstArrival = now;
    lastArrival = now;

    if (idleOpen) {
        gaps.push_back(now - idleStart);
        gapCauses.push_back(req.cause);
        idleOpen = false;
        dpm->onIdleEnd(diskId, curMode, now - idleStart);
    }

    pending.push_back(std::move(req));

    switch (curState) {
      case State::Parked:
        if (canServiceInMode(curMode))
            startService(now);
        else
            beginSpinUp(now);
        break;
      case State::SpinningDown:
        wantSpinUp = true;
        break;
      case State::Busy:
      case State::SpinningUp:
        break; // the active chain will drain the queue
    }
}

bool
Disk::canServiceInMode(std::size_t mode) const
{
    if (mode == 0)
        return true;
    return options.serveAtLowSpeed && pm->mode(mode).rpm > 0;
}

void
Disk::startService(Time now)
{
    PACACHE_ASSERT(!pending.empty(), "startService with empty queue");
    PACACHE_ASSERT(canServiceInMode(curMode),
                   "service requires a spinning mode");

    queue.cancel(demotionTimer);
    accrueParked(now);
    curState = State::Busy;
    observeState("busy", now);

    const DiskRequest &req = pending.front();
    const double speed = pm->mode(curMode).rpm / pm->spec().maxRpm;
    const Time seek = sm->seekTime(headPosition, req.block);
    const Time total = sm->serviceTimeAtSpeed(headPosition, req.block,
                                              req.numBlocks, speed);
    const Energy energy =
        sm->serviceEnergyAtSpeed(seek, total - seek, speed);
    headPosition = req.block + req.numBlocks - 1;

    queue.schedule(now + total, [this, total, energy](Time t) {
        stats.busyTime += total;
        stats.serviceEnergy += energy;
        onServiceDone(t);
    });
}

void
Disk::onServiceDone(Time now)
{
    ++stats.requests;
    DiskRequest done = std::move(pending.front());
    pending.pop_front();
    respStats.record(now - done.arrival);
    if (done.onComplete)
        done.onComplete(now, done);

    // The completion callback may have submitted more work; the queue
    // state decides what happens next.
    if (curState != State::Busy)
        return;
    if (!pending.empty()) {
        curState = State::Parked;
        parkStart = now;
        startService(now);
    } else {
        enterIdle(now);
    }
}

void
Disk::enterIdle(Time now)
{
    // The disk parks in whatever mode it serviced at (mode 0 unless
    // serve-at-low-speed is enabled).
    curState = State::Parked;
    parkStart = now;
    idleStart = now;
    idleOpen = true;
    observeParked(now);
    armDemotionTimer(now);
}

void
Disk::armDemotionTimer(Time now)
{
    const auto d = dpm->nextDemotion(diskId, curMode, now - idleStart);
    if (!d)
        return;
    PACACHE_ASSERT(d->targetMode > curMode && d->targetMode < pm->numModes(),
                   "DPM requested a non-deeper mode");
    const Time when = std::max(now, idleStart + d->atIdleAge);
    const std::size_t target = d->targetMode;
    demotionTimer = queue.schedule(when, [this, target](Time t) {
        onDemotionTimer(t, target);
    });
}

void
Disk::onDemotionTimer(Time now, std::size_t target_mode)
{
    if (curState != State::Parked)
        return; // stale timer (should have been cancelled)

    accrueParked(now);
    curState = State::SpinningDown;
    if (obs) {
        obs->diskSpinDownStart(diskId, pm->mode(target_mode).name, now);
        obs->diskPowerState(diskId, "spin-down", now);
    }

    const Time dt = pm->mode(target_mode).spinDownTime -
                    pm->mode(curMode).spinDownTime;
    const Energy de = pm->mode(target_mode).spinDownEnergy -
                      pm->mode(curMode).spinDownEnergy;
    PACACHE_ASSERT(dt >= 0 && de >= 0, "demotion must deepen the mode");

    queue.schedule(now + dt, [this, target_mode, dt, de](Time t) {
        stats.spinDownTime += dt;
        stats.spinDownEnergy += de;
        ++stats.spinDowns;
        onSpinDownDone(t, target_mode);
    });
}

void
Disk::onSpinDownDone(Time now, std::size_t target_mode)
{
    curMode = target_mode;
    if (wantSpinUp || !pending.empty()) {
        curState = State::Parked; // instantaneously parked at target
        parkStart = now;
        wantSpinUp = false;
        if (canServiceInMode(curMode))
            startService(now);
        else
            beginSpinUp(now);
    } else {
        curState = State::Parked;
        parkStart = now;
        observeParked(now);
        armDemotionTimer(now);
    }
}

void
Disk::beginSpinUp(Time now)
{
    PACACHE_ASSERT(curState == State::Parked && curMode > 0,
                   "spin-up only from a low-power parked mode");
    queue.cancel(demotionTimer);
    accrueParked(now);
    curState = State::SpinningUp;
    wantSpinUp = false;
    if (obs) {
        obs->diskSpinUpStart(diskId, pm->mode(curMode).name, now);
        obs->diskPowerState(diskId, "spin-up", now);
    }

    // The request at the head of the queue is what forced this
    // transition; its cause owns the spin-up in the ledger.
    PACACHE_ASSERT(!pending.empty(), "spin-up with no pending cause");
    const WakeCause cause = pending.front().cause;

    const Time dt = pm->mode(curMode).spinUpTime;
    const Energy de = pm->mode(curMode).spinUpEnergy;
    queue.schedule(now + dt, [this, dt, de, cause](Time t) {
        stats.spinUpTime += dt;
        stats.spinUpEnergy += de;
        ++stats.spinUps;
        stats.attributeSpinUp(cause, de);
        onSpinUpDone(t);
    });
}

void
Disk::onSpinUpDone(Time now)
{
    curMode = 0;
    curState = State::Parked;
    parkStart = now;
    observeParked(now);

    if (onActivated)
        onActivated(now); // may submit flush writes re-entrantly

    if (curState == State::Parked && !pending.empty())
        startService(now);
    else if (curState == State::Parked)
        enterIdle(now);
}

void
Disk::finalize(Time end)
{
    PACACHE_ASSERT(!finalized, "finalize called twice");
    PACACHE_ASSERT(curState == State::Parked,
                   "finalize with disk ", diskId, " still active; drain the "
                   "event queue first");
    PACACHE_ASSERT(end >= queue.now() - 1e-12, "finalize into the past");
    accrueParked(end);
    queue.cancel(demotionTimer);
    if (idleOpen) {
        gaps.push_back(end - idleStart);
        idleOpen = false;
    }
    finalized = true;
}

double
Disk::meanInterArrival() const
{
    if (numArrivals < 2)
        return 0.0;
    return (lastArrival - firstArrival) /
           static_cast<double>(numArrivals - 1);
}

} // namespace pacache
