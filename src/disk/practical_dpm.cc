#include "disk/dpm.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pacache
{

std::optional<Demotion>
PracticalDpm::nextDemotion(DiskId, std::size_t current_mode, Time) const
{
    const auto &env = powerModel->envelopeModes();
    const auto &thr = powerModel->thresholds();

    // Locate the current mode's envelope step. A mode that is not on
    // the envelope can only be reached by some other policy; treat it
    // as the deepest envelope step that is not below it.
    auto it = std::find(env.begin(), env.end(), current_mode);
    std::size_t step;
    if (it != env.end()) {
        step = static_cast<std::size_t>(it - env.begin());
    } else {
        step = 0;
        while (step + 1 < env.size() && env[step + 1] <= current_mode)
            ++step;
    }

    if (step + 1 >= env.size())
        return std::nullopt; // already at the deepest beneficial mode
    return Demotion{env[step + 1], thr[step]};
}

} // namespace pacache
