/**
 * @file
 * A homogeneous array of simulated disks sharing one event queue,
 * power model, service model, and DPM policy — the storage back-end
 * behind the cache.
 */

#ifndef PACACHE_DISK_DISK_ARRAY_HH
#define PACACHE_DISK_DISK_ARRAY_HH

#include <memory>
#include <vector>

#include "disk/disk.hh"

namespace pacache
{

/** Array of identical disks behind the storage cache. */
class DiskArray
{
  public:
    /**
     * @param num_disks  number of disks
     * @param eq         shared event queue
     * @param pm         power model (not owned)
     * @param sm         service model (not owned)
     * @param dpm        DPM policy (not owned)
     */
    DiskArray(std::size_t num_disks, EventQueue &eq, const PowerModel &pm,
              const ServiceModel &sm, Dpm &dpm,
              const DiskOptions &opts);

    DiskArray(std::size_t num_disks, EventQueue &eq, const PowerModel &pm,
              const ServiceModel &sm, Dpm &dpm)
        : DiskArray(num_disks, eq, pm, sm, dpm, DiskOptions{}) {}

    std::size_t numDisks() const { return disks.size(); }

    Disk &disk(DiskId id);
    const Disk &disk(DiskId id) const;

    /** Submit a request to its disk at the current simulated time. */
    void submit(DiskId id, DiskRequest req);

    /** Finalize every disk's accounting at @p end. */
    void finalize(Time end);

    /** Sum of all per-disk energy breakdowns. */
    EnergyStats totalEnergy() const;

    /** Merged response-time statistics across disks. */
    ResponseStats totalResponses() const;

    const PowerModel &powerModel() const { return *pm; }
    const ServiceModel &serviceModel() const { return *sm; }

  private:
    EventQueue &queue;
    const PowerModel *pm;
    const ServiceModel *sm;
    std::vector<std::unique_ptr<Disk>> disks;
};

} // namespace pacache

#endif // PACACHE_DISK_DISK_ARRAY_HH
