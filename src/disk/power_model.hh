/**
 * @file
 * Multi-speed disk power model (paper Section 2, Figures 2 and 4).
 *
 * The model follows the IBM Ultrastar 36Z15 data-sheet constants
 * (paper Table 1) extended with four intermediate rotational speeds
 * (NAP1..NAP4 at 12k/9k/6k/3k RPM) per Gurumurthi et al.'s DRPM
 * proposal. Requests are serviced only at full speed (the paper's
 * "second option"): a disk in any lower mode must spin up to full
 * speed before servicing.
 *
 * Derived-mode scaling. The paper cites DRPM's "linear power and time
 * models". A literally linear power-in-RPM model makes every energy
 * line E_i(t) pass through a single common point, collapsing the
 * Figure-2 lower envelope to just {full-speed idle, standby} and
 * erasing the NAP modes from both Oracle and Practical DPM. We
 * therefore scale transition time/energy linearly in delta-RPM but
 * idle power quadratically in RPM (physically: windage loss grows
 * ~RPM^2..3). This restores the paper's geometry — strictly
 * increasing thresholds t1 < t2 < t3 < t4 with every mode on the
 * envelope — and preserves all qualitative results. See DESIGN.md §3.
 *
 * Definitions used throughout (paper Section 2.2):
 *  - E_i(t) = P_i * t + TE_i : energy if an idle interval of length t
 *    is spent in mode i, where TE_i is the round-trip (spin-down +
 *    spin-up) transition energy for mode i (TE_0 = 0).
 *  - Lower envelope  E*(t) = min_i E_i(t): minimum achievable energy
 *    for an interval of length t (Oracle DPM).
 *  - Savings S_i(t) = E_0(t) - E_i(t); upper envelope S*(t)
 *    (Figure 4).
 *  - Break-even time of mode i: the t with E_0(t) = E_i(t).
 *  - 2-competitive thresholds: the intersection abscissae of
 *    consecutive envelope lines (Irani et al.); Practical DPM demotes
 *    the disk from mode i to i+1 once total idle time reaches the
 *    i/i+1 intersection.
 */

#ifndef PACACHE_DISK_POWER_MODEL_HH
#define PACACHE_DISK_POWER_MODEL_HH

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace pacache
{

/**
 * One linear segment of a piecewise idle-energy curve. The segment is
 * active while t < bound (the last segment's bound is +infinity) and
 * evaluates to (base + slope * (t - start)) + tail — an expression
 * shape shared by the envelope lines (base = start = 0, tail = TE_i)
 * and the Practical-DPM walk (base = energy accumulated before the
 * segment, tail = final spin-down + spin-up), so one evaluator prices
 * both and reproduces the legacy per-call walks bit for bit.
 */
struct EnergySegment
{
    Time bound = 0;   //!< active while t < bound
    Time start = 0;   //!< abscissa where this segment begins
    Energy base = 0;  //!< energy accumulated before start
    Power slope = 0;  //!< idle power of the segment's mode
    Energy tail = 0;  //!< transition energy added on top
};

/**
 * One precomputed energy line E_i(t) = slope * t + intercept. The
 * envelope fast path min-scans a flat array of these instead of
 * striding over the string-bearing PowerMode structs and re-adding
 * the transition energy per call. A segment lookup cannot stand in
 * here: within ulps of a line crossing, the floating-point min can
 * pick either line, so bit-identity with the legacy scan requires
 * performing the same min — just over cheaper operands.
 */
struct EnergyLine
{
    Power slope = 0;      //!< mode idle power P_i
    Energy intercept = 0; //!< round-trip transition energy TE_i
};

/**
 * A piecewise-linear idle-energy curve precomputed at PowerModel
 * construction. eval() replaces the per-call mode scans
 * (envelope) and threshold walks (practicalEnergy) on the oracle hot
 * path with a branch-light scan over at most numModes segments plus
 * one fused multiply-add — the closed-form fast path OPG's penalty
 * pricing calls three times per repriced block.
 */
class PiecewiseEnergy
{
  public:
    Energy
    eval(Time t) const
    {
        // Short idle gaps dominate replay pricing, so segment 0 gets
        // a predictable early-out. Deeper gaps resolve branch-free:
        // bounds ascend (last is +inf), so the segment index is the
        // number of bounds <= t, and summing the comparisons avoids a
        // data-dependent mispredict per segment on random gaps.
        const EnergySegment *s = segs.data();
        if (t < s->bound)
            return (s->base + s->slope * (t - s->start)) + s->tail;
        std::size_t idx = 1;
        for (std::size_t i = 1; i < segs.size(); ++i)
            idx += t >= s[i].bound ? 1 : 0;
        // t = +inf counts the last segment's +inf sentinel bound too;
        // clamp onto the last segment — which then prices the gap to
        // +inf — instead of indexing out of bounds.
        if (idx >= segs.size())
            idx = segs.size() - 1;
        s += idx;
        return (s->base + s->slope * (t - s->start)) + s->tail;
    }

    /** Envelope-step index whose segment covers @p t. */
    std::size_t
    segment(Time t) const
    {
        // k + 1 bound: t = +inf matches the last +inf sentinel bound
        // and must still land on the last segment, not run past it.
        std::size_t k = 0;
        while (k + 1 < segs.size() && t >= segs[k].bound)
            ++k;
        return k;
    }

    std::size_t numSegments() const { return segs.size(); }
    const EnergySegment &operator[](std::size_t k) const
    {
        return segs[k];
    }

    void clear() { segs.clear(); }
    void push(const EnergySegment &s) { segs.push_back(s); }

  private:
    std::vector<EnergySegment> segs;
};

/** One idle power mode of a multi-speed disk. */
struct PowerMode
{
    std::string name;       //!< e.g. "idle", "NAP1", "standby"
    double rpm = 0;         //!< rotational speed in this mode
    Power idlePower = 0;    //!< W consumed while parked in this mode
    Time spinUpTime = 0;    //!< s to return to full speed
    Energy spinUpEnergy = 0;    //!< J to return to full speed
    Time spinDownTime = 0;  //!< s to enter this mode from full speed
    Energy spinDownEnergy = 0;  //!< J to enter this mode from full speed

    /** Round-trip (down + up) transition energy TE_i. */
    Energy transitionEnergy() const { return spinDownEnergy + spinUpEnergy; }

    /** Round-trip (down + up) transition time. */
    Time transitionTime() const { return spinDownTime + spinUpTime; }
};

/** Data-sheet constants for a disk (paper Table 1 layout). */
struct DiskSpec
{
    std::string model = "IBM Ultrastar 36Z15";
    double capacityGB = 18.4;
    double maxRpm = 15000;
    double minRpm = 3000;
    double rpmStep = 3000;
    Power activePower = 13.5;   //!< read/write power (W)
    Power seekPower = 13.5;     //!< seek power (W)
    Power idlePower = 10.2;     //!< idle @ max RPM (W)
    Power standbyPower = 2.5;   //!< standby (W)
    Time spinUpTime = 10.9;     //!< standby -> active (s)
    Energy spinUpEnergy = 135;  //!< standby -> active (J)
    Time spinDownTime = 1.5;    //!< active -> standby (s)
    Energy spinDownEnergy = 13; //!< active -> standby (J)

    /** The data-sheet values for the IBM Ultrastar 36Z15. */
    static DiskSpec ultrastar36z15();
};

/**
 * The full multi-speed power model: an ordered set of idle modes
 * (mode 0 = full-speed idle .. last mode = standby) plus the
 * energy-line machinery described in the file comment.
 */
class PowerModel
{
  public:
    /**
     * Build the model from a disk spec by deriving one mode per RPM
     * step between maxRpm and minRpm, plus standby.
     */
    explicit PowerModel(const DiskSpec &spec = DiskSpec::ultrastar36z15());

    /** Build directly from an explicit mode list (mode 0 first). */
    PowerModel(const DiskSpec &spec, std::vector<PowerMode> modes);

    /** Number of idle modes (including mode 0 and standby). */
    std::size_t numModes() const { return modeList.size(); }

    /** Access mode i (0 = full-speed idle). */
    const PowerMode &mode(std::size_t i) const;

    /** Index of the deepest (standby) mode. */
    std::size_t deepestMode() const { return modeList.size() - 1; }

    const DiskSpec &spec() const { return diskSpec; }

    /** E_i(t) = P_i * t + TE_i. */
    Energy energyLine(std::size_t mode_idx, Time t) const;

    /**
     * Lower envelope E*(t) = min_i E_i(t) (Oracle energy): a min-scan
     * over the flat precomputed line table, with the exact arithmetic
     * and comparison order of the legacy mode scan (bit-identical to
     * envelopeRef for every t, including within ulps of crossings).
     */
    Energy
    envelope(Time t) const
    {
        // Fixed-width min-tree over the padded line table: eight
        // independent evaluations and a three-deep min reduction
        // instead of a serial compare chain whose latency grows with
        // the mode count. Padding lines are {slope 1, DBL_MAX}: at
        // least DBL_MAX for any finite t (so they never win against a
        // real line) and +inf at t = +inf, where a zero-slope pad
        // would turn into 0 * inf = NaN and poison the selects. The
        // minimum of finite positive doubles does not depend on
        // reduction order (ties are the same bit pattern), so the
        // result is bit-identical to the sequential legacy scan.
        if (lineTable.size() <= kLinePad) [[likely]] {
            const EnergyLine *l = linePad.data();
            const Energy e0 = l[0].slope * t + l[0].intercept;
            const Energy e1 = l[1].slope * t + l[1].intercept;
            const Energy e2 = l[2].slope * t + l[2].intercept;
            const Energy e3 = l[3].slope * t + l[3].intercept;
            const Energy e4 = l[4].slope * t + l[4].intercept;
            const Energy e5 = l[5].slope * t + l[5].intercept;
            const Energy e6 = l[6].slope * t + l[6].intercept;
            const Energy e7 = l[7].slope * t + l[7].intercept;
            const Energy a = e0 < e1 ? e0 : e1;
            const Energy b = e2 < e3 ? e2 : e3;
            const Energy c = e4 < e5 ? e4 : e5;
            const Energy d = e6 < e7 ? e6 : e7;
            const Energy ab = a < b ? a : b;
            const Energy cd = c < d ? c : d;
            return ab < cd ? ab : cd;
        }
        const EnergyLine *l = lineTable.data();
        Energy best = l[0].slope * t + l[0].intercept;
        for (std::size_t i = 1; i < lineTable.size(); ++i) {
            const Energy e = l[i].slope * t + l[i].intercept;
            best = e < best ? e : best;
        }
        return best;
    }

    /** argmin_i E_i(t): the mode Oracle DPM picks for a gap of t. */
    std::size_t
    bestMode(Time t) const
    {
        const EnergyLine *l = lineTable.data();
        std::size_t best = 0;
        Energy best_e = l[0].slope * t + l[0].intercept;
        for (std::size_t i = 1; i < lineTable.size(); ++i) {
            const Energy e = l[i].slope * t + l[i].intercept;
            if (e < best_e) {
                best_e = e;
                best = i;
            }
        }
        return best;
    }

    /** Savings line S_i(t) = E_0(t) - E_i(t) (may be negative). */
    Energy savingsLine(std::size_t mode_idx, Time t) const;

    /** Upper savings envelope S*(t) = max_i S_i(t) (Figure 4). */
    Energy maxSavings(Time t) const;

    /**
     * Break-even time of mode i: smallest t with E_i(t) <= E_0(t)
     * (infinite if mode i never pays off).
     */
    Time breakEvenTime(std::size_t mode_idx) const;

    /**
     * Practical DPM demotion thresholds. thresholds()[i] is the total
     * idle time at which the disk moves from envelope step i to step
     * i+1; derived from intersection points of consecutive lines,
     * after pruning modes that never appear on the lower envelope.
     * envelopeModes()[i] names the mode of step i (always starts with
     * mode 0 and ends with the deepest beneficial mode).
     */
    const std::vector<Time> &thresholds() const { return thresholdTimes; }

    /** Modes that actually appear on the lower envelope, in order. */
    const std::vector<std::size_t> &envelopeModes() const
    {
        return envModes;
    }

    /**
     * Energy a threshold-based Practical DPM spends on an idle gap of
     * length t: the disk descends through the envelope modes at the
     * threshold times, then pays the spin-up from whatever mode it
     * reached (plus the step-down energies along the way). Evaluated
     * from the precomputed segment table; bit-identical to the legacy
     * threshold walk (practicalEnergyRef).
     */
    Energy practicalEnergy(Time t) const { return pracTable.eval(t); }

    /** Mode Practical DPM occupies after t seconds of idleness. */
    std::size_t
    practicalModeAt(Time t) const
    {
        return envModes[pracTable.segment(t)];
    }

    /** The precomputed envelope curve (segment boundaries). */
    const PiecewiseEnergy &envelopeTable() const { return envTable; }

    /** The precomputed Practical-DPM curve (pricing fast path). */
    const PiecewiseEnergy &practicalTable() const { return pracTable; }

    /** The flat E_i(t) lines (envelope pricing fast path). */
    const std::vector<EnergyLine> &energyLines() const
    {
        return lineTable;
    }

    /**
     * Reference implementations of the per-call scans the segment
     * tables replaced. Retained so differential tests (and the
     * micro_opg old-path benchmark) can verify and price against the
     * original code forever.
     */
    Energy envelopeRef(Time t) const;
    std::size_t bestModeRef(Time t) const;
    Energy practicalEnergyRef(Time t) const;

  private:
    void computeEnvelope();
    void buildEnergyTables();

    DiskSpec diskSpec;
    std::vector<PowerMode> modeList;
    std::vector<std::size_t> envModes;
    std::vector<Time> thresholdTimes;
    PiecewiseEnergy envTable;
    PiecewiseEnergy pracTable;
    std::vector<EnergyLine> lineTable;
    /**
     * lineTable padded to a fixed width with {1, DBL_MAX} lines
     * (positive slope and finite intercept, so no padding line can
     * ever evaluate to NaN — not even at t = +inf), so envelope() can
     * run a constant-shape min-tree. Models with more than kLinePad
     * modes fall back to the dynamic scan.
     */
    static constexpr std::size_t kLinePad = 8;
    std::array<EnergyLine, kLinePad> linePad{};
};

/**
 * A simple 2-mode (idle/standby) power model with configurable
 * transition costs; handy for unit tests and the paper's Figure-3
 * toy example (which assumes instantaneous transitions).
 */
PowerModel makeTwoModeModel(Power idle_power, Power standby_power,
                            Energy spin_up_energy, Time spin_up_time,
                            Energy spin_down_energy, Time spin_down_time);

} // namespace pacache

#endif // PACACHE_DISK_POWER_MODEL_HH
