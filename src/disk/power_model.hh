/**
 * @file
 * Multi-speed disk power model (paper Section 2, Figures 2 and 4).
 *
 * The model follows the IBM Ultrastar 36Z15 data-sheet constants
 * (paper Table 1) extended with four intermediate rotational speeds
 * (NAP1..NAP4 at 12k/9k/6k/3k RPM) per Gurumurthi et al.'s DRPM
 * proposal. Requests are serviced only at full speed (the paper's
 * "second option"): a disk in any lower mode must spin up to full
 * speed before servicing.
 *
 * Derived-mode scaling. The paper cites DRPM's "linear power and time
 * models". A literally linear power-in-RPM model makes every energy
 * line E_i(t) pass through a single common point, collapsing the
 * Figure-2 lower envelope to just {full-speed idle, standby} and
 * erasing the NAP modes from both Oracle and Practical DPM. We
 * therefore scale transition time/energy linearly in delta-RPM but
 * idle power quadratically in RPM (physically: windage loss grows
 * ~RPM^2..3). This restores the paper's geometry — strictly
 * increasing thresholds t1 < t2 < t3 < t4 with every mode on the
 * envelope — and preserves all qualitative results. See DESIGN.md §3.
 *
 * Definitions used throughout (paper Section 2.2):
 *  - E_i(t) = P_i * t + TE_i : energy if an idle interval of length t
 *    is spent in mode i, where TE_i is the round-trip (spin-down +
 *    spin-up) transition energy for mode i (TE_0 = 0).
 *  - Lower envelope  E*(t) = min_i E_i(t): minimum achievable energy
 *    for an interval of length t (Oracle DPM).
 *  - Savings S_i(t) = E_0(t) - E_i(t); upper envelope S*(t)
 *    (Figure 4).
 *  - Break-even time of mode i: the t with E_0(t) = E_i(t).
 *  - 2-competitive thresholds: the intersection abscissae of
 *    consecutive envelope lines (Irani et al.); Practical DPM demotes
 *    the disk from mode i to i+1 once total idle time reaches the
 *    i/i+1 intersection.
 */

#ifndef PACACHE_DISK_POWER_MODEL_HH
#define PACACHE_DISK_POWER_MODEL_HH

#include <cstddef>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace pacache
{

/** One idle power mode of a multi-speed disk. */
struct PowerMode
{
    std::string name;       //!< e.g. "idle", "NAP1", "standby"
    double rpm = 0;         //!< rotational speed in this mode
    Power idlePower = 0;    //!< W consumed while parked in this mode
    Time spinUpTime = 0;    //!< s to return to full speed
    Energy spinUpEnergy = 0;    //!< J to return to full speed
    Time spinDownTime = 0;  //!< s to enter this mode from full speed
    Energy spinDownEnergy = 0;  //!< J to enter this mode from full speed

    /** Round-trip (down + up) transition energy TE_i. */
    Energy transitionEnergy() const { return spinDownEnergy + spinUpEnergy; }

    /** Round-trip (down + up) transition time. */
    Time transitionTime() const { return spinDownTime + spinUpTime; }
};

/** Data-sheet constants for a disk (paper Table 1 layout). */
struct DiskSpec
{
    std::string model = "IBM Ultrastar 36Z15";
    double capacityGB = 18.4;
    double maxRpm = 15000;
    double minRpm = 3000;
    double rpmStep = 3000;
    Power activePower = 13.5;   //!< read/write power (W)
    Power seekPower = 13.5;     //!< seek power (W)
    Power idlePower = 10.2;     //!< idle @ max RPM (W)
    Power standbyPower = 2.5;   //!< standby (W)
    Time spinUpTime = 10.9;     //!< standby -> active (s)
    Energy spinUpEnergy = 135;  //!< standby -> active (J)
    Time spinDownTime = 1.5;    //!< active -> standby (s)
    Energy spinDownEnergy = 13; //!< active -> standby (J)

    /** The data-sheet values for the IBM Ultrastar 36Z15. */
    static DiskSpec ultrastar36z15();
};

/**
 * The full multi-speed power model: an ordered set of idle modes
 * (mode 0 = full-speed idle .. last mode = standby) plus the
 * energy-line machinery described in the file comment.
 */
class PowerModel
{
  public:
    /**
     * Build the model from a disk spec by deriving one mode per RPM
     * step between maxRpm and minRpm, plus standby.
     */
    explicit PowerModel(const DiskSpec &spec = DiskSpec::ultrastar36z15());

    /** Build directly from an explicit mode list (mode 0 first). */
    PowerModel(const DiskSpec &spec, std::vector<PowerMode> modes);

    /** Number of idle modes (including mode 0 and standby). */
    std::size_t numModes() const { return modeList.size(); }

    /** Access mode i (0 = full-speed idle). */
    const PowerMode &mode(std::size_t i) const;

    /** Index of the deepest (standby) mode. */
    std::size_t deepestMode() const { return modeList.size() - 1; }

    const DiskSpec &spec() const { return diskSpec; }

    /** E_i(t) = P_i * t + TE_i. */
    Energy energyLine(std::size_t mode_idx, Time t) const;

    /** Lower envelope E*(t) = min_i E_i(t) (Oracle energy). */
    Energy envelope(Time t) const;

    /** argmin_i E_i(t): the mode Oracle DPM picks for a gap of t. */
    std::size_t bestMode(Time t) const;

    /** Savings line S_i(t) = E_0(t) - E_i(t) (may be negative). */
    Energy savingsLine(std::size_t mode_idx, Time t) const;

    /** Upper savings envelope S*(t) = max_i S_i(t) (Figure 4). */
    Energy maxSavings(Time t) const;

    /**
     * Break-even time of mode i: smallest t with E_i(t) <= E_0(t)
     * (infinite if mode i never pays off).
     */
    Time breakEvenTime(std::size_t mode_idx) const;

    /**
     * Practical DPM demotion thresholds. thresholds()[i] is the total
     * idle time at which the disk moves from envelope step i to step
     * i+1; derived from intersection points of consecutive lines,
     * after pruning modes that never appear on the lower envelope.
     * envelopeModes()[i] names the mode of step i (always starts with
     * mode 0 and ends with the deepest beneficial mode).
     */
    const std::vector<Time> &thresholds() const { return thresholdTimes; }

    /** Modes that actually appear on the lower envelope, in order. */
    const std::vector<std::size_t> &envelopeModes() const
    {
        return envModes;
    }

    /**
     * Energy a threshold-based Practical DPM spends on an idle gap of
     * length t: the disk descends through the envelope modes at the
     * threshold times, then pays the spin-up from whatever mode it
     * reached (plus the step-down energies along the way).
     */
    Energy practicalEnergy(Time t) const;

    /** Mode Practical DPM occupies after t seconds of idleness. */
    std::size_t practicalModeAt(Time t) const;

  private:
    void computeEnvelope();

    DiskSpec diskSpec;
    std::vector<PowerMode> modeList;
    std::vector<std::size_t> envModes;
    std::vector<Time> thresholdTimes;
};

/**
 * A simple 2-mode (idle/standby) power model with configurable
 * transition costs; handy for unit tests and the paper's Figure-3
 * toy example (which assumes instantaneous transitions).
 */
PowerModel makeTwoModeModel(Power idle_power, Power standby_power,
                            Energy spin_up_energy, Time spin_up_time,
                            Energy spin_down_energy, Time spin_down_time);

} // namespace pacache

#endif // PACACHE_DISK_POWER_MODEL_HH
