/**
 * @file
 * Event-driven model of one multi-speed disk with an FCFS request
 * queue, a power state machine (parked-at-mode / busy / spinning
 * down / spinning up), per-mode energy accounting, and an attached
 * on-line DPM policy that schedules demotions while the disk idles.
 *
 * Behavioural rules (paper Section 2):
 *  - Requests are serviced only at full speed.
 *  - A request arriving while the disk is below full speed (or
 *    demoting) triggers a spin-up; demotions are not preemptible, so
 *    a request arriving mid-demotion waits for the demotion to finish
 *    before the spin-up starts.
 *  - While the queue is non-empty the disk stays at full speed; an
 *    idle period begins when the last service completes and ends when
 *    the next request arrives.
 */

#ifndef PACACHE_DISK_DISK_HH
#define PACACHE_DISK_DISK_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "disk/dpm.hh"
#include "disk/power_model.hh"
#include "disk/service_model.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"
#include "stats/energy_stats.hh"
#include "stats/response_stats.hh"

namespace pacache
{

namespace obs
{
class SimObserver;
}

/** One I/O request as seen by a disk. */
struct DiskRequest
{
    Time arrival = 0;       //!< absolute submission time
    BlockNum block = 0;     //!< starting logical block
    uint32_t numBlocks = 1; //!< request length in blocks
    bool write = false;
    /**
     * Why this request exists, for spin-up attribution: if the disk
     * must spin up to service it, the transition's energy is charged
     * to this cause in the energy-attribution ledger.
     */
    WakeCause cause = WakeCause::DemandColdMiss;
    /** Optional completion callback (completion time, request). */
    std::function<void(Time, const DiskRequest &)> onComplete;
};

/** Behavioural options for a disk. */
struct DiskOptions
{
    /**
     * DRPM's "serve at any rotational speed" option (the paper's
     * option 1, used by Carrera & Bianchini): requests arriving while
     * the disk is parked in a spinning NAP mode are serviced at that
     * speed — rotational latency and transfer stretch, active power
     * drops — instead of forcing a spin-up. Standby (0 RPM) still
     * requires a spin-up. Off by default (the paper's option 2).
     */
    bool serveAtLowSpeed = false;

    /**
     * Observability fan-out (metrics / trace events / timeline).
     * Null (the default) disables instrumentation entirely; when set,
     * it must outlive the disk and have been configured before the
     * disk is constructed (the constructor reports the initial
     * power state).
     */
    obs::SimObserver *observer = nullptr;
};

/** Event-driven single-disk simulator. */
class Disk
{
  public:
    /** Coarse power/activity state. */
    enum class State
    {
        Parked,       //!< idle at currentMode (possibly full speed)
        Busy,         //!< servicing a request at full speed
        SpinningDown, //!< demoting to a deeper mode
        SpinningUp,   //!< returning to full speed
    };

    /**
     * @param id     disk index (for stats/labels)
     * @param eq     shared event queue (owns simulated time)
     * @param pm     power model (shared, not owned)
     * @param sm     service model (shared, not owned)
     * @param dpm    demotion policy (shared, not owned)
     */
    Disk(DiskId id, EventQueue &eq, const PowerModel &pm,
         const ServiceModel &sm, Dpm &dpm, const DiskOptions &opts);

    Disk(DiskId id, EventQueue &eq, const PowerModel &pm,
         const ServiceModel &sm, Dpm &dpm)
        : Disk(id, eq, pm, sm, dpm, DiskOptions{}) {}

    Disk(const Disk &) = delete;
    Disk &operator=(const Disk &) = delete;

    /** Submit a request at the current simulated time. */
    void submit(DiskRequest req);

    /**
     * Close accounting at the end of the simulation: accrue parked
     * energy up to @p end and record the trailing idle gap. The
     * trailing gap is *not* charged a spin-up (no further request
     * arrives).
     */
    void finalize(Time end);

    DiskId id() const { return diskId; }
    State state() const { return curState; }

    /** Index of the power mode the disk is parked in (valid when
     *  Parked). */
    std::size_t currentMode() const { return curMode; }

    /** True when the disk is at full speed and able to service. */
    bool atFullSpeed() const
    {
        return curState == State::Busy ||
               (curState == State::Parked && curMode == 0);
    }

    /** Energy/time breakdown accumulated so far. */
    const EnergyStats &energy() const { return stats; }

    /** Response-time statistics. */
    const ResponseStats &responses() const { return respStats; }

    /**
     * Idle-gap lengths (seconds) observed so far: the time from each
     * service-queue drain to the next request arrival. Used by the
     * Oracle DPM analyzer and by workload characterization.
     */
    const std::vector<Time> &idleGaps() const { return gaps; }

    /**
     * Cause of the request that closed each idle gap, parallel to
     * idleGaps() — except for a trailing gap still open at
     * finalize(), which no request closed (so after finalize this
     * holds either idleGaps().size() or one fewer entries). Lets the
     * offline Oracle re-pricer attribute the spin-ups it charges.
     */
    const std::vector<WakeCause> &gapCloseCauses() const
    {
        return gapCauses;
    }

    /** Mean inter-arrival time of submitted requests. */
    double meanInterArrival() const;

    /** Number of requests submitted. */
    uint64_t arrivals() const { return numArrivals; }

    /**
     * Register a callback fired whenever the disk reaches full speed
     * after being below it (used by WBEU/WTDU flush-on-activation).
     */
    void setOnActivated(std::function<void(Time)> cb)
    {
        onActivated = std::move(cb);
    }

    const PowerModel &powerModel() const { return *pm; }

  private:
    /** Accrue parked energy from parkStart to now, then reset it. */
    void accrueParked(Time now);

    /** Begin servicing the head of the queue (must be at full speed,
     *  Parked). */
    void startService(Time now);

    void onServiceDone(Time now);

    /** Queue drained at full speed: enter Parked@0 and arm the DPM. */
    void enterIdle(Time now);

    /** Ask the DPM for the next demotion and schedule its timer. */
    void armDemotionTimer(Time now);

    void onDemotionTimer(Time now, std::size_t target_mode);
    void onSpinDownDone(Time now, std::size_t target_mode);
    void beginSpinUp(Time now);
    void onSpinUpDone(Time now);

    /** True when requests can be serviced in the current mode. */
    bool canServiceInMode(std::size_t mode) const;

    /** Report a residency-state change to the observer (if any). */
    void observeState(const char *label, Time now);

    /** Report parking in @c curMode to the observer (if any). */
    void observeParked(Time now);

    DiskId diskId;
    EventQueue &queue;
    const PowerModel *pm;
    const ServiceModel *sm;
    Dpm *dpm;
    DiskOptions options;

    State curState = State::Parked;
    std::size_t curMode = 0;
    Time parkStart = 0;     //!< when the current parked stretch began
    Time idleStart = 0;     //!< when the current idle period began
    bool idleOpen = false;  //!< an idle gap is in progress
    bool wantSpinUp = false; //!< request arrived during spin-down

    std::deque<DiskRequest> pending;
    EventQueue::Handle demotionTimer;

    BlockNum headPosition = 0; //!< last accessed block (seek origin)

    EnergyStats stats;
    ResponseStats respStats;
    std::vector<Time> gaps;
    std::vector<WakeCause> gapCauses;

    uint64_t numArrivals = 0;
    Time firstArrival = 0;
    Time lastArrival = 0;

    std::function<void(Time)> onActivated;

    obs::SimObserver *obs; //!< null = no instrumentation

    bool finalized = false;
};

} // namespace pacache

#endif // PACACHE_DISK_DISK_HH
