#include "disk/service_model.hh"

#include <cmath>
#include <cstdlib>

#include "util/logging.hh"

namespace pacache
{

ServiceModel::ServiceModel(const DiskSpec &spec, const ServiceParams &params)
    : diskSpec(spec), serviceParams(params)
{
    PACACHE_ASSERT(params.capacityBlocks > 0, "disk capacity must be > 0");
    PACACHE_ASSERT(params.transferRateMBps > 0, "transfer rate must be > 0");
}

Time
ServiceModel::seekTime(BlockNum from, BlockNum to) const
{
    if (from == to)
        return 0.0;
    const double dist =
        static_cast<double>(from > to ? from - to : to - from) /
        static_cast<double>(serviceParams.capacityBlocks);
    const double frac = std::sqrt(std::min(dist, 1.0));
    return serviceParams.trackToTrackSeek +
           (serviceParams.fullStrokeSeek - serviceParams.trackToTrackSeek) *
               frac;
}

Time
ServiceModel::rotationalLatency() const
{
    return 0.5 * 60.0 / diskSpec.maxRpm;
}

Time
ServiceModel::transferTime(uint32_t num_blocks) const
{
    const double bytes =
        static_cast<double>(num_blocks) *
        static_cast<double>(serviceParams.blockSize);
    return bytes / (serviceParams.transferRateMBps * 1e6);
}

Time
ServiceModel::serviceTime(BlockNum from, BlockNum to,
                          uint32_t num_blocks) const
{
    return serviceParams.controllerOverhead + seekTime(from, to) +
           rotationalLatency() + transferTime(num_blocks);
}

Time
ServiceModel::serviceTimeAtSpeed(BlockNum from, BlockNum to,
                                 uint32_t num_blocks,
                                 double speed_fraction) const
{
    PACACHE_ASSERT(speed_fraction > 0 && speed_fraction <= 1.0,
                   "speed fraction must be in (0, 1]");
    return serviceParams.controllerOverhead + seekTime(from, to) +
           (rotationalLatency() + transferTime(num_blocks)) /
               speed_fraction;
}

Energy
ServiceModel::serviceEnergy(Time seek_time, Time rest_time) const
{
    return diskSpec.seekPower * seek_time +
           diskSpec.activePower * rest_time;
}

Energy
ServiceModel::serviceEnergyAtSpeed(Time seek_time, Time rest_time,
                                   double speed_fraction) const
{
    PACACHE_ASSERT(speed_fraction > 0 && speed_fraction <= 1.0,
                   "speed fraction must be in (0, 1]");
    const Power active =
        diskSpec.standbyPower +
        (diskSpec.activePower - diskSpec.standbyPower) *
            speed_fraction * speed_fraction;
    const Power seek =
        diskSpec.standbyPower +
        (diskSpec.seekPower - diskSpec.standbyPower) *
            speed_fraction * speed_fraction;
    return seek * seek_time + active * rest_time;
}

} // namespace pacache
