/**
 * @file
 * Oracle disk power management (paper Section 2.2), implemented as an
 * off-line analyzer.
 *
 * Oracle DPM knows the length of every idle gap in advance: after
 * each request it parks the disk in the mode minimizing E_i(gap) (the
 * lower envelope of the energy lines) and spins the disk up *just in
 * time* for the next request, so response times are unaffected.
 *
 * Because the trace-driven arrival times do not depend on disk
 * latency, the idle gaps a disk sees are exactly those observed in a
 * run with an always-on policy. The analyzer therefore takes a disk
 * that was simulated with AlwaysOnDpm and re-prices its idle gaps
 * with the envelope, yielding the Oracle energy for the same request
 * sequence.
 */

#ifndef PACACHE_DISK_ORACLE_DPM_HH
#define PACACHE_DISK_ORACLE_DPM_HH

#include <vector>

#include "disk/disk.hh"
#include "disk/power_model.hh"
#include "stats/energy_stats.hh"

namespace pacache
{

/** Result of pricing one disk's timeline under Oracle DPM. */
struct OracleResult
{
    EnergyStats stats;  //!< full breakdown (per-mode idle, service,
                        //!< transitions)
    Energy totalEnergy = 0;
};

/** Off-line analyzer computing Oracle-DPM energy. */
class OracleAnalyzer
{
  public:
    explicit OracleAnalyzer(const PowerModel &pm) : powerModel(&pm) {}

    /**
     * Price a sequence of idle gaps under Oracle DPM. The final gap
     * (after the last request) ends the simulation, so it is parked
     * in the best mode but pays no spin-up.
     *
     * @param gaps          idle gap lengths in seconds
     * @param service       service energy/time carried over unchanged
     * @param last_gap_open true if the final entry of @p gaps is the
     *                      trailing (never-re-activated) gap
     * @param gap_causes    optional wake cause per closed gap (from
     *                      Disk::gapCloseCauses()); when provided,
     *                      every spin-up the envelope charges is
     *                      attributed to the request that ended the
     *                      gap, keeping the energy ledger conserved
     *                      under Oracle DPM. Without it spin-ups are
     *                      attributed to DemandColdMiss.
     */
    OracleResult price(const std::vector<Time> &gaps,
                       const EnergyStats &service,
                       bool last_gap_open = true,
                       const std::vector<WakeCause> *gap_causes =
                           nullptr) const;

    /**
     * Convenience: price a finalized always-on disk. Service energy,
     * busy time and request counts are copied from the disk; idle
     * gaps are re-priced with the envelope.
     */
    OracleResult priceDisk(const Disk &disk) const;

  private:
    const PowerModel *powerModel;
};

} // namespace pacache

#endif // PACACHE_DISK_ORACLE_DPM_HH
