#include "disk/disk_array.hh"

#include "util/logging.hh"

namespace pacache
{

DiskArray::DiskArray(std::size_t num_disks, EventQueue &eq,
                     const PowerModel &pm_, const ServiceModel &sm_,
                     Dpm &dpm, const DiskOptions &opts)
    : queue(eq), pm(&pm_), sm(&sm_)
{
    PACACHE_ASSERT(num_disks > 0, "array needs at least one disk");
    disks.reserve(num_disks);
    for (std::size_t i = 0; i < num_disks; ++i) {
        disks.push_back(std::make_unique<Disk>(
            static_cast<DiskId>(i), eq, pm_, sm_, dpm, opts));
    }
}

Disk &
DiskArray::disk(DiskId id)
{
    PACACHE_ASSERT(id < disks.size(), "disk id out of range: ", id);
    return *disks[id];
}

const Disk &
DiskArray::disk(DiskId id) const
{
    PACACHE_ASSERT(id < disks.size(), "disk id out of range: ", id);
    return *disks[id];
}

void
DiskArray::submit(DiskId id, DiskRequest req)
{
    disk(id).submit(std::move(req));
}

void
DiskArray::finalize(Time end)
{
    for (auto &d : disks)
        d->finalize(end);
}

EnergyStats
DiskArray::totalEnergy() const
{
    EnergyStats total(pm->numModes());
    for (const auto &d : disks)
        total += d->energy();
    return total;
}

ResponseStats
DiskArray::totalResponses() const
{
    ResponseStats total;
    for (const auto &d : disks)
        total.merge(d->responses());
    return total;
}

} // namespace pacache
