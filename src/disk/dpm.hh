/**
 * @file
 * On-line disk power management (DPM) policy interface.
 *
 * A DPM policy decides, while a disk idles, when to demote it to a
 * deeper power mode. The disk state machine asks the policy for the
 * *next* demotion each time the disk finishes parking in a mode; the
 * policy answers with a target mode and the idle age (time since the
 * idle period began) at which the demotion should start.
 *
 * Oracle DPM is not an on-line policy (it needs the future) and is
 * implemented as an off-line analyzer in oracle_dpm.hh.
 */

#ifndef PACACHE_DISK_DPM_HH
#define PACACHE_DISK_DPM_HH

#include <memory>
#include <optional>
#include <vector>

#include "disk/power_model.hh"
#include "sim/types.hh"

namespace pacache
{

/** A planned demotion: go to @c targetMode once idle for @c atIdleAge. */
struct Demotion
{
    std::size_t targetMode;
    Time atIdleAge;
};

/** Interface for on-line demotion policies. */
class Dpm
{
  public:
    virtual ~Dpm() = default;

    /**
     * @param disk          the asking disk (adaptive policies keep
     *                      per-disk state)
     * @param current_mode  mode the disk is parked in now
     * @param idle_age      seconds since this idle period started
     * @return the next demotion, or nullopt to stay put.
     */
    virtual std::optional<Demotion>
    nextDemotion(DiskId disk, std::size_t current_mode,
                 Time idle_age) const = 0;

    /**
     * Feedback: an idle period of @p idle_length ended (a request
     * arrived) while the disk was parked in (or demoting toward)
     * @p mode_at_wake. Adaptive policies learn from this.
     */
    virtual void onIdleEnd(DiskId, std::size_t /*mode_at_wake*/,
                           Time /*idle_length*/)
    {
    }

    /** Human-readable policy name. */
    virtual const char *name() const = 0;
};

/** Never demotes: the disk stays at full speed (baseline). */
class AlwaysOnDpm : public Dpm
{
  public:
    std::optional<Demotion>
    nextDemotion(DiskId, std::size_t, Time) const override
    {
        return std::nullopt;
    }

    const char *name() const override { return "always-on"; }
};

/**
 * The paper's Practical DPM: threshold-based stepwise demotion
 * through the modes on the lower envelope, using the 2-competitive
 * thresholds (intersection points of consecutive energy lines,
 * Irani et al.). After idling for thresholds()[k], the disk moves to
 * envelope step k+1.
 */
class PracticalDpm : public Dpm
{
  public:
    explicit PracticalDpm(const PowerModel &model) : powerModel(&model) {}

    std::optional<Demotion>
    nextDemotion(DiskId disk, std::size_t current_mode,
                 Time idle_age) const override;

    const char *name() const override { return "practical"; }

  private:
    const PowerModel *powerModel;
};

/**
 * Classic single-threshold policy: after @c timeout seconds of
 * idleness, go straight to a fixed mode (standby by default).
 * Included as the mobile-disk baseline the related work uses.
 */
class FixedTimeoutDpm : public Dpm
{
  public:
    FixedTimeoutDpm(Time timeout, std::size_t target_mode)
        : idleTimeout(timeout), targetMode(target_mode) {}

    std::optional<Demotion>
    nextDemotion(DiskId, std::size_t current_mode, Time) const override
    {
        // An idle age already past the timeout demotes immediately
        // (the disk clamps the delay at zero).
        if (current_mode >= targetMode)
            return std::nullopt;
        return Demotion{targetMode, idleTimeout};
    }

    const char *name() const override { return "fixed-timeout"; }

  private:
    Time idleTimeout;
    std::size_t targetMode;
};

/**
 * Adaptive single-threshold DPM in the spirit of the mobile-disk
 * work the paper surveys (Douglis et al., Helmbold et al.): each
 * disk keeps its own spin-down timeout, doubled after a "bad sleep"
 * (the idle period ended soon after the demotion would have paid
 * off, i.e. the disk was woken before the break-even point) and
 * multiplicatively decreased after long idle periods.
 */
class AdaptiveDpm : public Dpm
{
  public:
    struct Params
    {
        double increaseFactor = 2.0;  //!< after a bad sleep
        double decreaseFactor = 0.9;  //!< after a good sleep
        double goodSleepMultiple = 4.0; //!< idle >= k*timeout is good
        Time minTimeout = 1.0;
        Time maxTimeout = 300.0;
    };

    /**
     * @param model        power model (break-even seeds the timeout)
     * @param target_mode  mode to demote into (deepest by default)
     * @param params       adaptation knobs
     */
    AdaptiveDpm(const PowerModel &model, std::size_t target_mode,
                const Params &params);

    AdaptiveDpm(const PowerModel &model, std::size_t target_mode)
        : AdaptiveDpm(model, target_mode, Params{}) {}

    explicit AdaptiveDpm(const PowerModel &model)
        : AdaptiveDpm(model, model.deepestMode()) {}

    std::optional<Demotion>
    nextDemotion(DiskId disk, std::size_t current_mode,
                 Time idle_age) const override;

    void onIdleEnd(DiskId disk, std::size_t mode_at_wake,
                   Time idle_length) override;

    const char *name() const override { return "adaptive"; }

    /** Current timeout for a disk (test hook). */
    Time timeoutOf(DiskId disk) const;

  private:
    Time &slot(DiskId disk) const;

    const PowerModel *powerModel;
    std::size_t targetMode;
    Params p;
    Time initialTimeout;
    mutable std::vector<Time> timeouts; //!< per-disk, lazily grown
};

} // namespace pacache

#endif // PACACHE_DISK_DPM_HH
