#include "disk/power_model.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace pacache
{

DiskSpec
DiskSpec::ultrastar36z15()
{
    return DiskSpec{};
}

namespace
{

/**
 * Derive the idle-mode list for a spec: full-speed idle, one NAP mode
 * per RPM step down to minRpm, then standby. Transition time/energy
 * scale linearly with delta-RPM; idle power scales quadratically with
 * RPM (see file comment in power_model.hh).
 */
std::vector<PowerMode>
deriveModes(const DiskSpec &spec)
{
    PACACHE_ASSERT(spec.maxRpm > 0 && spec.rpmStep > 0,
                   "bad RPM configuration");
    PACACHE_ASSERT(spec.idlePower > spec.standbyPower,
                   "idle power must exceed standby power");

    std::vector<PowerMode> modes;
    auto add = [&](const std::string &name, double rpm) {
        const double f = rpm / spec.maxRpm;         // speed fraction
        const double d = 1.0 - f;                   // depth fraction
        PowerMode m;
        m.name = name;
        m.rpm = rpm;
        m.idlePower = spec.standbyPower +
                      (spec.idlePower - spec.standbyPower) * f * f;
        m.spinUpTime = spec.spinUpTime * d;
        m.spinUpEnergy = spec.spinUpEnergy * d;
        m.spinDownTime = spec.spinDownTime * d;
        m.spinDownEnergy = spec.spinDownEnergy * d;
        modes.push_back(std::move(m));
    };

    add("idle", spec.maxRpm);
    int nap = 1;
    for (double rpm = spec.maxRpm - spec.rpmStep;
         rpm >= spec.minRpm - 1e-9; rpm -= spec.rpmStep) {
        add("NAP" + std::to_string(nap++), rpm);
    }
    add("standby", 0.0);
    return modes;
}

} // namespace

PowerModel::PowerModel(const DiskSpec &spec)
    : PowerModel(spec, deriveModes(spec))
{
}

PowerModel::PowerModel(const DiskSpec &spec, std::vector<PowerMode> modes)
    : diskSpec(spec), modeList(std::move(modes))
{
    PACACHE_ASSERT(!modeList.empty(), "power model needs at least one mode");
    for (std::size_t i = 1; i < modeList.size(); ++i) {
        PACACHE_ASSERT(modeList[i].idlePower <= modeList[i - 1].idlePower,
                       "mode powers must be non-increasing");
        PACACHE_ASSERT(modeList[i].transitionEnergy() >=
                           modeList[i - 1].transitionEnergy(),
                       "transition energies must be non-decreasing");
    }
    computeEnvelope();
}

const PowerMode &
PowerModel::mode(std::size_t i) const
{
    PACACHE_ASSERT(i < modeList.size(), "mode index ", i, " out of range");
    return modeList[i];
}

Energy
PowerModel::energyLine(std::size_t mode_idx, Time t) const
{
    const PowerMode &m = mode(mode_idx);
    return m.idlePower * t + m.transitionEnergy();
}

Energy
PowerModel::envelopeRef(Time t) const
{
    return energyLine(bestModeRef(t), t);
}

std::size_t
PowerModel::bestModeRef(Time t) const
{
    std::size_t best = 0;
    Energy best_e = energyLine(0, t);
    for (std::size_t i = 1; i < modeList.size(); ++i) {
        const Energy e = energyLine(i, t);
        if (e < best_e) {
            best_e = e;
            best = i;
        }
    }
    return best;
}

Energy
PowerModel::savingsLine(std::size_t mode_idx, Time t) const
{
    return energyLine(0, t) - energyLine(mode_idx, t);
}

Energy
PowerModel::maxSavings(Time t) const
{
    return energyLine(0, t) - envelope(t);
}

Time
PowerModel::breakEvenTime(std::size_t mode_idx) const
{
    const PowerMode &m = mode(mode_idx);
    const Power dp = modeList[0].idlePower - m.idlePower;
    if (dp <= 0)
        return mode_idx == 0 ? 0.0 : std::numeric_limits<Time>::infinity();
    return m.transitionEnergy() / dp;
}

void
PowerModel::computeEnvelope()
{
    // Lower envelope of the lines E_i(t) = P_i * t + TE_i. Slopes are
    // non-increasing with i and intercepts non-decreasing, so a
    // convex-hull-of-lines sweep applies: keep a stack of envelope
    // lines and pop lines that become dominated.
    envModes.clear();
    thresholdTimes.clear();

    auto intersect = [&](std::size_t a, std::size_t b) {
        const double dp = modeList[a].idlePower - modeList[b].idlePower;
        const double de = modeList[b].transitionEnergy() -
                          modeList[a].transitionEnergy();
        return dp > 0 ? de / dp : std::numeric_limits<double>::infinity();
    };

    for (std::size_t i = 0; i < modeList.size(); ++i) {
        while (true) {
            if (envModes.empty()) {
                envModes.push_back(i);
                break;
            }
            const std::size_t top = envModes.back();
            const double t_new = intersect(top, i);
            if (!std::isfinite(t_new))
                break; // equal power, >= intercept: i never wins
            const double t_prev =
                thresholdTimes.empty() ? 0.0 : thresholdTimes.back();
            if (t_new <= t_prev) {
                // i overtakes top before top's segment even starts:
                // top never appears on the envelope.
                envModes.pop_back();
                if (!thresholdTimes.empty())
                    thresholdTimes.pop_back();
                continue;
            }
            envModes.push_back(i);
            thresholdTimes.push_back(t_new);
            break;
        }
    }

    PACACHE_ASSERT(envModes.size() == thresholdTimes.size() + 1,
                   "envelope bookkeeping mismatch");
    buildEnergyTables();
}

void
PowerModel::buildEnergyTables()
{
    // Freeze both idle-energy curves. The practical segment table's
    // prefix is accumulated with exactly the operations (and order)
    // of the legacy threshold walk, so pracTable.eval() reproduces it
    // bit for bit; the envelope is priced by min-scanning the flat
    // line table (see EnergyLine for why a segment lookup cannot be
    // bit-identical there). envTable still records the envelope's
    // closed-form segments for introspection.
    envTable.clear();
    pracTable.clear();
    lineTable.clear();
    for (const PowerMode &m : modeList)
        lineTable.push_back(EnergyLine{m.idlePower, m.transitionEnergy()});
    // NaN-proof padding: a {0, +inf} dummy would evaluate to
    // 0 * t = NaN on an infinite gap; slope 1 with a DBL_MAX
    // intercept is at least DBL_MAX for any finite t (never winning
    // against a real line) and +inf at t = +inf.
    linePad.fill(
        EnergyLine{1.0, std::numeric_limits<Energy>::max()});
    for (std::size_t i = 0;
         i < std::min(lineTable.size(), kLinePad); ++i)
        linePad[i] = lineTable[i];
    constexpr Time kInf = std::numeric_limits<Time>::infinity();

    Energy prefix = 0;
    Time prev = 0;
    for (std::size_t k = 0; k < envModes.size(); ++k) {
        const PowerMode &m = mode(envModes[k]);
        const Time bound =
            k < thresholdTimes.size() ? thresholdTimes[k] : kInf;
        envTable.push(EnergySegment{bound, 0.0, 0.0, m.idlePower,
                                    m.transitionEnergy()});
        pracTable.push(
            EnergySegment{bound, prev, prefix, m.idlePower,
                          m.spinDownEnergy + m.spinUpEnergy});
        if (k < thresholdTimes.size()) {
            prefix += m.idlePower * (thresholdTimes[k] - prev);
            prev = thresholdTimes[k];
        }
    }
}

Energy
PowerModel::practicalEnergyRef(Time t) const
{
    // Walk the envelope steps; the disk sits at envModes[k] during
    // [thresholds[k-1], thresholds[k]). Demotion energies telescope to
    // the final mode's spin-down energy; the gap ends with a spin-up
    // from the final mode. Transition times are treated as part of the
    // gap (the analytic simplification the paper uses for E'(t)).
    Energy e = 0;
    Time prev = 0;
    std::size_t step = 0;
    while (step < thresholdTimes.size() && t >= thresholdTimes[step]) {
        e += mode(envModes[step]).idlePower * (thresholdTimes[step] - prev);
        prev = thresholdTimes[step];
        ++step;
    }
    const PowerMode &final_mode = mode(envModes[step]);
    e += final_mode.idlePower * (t - prev);
    e += final_mode.spinDownEnergy + final_mode.spinUpEnergy;
    return e;
}

PowerModel
makeTwoModeModel(Power idle_power, Power standby_power,
                 Energy spin_up_energy, Time spin_up_time,
                 Energy spin_down_energy, Time spin_down_time)
{
    DiskSpec spec;
    spec.model = "two-mode";
    spec.idlePower = idle_power;
    spec.standbyPower = standby_power;
    spec.spinUpEnergy = spin_up_energy;
    spec.spinUpTime = spin_up_time;
    spec.spinDownEnergy = spin_down_energy;
    spec.spinDownTime = spin_down_time;

    std::vector<PowerMode> modes(2);
    modes[0] = PowerMode{"idle", spec.maxRpm, idle_power, 0, 0, 0, 0};
    modes[1] = PowerMode{"standby", 0, standby_power, spin_up_time,
                         spin_up_energy, spin_down_time, spin_down_energy};
    return PowerModel(spec, std::move(modes));
}

} // namespace pacache
