#include "disk/dpm.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pacache
{

AdaptiveDpm::AdaptiveDpm(const PowerModel &model, std::size_t target_mode,
                         const Params &params)
    : powerModel(&model), targetMode(target_mode), p(params)
{
    PACACHE_ASSERT(targetMode > 0 && targetMode < model.numModes(),
                   "adaptive target must be a low-power mode");
    PACACHE_ASSERT(p.increaseFactor > 1.0 && p.decreaseFactor < 1.0 &&
                       p.decreaseFactor > 0.0,
                   "bad adaptation factors");
    PACACHE_ASSERT(p.minTimeout > 0 && p.maxTimeout >= p.minTimeout,
                   "bad timeout bounds");
    const Time be = model.breakEvenTime(targetMode);
    initialTimeout = std::clamp(be, p.minTimeout, p.maxTimeout);
}

Time &
AdaptiveDpm::slot(DiskId disk) const
{
    if (disk >= timeouts.size())
        timeouts.resize(disk + 1, initialTimeout);
    return timeouts[disk];
}

Time
AdaptiveDpm::timeoutOf(DiskId disk) const
{
    return slot(disk);
}

std::optional<Demotion>
AdaptiveDpm::nextDemotion(DiskId disk, std::size_t current_mode,
                          Time) const
{
    if (current_mode >= targetMode)
        return std::nullopt;
    return Demotion{targetMode, slot(disk)};
}

void
AdaptiveDpm::onIdleEnd(DiskId disk, std::size_t mode_at_wake,
                       Time idle_length)
{
    Time &timeout = slot(disk);
    const Time break_even = powerModel->breakEvenTime(targetMode);
    if (mode_at_wake >= targetMode &&
        idle_length < timeout + break_even) {
        // Bad sleep: the disk was demoted but woken before the
        // transition paid for itself. Back off.
        timeout = std::min(timeout * p.increaseFactor, p.maxTimeout);
    } else if (idle_length >= p.goodSleepMultiple * timeout) {
        // Plenty of slack: demote sooner next time.
        timeout = std::max(timeout * p.decreaseFactor, p.minTimeout);
    }
}

} // namespace pacache
