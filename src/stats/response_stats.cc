#include "stats/response_stats.hh"

#include <ostream>

#include "util/json.hh"

namespace pacache
{

void
ResponseStats::writeJsonValue(JsonWriter &json) const
{
    json.beginObject();
    json.kv("count", count());
    json.kv("sum_s", sum());
    json.kv("mean_ms", mean() * 1e3);
    json.kv("p50_ms", percentile(0.50) * 1e3);
    json.kv("p95_ms", percentile(0.95) * 1e3);
    json.kv("p99_ms", percentile(0.99) * 1e3);
    json.kv("max_s", max());
    json.endObject();
}

void
ResponseStats::writeJson(std::ostream &os) const
{
    JsonWriter json(os);
    writeJsonValue(json);
    json.finish();
}

std::ostream &
operator<<(std::ostream &os, const ResponseStats &stats)
{
    os << stats.count() << " responses, mean "
       << stats.mean() * 1e3 << " ms, p95 "
       << stats.percentile(0.95) * 1e3 << " ms, max "
       << stats.max() << " s";
    return os;
}

} // namespace pacache
