#include "stats/response_stats.hh"

#include <algorithm>
#include <cmath>

namespace pacache
{

void
ResponseStats::record(Time response_time)
{
    samples.push_back(response_time);
    sorted = false;
    sum += response_time;
    maxSeen = std::max(maxSeen, response_time);
}

double
ResponseStats::mean() const
{
    return samples.empty() ? 0.0 : sum / static_cast<double>(samples.size());
}

Time
ResponseStats::percentile(double p) const
{
    if (samples.empty())
        return 0.0;
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
    p = std::clamp(p, 0.0, 1.0);
    const auto rank = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(samples.size())));
    return samples[rank == 0 ? 0 : rank - 1];
}

void
ResponseStats::merge(const ResponseStats &other)
{
    samples.insert(samples.end(), other.samples.begin(),
                   other.samples.end());
    sorted = false;
    sum += other.sum;
    maxSeen = std::max(maxSeen, other.maxSeen);
}

} // namespace pacache
