#include "stats/response_stats.hh"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/json.hh"

namespace pacache
{

void
ResponseStats::record(Time response_time)
{
    samples.push_back(response_time);
    sorted = false;
    total += response_time;
    maxSeen = std::max(maxSeen, response_time);
}

double
ResponseStats::mean() const
{
    return samples.empty() ? 0.0 : total / static_cast<double>(samples.size());
}

Time
ResponseStats::percentile(double p) const
{
    if (samples.empty())
        return 0.0;
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
    p = std::clamp(p, 0.0, 1.0);
    const auto rank = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(samples.size())));
    return samples[rank == 0 ? 0 : rank - 1];
}

void
ResponseStats::merge(const ResponseStats &other)
{
    samples.insert(samples.end(), other.samples.begin(),
                   other.samples.end());
    sorted = false;
    total += other.total;
    maxSeen = std::max(maxSeen, other.maxSeen);
}

void
ResponseStats::writeJsonValue(JsonWriter &json) const
{
    json.beginObject();
    json.kv("count", count());
    json.kv("sum_s", total);
    json.kv("mean_ms", mean() * 1e3);
    json.kv("p50_ms", percentile(0.50) * 1e3);
    json.kv("p95_ms", percentile(0.95) * 1e3);
    json.kv("p99_ms", percentile(0.99) * 1e3);
    json.kv("max_s", max());
    json.endObject();
}

void
ResponseStats::writeJson(std::ostream &os) const
{
    JsonWriter json(os);
    writeJsonValue(json);
    json.finish();
}

std::ostream &
operator<<(std::ostream &os, const ResponseStats &stats)
{
    os << stats.count() << " responses, mean "
       << stats.mean() * 1e3 << " ms, p95 "
       << stats.percentile(0.95) * 1e3 << " ms, max "
       << stats.max() << " s";
    return os;
}

} // namespace pacache
