/**
 * @file
 * Response-time statistics: count, mean, max, and percentiles over
 * recorded request latencies.
 *
 * Backed by a bounded-memory log-bucketed histogram
 * (util/log_histogram.hh) rather than a sample vector, so the
 * footprint is O(1) in the number of requests and percentiles carry
 * a documented relative error of at most
 * LogHistogram::kMaxRelativeError (< 1%).
 */

#ifndef PACACHE_STATS_RESPONSE_STATS_HH
#define PACACHE_STATS_RESPONSE_STATS_HH

#include <cstdint>
#include <iosfwd>

#include "sim/types.hh"
#include "util/log_histogram.hh"

namespace pacache
{

class JsonWriter;

/** Accumulates request response times. */
class ResponseStats
{
  public:
    /** Record one response time (seconds). */
    void record(Time response_time) { hist.record(response_time); }

    uint64_t count() const { return hist.count(); }
    double mean() const { return hist.mean(); }
    Time max() const { return hist.max(); }

    /** Sum of all recorded response times (seconds). */
    double sum() const { return hist.sum(); }

    /**
     * p in [0,1]; nearest-rank percentile, answered from the
     * histogram within kMaxRelativeError of the exact sample.
     * 0 samples -> 0.
     */
    Time percentile(double p) const { return hist.quantile(p); }

    /** Merge another accumulator into this one (exact on buckets). */
    void merge(const ResponseStats &other)
    {
        hist.merge(other.hist);
    }

    /** The underlying histogram, for obs instruments and tests. */
    const LogHistogram &histogram() const { return hist; }

    /** Serialize count/mean/percentiles/max as a JSON object. */
    void writeJson(std::ostream &os) const;

    /** Append the same object as a value into an open JSON document. */
    void writeJsonValue(JsonWriter &json) const;

  private:
    LogHistogram hist;
};

/** Human-readable one-line summary (count, mean, p95, max). */
std::ostream &operator<<(std::ostream &os, const ResponseStats &stats);

} // namespace pacache

#endif // PACACHE_STATS_RESPONSE_STATS_HH
