/**
 * @file
 * Response-time statistics: count, mean, max, and percentiles over
 * recorded request latencies.
 */

#ifndef PACACHE_STATS_RESPONSE_STATS_HH
#define PACACHE_STATS_RESPONSE_STATS_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/types.hh"

namespace pacache
{

class JsonWriter;

/** Accumulates request response times. */
class ResponseStats
{
  public:
    /** Record one response time (seconds). */
    void record(Time response_time);

    uint64_t count() const { return samples.size(); }
    double mean() const;
    Time max() const { return maxSeen; }

    /** Sum of all recorded response times (seconds). */
    double sum() const { return total; }

    /** p in [0,1]; nearest-rank percentile. 0 samples -> 0. */
    Time percentile(double p) const;

    /** Merge another accumulator into this one. */
    void merge(const ResponseStats &other);

    /** Serialize count/mean/percentiles/max as a JSON object. */
    void writeJson(std::ostream &os) const;

    /** Append the same object as a value into an open JSON document. */
    void writeJsonValue(JsonWriter &json) const;

  private:
    mutable std::vector<Time> samples;
    mutable bool sorted = true;
    double total = 0;
    Time maxSeen = 0;
};

/** Human-readable one-line summary (count, mean, p95, max). */
std::ostream &operator<<(std::ostream &os, const ResponseStats &stats);

} // namespace pacache

#endif // PACACHE_STATS_RESPONSE_STATS_HH
