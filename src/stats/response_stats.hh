/**
 * @file
 * Response-time statistics: count, mean, max, and percentiles over
 * recorded request latencies.
 */

#ifndef PACACHE_STATS_RESPONSE_STATS_HH
#define PACACHE_STATS_RESPONSE_STATS_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace pacache
{

/** Accumulates request response times. */
class ResponseStats
{
  public:
    /** Record one response time (seconds). */
    void record(Time response_time);

    uint64_t count() const { return samples.size(); }
    double mean() const;
    Time max() const { return maxSeen; }

    /** p in [0,1]; nearest-rank percentile. 0 samples -> 0. */
    Time percentile(double p) const;

    /** Merge another accumulator into this one. */
    void merge(const ResponseStats &other);

  private:
    mutable std::vector<Time> samples;
    mutable bool sorted = true;
    double sum = 0;
    Time maxSeen = 0;
};

} // namespace pacache

#endif // PACACHE_STATS_RESPONSE_STATS_HH
