#include "stats/energy_stats.hh"

#include <algorithm>
#include <ostream>

#include "util/json.hh"
#include "util/logging.hh"

namespace pacache
{

const char *
wakeCauseName(WakeCause cause)
{
    switch (cause) {
      case WakeCause::DemandColdMiss:
        return "demand_cold_miss";
      case WakeCause::CapacityMiss:
        return "capacity_miss";
      case WakeCause::DemandWrite:
        return "demand_write";
      case WakeCause::EvictionWriteback:
        return "eviction_writeback";
      case WakeCause::WbeuForcedWake:
        return "wbeu_forced_wake";
      case WakeCause::WtduLogRecycle:
        return "wtdu_log_recycle";
      case WakeCause::Prefetch:
        return "prefetch";
    }
    return "unknown";
}

Energy
EnergyStats::total() const
{
    Energy e = serviceEnergy + spinUpEnergy + spinDownEnergy;
    for (Energy m : idleEnergyPerMode)
        e += m;
    return e;
}

Time
EnergyStats::totalTime() const
{
    Time t = busyTime + spinUpTime + spinDownTime;
    for (Time m : timePerMode)
        t += m;
    return t;
}

EnergyStats &
EnergyStats::operator+=(const EnergyStats &other)
{
    if (idleEnergyPerMode.size() < other.idleEnergyPerMode.size()) {
        idleEnergyPerMode.resize(other.idleEnergyPerMode.size(), 0.0);
        timePerMode.resize(other.timePerMode.size(), 0.0);
    }
    for (std::size_t i = 0; i < other.idleEnergyPerMode.size(); ++i) {
        idleEnergyPerMode[i] += other.idleEnergyPerMode[i];
        timePerMode[i] += other.timePerMode[i];
    }
    serviceEnergy += other.serviceEnergy;
    busyTime += other.busyTime;
    spinUpEnergy += other.spinUpEnergy;
    spinDownEnergy += other.spinDownEnergy;
    spinUpTime += other.spinUpTime;
    spinDownTime += other.spinDownTime;
    spinUps += other.spinUps;
    spinDowns += other.spinDowns;
    for (std::size_t c = 0; c < kNumWakeCauses; ++c) {
        spinUpsByCause[c] += other.spinUpsByCause[c];
        spinUpEnergyByCause[c] += other.spinUpEnergyByCause[c];
    }
    requests += other.requests;
    return *this;
}

void
EnergyStats::writeJsonValue(
    JsonWriter &json, const std::vector<std::string> *mode_names) const
{
    json.beginObject();
    json.kv("total_joules", total());
    json.kv("service_joules", serviceEnergy);
    json.kv("spinup_joules", spinUpEnergy);
    json.kv("spindown_joules", spinDownEnergy);
    if (mode_names && mode_names->size() == idleEnergyPerMode.size()) {
        json.key("idle_energy_per_mode_j");
        json.beginObject();
        for (std::size_t m = 0; m < idleEnergyPerMode.size(); ++m)
            json.kv((*mode_names)[m], idleEnergyPerMode[m]);
        json.endObject();
        json.key("time_per_mode_s");
        json.beginObject();
        for (std::size_t m = 0; m < timePerMode.size(); ++m)
            json.kv((*mode_names)[m], timePerMode[m]);
        json.endObject();
    } else {
        json.key("idle_energy_per_mode_j");
        json.beginArray();
        for (const Energy e : idleEnergyPerMode)
            json.value(e);
        json.endArray();
        json.key("time_per_mode_s");
        json.beginArray();
        for (const Time t : timePerMode)
            json.value(t);
        json.endArray();
    }
    json.kv("busy_time_s", busyTime);
    json.kv("spinup_time_s", spinUpTime);
    json.kv("spindown_time_s", spinDownTime);
    json.kv("spinups", spinUps);
    json.kv("spindowns", spinDowns);
    json.key("spinups_by_cause");
    json.beginObject();
    for (std::size_t c = 0; c < kNumWakeCauses; ++c)
        json.kv(wakeCauseName(static_cast<WakeCause>(c)),
                spinUpsByCause[c]);
    json.endObject();
    json.key("spinup_energy_by_cause_j");
    json.beginObject();
    for (std::size_t c = 0; c < kNumWakeCauses; ++c)
        json.kv(wakeCauseName(static_cast<WakeCause>(c)),
                spinUpEnergyByCause[c]);
    json.endObject();
    json.kv("requests", requests);
    json.endObject();
}

void
EnergyStats::writeJson(std::ostream &os,
                       const std::vector<std::string> *mode_names) const
{
    JsonWriter json(os);
    writeJsonValue(json, mode_names);
    json.finish();
}

std::ostream &
operator<<(std::ostream &os, const EnergyStats &stats)
{
    Energy idle = 0;
    for (const Energy e : stats.idleEnergyPerMode)
        idle += e;
    os << "energy " << stats.total() << " J (service "
       << stats.serviceEnergy << " J, idle " << idle << " J, spin-up "
       << stats.spinUpEnergy << " J, spin-down " << stats.spinDownEnergy
       << " J; " << stats.spinUps << " spin-ups, " << stats.spinDowns
       << " spin-downs, " << stats.requests << " requests)";
    return os;
}

} // namespace pacache
