#include "stats/energy_stats.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pacache
{

Energy
EnergyStats::total() const
{
    Energy e = serviceEnergy + spinUpEnergy + spinDownEnergy;
    for (Energy m : idleEnergyPerMode)
        e += m;
    return e;
}

Time
EnergyStats::totalTime() const
{
    Time t = busyTime + spinUpTime + spinDownTime;
    for (Time m : timePerMode)
        t += m;
    return t;
}

EnergyStats &
EnergyStats::operator+=(const EnergyStats &other)
{
    if (idleEnergyPerMode.size() < other.idleEnergyPerMode.size()) {
        idleEnergyPerMode.resize(other.idleEnergyPerMode.size(), 0.0);
        timePerMode.resize(other.timePerMode.size(), 0.0);
    }
    for (std::size_t i = 0; i < other.idleEnergyPerMode.size(); ++i) {
        idleEnergyPerMode[i] += other.idleEnergyPerMode[i];
        timePerMode[i] += other.timePerMode[i];
    }
    serviceEnergy += other.serviceEnergy;
    busyTime += other.busyTime;
    spinUpEnergy += other.spinUpEnergy;
    spinDownEnergy += other.spinDownEnergy;
    spinUpTime += other.spinUpTime;
    spinDownTime += other.spinDownTime;
    spinUps += other.spinUps;
    spinDowns += other.spinDowns;
    requests += other.requests;
    return *this;
}

} // namespace pacache
