/**
 * @file
 * Per-disk energy and time accounting: energy and residency per power
 * mode, service (seek/rotate/transfer) energy, transition costs and
 * counts. These are the quantities behind the paper's Figures 6-9.
 */

#ifndef PACACHE_STATS_ENERGY_STATS_HH
#define PACACHE_STATS_ENERGY_STATS_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace pacache
{

class JsonWriter;

/**
 * Why a sleeping disk was forced to spin back up. Every spin-up a
 * disk performs is attributed to exactly one cause, so the by-cause
 * rows of the energy-attribution ledger sum to the spin-up totals.
 *
 * DemandWrite extends the classic read-side taxonomy: under
 * write-through (and WTDU's awake-disk path) a write reaches a
 * sleeping disk directly, which is neither a cold nor a capacity
 * miss. Prefetch is carried for completeness — the current prefetch
 * engine piggybacks on the demand fetch that triggered it, so its
 * row is structurally zero until an asynchronous prefetcher lands.
 */
enum class WakeCause : uint8_t
{
    DemandColdMiss = 0, //!< first-ever access to the block
    CapacityMiss,       //!< re-fetch of a previously evicted block
    DemandWrite,        //!< write-through/awake write to the disk
    EvictionWriteback,  //!< dirty victim flushed on eviction
    WbeuForcedWake,     //!< WBEU epoch timer forced the disk awake
    WtduLogRecycle,     //!< WTDU log recycle replayed logged writes
    Prefetch,           //!< speculative fetch (currently unused)
};

constexpr std::size_t kNumWakeCauses = 7;

/** Stable lower-case identifier for JSON keys and report rows. */
const char *wakeCauseName(WakeCause cause);

/** Energy/time breakdown for one disk (or an aggregate). */
struct EnergyStats
{
    explicit EnergyStats(std::size_t num_modes = 0)
        : idleEnergyPerMode(num_modes, 0.0), timePerMode(num_modes, 0.0) {}

    /** Joules spent parked in each power mode. */
    std::vector<Energy> idleEnergyPerMode;
    /** Seconds spent parked in each power mode. */
    std::vector<Time> timePerMode;

    Energy serviceEnergy = 0; //!< J spent seeking/reading/writing
    Time busyTime = 0;        //!< s spent servicing requests

    Energy spinUpEnergy = 0;
    Energy spinDownEnergy = 0;
    Time spinUpTime = 0;
    Time spinDownTime = 0;
    uint64_t spinUps = 0;   //!< transitions toward full speed
    uint64_t spinDowns = 0; //!< demotion steps performed

    /**
     * Spin-up attribution: counts and energy by WakeCause. The
     * conservation invariant — sums across causes equal spinUps and
     * spinUpEnergy — is what obs::EnergyLedger verifies.
     */
    std::array<uint64_t, kNumWakeCauses> spinUpsByCause{};
    std::array<Energy, kNumWakeCauses> spinUpEnergyByCause{};

    uint64_t requests = 0;  //!< requests serviced

    /** Record one attributed spin-up transition. */
    void attributeSpinUp(WakeCause cause, Energy energy)
    {
        spinUpsByCause[static_cast<std::size_t>(cause)] += 1;
        spinUpEnergyByCause[static_cast<std::size_t>(cause)] += energy;
    }

    /** Total energy consumed. */
    Energy total() const;

    /** Total accounted wall-clock time. */
    Time totalTime() const;

    /** Seconds of transition (spin-up + spin-down) time. */
    Time transitionTime() const { return spinUpTime + spinDownTime; }

    /** Accumulate another breakdown into this one. */
    EnergyStats &operator+=(const EnergyStats &other);

    /**
     * Serialize as a JSON object. With @p mode_names (one name per
     * mode), the per-mode vectors become named objects instead of
     * arrays. The totals here are the exact doubles the reports
     * print, so emitted files reconcile with the console output.
     */
    void writeJson(std::ostream &os,
                   const std::vector<std::string> *mode_names =
                       nullptr) const;

    /** Append this breakdown as a value into an open JSON document. */
    void writeJsonValue(JsonWriter &json,
                        const std::vector<std::string> *mode_names =
                            nullptr) const;
};

/** Human-readable one-line summary (energy totals and transitions). */
std::ostream &operator<<(std::ostream &os, const EnergyStats &stats);

} // namespace pacache

#endif // PACACHE_STATS_ENERGY_STATS_HH
