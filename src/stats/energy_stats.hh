/**
 * @file
 * Per-disk energy and time accounting: energy and residency per power
 * mode, service (seek/rotate/transfer) energy, transition costs and
 * counts. These are the quantities behind the paper's Figures 6-9.
 */

#ifndef PACACHE_STATS_ENERGY_STATS_HH
#define PACACHE_STATS_ENERGY_STATS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace pacache
{

class JsonWriter;

/** Energy/time breakdown for one disk (or an aggregate). */
struct EnergyStats
{
    explicit EnergyStats(std::size_t num_modes = 0)
        : idleEnergyPerMode(num_modes, 0.0), timePerMode(num_modes, 0.0) {}

    /** Joules spent parked in each power mode. */
    std::vector<Energy> idleEnergyPerMode;
    /** Seconds spent parked in each power mode. */
    std::vector<Time> timePerMode;

    Energy serviceEnergy = 0; //!< J spent seeking/reading/writing
    Time busyTime = 0;        //!< s spent servicing requests

    Energy spinUpEnergy = 0;
    Energy spinDownEnergy = 0;
    Time spinUpTime = 0;
    Time spinDownTime = 0;
    uint64_t spinUps = 0;   //!< transitions toward full speed
    uint64_t spinDowns = 0; //!< demotion steps performed

    uint64_t requests = 0;  //!< requests serviced

    /** Total energy consumed. */
    Energy total() const;

    /** Total accounted wall-clock time. */
    Time totalTime() const;

    /** Seconds of transition (spin-up + spin-down) time. */
    Time transitionTime() const { return spinUpTime + spinDownTime; }

    /** Accumulate another breakdown into this one. */
    EnergyStats &operator+=(const EnergyStats &other);

    /**
     * Serialize as a JSON object. With @p mode_names (one name per
     * mode), the per-mode vectors become named objects instead of
     * arrays. The totals here are the exact doubles the reports
     * print, so emitted files reconcile with the console output.
     */
    void writeJson(std::ostream &os,
                   const std::vector<std::string> *mode_names =
                       nullptr) const;

    /** Append this breakdown as a value into an open JSON document. */
    void writeJsonValue(JsonWriter &json,
                        const std::vector<std::string> *mode_names =
                            nullptr) const;
};

/** Human-readable one-line summary (energy totals and transitions). */
std::ostream &operator<<(std::ostream &os, const EnergyStats &stats);

} // namespace pacache

#endif // PACACHE_STATS_ENERGY_STATS_HH
