/**
 * @file
 * OPG — the Off-line Power-aware Greedy replacement algorithm
 * (paper Section 3.2).
 *
 * OPG maintains, per disk, the set S of *deterministic misses*:
 * future accesses that are bound to miss no matter what the
 * replacement algorithm does from now on (initially every cold miss;
 * whenever a block is evicted, its next reference joins S; whenever
 * a deterministic miss is serviced it leaves S).
 *
 * For a resident block x whose next access is l seconds after its
 * *leader* (closest deterministic miss to the same disk before it)
 * and f seconds before its *follower* (closest after it), evicting x
 * turns one idle period of length l+f into two periods l and f, so
 * the energy penalty is
 *
 *      penalty(x) = E(l) + E(f) - E(l+f) >= 0,
 *
 * where E is the idle-period energy function of the underlying DPM:
 * the lower envelope E*(t) for Oracle DPM or the threshold-walk
 * energy for Practical DPM. OPG evicts the block with the smallest
 * penalty, breaking ties by the furthest next access.
 *
 * Penalties below the threshold theta are rounded up to theta, which
 * trades energy for miss ratio: theta = 0 is pure OPG and
 * theta -> infinity degrades exactly to Belady's MIN (all penalties
 * equal; ties broken by forward distance).
 *
 * Implementation (the oracle fast path; ReferenceOpgPolicy in
 * core/opg_ref.hh is the retained node-based original):
 *
 *  - per disk, S is a chunked sorted-vector OrderedSet whose
 *    neighbors() query answers leader/follower/membership in one
 *    locate;
 *  - resident blocks with a finite next access live in a per-disk
 *    OrderedSet map from next-access index to victim-heap handle, so
 *    gap-scoped repricing is a contiguous range scan with no hash
 *    lookups (blocks that are never re-referenced have nothing to
 *    reprice and stay out of the index);
 *  - the victim order is an addressable 4-ary IndexedHeap keyed by
 *    (penalty, furthest next access, block); repricing updates keys
 *    in place through stable handles;
 *  - gap pricing inlines the power model's precomputed fast paths
 *    (flat line-table min-scan for Oracle, closed-form segment table
 *    for Practical), bit-identical to the legacy per-call scans.
 *
 * The policy is a template over its future-knowledge provider F:
 * FutureKnowledge (materialized arrays; OpgPolicy, the classic
 * fits-in-RAM fast path) or WindowedFuture (exact out-of-core
 * next-use streaming over a .pct sidecar; WindowedOpgPolicy, fed by
 * prepareWindowed() instead of prepare()). All instantiations live
 * in opg.cc — the replay loops are identical, only nextUse/timeOf
 * resolution differs, and the windowed provider's pinned-times
 * discipline guarantees every index OPG queries is resident.
 *
 * A second template axis, Store, picks where the oracle's ordered
 * state lives. InMemoryOracleStore (the default) keeps the per-disk
 * deterministic-miss sets and next-use indexes in plain OrderedSets
 * — O(unique blocks) RAM, the historical behavior. SpilledOracleStore
 * swaps both for SpillableOrderedSets sharing one SpillPool sized by
 * the constructor's mem_budget: pages beyond the budget overflow to
 * an unlinked spill file and fault back on touch. Spilling moves
 * bytes, never values, so every instantiation replays bit-identically
 * — evictions, counters, and energy all match the in-memory oracle.
 */

#ifndef PACACHE_CORE_OPG_HH
#define PACACHE_CORE_OPG_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/future_window.hh"
#include "cache/policy.hh"
#include "disk/power_model.hh"
#include "util/flat_map.hh"
#include "util/indexed_heap.hh"
#include "util/ordered_set.hh"
#include "util/spill_pool.hh"
#include "util/spill_set.hh"

namespace pacache
{

/** Which idle-period energy function prices the penalties. */
enum class DpmKind
{
    Oracle,    //!< lower envelope E*(t)
    Practical, //!< threshold-based DPM energy
};

/** Oracle state in plain OrderedSets (O(unique blocks) RAM). */
struct InMemoryOracleStore
{
    static constexpr bool kSpilled = false;
    using DetSet = OrderedSet<std::size_t>;
    template <typename V>
    using Map = OrderedSet<std::size_t, V>;
};

/** Oracle state in SpillableOrderedSets under one SpillPool. */
struct SpilledOracleStore
{
    static constexpr bool kSpilled = true;
    using DetSet = SpillableOrderedSet<std::size_t>;
    template <typename V>
    using Map = SpillableOrderedSet<std::size_t, V>;
};

/** The off-line power-aware greedy policy over future provider F. */
template <typename F, typename Store = InMemoryOracleStore>
class BasicOpgPolicy : public ReplacementPolicy
{
  public:
    /**
     * @param pm          power model used to price idle periods
     * @param kind        which DPM the disks run (prices E)
     * @param theta       penalty floor in Joules (0 = pure OPG)
     * @param mem_budget  SpillPool budget in bytes for the oracle's
     *                    ordered state (SpilledOracleStore only;
     *                    ignored by the in-memory store)
     */
    BasicOpgPolicy(const PowerModel &pm, DpmKind kind,
                   Energy theta = 0, std::size_t mem_budget = 0);

    const char *name() const override { return "OPG"; }

    void prepare(const std::vector<BlockAccess> &accesses) override;

    /**
     * Streaming counterpart of prepare(): adopt an already-built
     * windowed future (F = WindowedFuture only) whose cold seeds
     * initialize the deterministic-miss sets.
     */
    void prepareWindowed(F &&fut);

    void beforeMiss(const BlockId &block, Time now,
                    std::size_t idx) override;
    void onAccess(const BlockId &block, Time now, std::size_t idx,
                  bool hit) override;
    void onRemove(const BlockId &block) override;
    BlockId evict(Time now, std::size_t idx) override;
    bool supportsPrefetch() const override { return false; }
    bool isOffline() const override { return true; }
    bool streamReady() const override
    {
        return F::kStreaming && ready;
    }

    /** Energy penalty currently assigned to a resident block. */
    Energy penaltyOf(const BlockId &block) const;

    /** Number of deterministic misses currently tracked for a disk. */
    std::size_t deterministicMissCount(DiskId disk) const;

    /**
     * Full validation recomputes every resident penalty from scratch
     * (O(n * pricing) — oracle-sized). Debug/test builds default to
     * it; release builds default to the cheap size-drift invariants
     * so sanitizer CI does not pay oracle costs per call.
     */
#ifdef NDEBUG
    static constexpr bool kFullValidationDefault = false;
#else
    static constexpr bool kFullValidationDefault = true;
#endif

    /**
     * Test hook: check internal bookkeeping; panics when out of sync.
     * With @p full, recompute every resident block's penalty and
     * cross-check every index entry against the incremental state.
     */
    void validateInternalState(bool full = kFullValidationDefault) const;

  private:
    /**
     * Victim-ordering key: min penalty, then furthest next access.
     * The block rides along as its packed id — same tie-break order
     * as (disk, block), and the 24-byte key cuts heap sift traffic.
     */
    struct EvictKey
    {
        Energy penalty;
        std::size_t nextIdx;
        std::uint64_t block; //!< BlockId::packed()

        bool
        operator<(const EvictKey &o) const
        {
            if (penalty != o.penalty)
                return penalty < o.penalty;
            if (nextIdx != o.nextIdx)
                return nextIdx > o.nextIdx; // furthest first
            return block < o.block;
        }
    };

    using EvictHeap = IndexedHeap<EvictKey>;
    using Handle = typename EvictHeap::Handle;

    Energy
    idleEnergy(Time t) const
    {
        return dpmKind == DpmKind::Oracle ? pm->envelope(t)
                                          : pm->practicalEnergy(t);
    }
    Energy computePenalty(DiskId disk, std::size_t next_idx) const;

    /** Shared tail of both prepares: sentinel, tables, cold seeds. */
    void finishPrepare(
        std::size_t num_disks, Time last,
        const std::vector<std::pair<DiskId, std::size_t>> &cold);

    void insertResident(const BlockId &block, std::size_t next_idx);
    /** Drop a resident from every index; @return its evict key. */
    EvictKey eraseResident(const BlockId &block);
    /**
     * Re-price resident blocks with next access in (lo, hi), where lo
     * and hi (when present) are known to be the gap's deterministic
     * misses — their leader and follower.
     */
    void repriceGap(DiskId disk, std::size_t lo, bool has_lo,
                    std::size_t hi, bool has_hi);
    void detInsert(DiskId disk, std::size_t idx);
    void detErase(DiskId disk, std::size_t idx);

    const PowerModel *pm;
    DpmKind dpmKind;
    Energy theta;
    std::size_t memBudget; //!< SpillPool bytes (spilled store only)

    const std::vector<BlockAccess> *accesses = nullptr;
    F future;
    bool ready = false;
    Time bigTime = 0;  //!< stands in for "no leader/follower"
    Energy eBig = 0;   //!< cached idleEnergy(bigTime)

    /**
     * Declared before the spillable containers: members destruct in
     * reverse order, so the sets (whose destructors return pages and
     * slots to the pool) must go first.
     */
    std::unique_ptr<SpillPool> spillPool;
    std::vector<typename Store::DetSet> detMiss; //!< per-disk S
    /** Per disk: finite next-access index -> victim-heap handle. */
    std::vector<typename Store::template Map<Handle>> residentByNext;
    /** Packed 64-bit keys: 16-byte slots, one-word hash per probe. */
    FlatMap<std::uint64_t, Handle> handleOf;
    EvictHeap evictOrder;
};

// All instantiations are compiled once, in opg.cc, so the hot replay
// loops keep the exact same single-TU codegen the non-template policy
// had (micro_opg's 2.5x floor is sensitive to this).
extern template class BasicOpgPolicy<FutureKnowledge>;
extern template class BasicOpgPolicy<WindowedFuture>;
extern template class BasicOpgPolicy<FutureKnowledge,
                                     SpilledOracleStore>;
extern template class BasicOpgPolicy<WindowedFuture,
                                     SpilledOracleStore>;

/** The classic materialized oracle. */
using OpgPolicy = BasicOpgPolicy<FutureKnowledge>;
/** The exact out-of-core oracle (streaming replay only). */
using WindowedOpgPolicy = BasicOpgPolicy<WindowedFuture>;
/** The materialized oracle with budgeted (spillable) state. */
using SpilledOpgPolicy =
    BasicOpgPolicy<FutureKnowledge, SpilledOracleStore>;
/** The out-of-core oracle with budgeted (spillable) state. */
using SpilledWindowedOpgPolicy =
    BasicOpgPolicy<WindowedFuture, SpilledOracleStore>;

} // namespace pacache

#endif // PACACHE_CORE_OPG_HH
