/**
 * @file
 * OPG — the Off-line Power-aware Greedy replacement algorithm
 * (paper Section 3.2).
 *
 * OPG maintains, per disk, the set S of *deterministic misses*:
 * future accesses that are bound to miss no matter what the
 * replacement algorithm does from now on (initially every cold miss;
 * whenever a block is evicted, its next reference joins S; whenever
 * a deterministic miss is serviced it leaves S).
 *
 * For a resident block x whose next access is l seconds after its
 * *leader* (closest deterministic miss to the same disk before it)
 * and f seconds before its *follower* (closest after it), evicting x
 * turns one idle period of length l+f into two periods l and f, so
 * the energy penalty is
 *
 *      penalty(x) = E(l) + E(f) - E(l+f) >= 0,
 *
 * where E is the idle-period energy function of the underlying DPM:
 * the lower envelope E*(t) for Oracle DPM or the threshold-walk
 * energy for Practical DPM. OPG evicts the block with the smallest
 * penalty, breaking ties by the furthest next access.
 *
 * Penalties below the threshold theta are rounded up to theta, which
 * trades energy for miss ratio: theta = 0 is pure OPG and
 * theta -> infinity degrades exactly to Belady's MIN (all penalties
 * equal; ties broken by forward distance).
 *
 * Implementation: per disk, S is a sorted set of access indices and
 * resident blocks are indexed by next-access position, so inserting
 * or erasing a deterministic miss re-prices only the blocks inside
 * the affected gap; victims pop from a penalty-ordered set.
 */

#ifndef PACACHE_CORE_OPG_HH
#define PACACHE_CORE_OPG_HH

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "cache/policy.hh"
#include "disk/power_model.hh"

namespace pacache
{

/** Which idle-period energy function prices the penalties. */
enum class DpmKind
{
    Oracle,    //!< lower envelope E*(t)
    Practical, //!< threshold-based DPM energy
};

/** The off-line power-aware greedy policy. */
class OpgPolicy : public ReplacementPolicy
{
  public:
    /**
     * @param pm     power model used to price idle periods
     * @param kind   which DPM the disks run (prices E)
     * @param theta  penalty floor in Joules (0 = pure OPG)
     */
    OpgPolicy(const PowerModel &pm, DpmKind kind, Energy theta = 0);

    const char *name() const override { return "OPG"; }

    void prepare(const std::vector<BlockAccess> &accesses) override;

    void beforeMiss(const BlockId &block, Time now,
                    std::size_t idx) override;
    void onAccess(const BlockId &block, Time now, std::size_t idx,
                  bool hit) override;
    void onRemove(const BlockId &block) override;
    BlockId evict(Time now, std::size_t idx) override;
    bool supportsPrefetch() const override { return false; }
    bool isOffline() const override { return true; }

    /** Energy penalty currently assigned to a resident block. */
    Energy penaltyOf(const BlockId &block) const;

    /** Number of deterministic misses currently tracked for a disk. */
    std::size_t deterministicMissCount(DiskId disk) const;

    /**
     * Test hook: recompute every resident block's penalty from
     * scratch and panic if any cached value or index entry is out of
     * sync with the incremental bookkeeping.
     */
    void validateInternalState() const;

  private:
    struct Info
    {
        std::size_t nextIdx;
        Energy penalty;
    };

    /** Victim-ordering key: min penalty, then furthest next access. */
    struct EvictKey
    {
        Energy penalty;
        std::size_t nextIdx;
        BlockId block;

        bool
        operator<(const EvictKey &o) const
        {
            if (penalty != o.penalty)
                return penalty < o.penalty;
            if (nextIdx != o.nextIdx)
                return nextIdx > o.nextIdx; // furthest first
            return block < o.block;
        }
    };

    Time timeOf(std::size_t idx) const;
    Energy idleEnergy(Time t) const;
    Energy computePenalty(DiskId disk, std::size_t next_idx) const;

    void insertResident(const BlockId &block, std::size_t next_idx);
    void eraseResident(const BlockId &block);
    /** Re-price resident blocks with next access in (lo, hi). */
    void repriceRange(DiskId disk, std::size_t lo, std::size_t hi);
    void detInsert(DiskId disk, std::size_t idx);
    void detErase(DiskId disk, std::size_t idx);

    const PowerModel *pm;
    DpmKind dpmKind;
    Energy theta;

    const std::vector<BlockAccess> *accesses = nullptr;
    FutureKnowledge future;
    Time bigTime = 0; //!< stands in for "no leader/follower"

    std::vector<std::set<std::size_t>> detMiss; //!< per-disk S
    std::vector<std::multimap<std::size_t, BlockId>> residentByNext;
    std::unordered_map<BlockId, Info> info;
    std::set<EvictKey> evictOrder;
};

} // namespace pacache

#endif // PACACHE_CORE_OPG_HH
