#include "core/wtdu_log.hh"

#include "util/logging.hh"

namespace pacache
{

WtduLog::WtduLog(std::size_t num_disks, std::size_t region_blocks)
    : regionCapacity(region_blocks), regions(num_disks)
{
    PACACHE_ASSERT(num_disks > 0, "log needs at least one region");
    PACACHE_ASSERT(region_blocks > 0, "regions need positive capacity");
    for (auto &r : regions)
        r.slots.reserve(region_blocks);
}

const WtduLog::Region &
WtduLog::region(DiskId disk) const
{
    PACACHE_ASSERT(disk < regions.size(), "log region out of range");
    return regions[disk];
}

WtduLog::Region &
WtduLog::region(DiskId disk)
{
    PACACHE_ASSERT(disk < regions.size(), "log region out of range");
    return regions[disk];
}

bool
WtduLog::append(DiskId disk, BlockNum block, uint64_t version)
{
    Region &r = region(disk);
    if (r.freePtr >= regionCapacity)
        return false;
    // Physically, slot reuse overwrites the stale entry left by a
    // previous generation.
    const Entry e{block, version, r.stamp};
    if (r.freePtr < r.slots.size())
        r.slots[r.freePtr] = e;
    else
        r.slots.push_back(e);
    ++r.freePtr;
    ++totalAppends;
    return true;
}

bool
WtduLog::full(DiskId disk) const
{
    return region(disk).freePtr >= regionCapacity;
}

std::size_t
WtduLog::used(DiskId disk) const
{
    return region(disk).freePtr;
}

void
WtduLog::retire(DiskId disk)
{
    Region &r = region(disk);
    ++r.stamp;
    r.freePtr = 0;
}

uint64_t
WtduLog::timestamp(DiskId disk) const
{
    return region(disk).stamp;
}

std::vector<WtduLog::Entry>
WtduLog::recover(DiskId disk) const
{
    const Region &r = region(disk);
    std::vector<Entry> live;
    // Scan the whole physical region, as a real recovery pass would:
    // only entries stamped with the current region timestamp are
    // newer than the last retire.
    for (const Entry &e : r.slots) {
        if (e.stamp == r.stamp)
            live.push_back(e);
    }
    return live;
}

} // namespace pacache
