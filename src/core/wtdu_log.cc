#include "core/wtdu_log.hh"

#include "core/fault.hh"
#include "util/logging.hh"

namespace pacache
{

namespace
{

// SplitMix64 finalizer: cheap, good avalanche — enough to make an
// interrupted entry write fail verification.
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

uint64_t
WtduLog::Entry::expectedSum(BlockNum block, uint64_t version,
                            uint64_t stamp)
{
    return mix64(mix64(static_cast<uint64_t>(block)) ^
                 mix64(version) ^ stamp);
}

bool
WtduLog::Entry::valid() const
{
    return sum == expectedSum(block, version, stamp);
}

WtduLog::WtduLog(std::size_t num_disks, std::size_t region_blocks,
                 uint64_t initial_stamp)
    : regionCapacity(region_blocks), regions(num_disks)
{
    PACACHE_ASSERT(num_disks > 0, "log needs at least one region");
    PACACHE_ASSERT(region_blocks > 0, "regions need positive capacity");
    for (auto &r : regions) {
        r.stamp = initial_stamp;
        r.slots.reserve(region_blocks);
    }
}

const WtduLog::Region &
WtduLog::region(DiskId disk) const
{
    PACACHE_ASSERT(disk < regions.size(), "log region out of range");
    return regions[disk];
}

WtduLog::Region &
WtduLog::region(DiskId disk)
{
    PACACHE_ASSERT(disk < regions.size(), "log region out of range");
    return regions[disk];
}

bool
WtduLog::append(DiskId disk, BlockNum block, uint64_t version)
{
    Region &r = region(disk);
    if (r.freePtr >= regionCapacity)
        return false;
    // Physically, slot reuse overwrites the stale entry left by a
    // previous generation. The entry body lands first; its checksum
    // completes last, so a power failure in between leaves a torn
    // entry that recovery will skip.
    const Entry torn{block, version, r.stamp,
                     ~Entry::expectedSum(block, version, r.stamp)};
    if (r.freePtr < r.slots.size())
        r.slots[r.freePtr] = torn;
    else
        r.slots.push_back(torn);
    if (fault)
        fault->crashPoint(CrashSite::LogAppendTorn, disk);
    r.slots[r.freePtr].sum =
        Entry::expectedSum(block, version, r.stamp);
    ++r.freePtr;
    ++totalAppends;
    return true;
}

bool
WtduLog::full(DiskId disk) const
{
    return region(disk).freePtr >= regionCapacity;
}

std::size_t
WtduLog::used(DiskId disk) const
{
    return region(disk).freePtr;
}

void
WtduLog::retire(DiskId disk)
{
    Region &r = region(disk);
    ++r.stamp;
    r.freePtr = 0;
}

uint64_t
WtduLog::timestamp(DiskId disk) const
{
    return region(disk).stamp;
}

std::vector<WtduLog::Entry>
WtduLog::recover(DiskId disk) const
{
    const Region &r = region(disk);
    std::vector<Entry> live;
    // Scan the whole physical region, as a real recovery pass would:
    // only intact entries stamped with the current region timestamp
    // are newer than the last retire.
    for (const Entry &e : r.slots) {
        if (e.valid() && e.stamp == r.stamp)
            live.push_back(e);
    }
    return live;
}

WtduLog::ScanStats
WtduLog::scan(DiskId disk) const
{
    const Region &r = region(disk);
    ScanStats s;
    for (const Entry &e : r.slots) {
        if (!e.valid())
            ++s.torn;
        else if (e.stamp == r.stamp)
            ++s.live;
        else
            ++s.stale;
    }
    return s;
}

const std::vector<WtduLog::Entry> &
WtduLog::entries(DiskId disk) const
{
    return region(disk).slots;
}

void
WtduLog::recoverAll(
    const std::function<void(DiskId, const Entry &)> &apply,
    FaultInjector *inj)
{
    for (std::size_t d = 0; d < regions.size(); ++d) {
        const DiskId disk = static_cast<DiskId>(d);
        for (const Entry &e : recover(disk)) {
            if (inj)
                inj->crashPoint(CrashSite::Recovery, disk);
            apply(disk, e);
        }
        if (inj)
            inj->crashPoint(CrashSite::Recovery, disk);
        retire(disk);
        if (inj)
            inj->noteLogRetire(disk, region(disk).stamp);
    }
}

} // namespace pacache
