/**
 * @file
 * Turnkey experiment runner: build the whole simulated storage
 * system (power model, DPM, disks, cache, replacement policy, write
 * policy, optional PA classifier and WTDU log device) for a trace,
 * run it, and collect every statistic the paper's figures need.
 */

#ifndef PACACHE_CORE_EXPERIMENT_HH
#define PACACHE_CORE_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "core/pa_classifier.hh"
#include "core/storage_system.hh"
#include "disk/power_model.hh"
#include "disk/service_model.hh"
#include "stats/energy_stats.hh"
#include "stats/response_stats.hh"
#include "trace/trace.hh"

namespace pacache
{

namespace tracefmt
{
class TraceSource;
}

/** Replacement policies selectable by the runner. */
enum class PolicyKind
{
    LRU,
    FIFO,
    CLOCK,
    ARC,
    MQ,
    LIRS,
    Belady,        //!< off-line MIN
    OPG,           //!< off-line power-aware greedy
    PALRU,         //!< on-line power-aware LRU
    PAARC,         //!< PA wrapper around ARC
    PALIRS,        //!< PA wrapper around LIRS
    InfiniteCache, //!< no evictions (cold misses only)
};

/** DPM regime for the run. */
enum class DpmChoice
{
    AlwaysOn,  //!< disks never leave full speed
    Practical, //!< on-line threshold DPM (2-competitive)
    Adaptive,  //!< per-disk adaptive spin-down timeout
    Oracle,    //!< off-line envelope pricing, just-in-time spin-up
};

/** Full experiment configuration. */
struct ExperimentConfig
{
    PolicyKind policy = PolicyKind::LRU;
    DpmChoice dpm = DpmChoice::Practical;
    std::size_t cacheBlocks = 32768; //!< 128 MiB of 4 KiB blocks
    StorageConfig storage;
    DiskSpec spec = DiskSpec::ultrastar36z15();
    ServiceParams service;
    DiskOptions disk; //!< e.g. DRPM serve-at-any-speed (option 1)
    PaParams pa;           //!< intervalThreshold <= 0: auto from model
    Energy opgTheta = -1;  //!< < 0: auto (first NAP transition energy)

    /**
     * Out-of-core oracle replay (streaming overload only): when > 0
     * and the policy is off-line (Belady/OPG), future knowledge is
     * built by the windowed backward pass over the source's .pct file
     * (non-.pct sources are spilled to a temporary .pct first) and
     * the replay streams, so peak RSS is bounded by the window
     * instead of the trace length. Results are bit-identical to the
     * materialized path for any value. 0 keeps the transparent
     * materialization behavior.
     */
    std::size_t windowAccesses = 0;
    /**
     * Backward-pass chunk size in block accesses for the windowed
     * oracle (bounds the build's peak RSS). 0 = WindowedFuture's
     * default.
     */
    std::size_t oracleChunkAccesses = 0;

    /**
     * Byte budget for the oracle's in-RAM replay state (OPG only).
     * 0 = unbounded (the historical in-memory containers). > 0 runs
     * the spillable oracle tier: half the budget bounds the windowed
     * future's pinned-times map, half bounds the SpillPool behind the
     * deterministic-miss sets and next-use indexes, with overflow
     * pages spilled to unlinked temporary files. Results are
     * bit-identical to the unbounded path for any value. Belady keeps
     * O(capacity) state and ignores the budget.
     */
    std::size_t oracleMemBudget = 0;

    /**
     * Observability fan-out; null disables instrumentation. The
     * runner wires it into the disks, cache, classifier and storage
     * system, installs the timeline snapshot callback, and fills the
     * final summary gauges into the attached metric registry.
     */
    obs::SimObserver *observer = nullptr;

    /**
     * Scoped wall-clock profiler; null disables phase timing. The
     * runner forwards it into the storage system (expand/replay
     * phases) and wraps its own oracle re-pricing pass.
     */
    obs::Profiler *profiler = nullptr;
};

/** Everything a run produces. */
struct ExperimentResult
{
    std::string policyName;
    CacheStats cache;
    EnergyStats energy;               //!< all data disks combined
    std::vector<EnergyStats> perDisk; //!< per data disk
    ResponseStats responses;          //!< system-level (hits included)
    Energy totalEnergy = 0;           //!< + log-device service energy
    std::vector<double> diskMeanInterArrival; //!< post-cache, per disk
    std::vector<uint64_t> diskAccesses;       //!< per disk
    /**
     * WTDU log-device service energy (J); the slice of totalEnergy
     * not covered by perDisk. Zero when the run has no log device.
     */
    Energy logServiceEnergy = 0;
    uint64_t logWrites = 0;
    uint64_t prefetchedBlocks = 0;
    std::size_t numModes = 0; //!< for interpreting the breakdowns
};

/** Display name for a policy kind. */
const char *policyKindName(PolicyKind kind);

/** True for PA-family policies, which need a PaClassifier. */
bool policyNeedsClassifier(PolicyKind kind);

/**
 * True for policies that need the whole future access stream before
 * the run starts (off-line future knowledge, or the infinite-cache
 * sizing rule). These cannot drive a live serving front-end.
 */
bool policyNeedsFuture(PolicyKind kind);

/** First mode below full speed on the power model's lower envelope. */
std::size_t firstEnvelopeNap(const PowerModel &pm);

/**
 * The experiment's PA parameters with intervalThreshold <= 0
 * resolved to the model's break-even time of the first NAP mode.
 */
PaParams resolvePaParams(const ExperimentConfig &config,
                         const PowerModel &pm);

/**
 * Build the replacement policy an ExperimentConfig asks for.
 * @p classifier may be null unless the policy is PA-family;
 * @p capacity sizes ARC/LIRS ghost lists. Exposed so alternative
 * front-ends (the sharded server) assemble per-stripe policies with
 * exactly the runner's construction rules.
 */
std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(const ExperimentConfig &config, const PowerModel &pm,
                      const PaClassifier *classifier, std::size_t capacity);

/** Run one experiment over @p trace. */
ExperimentResult runExperiment(const Trace &trace,
                               const ExperimentConfig &config);

/**
 * Run one experiment by streaming records from @p source (rewinding
 * it first if a pre-scan is needed), so traces larger than RAM can
 * drive the system. The infinite cache sizes itself from a
 * constant-memory pre-scan and streams. Off-line policies (Belady,
 * OPG) need the whole future: with config.windowAccesses == 0 the
 * source is materialized transparently; with it > 0 they run
 * out-of-core on windowed future knowledge over the source's .pct
 * file. Statistics are identical to the in-memory path on the same
 * workload either way.
 */
ExperimentResult runExperiment(tracefmt::TraceSource &source,
                               const ExperimentConfig &config);

} // namespace pacache

#endif // PACACHE_CORE_EXPERIMENT_HH
