/**
 * @file
 * Fault injection for crash-consistency testing (DESIGN.md 5j).
 *
 * A FaultInjector is an optional observer-plus-trigger threaded
 * through the write path: the storage system (and the WTDU log)
 * announce crash *sites* — instants where a real machine could lose
 * power — and notify the injector of every durability-relevant
 * transition (log appends, region retires, data-disk write
 * submission and completion). A null injector (the default
 * everywhere) costs one pointer test per site; a testing injector
 * counts site occurrences and simulates a power failure by throwing
 * CrashException from a chosen crashPoint(), unwinding the run and
 * leaving the persistent state (the WtduLog object and the
 * injector's model of the platters) frozen exactly as the crash
 * found it.
 *
 * The fault model is documented in DESIGN.md section 5j: single
 * region-header (timestamp) writes are atomic, log entry writes may
 * tear (modeled by the entry checksum), and data-disk writes that
 * are in flight at the crash survive as an arbitrary — in tests,
 * seeded — subset (reordered-flush model).
 */

#ifndef PACACHE_CORE_FAULT_HH
#define PACACHE_CORE_FAULT_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/types.hh"

namespace pacache
{

/** Where in the write path a simulated power failure can strike. */
enum class CrashSite : uint8_t
{
    LogAppend = 0, //!< before a WTDU log append touches the region
    LogAppendTorn, //!< mid-append: the entry is on disk, torn
    EagerUpdate,   //!< WBEU: before an eager dirty-block flush
    SpinUp,        //!< a data disk just reached full speed
    RetirePre,     //!< flush durable, region timestamp not yet bumped
    RetirePost,    //!< region timestamp bumped (entries now stale)
    DataWrite,     //!< before a data-disk write request is submitted
    Shutdown,      //!< at shutdown, before the final drain
    Recovery,      //!< between recovery replay/retire steps
};

constexpr std::size_t kNumCrashSites = 9;

/** Stable lower-case identifier (corpus files, reports). */
const char *crashSiteName(CrashSite site);

/** Parse a crashSiteName(); false on unknown names. */
bool parseCrashSite(const std::string &name, CrashSite &out);

/** The simulated power failure, thrown from a crashPoint(). */
class CrashException : public std::runtime_error
{
  public:
    CrashException(CrashSite site_, DiskId disk_);

    CrashSite site;
    DiskId disk;
};

/**
 * One generated fault scenario: power fails at the Nth occurrence of
 * a crash site, and the data-disk writes in flight at that instant
 * survive as a seeded random subset.
 */
struct CrashPlan
{
    bool armed = false; //!< unarmed plans never fire
    CrashSite site = CrashSite::Shutdown;
    uint64_t occurrence = 0; //!< fire on the Nth hit of the site
    uint64_t reorderSeed = 1; //!< seeds the in-flight survival draw
    double surviveProb = 0.5; //!< per in-flight write survival odds
};

/**
 * Crash-site trigger and durability-event observer. Every hook has a
 * no-op default, so production code runs unchanged with a null (or
 * inert) injector; the qa harness overrides them to count sites,
 * model the durable platter state, and throw at the planned point.
 *
 * Not thread-safe: an injector must only be shared by code that is
 * serialized anyway (one replay, or one serve stripe's worker plus
 * the post-join shutdown path).
 */
class FaultInjector
{
  public:
    virtual ~FaultInjector() = default;

    /** A crash site was reached; may throw CrashException. */
    virtual void crashPoint(CrashSite site, DiskId disk)
    {
        (void)site;
        (void)disk;
    }

    /** A WTDU client write was assigned @p version (any path). */
    virtual void noteClientWrite(DiskId disk, BlockNum block,
                                 uint64_t version)
    {
        (void)disk;
        (void)block;
        (void)version;
    }

    /**
     * A log append for @p version completed (entry durable, write
     * acknowledged — the log device is synchronous).
     */
    virtual void noteLogAppend(DiskId disk, BlockNum block,
                               uint64_t version)
    {
        (void)disk;
        (void)block;
        (void)version;
    }

    /** A region retired; its entries are stale from here on. */
    virtual void noteLogRetire(DiskId disk, uint64_t new_stamp)
    {
        (void)disk;
        (void)new_stamp;
    }

    /**
     * A write request for [first, first+count) was submitted to a
     * data disk. @p acks — its completion acknowledges a client
     * write. @return an id for noteDataWriteDurable (0 = untracked).
     */
    virtual uint64_t noteDataWriteSubmitted(DiskId disk, BlockNum first,
                                            uint32_t count, bool acks)
    {
        (void)disk;
        (void)first;
        (void)count;
        (void)acks;
        return 0;
    }

    /** The write submitted as @p id completed (content durable). */
    virtual void noteDataWriteDurable(uint64_t id) { (void)id; }
};

} // namespace pacache

#endif // PACACHE_CORE_FAULT_HH
