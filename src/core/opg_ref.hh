/**
 * @file
 * ReferenceOpgPolicy — the node-based OPG implementation that
 * predated the indexed-heap/ordered-set fast path, retained verbatim
 * so the rewrite stays equivalence-testable forever (the std::list
 * baseline pattern from micro_cache, promoted to a library class
 * because the golden-equivalence suite and micro_opg both replay it).
 *
 * Semantics are identical to OpgPolicy (see core/opg.hh for the
 * algorithm); the differences are purely structural:
 *
 *  - victim order lives in a std::set<EvictKey> (erase+insert per
 *    reprice instead of an O(log n) in-place heap update);
 *  - per-disk deterministic misses live in std::set<std::size_t> and
 *    residents in a std::multimap keyed by next access (linear
 *    equal_range scan on erase);
 *  - gap pricing optionally calls the legacy per-call envelope scan /
 *    threshold walk (refPricing = true, the true pre-fast-path
 *    configuration) instead of the precomputed segment tables.
 */

#ifndef PACACHE_CORE_OPG_REF_HH
#define PACACHE_CORE_OPG_REF_HH

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "cache/policy.hh"
#include "core/opg.hh"
#include "disk/power_model.hh"

namespace pacache
{

/** The retained reference implementation of OPG. */
class ReferenceOpgPolicy : public ReplacementPolicy
{
  public:
    /**
     * @param pm          power model used to price idle periods
     * @param kind        which DPM the disks run (prices E)
     * @param theta       penalty floor in Joules (0 = pure OPG)
     * @param refPricing  price gaps with the legacy envelope scan /
     *                    threshold walk (true = the full pre-rewrite
     *                    hot path) instead of the segment tables
     */
    ReferenceOpgPolicy(const PowerModel &pm, DpmKind kind,
                       Energy theta = 0, bool refPricing = true);

    const char *name() const override { return "OPG-ref"; }

    void prepare(const std::vector<BlockAccess> &accesses) override;

    void beforeMiss(const BlockId &block, Time now,
                    std::size_t idx) override;
    void onAccess(const BlockId &block, Time now, std::size_t idx,
                  bool hit) override;
    void onRemove(const BlockId &block) override;
    BlockId evict(Time now, std::size_t idx) override;
    bool supportsPrefetch() const override { return false; }
    bool isOffline() const override { return true; }

    /** Energy penalty currently assigned to a resident block. */
    Energy penaltyOf(const BlockId &block) const;

    /** Number of deterministic misses currently tracked for a disk. */
    std::size_t deterministicMissCount(DiskId disk) const;

  private:
    struct Info
    {
        std::size_t nextIdx;
        Energy penalty;
    };

    /** Victim-ordering key: min penalty, then furthest next access. */
    struct EvictKey
    {
        Energy penalty;
        std::size_t nextIdx;
        BlockId block;

        bool
        operator<(const EvictKey &o) const
        {
            if (penalty != o.penalty)
                return penalty < o.penalty;
            if (nextIdx != o.nextIdx)
                return nextIdx > o.nextIdx; // furthest first
            return block < o.block;
        }
    };

    Time timeOf(std::size_t idx) const;
    Energy idleEnergy(Time t) const;
    Energy computePenalty(DiskId disk, std::size_t next_idx) const;

    void insertResident(const BlockId &block, std::size_t next_idx);
    void eraseResident(const BlockId &block);
    /** Re-price resident blocks with next access in (lo, hi). */
    void repriceRange(DiskId disk, std::size_t lo, std::size_t hi);
    void detInsert(DiskId disk, std::size_t idx);
    void detErase(DiskId disk, std::size_t idx);

    const PowerModel *pm;
    DpmKind dpmKind;
    Energy theta;
    bool refPricing;

    const std::vector<BlockAccess> *accesses = nullptr;
    FutureKnowledge future;
    Time bigTime = 0; //!< stands in for "no leader/follower"

    std::vector<std::set<std::size_t>> detMiss; //!< per-disk S
    std::vector<std::multimap<std::size_t, BlockId>> residentByNext;
    std::unordered_map<BlockId, Info> info;
    std::set<EvictKey> evictOrder;
};

} // namespace pacache

#endif // PACACHE_CORE_OPG_REF_HH
