#include "core/optimal.hh"

#include <algorithm>
#include <limits>

#include "cache/cache.hh"
#include "util/logging.hh"

namespace pacache
{

namespace
{

/** Price the trailing (never re-activated) gap of one disk. */
Energy
openGapEnergy(const PowerModel &pm, Time gap)
{
    Energy best = pm.mode(0).idlePower * gap;
    for (std::size_t i = 1; i < pm.numModes(); ++i) {
        best = std::min(best, pm.mode(i).idlePower * gap +
                                  pm.mode(i).spinDownEnergy);
    }
    return best;
}

} // namespace

Energy
scheduleEnergy(const std::vector<std::vector<Time>> &miss_times,
               const SchedulePricing &pricing)
{
    const PowerModel &pm = *pricing.pm;
    Energy total = 0;
    for (const auto &times : miss_times) {
        PACACHE_ASSERT(std::is_sorted(times.begin(), times.end()),
                       "miss times must be sorted");
        Time last = 0;
        for (Time t : times) {
            PACACHE_ASSERT(t <= pricing.horizon,
                           "miss beyond the pricing horizon");
            total += pricing.serviceEnergyPerMiss;
            total += pm.envelope(t - last);
            last = t;
        }
        total += openGapEnergy(pm, pricing.horizon - last);
    }
    return total;
}

namespace
{

/** Exhaustive minimum-energy search with exchange-argument pruning. */
class OptimalSolver
{
  public:
    OptimalSolver(const std::vector<BlockAccess> &accs,
                  std::size_t capacity, const SchedulePricing &pricing)
        : accesses(accs), cap(capacity), cfg(pricing),
          future(FutureKnowledge::build(accs))
    {
        std::size_t num_disks = 1;
        for (const auto &a : accs) {
            num_disks =
                std::max<std::size_t>(num_disks, a.block.disk + 1);
        }
        lastMiss.assign(num_disks, 0.0);
    }

    OptimalResult
    solve()
    {
        best = std::numeric_limits<Energy>::infinity();
        dfs(0, 0.0, 0);
        OptimalResult r;
        r.energy = best;
        r.misses = bestMisses;
        r.statesVisited = states;
        return r;
    }

  private:
    struct Resident
    {
        BlockId block;
        std::size_t nextUse;
    };

    Energy
    trailing() const
    {
        Energy e = 0;
        for (Time last : lastMiss)
            e += openGapEnergy(*cfg.pm, cfg.horizon - last);
        return e;
    }

    void
    dfs(std::size_t idx, Energy cost, uint64_t misses)
    {
        ++states;
        if (cost >= best)
            return; // inner-gap costs only grow
        if (idx == accesses.size()) {
            const Energy total = cost + trailing();
            if (total < best) {
                best = total;
                bestMisses = misses;
            }
            return;
        }

        const BlockAccess &acc = accesses[idx];
        auto it = std::find_if(resident.begin(), resident.end(),
                               [&](const Resident &r) {
                                   return r.block == acc.block;
                               });
        if (it != resident.end()) {
            // Hit: refresh the stored next use and move on. Deeper
            // calls may push_back/pop_back (reallocating), so restore
            // through the index, which stays valid.
            const std::size_t pos =
                static_cast<std::size_t>(it - resident.begin());
            const std::size_t saved = resident[pos].nextUse;
            resident[pos].nextUse = future.nextUse(idx);
            dfs(idx + 1, cost, misses);
            resident[pos].nextUse = saved;
            return;
        }

        // Miss: pay the inner gap and the service energy.
        const DiskId d = acc.block.disk;
        const Time prev = lastMiss[d];
        const Energy gap_cost = cfg.pm->envelope(acc.time - prev);
        const Energy new_cost =
            cost + cfg.serviceEnergyPerMiss + gap_cost;
        lastMiss[d] = acc.time;

        if (resident.size() < cap) {
            resident.push_back({acc.block, future.nextUse(idx)});
            dfs(idx + 1, new_cost, misses + 1);
            resident.pop_back();
        } else {
            // Exchange argument (valid under the subadditive Oracle
            // envelope): if some resident block is never used again,
            // evicting it is weakly optimal — no need to branch.
            auto dead = std::find_if(
                resident.begin(), resident.end(), [](const Resident &r) {
                    return r.nextUse == FutureKnowledge::kNever;
                });
            if (dead != resident.end()) {
                const Resident saved = *dead;
                *dead = {acc.block, future.nextUse(idx)};
                dfs(idx + 1, new_cost, misses + 1);
                *dead = saved;
            } else {
                for (std::size_t v = 0; v < resident.size(); ++v) {
                    const Resident saved = resident[v];
                    resident[v] = {acc.block, future.nextUse(idx)};
                    dfs(idx + 1, new_cost, misses + 1);
                    resident[v] = saved;
                }
            }
        }
        lastMiss[d] = prev;
    }

    const std::vector<BlockAccess> &accesses;
    std::size_t cap;
    SchedulePricing cfg;
    FutureKnowledge future;

    std::vector<Resident> resident;
    std::vector<Time> lastMiss;
    Energy best = 0;
    uint64_t bestMisses = 0;
    uint64_t states = 0;
};

} // namespace

OptimalResult
optimalEnergy(const std::vector<BlockAccess> &accesses,
              std::size_t capacity, const SchedulePricing &pricing)
{
    PACACHE_ASSERT(pricing.pm, "pricing needs a power model");
    PACACHE_ASSERT(capacity > 0, "capacity must be positive");
    PACACHE_ASSERT(accesses.empty() ||
                       pricing.horizon >= accesses.back().time,
                   "horizon must cover the stream");
    OptimalSolver solver(accesses, capacity, pricing);
    return solver.solve();
}

Energy
policyScheduleEnergy(const std::vector<BlockAccess> &accesses,
                     std::size_t capacity, ReplacementPolicy &policy,
                     const SchedulePricing &pricing)
{
    std::size_t num_disks = 1;
    for (const auto &a : accesses)
        num_disks = std::max<std::size_t>(num_disks, a.block.disk + 1);

    Cache cache(capacity, policy);
    policy.prepare(accesses);
    std::vector<std::vector<Time>> miss_times(num_disks);
    for (std::size_t i = 0; i < accesses.size(); ++i) {
        if (!cache.access(accesses[i].block, accesses[i].time, i).hit)
            miss_times[accesses[i].block.disk].push_back(
                accesses[i].time);
    }
    return scheduleEnergy(miss_times, pricing);
}

} // namespace pacache
