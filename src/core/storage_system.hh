/**
 * @file
 * StorageSystem — the coupled trace-driven simulator: requests flow
 * through the storage cache (replacement policy + write policy) and
 * misses/flushes drive the disk array with its DPM, exactly the
 * CacheSim + DiskSim pipeline of the paper's methodology.
 *
 * Arrival times come from the trace (open-loop): disk latency delays
 * completions and spin-ups but never shifts arrivals, matching the
 * paper's trace-driven methodology.
 */

#ifndef PACACHE_CORE_STORAGE_SYSTEM_HH
#define PACACHE_CORE_STORAGE_SYSTEM_HH

#include <memory>
#include <optional>
#include <vector>

#include "cache/cache.hh"
#include "core/pa_classifier.hh"
#include "core/write_policy.hh"
#include "core/wtdu_log.hh"
#include "disk/disk_array.hh"
#include "sim/event_queue.hh"
#include "trace/trace.hh"

namespace pacache
{

class FaultInjector;

namespace obs
{
class SimObserver;
class Profiler;
}

namespace tracefmt
{
class TraceSource;
}

/** Configuration for a StorageSystem run. */
struct StorageConfig
{
    WritePolicy writePolicy = WritePolicy::WriteBack;
    /** WBEU: force a disk awake once this many dirty blocks pile up. */
    std::size_t wbeuMaxDirtyPerDisk = 4096;
    /** WTDU: per-disk log region capacity in blocks. */
    std::size_t wtduRegionBlocks = 8192;
    /** Response time charged to cache hits / buffered writes. */
    Time hitLatency = 0.0002;
    /** Cap on coalesced flush request length (blocks). */
    uint32_t maxFlushRun = 128;
    /**
     * Sequential prefetch degree (paper's future-work extension): on
     * a read miss, up to this many following non-resident blocks are
     * fetched in the same disk request while the platters are busy
     * anyway. 0 disables. Incompatible with off-line policies
     * (Belady/OPG), whose future knowledge is positional.
     */
    uint32_t prefetchBlocks = 0;

    /**
     * Lower bound on the accounting horizon's trace-end component.
     * Disk-sharded replay sets this to the full trace's end time so
     * every shard finalizes its disks at the same horizon the
     * unsharded run would use, even though each shard only sees its
     * own sub-trace (whose last arrival is earlier). 0 = no floor.
     * A positive floor also legitimizes an empty streaming shard
     * (a shard whose disks received no requests still idles to the
     * shared horizon).
     */
    Time endTimeFloor = 0;

    /**
     * Observability fan-out (metrics / trace events / timeline /
     * progress). Null disables instrumentation. The same observer
     * should also be wired into the disks, cache, and classifier —
     * runExperiment() does this automatically.
     */
    obs::SimObserver *observer = nullptr;

    /**
     * Scoped wall-clock profiler for the run's own phases (expand,
     * replay, drain). Null disables phase timing.
     */
    obs::Profiler *profiler = nullptr;

    /**
     * Crash/power-fail injector for qa torture runs (DESIGN.md 5j).
     * Null — the default everywhere outside tests — disables every
     * hook at the cost of one pointer test per crash site.
     */
    FaultInjector *fault = nullptr;
};

/** End-to-end simulator for one trace. */
class StorageSystem
{
  public:
    /**
     * @param trace       the workload (not owned; must outlive run())
     * @param eq          event queue (owns simulated time)
     * @param cache       storage cache (policy already attached)
     * @param disks       data-disk array
     * @param config      write policy etc.
     * @param classifier  optional PA classifier to feed
     * @param log_disk    required for WTDU: the always-active log
     *                    device (not part of @p disks)
     */
    StorageSystem(const Trace &trace, EventQueue &eq, Cache &cache,
                  DiskArray &disks, const StorageConfig &config,
                  PaClassifier *classifier = nullptr,
                  Disk *log_disk = nullptr);

    /**
     * Streaming variant: pull records from @p source one at a time so
     * traces larger than RAM can drive the simulation. Requires a
     * policy whose streamReady() holds — on-line policies always, and
     * off-line ones once windowed future knowledge has been attached
     * (prepareWindowed); every record's disk id must be
     * < disks.numDisks().
     */
    StorageSystem(tracefmt::TraceSource &source, EventQueue &eq,
                  Cache &cache, DiskArray &disks,
                  const StorageConfig &config,
                  PaClassifier *classifier = nullptr,
                  Disk *log_disk = nullptr);

    /**
     * Incremental variant: no trace attached; the caller feeds
     * accesses one at a time through step() and closes the run with
     * finish(). This is the kernel facade the sharded serving
     * front-end drives — each serve stripe owns one incremental
     * StorageSystem and pushes its partition of the request stream
     * through it. Requires an on-line replacement policy, exactly
     * like the streaming constructor.
     */
    StorageSystem(EventQueue &eq, Cache &cache, DiskArray &disks,
                  const StorageConfig &config,
                  PaClassifier *classifier = nullptr,
                  Disk *log_disk = nullptr);

    /**
     * Drive the whole trace, drain the event queue, and finalize all
     * disks. Idempotent guard: panics on a second call. Only valid
     * with a trace or source attached (not in incremental mode).
     */
    void run();

    /**
     * Incremental mode: advance simulated time to @p acc.time and
     * process one access — the exact per-request body of the replay
     * loops, so a stream of step() calls reproduces run() on the same
     * access sequence bit for bit. @p idx is the access's position in
     * the stream (feeds policy recency bookkeeping).
     */
    void step(const BlockAccess &acc, std::size_t idx);

    /**
     * Incremental mode: drain the event queue and finalize disk
     * accounting at the same policy-independent horizon run() uses,
     * where @p trace_end is the last request's arrival time. Panics
     * on a second call.
     */
    void finish(Time trace_end);

    /** System-level response times (hits, buffered writes, misses). */
    const ResponseStats &responses() const { return respStats; }

    /** Energy of the data disks plus the log device's service energy
     *  (the log device is assumed always active anyway, so only its
     *  request traffic is charged to the policy — see DESIGN.md). */
    Energy totalEnergy() const;

    /** Number of writes absorbed by the log device (WTDU). */
    uint64_t logWrites() const { return logWriteCount; }

    /** Forced evictions of logged blocks (WTDU corner case). */
    uint64_t loggedEvictions() const { return loggedEvictionCount; }

    /** Blocks fetched speculatively by the sequential prefetcher. */
    uint64_t prefetchedBlocks() const { return prefetchCount; }

    /** Disk accesses issued per data disk (reads + writes). */
    const std::vector<uint64_t> &diskAccesses() const
    {
        return perDiskAccesses;
    }

    const WtduLog *wtduLog() const { return log.get(); }
    /** Mutable log access for crash recovery (qa harness). */
    WtduLog *wtduLog() { return log.get(); }

  private:
    void init();
    void runMaterialized();
    void runStreaming();

    /** Drain the queue and finalize accounting at the fixed horizon. */
    void finishRun(Time trace_end);

    void processAccess(const BlockAccess &acc, std::size_t idx);
    void handleRead(const BlockAccess &acc, std::size_t idx);
    void handleWrite(const BlockAccess &acc, std::size_t idx);
    void handleVictim(const CacheResult &result, Time now);

    /**
     * Submit one block access to a data disk, tagged with the wake
     * cause charged if the disk must spin up for it. @p ack_from,
     * when >= 0, overrides @p arrival as the response-time origin
     * (deferred writes are submitted at retire-completion time but
     * the client has been waiting since the original request).
     */
    void submitDisk(DiskId disk, BlockNum block, uint32_t count,
                    bool write, bool record_response, Time arrival,
                    WakeCause cause, Time ack_from = -1.0);

    /** Coalesce a block set into run-length requests and submit. */
    void flushBlocks(DiskId disk, std::vector<BlockId> blocks,
                     Time now, WakeCause cause);

    /** WBEU/WTDU: flush when a disk reaches full speed. */
    void onDiskActivated(DiskId disk, Time now);

    /**
     * WTDU: flush logged blocks home and schedule the region retire.
     * The retire itself completes only once every outstanding write
     * to the disk is durable (completeRetire) — retiring at submit
     * time would mark the log entries stale while the flush could
     * still be lost to a power failure (exactly-the-acknowledged-
     * writes durability, DESIGN.md 5j).
     */
    void flushLogged(DiskId disk, Time now);

    /** A tracked data-disk write became durable (WTDU only). */
    void writeDurable(DiskId disk, Time now);

    /** Retire the region and release the writes that waited on it. */
    void completeRetire(DiskId disk, Time now);

    /** A client write parked while its disk's region retire is in
     *  flight (appending would race the retire; a direct write could
     *  be overwritten by a stale recovery replay). */
    struct DeferredWrite
    {
        BlockNum block;
        Time arrival;
    };

    /** Per-disk two-phase retire state (WTDU only). */
    struct RetireState
    {
        bool pending = false;     //!< flush submitted, retire queued
        uint64_t outstanding = 0; //!< in-flight writes to the disk
        std::vector<DeferredWrite> deferred;
    };

    const Trace *trace;                      //!< null when streaming
    tracefmt::TraceSource *source = nullptr; //!< null when in-memory
    EventQueue &queue;
    Cache &cache;
    DiskArray &disks;
    StorageConfig cfg;
    PaClassifier *cls;
    Disk *logDisk;
    std::unique_ptr<WtduLog> log;

    ResponseStats respStats;
    std::vector<RetireState> retireState; //!< sized only for WTDU
    std::vector<uint64_t> perDiskAccesses;
    uint64_t logWriteCount = 0;
    uint64_t loggedEvictionCount = 0;
    uint64_t prefetchCount = 0;
    uint64_t nextVersion = 1; //!< payload versions for the WTDU log
    bool ran = false;
};

} // namespace pacache

#endif // PACACHE_CORE_STORAGE_SYSTEM_HH
