#include "core/experiment.hh"

#include <algorithm>
#include <memory>

#include "cache/arc.hh"
#include "cache/belady.hh"
#include "cache/clock.hh"
#include "cache/fifo.hh"
#include "cache/lirs.hh"
#include "cache/lru.hh"
#include "cache/mq.hh"
#include "core/opg.hh"
#include "core/pa_lru.hh"
#include "disk/disk_array.hh"
#include "disk/dpm.hh"
#include "disk/oracle_dpm.hh"
#include "sim/event_queue.hh"
#include "util/logging.hh"

namespace pacache
{

const char *
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::LRU: return "LRU";
      case PolicyKind::FIFO: return "FIFO";
      case PolicyKind::CLOCK: return "CLOCK";
      case PolicyKind::ARC: return "ARC";
      case PolicyKind::MQ: return "MQ";
      case PolicyKind::LIRS: return "LIRS";
      case PolicyKind::Belady: return "Belady";
      case PolicyKind::OPG: return "OPG";
      case PolicyKind::PALRU: return "PA-LRU";
      case PolicyKind::PAARC: return "PA-ARC";
      case PolicyKind::PALIRS: return "PA-LIRS";
      case PolicyKind::InfiniteCache: return "InfiniteCache";
    }
    PACACHE_PANIC("unknown policy kind");
}

namespace
{

/** First mode below full speed that appears on the lower envelope. */
std::size_t
firstEnvelopeNap(const PowerModel &pm)
{
    const auto &env = pm.envelopeModes();
    return env.size() > 1 ? env[1] : pm.deepestMode();
}

std::unique_ptr<ReplacementPolicy>
makePolicy(const ExperimentConfig &cfg, const PowerModel &pm,
           const PaClassifier *classifier, std::size_t capacity)
{
    // OPG prices idle periods with the energy function of the DPM the
    // disks actually run; the adaptive timeout policy is closest to
    // the threshold walk.
    const DpmKind pricing = (cfg.dpm == DpmChoice::Practical ||
                             cfg.dpm == DpmChoice::Adaptive)
        ? DpmKind::Practical
        : DpmKind::Oracle;
    const Energy theta = cfg.opgTheta >= 0
        ? cfg.opgTheta
        : pm.mode(firstEnvelopeNap(pm)).transitionEnergy();

    switch (cfg.policy) {
      case PolicyKind::LRU:
      case PolicyKind::InfiniteCache:
        return std::make_unique<LruPolicy>();
      case PolicyKind::FIFO:
        return std::make_unique<FifoPolicy>();
      case PolicyKind::CLOCK:
        return std::make_unique<ClockPolicy>();
      case PolicyKind::ARC:
        return std::make_unique<ArcPolicy>(capacity);
      case PolicyKind::MQ:
        return std::make_unique<MqPolicy>();
      case PolicyKind::LIRS:
        return std::make_unique<LirsPolicy>(capacity);
      case PolicyKind::Belady:
        return std::make_unique<BeladyPolicy>();
      case PolicyKind::OPG:
        return std::make_unique<OpgPolicy>(pm, pricing, theta);
      case PolicyKind::PALRU:
        PACACHE_ASSERT(classifier, "PA-LRU needs a classifier");
        return std::make_unique<PaLruPolicy>(*classifier);
      case PolicyKind::PAARC:
        PACACHE_ASSERT(classifier, "PA-ARC needs a classifier");
        return std::make_unique<PaDualPolicy>(
            *classifier, std::make_unique<ArcPolicy>(capacity),
            std::make_unique<ArcPolicy>(capacity), "PA-ARC");
      case PolicyKind::PALIRS:
        PACACHE_ASSERT(classifier, "PA-LIRS needs a classifier");
        return std::make_unique<PaDualPolicy>(
            *classifier, std::make_unique<LirsPolicy>(capacity),
            std::make_unique<LirsPolicy>(capacity), "PA-LIRS");
    }
    PACACHE_PANIC("unknown policy kind");
}

} // namespace

ExperimentResult
runExperiment(const Trace &trace, const ExperimentConfig &config)
{
    PACACHE_ASSERT(!trace.empty(), "cannot run an empty trace");

    const PowerModel pm(config.spec);
    const ServiceModel sm(config.spec, config.service);

    const std::size_t num_disks = std::max<std::size_t>(
        trace.numDisks(), 1);

    // Infinite cache: capacity one past the total block volume.
    std::size_t capacity = config.cacheBlocks;
    if (config.policy == PolicyKind::InfiniteCache) {
        uint64_t blocks = 0;
        for (const auto &rec : trace)
            blocks += rec.numBlocks;
        capacity = blocks + 16;
    }

    // Classifier for the PA family.
    std::unique_ptr<PaClassifier> classifier;
    if (config.policy == PolicyKind::PALRU ||
        config.policy == PolicyKind::PAARC ||
        config.policy == PolicyKind::PALIRS) {
        PaParams pa = config.pa;
        if (pa.intervalThreshold <= 0)
            pa.intervalThreshold = pm.breakEvenTime(firstEnvelopeNap(pm));
        classifier = std::make_unique<PaClassifier>(num_disks, pa);
    }

    std::unique_ptr<ReplacementPolicy> policy =
        makePolicy(config, pm, classifier.get(), capacity);
    Cache cache(capacity, *policy);

    EventQueue eq;
    AlwaysOnDpm always_on;
    PracticalDpm practical(pm);
    AdaptiveDpm adaptive(pm);
    Dpm *dpm = &static_cast<Dpm &>(always_on);
    if (config.dpm == DpmChoice::Practical)
        dpm = &practical;
    else if (config.dpm == DpmChoice::Adaptive)
        dpm = &adaptive;

    DiskArray disks(num_disks, eq, pm, sm, *dpm, config.disk);

    std::unique_ptr<Disk> log_disk;
    if (config.storage.writePolicy ==
        WritePolicy::WriteThroughDeferredUpdate) {
        log_disk = std::make_unique<Disk>(
            static_cast<DiskId>(num_disks), eq, pm, sm, always_on);
    }

    StorageSystem system(trace, eq, cache, disks, config.storage,
                         classifier.get(), log_disk.get());
    system.run();

    ExperimentResult result;
    result.policyName = policyKindName(config.policy);
    result.cache = cache.stats();
    result.numModes = pm.numModes();
    result.responses = system.responses();
    result.diskAccesses = system.diskAccesses();
    result.logWrites = system.logWrites();
    result.prefetchedBlocks = system.prefetchedBlocks();

    result.energy = EnergyStats(pm.numModes());
    result.perDisk.reserve(num_disks);
    const OracleAnalyzer oracle(pm);
    for (DiskId d = 0; d < num_disks; ++d) {
        EnergyStats stats = config.dpm == DpmChoice::Oracle
            ? oracle.priceDisk(disks.disk(d)).stats
            : disks.disk(d).energy();
        result.energy += stats;
        result.perDisk.push_back(std::move(stats));
        result.diskMeanInterArrival.push_back(
            disks.disk(d).meanInterArrival());
    }

    result.totalEnergy = result.energy.total();
    if (log_disk)
        result.totalEnergy += log_disk->energy().serviceEnergy;
    return result;
}

} // namespace pacache
