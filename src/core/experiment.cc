#include "core/experiment.hh"

#include <stdlib.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>

#include "cache/arc.hh"
#include "cache/belady.hh"
#include "cache/clock.hh"
#include "cache/fifo.hh"
#include "cache/lirs.hh"
#include "cache/lru.hh"
#include "cache/mq.hh"
#include "core/opg.hh"
#include "core/pa_lru.hh"
#include "disk/disk_array.hh"
#include "disk/dpm.hh"
#include "disk/oracle_dpm.hh"
#include "obs/observer.hh"
#include "obs/profiler.hh"
#include "sim/event_queue.hh"
#include "tracefmt/pct.hh"
#include "tracefmt/trace_source.hh"
#include "util/logging.hh"

namespace pacache
{

const char *
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::LRU: return "LRU";
      case PolicyKind::FIFO: return "FIFO";
      case PolicyKind::CLOCK: return "CLOCK";
      case PolicyKind::ARC: return "ARC";
      case PolicyKind::MQ: return "MQ";
      case PolicyKind::LIRS: return "LIRS";
      case PolicyKind::Belady: return "Belady";
      case PolicyKind::OPG: return "OPG";
      case PolicyKind::PALRU: return "PA-LRU";
      case PolicyKind::PAARC: return "PA-ARC";
      case PolicyKind::PALIRS: return "PA-LIRS";
      case PolicyKind::InfiniteCache: return "InfiniteCache";
    }
    PACACHE_PANIC("unknown policy kind");
}

bool
policyNeedsClassifier(PolicyKind kind)
{
    return kind == PolicyKind::PALRU || kind == PolicyKind::PAARC ||
           kind == PolicyKind::PALIRS;
}

bool
policyNeedsFuture(PolicyKind kind)
{
    return kind == PolicyKind::Belady || kind == PolicyKind::OPG ||
           kind == PolicyKind::InfiniteCache;
}

std::size_t
firstEnvelopeNap(const PowerModel &pm)
{
    // First mode below full speed that appears on the lower envelope.
    const auto &env = pm.envelopeModes();
    return env.size() > 1 ? env[1] : pm.deepestMode();
}

PaParams
resolvePaParams(const ExperimentConfig &config, const PowerModel &pm)
{
    PaParams pa = config.pa;
    if (pa.intervalThreshold <= 0)
        pa.intervalThreshold = pm.breakEvenTime(firstEnvelopeNap(pm));
    return pa;
}

namespace
{

/**
 * OPG prices idle periods with the energy function of the DPM the
 * disks actually run; the adaptive timeout policy is closest to the
 * threshold walk.
 */
DpmKind
opgPricing(const ExperimentConfig &cfg)
{
    return (cfg.dpm == DpmChoice::Practical ||
            cfg.dpm == DpmChoice::Adaptive)
        ? DpmKind::Practical
        : DpmKind::Oracle;
}

Energy
opgThetaOf(const ExperimentConfig &cfg, const PowerModel &pm)
{
    return cfg.opgTheta >= 0
        ? cfg.opgTheta
        : pm.mode(firstEnvelopeNap(pm)).transitionEnergy();
}

} // namespace

std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(const ExperimentConfig &cfg, const PowerModel &pm,
                      const PaClassifier *classifier, std::size_t capacity)
{
    const DpmKind pricing = opgPricing(cfg);
    const Energy theta = opgThetaOf(cfg, pm);

    switch (cfg.policy) {
      case PolicyKind::LRU:
      case PolicyKind::InfiniteCache:
        return std::make_unique<LruPolicy>();
      case PolicyKind::FIFO:
        return std::make_unique<FifoPolicy>();
      case PolicyKind::CLOCK:
        return std::make_unique<ClockPolicy>();
      case PolicyKind::ARC:
        return std::make_unique<ArcPolicy>(capacity);
      case PolicyKind::MQ:
        return std::make_unique<MqPolicy>();
      case PolicyKind::LIRS:
        return std::make_unique<LirsPolicy>(capacity);
      case PolicyKind::Belady:
        return std::make_unique<BeladyPolicy>();
      case PolicyKind::OPG:
        if (cfg.oracleMemBudget > 0) {
            return std::make_unique<SpilledOpgPolicy>(
                pm, pricing, theta, cfg.oracleMemBudget);
        }
        return std::make_unique<OpgPolicy>(pm, pricing, theta);
      case PolicyKind::PALRU:
        PACACHE_ASSERT(classifier, "PA-LRU needs a classifier");
        return std::make_unique<PaLruPolicy>(*classifier);
      case PolicyKind::PAARC:
        PACACHE_ASSERT(classifier, "PA-ARC needs a classifier");
        return std::make_unique<PaDualPolicy>(
            *classifier, std::make_unique<ArcPolicy>(capacity),
            std::make_unique<ArcPolicy>(capacity), "PA-ARC");
      case PolicyKind::PALIRS:
        PACACHE_ASSERT(classifier, "PA-LIRS needs a classifier");
        return std::make_unique<PaDualPolicy>(
            *classifier, std::make_unique<LirsPolicy>(capacity),
            std::make_unique<LirsPolicy>(capacity), "PA-LIRS");
    }
    PACACHE_PANIC("unknown policy kind");
}

namespace
{

/**
 * Out-of-core oracle request: build windowed future knowledge over
 * this .pct file and stream the replay instead of materializing.
 */
struct WindowedSetup
{
    std::string pctPath;
    std::size_t windowEntries;
    std::size_t chunkAccesses; //!< 0 = WindowedFuture default
};

/**
 * Shared experiment body: exactly one of @p trace / @p source is
 * non-null and picks the in-memory or streaming drive path.
 * @p windowed (streaming off-line runs only) carries the
 * out-of-core oracle request.
 */
ExperimentResult
runExperimentImpl(const Trace *trace, tracefmt::TraceSource *source,
                  std::size_t num_disks, const ExperimentConfig &config,
                  const WindowedSetup *windowed = nullptr)
{
    const PowerModel pm(config.spec);
    const ServiceModel sm(config.spec, config.service);

    // Infinite cache: capacity one past the total block volume —
    // summed from the trace, or from a constant-memory pre-scan when
    // streaming.
    std::size_t capacity = config.cacheBlocks;
    if (config.policy == PolicyKind::InfiniteCache) {
        uint64_t blocks = 0;
        if (trace) {
            for (const auto &rec : *trace)
                blocks += rec.numBlocks;
        } else {
            blocks = tracefmt::scan(*source).blocks;
        }
        capacity = static_cast<std::size_t>(blocks) + 16;
    }

    // Classifier for the PA family.
    std::unique_ptr<PaClassifier> classifier;
    if (policyNeedsClassifier(config.policy)) {
        classifier = std::make_unique<PaClassifier>(
            num_disks, resolvePaParams(config, pm));
    }

    std::unique_ptr<ReplacementPolicy> policy;
    if (windowed) {
        // Out-of-core off-line run: the backward pass over the .pct
        // file replaces prepare()'s whole-trace oracle indexing.
        obs::ProfileScope scope(config.profiler, "oracle_precompute");
        WindowedFuture::Options wopts;
        wopts.windowEntries = windowed->windowEntries;
        if (windowed->chunkAccesses > 0)
            wopts.chunkAccesses = windowed->chunkAccesses;
        wopts.pinTimes = config.policy == PolicyKind::OPG;
        // Budgeted oracle: half bounds the pinned-times map, half
        // the policy's SpillPool (max() keeps a 1-byte budget — the
        // fuzzer's "tightest possible" probe — in budgeted mode).
        const std::size_t budget = config.oracleMemBudget;
        if (wopts.pinTimes && budget > 0)
            wopts.pinnedBudgetBytes =
                std::max<std::size_t>(budget / 2, 1);
        WindowedFuture fut(windowed->pctPath, wopts);
        if (config.policy == PolicyKind::OPG) {
            if (budget > 0) {
                auto opg = std::make_unique<SpilledWindowedOpgPolicy>(
                    pm, opgPricing(config), opgThetaOf(config, pm),
                    std::max<std::size_t>(budget / 2, 1));
                opg->prepareWindowed(std::move(fut));
                policy = std::move(opg);
            } else {
                auto opg = std::make_unique<WindowedOpgPolicy>(
                    pm, opgPricing(config), opgThetaOf(config, pm));
                opg->prepareWindowed(std::move(fut));
                policy = std::move(opg);
            }
        } else {
            PACACHE_ASSERT(config.policy == PolicyKind::Belady,
                           "windowed oracle supports Belady/OPG only");
            auto min = std::make_unique<WindowedBeladyPolicy>();
            min->prepareWindowed(std::move(fut));
            policy = std::move(min);
        }
    } else {
        policy = makeReplacementPolicy(config, pm, classifier.get(),
                                       capacity);
    }
    Cache cache(capacity, *policy);

    EventQueue eq;
    AlwaysOnDpm always_on;
    PracticalDpm practical(pm);
    AdaptiveDpm adaptive(pm);
    Dpm *dpm = &static_cast<Dpm &>(always_on);
    if (config.dpm == DpmChoice::Practical)
        dpm = &practical;
    else if (config.dpm == DpmChoice::Adaptive)
        dpm = &adaptive;

    const bool wtdu = config.storage.writePolicy ==
                      WritePolicy::WriteThroughDeferredUpdate;

    // Observability wiring. configureRun() must precede disk
    // construction (the constructor reports the initial power state).
    obs::SimObserver *observer = config.observer;
    DiskOptions disk_opts = config.disk;
    StorageConfig storage_cfg = config.storage;
    storage_cfg.profiler = config.profiler;
    if (observer) {
        std::vector<std::string> mode_names;
        for (std::size_t m = 0; m < pm.numModes(); ++m)
            mode_names.push_back(pm.mode(m).name);
        observer->configureRun(num_disks, wtdu, std::move(mode_names));
        disk_opts.observer = observer;
        storage_cfg.observer = observer;
        cache.setObserver(observer);
        if (classifier) {
            classifier->setObserver(observer);
            const PaClassifier *cls = classifier.get();
            observer->setPriorityFn([cls, num_disks](DiskId d) {
                return d < num_disks && cls->isPriority(d);
            });
        }
    }

    DiskArray disks(num_disks, eq, pm, sm, *dpm, disk_opts);

    std::unique_ptr<Disk> log_disk;
    if (wtdu) {
        DiskOptions log_opts;
        log_opts.observer = disk_opts.observer;
        log_disk = std::make_unique<Disk>(
            static_cast<DiskId>(num_disks), eq, pm, sm, always_on,
            log_opts);
    }

    std::unique_ptr<StorageSystem> system_ptr;
    if (trace) {
        system_ptr = std::make_unique<StorageSystem>(
            *trace, eq, cache, disks, storage_cfg, classifier.get(),
            log_disk.get());
    } else {
        system_ptr = std::make_unique<StorageSystem>(
            *source, eq, cache, disks, storage_cfg, classifier.get(),
            log_disk.get());
    }
    StorageSystem &system = *system_ptr;

    if (observer) {
        const PaClassifier *cls = classifier.get();
        observer->setSnapshotFn([&pm, &cache, &disks, &system, cls,
                                 num_disks](obs::TimelineSnapshot &s) {
            const CacheStats &cs = cache.stats();
            s.accesses = cs.accesses;
            s.hits = cs.hits;
            s.missesPerDisk = system.diskAccesses();
            EnergyStats agg(pm.numModes());
            for (DiskId d = 0; d < num_disks; ++d)
                agg += disks.disk(d).energy();
            s.idleEnergyPerMode = agg.idleEnergyPerMode;
            s.serviceEnergy = agg.serviceEnergy;
            s.spinUpEnergy = agg.spinUpEnergy;
            s.spinDownEnergy = agg.spinDownEnergy;
            s.spinUps = agg.spinUps;
            s.spinDowns = agg.spinDowns;
            const ResponseStats &rs = system.responses();
            s.responseCount = rs.count();
            s.responseSum = rs.sum();
            if (cls) {
                for (DiskId d = 0; d < num_disks; ++d) {
                    if (cls->isPriority(d))
                        s.prioritySet.push_back(d);
                }
            }
        });
    }

    system.run();

    ExperimentResult result;
    result.policyName = policyKindName(config.policy);
    result.cache = cache.stats();
    result.numModes = pm.numModes();
    result.responses = system.responses();
    result.diskAccesses = system.diskAccesses();
    result.logWrites = system.logWrites();
    result.prefetchedBlocks = system.prefetchedBlocks();

    result.energy = EnergyStats(pm.numModes());
    result.perDisk.reserve(num_disks);
    const OracleAnalyzer oracle(pm);
    {
        obs::ProfileScope pricing_scope(
            config.dpm == DpmChoice::Oracle ? config.profiler
                                            : nullptr,
            "oracle_pricing");
        for (DiskId d = 0; d < num_disks; ++d) {
            EnergyStats stats = config.dpm == DpmChoice::Oracle
                ? oracle.priceDisk(disks.disk(d)).stats
                : disks.disk(d).energy();
            result.energy += stats;
            result.perDisk.push_back(std::move(stats));
            result.diskMeanInterArrival.push_back(
                disks.disk(d).meanInterArrival());
        }
    }

    result.totalEnergy = result.energy.total();
    if (log_disk) {
        result.logServiceEnergy = log_disk->energy().serviceEnergy;
        result.totalEnergy += result.logServiceEnergy;
    }

    // Final summary gauges: the registry snapshot then reports the
    // exact values the CLI report prints.
    if (obs::MetricRegistry *reg =
            observer ? observer->metrics() : nullptr) {
        reg->gauge("energy.total_joules").set(result.totalEnergy);
        reg->gauge("energy.service_joules")
            .set(result.energy.serviceEnergy);
        reg->gauge("energy.spinup_joules").set(result.energy.spinUpEnergy);
        reg->gauge("energy.spindown_joules")
            .set(result.energy.spinDownEnergy);
        Energy idle = 0;
        for (const Energy e : result.energy.idleEnergyPerMode)
            idle += e;
        reg->gauge("energy.idle_joules").set(idle);
        reg->gauge("cache.hit_ratio").set(result.cache.hitRatio());
        reg->gauge("responses.mean_ms")
            .set(result.responses.mean() * 1e3);
        reg->gauge("responses.p95_ms")
            .set(result.responses.percentile(0.95) * 1e3);
        reg->gauge("responses.max_s").set(result.responses.max());
        for (DiskId d = 0; d < num_disks; ++d) {
            reg->gauge("disk." + std::to_string(d) + ".energy_joules")
                .set(result.perDisk[d].total());
        }
        if (log_disk) {
            reg->gauge("log_device.service_joules")
                .set(log_disk->energy().serviceEnergy);
        }
    }
    return result;
}

} // namespace

ExperimentResult
runExperiment(const Trace &trace, const ExperimentConfig &config)
{
    PACACHE_ASSERT(!trace.empty(), "cannot run an empty trace");
    return runExperimentImpl(
        &trace, nullptr, std::max<std::size_t>(trace.numDisks(), 1),
        config);
}

namespace
{

/** A named temp .pct, unlinked when the spill goes out of scope. */
struct PctSpill
{
    std::string path;

    ~PctSpill()
    {
        if (!path.empty())
            ::unlink(path.c_str());
    }

    void
    create()
    {
        const char *env = ::getenv("TMPDIR");
        std::string templ = (env && *env ? std::string(env)
                                         : std::string("/tmp")) +
                            "/pacache-spill-XXXXXX.pct";
        std::vector<char> buf(templ.begin(), templ.end());
        buf.push_back('\0');
        const int fd = ::mkstemps(buf.data(), 4);
        if (fd < 0) {
            PACACHE_FATAL("cannot create spill file '", buf.data(),
                          "': ", std::strerror(errno));
        }
        ::close(fd);
        path.assign(buf.data());
    }
};

} // namespace

ExperimentResult
runExperiment(tracefmt::TraceSource &source,
              const ExperimentConfig &config)
{
    // Off-line future knowledge needs the whole access stream before
    // the run starts: materialize by default, or run out-of-core on
    // the windowed oracle when a window was requested.
    const bool offline = config.policy == PolicyKind::Belady ||
                         config.policy == PolicyKind::OPG;
    if (offline && config.windowAccesses == 0) {
        const Trace trace = tracefmt::readAll(source);
        return runExperiment(trace, config);
    }

    // Disk-array sizing: take the header hint when the format has
    // one (.pct, memory), else a constant-memory pre-scan pass.
    uint64_t num_disks = source.numDisksHint();
    if (num_disks == tracefmt::TraceSource::kUnknown)
        num_disks = tracefmt::scan(source).numDisks;
    const std::size_t disks =
        std::max<std::size_t>(static_cast<std::size_t>(num_disks), 1);

    if (!offline)
        return runExperimentImpl(nullptr, &source, disks, config);

    // The backward pass needs random access to the records: use the
    // source's own .pct file, or spill the stream to a temporary one
    // (a single sequential pass, never materialized).
    WindowedSetup setup;
    setup.windowEntries = config.windowAccesses;
    setup.chunkAccesses = config.oracleChunkAccesses;
    setup.pctPath = source.pctPath();
    PctSpill spill;
    if (setup.pctPath.empty()) {
        spill.create();
        tracefmt::writePct(spill.path, source);
        source.rewind();
        setup.pctPath = spill.path;
    }
    return runExperimentImpl(nullptr, &source, disks, config, &setup);
}

} // namespace pacache
