/**
 * @file
 * The PA epoch-based disk classifier (paper Section 4).
 *
 * Per epoch (15 minutes by default) and per disk, PA tracks:
 *  1. the fraction of requests that are *cold misses* — first-ever
 *     accesses to their block, detected with a Bloom filter (never a
 *     false negative, rare false positives), and
 *  2. the distribution of idle-interval lengths between consecutive
 *     *disk* accesses (the request stream after cache filtering),
 *     via a histogram approximating the CDF F(x) (Figure 5).
 *
 * At each epoch boundary a disk is classified as "priority" iff its
 * cold-miss fraction is at most alpha AND the inverse CDF at
 * cumulative probability p is at least the interval threshold
 * (break-even time of the first NAP mode by default); otherwise it
 * is "regular". Blocks of priority disks are kept in the cache
 * preferentially so those disks can sleep longer.
 */

#ifndef PACACHE_CORE_PA_CLASSIFIER_HH
#define PACACHE_CORE_PA_CLASSIFIER_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"
#include "util/bloom_filter.hh"
#include "util/histogram.hh"

namespace pacache
{

namespace obs
{
class SimObserver;
}

/** PA classification parameters (paper Section 5.1 defaults). */
struct PaParams
{
    Time epochLength = 900;         //!< 15 minutes
    double coldMissThreshold = 0.5; //!< alpha
    double cumulativeProb = 0.8;    //!< p
    Time intervalThreshold = 10.0;  //!< T; set from the power model
    std::size_t bloomBits = 1u << 22;
    std::size_t bloomHashes = 4;
    uint64_t minEpochSamples = 2;   //!< keep old class below this
};

/**
 * The per-disk accumulators of one classification epoch: request and
 * cold-miss counts plus the idle-interval histogram.
 *
 * Factored out of the classifier so concurrent front-ends can keep
 * one accumulator per shard and combine them at the epoch boundary:
 * merge() adds bucket counts and integer tallies, which is
 * commutative and associative, so K per-shard accumulators merged in
 * any order equal one accumulator fed the interleaved request set —
 * the property the serve-mode epoch-merge protocol (DESIGN.md 5g)
 * and the shard_merge_equivalence fuzz property rely on.
 */
struct PaEpochStats
{
    /** One disk's epoch accumulators. */
    struct DiskEpoch
    {
        uint64_t accesses = 0; //!< requests seen this epoch
        uint64_t cold = 0;     //!< thereof first-ever block touches
        IntervalHistogram intervals; //!< post-cache idle intervals

        DiskEpoch();
        void reset();
        void merge(const DiskEpoch &other);
    };

    explicit PaEpochStats(std::size_t num_disks);

    /** Count one pre-cache request (and whether it was cold). */
    void noteRequest(DiskId disk, bool cold_miss);

    /** Record one post-cache idle interval (seconds). */
    void noteInterval(DiskId disk, Time interval);

    /** Clear every disk's accumulators (new epoch). */
    void reset();

    /** Element-wise commutative merge; disk counts must match. */
    void merge(const PaEpochStats &other);

    std::size_t numDisks() const { return perDisk.size(); }
    const DiskEpoch &disk(DiskId d) const { return perDisk[d]; }

    std::vector<DiskEpoch> perDisk;
};

/** Outcome of applying the classification rule to one disk epoch. */
struct PaClassification
{
    bool decided = false;      //!< enough evidence to (re)classify
    bool priority = false;     //!< the new class, valid when decided
    bool haveQuantile = false; //!< quantile evaluated (disk was hit)
    double coldFraction = 0.0;
    Time quantile = 0.0;
};

/**
 * The pure epoch-boundary classification rule (paper Section 4): a
 * disk is priority iff its cold-miss fraction is at most alpha and
 * F^{-1}(p) of its idle intervals is at least the interval
 * threshold; a disk whose requests were absorbed entirely by the
 * cache is judged on the cold fraction alone; a disk with too few
 * samples is left undecided (keep the previous class). Exposed so
 * the sharded server can classify from merged epoch stats with
 * exactly the classifier's rule.
 */
PaClassification classifyDiskEpoch(const PaEpochStats::DiskEpoch &epoch,
                                   const PaParams &params);

/** Epoch-based regular/priority disk classifier. */
class PaClassifier
{
  public:
    PaClassifier(std::size_t num_disks, const PaParams &params);

    /**
     * Every request to the storage system (pre-cache). Rolls the
     * epoch over when due and feeds the cold-miss statistics.
     */
    void onRequest(DiskId disk, const BlockId &block, Time now);

    /** Every access that reaches a disk (post-cache). */
    void onDiskAccess(DiskId disk, Time now);

    /** Current classification. */
    bool isPriority(DiskId disk) const { return priority[disk]; }

    /** Number of completed epochs. */
    uint64_t epochsCompleted() const { return epochs; }

    /** Cold-miss fraction observed in the previous epoch. */
    double lastColdMissFraction(DiskId disk) const
    {
        return lastColdFraction[disk];
    }

    /** F^{-1}(p) observed in the previous epoch (seconds). */
    Time lastIntervalQuantile(DiskId disk) const
    {
        return lastQuantile[disk];
    }

    const PaParams &params() const { return p; }

    /** The (still-open) current epoch's accumulators. */
    const PaEpochStats &epochStats() const { return epoch; }

    /** Attach an observability fan-out: epoch boundaries and class
     *  flips become trace instants and metric counters. */
    void setObserver(obs::SimObserver *observer) { obs = observer; }

  private:
    void rollEpoch(Time now);

    PaParams p;
    obs::SimObserver *obs = nullptr; //!< null = no instrumentation
    BloomFilter bloom;
    Time epochEnd;
    uint64_t epochs = 0;

    // Current epoch accumulators (mergeable; see PaEpochStats):
    PaEpochStats epoch;
    std::vector<Time> lastDiskAccess; //!< persists across epochs

    // Classification state:
    std::vector<bool> priority;
    std::vector<double> lastColdFraction;
    std::vector<Time> lastQuantile;
};

} // namespace pacache

#endif // PACACHE_CORE_PA_CLASSIFIER_HH
