#include "core/storage_system.hh"

#include <algorithm>

#include "core/fault.hh"
#include "obs/observer.hh"
#include "obs/profiler.hh"
#include "tracefmt/trace_source.hh"
#include "util/logging.hh"

namespace pacache
{

StorageSystem::StorageSystem(const Trace &trace_, EventQueue &eq,
                             Cache &cache_, DiskArray &disks_,
                             const StorageConfig &config,
                             PaClassifier *classifier, Disk *log_disk)
    : trace(&trace_), queue(eq), cache(cache_), disks(disks_),
      cfg(config), cls(classifier), logDisk(log_disk),
      perDiskAccesses(disks_.numDisks(), 0)
{
    init();
}

StorageSystem::StorageSystem(tracefmt::TraceSource &source_,
                             EventQueue &eq, Cache &cache_,
                             DiskArray &disks_,
                             const StorageConfig &config,
                             PaClassifier *classifier, Disk *log_disk)
    : trace(nullptr), source(&source_), queue(eq), cache(cache_),
      disks(disks_), cfg(config), cls(classifier), logDisk(log_disk),
      perDiskAccesses(disks_.numDisks(), 0)
{
    PACACHE_ASSERT(cache.policy().streamReady(),
                   "streaming runs need an on-line policy or windowed "
                   "future knowledge; materialize the trace for ",
                   cache.policy().name());
    init();
}

StorageSystem::StorageSystem(EventQueue &eq, Cache &cache_,
                             DiskArray &disks_,
                             const StorageConfig &config,
                             PaClassifier *classifier, Disk *log_disk)
    : trace(nullptr), queue(eq), cache(cache_), disks(disks_),
      cfg(config), cls(classifier), logDisk(log_disk),
      perDiskAccesses(disks_.numDisks(), 0)
{
    PACACHE_ASSERT(!cache.policy().isOffline(),
                   "incremental runs need an on-line policy; ",
                   cache.policy().name(), " wants the whole future");
    init();
}

void
StorageSystem::init()
{
    if (cfg.writePolicy == WritePolicy::WriteThroughDeferredUpdate) {
        PACACHE_ASSERT(logDisk != nullptr, "WTDU needs a log device");
        log = std::make_unique<WtduLog>(disks.numDisks(),
                                        cfg.wtduRegionBlocks);
        log->setFaultInjector(cfg.fault);
        retireState.resize(disks.numDisks());
    }
    PACACHE_ASSERT(cfg.prefetchBlocks == 0 ||
                       cache.policy().supportsPrefetch(),
                   "prefetch is incompatible with off-line policies");

    const bool wants_activation_hook =
        cfg.writePolicy == WritePolicy::WriteBackEagerUpdate ||
        cfg.writePolicy == WritePolicy::WriteThroughDeferredUpdate;
    if (wants_activation_hook) {
        for (DiskId d = 0; d < disks.numDisks(); ++d) {
            disks.disk(d).setOnActivated([this, d](Time now) {
                onDiskActivated(d, now);
            });
        }
    }
}

void
StorageSystem::run()
{
    PACACHE_ASSERT(trace || source,
                   "incremental StorageSystem has no trace to run; "
                   "drive it with step()/finish()");
    PACACHE_ASSERT(!ran, "StorageSystem::run called twice");
    ran = true;
    if (source)
        runStreaming();
    else
        runMaterialized();
}

void
StorageSystem::step(const BlockAccess &acc, std::size_t idx)
{
    PACACHE_ASSERT(!trace && !source,
                   "step() is for incremental mode; use run()");
    PACACHE_ASSERT(!ran, "step() after finish()");
    queue.runUntil(acc.time);
    processAccess(acc, idx);
}

void
StorageSystem::finish(Time trace_end)
{
    PACACHE_ASSERT(!trace && !source,
                   "finish() is for incremental mode; use run()");
    PACACHE_ASSERT(!ran, "StorageSystem::finish called twice");
    ran = true;
    finishRun(trace_end);
}

void
StorageSystem::runMaterialized()
{
    std::vector<BlockAccess> accesses;
    {
        obs::ProfileScope scope(cfg.profiler, "expand_trace");
        accesses = expandTrace(*trace);
    }
    {
        // Off-line policies (Belady/OPG) index the whole future
        // here; on-line policies return immediately.
        obs::ProfileScope scope(cfg.profiler, "oracle_precompute");
        cache.policy().prepare(accesses);
    }

    obs::SimObserver *observer = cfg.observer;
    if (observer)
        observer->runBegin(accesses.size(), trace->endTime());

    {
        obs::ProfileScope scope(cfg.profiler, "replay");
        for (std::size_t i = 0; i < accesses.size(); ++i) {
            queue.runUntil(accesses[i].time);
            processAccess(accesses[i], i);
            if (observer)
                observer->requestProcessed(accesses[i].time);
        }
    }

    finishRun(trace->endTime());
}

void
StorageSystem::runStreaming()
{
    // On-line policies ignore prepare(); guaranteed by the ctor.
    obs::SimObserver *observer = cfg.observer;
    if (observer) {
        const uint64_t hint = source->sizeHint();
        observer->runBegin(
            hint == tracefmt::TraceSource::kUnknown
                ? 0
                : static_cast<std::size_t>(hint),
            std::max<Time>(source->endTimeHint(), 0.0));
    }

    TraceRecord rec;
    std::size_t idx = 0;
    std::size_t records = 0;
    Time end_time = 0;
    {
        obs::ProfileScope scope(cfg.profiler, "replay");
        while (source->next(rec)) {
            for (uint32_t b = 0; b < rec.numBlocks; ++b) {
                const BlockAccess acc{rec.time,
                                      BlockId{rec.disk, rec.block + b},
                                      rec.write, records};
                queue.runUntil(acc.time);
                processAccess(acc, idx++);
                if (observer)
                    observer->requestProcessed(acc.time);
            }
            end_time = rec.time;
            ++records;
        }
    }
    PACACHE_ASSERT(records > 0 || cfg.endTimeFloor > 0,
                   "cannot run an empty trace");

    finishRun(end_time);
}

void
StorageSystem::finishRun(Time trace_end)
{
    // Drain in-flight services, spin-ups, and demotion chains, then
    // close every disk's accounting at a horizon that depends only on
    // the trace and the power model — NOT on run dynamics — so that
    // energies are comparable across policies and DPM choices.
    obs::ProfileScope scope(cfg.profiler, "drain_finalize");
    if (cfg.fault)
        cfg.fault->crashPoint(CrashSite::Shutdown, 0);
    queue.runAll();
    const Time end = std::max(trace_end, cfg.endTimeFloor);
    const PowerModel &pm = disks.powerModel();
    const Time tail =
        (pm.thresholds().empty() ? 0.0 : pm.thresholds().back()) +
        pm.mode(pm.deepestMode()).transitionTime() + 10.0;
    const Time horizon = std::max(end + tail, queue.now());
    disks.finalize(horizon);
    if (logDisk)
        logDisk->finalize(horizon);
    if (cfg.observer)
        cfg.observer->runEnd(horizon);
}

void
StorageSystem::processAccess(const BlockAccess &acc, std::size_t idx)
{
    if (cls)
        cls->onRequest(acc.block.disk, acc.block, acc.time);
    if (acc.write)
        handleWrite(acc, idx);
    else
        handleRead(acc, idx);
}

void
StorageSystem::handleRead(const BlockAccess &acc, std::size_t idx)
{
    const Time now = acc.time;
    const CacheResult result = cache.access(acc.block, now, idx);
    if (result.hit) {
        respStats.record(cfg.hitLatency);
        return;
    }

    // Sequential prefetch: extend the fetch over the following
    // non-resident blocks — the platters are paying for this seek and
    // rotation anyway.
    uint32_t run = 1;
    if (cfg.prefetchBlocks > 0) {
        while (run <= cfg.prefetchBlocks &&
               !cache.contains(
                   BlockId{acc.block.disk, acc.block.block + run})) {
            ++run;
        }
    }

    submitDisk(acc.block.disk, acc.block.block, run, false, true, now,
               result.coldMiss ? WakeCause::DemandColdMiss
                               : WakeCause::CapacityMiss);
    handleVictim(result, now);
    for (uint32_t b = 1; b < run; ++b) {
        const CacheResult pf = cache.insert(
            BlockId{acc.block.disk, acc.block.block + b}, now, idx);
        if (!pf.hit)
            ++prefetchCount;
        handleVictim(pf, now);
    }
}

void
StorageSystem::handleWrite(const BlockAccess &acc, std::size_t idx)
{
    const Time now = acc.time;
    const DiskId d = acc.block.disk;
    const CacheResult result = cache.access(acc.block, now, idx);

    switch (cfg.writePolicy) {
      case WritePolicy::WriteThrough:
        handleVictim(result, now);
        submitDisk(d, acc.block.block, 1, true, true, now,
                   WakeCause::DemandWrite);
        break;

      case WritePolicy::WriteBack:
        cache.markDirty(acc.block);
        handleVictim(result, now);
        respStats.record(cfg.hitLatency);
        break;

      case WritePolicy::WriteBackEagerUpdate: {
        cache.markDirty(acc.block);
        handleVictim(result, now);
        respStats.record(cfg.hitLatency);
        if (cache.dirtyCount(d) >= cfg.wbeuMaxDirtyPerDisk) {
            // Dirty backlog cap reached: force the disk awake and
            // flush everything (the submits trigger the spin-up).
            if (cfg.fault)
                cfg.fault->crashPoint(CrashSite::EagerUpdate, d);
            std::vector<BlockId> dirty = cache.dirtyBlocksOf(d);
            if (cfg.observer)
                cfg.observer->wbeuForcedWake(d, dirty.size(), now);
            for (const BlockId &b : dirty)
                cache.markClean(b);
            flushBlocks(d, std::move(dirty), now,
                        WakeCause::WbeuForcedWake);
        }
        break;
      }

      case WritePolicy::WriteThroughDeferredUpdate: {
        handleVictim(result, now);
        RetireState &rs = retireState[d];
        if (!rs.pending && disks.disk(d).atFullSpeed()) {
            // The destination is awake: plain write-through.
            cache.clearLogged(acc.block);
            const uint64_t version = nextVersion++;
            if (cfg.fault)
                cfg.fault->noteClientWrite(d, acc.block.block, version);
            submitDisk(d, acc.block.block, 1, true, true, now,
                       WakeCause::DemandWrite);
            break;
        }
        if (!rs.pending && log->full(d))
            flushLogged(d, now); // wakes the disk; schedules a retire
        if (rs.pending) {
            // A retire is in flight: the region is still full (its
            // entries stay live until the flush is durable), and a
            // direct write now could be overwritten by a stale entry
            // if recovery ran after a crash. The write waits; it is
            // acknowledged when it completes as a write-through after
            // the retire (completeRetire submits it).
            rs.deferred.push_back(DeferredWrite{acc.block.block, now});
            break;
        }
        const BlockNum log_block =
            static_cast<BlockNum>(d) * log->regionBlocks() +
            log->used(d);
        if (cfg.fault)
            cfg.fault->crashPoint(CrashSite::LogAppend, d);
        const uint64_t version = nextVersion++;
        if (cfg.fault)
            cfg.fault->noteClientWrite(d, acc.block.block, version);
        const bool ok = log->append(d, acc.block.block, version);
        PACACHE_ASSERT(ok, "WTDU log region still full after flush");
        // The log device is synchronous: the append returning is the
        // acknowledgement of this write.
        if (cfg.fault)
            cfg.fault->noteLogAppend(d, acc.block.block, version);
        cache.markLogged(acc.block);
        ++logWriteCount;
        if (cfg.observer)
            cfg.observer->wtduLogWrite();

        DiskRequest req;
        req.arrival = now;
        req.block = log_block;
        req.numBlocks = 1;
        req.write = true;
        req.cause = WakeCause::DemandWrite; // log device never parks
        req.onComplete = [this, now](Time done, const DiskRequest &) {
            respStats.record(done - now);
        };
        logDisk->submit(std::move(req));
        break;
      }
    }
}

void
StorageSystem::handleVictim(const CacheResult &result, Time now)
{
    if (!result.evicted)
        return;
    if (result.victimDirty) {
        // Write-back family: the eviction forces the write-back.
        submitDisk(result.victim.disk, result.victim.block, 1, true,
                   false, now, WakeCause::EvictionWriteback);
    }
    if (result.victimLogged) {
        // WTDU corner case: the cache copy is the only fresh copy
        // outside the log; persist it home before dropping it.
        ++loggedEvictionCount;
        submitDisk(result.victim.disk, result.victim.block, 1, true,
                   false, now, WakeCause::EvictionWriteback);
    }
}

void
StorageSystem::submitDisk(DiskId disk, BlockNum block, uint32_t count,
                          bool write, bool record_response, Time arrival,
                          WakeCause cause, Time ack_from)
{
    PACACHE_ASSERT(disk < disks.numDisks(), "disk id out of range");
    uint64_t fault_id = 0;
    if (cfg.fault && write) {
        cfg.fault->crashPoint(CrashSite::DataWrite, disk);
        fault_id = cfg.fault->noteDataWriteSubmitted(
            disk, block, count, record_response);
    }
    ++perDiskAccesses[disk];
    if (cls)
        cls->onDiskAccess(disk, arrival);

    // WTDU retires a region only once every write to its disk is
    // durable, so every data-disk write is tracked while a log exists.
    const bool track = log != nullptr && write;
    if (track)
        ++retireState[disk].outstanding;

    DiskRequest req;
    req.arrival = arrival;
    req.block = block;
    req.numBlocks = count;
    req.write = write;
    req.cause = cause;
    if (record_response || fault_id != 0 || track) {
        const Time resp_from = ack_from >= 0 ? ack_from : arrival;
        FaultInjector *fi = cfg.fault;
        req.onComplete = [this, resp_from, record_response, fi,
                          fault_id, track,
                          disk](Time done, const DiskRequest &) {
            if (record_response)
                respStats.record(done - resp_from);
            if (fault_id != 0)
                fi->noteDataWriteDurable(fault_id);
            if (track)
                writeDurable(disk, done);
        };
    }
    disks.submit(disk, std::move(req));
}

void
StorageSystem::flushBlocks(DiskId disk, std::vector<BlockId> blocks,
                           Time now, WakeCause cause)
{
    if (blocks.empty())
        return;
    std::sort(blocks.begin(), blocks.end());
    std::size_t i = 0;
    while (i < blocks.size()) {
        std::size_t j = i + 1;
        while (j < blocks.size() &&
               blocks[j].block == blocks[j - 1].block + 1 &&
               j - i < cfg.maxFlushRun) {
            ++j;
        }
        submitDisk(disk, blocks[i].block,
                   static_cast<uint32_t>(j - i), true, false, now,
                   cause);
        i = j;
    }
}

void
StorageSystem::onDiskActivated(DiskId disk, Time now)
{
    if (cfg.fault)
        cfg.fault->crashPoint(CrashSite::SpinUp, disk);
    switch (cfg.writePolicy) {
      case WritePolicy::WriteBackEagerUpdate: {
        // The disk is already at full speed here; these writebacks
        // ride along without waking anything.
        if (cfg.fault)
            cfg.fault->crashPoint(CrashSite::EagerUpdate, disk);
        std::vector<BlockId> dirty = cache.dirtyBlocksOf(disk);
        for (const BlockId &b : dirty)
            cache.markClean(b);
        flushBlocks(disk, std::move(dirty), now,
                    WakeCause::EvictionWriteback);
        break;
      }
      case WritePolicy::WriteThroughDeferredUpdate:
        flushLogged(disk, now);
        break;
      default:
        break;
    }
}

void
StorageSystem::flushLogged(DiskId disk, Time now)
{
    if (log->used(disk) == 0)
        return;
    RetireState &rs = retireState[disk];
    if (rs.pending)
        return; // a flush is already on its way to a retire
    std::vector<BlockId> logged = cache.loggedBlocksOf(disk);
    for (const BlockId &b : logged)
        cache.clearLogged(b);
    rs.pending = true;
    flushBlocks(disk, std::move(logged), now,
                WakeCause::WtduLogRecycle);
    // Two-phase retire: the region's entries must stay live until the
    // flush — and every earlier write to this disk (e.g. the eviction
    // write-back of a logged block) — is durable. Retiring at submit
    // time would lose acknowledged writes if power failed with the
    // flush still in flight. With nothing outstanding (all logged
    // blocks already persisted home by evictions) retire right away.
    if (rs.outstanding == 0)
        completeRetire(disk, now);
}

void
StorageSystem::writeDurable(DiskId disk, Time now)
{
    RetireState &rs = retireState[disk];
    PACACHE_ASSERT(rs.outstanding > 0,
                   "write completion without a tracked submission");
    if (--rs.outstanding == 0 && rs.pending) {
        // The retire runs as its own zero-delay event rather than
        // inside the disk's completion callback: a crash injected at
        // the retire sites must not strand the disk mid-completion
        // (and the header write really does happen after the
        // completion interrupt, not during it).
        queue.schedule(now, [this, disk](Time t) {
            completeRetire(disk, t);
        });
    }
}

void
StorageSystem::completeRetire(DiskId disk, Time now)
{
    RetireState &rs = retireState[disk];
    rs.pending = false;
    if (cfg.fault)
        cfg.fault->crashPoint(CrashSite::RetirePre, disk);
    log->retire(disk);
    if (cfg.fault) {
        cfg.fault->crashPoint(CrashSite::RetirePost, disk);
        cfg.fault->noteLogRetire(disk, log->timestamp(disk));
    }
    if (cfg.observer)
        cfg.observer->wtduRegionRecycle(disk, now);

    // Release the writes that arrived during the retire window. The
    // disk is at full speed (a write to it just completed, or it never
    // had to sleep), so they go through as plain write-throughs; each
    // is acknowledged at completion, timed from its original arrival.
    std::vector<DeferredWrite> waiting = std::move(rs.deferred);
    rs.deferred.clear();
    for (const DeferredWrite &w : waiting) {
        cache.clearLogged(BlockId{disk, w.block});
        const uint64_t version = nextVersion++;
        if (cfg.fault)
            cfg.fault->noteClientWrite(disk, w.block, version);
        submitDisk(disk, w.block, 1, true, true, now,
                   WakeCause::DemandWrite, w.arrival);
    }
}

Energy
StorageSystem::totalEnergy() const
{
    Energy total = disks.totalEnergy().total();
    // The log device is a pre-existing always-active resource (e.g.
    // a database log disk or NVRAM); only the traffic WTDU adds to it
    // is charged to the policy.
    if (logDisk)
        total += logDisk->energy().serviceEnergy;
    return total;
}

} // namespace pacache
