#include "core/storage_system.hh"

#include <algorithm>

#include "obs/observer.hh"
#include "obs/profiler.hh"
#include "tracefmt/trace_source.hh"
#include "util/logging.hh"

namespace pacache
{

StorageSystem::StorageSystem(const Trace &trace_, EventQueue &eq,
                             Cache &cache_, DiskArray &disks_,
                             const StorageConfig &config,
                             PaClassifier *classifier, Disk *log_disk)
    : trace(&trace_), queue(eq), cache(cache_), disks(disks_),
      cfg(config), cls(classifier), logDisk(log_disk),
      perDiskAccesses(disks_.numDisks(), 0)
{
    init();
}

StorageSystem::StorageSystem(tracefmt::TraceSource &source_,
                             EventQueue &eq, Cache &cache_,
                             DiskArray &disks_,
                             const StorageConfig &config,
                             PaClassifier *classifier, Disk *log_disk)
    : trace(nullptr), source(&source_), queue(eq), cache(cache_),
      disks(disks_), cfg(config), cls(classifier), logDisk(log_disk),
      perDiskAccesses(disks_.numDisks(), 0)
{
    PACACHE_ASSERT(cache.policy().streamReady(),
                   "streaming runs need an on-line policy or windowed "
                   "future knowledge; materialize the trace for ",
                   cache.policy().name());
    init();
}

StorageSystem::StorageSystem(EventQueue &eq, Cache &cache_,
                             DiskArray &disks_,
                             const StorageConfig &config,
                             PaClassifier *classifier, Disk *log_disk)
    : trace(nullptr), queue(eq), cache(cache_), disks(disks_),
      cfg(config), cls(classifier), logDisk(log_disk),
      perDiskAccesses(disks_.numDisks(), 0)
{
    PACACHE_ASSERT(!cache.policy().isOffline(),
                   "incremental runs need an on-line policy; ",
                   cache.policy().name(), " wants the whole future");
    init();
}

void
StorageSystem::init()
{
    if (cfg.writePolicy == WritePolicy::WriteThroughDeferredUpdate) {
        PACACHE_ASSERT(logDisk != nullptr, "WTDU needs a log device");
        log = std::make_unique<WtduLog>(disks.numDisks(),
                                        cfg.wtduRegionBlocks);
    }
    PACACHE_ASSERT(cfg.prefetchBlocks == 0 ||
                       cache.policy().supportsPrefetch(),
                   "prefetch is incompatible with off-line policies");

    const bool wants_activation_hook =
        cfg.writePolicy == WritePolicy::WriteBackEagerUpdate ||
        cfg.writePolicy == WritePolicy::WriteThroughDeferredUpdate;
    if (wants_activation_hook) {
        for (DiskId d = 0; d < disks.numDisks(); ++d) {
            disks.disk(d).setOnActivated([this, d](Time now) {
                onDiskActivated(d, now);
            });
        }
    }
}

void
StorageSystem::run()
{
    PACACHE_ASSERT(trace || source,
                   "incremental StorageSystem has no trace to run; "
                   "drive it with step()/finish()");
    PACACHE_ASSERT(!ran, "StorageSystem::run called twice");
    ran = true;
    if (source)
        runStreaming();
    else
        runMaterialized();
}

void
StorageSystem::step(const BlockAccess &acc, std::size_t idx)
{
    PACACHE_ASSERT(!trace && !source,
                   "step() is for incremental mode; use run()");
    PACACHE_ASSERT(!ran, "step() after finish()");
    queue.runUntil(acc.time);
    processAccess(acc, idx);
}

void
StorageSystem::finish(Time trace_end)
{
    PACACHE_ASSERT(!trace && !source,
                   "finish() is for incremental mode; use run()");
    PACACHE_ASSERT(!ran, "StorageSystem::finish called twice");
    ran = true;
    finishRun(trace_end);
}

void
StorageSystem::runMaterialized()
{
    std::vector<BlockAccess> accesses;
    {
        obs::ProfileScope scope(cfg.profiler, "expand_trace");
        accesses = expandTrace(*trace);
    }
    {
        // Off-line policies (Belady/OPG) index the whole future
        // here; on-line policies return immediately.
        obs::ProfileScope scope(cfg.profiler, "oracle_precompute");
        cache.policy().prepare(accesses);
    }

    obs::SimObserver *observer = cfg.observer;
    if (observer)
        observer->runBegin(accesses.size(), trace->endTime());

    {
        obs::ProfileScope scope(cfg.profiler, "replay");
        for (std::size_t i = 0; i < accesses.size(); ++i) {
            queue.runUntil(accesses[i].time);
            processAccess(accesses[i], i);
            if (observer)
                observer->requestProcessed(accesses[i].time);
        }
    }

    finishRun(trace->endTime());
}

void
StorageSystem::runStreaming()
{
    // On-line policies ignore prepare(); guaranteed by the ctor.
    obs::SimObserver *observer = cfg.observer;
    if (observer) {
        const uint64_t hint = source->sizeHint();
        observer->runBegin(
            hint == tracefmt::TraceSource::kUnknown
                ? 0
                : static_cast<std::size_t>(hint),
            std::max<Time>(source->endTimeHint(), 0.0));
    }

    TraceRecord rec;
    std::size_t idx = 0;
    std::size_t records = 0;
    Time end_time = 0;
    {
        obs::ProfileScope scope(cfg.profiler, "replay");
        while (source->next(rec)) {
            for (uint32_t b = 0; b < rec.numBlocks; ++b) {
                const BlockAccess acc{rec.time,
                                      BlockId{rec.disk, rec.block + b},
                                      rec.write, records};
                queue.runUntil(acc.time);
                processAccess(acc, idx++);
                if (observer)
                    observer->requestProcessed(acc.time);
            }
            end_time = rec.time;
            ++records;
        }
    }
    PACACHE_ASSERT(records > 0 || cfg.endTimeFloor > 0,
                   "cannot run an empty trace");

    finishRun(end_time);
}

void
StorageSystem::finishRun(Time trace_end)
{
    // Drain in-flight services, spin-ups, and demotion chains, then
    // close every disk's accounting at a horizon that depends only on
    // the trace and the power model — NOT on run dynamics — so that
    // energies are comparable across policies and DPM choices.
    obs::ProfileScope scope(cfg.profiler, "drain_finalize");
    queue.runAll();
    const Time end = std::max(trace_end, cfg.endTimeFloor);
    const PowerModel &pm = disks.powerModel();
    const Time tail =
        (pm.thresholds().empty() ? 0.0 : pm.thresholds().back()) +
        pm.mode(pm.deepestMode()).transitionTime() + 10.0;
    const Time horizon = std::max(end + tail, queue.now());
    disks.finalize(horizon);
    if (logDisk)
        logDisk->finalize(horizon);
    if (cfg.observer)
        cfg.observer->runEnd(horizon);
}

void
StorageSystem::processAccess(const BlockAccess &acc, std::size_t idx)
{
    if (cls)
        cls->onRequest(acc.block.disk, acc.block, acc.time);
    if (acc.write)
        handleWrite(acc, idx);
    else
        handleRead(acc, idx);
}

void
StorageSystem::handleRead(const BlockAccess &acc, std::size_t idx)
{
    const Time now = acc.time;
    const CacheResult result = cache.access(acc.block, now, idx);
    if (result.hit) {
        respStats.record(cfg.hitLatency);
        return;
    }

    // Sequential prefetch: extend the fetch over the following
    // non-resident blocks — the platters are paying for this seek and
    // rotation anyway.
    uint32_t run = 1;
    if (cfg.prefetchBlocks > 0) {
        while (run <= cfg.prefetchBlocks &&
               !cache.contains(
                   BlockId{acc.block.disk, acc.block.block + run})) {
            ++run;
        }
    }

    submitDisk(acc.block.disk, acc.block.block, run, false, true, now,
               result.coldMiss ? WakeCause::DemandColdMiss
                               : WakeCause::CapacityMiss);
    handleVictim(result, now);
    for (uint32_t b = 1; b < run; ++b) {
        const CacheResult pf = cache.insert(
            BlockId{acc.block.disk, acc.block.block + b}, now, idx);
        if (!pf.hit)
            ++prefetchCount;
        handleVictim(pf, now);
    }
}

void
StorageSystem::handleWrite(const BlockAccess &acc, std::size_t idx)
{
    const Time now = acc.time;
    const DiskId d = acc.block.disk;
    const CacheResult result = cache.access(acc.block, now, idx);

    switch (cfg.writePolicy) {
      case WritePolicy::WriteThrough:
        handleVictim(result, now);
        submitDisk(d, acc.block.block, 1, true, true, now,
                   WakeCause::DemandWrite);
        break;

      case WritePolicy::WriteBack:
        cache.markDirty(acc.block);
        handleVictim(result, now);
        respStats.record(cfg.hitLatency);
        break;

      case WritePolicy::WriteBackEagerUpdate: {
        cache.markDirty(acc.block);
        handleVictim(result, now);
        respStats.record(cfg.hitLatency);
        if (cache.dirtyCount(d) >= cfg.wbeuMaxDirtyPerDisk) {
            // Dirty backlog cap reached: force the disk awake and
            // flush everything (the submits trigger the spin-up).
            std::vector<BlockId> dirty = cache.dirtyBlocksOf(d);
            if (cfg.observer)
                cfg.observer->wbeuForcedWake(d, dirty.size(), now);
            for (const BlockId &b : dirty)
                cache.markClean(b);
            flushBlocks(d, std::move(dirty), now,
                        WakeCause::WbeuForcedWake);
        }
        break;
      }

      case WritePolicy::WriteThroughDeferredUpdate: {
        handleVictim(result, now);
        if (disks.disk(d).atFullSpeed()) {
            // The destination is awake: plain write-through.
            cache.clearLogged(acc.block);
            submitDisk(d, acc.block.block, 1, true, true, now,
                       WakeCause::DemandWrite);
            break;
        }
        if (log->full(d))
            flushLogged(d, now); // wakes the disk; region retires
        const BlockNum log_block =
            static_cast<BlockNum>(d) * log->regionBlocks() +
            log->used(d);
        const bool ok = log->append(d, acc.block.block, nextVersion++);
        PACACHE_ASSERT(ok, "WTDU log region still full after flush");
        cache.markLogged(acc.block);
        ++logWriteCount;
        if (cfg.observer)
            cfg.observer->wtduLogWrite();

        DiskRequest req;
        req.arrival = now;
        req.block = log_block;
        req.numBlocks = 1;
        req.write = true;
        req.cause = WakeCause::DemandWrite; // log device never parks
        req.onComplete = [this, now](Time done, const DiskRequest &) {
            respStats.record(done - now);
        };
        logDisk->submit(std::move(req));
        break;
      }
    }
}

void
StorageSystem::handleVictim(const CacheResult &result, Time now)
{
    if (!result.evicted)
        return;
    if (result.victimDirty) {
        // Write-back family: the eviction forces the write-back.
        submitDisk(result.victim.disk, result.victim.block, 1, true,
                   false, now, WakeCause::EvictionWriteback);
    }
    if (result.victimLogged) {
        // WTDU corner case: the cache copy is the only fresh copy
        // outside the log; persist it home before dropping it.
        ++loggedEvictionCount;
        submitDisk(result.victim.disk, result.victim.block, 1, true,
                   false, now, WakeCause::EvictionWriteback);
    }
}

void
StorageSystem::submitDisk(DiskId disk, BlockNum block, uint32_t count,
                          bool write, bool record_response, Time arrival,
                          WakeCause cause)
{
    PACACHE_ASSERT(disk < disks.numDisks(), "disk id out of range");
    ++perDiskAccesses[disk];
    if (cls)
        cls->onDiskAccess(disk, arrival);

    DiskRequest req;
    req.arrival = arrival;
    req.block = block;
    req.numBlocks = count;
    req.write = write;
    req.cause = cause;
    if (record_response) {
        req.onComplete = [this, arrival](Time done, const DiskRequest &) {
            respStats.record(done - arrival);
        };
    }
    disks.submit(disk, std::move(req));
}

void
StorageSystem::flushBlocks(DiskId disk, std::vector<BlockId> blocks,
                           Time now, WakeCause cause)
{
    if (blocks.empty())
        return;
    std::sort(blocks.begin(), blocks.end());
    std::size_t i = 0;
    while (i < blocks.size()) {
        std::size_t j = i + 1;
        while (j < blocks.size() &&
               blocks[j].block == blocks[j - 1].block + 1 &&
               j - i < cfg.maxFlushRun) {
            ++j;
        }
        submitDisk(disk, blocks[i].block,
                   static_cast<uint32_t>(j - i), true, false, now,
                   cause);
        i = j;
    }
}

void
StorageSystem::onDiskActivated(DiskId disk, Time now)
{
    switch (cfg.writePolicy) {
      case WritePolicy::WriteBackEagerUpdate: {
        // The disk is already at full speed here; these writebacks
        // ride along without waking anything.
        std::vector<BlockId> dirty = cache.dirtyBlocksOf(disk);
        for (const BlockId &b : dirty)
            cache.markClean(b);
        flushBlocks(disk, std::move(dirty), now,
                    WakeCause::EvictionWriteback);
        break;
      }
      case WritePolicy::WriteThroughDeferredUpdate:
        flushLogged(disk, now);
        break;
      default:
        break;
    }
}

void
StorageSystem::flushLogged(DiskId disk, Time now)
{
    if (log->used(disk) == 0)
        return;
    std::vector<BlockId> logged = cache.loggedBlocksOf(disk);
    for (const BlockId &b : logged)
        cache.clearLogged(b);
    flushBlocks(disk, std::move(logged), now,
                WakeCause::WtduLogRecycle);
    log->retire(disk);
    if (cfg.observer)
        cfg.observer->wtduRegionRecycle(disk, now);
}

Energy
StorageSystem::totalEnergy() const
{
    Energy total = disks.totalEnergy().total();
    // The log device is a pre-existing always-active resource (e.g.
    // a database log disk or NVRAM); only the traffic WTDU adds to it
    // is charged to the policy.
    if (logDisk)
        total += logDisk->energy().serviceEnergy;
    return total;
}

} // namespace pacache
