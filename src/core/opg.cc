#include "core/opg.hh"

#include <algorithm>
#include <utility>

#include "util/logging.hh"

namespace pacache
{

template <typename F, typename Store>
BasicOpgPolicy<F, Store>::BasicOpgPolicy(const PowerModel &pm_,
                                         DpmKind kind, Energy theta_,
                                         std::size_t mem_budget)
    : pm(&pm_), dpmKind(kind), theta(theta_), memBudget(mem_budget)
{
    PACACHE_ASSERT(theta >= 0, "theta must be non-negative");
}

template <typename F, typename Store>
void
BasicOpgPolicy<F, Store>::finishPrepare(
    std::size_t num_disks, Time last,
    const std::vector<std::pair<DiskId, std::size_t>> &cold)
{
    // "No leader/follower" sentinel: far enough out that every energy
    // function has reached its linear (deepest-mode) tail.
    const auto &thr = pm->thresholds();
    const Time deepest = thr.empty() ? 0.0 : thr.back();
    bigTime = last + 4 * deepest + 1000.0;
    // A missing leader/follower always prices as E(bigTime); cache
    // the scan once instead of re-running it per gap endpoint.
    eBig = idleEnergy(bigTime);

    if constexpr (Store::kSpilled) {
        // Spillable sets hold pool-registered pages: destroy them
        // against the old pool before replacing it, then attach the
        // fresh ones (moves only happen while empty and unattached,
        // so the resize from empty is safe).
        detMiss.clear();
        residentByNext.clear();
        spillPool = std::make_unique<SpillPool>(memBudget);
        detMiss.resize(num_disks);
        residentByNext.resize(num_disks);
        for (auto &s : detMiss)
            s.attach(*spillPool);
        for (auto &s : residentByNext)
            s.attach(*spillPool);
    } else {
        detMiss.assign(num_disks, {});
        residentByNext.assign(num_disks, {});
    }
    handleOf.clear();
    evictOrder.clear();

    // S starts as the set of all cold misses (first references).
    for (const auto &[disk, i] : cold)
        detMiss[disk].insert(i);
    ready = true;
}

template <typename F, typename Store>
void
BasicOpgPolicy<F, Store>::prepare(const std::vector<BlockAccess> &accs)
{
    if constexpr (F::kStreaming) {
        (void)accs;
        PACACHE_FATAL("windowed OPG cannot materialize an access "
                      "stream; feed it via prepareWindowed()");
    } else {
        accesses = &accs;
        future = F::build(accs);

        // One pass over the 40-byte records: disk count, trace end,
        // and the cold-miss indices (each block's first reference)
        // that seed S. The per-disk inserts are deferred until the
        // disk count is known; cold[] holds one entry per unique
        // block.
        std::size_t num_disks = 1;
        Time last = 0;
        std::vector<std::pair<DiskId, std::size_t>> cold;
        for (std::size_t i = 0; i < accs.size(); ++i) {
            const auto &a = accs[i];
            num_disks =
                std::max<std::size_t>(num_disks, a.block.disk + 1);
            last = std::max(last, a.time);
            if (future.isFirstReference(i))
                cold.emplace_back(a.block.disk, i);
        }
        finishPrepare(num_disks, last, cold);
    }
}

template <typename F, typename Store>
void
BasicOpgPolicy<F, Store>::prepareWindowed(F &&fut)
{
    if constexpr (!F::kStreaming) {
        (void)fut;
        PACACHE_FATAL("prepareWindowed on the materialized oracle; "
                      "use prepare()");
    } else {
        PACACHE_ASSERT(fut.built(),
                       "prepareWindowed requires a built future");
        future = std::move(fut);
        accesses = nullptr;
        std::vector<std::pair<DiskId, std::size_t>> cold;
        cold.reserve(future.coldSeeds().size());
        for (const auto &seed : future.coldSeeds())
            cold.emplace_back(seed.disk, seed.idx);
        finishPrepare(future.numDisks(), future.endTime(), cold);
    }
}

template <typename F, typename Store>
Energy
BasicOpgPolicy<F, Store>::computePenalty(DiskId disk,
                                  std::size_t next_idx) const
{
    if (next_idx == F::kNever)
        return 0.0; // never re-referenced: eviction costs nothing

    const auto nb = detMiss[disk].neighbors(next_idx);
    PACACHE_ASSERT(!nb.present,
                   "resident block's next access is a deterministic miss");

    const Time t_x = future.timeOf(next_idx);
    const Time l = nb.hasPred ? t_x - future.timeOf(nb.pred) : bigTime;
    const Time f = nb.hasSucc ? future.timeOf(nb.succ) - t_x : bigTime;

    // eBig is the exact value idleEnergy(bigTime) returns, so the
    // substitution is bit-identical to pricing the missing end.
    const Energy e_l = nb.hasPred ? idleEnergy(l) : eBig;
    const Energy e_f = nb.hasSucc ? idleEnergy(f) : eBig;
    const Energy penalty = e_l + e_f - idleEnergy(l + f);
    return std::max<Energy>(penalty, 0.0);
}

template <typename F, typename Store>
void
BasicOpgPolicy<F, Store>::insertResident(const BlockId &block,
                                  std::size_t next_idx)
{
    const Energy penalty =
        std::max(computePenalty(block.disk, next_idx), theta);
    const Handle h =
        evictOrder.push(EvictKey{penalty, next_idx, block.packed()});
    const bool inserted = handleOf.emplace(block.packed(), h).second;
    PACACHE_ASSERT(inserted, "OPG double insert of resident block");
    if (next_idx != F::kNever) {
        const bool fresh =
            residentByNext[block.disk].insert(next_idx, h);
        PACACHE_ASSERT(fresh, "OPG next-use index collision");
    }
}

template <typename F, typename Store>
typename BasicOpgPolicy<F, Store>::EvictKey
BasicOpgPolicy<F, Store>::eraseResident(const BlockId &block)
{
    Handle *hp = handleOf.find(block.packed());
    PACACHE_ASSERT(hp, "OPG removal of unknown block");
    const Handle h = *hp;
    const EvictKey key = evictOrder.key(h);
    handleOf.erase(block.packed());
    if (key.nextIdx != F::kNever) {
        const bool erased =
            residentByNext[block.disk].erase(key.nextIdx);
        PACACHE_ASSERT(erased, "OPG residentByNext out of sync");
    }
    evictOrder.erase(h);
    return key;
}

template <typename F, typename Store>
void
BasicOpgPolicy<F, Store>::repriceGap(DiskId disk, std::size_t lo, bool has_lo,
                              std::size_t hi, bool has_hi)
{
    // Every resident with next access inside (lo, hi) shares the same
    // leader (lo) and follower (hi) — no per-block detMiss queries.
    const Time t_lo = has_lo ? future.timeOf(lo) : 0;
    const Time t_hi = has_hi ? future.timeOf(hi) : 0;
    const std::size_t hi_key = has_hi ? hi : F::kNever;
    // A missing end always prices as the cached E(bigTime), exactly
    // what computePenalty substitutes. The whole-gap term is NOT
    // hoisted as E(t_hi - t_lo) even though l + f is mathematically
    // the gap width: FP addition is not associative, so
    // (t_x - t_lo) + (t_hi - t_x) can round to a different double
    // than t_hi - t_lo, and the penalty must stay bit-identical to
    // the per-block form computePenalty (and the reference policy)
    // evaluates.
    residentByNext[disk].forEachInRange(
        lo, hi_key, [&](std::size_t next_idx, Handle h) {
            const Time t_x = future.timeOf(next_idx);
            const Time l = has_lo ? t_x - t_lo : bigTime;
            const Time f = has_hi ? t_hi - t_x : bigTime;
            const Energy e_l = has_lo ? idleEnergy(l) : eBig;
            const Energy e_f = has_hi ? idleEnergy(f) : eBig;
            const Energy penalty = e_l + e_f - idleEnergy(l + f);
            const Energy fresh =
                std::max(std::max<Energy>(penalty, 0.0), theta);
            const EvictKey &key = evictOrder.key(h);
            if (fresh == key.penalty)
                return;
            evictOrder.update(h, EvictKey{fresh, next_idx, key.block});
        });
}

template <typename F, typename Store>
void
BasicOpgPolicy<F, Store>::detInsert(DiskId disk, std::size_t idx)
{
    typename Store::DetSet::Neighbors nb;
    const bool fresh = detMiss[disk].insertWithNeighbors(idx, nb);
    PACACHE_ASSERT(fresh, "duplicate deterministic miss");
    // idx split its gap in two: residents below idx now follow it,
    // residents above now lead from it.
    repriceGap(disk, nb.hasPred ? nb.pred : 0, nb.hasPred, idx, true);
    repriceGap(disk, idx, true, nb.hasSucc ? nb.succ : 0, nb.hasSucc);
}

template <typename F, typename Store>
void
BasicOpgPolicy<F, Store>::detErase(DiskId disk, std::size_t idx)
{
    typename Store::DetSet::Neighbors nb;
    const bool was = detMiss[disk].eraseWithNeighbors(idx, nb);
    PACACHE_ASSERT(was, "miss not in deterministic-miss set");
    // idx's two gaps merged into one spanning (pred, succ).
    repriceGap(disk, nb.hasPred ? nb.pred : 0, nb.hasPred,
               nb.hasSucc ? nb.succ : 0, nb.hasSucc);
}

template <typename F, typename Store>
void
BasicOpgPolicy<F, Store>::beforeMiss(const BlockId &block, Time,
                              std::size_t idx)
{
    // The access happening now is, by definition, a deterministic
    // miss; it leaves S.
    detErase(block.disk, idx);
}

template <typename F, typename Store>
void
BasicOpgPolicy<F, Store>::onAccess(const BlockId &block, Time,
                            std::size_t idx, bool hit)
{
    PACACHE_ASSERT(ready, "OPG requires prepare() before use");
    const std::size_t next = future.nextUse(idx);
    if (!hit) {
        insertResident(block, next);
        return;
    }
    // Hit: the block stays resident, only its next access (and hence
    // its penalty) moves — update the heap key in place and re-slot
    // the next-use index entry. The hit itself is the block's
    // recorded next access, so taking idx out of the next-use index
    // yields the heap handle with no block-keyed hash probe.
    Handle h{};
    const bool unindexed = residentByNext[block.disk].take(idx, h);
    PACACHE_ASSERT(unindexed, "OPG hit on unindexed block");
    PACACHE_ASSERT(evictOrder.key(h).nextIdx == idx,
                   "stale next-use index on hit");
    const Energy penalty =
        std::max(computePenalty(block.disk, next), theta);
    evictOrder.update(h, EvictKey{penalty, next, block.packed()});
    if (next != F::kNever) {
        const bool fresh = residentByNext[block.disk].insert(next, h);
        PACACHE_ASSERT(fresh, "OPG next-use index collision");
    }
}

template <typename F, typename Store>
void
BasicOpgPolicy<F, Store>::onRemove(const BlockId &block)
{
    // External removal behaves like an eviction: the block's next
    // reference becomes a deterministic miss.
    const EvictKey key = eraseResident(block);
    if (key.nextIdx != F::kNever)
        detInsert(block.disk, key.nextIdx);
}

template <typename F, typename Store>
BlockId
BasicOpgPolicy<F, Store>::evict(Time, std::size_t)
{
    PACACHE_ASSERT(!evictOrder.empty(), "OPG evict on empty cache");
    // The victim is the heap top: no handle lookup needed, and pop()
    // is cheaper than erase(handle) from an arbitrary slot.
    const Handle h = evictOrder.topHandle();
    const EvictKey key = evictOrder.key(h);
    const BlockId victim = BlockId::fromPacked(key.block);
    const bool known = handleOf.erase(key.block);
    PACACHE_ASSERT(known, "OPG evicting unknown block");
    if (key.nextIdx != F::kNever) {
        const bool erased =
            residentByNext[victim.disk].erase(key.nextIdx);
        PACACHE_ASSERT(erased, "OPG residentByNext out of sync");
    }
    evictOrder.pop();
    if (key.nextIdx != F::kNever)
        detInsert(victim.disk, key.nextIdx);
    return victim;
}

template <typename F, typename Store>
Energy
BasicOpgPolicy<F, Store>::penaltyOf(const BlockId &block) const
{
    const Handle *hp = handleOf.find(block.packed());
    PACACHE_ASSERT(hp, "penaltyOf unknown block");
    return evictOrder.key(*hp).penalty;
}

template <typename F, typename Store>
std::size_t
BasicOpgPolicy<F, Store>::deterministicMissCount(DiskId disk) const
{
    return disk < detMiss.size() ? detMiss[disk].size() : 0;
}

template <typename F, typename Store>
void
BasicOpgPolicy<F, Store>::validateInternalState(bool full) const
{
    // Cheap size-drift invariants, always on.
    PACACHE_ASSERT(evictOrder.size() == handleOf.size(),
                   "evict order / handle index size drift");
    std::size_t indexed = 0;
    for (const auto &byNext : residentByNext)
        indexed += byNext.size();
    PACACHE_ASSERT(indexed <= handleOf.size(),
                   "next-use index size drift");
    if (!full)
        return;

    // Full cross-check: recompute every penalty from scratch and
    // verify every index entry against the incremental bookkeeping.
    evictOrder.validate();
    for (const auto &s : detMiss)
        s.checkInvariants();
    std::size_t finite = 0;
    handleOf.forEach([&](std::uint64_t packed, Handle h) {
        const EvictKey &key = evictOrder.key(h);
        PACACHE_ASSERT(key.block == packed,
                       "victim-heap handle points at wrong block");
        const BlockId block = BlockId::fromPacked(packed);
        const Energy freshPenalty =
            std::max(computePenalty(block.disk, key.nextIdx), theta);
        PACACHE_ASSERT(freshPenalty == key.penalty,
                       "stale penalty for disk ", block.disk,
                       " block ", block.block, ": cached ",
                       key.penalty, " fresh ", freshPenalty);
        if (key.nextIdx == F::kNever)
            return;
        ++finite;
        const Handle *indexedHandle =
            residentByNext[block.disk].find(key.nextIdx);
        PACACHE_ASSERT(indexedHandle && *indexedHandle == h,
                       "missing next-use index entry");
    });
    PACACHE_ASSERT(indexed == finite,
                   "next-use index holds stale entries");
}

template class BasicOpgPolicy<FutureKnowledge>;
template class BasicOpgPolicy<WindowedFuture>;
template class BasicOpgPolicy<FutureKnowledge, SpilledOracleStore>;
template class BasicOpgPolicy<WindowedFuture, SpilledOracleStore>;

} // namespace pacache
