#include "core/fault.hh"

#include <array>

#include "util/logging.hh"

namespace pacache
{

namespace
{

constexpr std::array<const char *, kNumCrashSites> kSiteNames = {
    "log-append",  "log-append-torn", "eager-update",
    "spin-up",     "retire-pre",      "retire-post",
    "data-write",  "shutdown",        "recovery",
};

} // namespace

const char *
crashSiteName(CrashSite site)
{
    const auto idx = static_cast<std::size_t>(site);
    PACACHE_ASSERT(idx < kSiteNames.size(), "bad CrashSite");
    return kSiteNames[idx];
}

bool
parseCrashSite(const std::string &name, CrashSite &out)
{
    for (std::size_t i = 0; i < kSiteNames.size(); ++i) {
        if (name == kSiteNames[i]) {
            out = static_cast<CrashSite>(i);
            return true;
        }
    }
    return false;
}

CrashException::CrashException(CrashSite site_, DiskId disk_)
    : std::runtime_error(std::string("simulated power failure at ") +
                         crashSiteName(site_)),
      site(site_), disk(disk_)
{
}

} // namespace pacache
