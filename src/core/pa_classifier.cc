#include "core/pa_classifier.hh"

#include "obs/observer.hh"
#include "util/logging.hh"

namespace pacache
{

namespace
{

IntervalHistogram
makeIntervalHistogram()
{
    // 1 ms .. ~3 hours covers every interesting interval length.
    return IntervalHistogram::geometric(1e-3, 1e4, 8);
}

} // namespace

PaEpochStats::DiskEpoch::DiskEpoch() : intervals(makeIntervalHistogram()) {}

void
PaEpochStats::DiskEpoch::reset()
{
    accesses = 0;
    cold = 0;
    intervals.reset();
}

void
PaEpochStats::DiskEpoch::merge(const DiskEpoch &other)
{
    accesses += other.accesses;
    cold += other.cold;
    intervals.merge(other.intervals);
}

PaEpochStats::PaEpochStats(std::size_t num_disks) : perDisk(num_disks)
{
    PACACHE_ASSERT(num_disks > 0, "epoch stats need at least one disk");
}

void
PaEpochStats::noteRequest(DiskId disk, bool cold_miss)
{
    PACACHE_ASSERT(disk < perDisk.size(), "disk id out of range");
    ++perDisk[disk].accesses;
    if (cold_miss)
        ++perDisk[disk].cold;
}

void
PaEpochStats::noteInterval(DiskId disk, Time interval)
{
    PACACHE_ASSERT(disk < perDisk.size(), "disk id out of range");
    perDisk[disk].intervals.record(interval);
}

void
PaEpochStats::reset()
{
    for (auto &d : perDisk)
        d.reset();
}

void
PaEpochStats::merge(const PaEpochStats &other)
{
    PACACHE_ASSERT(perDisk.size() == other.perDisk.size(),
                   "cannot merge epoch stats over different disk counts");
    for (std::size_t d = 0; d < perDisk.size(); ++d)
        perDisk[d].merge(other.perDisk[d]);
}

PaClassification
classifyDiskEpoch(const PaEpochStats::DiskEpoch &epoch, const PaParams &params)
{
    PaClassification out;
    const uint64_t samples = epoch.intervals.sampleCount();
    if (epoch.accesses < params.minEpochSamples)
        return out; // too little evidence; keep the previous class
    const double cold = static_cast<double>(epoch.cold) /
                        static_cast<double>(epoch.accesses);
    if (samples >= params.minEpochSamples) {
        out.decided = true;
        out.haveQuantile = true;
        out.coldFraction = cold;
        out.quantile = epoch.intervals.quantile(params.cumulativeProb);
        out.priority = cold <= params.coldMissThreshold &&
                       out.quantile >= params.intervalThreshold;
    } else if (samples == 0) {
        // Requests arrived but none reached the disk: the cache
        // absorbs this disk entirely — clearly worth protecting if
        // its accesses are not cold.
        out.decided = true;
        out.coldFraction = cold;
        out.priority = cold <= params.coldMissThreshold;
    }
    return out;
}

PaClassifier::PaClassifier(std::size_t num_disks, const PaParams &params)
    : p(params), bloom(params.bloomBits, params.bloomHashes),
      epochEnd(params.epochLength), epoch(num_disks),
      lastDiskAccess(num_disks, -1.0), priority(num_disks, false),
      lastColdFraction(num_disks, 0.0), lastQuantile(num_disks, 0.0)
{
    PACACHE_ASSERT(num_disks > 0, "classifier needs at least one disk");
    PACACHE_ASSERT(p.epochLength > 0, "epoch length must be positive");
}

void
PaClassifier::rollEpoch(Time now)
{
    while (now >= epochEnd) {
        for (std::size_t d = 0; d < priority.size(); ++d) {
            const bool was_priority = priority[d];
            const PaClassification cls =
                classifyDiskEpoch(epoch.perDisk[d], p);
            if (cls.decided) {
                lastColdFraction[d] = cls.coldFraction;
                if (cls.haveQuantile)
                    lastQuantile[d] = cls.quantile;
                priority[d] = cls.priority;
            }
            epoch.perDisk[d].reset();
            if (obs && priority[d] != was_priority) {
                obs->paClassFlip(static_cast<DiskId>(d), priority[d],
                                 epochEnd);
            }
        }
        if (obs)
            obs->paEpochBoundary(epochs, epochEnd);
        epochEnd += p.epochLength;
        ++epochs;
    }
}

void
PaClassifier::onRequest(DiskId disk, const BlockId &block, Time now)
{
    rollEpoch(now);
    PACACHE_ASSERT(disk < priority.size(), "disk id out of range");
    epoch.noteRequest(disk, bloom.testAndInsert(block.packed()));
}

void
PaClassifier::onDiskAccess(DiskId disk, Time now)
{
    PACACHE_ASSERT(disk < priority.size(), "disk id out of range");
    if (lastDiskAccess[disk] >= 0)
        epoch.noteInterval(disk, now - lastDiskAccess[disk]);
    lastDiskAccess[disk] = now;
}

} // namespace pacache
