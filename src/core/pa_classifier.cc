#include "core/pa_classifier.hh"

#include "obs/observer.hh"
#include "util/logging.hh"

namespace pacache
{

PaClassifier::PaClassifier(std::size_t num_disks, const PaParams &params)
    : p(params), bloom(params.bloomBits, params.bloomHashes),
      epochEnd(params.epochLength),
      accessesThisEpoch(num_disks, 0), coldThisEpoch(num_disks, 0),
      lastDiskAccess(num_disks, -1.0), priority(num_disks, false),
      lastColdFraction(num_disks, 0.0), lastQuantile(num_disks, 0.0)
{
    PACACHE_ASSERT(num_disks > 0, "classifier needs at least one disk");
    PACACHE_ASSERT(p.epochLength > 0, "epoch length must be positive");
    histograms.reserve(num_disks);
    for (std::size_t i = 0; i < num_disks; ++i) {
        // 1 ms .. ~3 hours covers every interesting interval length.
        histograms.push_back(
            IntervalHistogram::geometric(1e-3, 1e4, 8));
    }
}

void
PaClassifier::rollEpoch(Time now)
{
    while (now >= epochEnd) {
        for (std::size_t d = 0; d < priority.size(); ++d) {
            const bool was_priority = priority[d];
            const uint64_t samples = histograms[d].sampleCount();
            const uint64_t accesses = accessesThisEpoch[d];
            if (accesses >= p.minEpochSamples &&
                samples >= p.minEpochSamples) {
                const double cold =
                    static_cast<double>(coldThisEpoch[d]) /
                    static_cast<double>(accesses);
                const Time t_p =
                    histograms[d].quantile(p.cumulativeProb);
                lastColdFraction[d] = cold;
                lastQuantile[d] = t_p;
                priority[d] = cold <= p.coldMissThreshold &&
                              t_p >= p.intervalThreshold;
            } else if (accesses >= p.minEpochSamples && samples == 0) {
                // Requests arrived but none reached the disk: the
                // cache absorbs this disk entirely — clearly worth
                // protecting if its accesses are not cold.
                const double cold =
                    static_cast<double>(coldThisEpoch[d]) /
                    static_cast<double>(accesses);
                lastColdFraction[d] = cold;
                priority[d] = cold <= p.coldMissThreshold;
            }
            // Otherwise: too little evidence; keep the previous class.
            accessesThisEpoch[d] = 0;
            coldThisEpoch[d] = 0;
            histograms[d].reset();
            if (obs && priority[d] != was_priority) {
                obs->paClassFlip(static_cast<DiskId>(d), priority[d],
                                 epochEnd);
            }
        }
        if (obs)
            obs->paEpochBoundary(epochs, epochEnd);
        epochEnd += p.epochLength;
        ++epochs;
    }
}

void
PaClassifier::onRequest(DiskId disk, const BlockId &block, Time now)
{
    rollEpoch(now);
    PACACHE_ASSERT(disk < priority.size(), "disk id out of range");
    ++accessesThisEpoch[disk];
    if (bloom.testAndInsert(block.packed()))
        ++coldThisEpoch[disk];
}

void
PaClassifier::onDiskAccess(DiskId disk, Time now)
{
    PACACHE_ASSERT(disk < priority.size(), "disk id out of range");
    if (lastDiskAccess[disk] >= 0)
        histograms[disk].record(now - lastDiskAccess[disk]);
    lastDiskAccess[disk] = now;
}

} // namespace pacache
