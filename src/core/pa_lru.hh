/**
 * @file
 * PA-LRU — the paper's on-line power-aware replacement algorithm —
 * and the generic dual-policy wrapper that applies the same idea to
 * any base policy (ARC, MQ, ...), as Section 4 suggests.
 *
 * PA-LRU keeps two LRU stacks: LRU0 holds blocks of "regular" disks,
 * LRU1 holds blocks of "priority" disks (classification per
 * PaClassifier). Eviction always takes the bottom of LRU0 unless it
 * is empty, so priority disks' blocks survive longer, their miss
 * streams thin out, and the disks can sleep.
 */

#ifndef PACACHE_CORE_PA_LRU_HH
#define PACACHE_CORE_PA_LRU_HH

#include <memory>
#include <string>

#include "cache/lru.hh"
#include "cache/policy.hh"
#include "core/pa_classifier.hh"
#include "util/flat_map.hh"

namespace pacache
{

/** The two-stack power-aware LRU policy. */
class PaLruPolicy : public ReplacementPolicy
{
  public:
    /** @param classifier shared classifier, fed by the driver. */
    explicit PaLruPolicy(const PaClassifier &classifier)
        : cls(&classifier) {}

    const char *name() const override { return "PA-LRU"; }

    void onAccess(const BlockId &block, Time now, std::size_t idx,
                  bool hit) override;
    void onRemove(const BlockId &block) override;
    BlockId evict(Time now, std::size_t idx) override;

    std::size_t regularSize() const { return lru0.size(); }
    std::size_t prioritySize() const { return lru1.size(); }

  private:
    const PaClassifier *cls;
    LruStack lru0; //!< regular disks
    LruStack lru1; //!< priority disks
};

/**
 * Generic power-aware wrapper: route blocks of regular disks to one
 * base policy instance and blocks of priority disks to another, and
 * evict from the regular instance while it holds anything. With two
 * LRU instances this is exactly PA-LRU; with two ARC instances it is
 * PA-ARC, etc.
 */
class PaDualPolicy : public ReplacementPolicy
{
  public:
    /**
     * @param classifier shared classifier
     * @param regular    base policy instance for regular disks
     * @param priority   base policy instance for priority disks
     * @param label      reported name, e.g. "PA-ARC"
     */
    PaDualPolicy(const PaClassifier &classifier,
                 std::unique_ptr<ReplacementPolicy> regular,
                 std::unique_ptr<ReplacementPolicy> priority,
                 std::string label);

    const char *name() const override { return label.c_str(); }

    void beforeMiss(const BlockId &block, Time now,
                    std::size_t idx) override;
    void onAccess(const BlockId &block, Time now, std::size_t idx,
                  bool hit) override;
    void onRemove(const BlockId &block) override;
    BlockId evict(Time now, std::size_t idx) override;

    std::size_t regularSize() const { return counts[0]; }
    std::size_t prioritySize() const { return counts[1]; }

  private:
    const PaClassifier *cls;
    std::unique_ptr<ReplacementPolicy> sub[2]; //!< [0]=regular
    std::size_t counts[2] = {0, 0};
    FlatMap<BlockId, uint8_t> home; //!< which sub holds it
    std::string label;
};

} // namespace pacache

#endif // PACACHE_CORE_PA_LRU_HH
