/**
 * @file
 * The WTDU persistent log (paper Section 6, "Write-through with
 * Deferred Update").
 *
 * The log space is divided into one region per data disk. The first
 * block of a region holds the region's current timestamp; every
 * logged block is stamped with the timestamp current at append time.
 * When the data disk becomes active, the cache flushes all logged
 * blocks to it and then *retires* the region by incrementing its
 * timestamp and resetting the free pointer — making every existing
 * entry stale without rewriting it.
 *
 * Recovery after a crash scans each region: entries stamped with the
 * region's current timestamp were appended after the last retire and
 * may not have reached the data disk, so they are replayed; stale
 * entries are ignored. Each entry carries an opaque payload version
 * so tests can verify exactly-the-acknowledged-writes durability.
 */

#ifndef PACACHE_CORE_WTDU_LOG_HH
#define PACACHE_CORE_WTDU_LOG_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace pacache
{

/** The per-disk-region persistent write log used by WTDU. */
class WtduLog
{
  public:
    /** One logged write. */
    struct Entry
    {
        BlockNum block;
        uint64_t version; //!< opaque payload tag for verification
        uint64_t stamp;   //!< region timestamp at append time
    };

    /**
     * @param num_disks      number of data disks (= regions)
     * @param region_blocks  capacity of each region in blocks
     */
    WtduLog(std::size_t num_disks, std::size_t region_blocks);

    /**
     * Append a write to a disk's region.
     * @return false if the region is full (caller must trigger a
     *         flush + retire first).
     */
    bool append(DiskId disk, BlockNum block, uint64_t version);

    /** True when no further append fits. */
    bool full(DiskId disk) const;

    /** Blocks currently used in a region (live entries). */
    std::size_t used(DiskId disk) const;

    /** Region capacity in blocks. */
    std::size_t regionBlocks() const { return regionCapacity; }

    /**
     * Retire a region after its disk has been flushed: bump the
     * timestamp and reset the free pointer.
     */
    void retire(DiskId disk);

    /** Current region timestamp. */
    uint64_t timestamp(DiskId disk) const;

    /**
     * Crash recovery for one region: the entries that must be
     * replayed to the data disk (stamped with the current region
     * timestamp), in append order.
     */
    std::vector<Entry> recover(DiskId disk) const;

    /** Total appends performed (log-device write traffic). */
    uint64_t appends() const { return totalAppends; }

  private:
    struct Region
    {
        uint64_t stamp = 0;
        std::size_t freePtr = 0;      //!< next free slot
        std::vector<Entry> slots;     //!< physical log blocks
    };

    const Region &region(DiskId disk) const;
    Region &region(DiskId disk);

    std::size_t regionCapacity;
    std::vector<Region> regions;
    uint64_t totalAppends = 0;
};

} // namespace pacache

#endif // PACACHE_CORE_WTDU_LOG_HH
