/**
 * @file
 * The WTDU persistent log (paper Section 6, "Write-through with
 * Deferred Update").
 *
 * The log space is divided into one region per data disk. The first
 * block of a region holds the region's current timestamp; every
 * logged block is stamped with the timestamp current at append time.
 * When the data disk becomes active, the cache flushes all logged
 * blocks to it and then *retires* the region by incrementing its
 * timestamp and resetting the free pointer — making every existing
 * entry stale without rewriting it.
 *
 * Recovery after a crash scans each region: entries stamped with the
 * region's current timestamp were appended after the last retire and
 * may not have reached the data disk, so they are replayed; stale
 * entries are ignored. Each entry carries an opaque payload version
 * so tests can verify exactly-the-acknowledged-writes durability.
 *
 * Fault model (DESIGN.md 5j): the region header (timestamp) updates
 * atomically, but an entry write can tear if power fails mid-append.
 * Each entry therefore carries a checksum over its fields; a torn
 * entry fails verification and is ignored by scans and recovery, the
 * same way a real log skips a bad-CRC record.
 */

#ifndef PACACHE_CORE_WTDU_LOG_HH
#define PACACHE_CORE_WTDU_LOG_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.hh"

namespace pacache
{

class FaultInjector;

/** The per-disk-region persistent write log used by WTDU. */
class WtduLog
{
  public:
    /** One logged write. */
    struct Entry
    {
        BlockNum block;
        uint64_t version; //!< opaque payload tag for verification
        uint64_t stamp;   //!< region timestamp at append time
        uint64_t sum;     //!< checksum; mismatch = torn write

        /** The checksum a fully written entry carries. */
        static uint64_t expectedSum(BlockNum block, uint64_t version,
                                    uint64_t stamp);

        /** False when the entry tore mid-write. */
        bool valid() const;

        bool operator==(const Entry &o) const
        {
            return block == o.block && version == o.version &&
                   stamp == o.stamp && sum == o.sum;
        }
        bool operator!=(const Entry &o) const { return !(*this == o); }
    };

    /** Physical-scan census of one region. */
    struct ScanStats
    {
        std::size_t live = 0;  //!< current-stamp, checksum ok
        std::size_t stale = 0; //!< older stamp, checksum ok
        std::size_t torn = 0;  //!< checksum mismatch
    };

    /**
     * @param num_disks      number of data disks (= regions)
     * @param region_blocks  capacity of each region in blocks
     * @param initial_stamp  starting timestamp of every region
     *                       (non-zero only in wraparound tests)
     */
    WtduLog(std::size_t num_disks, std::size_t region_blocks,
            uint64_t initial_stamp = 0);

    /**
     * Hook the append path for torn-write injection. The injector's
     * crashPoint(LogAppendTorn) fires after the entry lands in its
     * slot but before its checksum is complete; throwing there
     * leaves a torn entry behind. Null disables injection.
     */
    void setFaultInjector(FaultInjector *inj) { fault = inj; }

    /**
     * Append a write to a disk's region.
     * @return false if the region is full (caller must trigger a
     *         flush + retire first).
     */
    bool append(DiskId disk, BlockNum block, uint64_t version);

    /** True when no further append fits. */
    bool full(DiskId disk) const;

    /** Blocks currently used in a region (live entries). */
    std::size_t used(DiskId disk) const;

    /** Region capacity in blocks. */
    std::size_t regionBlocks() const { return regionCapacity; }

    /** Number of regions (= data disks). */
    std::size_t numDisks() const { return regions.size(); }

    /**
     * Retire a region after its disk has been flushed: bump the
     * timestamp and reset the free pointer.
     */
    void retire(DiskId disk);

    /** Current region timestamp. */
    uint64_t timestamp(DiskId disk) const;

    /**
     * Crash recovery for one region: the entries that must be
     * replayed to the data disk (stamped with the current region
     * timestamp and not torn), in append order.
     */
    std::vector<Entry> recover(DiskId disk) const;

    /** Classify every physical slot of a region. */
    ScanStats scan(DiskId disk) const;

    /**
     * The raw physical slots of a region, beyond the free pointer
     * included — for bit-identical comparison of two log images.
     */
    const std::vector<Entry> &entries(DiskId disk) const;

    /**
     * Full-log crash recovery: for each region in disk order, replay
     * the live entries through @p apply (the durable write-back to
     * the data disk), then retire the region so a second recovery
     * pass finds nothing to do. @p inj, when non-null, gets a
     * crashPoint(Recovery) before every replayed entry and before
     * every retire, so recovery itself can be crashed and re-run.
     */
    void recoverAll(const std::function<void(DiskId, const Entry &)> &apply,
                    FaultInjector *inj = nullptr);

    /** Total appends performed (log-device write traffic). */
    uint64_t appends() const { return totalAppends; }

  private:
    struct Region
    {
        uint64_t stamp = 0;
        std::size_t freePtr = 0;      //!< next free slot
        std::vector<Entry> slots;     //!< physical log blocks
    };

    const Region &region(DiskId disk) const;
    Region &region(DiskId disk);

    std::size_t regionCapacity;
    std::vector<Region> regions;
    uint64_t totalAppends = 0;
    FaultInjector *fault = nullptr;
};

} // namespace pacache

#endif // PACACHE_CORE_WTDU_LOG_HH
