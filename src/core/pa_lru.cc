#include "core/pa_lru.hh"

#include "util/logging.hh"

namespace pacache
{

void
PaLruPolicy::onAccess(const BlockId &block, Time, std::size_t, bool hit)
{
    if (hit) {
        // The disk's class may have changed since insertion; migrate.
        lru0.remove(block);
        lru1.remove(block);
    }
    if (cls->isPriority(block.disk))
        lru1.touch(block);
    else
        lru0.touch(block);
}

void
PaLruPolicy::onRemove(const BlockId &block)
{
    if (!lru0.remove(block)) {
        const bool present = lru1.remove(block);
        PACACHE_ASSERT(present, "PA-LRU removal of unknown block");
    }
}

BlockId
PaLruPolicy::evict(Time, std::size_t)
{
    if (!lru0.empty())
        return lru0.popLru();
    PACACHE_ASSERT(!lru1.empty(), "PA-LRU evict on empty cache");
    return lru1.popLru();
}

PaDualPolicy::PaDualPolicy(const PaClassifier &classifier,
                           std::unique_ptr<ReplacementPolicy> regular,
                           std::unique_ptr<ReplacementPolicy> priority,
                           std::string label_)
    : cls(&classifier), label(std::move(label_))
{
    sub[0] = std::move(regular);
    sub[1] = std::move(priority);
    PACACHE_ASSERT(sub[0] && sub[1], "PA wrapper needs two base policies");
}

void
PaDualPolicy::beforeMiss(const BlockId &block, Time now, std::size_t idx)
{
    const uint8_t which = cls->isPriority(block.disk) ? 1 : 0;
    sub[which]->beforeMiss(block, now, idx);
}

void
PaDualPolicy::onAccess(const BlockId &block, Time now, std::size_t idx,
                       bool hit)
{
    const uint8_t want = cls->isPriority(block.disk) ? 1 : 0;
    uint8_t *have = home.find(block);
    if (hit) {
        PACACHE_ASSERT(have, "PA wrapper hit on unknown block");
        if (*have == want) {
            sub[want]->onAccess(block, now, idx, true);
            return;
        }
        // Classification changed: migrate between sub-policies.
        sub[*have]->onRemove(block);
        --counts[*have];
        sub[want]->onAccess(block, now, idx, false);
        ++counts[want];
        *have = want;
        return;
    }
    PACACHE_ASSERT(!have, "PA wrapper double insert");
    sub[want]->onAccess(block, now, idx, false);
    ++counts[want];
    home.emplace(block, want);
}

void
PaDualPolicy::onRemove(const BlockId &block)
{
    const uint8_t *which = home.find(block);
    PACACHE_ASSERT(which, "PA wrapper removal of unknown block");
    sub[*which]->onRemove(block);
    --counts[*which];
    home.erase(block);
}

BlockId
PaDualPolicy::evict(Time now, std::size_t idx)
{
    const uint8_t which = counts[0] > 0 ? 0 : 1;
    PACACHE_ASSERT(counts[which] > 0, "PA wrapper evict on empty cache");
    const BlockId victim = sub[which]->evict(now, idx);
    --counts[which];
    home.erase(victim);
    return victim;
}

} // namespace pacache
