#include "core/write_policy.hh"

#include "util/logging.hh"

namespace pacache
{

const char *
writePolicyName(WritePolicy policy)
{
    switch (policy) {
      case WritePolicy::WriteThrough:
        return "WT";
      case WritePolicy::WriteBack:
        return "WB";
      case WritePolicy::WriteBackEagerUpdate:
        return "WBEU";
      case WritePolicy::WriteThroughDeferredUpdate:
        return "WTDU";
    }
    PACACHE_PANIC("unknown write policy");
}

} // namespace pacache
