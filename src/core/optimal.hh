/**
 * @file
 * Energy-optimal off-line replacement for small instances
 * (paper Section 3.1).
 *
 * The paper defines a replacement algorithm R to be energy-optimal
 * iff no other algorithm produces a miss sequence with lower total
 * disk energy, and notes a polynomial-time dynamic program exists
 * (relegated to their technical report). This module provides an
 * exact solver for small instances by exhaustive search with
 * memoization over (access index, cache content, per-disk last-miss
 * time) — exponential in general, but it terminates quickly for the
 * instance sizes used in tests and ablations (tens of accesses, a
 * handful of cache blocks) and gives a true lower bound to validate
 * OPG and Belady against.
 *
 * Energy model: each disk access costs a fixed service energy and
 * the idle gaps between consecutive accesses to a disk are priced by
 * the Oracle-DPM lower envelope E*(gap); the trailing gap to the
 * horizon is priced without a spin-up. This is exactly how
 * scheduleEnergy() prices an arbitrary miss schedule, so off-line
 * policies can be compared apples-to-apples.
 */

#ifndef PACACHE_CORE_OPTIMAL_HH
#define PACACHE_CORE_OPTIMAL_HH

#include <vector>

#include "cache/future.hh"
#include "cache/policy.hh"
#include "disk/power_model.hh"

namespace pacache
{

/** Pricing configuration shared by the optimal solver and
 *  scheduleEnergy(). */
struct SchedulePricing
{
    const PowerModel *pm;
    Energy serviceEnergyPerMiss = 0.05; //!< J per disk access
    Time horizon = 0; //!< end of accounting (>= last access time)
};

/**
 * Price a miss schedule: for each disk, the times of its (cache
 * miss) accesses, in non-decreasing order.
 */
Energy scheduleEnergy(const std::vector<std::vector<Time>> &miss_times,
                      const SchedulePricing &pricing);

/** Result of the exact search. */
struct OptimalResult
{
    Energy energy = 0;      //!< minimum achievable total energy
    uint64_t misses = 0;    //!< misses of the optimal schedule
    uint64_t statesVisited = 0;
};

/**
 * Exact minimum-energy replacement for an access stream and cache
 * capacity. Demand caching: every access to a non-resident block is
 * a miss and the block is brought in (evicting any one resident
 * block when full); hits cost nothing.
 *
 * Exponential worst case — intended for small instances (roughly
 * |accesses| <= 30, capacity <= 4, a few distinct blocks).
 */
OptimalResult optimalEnergy(const std::vector<BlockAccess> &accesses,
                            std::size_t capacity,
                            const SchedulePricing &pricing);

/**
 * Convenience: run an off-line policy over the stream and price its
 * miss schedule with the same model, for comparison against
 * optimalEnergy().
 */
Energy policyScheduleEnergy(const std::vector<BlockAccess> &accesses,
                            std::size_t capacity,
                            ReplacementPolicy &policy,
                            const SchedulePricing &pricing);

} // namespace pacache

#endif // PACACHE_CORE_OPTIMAL_HH
