/**
 * @file
 * Storage-cache write policies (paper Section 6):
 *
 *  - WriteThrough (WT): dirty blocks go to disk immediately; the
 *    client is acknowledged only once the data is on disk.
 *  - WriteBack (WB): dirty blocks are written only when evicted.
 *  - WriteBackEagerUpdate (WBEU): write-back, plus all of a disk's
 *    dirty blocks are flushed whenever that disk becomes active
 *    (spin-up for a read miss), and a disk is forced awake when its
 *    dirty backlog exceeds a threshold.
 *  - WriteThroughDeferredUpdate (WTDU): writes aimed at a sleeping
 *    disk go to a per-disk region of a persistent, always-active log
 *    device instead (same persistency as WT); when the disk wakes,
 *    logged blocks are flushed and the region is retired via its
 *    timestamp.
 */

#ifndef PACACHE_CORE_WRITE_POLICY_HH
#define PACACHE_CORE_WRITE_POLICY_HH

namespace pacache
{

/** The four cache write policies studied in the paper. */
enum class WritePolicy
{
    WriteThrough,
    WriteBack,
    WriteBackEagerUpdate,
    WriteThroughDeferredUpdate,
};

/** Short display name ("WT", "WB", "WBEU", "WTDU"). */
const char *writePolicyName(WritePolicy policy);

} // namespace pacache

#endif // PACACHE_CORE_WRITE_POLICY_HH
