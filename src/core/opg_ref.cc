#include "core/opg_ref.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pacache
{

ReferenceOpgPolicy::ReferenceOpgPolicy(const PowerModel &pm_,
                                       DpmKind kind, Energy theta_,
                                       bool ref_pricing)
    : pm(&pm_), dpmKind(kind), theta(theta_), refPricing(ref_pricing)
{
    PACACHE_ASSERT(theta >= 0, "theta must be non-negative");
}

void
ReferenceOpgPolicy::prepare(const std::vector<BlockAccess> &accs)
{
    accesses = &accs;
    future = FutureKnowledge::buildRef(accs);

    std::size_t num_disks = 1;
    Time last = 0;
    for (const auto &a : accs) {
        num_disks = std::max<std::size_t>(num_disks, a.block.disk + 1);
        last = std::max(last, a.time);
    }
    // "No leader/follower" sentinel: far enough out that every energy
    // function has reached its linear (deepest-mode) tail.
    const auto &thr = pm->thresholds();
    const Time deepest = thr.empty() ? 0.0 : thr.back();
    bigTime = last + 4 * deepest + 1000.0;

    detMiss.assign(num_disks, {});
    residentByNext.assign(num_disks, {});
    info.clear();
    evictOrder.clear();

    // S starts as the set of all cold misses (first references).
    for (std::size_t i = 0; i < accs.size(); ++i) {
        if (future.isFirstReference(i))
            detMiss[accs[i].block.disk].insert(i);
    }
}

Time
ReferenceOpgPolicy::timeOf(std::size_t idx) const
{
    return (*accesses)[idx].time;
}

Energy
ReferenceOpgPolicy::idleEnergy(Time t) const
{
    if (refPricing) {
        return dpmKind == DpmKind::Oracle ? pm->envelopeRef(t)
                                          : pm->practicalEnergyRef(t);
    }
    return dpmKind == DpmKind::Oracle ? pm->envelope(t)
                                      : pm->practicalEnergy(t);
}

Energy
ReferenceOpgPolicy::computePenalty(DiskId disk,
                                   std::size_t next_idx) const
{
    if (next_idx == FutureKnowledge::kNever)
        return 0.0; // never re-referenced: eviction costs nothing

    const auto &s = detMiss[disk];
    auto it = s.lower_bound(next_idx);
    PACACHE_ASSERT(it == s.end() || *it != next_idx,
                   "resident block's next access is a deterministic miss");

    const Time t_x = timeOf(next_idx);
    const Time l = (it == s.begin()) ? bigTime : t_x - timeOf(*std::prev(it));
    const Time f = (it == s.end()) ? bigTime : timeOf(*it) - t_x;

    const Energy penalty =
        idleEnergy(l) + idleEnergy(f) - idleEnergy(l + f);
    return std::max<Energy>(penalty, 0.0);
}

void
ReferenceOpgPolicy::insertResident(const BlockId &block,
                                   std::size_t next_idx)
{
    const Energy penalty =
        std::max(computePenalty(block.disk, next_idx), theta);
    info[block] = Info{next_idx, penalty};
    residentByNext[block.disk].emplace(next_idx, block);
    evictOrder.insert(EvictKey{penalty, next_idx, block});
}

void
ReferenceOpgPolicy::eraseResident(const BlockId &block)
{
    auto it = info.find(block);
    PACACHE_ASSERT(it != info.end(), "OPG-ref removal of unknown block");
    const Info inf = it->second;
    info.erase(it);
    evictOrder.erase(EvictKey{inf.penalty, inf.nextIdx, block});

    auto &byNext = residentByNext[block.disk];
    auto range = byNext.equal_range(inf.nextIdx);
    for (auto rit = range.first; rit != range.second; ++rit) {
        if (rit->second == block) {
            byNext.erase(rit);
            return;
        }
    }
    PACACHE_PANIC("OPG-ref residentByNext out of sync");
}

void
ReferenceOpgPolicy::repriceRange(DiskId disk, std::size_t lo,
                                 std::size_t hi)
{
    auto &byNext = residentByNext[disk];
    for (auto it = byNext.upper_bound(lo);
         it != byNext.end() && it->first < hi; ++it) {
        if (it->first == FutureKnowledge::kNever)
            break; // penalty is pinned at zero
        const BlockId &block = it->second;
        auto iit = info.find(block);
        PACACHE_ASSERT(iit != info.end(), "repriceRange missing info");
        const Energy fresh =
            std::max(computePenalty(disk, iit->second.nextIdx), theta);
        if (fresh == iit->second.penalty)
            continue;
        evictOrder.erase(
            EvictKey{iit->second.penalty, iit->second.nextIdx, block});
        iit->second.penalty = fresh;
        evictOrder.insert(EvictKey{fresh, iit->second.nextIdx, block});
    }
}

void
ReferenceOpgPolicy::detInsert(DiskId disk, std::size_t idx)
{
    auto [it, inserted] = detMiss[disk].insert(idx);
    PACACHE_ASSERT(inserted, "duplicate deterministic miss");
    const std::size_t lo = (it == detMiss[disk].begin())
        ? 0
        : *std::prev(it);
    auto nit = std::next(it);
    const std::size_t hi = (nit == detMiss[disk].end())
        ? FutureKnowledge::kNever
        : *nit;
    repriceRange(disk, lo, hi);
}

void
ReferenceOpgPolicy::detErase(DiskId disk, std::size_t idx)
{
    auto it = detMiss[disk].find(idx);
    PACACHE_ASSERT(it != detMiss[disk].end(),
                   "miss not in deterministic-miss set");
    const std::size_t lo = (it == detMiss[disk].begin())
        ? 0
        : *std::prev(it);
    auto nit = std::next(it);
    const std::size_t hi = (nit == detMiss[disk].end())
        ? FutureKnowledge::kNever
        : *nit;
    detMiss[disk].erase(it);
    repriceRange(disk, lo, hi);
}

void
ReferenceOpgPolicy::beforeMiss(const BlockId &block, Time,
                               std::size_t idx)
{
    // The access happening now is, by definition, a deterministic
    // miss; it leaves S.
    detErase(block.disk, idx);
}

void
ReferenceOpgPolicy::onAccess(const BlockId &block, Time,
                             std::size_t idx, bool hit)
{
    PACACHE_ASSERT(accesses, "OPG-ref requires prepare() before use");
    const std::size_t next = future.nextUse(idx);
    if (hit) {
        auto it = info.find(block);
        PACACHE_ASSERT(it != info.end(), "OPG-ref hit on unknown block");
        PACACHE_ASSERT(it->second.nextIdx == idx,
                       "stale next-use index on hit");
        eraseResident(block);
    }
    insertResident(block, next);
}

void
ReferenceOpgPolicy::onRemove(const BlockId &block)
{
    // External removal behaves like an eviction: the block's next
    // reference becomes a deterministic miss.
    auto it = info.find(block);
    PACACHE_ASSERT(it != info.end(), "OPG-ref removal of unknown block");
    const std::size_t next = it->second.nextIdx;
    eraseResident(block);
    if (next != FutureKnowledge::kNever)
        detInsert(block.disk, next);
}

BlockId
ReferenceOpgPolicy::evict(Time, std::size_t)
{
    PACACHE_ASSERT(!evictOrder.empty(), "OPG-ref evict on empty cache");
    const EvictKey key = *evictOrder.begin();
    const BlockId victim = key.block;
    eraseResident(victim);
    if (key.nextIdx != FutureKnowledge::kNever)
        detInsert(victim.disk, key.nextIdx);
    return victim;
}

Energy
ReferenceOpgPolicy::penaltyOf(const BlockId &block) const
{
    auto it = info.find(block);
    PACACHE_ASSERT(it != info.end(), "penaltyOf unknown block");
    return it->second.penalty;
}

std::size_t
ReferenceOpgPolicy::deterministicMissCount(DiskId disk) const
{
    return disk < detMiss.size() ? detMiss[disk].size() : 0;
}

} // namespace pacache
