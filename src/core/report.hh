/**
 * @file
 * Shared formatting of an ExperimentResult: the summary table and the
 * per-disk breakdown the CLI prints. Lives in the library so tools,
 * benches, and examples render identical reports instead of each
 * hand-rolling the rows; the JSON view of the same numbers comes from
 * the stats serializers (EnergyStats/ResponseStats writeJson).
 */

#ifndef PACACHE_CORE_REPORT_HH
#define PACACHE_CORE_REPORT_HH

#include <iosfwd>

#include "core/experiment.hh"

namespace pacache
{

/** Print the headline summary table (energy, hit ratio, latency). */
void printSummaryReport(std::ostream &os, const ExperimentResult &r);

/** Print the per-disk breakdown table. */
void printPerDiskReport(std::ostream &os, const ExperimentResult &r);

} // namespace pacache

#endif // PACACHE_CORE_REPORT_HH
