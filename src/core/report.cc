#include "core/report.hh"

#include <algorithm>
#include <ostream>

#include "util/table.hh"

namespace pacache
{

void
printSummaryReport(std::ostream &os, const ExperimentResult &r)
{
    TextTable t;
    t.row({"total energy", fmt(r.totalEnergy, 1) + " J"});
    t.row({"hit ratio", fmtPct(r.cache.hitRatio(), 2)});
    t.row({"cold misses",
           fmtPct(static_cast<double>(r.cache.coldMisses) /
                      static_cast<double>(std::max<uint64_t>(
                          1, r.cache.accesses)),
                  2)});
    t.row({"mean response", fmt(r.responses.mean() * 1000.0, 3) + " ms"});
    t.row({"p95 response",
           fmt(r.responses.percentile(0.95) * 1000.0, 3) + " ms"});
    t.row({"max response", fmt(r.responses.max(), 3) + " s"});
    t.row({"spin-ups", std::to_string(r.energy.spinUps)});
    t.row({"spin-downs", std::to_string(r.energy.spinDowns)});
    if (r.logWrites > 0)
        t.row({"log writes", std::to_string(r.logWrites)});
    t.print(os);
}

void
printPerDiskReport(std::ostream &os, const ExperimentResult &r)
{
    TextTable d;
    d.header({"disk", "accesses", "energy (J)", "spin-ups",
              "standby (s)", "mean gap (s)"});
    for (std::size_t i = 0; i < r.perDisk.size(); ++i) {
        d.row({std::to_string(i), std::to_string(r.diskAccesses[i]),
               fmt(r.perDisk[i].total(), 0),
               std::to_string(r.perDisk[i].spinUps),
               fmt(r.perDisk[i].timePerMode.back(), 0),
               fmt(r.diskMeanInterArrival[i], 2)});
    }
    d.print(os);
}

} // namespace pacache
