#include "obs/observer.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/logging.hh"

namespace pacache::obs
{

void
SimObserver::attachMetrics(MetricRegistry *reg)
{
    registry = reg;
}

void
SimObserver::attachTrace(TraceEventWriter *writer)
{
    traceWriter = writer;
}

void
SimObserver::attachTimeline(TimelineSink *sink, Time interval)
{
    PACACHE_ASSERT(interval > 0, "timeline interval must be positive");
    timeline = sink;
    timelineInterval = interval;
    nextTick = interval;
}

void
SimObserver::enableProgress(std::ostream &err)
{
    progress = &err;
}

void
SimObserver::configureRun(std::size_t num_disks, bool has_log_device,
                          std::vector<std::string> mode_names)
{
    numDisks = num_disks;
    hasLogDevice = has_log_device;
    modeNames = std::move(mode_names);

    const std::size_t tracks = num_disks + (has_log_device ? 1 : 0);
    spans.assign(tracks, OpenSpan{});

    if (traceWriter) {
        for (std::size_t d = 0; d < num_disks; ++d) {
            traceWriter->setTrackName(static_cast<uint32_t>(d),
                                      "disk " + std::to_string(d));
        }
        if (has_log_device) {
            traceWriter->setTrackName(static_cast<uint32_t>(num_disks),
                                      "log device");
        }
    }

    if (registry) {
        cacheAccesses = &registry->counter("cache.accesses");
        cacheHits = &registry->counter("cache.hits");
        cacheEvictionsTotal =
            &registry->counter("cache.evictions.total");
        cacheEvictionsPriority =
            &registry->counter("cache.evictions.priority");
        wtduLogWrites = &registry->counter("wtdu.log_writes");
        paEpochs = &registry->counter("pa.epochs");
        paClassFlips = &registry->counter("pa.class_flips");
        wbeuForcedWakeups = &registry->counter("wbeu.forced_wakeups");
        wtduRegionRecycles =
            &registry->counter("wtdu.region_recycles");
        diskSpinUps.clear();
        diskSpinDowns.clear();
        for (std::size_t d = 0; d < tracks; ++d) {
            const std::string prefix =
                (has_log_device && d == num_disks)
                    ? std::string("log_device")
                    : "disk." + std::to_string(d);
            diskSpinUps.push_back(
                &registry->counter(prefix + ".spinups"));
            diskSpinDowns.push_back(
                &registry->counter(prefix + ".spindowns"));
        }
    }
}

void
SimObserver::nameClassifierTrack()
{
    if (classifierTrackNamed || !traceWriter)
        return;
    traceWriter->setTrackName(classifierTrack(), "pa-classifier");
    classifierTrackNamed = true;
}

// ---- run lifecycle --------------------------------------------------

void
SimObserver::runBegin(std::size_t total_accesses, Time trace_end)
{
    totalAccesses = total_accesses;
    traceEnd = trace_end;
    if (progress) {
        wallStart = std::chrono::steady_clock::now();
        lastPrint = wallStart;
        progressStarted = true;
    }
}

void
SimObserver::requestProcessed(Time now)
{
    ++processedAccesses;
    if (timeline && now >= nextTick) {
        while (now >= nextTick) {
            emitTimelineRow(nextTick);
            nextTick += timelineInterval;
        }
    }
    if (progress && (processedAccesses & 0x3FF) == 0)
        printProgress(now, false);
}

void
SimObserver::runEnd(Time horizon)
{
    if (traceWriter) {
        for (std::size_t t = 0; t < spans.size(); ++t) {
            OpenSpan &span = spans[t];
            if (span.open) {
                traceWriter->complete(static_cast<uint32_t>(t),
                                      span.label, span.start, horizon);
                span.open = false;
            }
        }
    }
    if (timeline)
        emitTimelineRow(horizon); // flush the remainder row
    if (progress)
        printProgress(horizon, true);
}

void
SimObserver::emitTimelineRow(Time t_end)
{
    PACACHE_ASSERT(snapshotFn,
                   "timeline attached without a snapshot callback");
    TimelineSnapshot cur;
    snapshotFn(cur);

    TimelineRow row;
    row.index = rowIndex++;
    row.tStart = lastRowEnd;
    row.tEnd = t_end;
    row.accesses = cur.accesses - prevSnapshot.accesses;
    row.hits = cur.hits - prevSnapshot.hits;

    row.missesPerDisk.resize(cur.missesPerDisk.size(), 0);
    prevSnapshot.missesPerDisk.resize(cur.missesPerDisk.size(), 0);
    for (std::size_t d = 0; d < cur.missesPerDisk.size(); ++d) {
        row.missesPerDisk[d] =
            cur.missesPerDisk[d] - prevSnapshot.missesPerDisk[d];
    }

    row.idleEnergyPerMode.resize(cur.idleEnergyPerMode.size(), 0.0);
    prevSnapshot.idleEnergyPerMode.resize(cur.idleEnergyPerMode.size(),
                                          0.0);
    for (std::size_t m = 0; m < cur.idleEnergyPerMode.size(); ++m) {
        row.idleEnergyPerMode[m] =
            cur.idleEnergyPerMode[m] - prevSnapshot.idleEnergyPerMode[m];
    }

    row.serviceEnergy = cur.serviceEnergy - prevSnapshot.serviceEnergy;
    row.spinUpEnergy = cur.spinUpEnergy - prevSnapshot.spinUpEnergy;
    row.spinDownEnergy =
        cur.spinDownEnergy - prevSnapshot.spinDownEnergy;
    row.spinUps = cur.spinUps - prevSnapshot.spinUps;
    row.spinDowns = cur.spinDowns - prevSnapshot.spinDowns;
    row.responseCount = cur.responseCount - prevSnapshot.responseCount;
    row.responseSum = cur.responseSum - prevSnapshot.responseSum;
    row.prioritySet = cur.prioritySet;

    timeline->emit(row);
    prevSnapshot = std::move(cur);
    lastRowEnd = t_end;
}

void
SimObserver::printProgress(Time now, bool final)
{
    const auto wall = std::chrono::steady_clock::now();
    if (!final) {
        const std::chrono::duration<double> since = wall - lastPrint;
        if (since.count() < 0.25)
            return;
    }
    lastPrint = wall;

    const std::chrono::duration<double> elapsed = wall - wallStart;
    const double rate = elapsed.count() > 0
        ? static_cast<double>(processedAccesses) / elapsed.count()
        : 0.0;
    const double pct = totalAccesses
        ? 100.0 * static_cast<double>(processedAccesses) /
              static_cast<double>(totalAccesses)
        : 0.0;

    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "\rsim %.1fs / %.1fs (%5.1f%%)  %zu/%zu blocks  "
                  "%.0f blk/s",
                  std::min(now, traceEnd), traceEnd, pct,
                  processedAccesses, totalAccesses, rate);
    *progress << buf;
    if (final)
        *progress << '\n';
    progress->flush();
}

// ---- disk hooks -----------------------------------------------------

void
SimObserver::diskPowerState(DiskId disk, std::string_view label,
                            Time now)
{
    if (!traceWriter)
        return;
    if (disk >= spans.size())
        spans.resize(disk + 1);
    OpenSpan &span = spans[disk];
    if (span.open && span.label == label)
        return; // coalesce repeated states
    if (span.open)
        traceWriter->complete(disk, span.label, span.start, now);
    span.label = std::string(label);
    span.start = now;
    span.open = true;
}

void
SimObserver::diskSpinUpStart(DiskId disk, std::string_view from_label,
                             Time now)
{
    if (registry && disk < diskSpinUps.size())
        diskSpinUps[disk]->inc();
    if (traceWriter) {
        traceWriter->instant(
            disk, "spin-up", now, "power",
            {{"from", std::string(from_label)}});
    }
}

void
SimObserver::diskSpinDownStart(DiskId disk,
                               std::string_view target_label, Time now)
{
    if (registry && disk < diskSpinDowns.size())
        diskSpinDowns[disk]->inc();
    if (traceWriter) {
        traceWriter->instant(
            disk, "spin-down", now, "power",
            {{"target", std::string(target_label)}});
    }
}

// ---- cache hooks ----------------------------------------------------

void
SimObserver::cacheAccess(bool hit)
{
    if (!registry)
        return;
    cacheAccesses->inc();
    if (hit)
        cacheHits->inc();
}

void
SimObserver::cacheEviction(const BlockId &victim, bool /*dirty*/)
{
    if (!registry)
        return;
    cacheEvictionsTotal->inc();
    if (priorityFn && priorityFn(victim.disk))
        cacheEvictionsPriority->inc();
}

// ---- PA classifier hooks --------------------------------------------

void
SimObserver::paEpochBoundary(uint64_t epoch, Time now)
{
    if (registry)
        paEpochs->inc();
    if (traceWriter) {
        nameClassifierTrack();
        traceWriter->instant(classifierTrack(), "epoch", now, "pa",
                             {{"epoch", std::to_string(epoch)}});
    }
}

void
SimObserver::paClassFlip(DiskId disk, bool priority, Time now)
{
    if (registry)
        paClassFlips->inc();
    if (traceWriter) {
        nameClassifierTrack();
        traceWriter->instant(
            disk < spans.size() ? disk : classifierTrack(),
            priority ? "→ priority" : "→ regular", now, "pa",
            {{"disk", std::to_string(disk)}});
    }
}

// ---- write-policy hooks ---------------------------------------------

void
SimObserver::wbeuForcedWake(DiskId disk, std::size_t dirty_blocks,
                            Time now)
{
    if (registry)
        wbeuForcedWakeups->inc();
    if (traceWriter) {
        traceWriter->instant(
            disk, "wbeu-forced-wake", now, "write",
            {{"dirty_blocks", std::to_string(dirty_blocks)}});
    }
}

void
SimObserver::wtduLogWrite()
{
    if (registry)
        wtduLogWrites->inc();
}

void
SimObserver::wtduRegionRecycle(DiskId disk, Time now)
{
    if (registry)
        wtduRegionRecycles->inc();
    if (traceWriter)
        traceWriter->instant(disk, "wtdu-region-recycle", now, "write");
}

} // namespace pacache::obs
