/**
 * @file
 * SimObserver — the single hook surface the simulator components talk
 * to. It fans each hook out to whichever sinks are attached:
 *
 *   - a MetricRegistry (hierarchical counters/gauges/histograms),
 *   - a TraceEventWriter (Chrome trace-event JSON: one power-mode
 *     residency track per disk plus instant events for spin-ups,
 *     spin-downs, PA epochs/class flips, WBEU forced wake-ups and
 *     WTDU log-region recycling),
 *   - a TimelineSink (per-interval delta rows), and
 *   - a progress meter (simulated-time progress and blocks/sec to a
 *     stream, normally stderr).
 *
 * Components hold a `SimObserver *` that is null by default; every
 * hook is guarded by that null check, so an un-instrumented run pays
 * one untaken branch per hook ("pay for what you use").
 *
 * Wiring order: attach sinks, call configureRun() (names the trace
 * tracks and sizes per-disk state) *before* constructing the disks,
 * and install the timeline snapshot callback before run().
 */

#ifndef PACACHE_OBS_OBSERVER_HH
#define PACACHE_OBS_OBSERVER_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hh"
#include "obs/timeline.hh"
#include "obs/trace_writer.hh"
#include "sim/types.hh"

namespace pacache::obs
{

/** Cumulative run statistics, filled by the snapshot callback. */
struct TimelineSnapshot
{
    uint64_t accesses = 0;
    uint64_t hits = 0;
    std::vector<uint64_t> missesPerDisk;
    std::vector<Energy> idleEnergyPerMode;
    Energy serviceEnergy = 0;
    Energy spinUpEnergy = 0;
    Energy spinDownEnergy = 0;
    uint64_t spinUps = 0;
    uint64_t spinDowns = 0;
    uint64_t responseCount = 0;
    double responseSum = 0;
    std::vector<uint32_t> prioritySet;
};

/** Observability fan-out for one simulation run. */
class SimObserver
{
  public:
    SimObserver() = default;
    SimObserver(const SimObserver &) = delete;
    SimObserver &operator=(const SimObserver &) = delete;

    // ---- wiring ----------------------------------------------------

    void attachMetrics(MetricRegistry *registry);
    void attachTrace(TraceEventWriter *writer);
    void attachTimeline(TimelineSink *sink, Time interval);
    void enableProgress(std::ostream &err);

    /**
     * Declare the run layout: data-disk count, whether a WTDU log
     * device exists (it gets track @c num_disks), and the power-mode
     * names (for residency labels in metrics finalization).
     */
    void configureRun(std::size_t num_disks, bool has_log_device,
                      std::vector<std::string> mode_names);

    /** Install the cumulative-statistics provider for timeline rows. */
    void setSnapshotFn(std::function<void(TimelineSnapshot &)> fn)
    {
        snapshotFn = std::move(fn);
    }

    /** Predicate "is this disk currently PA-priority?" (may be null). */
    void setPriorityFn(std::function<bool(DiskId)> fn)
    {
        priorityFn = std::move(fn);
    }

    MetricRegistry *metrics() { return registry; }
    TraceEventWriter *trace() { return traceWriter; }

    // ---- run lifecycle (StorageSystem) -----------------------------

    /** Start of run(): request count and trace end (for progress). */
    void runBegin(std::size_t total_accesses, Time trace_end);

    /** One block access has been fully processed at simulated @p now. */
    void requestProcessed(Time now);

    /**
     * End of run(), after disk finalization at @p horizon: closes the
     * open residency spans, emits the final timeline row, prints the
     * progress summary.
     */
    void runEnd(Time horizon);

    // ---- disk hooks ------------------------------------------------

    /** The disk entered a new activity/power state (residency track). */
    void diskPowerState(DiskId disk, std::string_view label, Time now);

    void diskSpinUpStart(DiskId disk, std::string_view from_label,
                         Time now);
    void diskSpinDownStart(DiskId disk, std::string_view target_label,
                           Time now);

    // ---- cache hooks -----------------------------------------------

    void cacheAccess(bool hit);
    void cacheEviction(const BlockId &victim, bool dirty);

    // ---- PA classifier hooks ---------------------------------------

    void paEpochBoundary(uint64_t epoch, Time now);
    void paClassFlip(DiskId disk, bool priority, Time now);

    // ---- write-policy hooks (StorageSystem) ------------------------

    void wbeuForcedWake(DiskId disk, std::size_t dirty_blocks, Time now);
    void wtduLogWrite();
    void wtduRegionRecycle(DiskId disk, Time now);

  private:
    struct OpenSpan
    {
        std::string label;
        Time start = 0;
        bool open = false;
    };

    uint32_t classifierTrack() const
    {
        return static_cast<uint32_t>(numDisks) + 1;
    }

    void nameClassifierTrack();
    void emitTimelineRow(Time t_end);
    void printProgress(Time now, bool final);

    // Sinks.
    MetricRegistry *registry = nullptr;
    TraceEventWriter *traceWriter = nullptr;
    TimelineSink *timeline = nullptr;
    std::ostream *progress = nullptr;

    // Layout.
    std::size_t numDisks = 0;
    bool hasLogDevice = false;
    std::vector<std::string> modeNames;

    // Hot-path counters, resolved once at configureRun.
    Counter *cacheAccesses = nullptr;
    Counter *cacheHits = nullptr;
    Counter *cacheEvictionsTotal = nullptr;
    Counter *cacheEvictionsPriority = nullptr;
    Counter *wtduLogWrites = nullptr;
    Counter *paEpochs = nullptr;
    Counter *paClassFlips = nullptr;
    Counter *wbeuForcedWakeups = nullptr;
    Counter *wtduRegionRecycles = nullptr;
    std::vector<Counter *> diskSpinUps;
    std::vector<Counter *> diskSpinDowns;

    // Trace state.
    std::vector<OpenSpan> spans;
    bool classifierTrackNamed = false;

    // Timeline state.
    Time timelineInterval = 0;
    Time nextTick = 0;
    Time lastRowEnd = 0;
    uint64_t rowIndex = 0;
    TimelineSnapshot prevSnapshot;
    std::function<void(TimelineSnapshot &)> snapshotFn;
    std::function<bool(DiskId)> priorityFn;

    // Progress state.
    std::size_t totalAccesses = 0;
    std::size_t processedAccesses = 0;
    Time traceEnd = 0;
    std::chrono::steady_clock::time_point wallStart;
    std::chrono::steady_clock::time_point lastPrint;
    bool progressStarted = false;
};

} // namespace pacache::obs

#endif // PACACHE_OBS_OBSERVER_HH
