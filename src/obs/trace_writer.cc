#include "obs/trace_writer.hh"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/json.hh"
#include "util/logging.hh"

namespace pacache::obs
{

int64_t
TraceEventWriter::toMicros(Time t)
{
    return static_cast<int64_t>(std::llround(t * 1e6));
}

void
TraceEventWriter::setTrackName(uint32_t track, std::string name)
{
    Event e;
    e.phase = 'M';
    e.track = track;
    e.tsUs = 0;
    e.durUs = 0;
    e.name = "thread_name";
    e.category = "__metadata";
    e.args.emplace_back("name", std::move(name));
    events.push_back(std::move(e));
}

void
TraceEventWriter::complete(uint32_t track, std::string name, Time start,
                           Time end, const char *category)
{
    PACACHE_ASSERT(end >= start - 1e-12, "negative-duration trace event");
    Event e;
    e.phase = 'X';
    e.track = track;
    e.tsUs = toMicros(start);
    e.durUs = std::max<int64_t>(0, toMicros(end) - e.tsUs);
    e.name = std::move(name);
    e.category = category;
    events.push_back(std::move(e));
}

void
TraceEventWriter::instant(uint32_t track, std::string name, Time t,
                          const char *category, std::vector<Arg> args)
{
    Event e;
    e.phase = 'i';
    e.track = track;
    e.tsUs = toMicros(t);
    e.durUs = 0;
    e.name = std::move(name);
    e.category = category;
    e.args = std::move(args);
    events.push_back(std::move(e));
}

void
TraceEventWriter::writeJson(std::ostream &os) const
{
    // Sort a copy of the index so writeJson stays const/idempotent.
    std::vector<std::size_t> order(events.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                         // Metadata first, then by timestamp.
                         const bool ma = events[a].phase == 'M';
                         const bool mb = events[b].phase == 'M';
                         if (ma != mb)
                             return ma;
                         return events[a].tsUs < events[b].tsUs;
                     });

    JsonWriter json(os);
    json.beginObject();
    json.kv("displayTimeUnit", "ms");
    json.key("traceEvents").beginArray();
    for (const std::size_t i : order) {
        const Event &e = events[i];
        json.beginObject();
        json.kv("name", e.name);
        json.kv("cat", e.category);
        json.kv("ph", std::string_view(&e.phase, 1));
        json.kv("pid", uint64_t{0});
        json.kv("tid", uint64_t{e.track});
        json.kv("ts", e.tsUs);
        if (e.phase == 'X')
            json.kv("dur", e.durUs);
        if (e.phase == 'i')
            json.kv("s", "t"); // thread-scoped instant
        if (!e.args.empty()) {
            json.key("args").beginObject();
            for (const Arg &a : e.args)
                json.kv(a.first, a.second);
            json.endObject();
        }
        json.endObject();
    }
    json.endArray();
    json.endObject();
    os << '\n';
}

} // namespace pacache::obs
