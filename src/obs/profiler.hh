/**
 * @file
 * Scoped wall-clock profiler for the simulator's own phases (trace
 * ingest, oracle precompute, replay, reporting). ProfileScope is an
 * RAII timer; phases nest, and the profiler aggregates per-phase
 * call counts, total (inclusive) and self (exclusive) time. The
 * result can be printed as a summary table and exported as Chrome
 * trace duration events through TraceEventWriter, on a dedicated
 * track so simulator wall-time sits next to simulated disk activity
 * in the same Perfetto view.
 *
 * A null Profiler* disables everything: ProfileScope against nullptr
 * is a no-op, matching the null-observer convention.
 */

#ifndef PACACHE_OBS_PROFILER_HH
#define PACACHE_OBS_PROFILER_HH

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pacache::obs
{

class TraceEventWriter;

/** Aggregated statistics for one phase name. */
struct ProfilePhase
{
    std::string name;
    uint64_t calls = 0;
    double totalSeconds = 0; //!< inclusive (children counted)
    double selfSeconds = 0;  //!< exclusive (children subtracted)
};

/** Collects nested phase timings for one process run. */
class Profiler
{
  public:
    Profiler();

    /** Open a phase; pair with exit(). Prefer ProfileScope. */
    void enter(const std::string &name);
    void exit();

    /**
     * Aggregated phases in first-entered order. Call after all
     * scopes closed (asserts the stack is empty).
     */
    std::vector<ProfilePhase> phases() const;

    /** Seconds of wall clock since the profiler was constructed. */
    double elapsed() const;

    /**
     * Append every recorded span as a duration event on @p track
     * (wall-clock seconds since construction as the time axis) and
     * name the track.
     */
    void emitTrace(TraceEventWriter &trace,
                   uint32_t track = kProfileTrack) const;

    /** Print the summary table (name, calls, total, self). */
    void writeSummary(std::ostream &os) const;

    /**
     * Track id for profiler spans, far above any disk track id so
     * the lanes never collide (disks use 0..N+1).
     */
    static constexpr uint32_t kProfileTrack = 4096;

  private:
    using Clock = std::chrono::steady_clock;

    struct Span
    {
        std::string name;
        double start = 0;    //!< seconds since profiler construction
        double end = 0;
        int depth = 0;
        double childTime = 0; //!< summed durations of direct children
    };

    double now() const;

    Clock::time_point epoch;
    std::vector<Span> spans;      //!< closed spans, in open order
    std::vector<std::size_t> open; //!< indices into spans (the stack)
};

/** RAII phase scope; safe on a null profiler. */
class ProfileScope
{
  public:
    ProfileScope(Profiler *profiler, const char *name)
        : prof(profiler)
    {
        if (prof)
            prof->enter(name);
    }

    ~ProfileScope()
    {
        if (prof)
            prof->exit();
    }

    ProfileScope(const ProfileScope &) = delete;
    ProfileScope &operator=(const ProfileScope &) = delete;

  private:
    Profiler *prof;
};

} // namespace pacache::obs

#endif // PACACHE_OBS_PROFILER_HH
