/**
 * @file
 * Chrome trace-event writer: buffers duration ("complete", ph "X"),
 * instant (ph "i"), and track-name metadata (ph "M") events during a
 * simulation and serializes them as trace-event JSON loadable in
 * Perfetto (ui.perfetto.dev) or chrome://tracing.
 *
 * Simulated seconds map to trace microseconds. Events are buffered
 * and sorted by timestamp before writing, so the emitted file has
 * monotonically non-decreasing "ts" fields even though duration
 * events are recorded when they *close* (their ts is the open time).
 */

#ifndef PACACHE_OBS_TRACE_WRITER_HH
#define PACACHE_OBS_TRACE_WRITER_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace pacache::obs
{

/** Buffering trace-event recorder. */
class TraceEventWriter
{
  public:
    /** One "name": "value" argument attached to an event. */
    using Arg = std::pair<std::string, std::string>;

    /** Name a track (trace "thread"); shown as the lane label. */
    void setTrackName(uint32_t track, std::string name);

    /** Record a duration (complete) event on @p track. */
    void complete(uint32_t track, std::string name, Time start,
                  Time end, const char *category = "power");

    /** Record an instant event on @p track. */
    void instant(uint32_t track, std::string name, Time t,
                 const char *category = "event",
                 std::vector<Arg> args = {});

    std::size_t eventCount() const { return events.size(); }

    /**
     * Serialize everything as {"traceEvents":[...]} with events in
     * non-decreasing timestamp order. The buffer is left intact, so
     * this is safe to call more than once.
     */
    void writeJson(std::ostream &os) const;

  private:
    struct Event
    {
        char phase;       //!< 'X', 'i', or 'M'
        uint32_t track;
        int64_t tsUs;     //!< microseconds
        int64_t durUs;    //!< for 'X'
        std::string name;
        const char *category;
        std::vector<Arg> args;
    };

    static int64_t toMicros(Time t);

    std::vector<Event> events;
};

} // namespace pacache::obs

#endif // PACACHE_OBS_TRACE_WRITER_HH
