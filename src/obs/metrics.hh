/**
 * @file
 * MetricRegistry — hierarchical counters, gauges, and histograms for
 * simulator observability.
 *
 * Metrics are named with dot-separated paths ("disk.3.spinups",
 * "cache.evictions.priority", "wtdu.log_writes"); the JSON snapshot
 * nests along the dots, the flat-text snapshot prints one
 * "name value" line per metric. Because nesting must be unambiguous,
 * a name may not be a dot-prefix of another registered name (that
 * would make it both a leaf and an object) — registering one is a
 * fatal configuration error, as is re-registering a name as a
 * different metric kind. Re-registering the same name with the same
 * kind returns the existing instrument.
 *
 * Cost model: instruments are plain slots (a counter increment is one
 * add); components that might run without observability hold a null
 * registry/observer pointer and skip the call entirely, so an
 * un-instrumented run pays only an untaken branch per hook.
 *
 * Threading contract: a MetricRegistry and its instruments are
 * SINGLE-WRITER. Registration mutates the name tree, and Counter /
 * Gauge / Histogram updates are non-atomic on purpose — making them
 * atomic would put contended read-modify-writes on the simulator hot
 * path (see the micro_obs overhead gate). A registry must therefore
 * be confined to one thread at a time: either one simulation thread
 * owns it outright, or each concurrent lane keeps its own
 * thread-local state and the lanes are combined after the fact
 * (runner/sharded_metrics.hh merges per-worker registries; the serve
 * front-end keeps all statistics shard-local under the stripe lock
 * and merges them in ServeServer::finish()). Snapshots (writeJson /
 * writeFlat) are reads and may only run once writers have quiesced.
 */

#ifndef PACACHE_OBS_METRICS_HH
#define PACACHE_OBS_METRICS_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "util/histogram.hh"

namespace pacache::obs
{

/** Monotonically increasing counter (no decrement API by design). */
class Counter
{
  public:
    void inc(uint64_t by = 1) { count += by; }
    uint64_t value() const { return count; }

  private:
    uint64_t count = 0;
};

/** Last-write-wins scalar. */
class Gauge
{
  public:
    void set(double v) { val = v; }
    double value() const { return val; }

  private:
    double val = 0.0;
};

/**
 * Positive-value distribution with geometric bins; tracks exact
 * count/mean/min/max and bin-interpolated percentiles.
 */
class Histogram
{
  public:
    /** Geometric bins spanning [min_edge, max_edge]. */
    Histogram(double min_edge, double max_edge,
              std::size_t bins_per_decade = 8)
        : bins(IntervalHistogram::geometric(min_edge, max_edge,
                                            bins_per_decade))
    {
    }

    void record(double v);

    uint64_t count() const { return bins.sampleCount(); }
    double mean() const { return bins.mean(); }
    double min() const { return bins.sampleCount() ? minSeen : 0.0; }
    double max() const { return bins.sampleCount() ? maxSeen : 0.0; }

    /** p in [0,1]; bin-interpolated quantile. */
    double percentile(double p) const { return bins.quantile(p); }

  private:
    IntervalHistogram bins;
    double minSeen = 0.0;
    double maxSeen = 0.0;
};

/** Registry of named instruments with snapshot serialization. */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /** Find-or-create. Fatal on kind or hierarchy collision. */
    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Histogram &histogram(std::string_view name, double min_edge = 1e-6,
                         double max_edge = 1e6);

    std::size_t size() const { return slots.size(); }

    /**
     * Nested-object JSON snapshot: dot segments become objects,
     * leaves become numbers (histograms become summary objects).
     */
    void writeJson(std::ostream &os) const;

    /**
     * Flat text snapshot: one "name value" line per metric in name
     * order; histograms expand to .count/.mean/.p50/.p95/.p99/.max
     * pseudo-leaves.
     */
    void writeText(std::ostream &os) const;

    /**
     * Prometheus-style text exposition: one "name value" line per
     * metric with names sanitized to [a-zA-Z0-9_] (dots and any
     * other byte become '_'; a leading digit gets a '_' prefix),
     * each preceded by a "# TYPE" comment. Histograms expand to
     * _count/_mean/_p50/_p95/_p99/_max gauge lines.
     */
    void writePrometheus(std::ostream &os) const;

  private:
    enum class Kind
    {
        Counter,
        Gauge,
        Histogram
    };

    struct Slot
    {
        Kind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    /** Validate the name and reject dot-prefix collisions. */
    Slot &findOrCreate(std::string_view name, Kind kind);

    std::map<std::string, Slot, std::less<>> slots;
};

} // namespace pacache::obs

#endif // PACACHE_OBS_METRICS_HH
