#include "obs/timeline.hh"

#include <ostream>

#include "util/json.hh"

namespace pacache::obs
{

Energy
TimelineRow::totalEnergy() const
{
    Energy e = serviceEnergy + spinUpEnergy + spinDownEnergy;
    for (const Energy m : idleEnergyPerMode)
        e += m;
    return e;
}

double
TimelineRow::meanResponse() const
{
    return responseCount
               ? responseSum / static_cast<double>(responseCount)
               : 0.0;
}

TimelineWriter::Format
TimelineWriter::formatForPath(const std::string &path)
{
    const std::string suffix = ".csv";
    if (path.size() >= suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(),
                     suffix) == 0) {
        return Format::Csv;
    }
    return Format::Jsonl;
}

void
TimelineWriter::emit(const TimelineRow &row)
{
    if (fmt == Format::Jsonl)
        emitJsonl(row);
    else
        emitCsv(row);
}

void
TimelineWriter::emitJsonl(const TimelineRow &row)
{
    JsonWriter json(*out);
    json.beginObject();
    json.kv("epoch", row.index);
    json.kv("t_start", row.tStart);
    json.kv("t_end", row.tEnd);
    json.kv("accesses", row.accesses);
    json.kv("hits", row.hits);
    json.kv("hit_ratio", row.hitRatio());
    json.key("misses_per_disk").beginArray();
    for (const uint64_t m : row.missesPerDisk)
        json.value(m);
    json.endArray();
    json.key("idle_energy_per_mode_j").beginArray();
    for (const Energy e : row.idleEnergyPerMode)
        json.value(e);
    json.endArray();
    json.kv("service_energy_j", row.serviceEnergy);
    json.kv("spinup_energy_j", row.spinUpEnergy);
    json.kv("spindown_energy_j", row.spinDownEnergy);
    json.kv("total_energy_j", row.totalEnergy());
    json.kv("spinups", row.spinUps);
    json.kv("spindowns", row.spinDowns);
    json.kv("response_count", row.responseCount);
    json.kv("response_sum_s", row.responseSum);
    json.kv("mean_response_ms", row.meanResponse() * 1e3);
    json.key("priority_disks").beginArray();
    for (const uint32_t d : row.prioritySet)
        json.value(uint64_t{d});
    json.endArray();
    json.endObject();
    *out << '\n';
}

void
TimelineWriter::emitCsv(const TimelineRow &row)
{
    if (!wroteHeader) {
        *out << "epoch,t_start,t_end,accesses,hits,hit_ratio,misses,"
                "service_energy_j,spinup_energy_j,spindown_energy_j,"
                "idle_energy_j,total_energy_j,spinups,spindowns,"
                "response_count,mean_response_ms,priority_disks\n";
        wroteHeader = true;
    }
    uint64_t misses = 0;
    for (const uint64_t m : row.missesPerDisk)
        misses += m;
    Energy idle = 0;
    for (const Energy e : row.idleEnergyPerMode)
        idle += e;
    *out << row.index << ',' << row.tStart << ',' << row.tEnd << ','
         << row.accesses << ',' << row.hits << ',' << row.hitRatio()
         << ',' << misses << ',' << row.serviceEnergy << ','
         << row.spinUpEnergy << ',' << row.spinDownEnergy << ','
         << idle << ',' << row.totalEnergy() << ',' << row.spinUps
         << ',' << row.spinDowns << ',' << row.responseCount << ','
         << row.meanResponse() * 1e3 << ',';
    // The priority set is ";"-separated so the CSV stays one cell.
    for (std::size_t i = 0; i < row.prioritySet.size(); ++i)
        *out << (i ? ";" : "") << row.prioritySet[i];
    *out << '\n';
}

} // namespace pacache::obs
