/**
 * @file
 * Energy-attribution ledger: decomposes each disk's EnergyStats into
 * {active, per-power-mode idle, spin-up by wake cause, spin-down}
 * rows and enforces the conservation invariant — the rows sum back
 * to EnergyStats::total(), and the by-cause spin-up rows sum to the
 * spin-up totals (energy within 1e-9 relative, counts exactly).
 * This is the paper's "where does the energy go" question answered
 * per run: the idle/transition split of Figures 6-9 plus *why* each
 * spin-up happened, which no aggregate figure shows.
 */

#ifndef PACACHE_OBS_ENERGY_LEDGER_HH
#define PACACHE_OBS_ENERGY_LEDGER_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "stats/energy_stats.hh"

namespace pacache
{
class JsonWriter;
}

namespace pacache::obs
{

/** Relative tolerance of the ledger conservation invariant. */
constexpr double kLedgerConservationTol = 1e-9;

/**
 * Relative error of the ledger decomposition of @p stats: how far
 * the attributed rows (service + idle + spin-down + per-cause
 * spin-up energy) land from total(), and the per-cause spin-up
 * energies from spinUpEnergy, as a fraction of the larger total.
 * Count mismatches (spinUps != sum of spinUpsByCause) report as 1.0
 * — an unattributed transition is a bug, not a rounding artifact.
 */
double ledgerRelError(const EnergyStats &stats);

/** Max ledgerRelError over per-disk stats and their aggregate. */
double ledgerMaxRelError(const std::vector<EnergyStats> &per_disk);

/** The per-run attribution report behind --energy-ledger. */
class EnergyLedger
{
  public:
    /** @param mode_names one name per power mode (may be empty). */
    explicit EnergyLedger(std::vector<std::string> mode_names = {})
        : modeNames(std::move(mode_names)) {}

    /** Append one disk's breakdown (label e.g. "disk3"). */
    void addDisk(std::string label, const EnergyStats &stats);

    /** Aggregate over every added disk. */
    const EnergyStats &total() const { return aggregate; }

    /** Max conservation error across disks and the aggregate. */
    double maxRelError() const;

    /** True when every row set reconciles within the tolerance. */
    bool conserves() const
    {
        return maxRelError() <= kLedgerConservationTol;
    }

    /**
     * Append the ledger as a JSON value: per-disk and total row
     * objects of {active_j, idle_per_mode_j, spinup_j, spindown_j,
     * total_j, spinups_by_cause, spinup_energy_by_cause_j,
     * conservation_rel_error}.
     */
    void writeJsonValue(JsonWriter &json) const;

    /** Human-readable table (the --energy-ledger console report). */
    void writeTable(std::ostream &os) const;

  private:
    struct Entry
    {
        std::string label;
        EnergyStats stats;
    };

    void writeEntryValue(JsonWriter &json,
                         const EnergyStats &stats) const;

    std::vector<std::string> modeNames;
    std::vector<Entry> disks;
    EnergyStats aggregate;
};

} // namespace pacache::obs

#endif // PACACHE_OBS_ENERGY_LEDGER_HH
