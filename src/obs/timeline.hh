/**
 * @file
 * Per-epoch timeline: at a fixed simulated-time interval the observer
 * snapshots the cumulative run statistics and emits the *delta* since
 * the previous row. Because every row is a difference of consecutive
 * cumulative snapshots (and a final row flushes the remainder at the
 * simulation horizon), the column sums over all rows reconcile with
 * the end-of-run aggregate statistics — the property the consistency
 * tests assert.
 *
 * TimelineWriter serializes rows as JSONL (one JSON object per line)
 * or CSV, chosen by file extension in the CLI.
 */

#ifndef PACACHE_OBS_TIMELINE_HH
#define PACACHE_OBS_TIMELINE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace pacache::obs
{

/** One timeline interval's worth of activity (all deltas except the
 *  priority set, which is the classification current at row end). */
struct TimelineRow
{
    uint64_t index = 0; //!< 0-based interval number
    Time tStart = 0;
    Time tEnd = 0;

    uint64_t accesses = 0; //!< cache accesses in this interval
    uint64_t hits = 0;
    std::vector<uint64_t> missesPerDisk; //!< disk accesses per disk

    std::vector<Energy> idleEnergyPerMode;
    Energy serviceEnergy = 0;
    Energy spinUpEnergy = 0;
    Energy spinDownEnergy = 0;
    uint64_t spinUps = 0;
    uint64_t spinDowns = 0;

    uint64_t responseCount = 0;
    double responseSum = 0; //!< seconds; mean = sum / count

    std::vector<uint32_t> prioritySet; //!< PA priority disks (ids)

    double
    hitRatio() const
    {
        return accesses ? static_cast<double>(hits) /
                              static_cast<double>(accesses)
                        : 0.0;
    }

    Energy totalEnergy() const;
    double meanResponse() const;
};

/** Destination for timeline rows. */
class TimelineSink
{
  public:
    virtual ~TimelineSink() = default;
    virtual void emit(const TimelineRow &row) = 0;
};

/** Streams rows as JSONL or CSV. */
class TimelineWriter : public TimelineSink
{
  public:
    enum class Format
    {
        Jsonl,
        Csv
    };

    TimelineWriter(std::ostream &os, Format format)
        : out(&os), fmt(format)
    {
    }

    void emit(const TimelineRow &row) override;

    /** Pick CSV for a ".csv" path, JSONL otherwise. */
    static Format formatForPath(const std::string &path);

  private:
    void emitJsonl(const TimelineRow &row);
    void emitCsv(const TimelineRow &row);

    std::ostream *out;
    Format fmt;
    bool wroteHeader = false;
};

} // namespace pacache::obs

#endif // PACACHE_OBS_TIMELINE_HH
