#include "obs/profiler.hh"

#include <iomanip>
#include <ostream>

#include "obs/trace_writer.hh"
#include "util/logging.hh"

namespace pacache::obs
{

Profiler::Profiler() : epoch(Clock::now()) {}

double
Profiler::now() const
{
    return std::chrono::duration<double>(Clock::now() - epoch)
        .count();
}

double
Profiler::elapsed() const
{
    return now();
}

void
Profiler::enter(const std::string &name)
{
    Span span;
    span.name = name;
    span.start = now();
    span.depth = static_cast<int>(open.size());
    open.push_back(spans.size());
    spans.push_back(std::move(span));
}

void
Profiler::exit()
{
    PACACHE_ASSERT(!open.empty(), "ProfileScope exit without enter");
    const std::size_t idx = open.back();
    open.pop_back();
    Span &span = spans[idx];
    span.end = now();
    if (!open.empty())
        spans[open.back()].childTime += span.end - span.start;
}

std::vector<ProfilePhase>
Profiler::phases() const
{
    PACACHE_ASSERT(open.empty(),
                   "profiler phases read with scopes still open");
    std::vector<ProfilePhase> result;
    for (const Span &span : spans) {
        ProfilePhase *phase = nullptr;
        for (ProfilePhase &p : result) {
            if (p.name == span.name) {
                phase = &p;
                break;
            }
        }
        if (!phase) {
            result.push_back(ProfilePhase{span.name, 0, 0.0, 0.0});
            phase = &result.back();
        }
        const double total = span.end - span.start;
        ++phase->calls;
        phase->totalSeconds += total;
        phase->selfSeconds += total - span.childTime;
    }
    return result;
}

void
Profiler::emitTrace(TraceEventWriter &trace, uint32_t track) const
{
    PACACHE_ASSERT(open.empty(),
                   "profiler trace emitted with scopes still open");
    trace.setTrackName(track, "profiler (wall clock)");
    for (const Span &span : spans)
        trace.complete(track, span.name, span.start, span.end,
                       "profile");
}

void
Profiler::writeSummary(std::ostream &os) const
{
    const std::vector<ProfilePhase> rows = phases();
    os << "profile (wall clock):\n";
    os << "  " << std::left << std::setw(20) << "phase" << std::right
       << std::setw(8) << "calls" << std::setw(12) << "total ms"
       << std::setw(12) << "self ms" << "\n";
    const auto flags = os.flags();
    const auto precision = os.precision();
    os << std::fixed << std::setprecision(1);
    for (const ProfilePhase &p : rows) {
        os << "  " << std::left << std::setw(20) << p.name
           << std::right << std::setw(8) << p.calls << std::setw(12)
           << p.totalSeconds * 1e3 << std::setw(12)
           << p.selfSeconds * 1e3 << "\n";
    }
    os.flags(flags);
    os.precision(precision);
}

} // namespace pacache::obs
