#include "obs/metrics.hh"

#include <algorithm>
#include <ostream>
#include <vector>

#include "util/json.hh"
#include "util/logging.hh"

namespace pacache::obs
{

void
Histogram::record(double v)
{
    if (bins.sampleCount() == 0) {
        minSeen = v;
        maxSeen = v;
    } else {
        minSeen = std::min(minSeen, v);
        maxSeen = std::max(maxSeen, v);
    }
    bins.record(v);
}

namespace
{

bool
validMetricName(std::string_view name)
{
    if (name.empty() || name.front() == '.' || name.back() == '.')
        return false;
    for (std::size_t i = 1; i < name.size(); ++i) {
        if (name[i] == '.' && name[i - 1] == '.')
            return false; // empty segment
    }
    return true;
}

std::vector<std::string_view>
splitSegments(std::string_view name)
{
    std::vector<std::string_view> segs;
    std::size_t start = 0;
    while (true) {
        const std::size_t dot = name.find('.', start);
        if (dot == std::string_view::npos) {
            segs.push_back(name.substr(start));
            return segs;
        }
        segs.push_back(name.substr(start, dot - start));
        start = dot + 1;
    }
}

/** True when @p shorter is a dot-boundary prefix of @p longer. */
bool
dotPrefix(std::string_view shorter, std::string_view longer)
{
    return longer.size() > shorter.size() &&
           longer[shorter.size()] == '.' &&
           longer.substr(0, shorter.size()) == shorter;
}

const char *
kindName(int kind)
{
    switch (kind) {
      case 0: return "counter";
      case 1: return "gauge";
      case 2: return "histogram";
    }
    return "?";
}

} // namespace

MetricRegistry::Slot &
MetricRegistry::findOrCreate(std::string_view name, Kind kind)
{
    if (!validMetricName(name))
        PACACHE_FATAL("invalid metric name '", name, "'");

    if (const auto it = slots.find(name); it != slots.end()) {
        if (it->second.kind != kind) {
            PACACHE_FATAL("metric '", name, "' already registered as a ",
                          kindName(static_cast<int>(it->second.kind)),
                          ", requested as a ",
                          kindName(static_cast<int>(kind)));
        }
        return it->second;
    }

    // A name that is a dot-prefix of another (either way) would be
    // both a leaf and an object in the nested snapshot.
    for (const auto &[existing, slot] : slots) {
        if (dotPrefix(existing, name) || dotPrefix(name, existing)) {
            PACACHE_FATAL("metric '", name, "' collides with '", existing,
                          "': one is a dot-prefix of the other");
        }
    }

    Slot slot;
    slot.kind = kind;
    auto [it, inserted] = slots.emplace(std::string(name), std::move(slot));
    PACACHE_ASSERT(inserted, "metric emplace failed");
    return it->second;
}

Counter &
MetricRegistry::counter(std::string_view name)
{
    Slot &s = findOrCreate(name, Kind::Counter);
    if (!s.counter)
        s.counter = std::make_unique<Counter>();
    return *s.counter;
}

Gauge &
MetricRegistry::gauge(std::string_view name)
{
    Slot &s = findOrCreate(name, Kind::Gauge);
    if (!s.gauge)
        s.gauge = std::make_unique<Gauge>();
    return *s.gauge;
}

Histogram &
MetricRegistry::histogram(std::string_view name, double min_edge,
                          double max_edge)
{
    Slot &s = findOrCreate(name, Kind::Histogram);
    if (!s.histogram)
        s.histogram = std::make_unique<Histogram>(min_edge, max_edge);
    return *s.histogram;
}

namespace
{

void
writeLeaf(JsonWriter &json, const char *key, const Histogram &h)
{
    json.key(key).beginObject();
    json.kv("count", h.count());
    json.kv("mean", h.mean());
    json.kv("min", h.min());
    json.kv("p50", h.percentile(0.50));
    json.kv("p95", h.percentile(0.95));
    json.kv("p99", h.percentile(0.99));
    json.kv("max", h.max());
    json.endObject();
}

} // namespace

void
MetricRegistry::writeJson(std::ostream &os) const
{
    JsonWriter json(os);
    json.beginObject();

    // The map is name-ordered and lexicographic order groups shared
    // dot-prefixes contiguously, so a path stack suffices for nesting.
    std::vector<std::string> open; // currently open object path
    for (const auto &[name, slot] : slots) {
        const std::vector<std::string_view> segs = splitSegments(name);

        std::size_t common = 0;
        while (common < open.size() && common + 1 < segs.size() &&
               open[common] == segs[common]) {
            ++common;
        }
        while (open.size() > common) {
            json.endObject();
            open.pop_back();
        }
        while (open.size() + 1 < segs.size()) {
            const std::string_view seg = segs[open.size()];
            json.key(seg).beginObject();
            open.emplace_back(seg);
        }

        const std::string leaf(segs.back());
        switch (slot.kind) {
          case Kind::Counter:
            json.kv(leaf, slot.counter->value());
            break;
          case Kind::Gauge:
            json.kv(leaf, slot.gauge->value());
            break;
          case Kind::Histogram:
            writeLeaf(json, leaf.c_str(), *slot.histogram);
            break;
        }
    }
    while (!open.empty()) {
        json.endObject();
        open.pop_back();
    }
    json.endObject();
}

void
MetricRegistry::writeText(std::ostream &os) const
{
    for (const auto &[name, slot] : slots) {
        switch (slot.kind) {
          case Kind::Counter:
            os << name << ' ' << slot.counter->value() << '\n';
            break;
          case Kind::Gauge:
            os << name << ' ' << slot.gauge->value() << '\n';
            break;
          case Kind::Histogram: {
            const Histogram &h = *slot.histogram;
            os << name << ".count " << h.count() << '\n'
               << name << ".mean " << h.mean() << '\n'
               << name << ".p50 " << h.percentile(0.50) << '\n'
               << name << ".p95 " << h.percentile(0.95) << '\n'
               << name << ".p99 " << h.percentile(0.99) << '\n'
               << name << ".max " << h.max() << '\n';
            break;
          }
        }
    }
}

namespace
{

std::string
prometheusName(std::string_view name)
{
    std::string out;
    out.reserve(name.size() + 1);
    if (!name.empty() && name.front() >= '0' && name.front() <= '9')
        out.push_back('_');
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    return out;
}

} // namespace

void
MetricRegistry::writePrometheus(std::ostream &os) const
{
    for (const auto &[name, slot] : slots) {
        const std::string flat = prometheusName(name);
        switch (slot.kind) {
          case Kind::Counter:
            os << "# TYPE " << flat << " counter\n"
               << flat << ' ' << slot.counter->value() << '\n';
            break;
          case Kind::Gauge:
            os << "# TYPE " << flat << " gauge\n"
               << flat << ' ' << slot.gauge->value() << '\n';
            break;
          case Kind::Histogram: {
            // Summary leaves as gauges: the native Prometheus
            // histogram type wants cumulative le-buckets, which the
            // scrape-side consumers of these files don't need.
            const Histogram &h = *slot.histogram;
            const auto leaf = [&os, &flat](const char *suffix,
                                           double v) {
                os << "# TYPE " << flat << suffix << " gauge\n"
                   << flat << suffix << ' ' << v << '\n';
            };
            leaf("_count", static_cast<double>(h.count()));
            leaf("_mean", h.mean());
            leaf("_p50", h.percentile(0.50));
            leaf("_p95", h.percentile(0.95));
            leaf("_p99", h.percentile(0.99));
            leaf("_max", h.max());
            break;
          }
        }
    }
}

} // namespace pacache::obs
