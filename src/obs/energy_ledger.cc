#include "obs/energy_ledger.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

#include "util/json.hh"

namespace pacache::obs
{

double
ledgerRelError(const EnergyStats &stats)
{
    uint64_t cause_count = 0;
    Energy cause_energy = 0;
    for (std::size_t c = 0; c < kNumWakeCauses; ++c) {
        cause_count += stats.spinUpsByCause[c];
        cause_energy += stats.spinUpEnergyByCause[c];
    }
    if (cause_count != stats.spinUps)
        return 1.0; // a lost or double-counted attribution

    Energy rows = stats.serviceEnergy + stats.spinDownEnergy +
                  cause_energy;
    for (const Energy e : stats.idleEnergyPerMode)
        rows += e;
    const Energy total = stats.total();
    const double scale = std::max(
        {1.0, std::abs(total),
         std::abs(stats.spinUpEnergy)});
    const double row_err = std::abs(rows - total) / scale;
    const double spinup_err =
        std::abs(cause_energy - stats.spinUpEnergy) / scale;
    return std::max(row_err, spinup_err);
}

double
ledgerMaxRelError(const std::vector<EnergyStats> &per_disk)
{
    EnergyStats aggregate;
    double worst = 0.0;
    for (const EnergyStats &s : per_disk) {
        worst = std::max(worst, ledgerRelError(s));
        aggregate += s;
    }
    return std::max(worst, ledgerRelError(aggregate));
}

void
EnergyLedger::addDisk(std::string label, const EnergyStats &stats)
{
    disks.push_back(Entry{std::move(label), stats});
    aggregate += stats;
}

double
EnergyLedger::maxRelError() const
{
    double worst = ledgerRelError(aggregate);
    for (const Entry &e : disks)
        worst = std::max(worst, ledgerRelError(e.stats));
    return worst;
}

void
EnergyLedger::writeEntryValue(JsonWriter &json,
                              const EnergyStats &stats) const
{
    json.beginObject();
    json.kv("active_j", stats.serviceEnergy);
    json.key("idle_per_mode_j");
    if (modeNames.size() == stats.idleEnergyPerMode.size()) {
        json.beginObject();
        for (std::size_t m = 0; m < modeNames.size(); ++m)
            json.kv(modeNames[m], stats.idleEnergyPerMode[m]);
        json.endObject();
    } else {
        json.beginArray();
        for (const Energy e : stats.idleEnergyPerMode)
            json.value(e);
        json.endArray();
    }
    json.kv("spinup_j", stats.spinUpEnergy);
    json.kv("spindown_j", stats.spinDownEnergy);
    json.kv("total_j", stats.total());
    json.kv("spinups", stats.spinUps);
    json.key("spinups_by_cause");
    json.beginObject();
    for (std::size_t c = 0; c < kNumWakeCauses; ++c)
        json.kv(wakeCauseName(static_cast<WakeCause>(c)),
                stats.spinUpsByCause[c]);
    json.endObject();
    json.key("spinup_energy_by_cause_j");
    json.beginObject();
    for (std::size_t c = 0; c < kNumWakeCauses; ++c)
        json.kv(wakeCauseName(static_cast<WakeCause>(c)),
                stats.spinUpEnergyByCause[c]);
    json.endObject();
    json.kv("conservation_rel_error", ledgerRelError(stats));
    json.endObject();
}

void
EnergyLedger::writeJsonValue(JsonWriter &json) const
{
    json.beginObject();
    json.key("mode_names");
    json.beginArray();
    for (const std::string &name : modeNames)
        json.value(name);
    json.endArray();
    json.key("disks");
    json.beginObject();
    for (const Entry &e : disks) {
        json.key(e.label);
        writeEntryValue(json, e.stats);
    }
    json.endObject();
    json.key("total");
    writeEntryValue(json, aggregate);
    json.kv("max_conservation_rel_error", maxRelError());
    json.kv("conserves", conserves());
    json.endObject();
}

void
EnergyLedger::writeTable(std::ostream &os) const
{
    const auto flags = os.flags();
    const auto precision = os.precision();
    os << "energy ledger (J):\n";
    os << "  " << std::left << std::setw(8) << "disk" << std::right
       << std::setw(11) << "active" << std::setw(11) << "idle"
       << std::setw(11) << "spin-up" << std::setw(11) << "spin-down"
       << std::setw(12) << "total" << "\n";
    os << std::fixed << std::setprecision(1);
    auto row = [&os](const std::string &label,
                     const EnergyStats &s) {
        Energy idle = 0;
        for (const Energy e : s.idleEnergyPerMode)
            idle += e;
        os << "  " << std::left << std::setw(8) << label
           << std::right << std::setw(11) << s.serviceEnergy
           << std::setw(11) << idle << std::setw(11) << s.spinUpEnergy
           << std::setw(11) << s.spinDownEnergy << std::setw(12)
           << s.total() << "\n";
    };
    for (const Entry &e : disks)
        row(e.label, e.stats);
    row("total", aggregate);

    os << "  spin-ups by cause (count / J):\n";
    for (std::size_t c = 0; c < kNumWakeCauses; ++c) {
        if (aggregate.spinUpsByCause[c] == 0)
            continue;
        os << "    " << std::left << std::setw(20)
           << wakeCauseName(static_cast<WakeCause>(c)) << std::right
           << std::setw(9) << aggregate.spinUpsByCause[c]
           << std::setw(12) << aggregate.spinUpEnergyByCause[c]
           << "\n";
    }
    os << std::scientific << std::setprecision(2)
       << "  conservation max rel error " << maxRelError() << " ("
       << (conserves() ? "ok" : "VIOLATED") << ")\n";
    os.flags(flags);
    os.precision(precision);
}

} // namespace pacache::obs
