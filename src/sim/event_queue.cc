#include "sim/event_queue.hh"

#include <algorithm>

namespace pacache
{

void
EventQueue::compact()
{
    heap.erase(std::remove_if(heap.begin(), heap.end(),
                              [this](const Entry &e) {
                                  return !entryLive(e);
                              }),
               heap.end());
    staleEntries = 0;
    if (heap.size() > 1) {
        for (std::size_t i = (heap.size() - 2) / kArity + 1; i-- > 0;)
            siftDown(i);
    }
}

} // namespace pacache
