#include "sim/event_queue.hh"

#include "util/logging.hh"

namespace pacache
{

EventQueue::Handle
EventQueue::schedule(Time when, Callback cb)
{
    PACACHE_ASSERT(when >= currentTime,
                   "scheduling into the past: ", when, " < ", currentTime);
    const uint64_t seq = nextSeq++;
    events.emplace(Key{when, seq}, std::move(cb));
    return Handle{when, seq, true};
}

EventQueue::Handle
EventQueue::scheduleAfter(Time delay, Callback cb)
{
    return schedule(currentTime + delay, std::move(cb));
}

bool
EventQueue::cancel(Handle &h)
{
    if (!h.valid)
        return false;
    h.valid = false;
    return events.erase(Key{h.when, h.seq}) > 0;
}

bool
EventQueue::pending(const Handle &h) const
{
    return h.valid && events.count(Key{h.when, h.seq}) > 0;
}

bool
EventQueue::runOne()
{
    if (events.empty())
        return false;
    auto it = events.begin();
    currentTime = it->first.first;
    Callback cb = std::move(it->second);
    events.erase(it);
    cb(currentTime);
    return true;
}

void
EventQueue::runAll()
{
    while (runOne()) {
    }
}

void
EventQueue::runUntil(Time until)
{
    while (!events.empty() && events.begin()->first.first <= until)
        runOne();
    if (until > currentTime)
        currentTime = until;
}

} // namespace pacache
