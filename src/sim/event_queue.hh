/**
 * @file
 * Discrete-event simulation engine: a time-ordered event queue with
 * stable FIFO ordering among same-time events and O(1) cancellation
 * via event handles.
 *
 * The queue is a 4-ary min-heap on (time, sequence) — push and pop
 * are O(log n) with contiguous storage, against the node allocation
 * and pointer chasing of the previous std::map (bench/micro_events
 * measures the difference); the arity of four halves the sift depth
 * of a binary heap and keeps each level's children in one cache
 * line. Heap entries are small PODs; callbacks live in a free-listed
 * slab indexed by the heap entry, so sift operations move plain
 * scalars and dispatching an event costs one array access — no
 * hashing, no per-event allocation. Cancellation is lazy: cancel()
 * releases the slot (the sequence number doubles as a generation tag)
 * and the stale heap entry is skipped when it surfaces; when stale
 * entries outnumber live ones the heap compacts in one linear pass,
 * so timer-churn workloads (DPM idle timers rearmed on every arrival)
 * stay O(1) amortized per cancel. The insertion sequence number
 * breaks ties between equal timestamps, preserving deterministic
 * FIFO semantics.
 *
 * The hot paths (schedule, dispatch, cancel) are defined inline here:
 * the simulator schedules an event per disk request, so the call
 * overhead of an out-of-line library function is measurable at the
 * micro level.
 */

#ifndef PACACHE_SIM_EVENT_QUEUE_HH
#define PACACHE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/types.hh"
#include "util/logging.hh"

namespace pacache
{

/**
 * A simple deterministic event queue.
 *
 * Events are callbacks scheduled at absolute simulated times.
 * Ties are broken by insertion order, which makes runs reproducible.
 */
class EventQueue
{
  public:
    /** Opaque handle identifying a scheduled event. */
    struct Handle
    {
        Time when = 0;
        uint64_t seq = 0;
        uint32_t slot = 0;
        bool valid = false;
    };

    using Callback = std::function<void(Time)>;

    /**
     * Schedule a callback at absolute time @p when.
     * Scheduling in the past (before now()) is a bug and panics.
     */
    Handle
    schedule(Time when, Callback cb)
    {
        PACACHE_ASSERT(when >= currentTime,
                       "scheduling into the past: ", when, " < ",
                       currentTime);
        const uint64_t seq = nextSeq++;
        uint32_t slot;
        if (freeHead == kNoSlot) {
            slot = static_cast<uint32_t>(slots.size());
            slots.emplace_back();
        } else {
            slot = freeHead;
            freeHead = static_cast<uint32_t>(slots[slot].seq);
        }
        slots[slot].seq = seq;
        slots[slot].cb = std::move(cb);
        heap.push_back(Entry{when, seq, slot});
        siftUp(heap.size() - 1);
        ++liveCount;
        return Handle{when, seq, slot, true};
    }

    /** Schedule a callback @p delay seconds from now. */
    Handle
    scheduleAfter(Time delay, Callback cb)
    {
        return schedule(currentTime + delay, std::move(cb));
    }

    /**
     * Cancel a previously scheduled event.
     * @return true if the event was pending and is now removed.
     */
    bool
    cancel(Handle &h)
    {
        if (!h.valid)
            return false;
        h.valid = false;
        if (slots.size() <= h.slot || slots[h.slot].seq != h.seq)
            return false;
        // The heap entry goes stale in place and is skipped when it
        // surfaces; once stale entries dominate, one linear
        // compaction reclaims them all, keeping rearm-heavy timer
        // churn O(1) amortized per cancel.
        releaseSlot(h.slot);
        ++staleEntries;
        if (staleEntries > 64 && staleEntries * 2 > heap.size())
            compact();
        return true;
    }

    /** @return true if the handle refers to a still-pending event. */
    bool
    pending(const Handle &h) const
    {
        return h.valid && h.slot < slots.size() &&
               slots[h.slot].seq == h.seq;
    }

    /** Current simulated time. */
    Time now() const { return currentTime; }

    /** Number of pending (non-cancelled) events. */
    std::size_t size() const { return liveCount; }

    bool empty() const { return liveCount == 0; }

    /**
     * Pop and run the earliest event.
     * @return false if the queue was empty.
     */
    bool
    runOne()
    {
        if (staleEntries > 0)
            purgeCancelled();
        if (heap.empty())
            return false;
        const Entry e = popTop();
        Callback cb = std::move(slots[e.slot].cb);
        releaseSlot(e.slot);
        currentTime = e.when;
        cb(currentTime);
        return true;
    }

    /** Run events until the queue drains. */
    void
    runAll()
    {
        while (runOne()) {
        }
    }

    /**
     * Run all events with time <= @p until, then advance the clock
     * to @p until.
     */
    void
    runUntil(Time until)
    {
        while (true) {
            if (staleEntries > 0)
                purgeCancelled();
            if (heap.empty() || heap.front().when > until)
                break;
            runOne();
        }
        if (until > currentTime)
            currentTime = until;
    }

  private:
    /** Trivially copyable heap element; the callback lives apart. */
    struct Entry
    {
        Time when = 0;
        uint64_t seq = 0;
        uint32_t slot = 0;
    };

    /**
     * Callback storage. A slot is live while its seq matches the
     * heap entry pointing at it; cancel/dispatch mark it dead and
     * recycle it through a free list threaded through the dead
     * slots themselves: a dead slot's seq carries the dead tag in
     * its top bit and the next free slot index in its low bits, so
     * recycling touches no memory beyond the slot already in hand.
     * Live sequence numbers never reach 2^63, so a tagged seq can
     * never match a heap entry.
     */
    struct CbSlot
    {
        uint64_t seq = kDeadTag;
        Callback cb;
    };

    static constexpr uint64_t kDeadTag = 1ULL << 63;
    static constexpr uint32_t kNoSlot = ~0U;
    static constexpr std::size_t kArity = 4;

    /** Min-heap order on (when, seq): true if @p a fires later. */
    static bool
    later(const Entry &a, const Entry &b)
    {
        return a.when > b.when ||
               (a.when == b.when && a.seq > b.seq);
    }

    bool entryLive(const Entry &e) const
    {
        return slots[e.slot].seq == e.seq;
    }

    void
    siftUp(std::size_t i)
    {
        const Entry e = heap[i];
        while (i > 0) {
            const std::size_t parent = (i - 1) / kArity;
            if (!later(heap[parent], e))
                break;
            heap[i] = heap[parent];
            i = parent;
        }
        heap[i] = e;
    }

    /** Pick the earliest child of @p i, or the size if @p i is a leaf. */
    std::size_t
    bestChild(std::size_t i, std::size_t n) const
    {
        const std::size_t first = i * kArity + 1;
        if (first >= n)
            return n;
        const std::size_t last = std::min(first + kArity, n);
        std::size_t best = first;
        for (std::size_t c = first + 1; c < last; ++c) {
            if (later(heap[best], heap[c]))
                best = c;
        }
        return best;
    }

    void
    siftDown(std::size_t i)
    {
        const Entry e = heap[i];
        const std::size_t n = heap.size();
        while (true) {
            const std::size_t best = bestChild(i, n);
            if (best >= n || !later(e, heap[best]))
                break;
            heap[i] = heap[best];
            i = best;
        }
        heap[i] = e;
    }

    /**
     * Remove and return the top; the heap must be non-empty.
     *
     * The hole left at the root is sifted all the way down along the
     * best-child path without comparing against the replacement
     * element; the replacement came from the bottom, so it nearly
     * always belongs back at a leaf and the blind descent saves one
     * compare-and-branch per level over the classic sift-down.
     */
    Entry
    popTop()
    {
        const Entry top = heap.front();
        const Entry last = heap.back();
        heap.pop_back();
        const std::size_t n = heap.size();
        if (n > 0) {
            std::size_t hole = 0;
            while (true) {
                const std::size_t best = bestChild(hole, n);
                if (best >= n)
                    break;
                heap[hole] = heap[best];
                hole = best;
            }
            heap[hole] = last;
            siftUp(hole);
        }
        return top;
    }

    /** Mark dead and recycle; the heap entry goes stale in place. */
    void
    releaseSlot(uint32_t slot)
    {
        slots[slot].seq = kDeadTag | freeHead;
        slots[slot].cb = nullptr; // drop captures now, not at reuse
        freeHead = slot;
        --liveCount;
    }

    /** Filter stale entries and rebuild in one linear pass. */
    void compact();

    /** Drop cancelled entries until the top is live (or empty). */
    void
    purgeCancelled()
    {
        while (!heap.empty() && !entryLive(heap.front())) {
            popTop();
            --staleEntries;
        }
    }

    std::vector<Entry> heap;   //!< 4-ary min-heap
    std::vector<CbSlot> slots; //!< callback slab
    uint32_t freeHead = kNoSlot; //!< free list threaded through slots
    std::size_t staleEntries = 0; //!< cancelled but still heaped
    std::size_t liveCount = 0;
    Time currentTime = 0;
    uint64_t nextSeq = 0;
};

} // namespace pacache

#endif // PACACHE_SIM_EVENT_QUEUE_HH
