/**
 * @file
 * Discrete-event simulation engine: a time-ordered event queue with
 * stable FIFO ordering among same-time events and O(log n)
 * cancellation via event handles.
 */

#ifndef PACACHE_SIM_EVENT_QUEUE_HH
#define PACACHE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "sim/types.hh"

namespace pacache
{

/**
 * A simple deterministic event queue.
 *
 * Events are callbacks scheduled at absolute simulated times.
 * Ties are broken by insertion order, which makes runs reproducible.
 */
class EventQueue
{
  public:
    /** Opaque handle identifying a scheduled event. */
    struct Handle
    {
        Time when = 0;
        uint64_t seq = 0;
        bool valid = false;
    };

    using Callback = std::function<void(Time)>;

    /**
     * Schedule a callback at absolute time @p when.
     * Scheduling in the past (before now()) is a bug and panics.
     */
    Handle schedule(Time when, Callback cb);

    /** Schedule a callback @p delay seconds from now. */
    Handle scheduleAfter(Time delay, Callback cb);

    /**
     * Cancel a previously scheduled event.
     * @return true if the event was pending and is now removed.
     */
    bool cancel(Handle &h);

    /** @return true if the handle refers to a still-pending event. */
    bool pending(const Handle &h) const;

    /** Current simulated time. */
    Time now() const { return currentTime; }

    /** Number of pending events. */
    std::size_t size() const { return events.size(); }

    bool empty() const { return events.empty(); }

    /**
     * Pop and run the earliest event.
     * @return false if the queue was empty.
     */
    bool runOne();

    /** Run events until the queue drains. */
    void runAll();

    /**
     * Run all events with time <= @p until, then advance the clock
     * to @p until.
     */
    void runUntil(Time until);

  private:
    using Key = std::pair<Time, uint64_t>;

    std::map<Key, Callback> events;
    Time currentTime = 0;
    uint64_t nextSeq = 0;
};

} // namespace pacache

#endif // PACACHE_SIM_EVENT_QUEUE_HH
