/**
 * @file
 * Fundamental types shared across the library.
 *
 * Conventions: time is in seconds (double), energy in Joules,
 * power in Watts. Blocks are fixed-size cache/disk units (4 KiB by
 * default); block numbers are per-disk logical block numbers.
 */

#ifndef PACACHE_SIM_TYPES_HH
#define PACACHE_SIM_TYPES_HH

#include <cstdint>
#include <functional>

#include "util/logging.hh"

namespace pacache
{

/** Simulated time in seconds. */
using Time = double;

/** Energy in Joules. */
using Energy = double;

/** Power in Watts. */
using Power = double;

/** Index of a disk within the array. */
using DiskId = uint32_t;

/** Per-disk logical block number. */
using BlockNum = uint64_t;

/** Default block size used throughout (bytes). */
inline constexpr uint64_t kDefaultBlockSize = 4096;

/** Globally unique block identity: (disk, block number). */
struct BlockId
{
    DiskId disk = 0;
    BlockNum block = 0;

    friend bool operator==(const BlockId &, const BlockId &) = default;
    friend auto operator<=>(const BlockId &, const BlockId &) = default;

    /**
     * Pack into a single 64-bit key (for hashing / residency and
     * handle maps / Bloom filters). The key holds 16 disk bits and 48
     * block bits; an id outside that range would silently alias
     * another block in every packed-keyed structure, so it panics
     * here instead (no real trace comes close: 2^48 blocks is 1 EiB
     * of 4 KiB sectors per disk).
     */
    uint64_t
    packed() const
    {
        PACACHE_ASSERT(disk < (uint64_t{1} << 16) &&
                           block < (uint64_t{1} << 48),
                       "BlockId (", disk, ", ", block,
                       ") overflows the 16/48-bit packed key");
        return (static_cast<uint64_t>(disk) << 48) |
               (block & 0xffffffffffffULL);
    }

    /**
     * Inverse of packed(). Packed keys order exactly like
     * (disk, block), so compact structures can store and compare the
     * key and unpack on demand.
     */
    static BlockId
    fromPacked(uint64_t key)
    {
        return BlockId{static_cast<DiskId>(key >> 48),
                       key & 0xffffffffffffULL};
    }
};

} // namespace pacache

namespace std
{

template <>
struct hash<pacache::BlockId>
{
    size_t
    operator()(const pacache::BlockId &id) const noexcept
    {
        uint64_t z = id.packed() + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return static_cast<size_t>(z ^ (z >> 31));
    }
};

} // namespace std

#endif // PACACHE_SIM_TYPES_HH
