/**
 * @file
 * Fundamental types shared across the library.
 *
 * Conventions: time is in seconds (double), energy in Joules,
 * power in Watts. Blocks are fixed-size cache/disk units (4 KiB by
 * default); block numbers are per-disk logical block numbers.
 */

#ifndef PACACHE_SIM_TYPES_HH
#define PACACHE_SIM_TYPES_HH

#include <cstdint>
#include <functional>

namespace pacache
{

/** Simulated time in seconds. */
using Time = double;

/** Energy in Joules. */
using Energy = double;

/** Power in Watts. */
using Power = double;

/** Index of a disk within the array. */
using DiskId = uint32_t;

/** Per-disk logical block number. */
using BlockNum = uint64_t;

/** Default block size used throughout (bytes). */
inline constexpr uint64_t kDefaultBlockSize = 4096;

/** Globally unique block identity: (disk, block number). */
struct BlockId
{
    DiskId disk = 0;
    BlockNum block = 0;

    friend bool operator==(const BlockId &, const BlockId &) = default;
    friend auto operator<=>(const BlockId &, const BlockId &) = default;

    /** Pack into a single 64-bit key (for hashing / Bloom filters). */
    uint64_t
    packed() const
    {
        return (static_cast<uint64_t>(disk) << 48) |
               (block & 0xffffffffffffULL);
    }

    /**
     * Inverse of packed(). For block numbers below 2^48, packed keys
     * also order exactly like (disk, block), so compact structures
     * can store and compare the key and unpack on demand.
     */
    static BlockId
    fromPacked(uint64_t key)
    {
        return BlockId{static_cast<DiskId>(key >> 48),
                       key & 0xffffffffffffULL};
    }
};

} // namespace pacache

namespace std
{

template <>
struct hash<pacache::BlockId>
{
    size_t
    operator()(const pacache::BlockId &id) const noexcept
    {
        uint64_t z = id.packed() + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return static_cast<size_t>(z ^ (z >> 31));
    }
};

} // namespace std

#endif // PACACHE_SIM_TYPES_HH
