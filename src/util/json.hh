/**
 * @file
 * Minimal streaming JSON writer shared by the observability sinks and
 * the stats serializers, plus a small JSON value parser for
 * configuration inputs (sweep spec files). The writer tracks the
 * object/array nesting and inserts commas so callers never emit
 * malformed separators; numbers are written round-trippably (doubles
 * with max_digits10, NaN/Inf as null, since JSON has no
 * representation for them).
 */

#ifndef PACACHE_UTIL_JSON_HH
#define PACACHE_UTIL_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace pacache
{

/** Escape a string for inclusion in a JSON document (no quotes). */
std::string jsonEscape(std::string_view s);

/** Comma/nesting-aware JSON emitter. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os);
    ~JsonWriter();

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; the next value/begin* call is its value. */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(double v);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int64_t v);
    JsonWriter &value(int v) { return value(static_cast<int64_t>(v)); }
    JsonWriter &value(unsigned v)
    {
        return value(static_cast<uint64_t>(v));
    }
    JsonWriter &value(bool v);
    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &null();

    /**
     * Splice a pre-serialized JSON value verbatim (e.g. a nested
     * document produced by another writer). The caller guarantees
     * @p v is itself valid JSON.
     */
    JsonWriter &rawValue(std::string_view v);

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    kv(std::string_view k, T v)
    {
        key(k);
        return value(v);
    }

    /** Close every open scope (for emergency finalization). */
    void finish();

  private:
    void separate();

    std::ostream &out;
    /** Open scopes: 'o' = object, 'a' = array. */
    std::vector<char> scopes;
    bool firstInScope = true;
    bool afterKey = false;
};

/**
 * A parsed JSON value (configuration-input sized, not a streaming
 * DOM). Numbers are kept as doubles — ample for sweep-spec knobs.
 * Parse errors throw std::runtime_error with line/column context.
 */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    using Array = std::vector<JsonValue>;
    /** Ordered map: deterministic iteration for reserialization. */
    using Object = std::map<std::string, JsonValue, std::less<>>;

    JsonValue() = default;

    Kind kind() const { return valueKind; }
    bool isNull() const { return valueKind == Kind::Null; }
    bool isBool() const { return valueKind == Kind::Bool; }
    bool isNumber() const { return valueKind == Kind::Number; }
    bool isString() const { return valueKind == Kind::String; }
    bool isArray() const { return valueKind == Kind::Array; }
    bool isObject() const { return valueKind == Kind::Object; }

    /** Typed accessors; fatal on kind mismatch (caller validated). */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;

    /** Object member lookup; null if absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /** Parse a complete JSON document (rejects trailing garbage). */
    static JsonValue parse(std::string_view text);

  private:
    friend class JsonParser;

    Kind valueKind = Kind::Null;
    bool boolValue = false;
    double numberValue = 0.0;
    std::string stringValue;
    Array arrayValue;
    Object objectValue;
};

} // namespace pacache

#endif // PACACHE_UTIL_JSON_HH
