/**
 * @file
 * Deterministic pseudo-random number generation and the workload
 * distributions used by the synthetic trace generator: Uniform,
 * Exponential, bounded Pareto (finite mean, infinite variance for
 * 1 < shape < 2) and Zipf.
 */

#ifndef PACACHE_UTIL_RANDOM_HH
#define PACACHE_UTIL_RANDOM_HH

#include <cstdint>
#include <vector>

namespace pacache
{

/**
 * SplitMix64 — a tiny, fast, high-quality 64-bit PRNG.
 *
 * Deterministic across platforms (unlike std::mt19937 distributions,
 * whose std:: wrappers are implementation-defined), which keeps traces
 * and experiments reproducible.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state(seed) {}

    /** @return the next raw 64-bit value. */
    uint64_t next64();

    /** @return a double uniform in [0, 1). */
    double uniform();

    /** @return a double uniform in [lo, hi). */
    double uniform(double lo, double hi);

    /** @return an integer uniform in [0, n). n must be > 0. */
    uint64_t below(uint64_t n);

    /** @return true with probability p. */
    bool chance(double p) { return uniform() < p; }

    /** Exponential variate with the given mean. */
    double exponential(double mean);

    /**
     * Pareto variate with shape alpha and scale x_m
     * (support [x_m, inf), mean = alpha*x_m/(alpha-1) for alpha > 1).
     */
    double pareto(double shape, double scale);

  private:
    uint64_t state;
};

/**
 * Zipf sampler over {0, .., n-1} with exponent theta
 * (P(k) proportional to 1/(k+1)^theta). Uses an inverted-CDF table,
 * so sampling is O(log n) after O(n) setup.
 */
class ZipfSampler
{
  public:
    /**
     * @param n      population size (> 0)
     * @param theta  skew exponent (0 = uniform; ~0.8-1.2 typical)
     */
    ZipfSampler(std::size_t n, double theta);

    /** Draw one rank in [0, n). */
    std::size_t sample(Rng &rng) const;

    std::size_t populationSize() const { return cdf.size(); }

  private:
    std::vector<double> cdf;
};

} // namespace pacache

#endif // PACACHE_UTIL_RANDOM_HH
